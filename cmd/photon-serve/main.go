// Command photon-serve runs a Photon inference server: a KV-cached
// continuous-batching engine over one model, speaking the Photon wire
// protocol so photon clients (and eval harnesses) can generate and score
// against the real serving path. Ctrl-C shuts it down gracefully.
//
// Usage:
//
//	photon-serve -addr :9100 -model tiny -ckpt global.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photon"
	"photon/internal/ckpt"
	"photon/internal/link"
	"photon/internal/nn"
	"photon/internal/obsv"
	"photon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-serve: ")
	var (
		addr      = flag.String("addr", ":9100", "listen address")
		size      = flag.String("model", string(photon.SizeTiny), "model size preset")
		ckptPath  = flag.String("ckpt", "", "checkpoint to serve: a file path, or a registry ref (tag:<name> or a content hash) resolved against -registry (default: fresh random init from -seed)")
		regDir    = flag.String("registry", "", "content-addressed model registry directory for resolving -ckpt refs")
		seed      = flag.Int64("seed", 1, "init seed when no checkpoint is given")
		maxBatch  = flag.Int("max-batch", 8, "max sequences decoded concurrently")
		maxSeq    = flag.Int("max-seq", 0, "per-sequence KV-cache capacity in tokens (0 = 4x trained context)")
		queue     = flag.Int("queue", 64, "admission queue depth")
		stats     = flag.Duration("stats", 10*time.Second, "telemetry print interval (0 disables)")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()

	health := obsv.NewHealthTracker("photon-serve", 0)
	if *metricsAt != "" {
		ms, err := obsv.Serve(*metricsAt, nil)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		ms.SetHealth(health.Get)
		defer ms.Close()
		log.Printf("observability on http://%s/metrics", ms.Addr())
	}

	cfg, err := photon.ModelConfig(photon.ModelSize(*size))
	if err != nil {
		log.Fatal(err)
	}
	m := nn.NewModel(cfg, rand.New(rand.NewSource(*seed)))
	if *ckptPath != "" {
		var c *ckpt.Checkpoint
		switch {
		case *regDir != "":
			// With a registry, -ckpt is a ref: "tag:latest", a full
			// content hash, or an unambiguous hash prefix. The blob is
			// re-hashed on load, so a corrupted registry cannot serve.
			reg, err := ckpt.OpenRegistry(*regDir)
			if err != nil {
				log.Fatalf("open registry: %v", err)
			}
			var man *ckpt.Manifest
			if c, man, err = reg.Get(*ckptPath); err != nil {
				log.Fatalf("resolve %q in registry: %v", *ckptPath, err)
			}
			log.Printf("registry %s -> %.12s (lineage %v)", *ckptPath, man.Hash, man.Lineage)
		case ckpt.IsRegistryRef(*ckptPath):
			log.Fatalf("-ckpt %q is a registry ref; pass -registry <dir> to resolve it", *ckptPath)
		default:
			var err error
			if c, err = ckpt.Load(*ckptPath); err != nil {
				log.Fatalf("load checkpoint: %v", err)
			}
		}
		if err := m.Params().LoadFlat(c.Params); err != nil {
			log.Fatalf("checkpoint does not fit %s: %v", *size, err)
		}
		log.Printf("serving %s from %s (round %d, step %d)", *size, *ckptPath, c.Round, c.Step)
	} else {
		log.Printf("serving %s from random init (seed %d); pass -ckpt for trained weights", *size, *seed)
	}

	l, err := link.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	eng := serve.NewEngine(m, serve.Config{MaxBatch: *maxBatch, MaxSeq: *maxSeq, Queue: *queue})
	srv := serve.NewServer(eng, l)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Telemetry: keep the freshest completion snapshot and print it on a
	// timer, so a busy server logs at a bounded rate.
	go func() {
		var last serve.Event
		var seen bool
		var tick <-chan time.Time
		if *stats > 0 {
			t := time.NewTicker(*stats)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case ev, ok := <-eng.Events():
				if !ok {
					return
				}
				last, seen = ev, true
				// No training rounds here: report retired requests as the
				// progress counter and the active batch as the cohort.
				health.Observe(int(ev.Stats.Completed+ev.Stats.Expired), ev.Stats.Active)
			case <-tick:
				if !seen {
					continue
				}
				s := last.Stats
				fmt.Printf("stats: active=%d queued=%d done=%d expired=%d tok/s=%.0f p50=%s p99=%s\n",
					s.Active, s.QueueDepth, s.Completed, s.Expired, s.TokensPerSec,
					s.P50.Round(time.Millisecond), s.P99.Round(time.Millisecond))
			}
		}
	}()

	rc := eng.ResolvedConfig()
	log.Printf("listening on %s (max-batch %d, max-seq %d)", l.Addr(), rc.MaxBatch, rc.MaxSeq)
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	eng.Close()
	s := eng.Stats()
	log.Printf("done: %d completed, %d expired, %d tokens out", s.Completed, s.Expired, s.TokensOut)
}
