// Command photon-sim runs a single-process federated pre-training
// simulation with the Photon recipe, streaming round-by-round progress as
// it trains. Ctrl-C stops the run gracefully and prints the partial result.
//
// Usage:
//
//	photon-sim -clients 8 -rounds 20 -steps 16 -server fedavg
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"photon"
	"photon/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-sim: ")
	var (
		size      = flag.String("model", string(photon.SizeTiny), "model size preset")
		clients   = flag.Int("clients", 4, "federation population")
		k         = flag.Int("k", 0, "clients sampled per round (0 = all)")
		rounds    = flag.Int("rounds", 20, "federated rounds")
		steps     = flag.Int("steps", 16, "local steps per round (τ)")
		batch     = flag.Int("batch", 4, "local batch size (Bl)")
		lr        = flag.Float64("lr", 3e-3, "peak learning rate")
		server    = flag.String("server", "fedavg", "server optimizer (see photon.ServerOptimizers)")
		source    = flag.String("data", "c4", "data source (see photon.DataSources)")
		codec     = flag.String("codec", "dense", "wire codec simulated for all exchanged payloads (dense, flate, q8, topk:<keep>, ...)")
		tiers     = flag.Int("tiers", 1, "aggregation depth: 1 = flat, 2 = hierarchical (relay group means feed the server optimizer)")
		relays    = flag.Int("relays", 2, "relay groups when -tiers 2")
		upCodec   = flag.String("up-codec", "", "relay->root tier codec when -tiers 2 (default: same as -codec)")
		dropout   = flag.Float64("dropout", 0, "per-round client dropout probability")
		ckpt      = flag.String("ckpt", "", "checkpoint path for the global model")
		resume    = flag.String("resume", "", "resume from a checkpoint written via -ckpt")
		seed      = flag.Int64("seed", 1, "run seed")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	health := obsv.NewHealthTracker("photon-sim", 0)
	if *metricsAt != "" {
		ms, err := obsv.Serve(*metricsAt, nil)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		ms.SetHealth(health.Get)
		defer ms.Close()
		log.Printf("observability on http://%s/metrics", ms.Addr())
	}

	job := photon.NewJob(
		photon.WithModel(photon.ModelSize(*size)),
		photon.WithClients(*clients),
		photon.WithClientsPerRound(*k),
		photon.WithRounds(*rounds),
		photon.WithLocalSteps(*steps),
		photon.WithBatchSize(*batch),
		photon.WithMaxLR(*lr),
		photon.WithServerOptimizer(*server),
		photon.WithDataSource(*source),
		photon.WithCodec(*codec),
		photon.WithTiers(*tiers),
		photon.WithRelays(*relays),
		photon.WithUpstreamCodec(*upCodec),
		photon.WithDropout(*dropout),
		photon.WithCheckpoint(*ckpt),
		photon.WithResume(*resume),
		photon.WithSeed(*seed),
	)

	// Stream telemetry live while the run is in progress.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fmt.Printf("round  clients  train-loss  val-ppl    comm-MB\n")
		for ev := range job.Events() {
			health.Observe(ev.Round, ev.Clients)
			fmt.Printf("%5d  %7d  %10.4f  %7.2f  %9.2f\n",
				ev.Round, ev.Clients, ev.TrainLoss, ev.Perplexity, float64(ev.CommBytes)/1e6)
		}
	}()

	res, err := job.Run(ctx)
	wg.Wait()
	switch {
	case errors.Is(err, context.Canceled):
		log.Printf("interrupted after %d rounds", len(res.Stats))
	case err != nil:
		log.Fatal(err)
	}
	if len(res.Stats) == 0 {
		return // stopped before any round completed; nothing to report
	}
	fmt.Printf("\nfinal perplexity: %.2f (%d params)\n", res.FinalPerplexity, res.NumParams())
}
