// Command photon-sim runs a single-process federated pre-training
// simulation with the Photon recipe and prints the round-by-round progress.
//
// Usage:
//
//	photon-sim -clients 8 -rounds 20 -steps 16 -server fedavg
package main

import (
	"flag"
	"fmt"
	"log"

	"photon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-sim: ")
	var (
		size    = flag.String("model", string(photon.SizeTiny), "model size preset")
		clients = flag.Int("clients", 4, "federation population")
		k       = flag.Int("k", 0, "clients sampled per round (0 = all)")
		rounds  = flag.Int("rounds", 20, "federated rounds")
		steps   = flag.Int("steps", 16, "local steps per round (τ)")
		batch   = flag.Int("batch", 4, "local batch size (Bl)")
		lr      = flag.Float64("lr", 3e-3, "peak learning rate")
		server  = flag.String("server", "fedavg", "server optimizer: fedavg|fedmom|diloco")
		hetero  = flag.Bool("hetero", false, "heterogeneous Pile-like client data")
		dropout = flag.Float64("dropout", 0, "per-round client dropout probability")
		ckpt    = flag.String("ckpt", "", "checkpoint path for the global model")
		seed    = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()

	res, err := photon.Pretrain(photon.Options{
		Size:            photon.ModelSize(*size),
		Clients:         *clients,
		ClientsPerRound: *k,
		Rounds:          *rounds,
		LocalSteps:      *steps,
		BatchSize:       *batch,
		MaxLR:           *lr,
		Server:          photon.ServerOptimizer(*server),
		Heterogeneous:   *hetero,
		DropoutProb:     *dropout,
		CheckpointPath:  *ckpt,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round  clients  train-loss  val-ppl\n")
	for _, s := range res.Stats {
		fmt.Printf("%5d  %7d  %10.4f  %7.2f\n", s.Round, s.Clients, s.TrainLoss, s.Perplexity)
	}
	fmt.Printf("\nfinal perplexity: %.2f (%d params)\n", res.FinalPerplexity, res.NumParams())
}
