// photon-vet runs the photon static-analyzer suite (internal/lint) over the
// module: hotpath-alloc, seeded-rand, locked-blocking, no-wallclock, and
// ctx-first. It is CI's compile-time guard for the invariants the paper's
// performance and fault-tolerance claims depend on.
//
// Usage:
//
//	go run ./cmd/photon-vet ./...
//	go run ./cmd/photon-vet -analyzers hotpath-alloc ./internal/nn
//	go run ./cmd/photon-vet -list
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"photon/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: photon-vet [-list] [-analyzers a,b] [packages]\n\npackages default to ./...; patterns are module-relative directories\nor import paths, with an optional /... suffix.\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "photon-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	match := matcher(prog, root, cwd, patterns)

	var findings []lint.Finding
	for _, pkg := range prog.SortedPackages() {
		if !match(pkg.ImportPath) {
			continue
		}
		findings = append(findings, prog.RunPackage(pkg, analyzers)...)
	}
	for _, f := range findings {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "photon-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// matcher resolves package patterns (./..., ./internal/nn, photon/internal/nn,
// photon/...) to an import-path predicate.
func matcher(prog *lint.Program, root, cwd string, patterns []string) func(string) bool {
	type rule struct {
		path      string
		recursive bool
	}
	var rules []rule
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		var ipath string
		if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "/") {
			abs := pat
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(cwd, pat)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				fmt.Fprintf(os.Stderr, "photon-vet: pattern %q is outside the module\n", pat)
				os.Exit(2)
			}
			if rel == "." {
				ipath = prog.ModPath
			} else {
				ipath = prog.ModPath + "/" + filepath.ToSlash(rel)
			}
		} else {
			ipath = pat
		}
		rules = append(rules, rule{path: ipath, recursive: recursive})
	}
	return func(importPath string) bool {
		for _, r := range rules {
			if importPath == r.path {
				return true
			}
			if r.recursive && (r.path == prog.ModPath && strings.HasPrefix(importPath, prog.ModPath+"/") ||
				strings.HasPrefix(importPath, r.path+"/")) {
				return true
			}
		}
		return false
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "photon-vet: %v\n", err)
	os.Exit(2)
}
