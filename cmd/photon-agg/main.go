// Command photon-agg runs a networked Photon aggregator: it listens for
// LLM clients (photon-client processes) and coordinates federated rounds
// over the Photon wire protocol.
//
// Usage:
//
//	photon-agg -addr :9000 -clients 2 -rounds 10
package main

import (
	"flag"
	"fmt"
	"log"

	"photon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-agg: ")
	var (
		addr     = flag.String("addr", ":9000", "listen address")
		size     = flag.String("model", string(photon.SizeTiny), "model size preset")
		clients  = flag.Int("clients", 2, "clients to wait for")
		rounds   = flag.Int("rounds", 10, "federated rounds")
		server   = flag.String("server", "fedavg", "server optimizer: fedavg|fedmom|diloco")
		compress = flag.Bool("compress", true, "flate-compress parameter payloads")
		seed     = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()

	log.Printf("listening on %s for %d clients", *addr, *clients)
	res, err := photon.ServeAggregator(photon.AggregatorOptions{
		Addr:          *addr,
		Size:          photon.ModelSize(*size),
		Rounds:        *rounds,
		ExpectClients: *clients,
		Server:        photon.ServerOptimizer(*server),
		Compress:      *compress,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Stats {
		fmt.Printf("round %2d: clients=%d loss=%.4f ppl=%.2f\n", s.Round, s.Clients, s.TrainLoss, s.Perplexity)
	}
	fmt.Printf("final perplexity: %.2f\n", res.FinalPerplexity)
}
