// Command photon-agg runs a networked Photon aggregator: it listens for
// LLM clients (photon-client processes) and coordinates federated rounds
// over the Photon wire protocol, streaming per-round progress as it runs.
// Ctrl-C shuts the federation down gracefully.
//
// Usage:
//
//	photon-agg -addr :9000 -clients 2 -rounds 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"photon"
	"photon/internal/obsv"
)

// resolveCodecFlag maps the deprecated -compress flag onto -codec when the
// operator set it explicitly; an explicit -codec always wins.
func resolveCodecFlag(codec *string, compress bool) {
	compressSet, codecSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "compress":
			compressSet = true
		case "codec":
			codecSet = true
		}
	})
	if !compressSet {
		return
	}
	if codecSet {
		log.Printf("warning: -compress is deprecated and ignored when -codec is given")
		return
	}
	if compress {
		*codec = "flate"
	} else {
		*codec = "dense"
	}
	log.Printf("warning: -compress is deprecated; use -codec=%s", *codec)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-agg: ")
	var (
		addr       = flag.String("addr", ":9000", "listen address")
		size       = flag.String("model", string(photon.SizeTiny), "model size preset")
		clients    = flag.Int("clients", 2, "clients to wait for before round 1")
		rounds     = flag.Int("rounds", 10, "federated rounds")
		server     = flag.String("server", "fedavg", "server optimizer (see photon.ServerOptimizers)")
		codec      = flag.String("codec", "flate", "wire codec for parameter payloads (dense, flate, q8, topk:<keep>, ...)")
		compress   = flag.Bool("compress", true, "deprecated: use -codec=flate (or -codec=dense to disable)")
		seed       = flag.Int64("seed", 1, "run seed")
		heartbeat  = flag.Duration("heartbeat", 5*time.Second, "heartbeat interval; members missing 3 beats are evicted (0 disables)")
		deadline   = flag.Duration("deadline", 0, "per-round deadline; late members become stragglers (0 waits forever)")
		minClients = flag.Int("min-clients", 1, "mid-run participation floor: rounds wait for this many alive members")
		over       = flag.Float64("over", 0, "cohort over-provision fraction (0.25 = sample 25% extra)")
		parent     = flag.String("parent", "", "run as a relay: join the parent aggregator at this address while serving the local cohort (rounds become parent-driven)")
		upCodec    = flag.String("up-codec", "", "relay: require the parent to announce exactly this codec (default: accept any)")
		id         = flag.String("id", "", "relay identity presented to the parent (default: relay@<listen-addr>)")
		metricsAt  = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
		walDir     = flag.String("wal", "", "write-ahead-log directory: journal round state and resume an interrupted run when restarted on the same directory (empty disables)")
		registryAt = flag.String("registry", "", "content-addressed model registry directory: publish every committed round's checkpoint and move the latest tag (empty disables)")
		async      = flag.Bool("async", false, "buffered asynchronous (FedBuff) aggregation: members train at their own pace and -rounds counts version commits")
		asyncK     = flag.Int("async-k", 2, "async: updates buffered per version commit")
		asyncAlpha = flag.Float64("async-alpha", 0.5, "async: staleness discount exponent; weight = 1/(1+staleness)^alpha")
	)
	flag.Parse()
	resolveCodecFlag(codec, *compress)

	tier := 0
	if *parent != "" {
		tier = 1
	}
	health := obsv.NewHealthTracker("photon-agg", tier)
	if *metricsAt != "" {
		ms, err := obsv.Serve(*metricsAt, nil)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		ms.SetHealth(health.Get)
		defer ms.Close()
		log.Printf("observability on http://%s/metrics", ms.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []photon.JobOption{
		photon.WithBackend(photon.BackendAggregator),
		photon.WithAddr(*addr),
		photon.WithModel(photon.ModelSize(*size)),
		photon.WithExpectClients(*clients),
		photon.WithRounds(*rounds),
		photon.WithServerOptimizer(*server),
		photon.WithCodec(*codec),
		photon.WithSeed(*seed),
		photon.WithHeartbeat(*heartbeat),
		photon.WithRoundDeadline(*deadline),
		photon.WithMinClients(*minClients),
		photon.WithOverProvision(*over),
	}
	if *async {
		opts = append(opts, photon.WithAsync(*asyncK, *asyncAlpha))
	}
	if *walDir != "" {
		opts = append(opts, photon.WithWAL(*walDir))
	}
	if *registryAt != "" {
		opts = append(opts, photon.WithRegistry(*registryAt))
	}
	if *parent != "" {
		opts = append(opts,
			photon.WithParent(*parent),
			photon.WithUpstreamCodec(*upCodec),
			photon.WithClientID(*id))
	}
	job := photon.NewJob(opts...)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range job.Events() {
			health.Observe(ev.Round, ev.Clients)
			line := fmt.Sprintf("round %2d: clients=%d loss=%.4f ppl=%.2f comm=%.2fMB",
				ev.Round, ev.Clients, ev.TrainLoss, ev.Perplexity, float64(ev.CommBytes)/1e6)
			if ev.Tier > 0 {
				line = fmt.Sprintf("tier%d ", ev.Tier) + line
			}
			if ev.ModelVersion > 0 {
				line += fmt.Sprintf(" ver=%d buf=%d stale=%.1f", ev.ModelVersion, ev.BufferFill, ev.MeanStaleness)
			}
			if ev.CompressionRatio > 0 {
				line += fmt.Sprintf(" ratio=%.2f", ev.CompressionRatio)
			}
			if ev.Joins > 0 || ev.Evictions > 0 || ev.Stragglers > 0 {
				line += fmt.Sprintf(" joins=%d evict=%d stragglers=%d", ev.Joins, ev.Evictions, ev.Stragglers)
			}
			if ev.HeartbeatRTTMs > 0 {
				line += fmt.Sprintf(" hb-rtt=%.1fms", ev.HeartbeatRTTMs)
			}
			if ev.SlowestID != "" {
				line += fmt.Sprintf(" slowest=%s/%s", ev.SlowestID, ev.SlowestPhase)
			}
			fmt.Println(line)
		}
	}()

	if *parent != "" {
		log.Printf("relay: serving %d cohort clients on %s, joining parent %s", *clients, *addr, *parent)
	} else {
		log.Printf("listening on %s for %d clients", *addr, *clients)
	}
	res, err := job.Run(ctx)
	wg.Wait()
	switch {
	case errors.Is(err, context.Canceled):
		if res == nil {
			log.Fatal("interrupted while waiting for clients to join")
		}
		log.Printf("interrupted after %d rounds", len(res.Stats))
	case err != nil:
		log.Fatal(err)
	}
	if len(res.Stats) == 0 {
		return // stopped before any round completed; nothing to report
	}
	if res.Joins > 0 || res.Evictions > 0 || res.Stragglers > 0 {
		log.Printf("membership churn: %d joins, %d evictions, %d stragglers dropped",
			res.Joins, res.Evictions, res.Stragglers)
	}
	fmt.Printf("final perplexity: %.2f\n", res.FinalPerplexity)
}
