// Command photon-agg runs a networked Photon aggregator: it listens for
// LLM clients (photon-client processes) and coordinates federated rounds
// over the Photon wire protocol, streaming per-round progress as it runs.
// Ctrl-C shuts the federation down gracefully.
//
// Usage:
//
//	photon-agg -addr :9000 -clients 2 -rounds 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"photon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-agg: ")
	var (
		addr     = flag.String("addr", ":9000", "listen address")
		size     = flag.String("model", string(photon.SizeTiny), "model size preset")
		clients  = flag.Int("clients", 2, "clients to wait for")
		rounds   = flag.Int("rounds", 10, "federated rounds")
		server   = flag.String("server", "fedavg", "server optimizer (see photon.ServerOptimizers)")
		compress = flag.Bool("compress", true, "flate-compress parameter payloads")
		seed     = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	job := photon.NewJob(
		photon.WithBackend(photon.BackendAggregator),
		photon.WithAddr(*addr),
		photon.WithModel(photon.ModelSize(*size)),
		photon.WithExpectClients(*clients),
		photon.WithRounds(*rounds),
		photon.WithServerOptimizer(*server),
		photon.WithCompression(*compress),
		photon.WithSeed(*seed),
	)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range job.Events() {
			fmt.Printf("round %2d: clients=%d loss=%.4f ppl=%.2f comm=%.2fMB\n",
				ev.Round, ev.Clients, ev.TrainLoss, ev.Perplexity, float64(ev.CommBytes)/1e6)
		}
	}()

	log.Printf("listening on %s for %d clients", *addr, *clients)
	res, err := job.Run(ctx)
	wg.Wait()
	switch {
	case errors.Is(err, context.Canceled):
		if res == nil {
			log.Fatal("interrupted while waiting for clients to join")
		}
		log.Printf("interrupted after %d rounds", len(res.Stats))
	case err != nil:
		log.Fatal(err)
	}
	if len(res.Stats) == 0 {
		return // stopped before any round completed; nothing to report
	}
	fmt.Printf("final perplexity: %.2f\n", res.FinalPerplexity)
}
