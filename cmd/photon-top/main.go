// Command photon-top is a live fleet dashboard: it attaches to one or more
// Photon aggregators (root and relays) as a read-only observer and renders
// per-tier round progress, the round's phase breakdown, wire throughput,
// and the member-health/straggler map, refreshing in place like top(1).
// The subscription is codec-free and never occupies a membership slot, so
// it is safe to point at a production fleet mid-run.
//
// When stdout is not a terminal (or with -plain), it degrades to one log
// line per round event, suitable for piping.
//
// Usage:
//
//	photon-top -addr localhost:9000
//	photon-top -addr localhost:9000,localhost:9001,localhost:9002
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"photon/internal/fed"
	"photon/internal/link"
)

// feed is the latest state of one observed aggregator.
type feed struct {
	addr      string
	connected bool
	lastErr   string
	ev        fed.ObserveEvent
	lastAt    time.Time // arrival time of ev
	prevAt    time.Time // arrival time of the event before it
	rounds    int       // events seen on this feed
}

// board is the shared dashboard state: one feed per observed address.
type board struct {
	mu    sync.Mutex
	feeds map[string]*feed
}

func (b *board) get(addr string) *feed {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.feeds[addr]
	if !ok {
		f = &feed{addr: addr}
		b.feeds[addr] = f
	}
	return f
}

func (b *board) snapshot() []feed {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]feed, 0, len(b.feeds))
	for _, f := range b.feeds {
		out = append(out, *f)
	}
	// Root first, then relays by tier, then address for stability.
	sort.Slice(out, func(i, j int) bool {
		if out[i].ev.Record.Tier != out[j].ev.Record.Tier {
			return out[i].ev.Record.Tier < out[j].ev.Record.Tier
		}
		return out[i].addr < out[j].addr
	})
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-top: ")
	var (
		addrs   = flag.String("addr", "localhost:9000", "comma-separated aggregator/relay addresses to observe")
		refresh = flag.Duration("refresh", time.Second, "dashboard redraw interval")
		plain   = flag.Bool("plain", false, "force plain per-event log lines (automatic when stdout is not a terminal)")
	)
	flag.Parse()

	targets := strings.Split(*addrs, ",")
	for i := range targets {
		targets[i] = strings.TrimSpace(targets[i])
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tty := !*plain && stdoutIsTTY()
	b := &board{feeds: make(map[string]*feed)}

	var wg sync.WaitGroup
	for _, addr := range targets {
		if addr == "" {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			watch(ctx, b, addr, !tty)
		}(addr)
	}

	if tty {
		ticker := time.NewTicker(*refresh)
		defer ticker.Stop()
		fmt.Print("\x1b[2J") // clear once; redraws repaint from home
		for {
			select {
			case <-ctx.Done():
				fmt.Print("\x1b[0m\n")
				wg.Wait()
				return
			case <-ticker.C:
				fmt.Print(render(b.snapshot()))
			}
		}
	}
	wg.Wait()
}

// watch keeps one observer subscription alive: dial, observe, and on a lost
// session back off and redial until ctx ends or the fleet shuts down.
func watch(ctx context.Context, b *board, addr string, plain bool) {
	backoff := time.Second
	for ctx.Err() == nil {
		conn, err := link.DialContext(ctx, addr)
		if err != nil {
			f := b.get(addr)
			b.mu.Lock()
			f.connected, f.lastErr = false, err.Error()
			b.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		f := b.get(addr)
		b.mu.Lock()
		f.connected, f.lastErr = true, ""
		b.mu.Unlock()
		err = fed.Observe(ctx, conn, func(ev fed.ObserveEvent) {
			b.mu.Lock()
			f.prevAt, f.lastAt = f.lastAt, time.Now()
			f.ev = ev
			f.rounds++
			f.connected = true
			b.mu.Unlock()
			if plain {
				fmt.Println(plainLine(addr, ev))
			}
		})
		conn.Close()
		b.mu.Lock()
		f.connected = false
		if err != nil {
			f.lastErr = err.Error()
		}
		b.mu.Unlock()
		if err == nil || errors.Is(err, context.Canceled) {
			return // clean shutdown from the aggregator, or our own exit
		}
	}
}

func stdoutIsTTY() bool {
	fi, err := os.Stdout.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// plainLine formats one event as a pipe-friendly log line.
func plainLine(addr string, ev fed.ObserveEvent) string {
	r := ev.Record
	line := fmt.Sprintf("%s tier%d round %d: clients=%d loss=%.4f", addr, r.Tier, r.Round, r.Clients, r.TrainLoss)
	if r.ModelVersion > 0 {
		line += fmt.Sprintf(" ver=%d buf=%d stale=%.1f", r.ModelVersion, r.BufferFill, r.MeanStaleness)
	}
	if r.ValPPL > 0 {
		line += fmt.Sprintf(" ppl=%.2f", r.ValPPL)
	}
	line += fmt.Sprintf(" wall=%.0fms sent=%s recv=%s", r.WallMs, fmtBytes(r.WireSentBytes), fmtBytes(r.WireRecvBytes))
	if r.CompressionRatio > 0 {
		line += fmt.Sprintf(" ratio=%.2f", r.CompressionRatio)
	}
	if r.SlowestID != "" {
		line += " slowest=" + r.SlowestID
	}
	if r.TraceID != 0 {
		line += fmt.Sprintf(" trace=%x", r.TraceID)
	}
	return line
}

// render paints the whole dashboard into one string (single write avoids
// flicker) starting from the cursor-home position.
func render(feeds []feed) string {
	var sb strings.Builder
	sb.WriteString("\x1b[H")
	now := time.Now()
	fmt.Fprintf(&sb, "\x1b[1mphoton-top\x1b[0m  %s  (%d feeds)\x1b[K\n\n", now.Format("15:04:05"), len(feeds))
	for _, f := range feeds {
		renderFeed(&sb, f, now)
	}
	sb.WriteString("\x1b[J") // clear anything stale below
	return sb.String()
}

func renderFeed(sb *strings.Builder, f feed, now time.Time) {
	r := f.ev.Record
	status := "\x1b[32mlive\x1b[0m"
	if !f.connected {
		status = "\x1b[31mdown\x1b[0m"
		if f.lastErr != "" {
			status += " (" + f.lastErr + ")"
		}
	}
	tierName := fmt.Sprintf("tier %d", r.Tier)
	if f.rounds == 0 {
		fmt.Fprintf(sb, "\x1b[1m%s\x1b[0m  %s — waiting for first round\x1b[K\n\n", f.addr, status)
		return
	}
	fmt.Fprintf(sb, "\x1b[1m%s\x1b[0m  %s  %s  round %d (%d seen, %.0fs ago)\x1b[K\n",
		f.addr, tierName, status, r.Round, f.rounds, now.Sub(f.lastAt).Seconds())

	line := fmt.Sprintf("  clients=%d loss=%.4f", r.Clients, r.TrainLoss)
	if r.ModelVersion > 0 {
		line += fmt.Sprintf(" ver=%d buf=%d stale=%.1f", r.ModelVersion, r.BufferFill, r.MeanStaleness)
	}
	if r.ValPPL > 0 {
		line += fmt.Sprintf(" ppl=%.2f", r.ValPPL)
	}
	if !f.prevAt.IsZero() {
		if dt := f.lastAt.Sub(f.prevAt).Seconds(); dt > 0 {
			line += fmt.Sprintf(" wire=%s/s↑ %s/s↓",
				fmtBytes(int64(float64(r.WireSentBytes)/dt)), fmtBytes(int64(float64(r.WireRecvBytes)/dt)))
		}
	}
	if r.CompressionRatio > 0 {
		line += fmt.Sprintf(" ratio=%.2f", r.CompressionRatio)
	}
	if r.HeartbeatRTTMs > 0 {
		line += fmt.Sprintf(" rtt=%.1f/%.1fms(p99)", r.HeartbeatRTTMs, r.HeartbeatRTTP99Ms)
	}
	if r.Joins > 0 || r.Evictions > 0 || r.Stragglers > 0 {
		line += fmt.Sprintf(" churn=+%d/-%d/s%d", r.Joins, r.Evictions, r.Stragglers)
	}
	fmt.Fprintf(sb, "%s\x1b[K\n", line)

	fmt.Fprintf(sb, "  wall %7.0fms  %s", r.WallMs, phaseBar(f.ev, 40))
	if r.SlowestID != "" {
		fmt.Fprintf(sb, "  slowest=%s", r.SlowestID)
	}
	if r.TraceID != 0 {
		fmt.Fprintf(sb, "  trace=%x", r.TraceID)
	}
	sb.WriteString("\x1b[K\n")

	if len(f.ev.Members) > 0 {
		// Async feeds (a committed model version present) carry per-member
		// version lag; show it as a staleness column.
		asyncFeed := r.ModelVersion > 0
		fmt.Fprintf(sb, "  members:\x1b[K\n")
		for _, m := range f.ev.Members {
			marker := "\x1b[32m●\x1b[0m"
			switch {
			case m.Health < 0.5:
				marker = "\x1b[31m○\x1b[0m"
			case m.Health < 0.9:
				marker = "\x1b[33m◐\x1b[0m"
			}
			memberLine := fmt.Sprintf("    %s %-20s health=%.2f rtt=%6.1fms straggles=%d",
				marker, m.ID, m.Health, m.RTTMs, m.Straggles)
			if asyncFeed {
				memberLine += fmt.Sprintf(" stale=%d", m.Staleness)
			}
			fmt.Fprintf(sb, "%s\x1b[K\n", memberLine)
		}
	}
	sb.WriteString("\x1b[K\n")
}

// phaseBar renders the round's phase breakdown as a fixed-width bar, one
// letter per phase (Broadcast, Train, Encode, Wire, Decode, Aggregate,
// eVal), each segment sized by its share of the round.
func phaseBar(ev fed.ObserveEvent, width int) string {
	b := ev.Record.Phases
	phases := []struct {
		ch string
		ms float64
	}{
		{"B", b.BroadcastMs}, {"T", b.TrainMs}, {"E", b.EncodeMs},
		{"W", b.WireMs}, {"D", b.DecodeMs}, {"A", b.AggregateMs}, {"V", b.EvalMs},
	}
	total := 0.0
	for _, p := range phases {
		total += p.ms
	}
	if total <= 0 {
		return "[" + strings.Repeat(" ", width) + "]"
	}
	var sb strings.Builder
	sb.WriteString("[")
	used := 0
	for _, p := range phases {
		n := int(p.ms / total * float64(width))
		if p.ms > 0 && n == 0 {
			n = 1 // every nonzero phase gets at least one cell
		}
		if used+n > width {
			n = width - used
		}
		sb.WriteString(strings.Repeat(p.ch, n))
		used += n
	}
	sb.WriteString(strings.Repeat(" ", width-used))
	sb.WriteString("]")
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
