// Command photon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	photon-bench -list
//	photon-bench -exp table2
//	photon-bench -all -full -out results.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photon/internal/bench"
	"photon/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-bench: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		full      = flag.Bool("full", false, "full-scale sweeps (slower; default quick)")
		list      = flag.Bool("list", false, "list experiments")
		out       = flag.String("out", "", "write output to file instead of stdout")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()

	if *metricsAt != "" {
		ms, err := obsv.Serve(*metricsAt, nil)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		health := obsv.NewHealthTracker("photon-bench", 0)
		ms.SetHealth(health.Get)
		defer ms.Close()
		log.Printf("observability on http://%s/metrics", ms.Addr())
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	run := func(e bench.Experiment) {
		start := time.Now()
		fmt.Fprintf(w, "==> %s: %s\n\n", e.ID, e.Title)
		if err := e.Run(ctx, w, scale); err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatalf("%s: interrupted", e.ID)
			}
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(w, "\n(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, e := range bench.Registry() {
			if ctx.Err() != nil {
				log.Fatal("interrupted")
			}
			run(e)
		}
	case *exp != "":
		e, err := bench.Lookup(*exp)
		if err != nil {
			log.Fatal(err)
		}
		run(e)
	default:
		log.Fatal("specify -exp <id>, -all, or -list")
	}
}
