// Command photon-client runs a networked Photon LLM client (LLM-C): it
// joins an aggregator, trains on its local data shard each round, and
// uploads model updates until the aggregator ends the session. Ctrl-C
// leaves the federation gracefully.
//
// Usage:
//
//	photon-client -addr localhost:9000 -id silo-utah -shard 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"photon"
	"photon/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-client: ")
	var (
		addr      = flag.String("addr", "localhost:9000", "aggregator address")
		id        = flag.String("id", "client-0", "client identity")
		size      = flag.String("model", string(photon.SizeTiny), "model size preset")
		shard     = flag.Int("shard", 0, "C4 shard index (0..63) held by this client")
		steps     = flag.Int("steps", 16, "local steps per round (τ)")
		batch     = flag.Int("batch", 4, "local batch size (Bl)")
		lr        = flag.Float64("lr", 3e-3, "peak learning rate")
		codec     = flag.String("codec", "", "require this wire codec from the aggregator (empty accepts whatever it announces)")
		compress  = flag.Bool("compress", true, "deprecated: codec choice is announced by the aggregator; see -codec")
		seed      = flag.Int64("seed", 1, "run seed")
		retry     = flag.Int("reconnect", 5, "reconnect attempts after a lost session (0 disables)")
		ckpt      = flag.String("ckpt", "", "local checkpoint path for crash recovery (optional)")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()
	_ = *compress // deprecated: the aggregator announces the codec
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "compress" {
			log.Printf("warning: -compress is deprecated and has no effect; the aggregator announces the wire codec (use -codec=flate to require it)")
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Tier -1: a leaf doesn't know its distance from the root (it depends on
	// whether it joined a relay or the root aggregator).
	health := obsv.NewHealthTracker("photon-client", -1)
	if *metricsAt != "" {
		ms, err := obsv.Serve(*metricsAt, nil)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		ms.SetHealth(health.Get)
		defer ms.Close()
		log.Printf("observability on http://%s/metrics", ms.Addr())
	}

	opts := []photon.JobOption{
		photon.WithBackend(photon.BackendClient),
		photon.WithAddr(*addr),
		photon.WithClientID(*id),
		photon.WithModel(photon.ModelSize(*size)),
		photon.WithShard(*shard),
		photon.WithLocalSteps(*steps),
		photon.WithBatchSize(*batch),
		photon.WithMaxLR(*lr),
		photon.WithSeed(*seed),
		photon.WithReconnect(*retry),
		photon.WithCheckpoint(*ckpt),
	}
	if *codec != "" {
		opts = append(opts, photon.WithCodec(*codec))
	}
	job := photon.NewJob(opts...)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range job.Events() {
			health.Observe(ev.Round, ev.Clients)
			line := fmt.Sprintf("round %2d: local loss=%.4f comm=%.2fMB",
				ev.Round, ev.TrainLoss, float64(ev.CommBytes)/1e6)
			if ev.ModelVersion > 0 {
				line += fmt.Sprintf(" ver=%d", ev.ModelVersion)
			}
			fmt.Println(line)
		}
	}()

	log.Printf("%s joining %s with shard %d", *id, *addr, *shard)
	_, err := job.Run(ctx)
	wg.Wait()
	switch {
	case errors.Is(err, context.Canceled):
		log.Printf("%s: interrupted, left federation", *id)
	case err != nil:
		log.Fatal(err)
	default:
		log.Printf("%s: session complete", *id)
	}
}
