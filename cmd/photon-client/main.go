// Command photon-client runs a networked Photon LLM client (LLM-C): it
// joins an aggregator, trains on its local data shard each round, and
// uploads model updates until the aggregator ends the session. Ctrl-C
// leaves the federation gracefully.
//
// Usage:
//
//	photon-client -addr localhost:9000 -id silo-utah -shard 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"photon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-client: ")
	var (
		addr     = flag.String("addr", "localhost:9000", "aggregator address")
		id       = flag.String("id", "client-0", "client identity")
		size     = flag.String("model", string(photon.SizeTiny), "model size preset")
		shard    = flag.Int("shard", 0, "C4 shard index (0..63) held by this client")
		steps    = flag.Int("steps", 16, "local steps per round (τ)")
		batch    = flag.Int("batch", 4, "local batch size (Bl)")
		lr       = flag.Float64("lr", 3e-3, "peak learning rate")
		compress = flag.Bool("compress", true, "flate-compress parameter payloads")
		seed     = flag.Int64("seed", 1, "run seed")
		retry    = flag.Int("reconnect", 5, "reconnect attempts after a lost session (0 disables)")
		ckpt     = flag.String("ckpt", "", "local checkpoint path for crash recovery (optional)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	job := photon.NewJob(
		photon.WithBackend(photon.BackendClient),
		photon.WithAddr(*addr),
		photon.WithClientID(*id),
		photon.WithModel(photon.ModelSize(*size)),
		photon.WithShard(*shard),
		photon.WithLocalSteps(*steps),
		photon.WithBatchSize(*batch),
		photon.WithMaxLR(*lr),
		photon.WithCompression(*compress),
		photon.WithSeed(*seed),
		photon.WithReconnect(*retry),
		photon.WithCheckpoint(*ckpt),
	)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range job.Events() {
			fmt.Printf("round %2d: local loss=%.4f comm=%.2fMB\n",
				ev.Round, ev.TrainLoss, float64(ev.CommBytes)/1e6)
		}
	}()

	log.Printf("%s joining %s with shard %d", *id, *addr, *shard)
	_, err := job.Run(ctx)
	wg.Wait()
	switch {
	case errors.Is(err, context.Canceled):
		log.Printf("%s: interrupted, left federation", *id)
	case err != nil:
		log.Fatal(err)
	default:
		log.Printf("%s: session complete", *id)
	}
}
