// Command photon-client runs a networked Photon LLM client (LLM-C): it
// joins an aggregator, trains on its local data shard each round, and
// uploads model updates until the aggregator ends the session.
//
// Usage:
//
//	photon-client -addr localhost:9000 -id silo-utah -shard 3
package main

import (
	"flag"
	"log"

	"photon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-client: ")
	var (
		addr     = flag.String("addr", "localhost:9000", "aggregator address")
		id       = flag.String("id", "client-0", "client identity")
		size     = flag.String("model", string(photon.SizeTiny), "model size preset")
		shard    = flag.Int("shard", 0, "C4 shard index (0..63) held by this client")
		steps    = flag.Int("steps", 16, "local steps per round (τ)")
		batch    = flag.Int("batch", 4, "local batch size (Bl)")
		lr       = flag.Float64("lr", 3e-3, "peak learning rate")
		compress = flag.Bool("compress", true, "flate-compress parameter payloads")
		seed     = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()

	log.Printf("%s joining %s with shard %d", *id, *addr, *shard)
	err := photon.JoinAsClient(photon.ClientOptions{
		Addr:       *addr,
		ID:         *id,
		Size:       photon.ModelSize(*size),
		Shard:      *shard,
		LocalSteps: *steps,
		BatchSize:  *batch,
		MaxLR:      *lr,
		Compress:   *compress,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: session complete", *id)
}
