package photon

// One testing.B benchmark per paper table and figure, each regenerating the
// artifact through the experiment harness at Quick scale, plus
// micro-benchmarks for the hot substrate kernels (matmul, forward/backward,
// wire codec, ring all-reduce, one federated round).
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"photon/internal/bench"
	"photon/internal/data"
	"photon/internal/ddp"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/tensor"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), io.Discard, bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper tables.
func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable78(b *testing.B) { benchExperiment(b, "table78") }

// Paper figures.
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// Ablations called out in DESIGN.md.
func BenchmarkAblationAsync(b *testing.B)       { benchExperiment(b, "ablation-async") }
func BenchmarkAblationOuterOpt(b *testing.B)    { benchExperiment(b, "ablation-outeropt") }
func BenchmarkAblationRecipe(b *testing.B)      { benchExperiment(b, "ablation-recipe") }
func BenchmarkAblationOptState(b *testing.B)    { benchExperiment(b, "ablation-optstate") }
func BenchmarkAblationCompression(b *testing.B) { benchExperiment(b, "ablation-compression") }
func BenchmarkAblationCodecConvergence(b *testing.B) {
	benchExperiment(b, "ablation-codec-convergence")
}
func BenchmarkAblationSubFed(b *testing.B) { benchExperiment(b, "ablation-subfed") }
func BenchmarkAblationDDP(b *testing.B)    { benchExperiment(b, "ablation-ddp") }

// --- substrate micro-benchmarks ---

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewMatrix(128, 128)
	y := tensor.NewMatrix(128, 128)
	c := tensor.NewMatrix(128, 128)
	tensor.RandNormal(rng, x.Data, 0, 1)
	tensor.RandNormal(rng, y.Data, 0, 1)
	b.SetBytes(128 * 128 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(c, x, y)
	}
}

func benchTinyModel() (*nn.Model, nn.Batch) {
	cfg := nn.ConfigTiny
	cfg.SeqLen = 16
	m := nn.NewModel(cfg, rand.New(rand.NewSource(1)))
	st := data.NewSourceStream(data.C4Like(cfg.VocabSize), 2)
	return m, st.NextBatch(4, 16)
}

func BenchmarkForwardBackward(b *testing.B) {
	m, batch := benchTinyModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
	}
}

func BenchmarkAdamWStep(b *testing.B) {
	m, batch := benchTinyModel()
	o := opt.NewAdamW(0.9, 0.95, 0.01)
	m.Params().ZeroGrads()
	m.ForwardBackward(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Step(m.Params(), 1e-3)
	}
}

func BenchmarkLinkEncodeCompressed(b *testing.B) {
	payload := make([]float32, 100_000)
	rng := rand.New(rand.NewSource(1))
	tensor.RandNormal(rng, payload, 0, 0.01)
	codec := link.FlateCodec{}
	b.SetBytes(int64(len(payload) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := link.EncodeVector(codec, payload)
		if err != nil {
			b.Fatal(err)
		}
		m := &link.Message{Type: link.MsgUpdate, Payload: enc}
		if err := link.Encode(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingAllReduce8x100k(b *testing.B) {
	buffers := make([][]float32, 8)
	for w := range buffers {
		buffers[w] = make([]float32, 100_000)
	}
	b.SetBytes(8 * 100_000 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ddp.RingAllReduce(buffers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFederatedRound(b *testing.B) {
	cfg := nn.ConfigTiny
	cfg.SeqLen = 16
	part, err := data.IIDPartition(data.C4Like(cfg.VocabSize), 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	clients := make([]*fed.Client, 4)
	for i := range clients {
		clients[i] = fed.NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
	}
	global := nn.NewModel(cfg, rand.New(rand.NewSource(1))).Params().Flatten(nil)
	spec := fed.LocalSpec{Steps: 8, BatchSize: 4, SeqLen: 16, Schedule: opt.Constant(3e-3), ClipNorm: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		updates := make([][]float32, 0, len(clients))
		for _, c := range clients {
			res, err := c.RunRound(context.Background(), global, 0, spec)
			if err != nil {
				b.Fatal(err)
			}
			updates = append(updates, res.Update)
		}
		delta, err := fed.MeanDelta(updates)
		if err != nil {
			b.Fatal(err)
		}
		fed.FedAvg{}.Step(global, delta, i)
	}
}
