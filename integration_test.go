package photon

// End-to-end integration tests: a TLS-encrypted, compressed, networked
// federation; mid-run client failure tolerance; and full crash recovery
// through the public API surface.

import (
	"context"
	"crypto/x509"
	"testing"

	"photon/internal/data"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/nn"
	"photon/internal/opt"
)

func tinyNetCfg() nn.Config {
	c := nn.ConfigTiny
	c.SeqLen = 16
	return c
}

func netSpec() fed.LocalSpec {
	return fed.LocalSpec{Steps: 4, BatchSize: 4, SeqLen: 16,
		Schedule: opt.Constant(3e-3), ClipNorm: 1}
}

func netClient(t *testing.T, id string, shard int) *fed.Client {
	t.Helper()
	cfg := tinyNetCfg()
	stream := data.NewShard(data.C4Like(cfg.VocabSize), shard, 7)
	return fed.NewClient(id, cfg, stream, opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
}

// TestTLSFederationEndToEnd runs a real federation over TLS with payload
// compression: certificate generation, pinned-root verification, joins,
// three rounds, and convergence of the aggregated model.
func TestTLSFederationEndToEnd(t *testing.T) {
	cert, certPEM, err := link.SelfSignedCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	l, err := link.ListenTLS("127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("bad certificate PEM")
	}
	const clients = 3
	for i := 0; i < clients; i++ {
		go func(i int) {
			conn, err := link.DialTLS(l.Addr(), pool)
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(context.Background(), conn, netClient(t, string(rune('a'+i)), i), netSpec())
		}(i)
	}

	cfg := tinyNetCfg()
	res, err := fed.Serve(context.Background(), l, fed.ServerConfig{
		ModelConfig:   cfg,
		Seed:          21,
		Rounds:        3,
		ExpectClients: clients,
		Outer:         fed.FedAvg{},
		Validation:    data.NewValidationSet(data.C4Like(cfg.VocabSize), 8, 16, 999),
		EvalEvery:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != 3 {
		t.Fatalf("rounds: got %d", res.History.Len())
	}
	first := res.History.Rounds[0].ValPPL
	last := res.History.FinalPPL()
	if !(last < first) {
		t.Fatalf("TLS federation did not improve: %v -> %v", first, last)
	}
}

// TestServerToleratesMidRunClientLoss joins three clients, has one vanish
// after the first round, and verifies the aggregator finishes the run with
// partial updates from the survivors.
func TestServerToleratesMidRunClientLoss(t *testing.T) {
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Two healthy clients.
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(context.Background(), conn, netClient(t, string(rune('a'+i)), i), netSpec())
		}(i)
	}
	// One client that answers round 1 and then disconnects.
	go func() {
		conn, err := link.Dial(l.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := fed.Handshake(conn, "flaky", ""); err != nil {
			return
		}
		msg, err := conn.Recv()
		if err != nil || msg.Type != link.MsgModel {
			return
		}
		global, err := msg.Payload.Floats()
		if err != nil {
			return
		}
		c := netClient(t, "flaky", 5)
		res, err := c.RunRound(context.Background(), global, 0, netSpec())
		if err != nil {
			return
		}
		_ = conn.Send(&link.Message{Type: link.MsgUpdate, Round: msg.Round,
			ClientID: "flaky", Meta: res.Metrics, Payload: link.Dense(res.Update)})
		// Vanish before round 2.
	}()

	cfg := tinyNetCfg()
	res, err := fed.Serve(context.Background(), l, fed.ServerConfig{
		ModelConfig:   cfg,
		Seed:          23,
		Rounds:        3,
		ExpectClients: 3,
		Outer:         fed.FedAvg{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Rounds[0].Clients != 3 {
		t.Fatalf("round 1 should have all 3 clients, got %d", res.History.Rounds[0].Clients)
	}
	lastRound := res.History.Rounds[2]
	if lastRound.Clients != 2 {
		t.Fatalf("round 3 should proceed with 2 survivors, got %d", lastRound.Clients)
	}
	if lastRound.UpdateNorm == 0 {
		t.Fatal("surviving clients produced no aggregate update")
	}
}

// TestCrashRecoveryThroughPublicAPI trains with checkpointing, "crashes",
// and resumes from the checkpoint via Options.ResumeFrom, verifying round
// numbering continues and progress carries over.
func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	path := t.TempDir() + "/global.ckpt"
	res1, err := Pretrain(Options{Rounds: 5, CheckpointPath: path, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res1.FinalPerplexity >= 64 {
		t.Fatalf("first run did not learn: %v", res1.FinalPerplexity)
	}
	res2, err := Pretrain(Options{Rounds: 3, ResumeFrom: path, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Stats[0].Round; got != 6 {
		t.Fatalf("resume should continue at round 6, got %d", got)
	}
	coldStart := res1.Stats[0].Perplexity
	warmStart := res2.Stats[0].Perplexity
	if !(warmStart < coldStart*0.95) {
		t.Fatalf("resume lost progress: cold %v warm %v", coldStart, warmStart)
	}
	// A missing checkpoint is a clean error.
	if _, err := Pretrain(Options{Rounds: 1, ResumeFrom: path + ".missing"}); err == nil {
		t.Fatal("missing resume checkpoint accepted")
	}
}
