package photon

import "context"

// CentralizedOptions configures PretrainCentralized, the Algorithm 2
// baseline. Zero values select defaults matching Options.
//
// Deprecated: build a Job with NewJob and WithBackend(BackendCentralized)
// instead; CentralizedOptions remains for the legacy entry point.
type CentralizedOptions struct {
	Size      ModelSize // default SizeTiny
	Steps     int       // optimizer steps (default 320)
	Workers   int       // DDP workers (default 1)
	BatchSize int       // per-worker batch (default 16)
	SeqLen    int       // default 16
	MaxLR     float64   // default 3e-3
	StopAtPPL float64
	Seed      int64 // default 1
}

// PretrainCentralized trains the centralized/DDP baseline on the same
// C4-like corpus and validation set used by Pretrain, making results
// directly comparable.
//
// Deprecated: use NewJob(WithBackend(BackendCentralized), ...).Run(ctx),
// which adds cancellation and live Events telemetry.
func PretrainCentralized(o CentralizedOptions) (*Result, error) {
	res, err := NewJob(
		WithBackend(BackendCentralized),
		WithModel(o.Size),
		WithSteps(o.Steps),
		WithWorkers(o.Workers),
		WithBatchSize(o.BatchSize),
		WithSeqLen(o.SeqLen),
		WithMaxLR(o.MaxLR),
		WithStopAtPPL(o.StopAtPPL),
		WithSeed(o.Seed),
	).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res, nil
}
