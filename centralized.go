package photon

import (
	"fmt"

	"photon/internal/data"
	"photon/internal/ddp"
	"photon/internal/nn"
	"photon/internal/opt"
)

// CentralizedOptions configures PretrainCentralized, the Algorithm 2
// baseline. Zero values select defaults matching Options.
type CentralizedOptions struct {
	Size      ModelSize // default SizeTiny
	Steps     int       // optimizer steps (default 320)
	Workers   int       // DDP workers (default 1)
	BatchSize int       // per-worker batch (default 16)
	SeqLen    int       // default 16
	MaxLR     float64   // default 3e-3
	StopAtPPL float64
	Seed      int64 // default 1
}

func (o *CentralizedOptions) fill() {
	if o.Size == "" {
		o.Size = SizeTiny
	}
	if o.Steps == 0 {
		o.Steps = 320
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if o.SeqLen == 0 {
		o.SeqLen = 16
	}
	if o.MaxLR == 0 {
		o.MaxLR = 3e-3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// PretrainCentralized trains the centralized/DDP baseline on the same
// C4-like corpus and validation set used by Pretrain, making results
// directly comparable.
func PretrainCentralized(o CentralizedOptions) (*Result, error) {
	o.fill()
	cfg, err := ModelConfig(o.Size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = o.SeqLen
	if o.Workers < 1 || o.Workers > data.NumShards {
		return nil, fmt.Errorf("photon: workers must be in 1..%d", data.NumShards)
	}
	src := data.C4Like(cfg.VocabSize)
	streams := make([]data.Stream, o.Workers)
	for i := range streams {
		streams[i] = data.NewShard(src, i, o.Seed+1000)
	}
	res, err := ddp.Run(ddp.Config{
		ModelConfig: cfg,
		Seed:        o.Seed,
		Steps:       o.Steps,
		Workers:     o.Workers,
		BatchSize:   o.BatchSize,
		SeqLen:      cfg.SeqLen,
		Schedule:    opt.PaperCosine(o.MaxLR, o.Steps),
		ClipNorm:    1.0,
		Streams:     streams,
		Validation:  data.NewValidationSet(src, 16, cfg.SeqLen, 987654),
		EvalEvery:   10,
		StopAtPPL:   o.StopAtPPL,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{model: res.FinalModel, FinalPerplexity: res.History.FinalPPL()}
	for _, r := range res.History.Rounds {
		out.Stats = append(out.Stats, RoundStat{
			Round: r.Round, TrainLoss: r.TrainLoss, Perplexity: r.ValPPL, Clients: r.Clients,
		})
	}
	return out, nil
}

// compile-time guard that the proxy presets stay trainable.
var _ = nn.ConfigTiny
