package photon

// End-to-end tests for the durable control plane: a WAL-journaling root
// aggregator killed mid-run via an armed crash point and restarted on the
// same directory must resume the run — matching an uninterrupted control
// run to float tolerance, never training any client round twice — and a
// crash-point sweep exercises recovery after every WAL record type. The
// overhead guard keeps journaling from creeping into the round critical
// path.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"photon/internal/ckpt"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/testutil"
)

// durableServerConfig is the shared aggregator shape for these tests: two
// expected clients, a participation floor of two so resumed rounds wait for
// the cohort to reconnect, and a deadline long enough to never fire.
func durableServerConfig(seed int64, rounds int, outer fed.OuterOpt) fed.ServerConfig {
	return fed.ServerConfig{
		ModelConfig:   tinyNetCfg(),
		Seed:          seed,
		Rounds:        rounds,
		ExpectClients: 2,
		MinClients:    2,
		RoundDeadline: 30 * time.Second,
		Outer:         outer,
	}
}

// controlRun completes an uninterrupted run and returns its final params.
func controlRun(t *testing.T, seed int64, rounds int, outer fed.OuterOpt) []float32 {
	t.Helper()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(ctx, conn, netClient(t, fmt.Sprintf("d%d", i), i), netSpec())
		}(i)
	}
	res, err := fed.Serve(context.Background(), l, durableServerConfig(seed, rounds, outer))
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	return res.Global
}

// crashResumeRun runs the crash/restart choreography once: two resilient
// clients train against a WAL-journaling aggregator whose failpoint is
// armed at site after round 2 commits; the aggregator dies on the armed
// append, is restarted on the same WAL directory, and must finish the run.
// It returns the resumed run's result plus each client's per-round served
// counts (every count must be 1 — a round trained twice would advance the
// client's data stream off the control trajectory).
func crashResumeRun(t *testing.T, site string, seed int64, rounds int, newOuter func() fed.OuterOpt, regDir string) (*fed.Result, map[string]map[int]int) {
	t.Helper()
	walDir := t.TempDir()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// The aggregator closes its listener when it dies (a cancelled
	// AcceptContext ends the listener's life), so the second life re-binds
	// the same address — the clients keep dialing the captured string.
	addr := l.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var mu sync.Mutex
	served := map[string]map[int]int{}
	clientDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("d%d", i)
		go func(i int, id string) {
			clientDone <- fed.RunResilientClient(ctx, func(ctx context.Context) (*link.Conn, error) {
				return link.DialContext(ctx, addr)
			}, netClient(t, id, i), netSpec(), fed.ReconnectConfig{
				MaxAttempts:    100,
				InitialBackoff: 20 * time.Millisecond,
				MaxBackoff:     200 * time.Millisecond,
			}, func(r metrics.Round) {
				mu.Lock()
				if served[id] == nil {
					served[id] = map[int]int{}
				}
				served[id][r.Round]++
				mu.Unlock()
			})
		}(i, id)
	}

	// First life: arm the crash point once the run is warm (after round 2
	// commits), so the armed append fires mid-run rather than at startup.
	fp := &ckpt.Failpoint{}
	cfg := durableServerConfig(seed, rounds, newOuter())
	cfg.WALDir, cfg.RegistryDir, cfg.Failpoint = walDir, regDir, fp
	cfg.OnRound = func(r metrics.Round) {
		if r.Round == 2 {
			fp.Arm(site)
		}
	}
	if _, err := fed.Serve(context.Background(), l, cfg); err == nil || !errors.Is(err, ckpt.ErrFailpoint) {
		t.Fatalf("site %s: first life did not die on the armed crash point: %v", site, err)
	}
	if !fp.Fired() {
		t.Fatalf("site %s: failpoint armed but never fired", site)
	}

	// Second life: same WAL directory, no failpoint. The resilient clients
	// reconnect to it and the run must complete.
	l2, err := link.Listen(addr)
	if err != nil {
		t.Fatalf("site %s: re-listen on %s: %v", site, addr, err)
	}
	defer l2.Close()
	cfg2 := durableServerConfig(seed, rounds, newOuter())
	cfg2.WALDir, cfg2.RegistryDir = walDir, regDir
	res, err := fed.Serve(context.Background(), l2, cfg2)
	if err != nil {
		t.Fatalf("site %s: resumed run: %v", site, err)
	}
	for i := 0; i < 2; i++ {
		if cerr := <-clientDone; cerr != nil {
			t.Fatalf("site %s: resilient client: %v", site, cerr)
		}
	}
	if res.History.Len() == 0 || res.History.Rounds[res.History.Len()-1].Round != rounds {
		t.Fatalf("site %s: resumed run did not reach round %d: %d records", site, rounds, res.History.Len())
	}
	mu.Lock()
	defer mu.Unlock()
	return res, served
}

func maxAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func assertNoDoubleTraining(t *testing.T, site string, served map[string]map[int]int) {
	t.Helper()
	for id, byRound := range served {
		for r, n := range byRound {
			if n > 1 {
				t.Fatalf("site %s: client %s trained round %d %d times — its data stream diverged", site, id, r, n)
			}
		}
	}
}

// TestAggregatorCrashResume is the root-tier crash-recovery acceptance
// test (the root-aggregator counterpart of TestRelayCrashCohortReconnects):
// the aggregator is killed mid-round — after journaling one of the two
// member updates — restarted on the same WAL directory, re-collects only
// the lost update via cached redelivery, and the finished run's FedAvg
// output matches an uninterrupted control run within 1e-5. The committed
// checkpoints must also land in the content-addressed registry with the
// latest tag on the final round.
func TestAggregatorCrashResume(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const (
		seed   = 91
		rounds = 6
	)
	control := controlRun(t, seed, rounds, fed.FedAvg{})
	regDir := t.TempDir()
	res, served := crashResumeRun(t, "wal:member_update", seed, rounds,
		func() fed.OuterOpt { return fed.FedAvg{} }, regDir)

	if diff := maxAbsDiff(control, res.Global); diff > 1e-5 {
		t.Fatalf("resumed run diverged from the uninterrupted control: max |Δ| = %g", diff)
	}
	assertNoDoubleTraining(t, "wal:member_update", served)

	// Registry: the latest tag must resolve to the final committed round,
	// bit-identical to the run's final params, with lineage attached.
	reg, err := ckpt.OpenRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	c, man, err := reg.Get("tag:latest")
	if err != nil {
		t.Fatalf("tag:latest: %v", err)
	}
	if c.Round != rounds {
		t.Fatalf("latest tag points at round %d, want %d", c.Round, rounds)
	}
	if maxAbsDiff(c.Params, res.Global) != 0 {
		t.Fatal("registry checkpoint is not bit-identical to the final model")
	}
	if man.Lineage["job"] == "" || man.Lineage["round"] == "" {
		t.Fatalf("manifest lineage incomplete: %v", man.Lineage)
	}
}

// TestCrashPointSweep kills and restarts the aggregator after every WAL
// record type and asserts the recovery invariants each time: the first
// life dies on the armed failpoint, the second life completes all rounds,
// no client round is ever trained twice, and the final model matches the
// uninterrupted control within 1e-5. FedMom is the outer optimizer so the
// state_snapshot record exists and momentum restoration is exercised.
func TestCrashPointSweep(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const (
		seed   = 77
		rounds = 5
	)
	newOuter := func() fed.OuterOpt { return fed.NewFedMom(1, 0.9) }
	control := controlRun(t, seed, rounds, newOuter())

	sites := []ckpt.RecordType{
		ckpt.RecRoundOpen, ckpt.RecMemberUpdate, ckpt.RecOuterStep,
		ckpt.RecStateSnapshot, ckpt.RecRoundCommit,
	}
	for _, rt := range sites {
		site := "wal:" + rt.String()
		t.Run(rt.String(), func(t *testing.T) {
			res, served := crashResumeRun(t, site, seed, rounds, newOuter, "")
			assertNoDoubleTraining(t, site, served)
			if diff := maxAbsDiff(control, res.Global); diff > 1e-5 {
				t.Fatalf("site %s: resumed run diverged from control: max |Δ| = %g", site, diff)
			}
		})
	}
}

// TestWALOverheadGuard keeps journaling off the round critical path: at
// Quick scale, the median journaled round must cost no more than 5% over
// the non-journaled median (plus a small absolute floor so scheduler
// jitter on a loaded CI runner cannot fail a healthy build). Only the
// commit record fsyncs, so the expected overhead is one flush per round.
func TestWALOverheadGuard(t *testing.T) {
	const rounds = 8
	measure := func(walDir string) float64 {
		l, err := link.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		for i := 0; i < 2; i++ {
			go func(i int) {
				conn, err := link.Dial(l.Addr())
				if err != nil {
					return
				}
				defer conn.Close()
				_ = fed.ServeClient(ctx, conn, netClient(t, fmt.Sprintf("d%d", i), i), netSpec())
			}(i)
		}
		var walls []float64
		cfg := durableServerConfig(13, rounds, fed.FedAvg{})
		cfg.WALDir = walDir
		cfg.OnRound = func(r metrics.Round) { walls = append(walls, r.WallMs) }
		if _, err := fed.Serve(context.Background(), l, cfg); err != nil {
			t.Fatal(err)
		}
		sort.Float64s(walls)
		return walls[len(walls)/2]
	}
	plain := measure("")
	journaled := measure(t.TempDir())
	limit := plain*1.05 + 50
	if journaled > limit {
		t.Fatalf("journaled median round %.2fms exceeds guard %.2fms (non-journaled median %.2fms)",
			journaled, limit, plain)
	}
	t.Logf("round medians: plain %.2fms, journaled %.2fms", plain, journaled)
}
