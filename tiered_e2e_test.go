package photon

// End-to-end tests for networked two-tier aggregation through the Job API:
// a parent aggregator job, relay jobs (WithParent) serving their own
// cohorts, and leaf client jobs — plus the flat-vs-tiered parent-link wire
// measurement behind the BENCH_topo.json trajectory artifact.

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"
)

// waitAddr polls a job's bound listen address.
func waitAddr(t *testing.T, j *Job) string {
	t.Helper()
	for i := 0; i < 400; i++ {
		if addr := j.Addr(); addr != "" {
			return addr
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never bound its listener")
	return ""
}

// tieredFleet is one finished two-tier run: the parent's result plus each
// relay job's result.
type tieredFleet struct {
	parent *Result
	relays []*Result
}

// runTieredFleet runs a real 2-relay × 2-client two-tier federation over
// TCP: the parent announces parentCodec on its tier, the relays announce
// cohortCodec downstream.
func runTieredFleet(t *testing.T, rounds int, parentCodec, cohortCodec string) tieredFleet {
	t.Helper()
	parent := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"),
		WithExpectClients(2),
		WithRounds(rounds),
		WithCodec(parentCodec),
		WithRoundDeadline(60*time.Second),
		WithSeed(71),
	)
	parentRes := make(chan *Result, 1)
	parentErr := make(chan error, 1)
	go func() {
		res, err := parent.Run(context.Background())
		parentRes <- res
		parentErr <- err
	}()
	parentAddr := waitAddr(t, parent)

	relayRes := make([]chan *Result, 2)
	relayErr := make([]chan error, 2)
	var clientWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		relay := NewJob(
			WithBackend(BackendAggregator),
			WithAddr("127.0.0.1:0"),
			WithParent(parentAddr),
			WithClientID([]string{"relay-west", "relay-east"}[r]),
			WithExpectClients(2),
			WithCodec(cohortCodec),
			WithRoundDeadline(60*time.Second),
			WithSeed(int64(100+r)),
		)
		relayRes[r] = make(chan *Result, 1)
		relayErr[r] = make(chan error, 1)
		go func(r int, relay *Job) {
			res, err := relay.Run(context.Background())
			relayRes[r] <- res
			relayErr[r] <- err
		}(r, relay)
		relayAddr := waitAddr(t, relay)
		for c := 0; c < 2; c++ {
			clientWG.Add(1)
			go func(r, c int) {
				defer clientWG.Done()
				_, err := NewJob(
					WithBackend(BackendClient),
					WithAddr(relayAddr),
					WithClientID(string(rune('a'+2*r+c))),
					WithShard(2*r+c),
				).Run(context.Background())
				if err != nil {
					t.Errorf("leaf %d/%d: %v", r, c, err)
				}
			}(r, c)
		}
	}

	out := tieredFleet{parent: <-parentRes}
	if err := <-parentErr; err != nil {
		t.Fatalf("parent: %v", err)
	}
	for r := 0; r < 2; r++ {
		out.relays = append(out.relays, <-relayRes[r])
		if err := <-relayErr[r]; err != nil {
			t.Fatalf("relay %d: %v", r, err)
		}
	}
	clientWG.Wait()
	return out
}

// runFlatFleet runs the matched flat federation: the same 4 leaf clients
// directly on one aggregator.
func runFlatFleet(t *testing.T, rounds int, codec string) *Result {
	t.Helper()
	agg := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"),
		WithExpectClients(4),
		WithRounds(rounds),
		WithCodec(codec),
		WithSeed(71),
	)
	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := agg.Run(context.Background())
		resCh <- res
		errCh <- err
	}()
	addr := waitAddr(t, agg)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, err := NewJob(
				WithBackend(BackendClient),
				WithAddr(addr),
				WithClientID(string(rune('a'+c))),
				WithShard(c),
			).Run(context.Background())
			if err != nil {
				t.Errorf("client %d: %v", c, err)
			}
		}(c)
	}
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return res
}

// parentWireBytes sums the aggregator's measured wire traffic (both
// directions, frame headers included) over a run.
func parentWireBytes(res *Result) int64 {
	var total int64
	for _, s := range res.Stats {
		total += s.WireSentBytes + s.WireRecvBytes
	}
	return total
}

// TestTwoTierJobTelemetry runs the full dense two-tier fleet through the
// Job API and checks the hierarchical telemetry: the parent reports Depth 2
// (its members are relays), each relay reports Tier 1 with its full cohort,
// and every tier completes every round.
func TestTwoTierJobTelemetry(t *testing.T) {
	const rounds = 3
	fleet := runTieredFleet(t, rounds, "dense", "dense")
	if len(fleet.parent.Stats) != rounds {
		t.Fatalf("parent completed %d rounds, want %d", len(fleet.parent.Stats), rounds)
	}
	for _, s := range fleet.parent.Stats {
		if s.Tier != 0 || s.Depth != 2 {
			t.Fatalf("parent round %d: Tier=%d Depth=%d, want 0/2", s.Round, s.Tier, s.Depth)
		}
		if s.Clients != 2 {
			t.Fatalf("parent round %d aggregated %d relays, want 2", s.Round, s.Clients)
		}
	}
	for i, r := range fleet.relays {
		if len(r.Stats) != rounds {
			t.Fatalf("relay %d served %d rounds, want %d", i, len(r.Stats), rounds)
		}
		for _, s := range r.Stats {
			if s.Tier != 1 {
				t.Fatalf("relay %d round %d: Tier=%d, want 1", i, s.Round, s.Tier)
			}
			if s.Clients != 2 {
				t.Fatalf("relay %d round %d aggregated %d clients, want 2", i, s.Round, s.Clients)
			}
		}
	}
	if ppl := fleet.parent.FinalPerplexity; !(ppl > 0 && ppl < 64) {
		t.Fatalf("two-tier run did not learn: parent ppl %v", ppl)
	}
}

// TestTieredTopkUpstreamShrinksParentWire is the acceptance measurement:
// with relays speaking error-feedback topk on the parent tier (dense inside
// their regions), the parent link's measured wire bytes must drop by at
// least 40% versus the flat 4-client federation — the whole point of
// placing aggregation tiers in front of slow inter-region links.
func TestTieredTopkUpstreamShrinksParentWire(t *testing.T) {
	const rounds = 3
	flat := runFlatFleet(t, rounds, "dense")
	tiered := runTieredFleet(t, rounds, "topk:0.1", "dense")

	flatBytes := parentWireBytes(flat)
	tieredBytes := parentWireBytes(tiered.parent)
	if flatBytes <= 0 || tieredBytes <= 0 {
		t.Fatalf("missing wire accounting: flat=%d tiered=%d", flatBytes, tieredBytes)
	}
	ratio := float64(tieredBytes) / float64(flatBytes)
	if ratio > 0.60 {
		t.Fatalf("tiered parent link carries %.1f%% of flat's bytes, want <= 60%% (>= 40%% drop)", 100*ratio)
	}
}

// TestPlanHierarchyProducesExecutablePlan checks the public planner: the
// Table 1 deployment must yield a well-formed plan whose dial graph covers
// every client exactly once, and WithPlan must transfer the plan's tier
// structure onto a job.
func TestPlanHierarchyProducesExecutablePlan(t *testing.T) {
	p, err := PlanHierarchy(Size125M, 500, 0, "q8")
	if err != nil {
		t.Fatal(err)
	}
	if p.Tiers != 1 && p.Tiers != 2 {
		t.Fatalf("tiers = %d", p.Tiers)
	}
	if p.RoundSeconds <= 0 || len(p.Dials) == 0 {
		t.Fatalf("degenerate plan: %+v", p)
	}
	leaves := map[string]bool{}
	for _, d := range p.Dials {
		if d.Tier == 1 || (p.Tiers == 1 && d.Tier == 0) {
			if leaves[d.From] {
				t.Fatalf("leaf %s dials twice", d.From)
			}
			leaves[d.From] = true
		}
	}
	if len(leaves) != 10 { // Table 1's 125M row: 10 clients
		t.Fatalf("dial graph covers %d leaves, want 10", len(leaves))
	}

	job := NewJob(WithPlan(p), WithClients(10))
	if job.cfg.tiers != p.Tiers {
		t.Fatalf("WithPlan set tiers=%d, plan says %d", job.cfg.tiers, p.Tiers)
	}
	if p.Tiers == 2 {
		if job.cfg.relays != len(p.Relays) {
			t.Fatalf("WithPlan set relays=%d, plan has %d", job.cfg.relays, len(p.Relays))
		}
		if job.cfg.upstreamCodec != p.UpstreamCodec {
			t.Fatalf("WithPlan set upstream codec %q, plan says %q", job.cfg.upstreamCodec, p.UpstreamCodec)
		}
	}

	// Unknown sizes must error rather than plan garbage.
	if _, err := PlanHierarchy(SizeTiny, 500, 1, ""); err == nil {
		t.Fatal("tiny proxy has no Table 1 deployment; PlanHierarchy must say so")
	}
}

// TestWithPlanDrivesTieredSim runs a small federated simulation configured
// entirely by a plan and checks the tier accounting flows through.
func TestWithPlanDrivesTieredSim(t *testing.T) {
	p := &HierarchyPlan{Tiers: 2, UpstreamCodec: "q8",
		Relays: []RelayCohort{{Region: "west"}, {Region: "east"}}}
	res, err := NewJob(
		WithPlan(p),
		WithClients(4),
		WithRounds(2),
		WithCodec("dense"),
		WithEvalEvery(2),
		WithSeed(5),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stats {
		if s.Depth != 2 {
			t.Fatalf("round %d Depth=%d, want 2", s.Round, s.Depth)
		}
		if s.WireSentBytes <= 0 || s.WireRecvBytes <= 0 {
			t.Fatalf("round %d parent-tier wire accounting missing: %+v", s.Round, s)
		}
		// The q8 parent tier must shrink the whole exchange below dense.
		if s.CompressionRatio <= 0 || s.CompressionRatio >= 1 {
			t.Fatalf("round %d compression ratio %.3f, want within (0,1)", s.Round, s.CompressionRatio)
		}
	}
}

// TestWriteTopoBenchJSON emits the flat-vs-two-tier parent-link wire
// measurement as machine-readable JSON when BENCH_TOPO_JSON names an output
// path — the CI hook behind the BENCH_topo.json trajectory artifact. It
// reuses the exact fleets the e2e tests run, so the artifact and the tests
// can never drift apart.
func TestWriteTopoBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_TOPO_JSON")
	if path == "" {
		t.Skip("BENCH_TOPO_JSON not set")
	}
	const rounds = 3
	flat := runFlatFleet(t, rounds, "dense")
	tiered := runTieredFleet(t, rounds, "topk:0.1", "dense")
	flatBytes := parentWireBytes(flat)
	tieredBytes := parentWireBytes(tiered.parent)
	var relayBytes int64
	for _, r := range tiered.relays {
		relayBytes += parentWireBytes(r)
	}
	report := struct {
		Rounds            int     `json:"rounds"`
		Clients           int     `json:"clients"`
		Relays            int     `json:"relays"`
		UpstreamCodec     string  `json:"upstream_codec"`
		CohortCodec       string  `json:"cohort_codec"`
		FlatParentBytes   int64   `json:"flat_parent_wire_bytes"`
		TieredParentBytes int64   `json:"tiered_parent_wire_bytes"`
		TieredRelayBytes  int64   `json:"tiered_relay_tier_wire_bytes"`
		ParentRatio       float64 `json:"tiered_vs_flat_parent_ratio"`
		Comment           string  `json:"comment"`
	}{
		Rounds:            rounds,
		Clients:           4,
		Relays:            2,
		UpstreamCodec:     "topk:0.1",
		CohortCodec:       "dense",
		FlatParentBytes:   flatBytes,
		TieredParentBytes: tieredBytes,
		TieredRelayBytes:  relayBytes,
		ParentRatio:       float64(tieredBytes) / float64(flatBytes),
		Comment:           "measured TCP frame bytes at the global aggregator, 2 relays x 2 clients vs flat 4 clients, tiny model",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: parent ratio %.3f", path, report.ParentRatio)
}
