package photon

import "photon/internal/metrics"

// RoundEvent is one round's live training telemetry, streamed on
// Job.Events while a run is in progress.
type RoundEvent struct {
	// Round is the 1-based federated round (or, for the centralized
	// backend, the optimizer step of the evaluation record). Resumed runs
	// continue the checkpoint's numbering.
	Round int
	// TrainLoss is the mean participating-client training loss
	// (nats/token).
	TrainLoss float64
	// Perplexity is the global model's validation perplexity, 0 when the
	// round was not evaluated.
	Perplexity float64
	// Clients is the number of clients whose updates were aggregated
	// (workers, for the centralized backend).
	Clients int
	// CommBytes is the model/update traffic attributed to the round:
	// broadcast down plus updates up for the federated backends, gradient
	// all-reduce volume for the centralized one. The networked backends
	// measure it on the wire (frame headers and heartbeats included); the
	// in-process federated backend counts codec-encoded payload bytes.
	CommBytes int64
	// WireSentBytes and WireRecvBytes split CommBytes by direction
	// (aggregator's perspective on the server/federated backends, the
	// client's own on the client backend). Zero where not applicable.
	WireSentBytes int64
	WireRecvBytes int64
	// CompressionRatio is encoded payload bytes divided by their dense
	// float32 cost: 1.0 for the dense codec, ~0.25 for q8, ~0.08 for
	// topk at 10% density. 0 means the round carried no payloads.
	CompressionRatio float64
	// EncodeMs and DecodeMs are the round's codec wall times in
	// milliseconds.
	EncodeMs float64
	DecodeMs float64
	// UpdateNorm is the L2 norm of the aggregated pseudo-gradient (0 for
	// the centralized and client backends).
	UpdateNorm float64
	// SimSeconds is the simulated wall-clock time consumed so far when the
	// run carries a time model, 0 otherwise.
	SimSeconds float64

	// Tier is the emitting node's distance from the global aggregator: 0
	// for the root (and the in-process backends), 1 for a relay job's own
	// records (WithParent).
	Tier int
	// Depth is the number of aggregation tiers at or below the emitting
	// node: 1 for a flat federation, 2 when the node's round members are
	// themselves relays (a networked parent detects this from the cohort
	// metadata relays stamp on their updates). 0 means not applicable
	// (centralized and client backends).
	Depth int

	// Joins counts members that joined (or rejoined) the federation during
	// this round — elastic membership telemetry from the networked
	// aggregator backend, 0 elsewhere. Churn is windowed between recorded
	// rounds: round 1 includes the initial cohort's joins.
	Joins int
	// Evictions counts members evicted this round (connection failure or
	// missed heartbeats).
	Evictions int
	// Stragglers counts cohort slots dropped at the round deadline: the
	// member stayed alive but its update arrived too late to aggregate.
	Stragglers int
	// HeartbeatRTTMs is the mean heartbeat round-trip observed during the
	// round in milliseconds (0 when heartbeats are disabled).
	HeartbeatRTTMs float64
	// HeartbeatRTTP99Ms is the 99th-percentile heartbeat round-trip over
	// the round's recent-beat sketch — the tail the mean hides.
	HeartbeatRTTP99Ms float64

	// TraceID is the round-scoped trace identifier. The root aggregator
	// mints one per round and propagates it down the aggregation tree, so
	// a relay job's events carry the root round's ID — joining the tiers'
	// phase breakdowns into one distributed trace. 0 when not applicable.
	TraceID uint64
	// WallMs is the round's measured wall time in milliseconds, which the
	// phase breakdown's sum approximates.
	WallMs float64
	// Phases splits the round's critical path by phase (milliseconds).
	Phases PhaseBreakdown
	// SlowestID names the round's straggler: the last member whose update
	// made the aggregate. Empty when not applicable.
	SlowestID string
	// SlowestPhase is the phase that member spent the most time in
	// ("broadcast", "train", "encode", "wire", "decode").
	SlowestPhase string

	// ModelVersion is the committed global model version under asynchronous
	// aggregation (WithAsync): the aggregator backend reports the version
	// this event's commit produced, the client backend the version its
	// round trained on. 0 under synchronous aggregation.
	ModelVersion int
	// BufferFill is the number of updates folded into this commit's
	// staleness-weighted buffer (asynchronous aggregation only).
	BufferFill int
	// MeanStaleness is the mean staleness, in model versions, of the
	// updates folded into this commit: 0 means every update trained on the
	// freshest model; larger values mean stragglers contributed late (and
	// were down-weighted accordingly).
	MeanStaleness float64
}

// PhaseBreakdown is a round's per-phase wall time in milliseconds, split
// along the critical path: model broadcast, member local training, codec
// encode/decode (both sides), wire-transfer residual, aggregation, and
// evaluation. The breakdown follows the slowest member, so its sum
// approximates the round's measured wall time rather than a per-member
// total.
type PhaseBreakdown struct {
	BroadcastMs float64
	TrainMs     float64
	EncodeMs    float64
	WireMs      float64
	DecodeMs    float64
	AggregateMs float64
	EvalMs      float64
}

// SumMs returns the total across all phases.
func (b PhaseBreakdown) SumMs() float64 {
	return b.BroadcastMs + b.TrainMs + b.EncodeMs + b.WireMs + b.DecodeMs + b.AggregateMs + b.EvalMs
}

func eventFromRound(r metrics.Round) RoundEvent {
	return RoundEvent{
		Round:             r.Round,
		TrainLoss:         r.TrainLoss,
		Perplexity:        r.ValPPL,
		Clients:           r.Clients,
		CommBytes:         r.CommBytes,
		WireSentBytes:     r.WireSentBytes,
		WireRecvBytes:     r.WireRecvBytes,
		CompressionRatio:  r.CompressionRatio,
		EncodeMs:          r.EncodeMs,
		DecodeMs:          r.DecodeMs,
		UpdateNorm:        r.UpdateNorm,
		SimSeconds:        r.SimSeconds,
		Tier:              r.Tier,
		Depth:             r.Depth,
		Joins:             r.Joins,
		Evictions:         r.Evictions,
		Stragglers:        r.Stragglers,
		HeartbeatRTTMs:    r.HeartbeatRTTMs,
		HeartbeatRTTP99Ms: r.HeartbeatRTTP99Ms,
		TraceID:           r.TraceID,
		WallMs:            r.WallMs,
		Phases:            PhaseBreakdown(r.Phases),
		SlowestID:         r.SlowestID,
		SlowestPhase:      r.SlowestPhase,
		ModelVersion:      r.ModelVersion,
		BufferFill:        r.BufferFill,
		MeanStaleness:     r.MeanStaleness,
	}
}
