// Topology planner: evaluates the Appendix B.1 wall-time model over the
// paper's five-region bandwidth map (Figure 2) and picks the cheapest
// admissible aggregation topology for each model size under different
// deployment constraints — the decision Photon's Link layer makes
// automatically.
package main

import (
	"fmt"
	"log"

	"photon"
)

func show(size photon.ModelSize, throughput float64, p2p, dropouts bool) {
	plans, err := photon.PlanDeployment(size, nil, 500, throughput, p2p, dropouts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (τ=500, ν=%.3f, peer-to-peer=%v, dropouts=%v):\n", size, throughput, p2p, dropouts)
	fmt.Printf("  %-4s %-10s %-10s %-10s %-8s %s\n", "topo", "bw[Gbps]", "comm[s]", "round[s]", "comm%", "verdict")
	for _, p := range plans {
		verdict := ""
		if p.Selected {
			verdict = "<== selected"
		}
		if p.RuledOutReason != "" {
			verdict = "ruled out: " + p.RuledOutReason
		}
		fmt.Printf("  %-4s %-10.1f %-10.1f %-10.1f %-8s %s\n",
			p.Topology, p.BandwidthGbps, p.CommSeconds, p.RoundSeconds,
			fmt.Sprintf("%.1f%%", 100*p.CommShare), verdict)
	}
}

func showHierarchy(size photon.ModelSize, upstreamCodec string) {
	p, err := photon.PlanHierarchy(size, 500, 0, upstreamCodec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s hierarchy plan (Table 1 deployment, θ-congested Eq. 5/6):\n", size)
	fmt.Printf("  flat star:   %8.1f s/round\n", p.FlatRoundSeconds)
	fmt.Printf("  2-tier best: %8.1f s/round (upstream %s)\n", p.TieredRoundSeconds, p.UpstreamCodec)
	if p.Tiers == 1 {
		fmt.Println("  verdict: stay flat")
		return
	}
	fmt.Printf("  verdict: %d relays pay off\n", len(p.Relays))
	for _, r := range p.Relays {
		fmt.Printf("    relay@%s <- %v\n", r.Region, r.Members)
	}
	fmt.Println("  dial graph (start these processes):")
	for _, d := range p.Dials {
		fmt.Printf("    tier %d: %s -> %s (%.1f Gbps, %s)\n", d.Tier, d.From, d.To, d.BandwidthGbps, d.Codec)
	}
}

func main() {
	fmt.Println("Photon topology planner over the Figure 2 world bandwidth graph")
	// Paper throughputs (Appendix B.1): ν in batches/second.
	show(photon.Size125M, 2.0, true, false)
	show(photon.Size7B, 0.032, true, false)
	show(photon.Size7B, 0.032, false, false) // privacy-constrained: PS only
	show(photon.Size7B, 0.032, true, true)   // dropouts: RAR excluded

	// From analytic model to executable plan: where should relays sit?
	showHierarchy(photon.Size125M, "q8")
	showHierarchy(photon.Size7B, "topk:0.1")
}
