// Quickstart: federated pre-training of a small decoder-only LM with the
// Photon recipe (FedAvg + small local batches + high learning rate) through
// the Job API — live round telemetry while training runs, then sampling
// from the trained model.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"photon"
)

func main() {
	fmt.Println("Photon quickstart: 4 clients, IID C4-like shards, FedAvg")

	job := photon.NewJob(
		photon.WithModel(photon.SizeTiny),
		photon.WithClients(4),
		photon.WithRounds(15),
		photon.WithLocalSteps(16),
		photon.WithBatchSize(4), // the hardware-determined small batch of the recipe
		photon.WithMaxLR(3e-3),
		photon.WithServerOptimizer("fedavg"),
	)

	// Events streams per-round stats while Run is training.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fmt.Println("\nround  clients  val-perplexity")
		for ev := range job.Events() {
			fmt.Printf("%5d  %7d  %14.2f\n", ev.Round, ev.Clients, ev.Perplexity)
		}
	}()

	res, err := job.Run(context.Background())
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal perplexity: %.2f over a %d-parameter model\n",
		res.FinalPerplexity, res.NumParams())

	fmt.Println("\nsampled continuation of prompt [1 2 3]:")
	fmt.Println(res.Generate(7, []int{1, 2, 3}, 24, 0.8))
}
