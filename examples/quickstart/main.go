// Quickstart: federated pre-training of a small decoder-only LM with the
// Photon recipe (FedAvg + small local batches + high learning rate), then
// sampling from the trained model.
package main

import (
	"fmt"
	"log"

	"photon"
)

func main() {
	fmt.Println("Photon quickstart: 4 clients, IID C4-like shards, FedAvg")

	res, err := photon.Pretrain(photon.Options{
		Size:       photon.SizeTiny,
		Clients:    4,
		Rounds:     15,
		LocalSteps: 16,
		BatchSize:  4, // the hardware-determined small batch of the recipe
		MaxLR:      3e-3,
		Server:     photon.FedAvg,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nround  clients  val-perplexity")
	for _, s := range res.Stats {
		fmt.Printf("%5d  %7d  %14.2f\n", s.Round, s.Clients, s.Perplexity)
	}
	fmt.Printf("\nfinal perplexity: %.2f over a %d-parameter model\n",
		res.FinalPerplexity, res.NumParams())

	fmt.Println("\nsampled continuation of prompt [1 2 3]:")
	fmt.Println(res.Generate(7, []int{1, 2, 3}, 24, 0.8))
}
