// Asynchronous buffered aggregation (FedBuff) through the Job API: a real
// networked aggregator on loopback serving two client jobs, first with the
// default barrier-synchronized FedAvg and then with WithAsync, which
// replaces rounds with continuously-versioned commits. Each async event
// carries the committed model version, the buffer fill at commit, and the
// mean staleness (in versions) of the folded updates — stale updates are
// damped by weight = 1/(1+staleness)^alpha rather than discarded, so a slow
// member contributes without gating the fleet.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"photon"
)

const clients = 2

func run(name string, extra ...photon.JobOption) {
	fmt.Printf("\n=== %s ===\n", name)
	opts := append([]photon.JobOption{
		photon.WithBackend(photon.BackendAggregator),
		photon.WithAddr("127.0.0.1:0"),
		photon.WithExpectClients(clients),
		photon.WithRounds(8),
		photon.WithLocalSteps(4),
		photon.WithSeed(11),
	}, extra...)
	agg := photon.NewJob(opts...)

	// Stream commits as they land. Sync rounds have no version; async
	// commits report ver/buf/stale exactly like photon-agg and photon-top.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range agg.Events() {
			line := fmt.Sprintf("round %2d  clients=%d  loss=%.4f", ev.Round, ev.Clients, ev.TrainLoss)
			if ev.ModelVersion > 0 {
				line += fmt.Sprintf("  ver=%d buf=%d stale=%.1f", ev.ModelVersion, ev.BufferFill, ev.MeanStaleness)
			}
			fmt.Println(line)
		}
	}()

	resCh := make(chan *photon.Result, 1)
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		res, err := agg.Run(context.Background())
		resCh <- res
		errCh <- err
	}()
	addr := ""
	for addr == "" {
		time.Sleep(10 * time.Millisecond)
		addr = agg.Addr()
	}

	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			_, err := photon.NewJob(
				photon.WithBackend(photon.BackendClient),
				photon.WithAddr(addr),
				photon.WithClientID(fmt.Sprintf("member-%d", i)),
				photon.WithShard(i),
			).Run(context.Background())
			if err != nil {
				log.Printf("client %d: %v", i, err)
			}
		}(i)
	}
	cwg.Wait()
	res, err := <-resCh, <-errCh
	wg.Wait()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%s: final ppl %.2f in %.2fs (%d commits)\n",
		name, res.FinalPerplexity, time.Since(start).Seconds(), len(res.Stats))
}

func main() {
	fmt.Println("Photon async aggregation: sync FedAvg vs FedBuff on the same loopback fleet")

	run("sync FedAvg (barrier per round)")

	// WithAsync(k, alpha): commit after every k folded updates, damp stale
	// updates by 1/(1+staleness)^alpha. WithRounds now counts version
	// commits; WithMinClients(1) lets one live member keep the run going.
	run("async FedBuff (K=1, α=0.5)",
		photon.WithAsync(1, 0.5),
		photon.WithMinClients(1),
	)
}
