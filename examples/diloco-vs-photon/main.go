// DiLoCo vs Photon: reproduces the shape of the paper's Table 3 at example
// scale — Photon's FedAvg recipe reaches target perplexities in roughly
// half the rounds of DiLoCo's outer Nesterov at its stable learning rate.
package main

import (
	"fmt"
	"log"

	"photon"
)

func roundsTo(res *photon.Result, target float64) string {
	for _, s := range res.Stats {
		if s.Perplexity > 0 && s.Perplexity <= target {
			return fmt.Sprintf("%d", s.Round)
		}
	}
	return "not reached"
}

func main() {
	fmt.Println("Photon vs DiLoCo(ηs=0.1, µ=0.9): rounds to target perplexity (N=4)")
	base := photon.Options{
		Clients:    4,
		Rounds:     30,
		LocalSteps: 16,
		Seed:       5,
	}

	results := map[photon.ServerOptimizer]*photon.Result{}
	for _, server := range []photon.ServerOptimizer{photon.DiLoCo, photon.FedAvg} {
		opts := base
		opts.Server = server
		res, err := photon.Pretrain(opts)
		if err != nil {
			log.Fatal(err)
		}
		results[server] = res
	}

	fmt.Printf("\n%-10s %12s %12s %10s\n", "method", "rounds→42", "rounds→35", "final ppl")
	for _, server := range []photon.ServerOptimizer{photon.DiLoCo, photon.FedAvg} {
		res := results[server]
		name := "DiLoCo"
		if server == photon.FedAvg {
			name = "Photon"
		}
		fmt.Printf("%-10s %12s %12s %10.2f\n", name,
			roundsTo(res, 42), roundsTo(res, 35), res.FinalPerplexity)
	}
	fmt.Println("\nExpected shape (paper Table 3): Photon reaches each target in")
	fmt.Println("roughly half the wall time of DiLoCo at its stable ηs.")
}
