// DiLoCo vs Photon: reproduces the shape of the paper's Table 3 at example
// scale — Photon's FedAvg recipe reaches target perplexities in roughly
// half the rounds of DiLoCo's outer Nesterov at its stable learning rate.
// Both runs go through the Job API with a shared deadline: if a run stalls,
// the context stops it and the comparison reports what completed.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"photon"
)

func roundsTo(res *photon.Result, target float64) string {
	for _, s := range res.Stats {
		if s.Perplexity > 0 && s.Perplexity <= target {
			return fmt.Sprintf("%d", s.Round)
		}
	}
	return "not reached"
}

func main() {
	fmt.Println("Photon vs DiLoCo(ηs=0.1, µ=0.9): rounds to target perplexity (N=4)")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	servers := []string{"diloco", "fedavg"}
	results := map[string]*photon.Result{}
	for _, server := range servers {
		res, err := photon.NewJob(
			photon.WithClients(4),
			photon.WithRounds(30),
			photon.WithLocalSteps(16),
			photon.WithSeed(5),
			photon.WithServerOptimizer(server),
		).Run(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Printf("%s: stopped early after %d rounds\n", server, len(res.Stats))
		} else if err != nil {
			log.Fatal(err)
		}
		results[server] = res
	}

	fmt.Printf("\n%-10s %12s %12s %10s\n", "method", "rounds→42", "rounds→35", "final ppl")
	for _, server := range servers {
		res := results[server]
		name := "DiLoCo"
		if server == "fedavg" {
			name = "Photon"
		}
		fmt.Printf("%-10s %12s %12s %10.2f\n", name,
			roundsTo(res, 42), roundsTo(res, 35), res.FinalPerplexity)
	}
	fmt.Println("\nExpected shape (paper Table 3): Photon reaches each target in")
	fmt.Println("roughly half the wall time of DiLoCo at its stable ηs.")
}
