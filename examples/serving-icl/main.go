// Serving & ICL evaluation: starts an in-process photon-serve stack (engine,
// TCP server, wire client), generates through it, then runs part of the
// evaluation suite two ways over the live serving path — bare prompts and
// Z-ICL pseudo-demonstrations retrieved from the training corpus — printing
// the accuracy each mode reaches.
//
// Everything runs in one process for reproducibility; against a remote
// photon-serve, replace the server setup with serve.DialServer(addr).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"photon"
	"photon/internal/data"
	"photon/internal/eval"
	"photon/internal/link"
	"photon/internal/nn"
	"photon/internal/serve"
)

func main() {
	log.SetFlags(0)

	cfg, err := photon.ModelConfig(photon.SizeTiny)
	if err != nil {
		log.Fatal(err)
	}
	m := nn.NewModel(cfg, rand.New(rand.NewSource(1)))
	src := data.C4Like(cfg.VocabSize)

	// The serving stack: engine owns the model, server speaks the wire
	// protocol, client pipelines requests over one TCP connection.
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	eng := serve.NewEngine(m, serve.Config{MaxBatch: 4, MaxSeq: 128})
	srv := serve.NewServer(eng, l)
	ctx, cancel := context.WithCancel(context.Background())
	srvDone := make(chan struct{})
	go func() { defer close(srvDone); srv.Run(ctx) }()

	client, err := serve.DialServer(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}

	// Generation over the wire: nucleus sampling with a reproducible seed.
	prompt := []int{3, 14, 15, 9, 2, 6}
	tokens, err := client.Generate(prompt, 16, serve.GenOpts{
		Sample:   nn.SampleOpts{Temperature: 0.9, TopP: 0.95},
		Seed:     42,
		Deadline: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prompt %v -> continuation %v\n\n", prompt, tokens)

	// Evaluation through the serving path. A few suite tasks keep the
	// example quick; eval.RunSuiteWith(name, client, src, seed) runs all 13.
	tasks := eval.Suite()[:3]
	retr := eval.NewRetriever(src, 4096, 7)
	fmt.Printf("%-22s %8s %8s %8s\n", "task", "chance", "bare", "icl-2shot")
	for _, task := range tasks {
		task.Instances = 40 // trim for example runtime
		bare, err := task.EvaluateWith(client, src, 11)
		if err != nil {
			log.Fatal(err)
		}
		icl, err := task.EvaluateWith(&eval.ICLScorer{
			Inner: client, R: retr, Shots: 2, DemoLen: 12,
		}, src, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.2f %8.2f %8.2f\n", task.Name, task.Chance(), bare, icl)
	}

	st := eng.Stats()
	fmt.Printf("\nserver: %d requests, %d tokens, p50 %s, p99 %s\n",
		st.Completed, st.TokensOut, st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond))

	client.Close()
	cancel()
	<-srvDone
	eng.Close()
}
