// Cross-silo heterogeneity: eight institutions each hold one distinct
// Pile-like data source (the paper's Section 5.5 setting). The example
// trains the same federation under full and 50% partial participation and
// against an IID control, showing FedAvg's robustness to non-IID data.
// Data distribution is selected via the data source registry: "c4" shards
// one corpus IID, "pile" gives each client a distinct source.
package main

import (
	"context"
	"fmt"
	"log"

	"photon"
)

func run(name string, extra ...photon.JobOption) *photon.Result {
	opts := append([]photon.JobOption{
		photon.WithClients(8),
		photon.WithRounds(20),
		photon.WithLocalSteps(8),
		photon.WithSeed(3),
	}, extra...)
	res, err := photon.NewJob(opts...).Run(context.Background())
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-28s final ppl %.2f\n", name, res.FinalPerplexity)
	return res
}

func main() {
	fmt.Println("Photon cross-silo heterogeneity (Pile-like sources, 8 clients)")

	rIID := run("IID control", photon.WithDataSource("c4"))
	rFull := run("non-IID, full participation", photon.WithDataSource("pile"))
	rPart := run("non-IID, 50% participation",
		photon.WithDataSource("pile"), photon.WithClientsPerRound(4))

	fmt.Println("\nround-by-round validation perplexity:")
	fmt.Println("round   IID    non-IID  non-IID-50%")
	for i := range rIID.Stats {
		fmt.Printf("%5d  %6.1f  %7.1f  %11.1f\n", i+1,
			rIID.Stats[i].Perplexity, rFull.Stats[i].Perplexity, rPart.Stats[i].Perplexity)
	}
	fmt.Println("\nExpected shape (paper Fig. 7): non-IID tracks IID under full")
	fmt.Println("participation; partial participation fluctuates more but converges.")
}
