// Cross-silo heterogeneity: eight institutions each hold one distinct
// Pile-like data source (the paper's Section 5.5 setting). The example
// trains the same federation under full and 50% partial participation and
// against an IID control, showing FedAvg's robustness to non-IID data.
// Data distribution is selected via the data source registry: "c4" shards
// one corpus IID, "pile" gives each client a distinct source.
package main

import (
	"context"
	"fmt"
	"log"

	"photon"
)

func run(name string, extra ...photon.JobOption) *photon.Result {
	opts := append([]photon.JobOption{
		photon.WithClients(8),
		photon.WithRounds(20),
		photon.WithLocalSteps(8),
		photon.WithSeed(3),
	}, extra...)
	res, err := photon.NewJob(opts...).Run(context.Background())
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-28s final ppl %.2f\n", name, res.FinalPerplexity)
	return res
}

func main() {
	fmt.Println("Photon cross-silo heterogeneity (Pile-like sources, 8 clients)")

	rIID := run("IID control", photon.WithDataSource("c4"))
	rFull := run("non-IID, full participation", photon.WithDataSource("pile"))
	rPart := run("non-IID, 50% participation",
		photon.WithDataSource("pile"), photon.WithClientsPerRound(4))
	// Hierarchical control: the same non-IID federation aggregated through
	// four relay groups of two silos each. FedAvg(ηs=1) makes the two-tier
	// mean equal the flat mean, so the curve must track the flat non-IID
	// run — while the parent tier moves 4 pseudo-gradients per round
	// instead of 8 client updates.
	rTier := run("non-IID, 2-tier (4 relays)",
		photon.WithDataSource("pile"), photon.WithTiers(2), photon.WithRelays(4))

	fmt.Println("\nround-by-round validation perplexity:")
	fmt.Println("round   IID    non-IID  non-IID-50%  non-IID-2tier")
	for i := range rIID.Stats {
		fmt.Printf("%5d  %6.1f  %7.1f  %11.1f  %13.1f\n", i+1,
			rIID.Stats[i].Perplexity, rFull.Stats[i].Perplexity,
			rPart.Stats[i].Perplexity, rTier.Stats[i].Perplexity)
	}
	fmt.Println("\nExpected shape (paper Fig. 7): non-IID tracks IID under full")
	fmt.Println("participation; partial participation fluctuates more but converges;")
	fmt.Println("the 2-tier run reproduces the flat non-IID curve (mean of relay")
	fmt.Println("means == flat mean under FedAvg).")
}
