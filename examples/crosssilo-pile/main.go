// Cross-silo heterogeneity: eight institutions each hold one distinct
// Pile-like data source (the paper's Section 5.5 setting). The example
// trains the same federation under full and 50% partial participation and
// against an IID control, showing FedAvg's robustness to non-IID data.
package main

import (
	"fmt"
	"log"

	"photon"
)

func run(name string, opts photon.Options) *photon.Result {
	res, err := photon.Pretrain(opts)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-28s final ppl %.2f\n", name, res.FinalPerplexity)
	return res
}

func main() {
	fmt.Println("Photon cross-silo heterogeneity (Pile-like sources, 8 clients)")
	base := photon.Options{
		Clients:    8,
		Rounds:     20,
		LocalSteps: 8,
		Seed:       3,
	}

	iid := base
	full := base
	full.Heterogeneous = true
	partial := full
	partial.ClientsPerRound = 4 // 50% participation

	rIID := run("IID control", iid)
	rFull := run("non-IID, full participation", full)
	rPart := run("non-IID, 50% participation", partial)

	fmt.Println("\nround-by-round validation perplexity:")
	fmt.Println("round   IID    non-IID  non-IID-50%")
	for i := range rIID.Stats {
		fmt.Printf("%5d  %6.1f  %7.1f  %11.1f\n", i+1,
			rIID.Stats[i].Perplexity, rFull.Stats[i].Perplexity, rPart.Stats[i].Perplexity)
	}
	fmt.Println("\nExpected shape (paper Fig. 7): non-IID tracks IID under full")
	fmt.Println("participation; partial participation fluctuates more but converges.")
}
