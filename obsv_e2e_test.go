package photon

// End-to-end test for the fleet observability layer: a real two-tier TCP
// federation with MsgObserve subscribers attached at every aggregation
// node, plus the process-wide /metrics + /healthz scrape listener. It pins
// the three contracts the layer exists for: phase breakdowns account for
// round wall time, relay phase spans attribute to the root round's trace
// ID across the tier boundary, and the scrape endpoints serve an advancing
// round counter while the fleet trains.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/obsv"
)

// observeFeed collects every ObserveEvent one aggregator publishes, until
// the aggregator shuts the subscription down.
type observeFeed struct {
	mu     sync.Mutex
	events []fed.ObserveEvent
	done   chan struct{}
	err    error
}

// attachObserver subscribes to the aggregator at addr and drains its event
// stream in the background.
func attachObserver(t *testing.T, addr string) *observeFeed {
	t.Helper()
	conn, err := link.DialContext(context.Background(), addr)
	if err != nil {
		t.Fatalf("observer dial %s: %v", addr, err)
	}
	f := &observeFeed{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.err = fed.Observe(context.Background(), conn, func(ev fed.ObserveEvent) {
			f.mu.Lock()
			f.events = append(f.events, ev)
			f.mu.Unlock()
		})
	}()
	return f
}

// wait blocks until the aggregator ends the subscription and returns the
// collected events.
func (f *observeFeed) wait(t *testing.T, name string) []fed.ObserveEvent {
	t.Helper()
	select {
	case <-f.done:
	case <-time.After(120 * time.Second):
		t.Fatalf("%s observer never saw the fleet shut down", name)
	}
	if f.err != nil {
		t.Fatalf("%s observer: %v", name, f.err)
	}
	return f.events
}

// scrapeMetric fetches /metrics from base and returns the named sample.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in scrape:\n%s", name, body)
	return 0
}

func TestObservabilityTwoTier(t *testing.T) {
	const rounds = 3

	// The scrape listener serves the process-wide registry every in-process
	// job (parent, relays, leaves) feeds through emit.
	ms, err := obsv.Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	health := obsv.NewHealthTracker("test-root", 0)
	ms.SetHealth(health.Get)
	base := "http://" + ms.Addr()

	parent := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"),
		WithExpectClients(2),
		WithRounds(rounds),
		WithCodec("dense"),
		WithRoundDeadline(60*time.Second),
		WithSeed(71),
	)
	parentRes := make(chan *Result, 1)
	parentErr := make(chan error, 1)
	go func() {
		res, err := parent.Run(context.Background())
		parentRes <- res
		parentErr <- err
	}()
	parentAddr := waitAddr(t, parent)

	// Attach the root observer before any relay joins, so it sees round 1;
	// drive /healthz from the parent's own event stream meanwhile.
	rootFeed := attachObserver(t, parentAddr)
	firstEvent := make(chan struct{})
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		first := true
		for ev := range parent.Events() {
			health.Observe(ev.Round, ev.Clients)
			if first {
				first = false
				close(firstEvent)
			}
		}
	}()

	relayFeeds := make([]*observeFeed, 2)
	relayRes := make([]chan *Result, 2)
	relayErr := make([]chan error, 2)
	var leafWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		relay := NewJob(
			WithBackend(BackendAggregator),
			WithAddr("127.0.0.1:0"),
			WithParent(parentAddr),
			WithClientID([]string{"relay-west", "relay-east"}[r]),
			WithExpectClients(2),
			WithCodec("dense"),
			WithRoundDeadline(60*time.Second),
			WithSeed(int64(100+r)),
		)
		relayRes[r] = make(chan *Result, 1)
		relayErr[r] = make(chan error, 1)
		go func(r int, relay *Job) {
			res, err := relay.Run(context.Background())
			relayRes[r] <- res
			relayErr[r] <- err
		}(r, relay)
		relayAddr := waitAddr(t, relay)
		relayFeeds[r] = attachObserver(t, relayAddr)
		for c := 0; c < 2; c++ {
			leafWG.Add(1)
			go func(r, c int) {
				defer leafWG.Done()
				_, err := NewJob(
					WithBackend(BackendClient),
					WithAddr(relayAddr),
					WithClientID(string(rune('a'+2*r+c))),
					WithShard(2*r+c),
				).Run(context.Background())
				if err != nil {
					t.Errorf("leaf %d/%d: %v", r, c, err)
				}
			}(r, c)
		}
	}

	// (c) part 1: scrape mid-run, as soon as the first round lands.
	select {
	case <-firstEvent:
	case <-time.After(120 * time.Second):
		t.Fatal("no parent round event within 120s")
	}
	midRounds := scrapeMetric(t, base, "photon_rounds_total")
	if midRounds < 1 {
		t.Fatalf("mid-run photon_rounds_total = %v, want >= 1", midRounds)
	}

	res := <-parentRes
	if err := <-parentErr; err != nil {
		t.Fatalf("parent: %v", err)
	}
	for r := 0; r < 2; r++ {
		<-relayRes[r]
		if err := <-relayErr[r]; err != nil {
			t.Fatalf("relay %d: %v", r, err)
		}
	}
	leafWG.Wait()
	<-healthDone

	rootEvents := rootFeed.wait(t, "root")
	if len(rootEvents) != rounds {
		t.Fatalf("root observer saw %d rounds, want %d", len(rootEvents), rounds)
	}

	// (a) The phase breakdown must account for the measured round wall time:
	// sum within 20% of WallMs (plus a small absolute floor for very short
	// rounds on a noisy host).
	rootTrace := map[int]uint64{}
	for _, ev := range rootEvents {
		rec := ev.Record
		if rec.TraceID == 0 {
			t.Fatalf("root round %d has no trace ID", rec.Round)
		}
		rootTrace[rec.Round] = rec.TraceID
		sum := rec.Phases.SumMs()
		if rec.WallMs <= 0 || sum <= 0 {
			t.Fatalf("root round %d: wall=%.2fms phase sum=%.2fms, want both > 0", rec.Round, rec.WallMs, sum)
		}
		if tol := 0.20*rec.WallMs + 10; math.Abs(sum-rec.WallMs) > tol {
			t.Fatalf("root round %d: phase sum %.1fms vs wall %.1fms (tolerance %.1fms)\nphases: %+v",
				rec.Round, sum, rec.WallMs, tol, rec.Phases)
		}
		if rec.SlowestID == "" {
			t.Fatalf("root round %d: no straggler attribution", rec.Round)
		}
		if len(ev.Members) != 2 {
			t.Fatalf("root round %d: %d member-health entries, want 2 relays", rec.Round, len(ev.Members))
		}
	}

	// (b) Relay rounds must attribute to the root round's trace ID — one
	// distributed trace across the tier boundary.
	for r, feed := range relayFeeds {
		events := feed.wait(t, fmt.Sprintf("relay %d", r))
		if len(events) != rounds {
			t.Fatalf("relay %d observer saw %d rounds, want %d", r, len(events), rounds)
		}
		for _, ev := range events {
			rec := ev.Record
			want, ok := rootTrace[rec.Round]
			if !ok {
				t.Fatalf("relay %d observed round %d the root never ran", r, rec.Round)
			}
			if rec.TraceID != want {
				t.Fatalf("relay %d round %d: trace %x, root minted %x", r, rec.Round, rec.TraceID, want)
			}
			if rec.Tier != 1 {
				t.Fatalf("relay %d round %d: tier %d, want 1", r, rec.Round, rec.Tier)
			}
			if sum := rec.Phases.SumMs(); sum <= 0 {
				t.Fatalf("relay %d round %d: empty phase breakdown", r, rec.Round)
			}
		}
	}

	// The public result carries the same trace IDs and the breakdown.
	if len(res.Stats) != rounds {
		t.Fatalf("parent result has %d rounds, want %d", len(res.Stats), rounds)
	}
	for _, s := range res.Stats {
		if s.TraceID != rootTrace[s.Round] {
			t.Fatalf("result round %d trace %x, observer saw %x", s.Round, s.TraceID, rootTrace[s.Round])
		}
		if s.Phases.TrainMs <= 0 {
			t.Fatalf("result round %d has no train phase: %+v", s.Round, s.Phases)
		}
	}

	// (c) part 2: the counter advanced past the mid-run scrape, and /healthz
	// reports the finished run.
	endRounds := scrapeMetric(t, base, "photon_rounds_total")
	if endRounds <= midRounds {
		t.Fatalf("photon_rounds_total did not advance: mid=%v end=%v", midRounds, endRounds)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h obsv.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Component != "test-root" || h.Round != rounds {
		t.Fatalf("/healthz = %+v, want component test-root at round %d", h, rounds)
	}
}
