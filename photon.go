// Package photon is the public API of the Photon federated LLM pre-training
// system — a from-scratch Go reproduction of "Photon: Federated LLM
// Pre-Training" (MLSys 2025).
//
// The package wraps the internal subsystems (federated core, transformer
// training stack, data sources, communication layer, and wall-time models)
// behind three entry points:
//
//   - Pretrain runs a complete federated pre-training job in-process:
//     Algorithm 1 with FedAvg/FedMom/DiLoCo server optimizers, IID or
//     heterogeneous data, partial participation, dropout injection, and
//     checkpointing.
//   - PretrainCentralized runs the matched centralized/DDP baseline
//     (Algorithm 2).
//   - PlanDeployment evaluates the Appendix B.1 wall-time model over a
//     bandwidth topology, choosing the cheapest admissible aggregation
//     topology for a deployment.
//
// For networked (multi-process) federations, ServeAggregator and JoinAsClient
// speak the same wire protocol as the photon-agg and photon-client commands.
package photon

import (
	"fmt"
	"math/rand"

	"photon/internal/ckpt"
	"photon/internal/data"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/topo"
)

// ModelSize selects a model architecture preset.
type ModelSize string

// Available model sizes: the paper's Table 4 presets (for analytics and
// full-scale deployment) and the laptop-trainable proxies used by the
// experiment harness.
const (
	Size75M   ModelSize = "75M"
	Size125M  ModelSize = "125M"
	Size350M  ModelSize = "350M"
	Size1B    ModelSize = "1.3B"
	Size3B    ModelSize = "3B"
	Size7B    ModelSize = "7B"
	SizeTiny  ModelSize = "tiny"
	SizeTinyS ModelSize = "tiny-1B-proxy"
	SizeTinyM ModelSize = "tiny-3B-proxy"
	SizeTinyL ModelSize = "tiny-7B-proxy"
)

// ModelConfig resolves a size preset to its architecture configuration.
func ModelConfig(size ModelSize) (nn.Config, error) {
	all := append(nn.PaperConfigs(),
		nn.ConfigTiny, nn.ConfigTinyS, nn.ConfigTinyM, nn.ConfigTinyL)
	for _, c := range all {
		if c.Name == string(size) {
			return c, nil
		}
	}
	return nn.Config{}, fmt.Errorf("photon: unknown model size %q", size)
}

// ServerOptimizer selects the aggregator-side optimizer.
type ServerOptimizer string

// Server optimizer choices.
const (
	// FedAvg with ηs=1 is Photon's recipe.
	FedAvg ServerOptimizer = "fedavg"
	// FedMom adds server momentum (ηs=1, µ=0.9).
	FedMom ServerOptimizer = "fedmom"
	// DiLoCo is the outer-Nesterov baseline (ηs=0.1, µ=0.9).
	DiLoCo ServerOptimizer = "diloco"
)

// Options configures Pretrain. Zero values select the paper-faithful
// defaults documented per field.
type Options struct {
	Size ModelSize // default SizeTiny

	Clients         int // federation population (default 4)
	ClientsPerRound int // K; default = Clients (full participation)
	Rounds          int // federated rounds (default 20)
	LocalSteps      int // τ local steps per round (default 16)
	BatchSize       int // Bl hardware batch size (default 4)
	SeqLen          int // training sequence length (default 16)

	MaxLR  float64         // peak learning rate (default 3e-3, the high-LR recipe)
	Server ServerOptimizer // default FedAvg

	// Heterogeneous assigns each client one distinct Pile-like source
	// instead of IID shards of the C4-like corpus.
	Heterogeneous bool

	// DropoutProb injects per-round client failures.
	DropoutProb float64

	// CheckpointPath enables per-round async checkpointing of the global
	// model.
	CheckpointPath string

	// ResumeFrom loads a checkpoint written via CheckpointPath and
	// continues training from it: the global model is restored and round
	// numbering (and the learning-rate schedule) picks up where the
	// checkpoint left off.
	ResumeFrom string

	// StopAtPPL halts once validation perplexity reaches the target.
	StopAtPPL float64

	// SecureAggregation applies NaN-guarding and L2-clipping post-processing
	// to client updates before aggregation.
	ClipUpdateNorm float64

	Seed int64 // default 1
}

func (o *Options) fill() {
	if o.Size == "" {
		o.Size = SizeTiny
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.ClientsPerRound == 0 {
		o.ClientsPerRound = o.Clients
	}
	if o.Rounds == 0 {
		o.Rounds = 20
	}
	if o.LocalSteps == 0 {
		o.LocalSteps = 16
	}
	if o.BatchSize == 0 {
		o.BatchSize = 4
	}
	if o.SeqLen == 0 {
		o.SeqLen = 16
	}
	if o.MaxLR == 0 {
		o.MaxLR = 3e-3
	}
	if o.Server == "" {
		o.Server = FedAvg
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o Options) outer() (fed.OuterOpt, error) {
	switch o.Server {
	case FedAvg:
		return fed.FedAvg{LR: 1.0}, nil
	case FedMom:
		return fed.NewFedMom(1.0, 0.9), nil
	case DiLoCo:
		return fed.NewDiLoCo(0.1, 0.9), nil
	default:
		return nil, fmt.Errorf("photon: unknown server optimizer %q", o.Server)
	}
}

// RoundStat is one round of training progress.
type RoundStat struct {
	Round      int
	TrainLoss  float64
	Perplexity float64 // 0 when the round was not evaluated
	Clients    int
}

// Result is a finished pre-training run.
type Result struct {
	Stats           []RoundStat
	FinalPerplexity float64

	model *nn.Model
}

// Generate samples tokens from the trained model (temperature 0 = greedy).
func (r *Result) Generate(seed int64, prompt []int, n int, temperature float64) []int {
	return r.model.Generate(rand.New(rand.NewSource(seed)), prompt, n, temperature)
}

// Perplexity evaluates the trained model on fresh held-out data.
func (r *Result) Perplexity() float64 { return r.FinalPerplexity }

// NumParams returns the trained model's parameter count.
func (r *Result) NumParams() int { return r.model.NumParams() }

// Pretrain runs federated pre-training end to end in a single process and
// returns the trained global model with its training history.
func Pretrain(o Options) (*Result, error) {
	o.fill()
	cfg, err := ModelConfig(o.Size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = o.SeqLen

	var part *data.Partition
	var valSrc data.Source
	if o.Heterogeneous {
		pile := data.PileLike(cfg.VocabSize)
		part, err = data.BySourcePartition(pile, o.Clients, o.Seed+1000)
		valSrc = data.NewMixtureSource("pile", pile, nil)
	} else {
		valSrc = data.C4Like(cfg.VocabSize)
		part, err = data.IIDPartition(valSrc, o.Clients, o.Seed+1000)
	}
	if err != nil {
		return nil, err
	}

	clients := make([]*fed.Client, part.NumClients())
	for i := range clients {
		clients[i] = fed.NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
	}
	outer, err := o.outer()
	if err != nil {
		return nil, err
	}
	var post link.Pipeline
	if o.ClipUpdateNorm > 0 {
		post = link.Pipeline{link.NaNGuard{}, link.ClipL2{MaxNorm: o.ClipUpdateNorm}}
	}
	// Extended decay period (Appendix C.1): decay over 4x the planned run so
	// the high learning rate persists, with the PaperCosine 1% warmup.
	period := 4 * o.Rounds * o.LocalSteps
	if period < 200 {
		period = 200
	}
	var initParams []float32
	startRound := 0
	if o.ResumeFrom != "" {
		snap, err := ckpt.Load(o.ResumeFrom)
		if err != nil {
			return nil, fmt.Errorf("photon: resume: %w", err)
		}
		initParams = snap.Params
		startRound = snap.Round
	}

	res, err := fed.Run(fed.RunConfig{
		ModelConfig:     cfg,
		Seed:            o.Seed,
		Rounds:          o.Rounds,
		ClientsPerRound: o.ClientsPerRound,
		Clients:         clients,
		Outer:           outer,
		Spec: fed.LocalSpec{
			Steps:     o.LocalSteps,
			BatchSize: o.BatchSize,
			SeqLen:    cfg.SeqLen,
			Schedule:  opt.PaperCosine(o.MaxLR, period),
			ClipNorm:  1.0,
		},
		Validation:     data.NewValidationSet(valSrc, 16, cfg.SeqLen, 987654),
		EvalEvery:      1,
		Post:           post,
		DropoutProb:    o.DropoutProb,
		CheckpointPath: o.CheckpointPath,
		InitParams:     initParams,
		StartRound:     startRound,
		StopAtPPL:      o.StopAtPPL,
	})
	if err != nil {
		return nil, err
	}

	out := &Result{model: res.FinalModel, FinalPerplexity: res.History.FinalPPL()}
	for _, r := range res.History.Rounds {
		out.Stats = append(out.Stats, RoundStat{
			Round: r.Round, TrainLoss: r.TrainLoss, Perplexity: r.ValPPL, Clients: r.Clients,
		})
	}
	return out, nil
}

// TopologyPlan is one aggregation option evaluated by PlanDeployment.
type TopologyPlan struct {
	Topology       string
	BandwidthGbps  float64 // effective (bottleneck) bandwidth
	CommSeconds    float64 // per-round communication time
	RoundSeconds   float64 // per-round total (compute + comm)
	CommShare      float64 // fraction of the round spent communicating
	Selected       bool    // cheapest admissible choice
	RuledOutReason string  // non-empty when constraints exclude it
}

// PlanDeployment evaluates the Appendix B.1 wall-time model for a model size
// over the paper's Figure 2 world bandwidth graph (regions nil selects all
// five paper regions) and returns the per-topology plan with the cheapest
// admissible topology marked. localSteps is τ; throughput is the client's
// ν in batches/second; peerToPeer and dropouts mirror the deployment
// constraints of Section 4.
func PlanDeployment(size ModelSize, regions []string, localSteps int, throughput float64,
	peerToPeer, dropouts bool) ([]TopologyPlan, error) {
	cfg, err := ModelConfig(size)
	if err != nil {
		return nil, err
	}
	if len(regions) == 0 {
		regions = topo.WorldRing()
	}
	if localSteps <= 0 || throughput <= 0 {
		return nil, fmt.Errorf("photon: localSteps and throughput must be positive")
	}
	g := topo.WorldGraph()
	sizeMB := float64(cfg.ParamCount()) * 2 / 1e6

	var plans []TopologyPlan
	bestIdx, bestTime := -1, 0.0
	for _, t := range []topo.Topology{topo.PS, topo.AR, topo.RAR} {
		bw, err := g.EffectiveBandwidthGbps(t, topo.England, regions)
		if err != nil {
			return nil, err
		}
		m := topo.Model{
			ModelSizeMB:   sizeMB,
			BandwidthMBps: topo.GbpsToMBps(bw),
			Throughput:    throughput,
			LocalSteps:    localSteps,
		}
		k := len(regions)
		p := TopologyPlan{
			Topology:      t.String(),
			BandwidthGbps: bw,
			CommSeconds:   m.CommTime(t, k),
			RoundSeconds:  m.RoundTime(t, k),
			CommShare:     m.CommShare(t, k),
		}
		switch {
		case t != topo.PS && !peerToPeer:
			p.RuledOutReason = "privacy constraints forbid peer-to-peer"
		case t == topo.RAR && dropouts:
			p.RuledOutReason = "Ring-AllReduce cannot tolerate dropouts"
		}
		plans = append(plans, p)
		if p.RuledOutReason == "" && (bestIdx == -1 || p.RoundSeconds < bestTime) {
			bestIdx, bestTime = len(plans)-1, p.RoundSeconds
		}
	}
	if bestIdx >= 0 {
		plans[bestIdx].Selected = true
	}
	return plans, nil
}
