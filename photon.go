// Package photon is the public API of the Photon federated LLM pre-training
// system — a from-scratch Go reproduction of "Photon: Federated LLM
// Pre-Training" (MLSys 2025).
//
// The package wraps the internal subsystems (federated core, transformer
// training stack, data sources, communication layer, and wall-time models)
// behind a single context-aware, observable entry point:
//
//   - NewJob assembles a training job from functional options, Run executes
//     it honoring context cancellation and deadlines, and Events streams
//     per-round telemetry (loss, perplexity, participating clients,
//     communication bytes) while training is in progress.
//   - Backends select the execution engine: BackendFederated (Algorithm 1
//     in-process), BackendCentralized (the Algorithm 2 DDP baseline), and
//     BackendAggregator/BackendClient (real networked federation over the
//     Photon wire protocol, as used by the photon-agg and photon-client
//     commands).
//   - RegisterServerOptimizer, RegisterDataSource, and RegisterCodec plug
//     new aggregation rules, corpora, and wire codecs into every backend
//     without touching core. WithCodec selects how parameter payloads
//     travel: dense, lossless flate, int8 block quantization (q8), or
//     error-feedback top-k sparsification (topk) — lossy codecs shrink
//     the measured wire, not just a simulation.
//   - PlanDeployment evaluates the Appendix B.1 wall-time model over a
//     bandwidth topology, choosing the cheapest admissible aggregation
//     topology for a deployment; PlanHierarchy goes further and emits an
//     executable two-tier relay placement (who dials whom, per-tier
//     codecs) minimizing the congestion-corrected Eq. 5/6 wall time.
//   - Aggregation composes hierarchically over real links: WithParent
//     turns an aggregator job into a relay that joins a parent while
//     serving its own cohort, and WithTiers/WithRelays/WithPlan simulate
//     the same hierarchy in-process. Round telemetry carries Tier/Depth.
//
// The legacy blocking entry points (Pretrain, PretrainCentralized,
// ServeAggregator, JoinAsClient) remain as deprecated thin wrappers over
// the Job API.
package photon

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"photon/internal/hw"
	"photon/internal/nn"
	"photon/internal/topo"
)

// ModelSize selects a model architecture preset.
type ModelSize string

// Available model sizes: the paper's Table 4 presets (for analytics and
// full-scale deployment) and the laptop-trainable proxies used by the
// experiment harness.
const (
	Size75M   ModelSize = "75M"
	Size125M  ModelSize = "125M"
	Size350M  ModelSize = "350M"
	Size1B    ModelSize = "1.3B"
	Size3B    ModelSize = "3B"
	Size7B    ModelSize = "7B"
	SizeTiny  ModelSize = "tiny"
	SizeTinyS ModelSize = "tiny-1B-proxy"
	SizeTinyM ModelSize = "tiny-3B-proxy"
	SizeTinyL ModelSize = "tiny-7B-proxy"
)

// ModelConfig resolves a size preset to its architecture configuration.
func ModelConfig(size ModelSize) (nn.Config, error) {
	all := append(nn.PaperConfigs(),
		nn.ConfigTiny, nn.ConfigTinyS, nn.ConfigTinyM, nn.ConfigTinyL)
	for _, c := range all {
		if c.Name == string(size) {
			return c, nil
		}
	}
	return nn.Config{}, fmt.Errorf("photon: unknown model size %q", size)
}

// ServerOptimizer names an aggregator-side optimizer in the registry.
type ServerOptimizer string

// Built-in server optimizer names (see RegisterServerOptimizer for adding
// more).
const (
	// FedAvg with ηs=1 is Photon's recipe.
	FedAvg ServerOptimizer = "fedavg"
	// FedMom adds server momentum (ηs=1, µ=0.9).
	FedMom ServerOptimizer = "fedmom"
	// DiLoCo is the outer-Nesterov baseline (ηs=0.1, µ=0.9).
	DiLoCo ServerOptimizer = "diloco"
)

// Options configures Pretrain. Zero values select the paper-faithful
// defaults documented per field.
//
// Deprecated: build a Job with NewJob and the With* options instead;
// Options remains for the legacy Pretrain entry point.
type Options struct {
	Size ModelSize // default SizeTiny

	Clients         int // federation population (default 4)
	ClientsPerRound int // K; default = Clients (full participation)
	Rounds          int // federated rounds (default 20)
	LocalSteps      int // τ local steps per round (default 16)
	BatchSize       int // Bl hardware batch size (default 4)
	SeqLen          int // training sequence length (default 16)

	MaxLR  float64         // peak learning rate (default 3e-3, the high-LR recipe)
	Server ServerOptimizer // default FedAvg

	// Heterogeneous assigns each client one distinct Pile-like source
	// instead of IID shards of the C4-like corpus.
	Heterogeneous bool

	// DropoutProb injects per-round client failures.
	DropoutProb float64

	// CheckpointPath enables per-round async checkpointing of the global
	// model.
	CheckpointPath string

	// ResumeFrom loads a checkpoint written via CheckpointPath and
	// continues training from it: the global model is restored and round
	// numbering (and the learning-rate schedule) picks up where the
	// checkpoint left off.
	ResumeFrom string

	// StopAtPPL halts once validation perplexity reaches the target.
	StopAtPPL float64

	// ClipUpdateNorm applies NaN-guarding and L2-clipping post-processing
	// to client updates before aggregation.
	ClipUpdateNorm float64

	Seed int64 // default 1
}

// jobOptions translates the legacy struct to the functional-option form.
func (o Options) jobOptions() []JobOption {
	opts := []JobOption{
		WithBackend(BackendFederated),
		WithModel(o.Size),
		WithClients(o.Clients),
		WithClientsPerRound(o.ClientsPerRound),
		WithRounds(o.Rounds),
		WithLocalSteps(o.LocalSteps),
		WithBatchSize(o.BatchSize),
		WithSeqLen(o.SeqLen),
		WithMaxLR(o.MaxLR),
		WithDropout(o.DropoutProb),
		WithClipUpdateNorm(o.ClipUpdateNorm),
		WithCheckpoint(o.CheckpointPath),
		WithResume(o.ResumeFrom),
		WithStopAtPPL(o.StopAtPPL),
		WithSeed(o.Seed),
	}
	if o.Server != "" {
		opts = append(opts, WithServerOptimizer(string(o.Server)))
	}
	if o.Heterogeneous {
		opts = append(opts, WithDataSource("pile"))
	}
	return opts
}

// RoundStat is one round of training progress.
type RoundStat struct {
	Round      int
	TrainLoss  float64
	Perplexity float64 // 0 when the round was not evaluated
	Clients    int
	CommBytes  int64 // model/update bytes exchanged during the round

	// Wire-codec accounting: measured bytes by direction, the encoded-vs-
	// dense payload ratio (1 = dense, ~0.25 = q8), and codec wall times.
	WireSentBytes    int64
	WireRecvBytes    int64
	CompressionRatio float64
	EncodeMs         float64
	DecodeMs         float64

	// Hierarchical-aggregation position: Tier is the emitter's distance
	// from the global aggregator (0 = root, 1 = a relay job), Depth the
	// number of aggregation tiers at or below it (2 when the round's
	// members are relays; 0 = not applicable).
	Tier  int
	Depth int

	// Elastic-membership churn attributed to the round (networked
	// aggregator backend only): joins/rejoins (round 1 includes the
	// initial cohort), evictions, cohort slots dropped at the round
	// deadline, and the mean heartbeat round-trip.
	Joins             int
	Evictions         int
	Stragglers        int
	HeartbeatRTTMs    float64
	HeartbeatRTTP99Ms float64

	// Observability: the round's trace ID (propagated down the
	// aggregation tree from the root), its measured wall time, the
	// per-phase critical-path breakdown, and straggler attribution.
	TraceID      uint64
	WallMs       float64
	Phases       PhaseBreakdown
	SlowestID    string
	SlowestPhase string

	// Asynchronous-aggregation telemetry (WithAsync; zero under sync):
	// the committed global model version, the number of updates folded
	// into the commit's buffer, and their mean staleness in versions.
	ModelVersion  int
	BufferFill    int
	MeanStaleness float64
}

// Result is a finished (or, under cancellation, partial) pre-training run.
type Result struct {
	Stats           []RoundStat
	FinalPerplexity float64

	// Run-total churn counts (sums over Stats), so a caller can see at a
	// glance how much membership turbulence the run absorbed.
	Joins      int
	Evictions  int
	Stragglers int

	// DroppedEvents counts RoundEvents discarded because the Events()
	// consumer fell behind its buffer (drop-oldest backpressure): rounds
	// are never stalled by a slow consumer, and this is the audit trail.
	DroppedEvents int

	model *nn.Model
}

// Generate samples tokens from the trained model (temperature 0 = greedy).
// It returns nil when the run produced no model (client backend).
func (r *Result) Generate(seed int64, prompt []int, n int, temperature float64) []int {
	if r.model == nil {
		return nil
	}
	return r.model.Generate(rand.New(rand.NewSource(seed)), prompt, n, temperature)
}

// Perplexity evaluates the trained model on fresh held-out data.
func (r *Result) Perplexity() float64 { return r.FinalPerplexity }

// NumParams returns the trained model's parameter count (0 when the run
// produced no model).
func (r *Result) NumParams() int {
	if r.model == nil {
		return 0
	}
	return r.model.NumParams()
}

// Pretrain runs federated pre-training end to end in a single process and
// returns the trained global model with its training history.
//
// Deprecated: use NewJob(...).Run(ctx) with BackendFederated, which adds
// cancellation and live Events telemetry. Pretrain remains as a thin
// wrapper and is equivalent to running the job with context.Background().
func Pretrain(o Options) (*Result, error) {
	res, err := NewJob(o.jobOptions()...).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TopologyPlan is one aggregation option evaluated by PlanDeployment.
type TopologyPlan struct {
	Topology       string
	BandwidthGbps  float64 // effective (bottleneck) bandwidth
	CommSeconds    float64 // per-round communication time
	RoundSeconds   float64 // per-round total (compute + comm)
	CommShare      float64 // fraction of the round spent communicating
	Selected       bool    // cheapest admissible choice
	RuledOutReason string  // non-empty when constraints exclude it
}

// RelayCohort is one relay's tier assignment in a HierarchyPlan.
type RelayCohort struct {
	Region  string
	Members []string // leaf client nodes ("<region>/<i>") served by this relay
}

// DialEdge is one edge of a HierarchyPlan's executable dial graph: From
// dials To on the given tier (0 = toward the root, 1 = leaf → relay), over
// the stated link, speaking the stated codec.
type DialEdge struct {
	From, To      string
	Tier          int
	BandwidthGbps float64
	Codec         string
}

// HierarchyPlan is an executable aggregation-topology plan: where relays
// sit, who dials whom, which codec each tier speaks, and the predicted
// Eq. 5 wall times behind the choice. Feed it to WithPlan to configure a
// job, or walk Dials to start photon-agg -parent / photon-client processes.
type HierarchyPlan struct {
	ModelName string
	AggRegion string
	Tiers     int // 1 = flat star, 2 = relays pay off
	Relays    []RelayCohort

	UpstreamCodec string
	IntraCodec    string

	FlatRoundSeconds   float64
	TieredRoundSeconds float64
	RoundSeconds       float64 // the chosen candidate's time

	Dials []DialEdge
}

// codecWireRatio estimates a codec's encoded-vs-dense wire ratio for
// planning purposes: dense 1.0, flate ~0.9 on float noise, q8 ~0.26 (1
// byte/elem + block scales), topk:<keep> ~2·keep (8 bytes per kept pair).
func codecWireRatio(name string) float64 {
	base, param, _ := strings.Cut(name, ":")
	switch base {
	case "flate":
		return 0.9
	case "q8":
		return 0.26
	case "topk":
		keep := 0.1
		if param != "" {
			if v, err := strconv.ParseFloat(param, 64); err == nil && v > 0 && v <= 1 {
				keep = v
			}
		}
		if r := 2 * keep; r < 1 {
			return r
		}
		return 1
	default:
		return 1
	}
}

// PlanHierarchy runs the congestion-corrected Appendix B.1 model over the
// paper's Table 1 deployment for the model size and the Figure 2 world
// bandwidth graph, and returns the cheapest executable aggregation
// hierarchy: the flat PS star on the aggregator region, or a two-tier relay
// placement (searched exhaustively over relay sites) when that minimizes
// Eq. 5/6 wall time. localSteps is τ; throughput is the client's ν in
// batches/second (0 selects the paper's measured value for the size);
// upstreamCodec names the relay→root codec the plan assumes and records
// ("" = "q8").
func PlanHierarchy(size ModelSize, localSteps int, throughput float64, upstreamCodec string) (*HierarchyPlan, error) {
	cfg, err := ModelConfig(size)
	if err != nil {
		return nil, err
	}
	d, ok := hw.DeploymentFor(cfg)
	if !ok {
		return nil, fmt.Errorf("photon: no Table 1 deployment for model size %q", size)
	}
	if throughput <= 0 {
		if throughput = hw.PaperThroughput(cfg.Name, true); throughput <= 0 {
			return nil, fmt.Errorf("photon: no measured throughput for %q; pass one explicitly", size)
		}
	}
	if localSteps <= 0 {
		return nil, fmt.Errorf("photon: localSteps must be positive")
	}
	if upstreamCodec == "" {
		upstreamCodec = "q8"
	}
	m := topo.Model{
		ModelSizeMB:   hw.ModelSizeMB(cfg),
		BandwidthMBps: 1, // superseded per link by the graph
		Throughput:    throughput,
		LocalSteps:    localSteps,
	}
	p, err := topo.BuildPlan(d, topo.WorldGraph(), m, topo.PlanOptions{
		UpstreamCodec:       upstreamCodec,
		UpstreamCompression: codecWireRatio(upstreamCodec),
	})
	if err != nil {
		return nil, err
	}
	out := &HierarchyPlan{
		ModelName:          p.ModelName,
		AggRegion:          p.AggRegion,
		Tiers:              p.Tiers,
		UpstreamCodec:      p.UpstreamCodec,
		IntraCodec:         p.IntraCodec,
		FlatRoundSeconds:   p.FlatRoundSeconds,
		TieredRoundSeconds: p.TieredRoundSeconds,
		RoundSeconds:       p.RoundSeconds,
	}
	for _, c := range p.Relays {
		out.Relays = append(out.Relays, RelayCohort{Region: c.RelayRegion, Members: c.Members})
	}
	for _, e := range p.Dials {
		out.Dials = append(out.Dials, DialEdge{From: e.From, To: e.To, Tier: e.Tier,
			BandwidthGbps: e.BandwidthGbps, Codec: e.Codec})
	}
	return out, nil
}

// PlanDeployment evaluates the Appendix B.1 wall-time model for a model size
// over the paper's Figure 2 world bandwidth graph (regions nil selects all
// five paper regions) and returns the per-topology plan with the cheapest
// admissible topology marked. localSteps is τ; throughput is the client's
// ν in batches/second; peerToPeer and dropouts mirror the deployment
// constraints of Section 4.
func PlanDeployment(size ModelSize, regions []string, localSteps int, throughput float64,
	peerToPeer, dropouts bool) ([]TopologyPlan, error) {
	cfg, err := ModelConfig(size)
	if err != nil {
		return nil, err
	}
	if len(regions) == 0 {
		regions = topo.WorldRing()
	}
	if localSteps <= 0 || throughput <= 0 {
		return nil, fmt.Errorf("photon: localSteps and throughput must be positive")
	}
	g := topo.WorldGraph()
	sizeMB := float64(cfg.ParamCount()) * 2 / 1e6

	var plans []TopologyPlan
	bestIdx, bestTime := -1, 0.0
	for _, t := range []topo.Topology{topo.PS, topo.AR, topo.RAR} {
		bw, err := g.EffectiveBandwidthGbps(t, topo.England, regions)
		if err != nil {
			return nil, err
		}
		m := topo.Model{
			ModelSizeMB:   sizeMB,
			BandwidthMBps: topo.GbpsToMBps(bw),
			Throughput:    throughput,
			LocalSteps:    localSteps,
		}
		k := len(regions)
		p := TopologyPlan{
			Topology:      t.String(),
			BandwidthGbps: bw,
			CommSeconds:   m.CommTime(t, k),
			RoundSeconds:  m.RoundTime(t, k),
			CommShare:     m.CommShare(t, k),
		}
		switch {
		case t != topo.PS && !peerToPeer:
			p.RuledOutReason = "privacy constraints forbid peer-to-peer"
		case t == topo.RAR && dropouts:
			p.RuledOutReason = "Ring-AllReduce cannot tolerate dropouts"
		}
		plans = append(plans, p)
		if p.RuledOutReason == "" && (bestIdx == -1 || p.RoundSeconds < bestTime) {
			bestIdx, bestTime = len(plans)-1, p.RoundSeconds
		}
	}
	if bestIdx >= 0 {
		plans[bestIdx].Selected = true
	}
	return plans, nil
}
