package photon

// End-to-end tests for the elastic membership control plane: mid-run client
// death with eviction, late joins, automatic client reconnection, straggler
// handling under a round deadline, and the churn telemetry surfaced through
// Events() and the final Result.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/metrics"
)

// TestElasticChurnEndToEnd is the acceptance scenario: three clients join a
// networked aggregator with heartbeats and a round deadline; one is killed
// mid-round and a fourth joins late. The run must still complete all
// rounds, and the eviction and the late join must be visible in Events()
// and in the final Result.
func TestElasticChurnEndToEnd(t *testing.T) {
	const rounds = 5
	job := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"),
		WithExpectClients(3),
		WithMinClients(1),
		WithRounds(rounds),
		WithHeartbeat(200*time.Millisecond),
		WithRoundDeadline(30*time.Second),
		WithSeed(31),
	)

	type summary struct {
		events     int
		joins      int
		evictions  int
		stragglers int
	}
	sumCh := make(chan summary, 1)
	go func() {
		var s summary
		for ev := range job.Events() {
			s.events++
			s.joins += ev.Joins
			s.evictions += ev.Evictions
			s.stragglers += ev.Stragglers
		}
		sumCh <- s
	}()

	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := job.Run(context.Background())
		resCh <- res
		errCh <- err
	}()

	// The job binds an ephemeral port; wait for it.
	var addr string
	for i := 0; i < 500 && addr == ""; i++ {
		addr = job.Addr()
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("aggregator never bound its listener")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Two healthy clients that serve the whole run.
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(addr)
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(ctx, conn, netClient(t, string(rune('a'+i)), i), netSpec())
		}(i)
	}

	// The victim: answers round 1, then its process "dies" (connection
	// closed without a goodbye, mid-membership).
	victimDead := make(chan struct{})
	go func() {
		defer close(victimDead)
		conn, err := link.Dial(addr)
		if err != nil {
			t.Errorf("victim dial: %v", err)
			return
		}
		defer conn.Close()
		if _, err := fed.Handshake(conn, "victim", ""); err != nil {
			return
		}
		c := netClient(t, "victim", 5)
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			switch msg.Type {
			case link.MsgHeartbeat:
				conn.Send(&link.Message{Type: link.MsgHeartbeat, Meta: msg.Meta})
			case link.MsgModel:
				global, err := msg.Payload.Floats()
				if err != nil {
					return
				}
				res, err := c.RunRound(ctx, global, 0, netSpec())
				if err != nil {
					return
				}
				conn.Send(&link.Message{Type: link.MsgUpdate, Round: msg.Round,
					ClientID: "victim", Meta: res.Metrics, Payload: link.Dense(res.Update)})
				return // vanish after the first served round
			}
		}
	}()

	// The late joiner: shows up only after the victim is gone.
	<-victimDead
	lateDone := make(chan error, 1)
	go func() {
		conn, err := link.Dial(addr)
		if err != nil {
			lateDone <- err
			return
		}
		defer conn.Close()
		lateDone <- fed.ServeClient(ctx, conn, netClient(t, "late", 7), netSpec())
	}()

	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	s := <-sumCh

	if len(res.Stats) != rounds {
		t.Fatalf("run did not complete: %d/%d rounds", len(res.Stats), rounds)
	}
	// Churn visibility: 3 initial joins + 1 late join, 1 eviction — in the
	// event stream and in the final result.
	if s.joins != 4 {
		t.Fatalf("events joins = %d, want 4 (3 initial + 1 late)", s.joins)
	}
	if s.evictions != 1 {
		t.Fatalf("events evictions = %d, want 1", s.evictions)
	}
	if res.Joins != 4 || res.Evictions != 1 {
		t.Fatalf("result churn totals = %d joins / %d evictions, want 4/1", res.Joins, res.Evictions)
	}
	if s.events != rounds {
		t.Fatalf("events = %d, want %d", s.events, rounds)
	}
	// Every round must have aggregated at least the two healthy clients.
	for _, st := range res.Stats {
		if st.Clients < 2 {
			t.Fatalf("round %d aggregated only %d clients", st.Round, st.Clients)
		}
	}
	// The late joiner must actually have been sampled: with full
	// participation it serves every remaining round until shutdown.
	if err := <-lateDone; err != nil {
		t.Fatalf("late joiner session: %v", err)
	}
	last := res.Stats[rounds-1]
	if last.Clients != 3 {
		t.Fatalf("final round aggregated %d clients, want 3 (2 survivors + late joiner)", last.Clients)
	}
}

// TestStrayConnectionCannotHoldMembershipSlot covers the join-handshake
// fix: connections that never complete MsgJoin — one that disconnects
// immediately and one that sits silent — must neither count toward the
// expected cohort nor delay the genuine joiners, whose handshakes proceed
// concurrently.
func TestStrayConnectionCannotHoldMembershipSlot(t *testing.T) {
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Stray #1: connects and immediately disconnects, before any MsgJoin.
	if c, err := link.Dial(l.Addr()); err == nil {
		c.Close()
	}
	// Stray #2: connects and sits silent for the whole test.
	silent, err := link.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	// Two genuine clients join after the strays.
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(ctx, conn, netClient(t, string(rune('a'+i)), i), netSpec())
		}(i)
	}

	start := time.Now()
	res, err := fed.Serve(context.Background(), l, fed.ServerConfig{
		ModelConfig:   tinyNetCfg(),
		Seed:          47,
		Rounds:        2,
		ExpectClients: 2,
		Outer:         fed.FedAvg{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The silent stray's handshake window is 10s; genuine joins must not
	// have been serialized behind it.
	if waited := time.Since(start); waited > 8*time.Second {
		t.Fatalf("strays delayed the run: took %v", waited)
	}
	for _, r := range res.History.Rounds {
		if r.Clients != 2 {
			t.Fatalf("round %d aggregated %d clients, want exactly the 2 genuine joiners", r.Round, r.Clients)
		}
	}
}

// TestNoProgressRunStopsWithPartialResult: when every round aggregates
// zero updates (the sole member straggles forever), the server must stop
// after a bounded number of empty rounds instead of silently "completing",
// and the error must still carry the partial history.
func TestNoProgressRunStopsWithPartialResult(t *testing.T) {
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// One member that joins and answers heartbeats but never updates.
	go func() {
		conn, err := link.Dial(l.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := fed.Handshake(conn, "sloth", ""); err != nil {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil || msg.Type == link.MsgShutdown {
				return
			}
			if msg.Type == link.MsgHeartbeat {
				conn.Send(&link.Message{Type: link.MsgHeartbeat, Meta: msg.Meta})
			}
		}
	}()

	res, err := fed.Serve(context.Background(), l, fed.ServerConfig{
		ModelConfig:       tinyNetCfg(),
		Seed:              51,
		Rounds:            50,
		ExpectClients:     1,
		HeartbeatInterval: 100 * time.Millisecond,
		RoundDeadline:     300 * time.Millisecond,
		Outer:             fed.FedAvg{},
	})
	if err == nil {
		t.Fatal("no-progress run reported success")
	}
	if res == nil {
		t.Fatal("no-progress error discarded the partial result")
	}
	if got := res.History.Len(); got != 3 {
		t.Fatalf("recorded %d empty rounds before stopping, want 3", got)
	}
	for _, r := range res.History.Rounds {
		if r.Clients != 0 {
			t.Fatalf("round %d claims %d clients with no updates", r.Round, r.Clients)
		}
	}
}

// TestClientReconnectsAfterConnectionLoss kills a client's TCP connection
// mid-run (without killing the client) and verifies RunResilientClient
// redials, rejoins under the same identity, and finishes the session
// cleanly, with the rejoin visible as a round join event.
func TestClientReconnectsAfterConnectionLoss(t *testing.T) {
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A healthy companion so the run survives while the flaky client is
	// reconnecting.
	go func() {
		conn, err := link.Dial(l.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		_ = fed.ServeClient(ctx, conn, netClient(t, "steady", 0), netSpec())
	}()

	// The flaky client: its first connection is wrapped so we can yank it
	// after one served round; the resilient wrapper must redial and rejoin.
	var dials atomic.Int32
	var firstConn atomic.Pointer[link.Conn]
	dial := func(ctx context.Context) (*link.Conn, error) {
		conn, err := link.DialContext(ctx, l.Addr())
		if err == nil && dials.Add(1) == 1 {
			firstConn.Store(conn)
		}
		return conn, err
	}
	rounds := make(chan int, 64)
	clientDone := make(chan error, 1)
	go func() {
		clientDone <- fed.RunResilientClient(ctx, dial, netClient(t, "flaky", 1), netSpec(),
			fed.ReconnectConfig{MaxAttempts: 10, InitialBackoff: 50 * time.Millisecond},
			func(r metrics.Round) { rounds <- r.Round })
	}()

	// Yank the flaky client's first connection after it served a round.
	go func() {
		<-rounds
		if c := firstConn.Load(); c != nil {
			c.Close()
		}
	}()

	// MinClients 2 makes the reconnect deterministic: after the flaky
	// client is evicted, rounds wait for it to rejoin instead of racing
	// ahead with the survivor and finishing before the backoff elapses.
	var joins, evictions int
	res, err := fed.Serve(context.Background(), l, fed.ServerConfig{
		ModelConfig:   tinyNetCfg(),
		Seed:          41,
		Rounds:        6,
		ExpectClients: 2,
		MinClients:    2,
		RoundDeadline: 30 * time.Second,
		Outer:         fed.FedAvg{},
		OnRound: func(r metrics.Round) {
			joins += r.Joins
			evictions += r.Evictions
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != 6 {
		t.Fatalf("rounds completed = %d", res.History.Len())
	}
	if err := <-clientDone; err != nil {
		t.Fatalf("resilient client: %v", err)
	}
	if got := dials.Load(); got < 2 {
		t.Fatalf("client dialed %d times, want a reconnect", got)
	}
	// 2 initial joins + ≥1 rejoin; the yanked connection is one eviction.
	if joins < 3 || evictions < 1 {
		t.Fatalf("churn: joins=%d evictions=%d, want ≥3 joins and ≥1 eviction", joins, evictions)
	}
	// After reconnecting, the flaky client must have served later rounds.
	maxRound := 0
	for {
		select {
		case r := <-rounds:
			if r > maxRound {
				maxRound = r
			}
			continue
		default:
		}
		break
	}
	if maxRound < 3 {
		t.Fatalf("flaky client never served a post-reconnect round (max round %d)", maxRound)
	}
}

// TestRelayCrashCohortReconnects is the relay fault-tolerance scenario:
// a relay is killed mid-run (its parent connection yanked, no goodbye), its
// cohort's resilient clients must treat the loss as a transport failure and
// redial, the parent must aggregate the partial rounds from the surviving
// relay in the meantime, and a restarted relay under the same identity must
// reassemble the cohort, rejoin the parent, and finish the run.
func TestRelayCrashCohortReconnects(t *testing.T) {
	cfg := tinyNetCfg()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	parentL, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer parentL.Close()

	// Healthy relay A with two plain cohort clients.
	aL, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aL.Close()
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(aL.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(ctx, conn, netClient(t, string(rune('a'+i)), i), netSpec())
		}(i)
	}
	relayADone := make(chan error, 1)
	go func() {
		_, err := fed.RunRelay(ctx, aL, func(ctx context.Context) (*link.Conn, error) {
			return link.DialContext(ctx, parentL.Addr())
		}, fed.RelayConfig{
			ModelConfig:   cfg,
			ID:            "relay-a",
			ExpectClients: 2,
			RoundDeadline: 30 * time.Second,
		})
		relayADone <- err
	}()

	// Victim relay B: its parent connection is captured so the test can
	// kill it mid-run; its cohort clients are resilient and must survive
	// the crash by reconnecting to the restarted relay.
	bL, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bAddr := bL.Addr()
	for i := 0; i < 2; i++ {
		go func(i int) {
			err := fed.RunResilientClient(ctx, func(ctx context.Context) (*link.Conn, error) {
				return link.DialContext(ctx, bAddr)
			}, netClient(t, string(rune('c'+i)), 2+i), netSpec(), fed.ReconnectConfig{
				MaxAttempts:    40,
				InitialBackoff: 50 * time.Millisecond,
				MaxBackoff:     500 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("resilient cohort client %d: %v", i, err)
			}
		}(i)
	}
	var bParentConn atomic.Pointer[link.Conn]
	bRounds := make(chan int, 64)
	bCrashed := make(chan error, 1)
	go func() {
		_, err := fed.RunRelay(ctx, bL, func(ctx context.Context) (*link.Conn, error) {
			conn, err := link.DialContext(ctx, parentL.Addr())
			if err == nil {
				bParentConn.Store(conn)
			}
			return conn, err
		}, fed.RelayConfig{
			ModelConfig:   cfg,
			ID:            "relay-b",
			ExpectClients: 2,
			RoundDeadline: 30 * time.Second,
			OnRound:       func(r metrics.Round) { bRounds <- r.Round },
		})
		bCrashed <- err
	}()

	// The parent's synchronous OnRound hook feeds an unbuffered channel,
	// so the round loop cannot race ahead of the test's choreography: each
	// round completes only when the test consumes its record.
	const rounds = 12
	parentRounds := make(chan metrics.Round)
	errCh := make(chan error, 1)
	resCh := make(chan *fed.Result, 1)
	go func() {
		res, err := fed.Serve(context.Background(), parentL, fed.ServerConfig{
			ModelConfig:   cfg,
			Seed:          61,
			Rounds:        rounds,
			ExpectClients: 2,
			MinClients:    1,
			RoundDeadline: 15 * time.Second,
			Outer:         fed.FedAvg{},
			OnRound:       func(r metrics.Round) { parentRounds <- r },
		})
		resCh <- res
		errCh <- err
	}()

	// Round 1 must aggregate both relays.
	r1 := <-parentRounds
	if r1.Clients != 2 {
		t.Fatalf("round 1 aggregated %d relays, want 2", r1.Clients)
	}
	if r1.Depth != 2 {
		t.Fatalf("round 1 Depth=%d, want 2", r1.Depth)
	}

	// Kill relay B mid-run: yank its parent connection without a goodbye.
	<-bRounds
	if c := bParentConn.Load(); c != nil {
		c.Close()
	}
	crashErr := <-bCrashed
	if crashErr == nil || !errors.Is(crashErr, fed.ErrSessionLost) {
		t.Fatalf("relay B did not die with a session-lost error: %v", crashErr)
	}
	bL.Close()

	// The parent must aggregate the partial round(s) from relay A alone.
	// The crash lands no later than round 3: round 2 may still have been
	// mid-flight when the connection died.
	round := 1
	sawPartial := false
	for !sawPartial {
		r := <-parentRounds
		round++
		if round > 3 {
			t.Fatalf("no partial round by round %d", round)
		}
		if r.Clients == 1 {
			sawPartial = true
		}
	}

	// Restart the relay on the same address under the same identity: the
	// resilient cohort clients reconnect to it and it rejoins the parent
	// mid-run.
	bL2, err := link.Listen(bAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bL2.Close()
	restartDone := make(chan error, 1)
	go func() {
		_, err := fed.RunRelay(ctx, bL2, func(ctx context.Context) (*link.Conn, error) {
			return link.DialContext(ctx, parentL.Addr())
		}, fed.RelayConfig{
			ModelConfig:   cfg,
			ID:            "relay-b",
			ExpectClients: 2,
			RoundDeadline: 30 * time.Second,
		})
		restartDone <- err
	}()

	// Drain the remaining rounds with a little spacing so the cohort
	// reassembly and parent rejoin land between rounds; the tail of the
	// run must be full two-relay rounds again.
	fullAfterRestart := 0
	var last metrics.Round
	for round < rounds {
		time.Sleep(150 * time.Millisecond)
		last = <-parentRounds
		round++
		if last.Clients == 2 {
			fullAfterRestart++
		}
	}
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != rounds {
		t.Fatalf("parent completed %d rounds, want %d", res.History.Len(), rounds)
	}
	if err := <-restartDone; err != nil {
		t.Fatalf("restarted relay: %v", err)
	}
	if err := <-relayADone; err != nil {
		t.Fatalf("healthy relay: %v", err)
	}
	if fullAfterRestart < 1 {
		t.Fatal("the restarted relay never contributed a full round")
	}
	if last.Clients != 2 {
		t.Fatalf("final round aggregated %d relays, want both", last.Clients)
	}
	// Depth telemetry survives churn: once relays identified themselves in
	// round 1, even partial (and would-be empty) rounds stay Depth 2.
	for _, r := range res.History.Rounds {
		if r.Depth != 2 {
			t.Fatalf("round %d Depth=%d, want 2", r.Round, r.Depth)
		}
	}
}

// TestRoundDeadlineDropsStraggler verifies the straggler policy: a cohort
// member that never answers within the round deadline is dropped from the
// round (counted as a straggler) while the round aggregates the survivors,
// and the run completes instead of blocking forever.
func TestRoundDeadlineDropsStraggler(t *testing.T) {
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(ctx, conn, netClient(t, string(rune('a'+i)), i), netSpec())
		}(i)
	}
	// The straggler joins, answers heartbeats, but never returns updates.
	go func() {
		conn, err := link.Dial(l.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := fed.Handshake(conn, "sloth", ""); err != nil {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil || msg.Type == link.MsgShutdown {
				return
			}
			if msg.Type == link.MsgHeartbeat {
				conn.Send(&link.Message{Type: link.MsgHeartbeat, Meta: msg.Meta})
			}
			// MsgModel: swallow it and never reply.
		}
	}()

	var stragglers int
	res, err := fed.Serve(context.Background(), l, fed.ServerConfig{
		ModelConfig:       tinyNetCfg(),
		Seed:              43,
		Rounds:            3,
		ExpectClients:     3,
		HeartbeatInterval: 100 * time.Millisecond,
		RoundDeadline:     2 * time.Second,
		Outer:             fed.FedAvg{},
		OnRound:           func(r metrics.Round) { stragglers += r.Stragglers },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != 3 {
		t.Fatalf("rounds completed = %d", res.History.Len())
	}
	if stragglers < 3 {
		t.Fatalf("stragglers = %d, want one per round", stragglers)
	}
	for _, r := range res.History.Rounds {
		if r.Clients != 2 {
			t.Fatalf("round %d aggregated %d clients, want the 2 responsive ones", r.Round, r.Clients)
		}
		if r.UpdateNorm == 0 {
			t.Fatalf("round %d produced no aggregate update", r.Round)
		}
	}
}
