// Package opt implements the local (client-side) optimizers and learning-rate
// schedules used by Photon: AdamW with decoupled weight decay (the paper's
// ClientOpt), plain and Nesterov-momentum SGD, and the cosine-with-warmup
// schedule whose decay period follows the Appendix C.1 rule (Eq. 8): the
// period is set for the *hardware* batch size Bc rather than the effective
// federated batch, which is what lets Photon pair small client batches with
// high learning rates.
package opt

import (
	"math"

	"photon/internal/nn"
)

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update with the given learning rate and then leaves
	// gradients untouched (callers zero them).
	Step(params nn.ParamSet, lr float64)
	// Reset clears all internal state (momenta, step counters). Photon
	// clients call this at every round boundary: the paper uses stateless
	// local optimization so optimizer state never needs to be communicated
	// or persisted across intermittent client availability.
	Reset()
	// Name identifies the optimizer in metrics and checkpoints.
	Name() string
}

// SGD is plain stochastic gradient descent.
type SGD struct{}

// Name implements Optimizer.
func (SGD) Name() string { return "sgd" }

// Reset implements Optimizer (SGD is stateless).
func (SGD) Reset() {}

// Step applies p -= lr·g.
func (SGD) Step(params nn.ParamSet, lr float64) {
	for _, p := range params {
		for i, g := range p.Grad {
			p.Data[i] -= float32(lr) * g
		}
	}
}

// Momentum is SGD with (optionally Nesterov) momentum, the optimizer DiLoCo
// recommends for its outer loop; provided here for local-optimizer ablations.
type Momentum struct {
	Mu       float64 // momentum coefficient
	Nesterov bool
	buf      [][]float32
}

// Name implements Optimizer.
func (m *Momentum) Name() string {
	if m.Nesterov {
		return "nesterov"
	}
	return "momentum"
}

// Reset implements Optimizer.
func (m *Momentum) Reset() { m.buf = nil }

// Step applies the momentum update v = μv + g; p -= lr·(g + μv) (Nesterov)
// or p -= lr·v (classic).
func (m *Momentum) Step(params nn.ParamSet, lr float64) {
	if m.buf == nil {
		m.buf = make([][]float32, len(params))
		for i, p := range params {
			m.buf[i] = make([]float32, len(p.Data))
		}
	}
	mu := float32(m.Mu)
	for i, p := range params {
		v := m.buf[i]
		for j, g := range p.Grad {
			v[j] = mu*v[j] + g
			if m.Nesterov {
				p.Data[j] -= float32(lr) * (g + mu*v[j])
			} else {
				p.Data[j] -= float32(lr) * v[j]
			}
		}
	}
}

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// paper's local optimizer with (β1, β2) from Table 4.
type AdamW struct {
	Beta1, Beta2 float64
	Eps          float64 // 0 → 1e-8
	WeightDecay  float64

	step int
	m, v [][]float32
}

// NewAdamW constructs AdamW with the given betas and weight decay.
func NewAdamW(beta1, beta2, weightDecay float64) *AdamW {
	return &AdamW{Beta1: beta1, Beta2: beta2, Eps: 1e-8, WeightDecay: weightDecay}
}

// Name implements Optimizer.
func (a *AdamW) Name() string { return "adamw" }

// Reset implements Optimizer, clearing momenta and the bias-correction step
// counter. Photon resets this each federated round (stateless ClientOpt).
func (a *AdamW) Reset() {
	a.step = 0
	a.m, a.v = nil, nil
}

// Step applies one AdamW update.
func (a *AdamW) Step(params nn.ParamSet, lr float64) {
	if a.m == nil {
		a.m = make([][]float32, len(params))
		a.v = make([][]float32, len(params))
		for i, p := range params {
			a.m[i] = make([]float32, len(p.Data))
			a.v[i] = make([]float32, len(p.Data))
		}
	}
	a.step++
	eps := a.Eps
	if eps == 0 {
		eps = 1e-8
	}
	b1, b2 := a.Beta1, a.Beta2
	c1 := 1 - math.Pow(b1, float64(a.step))
	c2 := 1 - math.Pow(b2, float64(a.step))
	wd := float32(lr * a.WeightDecay)
	for i, p := range params {
		mi, vi := a.m[i], a.v[i]
		for j, g := range p.Grad {
			gf := float64(g)
			mj := b1*float64(mi[j]) + (1-b1)*gf
			vj := b2*float64(vi[j]) + (1-b2)*gf*gf
			mi[j], vi[j] = float32(mj), float32(vj)
			mhat := mj / c1
			vhat := vj / c2
			p.Data[j] -= float32(lr*mhat/(math.Sqrt(vhat)+eps)) + wd*p.Data[j]
		}
	}
}
