// Package opt implements the local (client-side) optimizers and learning-rate
// schedules used by Photon: AdamW with decoupled weight decay (the paper's
// ClientOpt), plain and Nesterov-momentum SGD, and the cosine-with-warmup
// schedule whose decay period follows the Appendix C.1 rule (Eq. 8): the
// period is set for the *hardware* batch size Bc rather than the effective
// federated batch, which is what lets Photon pair small client batches with
// high learning rates.
package opt

import (
	"math"

	"photon/internal/nn"
	"photon/internal/tensor"
)

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update with the given learning rate and then leaves
	// gradients untouched (callers zero them).
	Step(params nn.ParamSet, lr float64)
	// Reset clears all internal state (momenta, step counters). Photon
	// clients call this at every round boundary: the paper uses stateless
	// local optimization so optimizer state never needs to be communicated
	// or persisted across intermittent client availability. State buffers
	// are zeroed in place — capacity is kept so per-round Resets do not
	// reallocate optimizer state.
	Reset()
	// Name identifies the optimizer in metrics and checkpoints.
	Name() string
}

// SGD is plain stochastic gradient descent.
type SGD struct{}

// Name implements Optimizer.
func (SGD) Name() string { return "sgd" }

// Reset implements Optimizer (SGD is stateless).
func (SGD) Reset() {}

// Step applies p -= lr·g.
//
//photon:hotpath
func (SGD) Step(params nn.ParamSet, lr float64) {
	for _, p := range params {
		tensor.Axpy(-float32(lr), p.Grad, p.Data)
	}
}

// ensureState sizes each state buffer to its parameter, reusing capacity and
// zeroing any buffer it (re)creates. It reports buffers ready for use.
//
//photon:allocok
func ensureState(bufs [][]float32, params nn.ParamSet) [][]float32 {
	if len(bufs) != len(params) {
		bufs = make([][]float32, len(params))
	}
	for i, p := range params {
		if len(bufs[i]) != len(p.Data) {
			bufs[i] = make([]float32, len(p.Data))
		}
	}
	return bufs
}

// zeroState clears every buffer in place, keeping capacity.
//
//photon:hotpath
func zeroState(bufs [][]float32) {
	for _, b := range bufs {
		for i := range b {
			b[i] = 0
		}
	}
}

// Momentum is SGD with (optionally Nesterov) momentum, the optimizer DiLoCo
// recommends for its outer loop; provided here for local-optimizer ablations.
type Momentum struct {
	Mu       float64 // momentum coefficient
	Nesterov bool
	buf      [][]float32
}

// Name implements Optimizer.
func (m *Momentum) Name() string {
	if m.Nesterov {
		return "nesterov"
	}
	return "momentum"
}

// Reset implements Optimizer: the velocity buffers are zeroed in place (the
// previous implementation dropped the slices, forcing a full reallocation at
// every round boundary).
//
//photon:hotpath
func (m *Momentum) Reset() { zeroState(m.buf) }

// Step applies the momentum update v = μv + g; p -= lr·(g + μv) (Nesterov)
// or p -= lr·v (classic).
//
//photon:hotpath
func (m *Momentum) Step(params nn.ParamSet, lr float64) {
	m.buf = ensureState(m.buf, params)
	mu := float32(m.Mu)
	for i, p := range params {
		v := m.buf[i]
		for j, g := range p.Grad {
			v[j] = mu*v[j] + g
			if m.Nesterov {
				p.Data[j] -= float32(lr) * (g + mu*v[j])
			} else {
				p.Data[j] -= float32(lr) * v[j]
			}
		}
	}
}

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// paper's local optimizer with (β1, β2) from Table 4.
//
// Step is a single fused pass per parameter: moment update, bias correction,
// weight decay, and parameter update happen in one float32 sweep (the
// per-element float64 round trips of the original implementation cost more
// than the precision is worth), parallelized across the tensor worker pool
// for large tensors.
type AdamW struct {
	Beta1, Beta2 float64
	Eps          float64 // 0 → 1e-8
	WeightDecay  float64

	step int
	m, v [][]float32

	// Per-band state for the persistent parallel closure (one parameter at a
	// time): scalar factors plus the current parameter/state slices.
	curData, curGrad, curM, curV []float32
	b1, ob1, b2, ob2             float32
	invC1, invC2, lrF, wdF, epsF float32
	fn                           func(lo, hi int)
}

// NewAdamW constructs AdamW with the given betas and weight decay.
func NewAdamW(beta1, beta2, weightDecay float64) *AdamW {
	return &AdamW{Beta1: beta1, Beta2: beta2, Eps: 1e-8, WeightDecay: weightDecay}
}

// Name implements Optimizer.
func (a *AdamW) Name() string { return "adamw" }

// Reset implements Optimizer, zeroing momenta in place (keeping capacity —
// Photon resets at every round boundary, and reallocating two model-sized
// vectors per round per client thrashed the GC) and clearing the
// bias-correction step counter.
//
//photon:hotpath
func (a *AdamW) Reset() {
	a.step = 0
	zeroState(a.m)
	zeroState(a.v)
}

// band applies the fused AdamW update to elements [lo, hi) of the current
// parameter. It is the persistent body dispatched across the worker pool.
//
//photon:hotpath
func (a *AdamW) band(lo, hi int) {
	data, grad, mBuf, vBuf := a.curData, a.curGrad, a.curM, a.curV
	b1, ob1, b2, ob2 := a.b1, a.ob1, a.b2, a.ob2
	invC1, invC2, lr, wd, eps := a.invC1, a.invC2, a.lrF, a.wdF, a.epsF
	for j := lo; j < hi; j++ {
		g := grad[j]
		mj := b1*mBuf[j] + ob1*g
		vj := b2*vBuf[j] + ob2*g*g
		mBuf[j], vBuf[j] = mj, vj
		mhat := mj * invC1
		vhat := vj * invC2
		data[j] -= lr*mhat/(float32(math.Sqrt(float64(vhat)))+eps) + wd*data[j]
	}
}

// Step applies one fused AdamW update.
//
//photon:hotpath
func (a *AdamW) Step(params nn.ParamSet, lr float64) {
	a.m = ensureState(a.m, params)
	a.v = ensureState(a.v, params)
	a.ensureFn()
	a.step++
	eps := a.Eps
	if eps == 0 {
		eps = 1e-8
	}
	b1, b2 := a.Beta1, a.Beta2
	a.b1, a.ob1 = float32(b1), float32(1-b1)
	a.b2, a.ob2 = float32(b2), float32(1-b2)
	a.invC1 = float32(1 / (1 - math.Pow(b1, float64(a.step))))
	a.invC2 = float32(1 / (1 - math.Pow(b2, float64(a.step))))
	a.lrF = float32(lr)
	a.wdF = float32(lr * a.WeightDecay)
	a.epsF = float32(eps)
	for i, p := range params {
		a.curData, a.curGrad, a.curM, a.curV = p.Data, p.Grad, a.m[i], a.v[i]
		// ~16 flop-equivalents per element (the sqrt dominates).
		tensor.Parallel(len(p.Data), 16, a.fn)
	}
	a.curData, a.curGrad, a.curM, a.curV = nil, nil, nil, nil
}

// ensureFn binds the persistent band closure on first use; the method-value
// allocation happens once, off the steady-state step path.
//
//photon:allocok
func (a *AdamW) ensureFn() {
	if a.fn == nil {
		a.fn = a.band
	}
}
