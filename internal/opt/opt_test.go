package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"photon/internal/nn"
)

// quadParams builds a one-parameter "model" for optimizer convergence tests:
// minimizing f(x) = ½Σ(x_i − target)² whose gradient is (x_i − target).
func quadParams(n int, init float32) nn.ParamSet {
	p := &nn.Param{Name: "x", Data: make([]float32, n), Grad: make([]float32, n)}
	for i := range p.Data {
		p.Data[i] = init
	}
	return nn.ParamSet{p}
}

func quadGrad(ps nn.ParamSet, target float32) float64 {
	p := ps[0]
	var loss float64
	for i, x := range p.Data {
		d := x - target
		p.Grad[i] = d
		loss += 0.5 * float64(d) * float64(d)
	}
	return loss
}

func converges(t *testing.T, o Optimizer, lr float64, steps int) {
	t.Helper()
	ps := quadParams(4, 10)
	initial := quadGrad(ps, 2)
	for i := 0; i < steps; i++ {
		quadGrad(ps, 2)
		o.Step(ps, lr)
	}
	final := quadGrad(ps, 2)
	if final > initial*1e-3 {
		t.Fatalf("%s did not converge: %.4g -> %.4g", o.Name(), initial, final)
	}
}

func TestSGDConverges(t *testing.T)      { converges(t, SGD{}, 0.5, 100) }
func TestMomentumConverges(t *testing.T) { converges(t, &Momentum{Mu: 0.9}, 0.05, 300) }
func TestNesterovConverges(t *testing.T) {
	converges(t, &Momentum{Mu: 0.9, Nesterov: true}, 0.05, 300)
}
func TestAdamWConverges(t *testing.T) { converges(t, NewAdamW(0.9, 0.95, 0), 0.5, 300) }

func TestAdamWFirstStepIsSignSGD(t *testing.T) {
	// With bias correction, the first AdamW step is ≈ lr·sign(g).
	a := NewAdamW(0.9, 0.95, 0)
	ps := quadParams(1, 5)
	quadGrad(ps, 0) // grad = 5
	before := ps[0].Data[0]
	a.Step(ps, 0.1)
	got := float64(before - ps[0].Data[0])
	if math.Abs(got-0.1) > 1e-3 {
		t.Fatalf("first AdamW step: got %v want ~0.1", got)
	}
}

func TestAdamWWeightDecayPullsTowardZero(t *testing.T) {
	a := NewAdamW(0.9, 0.95, 0.1)
	ps := quadParams(1, 1)
	// Zero gradient: only decay acts.
	ps[0].Grad[0] = 0
	for i := 0; i < 10; i++ {
		a.Step(ps, 1.0)
	}
	if v := ps[0].Data[0]; v >= 1 || v <= 0 {
		t.Fatalf("weight decay should shrink param toward 0, got %v", v)
	}
}

func TestResetClearsState(t *testing.T) {
	for _, o := range []Optimizer{&Momentum{Mu: 0.9}, NewAdamW(0.9, 0.95, 0)} {
		ps := quadParams(2, 3)
		quadGrad(ps, 0)
		o.Step(ps, 0.1)
		o.Reset()
		// After reset, a step on a fresh equivalent problem must match a
		// fresh optimizer bit-for-bit (stateless-per-round requirement).
		ps2 := quadParams(2, 3)
		// Align data so both optimizers see identical inputs, then compute
		// gradients at the aligned point.
		copy(ps[0].Data, ps2[0].Data)
		quadGrad(ps, 0)
		quadGrad(ps2, 0)
		var fresh Optimizer
		switch o.(type) {
		case *Momentum:
			fresh = &Momentum{Mu: 0.9}
		default:
			fresh = NewAdamW(0.9, 0.95, 0)
		}
		o.Step(ps, 0.1)
		fresh.Step(ps2, 0.1)
		if ps[0].Data[0] != ps2[0].Data[0] {
			t.Fatalf("%s: reset state differs from fresh optimizer", o.Name())
		}
	}
}

func TestMomentumVsSGDDiffer(t *testing.T) {
	ps1 := quadParams(1, 5)
	ps2 := quadParams(1, 5)
	sgd, mom := SGD{}, &Momentum{Mu: 0.9}
	for i := 0; i < 3; i++ {
		quadGrad(ps1, 0)
		quadGrad(ps2, 0)
		sgd.Step(ps1, 0.1)
		mom.Step(ps2, 0.1)
	}
	if ps1[0].Data[0] == ps2[0].Data[0] {
		t.Fatal("momentum trajectory should differ from SGD after multiple steps")
	}
}

func TestCosineScheduleShape(t *testing.T) {
	c := Cosine{Max: 1.0, Min: 0.1, Warmup: 10, Period: 110}
	if lr := c.LR(0); lr <= 0 || lr > 0.2 {
		t.Fatalf("warmup start too high: %v", lr)
	}
	if lr := c.LR(9); math.Abs(lr-1.0) > 1e-9 {
		t.Fatalf("end of warmup should reach Max: %v", lr)
	}
	if lr := c.LR(10); math.Abs(lr-1.0) > 1e-9 {
		t.Fatalf("decay should start at Max: %v", lr)
	}
	mid := c.LR(60)
	if math.Abs(mid-0.55) > 1e-9 { // halfway through decay: (Max+Min)/2
		t.Fatalf("midpoint: got %v want 0.55", mid)
	}
	if lr := c.LR(1000); lr != 0.1 {
		t.Fatalf("post-period should hold Min: %v", lr)
	}
	// Monotone non-increasing after warmup.
	prev := c.LR(10)
	for s := 11; s <= 110; s++ {
		cur := c.LR(s)
		if cur > prev+1e-12 {
			t.Fatalf("cosine decay not monotone at step %d", s)
		}
		prev = cur
	}
}

func TestPaperCosine(t *testing.T) {
	c := PaperCosine(6e-4, 40960)
	if math.Abs(c.Min-6e-5) > 1e-15 {
		t.Fatalf("min should be max/10: %v", c.Min)
	}
	if c.Warmup != 409 {
		t.Fatalf("warmup should be 1%% of period: %d", c.Warmup)
	}
	if c2 := PaperCosine(1e-3, 5); c2.Warmup != 1 {
		t.Fatalf("warmup floor of 1: %d", c2.Warmup)
	}
}

func TestChinchillaPeriodSteps(t *testing.T) {
	// 125M params, Bl=32, seq 2048: 20·125e6/(32·2048) ≈ 38147.
	got := ChinchillaPeriodSteps(125_000_000, 32, 2048)
	if got < 35000 || got > 42000 {
		t.Fatalf("period: got %d want ≈38k", got)
	}
	if ChinchillaPeriodSteps(100, 0, 10) != 1 {
		t.Fatal("degenerate batch size should floor to 1")
	}
	if ChinchillaPeriodSteps(1, 1024, 1024) != 1 {
		t.Fatal("tiny model should floor to 1 step")
	}
}

func TestLinearLRScale(t *testing.T) {
	if got := LinearLRScale(6e-4, 256, 32); math.Abs(got-7.5e-5) > 1e-12 {
		t.Fatalf("linear scale: got %v", got)
	}
	if got := LinearLRScale(1, 0, 5); got != 1 {
		t.Fatalf("degenerate ref batch: got %v", got)
	}
}

// Property: cosine LR is always within [Min, Max] for any step.
func TestCosineBoundsProperty(t *testing.T) {
	c := Cosine{Max: 2.0, Min: 0.2, Warmup: 7, Period: 300}
	f := func(step int) bool {
		if step < 0 {
			step = -step
		}
		lr := c.LR(step % 10000)
		return lr >= c.Min-1e-12 && lr <= c.Max+1e-12 && lr > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AdamW with zero weight decay is scale-free in the gradient —
// scaling all gradients by a positive constant leaves the update direction
// and (approximately) magnitude unchanged.
func TestAdamWGradientScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := float32(r.NormFloat64())
		if g == 0 {
			return true
		}
		scale := float32(1 + r.Float64()*100)

		run := func(gr float32) float32 {
			a := NewAdamW(0.9, 0.95, 0)
			ps := quadParams(1, 0)
			for i := 0; i < 5; i++ {
				ps[0].Grad[0] = gr
				a.Step(ps, 0.01)
			}
			return ps[0].Data[0]
		}
		x1, x2 := run(g), run(g*scale)
		return math.Abs(float64(x1-x2)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
