package opt

import "math"

// Schedule maps a global optimization step (0-based) to a learning rate.
type Schedule interface {
	LR(step int) float64
}

// Constant is a flat learning-rate schedule.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// Cosine is linear warmup followed by cosine decay from Max to Min over
// Period steps (warmup included in the period). After the period ends the
// rate stays at Min — the "extended decay" regime the paper uses when
// stretching centralized schedules to federated small-batch training.
type Cosine struct {
	Max, Min float64
	Warmup   int
	Period   int
}

// LR implements Schedule.
func (c Cosine) LR(step int) float64 {
	if c.Warmup > 0 && step < c.Warmup {
		return c.Max * float64(step+1) / float64(c.Warmup)
	}
	if c.Period <= c.Warmup || step >= c.Period {
		return c.Min
	}
	progress := float64(step-c.Warmup) / float64(c.Period-c.Warmup)
	return c.Min + 0.5*(c.Max-c.Min)*(1+math.Cos(math.Pi*progress))
}

// PaperCosine builds the paper's schedule (Table 5): minimum rate α·max with
// α = 0.1, and a warmup of 1% of the period (at least one step).
func PaperCosine(maxLR float64, period int) Cosine {
	w := period / 100
	if w < 1 {
		w = 1
	}
	return Cosine{Max: maxLR, Min: 0.1 * maxLR, Warmup: w, Period: period}
}

// ChinchillaPeriodSteps computes the cosine decay period from the Appendix
// C.1 rule derived from Eq. 8: train on ≈20 tokens per parameter, so the
// number of optimization steps is 20·|θ| / (B·seqLen) for batch size B.
// Photon substitutes the client hardware batch size Bc for the effective
// batch — extending the decay period by Beff/Bc relative to centralized —
// which is what makes high learning rates stable with small batches.
func ChinchillaPeriodSteps(paramCount int64, batchSize, seqLen int) int {
	if batchSize <= 0 || seqLen <= 0 {
		return 1
	}
	steps := 20 * float64(paramCount) / float64(batchSize*seqLen)
	if steps < 1 {
		return 1
	}
	return int(steps)
}

// LinearLRScale returns the learning rate a *centralized* run must use for a
// small batch Bsmall given a reference (lrRef, bRef) pair, per the linear
// scaling rule. The paper's Appendix C.1 observation is that centralized
// small-batch training diverges at the un-scaled rate; the recipe ablation
// bench uses this to reproduce that contrast.
func LinearLRScale(lrRef float64, bRef, bSmall int) float64 {
	if bRef <= 0 {
		return lrRef
	}
	return lrRef * float64(bSmall) / float64(bRef)
}
