package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedBlocking enforces the never-block-while-holding-a-lock rule learned
// from the MsgObserve publish path (PR 7): between a sync.Mutex/RWMutex
// Lock() and its Unlock() in the same function — including the remainder of
// the function when the Unlock is deferred — there may be no channel send,
// no link.Conn I/O, and no time.Sleep. The correct shape is copy-under-lock,
// then send outside (see server.publishRound). Nonblocking sends inside a
// select with a default clause are allowed.
var LockedBlocking = &Analyzer{
	Name: "locked-blocking",
	Doc:  "no channel send, link I/O, or time.Sleep while holding a mutex",
	Run:  runLockedBlocking,
}

var mutexLockOps = map[string]string{
	"(*sync.Mutex).Lock":    "Lock",
	"(*sync.Mutex).TryLock": "Lock",
	"(*sync.RWMutex).Lock":  "Lock",
	"(*sync.RWMutex).RLock": "RLock",
}

var mutexUnlockOps = map[string]string{
	"(*sync.Mutex).Unlock":    "Unlock",
	"(*sync.RWMutex).Unlock":  "Unlock",
	"(*sync.RWMutex).RUnlock": "RUnlock",
}

func runLockedBlocking(pass *Pass) {
	c := &lockChecker{pass: pass, info: pass.Pkg.Info, linkPath: pass.Prog.ModPath + "/internal/link"}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.scanStmts(fd.Body.List, map[string]bool{})
			}
		}
	}
}

type lockChecker struct {
	pass     *Pass
	info     *types.Info
	linkPath string
}

// mutexOp classifies stmt as a lock or unlock call, returning the rendered
// receiver expression ("s.mu") it operates on.
func (c *lockChecker) mutexOp(call *ast.CallExpr) (recv string, lock, unlock bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, _ := c.info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false, false
	}
	name := fn.FullName()
	if _, ok := mutexLockOps[name]; ok {
		return exprString(sel.X), true, false
	}
	if _, ok := mutexUnlockOps[name]; ok {
		return exprString(sel.X), false, true
	}
	return "", false, false
}

// scanStmts walks a statement sequence tracking which mutexes are held.
// Nested blocks get a copy of the held set, so a branch-local lock never
// leaks into the outer sequence (conservative: an unlock inside a branch
// does not release the outer tracking either — the repo convention is
// lock/unlock in the same block or a deferred unlock, both of which this
// models exactly).
func (c *lockChecker) scanStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, lock, unlock := c.mutexOp(call); lock {
					held[recv] = true
					continue
				} else if unlock {
					delete(held, recv)
					continue
				}
			}
			c.checkBlocking(x, held)
		case *ast.DeferStmt:
			// defer mu.Unlock(): the critical section extends to the end of
			// the function; keep the mutex marked held.
			if recv, _, unlock := c.mutexOp(x.Call); unlock {
				_ = recv
				continue
			}
			c.checkBlocking(x, held)
		case *ast.BlockStmt:
			c.scanStmts(x.List, copyHeld(held))
		case *ast.IfStmt:
			c.scanIf(x, held)
		case *ast.ForStmt:
			if x.Init != nil {
				c.checkBlocking(x.Init, held)
			}
			c.scanStmts(x.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			c.scanStmts(x.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					c.scanStmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					c.scanStmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			c.scanSelect(x, held)
		case *ast.LabeledStmt:
			c.scanStmts([]ast.Stmt{x.Stmt}, held)
		default:
			c.checkBlocking(s, held)
		}
	}
}

func (c *lockChecker) scanIf(x *ast.IfStmt, held map[string]bool) {
	if x.Init != nil {
		c.checkBlocking(x.Init, held)
	}
	c.scanStmts(x.Body.List, copyHeld(held))
	switch e := x.Else.(type) {
	case *ast.BlockStmt:
		c.scanStmts(e.List, copyHeld(held))
	case *ast.IfStmt:
		c.scanIf(e, copyHeld(held))
	}
}

// scanSelect: comm operations in a select with a default clause are
// nonblocking by construction; without one they block like bare sends.
func (c *lockChecker) scanSelect(x *ast.SelectStmt, held map[string]bool) {
	hasDefault := false
	for _, clause := range x.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, clause := range x.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil && !hasDefault {
			c.checkBlocking(cc.Comm, held)
		}
		c.scanStmts(cc.Body, copyHeld(held))
	}
}

// checkBlocking flags blocking operations inside one simple statement's
// subtree while any mutex is held. Function literals are skipped: they run
// on their own goroutine's schedule, not inside this critical section.
func (c *lockChecker) checkBlocking(s ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.pass.Report(x.Pos(), "channel send while holding %s", heldNames(held))
		case *ast.CallExpr:
			if fn, _ := calleeObject(c.info, x.Fun).(*types.Func); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					c.pass.Report(x.Pos(), "time.Sleep while holding %s", heldNames(held))
				case fn.Pkg().Path() == c.linkPath && isLinkBlocking(fn):
					c.pass.Report(x.Pos(), "link I/O %s while holding %s", fn.Name(), heldNames(held))
				}
			}
		}
		return true
	})
}

// isLinkBlocking reports whether fn is one of internal/link's blocking wire
// operations: Conn I/O, listener accepts, and dials.
func isLinkBlocking(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		switch fn.Name() {
		case "Send", "SendTimeout", "Recv", "RecvTimeout", "Accept", "AcceptContext":
			return true
		}
		return false
	}
	return strings.HasPrefix(fn.Name(), "Dial")
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
