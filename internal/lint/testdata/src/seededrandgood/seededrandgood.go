// Package seededrandgood is a golden fixture: the seeded-rand analyzer must
// report nothing here — every random draw goes through an injected,
// deterministically seeded *rand.Rand.
package seededrandgood

import "math/rand"

func fromConfig(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func injected(rng *rand.Rand) int {
	return rng.Intn(10)
}

func derived(rng *rand.Rand, s []int) {
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
