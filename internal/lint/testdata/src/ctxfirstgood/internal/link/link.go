// Package link is a golden fixture: ctx-first must report nothing here.
// It exercises the three sanctioned shapes for blocking wire-facing APIs:
// context first, a <Name>Context sibling (the net.Listener idiom), and
// unexported helpers (the rule only binds exported names).
package link

import "context"

func Run(ctx context.Context, rounds int) error {
	return ctx.Err()
}

// Dial is legitimized by its DialContext sibling.
func Dial(addr string) error {
	return DialContext(context.Background(), addr)
}

func DialContext(ctx context.Context, addr string) error {
	_ = addr
	return ctx.Err()
}

type Listener struct{}

// Accept pairs with AcceptContext, method-sibling form.
func (l *Listener) Accept() error {
	return l.AcceptContext(context.Background())
}

func (l *Listener) AcceptContext(ctx context.Context) error {
	return ctx.Err()
}

func runInternal(n int) { // unexported: not subject to the blocking-name rule
	_ = n
}
