// Package lockedbad is a golden fixture: every marked line must be flagged
// by the locked-blocking analyzer. It imports the real link package so the
// link-I/O-under-lock rule is exercised against the production Conn type.
package lockedbad

import (
	"sync"
	"time"

	"photon/internal/link"
)

type box struct {
	mu sync.Mutex
	ch chan int
	v  int
}

func sendWhileLocked(b *box) {
	b.mu.Lock()
	b.ch <- b.v // want "channel send while holding b.mu"
	b.mu.Unlock()
}

func sleepWhileLocked(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding b.mu"
	b.mu.Unlock()
}

// deferredUnlock holds the lock to the end of the function, so the send is
// inside the critical section even though no explicit Unlock follows it.
func deferredUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- b.v // want "channel send while holding b.mu"
}

func linkIOWhileLocked(b *box, c *link.Conn, m *link.Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return c.Send(m) // want "link I/O Send while holding b.mu"
}

func nestedBlockStillHeld(b *box, cond bool) {
	b.mu.Lock()
	if cond {
		b.ch <- 1 // want "channel send while holding b.mu"
	}
	b.mu.Unlock()
}

type embedded struct {
	sync.Mutex
	ch chan int
}

// promotedMutex locks through the embedded promotion; the critical section
// must still be recognized.
func promotedMutex(e *embedded) {
	e.Lock()
	e.ch <- 1 // want "channel send while holding"
	e.Unlock()
}
