// Package wallclockgood is a golden fixture: a virtual-clock package that
// threads simulated time explicitly. Duration arithmetic and time.Time
// values received as inputs are fine — only reading the wall clock is not.
//
//photon:virtualclock
package wallclockgood

import "time"

type clock struct{ now time.Time }

func (c *clock) advance(d time.Duration) {
	c.now = c.now.Add(d)
}

func elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}

func deadlineFrom(now time.Time, budget time.Duration) time.Time {
	return now.Add(budget)
}
