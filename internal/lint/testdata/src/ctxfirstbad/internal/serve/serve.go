// Package serve is a golden fixture for ctx-first's wire-facing rule: the
// import path ends in internal/serve, so exported blocking-named APIs must
// take a context.Context first (or have a Context sibling).
package serve

func RunLoop(n int) { // want "exported blocking API RunLoop must take context.Context"
	_ = n
}

func WaitReady(timeoutMs int) { // want "exported blocking API WaitReady must take context.Context"
	_ = timeoutMs
}

type Listener struct{}

func (l *Listener) Accept() error { // want "exported blocking API Accept must take context.Context"
	return nil
}
