// Package ctxfirstbad is a golden fixture for ctx-first's module-wide rule:
// a context.Context parameter anywhere in the module must come first.
package ctxfirstbad

import "context"

func process(n int, ctx context.Context) error { // want "takes context.Context as parameter 2"
	return ctx.Err()
}

type worker struct{}

func (w *worker) drain(name string, ctx context.Context, max int) { // want "takes context.Context as parameter 2"
	_ = ctx
}
