// Package hotpathgood is a golden fixture: the hotpath-alloc analyzer must
// report nothing here. It exercises the idioms hotpath code is allowed to
// use — the allocok escape hatch, the non-allocating stdlib whitelist,
// method calls (as opposed to method values), panic arguments, and
// documented //photon:nolint suppressions.
package hotpathgood

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// grow is the sanctioned amortized-allocation boundary: hotpath callers may
// invoke it even though it allocates.
//
//photon:allocok
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/2)
	}
	return buf[:n]
}

//photon:hotpath
func usesEscapeHatch(buf []float64, n int) []float64 {
	buf = grow(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

//photon:hotpath
func callsWhitelistedStdlib(x float64, n uint) float64 {
	return math.Sqrt(x) * float64(bits.OnesCount(n))
}

type counter struct {
	mu sync.Mutex
	v  atomic.Int64
}

//photon:hotpath
func (c *counter) bump() int64 {
	c.mu.Lock()
	n := c.v.Add(1)
	c.mu.Unlock()
	return n
}

type widget struct{ n int }

//photon:hotpath
func (w *widget) step() { w.n++ }

// methodCall invokes step as a call — unlike a method *value*, this binds
// nothing and is allocation-free.
//
//photon:hotpath
func methodCall(w *widget) {
	w.step()
}

//photon:hotpath
func timesThings(start time.Time) int64 {
	return time.Since(start).Nanoseconds()
}

//photon:hotpath
func injectedRand(rng *rand.Rand) float64 {
	return rng.Float64()
}

//photon:hotpath
func panicsOnBadInput(n int) int {
	if n < 0 {
		panic("hotpathgood: negative n") // failure path: panic args are exempt
	}
	return n * 2
}

//photon:hotpath
func suppressed(s []int, v int) []int {
	return append(s, v) //photon:nolint hotpath-alloc -- fixture: documented amortized growth
}

//photon:hotpath
func hotCallsHot(w *widget) {
	methodCall(w)
}

// foldWeighted mirrors the async aggregation buffer fold (buf += w*u over
// preallocated slices): a pure range loop with a multiply-add is the shape
// hotpath bodies should take, and it must stay report-free.
//
//photon:hotpath
func foldWeighted(buf, u []float32, w float32) {
	for i := range u {
		buf[i] += w * u[i]
	}
}
