// Package hotpathbad is a golden fixture: every line carrying a want marker
// must be flagged by the hotpath-alloc analyzer, whose message must contain
// the marker's quoted substring.
package hotpathbad

import "fmt"

//photon:hotpath
func makesSlice(n int) []int {
	return make([]int, n) // want "make in hotpath function makesSlice allocates"
}

//photon:hotpath
func appends(s []int, v int) []int {
	return append(s, v) // want "append in hotpath function appends allocates"
}

//photon:hotpath
func news() *int {
	return new(int) // want "new in hotpath function news allocates"
}

//photon:hotpath
func closes() func() int {
	x := 1
	return func() int { return x } // want "closure literal in hotpath function closes"
}

//photon:hotpath
func spawns(ch chan int) {
	go func() { ch <- 1 }() // want "go statement in hotpath function spawns"
}

//photon:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "slice literal in hotpath function sliceLit allocates"
}

//photon:hotpath
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal in hotpath function mapLit allocates"
}

type point struct{ x, y int }

//photon:hotpath
func escapes() *point {
	return &point{1, 2} // want "&composite literal in hotpath function escapes escapes to the heap"
}

//photon:hotpath
func concats(a, b string) string {
	return a + b // want "string concatenation in hotpath function concats allocates"
}

//photon:hotpath
func boxes(n int) interface{} {
	return n // want "boxes int into interface"
}

//photon:hotpath
func converts(b []byte) string {
	return string(b) // want "conversion in hotpath function converts copies and allocates"
}

//photon:hotpath
func inserts(m map[string]int) {
	m["k"] = 1 // want "map insert in hotpath function inserts may allocate"
}

//photon:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want "calls fmt.Sprintf outside the non-allocating stdlib whitelist"
}

// unannotated is a plain module function: calling it from a hotpath is an
// unverified edge in the call graph.
func unannotated() {}

//photon:hotpath
func callsUnannotated() {
	unannotated() // want "neither //photon:hotpath nor //photon:allocok"
}

//photon:hotpath
func dynamic(f func() int) int {
	return f() // want "dynamic call through function value f"
}

type doer interface{ Do() }

//photon:hotpath
func viaInterface(d doer) {
	d.Do() // want "call through interface method Do"
}

type thing struct{}

func (thing) work() {}

//photon:hotpath
func methodValue(t thing) func() {
	return t.work // want "method value t.work in hotpath function methodValue"
}

//photon:hotpath
func variadicCall(vals ...int) int {
	s := 0
	for _, v := range vals {
		s += v
	}
	return s
}

//photon:hotpath
func spreadsVariadic() int {
	return variadicCall(1, 2, 3) // want "variadic call in hotpath function spreadsVariadic allocates the argument slice"
}
