// Package wallclockbad is a golden fixture for the no-wallclock analyzer:
// the package opts into the virtual-clock discipline via the annotation
// below, so every wall-clock read must be flagged.
//
//photon:virtualclock
package wallclockbad

import "time"

func reads() time.Time {
	return time.Now() // want "time.Now in virtual-clock package wallclockbad"
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in virtual-clock package wallclockbad"
}

func sleeps() {
	time.Sleep(time.Second) // want "time.Sleep in virtual-clock package wallclockbad"
}

func ticks() <-chan time.Time {
	return time.After(time.Second) // want "time.After in virtual-clock package wallclockbad"
}
