// Package seededrandbad is a golden fixture: every marked line must be
// flagged by the seeded-rand analyzer.
package seededrandbad

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want "draws from the global rand source"
}

func globalFloat() float64 {
	return rand.Float64() // want "draws from the global rand source"
}

func globalShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want "draws from the global rand source"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}
