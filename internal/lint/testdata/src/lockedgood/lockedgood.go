// Package lockedgood is a golden fixture: the locked-blocking analyzer must
// report nothing here. It exercises the repo's copy-under-lock idiom, sends
// after an explicit Unlock, and the select-with-default non-blocking send.
package lockedgood

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
	v  int
}

// copyUnderLockSendOutside is the observer-notification idiom: snapshot the
// shared state inside the critical section, deliver outside it.
func copyUnderLockSendOutside(b *box) {
	b.mu.Lock()
	v := b.v
	b.mu.Unlock()
	b.ch <- v
}

// nonBlockingSend uses select-with-default, which cannot block: dropping on a
// full channel is the sanctioned telemetry pattern.
func nonBlockingSend(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- b.v:
	default:
	}
}

// sleepAfterUnlock blocks only once the critical section has ended.
func sleepAfterUnlock(b *box) {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// relockBetween exercises held-set tracking across multiple critical
// sections in one function.
func relockBetween(b *box) {
	b.mu.Lock()
	v := b.v
	b.mu.Unlock()
	b.ch <- v
	b.mu.Lock()
	b.v = v + 1
	b.mu.Unlock()
}
