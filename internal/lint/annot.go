package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The //photon: annotation grammar. Directives are comments with no space
// after the slashes, like //go: directives, so gofmt preserves them:
//
//	//photon:hotpath        (FuncDecl doc) body must be allocation-free; may
//	                        only call hotpath/allocok/whitelisted functions.
//	//photon:allocok        (FuncDecl doc) callable from hotpath code even
//	                        though it may allocate (amortized cold path).
//	//photon:virtualclock   (package doc)  package opts into no-wallclock.
//	//photon:nolint a,b     (line comment) suppress findings from analyzers
//	                        a,b on this line (trailing) or the next line
//	                        (standalone); bare //photon:nolint suppresses all.
//
// A directive's optional trailing " -- reason" text is ignored by the parser
// but encouraged for reviewers.

const directivePrefix = "//photon:"

// parseDirective splits one comment into a directive verb and its argument,
// returning ok=false for ordinary comments.
func parseDirective(text string) (verb, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	verb, arg, _ = strings.Cut(rest, " ")
	arg, _, _ = strings.Cut(arg, "--")
	return verb, strings.TrimSpace(arg), true
}

// indexAnnotations scans pkg's files for //photon: directives, filling the
// package annotation tables consulted by the analyzers.
func (p *Program) indexAnnotations(pkg *Package) {
	pkg.funcAnnot = make(map[*types.Func]FuncAnnot)
	pkg.nolint = make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if verb, _, ok := parseDirective(c.Text); ok && verb == "virtualclock" {
					pkg.virtualClock = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var ann FuncAnnot
			for _, c := range fd.Doc.List {
				switch verb, _, ok := parseDirective(c.Text); {
				case !ok:
				case verb == "hotpath":
					ann |= AnnotHotpath
				case verb == "allocok":
					ann |= AnnotAllocOk
				}
			}
			if ann != 0 {
				if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
					pkg.funcAnnot[obj] = ann
				}
			}
		}
		// Line-level suppressions. A trailing //photon:nolint applies to its
		// own line; a standalone one applies to the line below it.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, arg, ok := parseDirective(c.Text)
				if !ok || verb != "nolint" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := pkg.nolint[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					pkg.nolint[pos.Filename] = lines
				}
				names := []string{""} // bare nolint: suppress everything
				if arg != "" {
					names = strings.Split(arg, ",")
					for i := range names {
						names[i] = strings.TrimSpace(names[i])
					}
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
}

// suppressed reports whether analyzer findings at file:line are muted by a
// //photon:nolint directive.
func (pkg *Package) suppressed(analyzer, file string, line int) bool {
	for _, name := range pkg.nolint[file][line] {
		if name == "" || name == analyzer {
			return true
		}
	}
	return false
}
