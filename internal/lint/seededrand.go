package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the injected-*rand.Rand discipline adopted after the
// shard-seed collision family (PR 5): randomness must flow from an
// explicitly seeded source threaded through configuration, never from the
// global math/rand state (irreproducible across runs, racy across
// goroutines) or from a wall-clock-seeded source (irreproducible by
// construction).
var SeededRand = &Analyzer{
	Name: "seeded-rand",
	Doc:  "no global math/rand top-level functions, no time-seeded sources — injected *rand.Rand only",
	Run:  runSeededRand,
}

// globalRandFuncs are the math/rand (and v2) package-level functions that
// consume the shared global source. Constructors (New, NewSource, NewPCG,
// NewChaCha8, NewZipf) are exactly the sanctioned path and stay legal —
// unless seeded from the wall clock, which is flagged separately.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint": true,
	"Uint32N": true, "Uint64N": true,
}

// randSourceCtors are constructors whose seed argument must not come from
// the wall clock.
var randSourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runSeededRand(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := calleeObject(info, call.Fun).(*types.Func)
			if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				return true // methods on an injected source/Rand are the point
			}
			switch {
			case globalRandFuncs[fn.Name()]:
				pass.Report(call.Pos(), "%s.%s draws from the global rand source; inject a seeded *rand.Rand instead", fn.Pkg().Path(), fn.Name())
			case randSourceCtors[fn.Name()] && containsWallClock(info, call):
				pass.Report(call.Pos(), "%s.%s seeded from the wall clock is irreproducible; derive the seed from configuration", fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
}

// containsWallClock reports whether any argument subtree calls time.Now.
func containsWallClock(info *types.Info, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, _ := calleeObject(info, inner.Fun).(*types.Func); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
