package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one analyzer diagnostic, positioned in the source tree.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a single package with whole-program
// context available through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass is one (analyzer, package) execution. Report emits a finding unless a
// //photon:nolint directive on the offending line mutes it.
type Pass struct {
	Prog *Program
	Pkg  *Package

	analyzer *Analyzer
	findings *[]Finding
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.Pkg.suppressed(p.analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		HotpathAlloc,
		SeededRand,
		LockedBlocking,
		NoWallclock,
		CtxFirst,
	}
}

// RunPackage executes the given analyzers over one package and returns the
// findings sorted by position.
func (p *Program) RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{Prog: p, Pkg: pkg, analyzer: a, findings: &findings}
		a.Run(pass)
	}
	sortFindings(findings)
	return findings
}

// Run executes the analyzers over every loaded package.
func (p *Program) Run(analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range p.SortedPackages() {
		findings = append(findings, p.RunPackage(pkg, analyzers)...)
	}
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
