package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc enforces the zero-allocation contract established by PR 4's
// training step and PR 6's steady-state decode: a function annotated
// //photon:hotpath may not contain allocating constructs — make/new/append,
// heap-escaping or slice/map composite literals, closures, method values,
// interface boxing, string building, goroutine launches, defers in loops,
// map inserts — and may only call functions that are themselves
// //photon:hotpath, //photon:allocok, or on the small non-allocating stdlib
// whitelist (math, math/bits, sync/atomic, mutex ops, monotonic clock
// reads). Because every hotpath body is checked and every callee must carry
// an annotation, the guarantee composes transitively through the
// intra-module call graph — unlike testing.AllocsPerRun, which only samples
// the call sites a test happens to drive.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "//photon:hotpath functions must not allocate and may only call hotpath//photon:allocok functions",
	Run:  runHotpathAlloc,
}

// allowedStdPkgs are stdlib packages whose exported functions are known not
// to allocate: pure math and atomics.
var allowedStdPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allowedStdFuncs are individually vetted non-allocating stdlib functions
// and methods (by types.Func.FullName) that hotpath code legitimately needs:
// mutex ops around ring buffers and free lists, monotonic clock reads for
// span instrumentation, and the GOMAXPROCS probe gating parallel dispatch.
var allowedStdFuncs = map[string]bool{
	"(*sync.Mutex).Lock":           true,
	"(*sync.Mutex).Unlock":         true,
	"(*sync.Mutex).TryLock":        true,
	"(*sync.RWMutex).Lock":         true,
	"(*sync.RWMutex).Unlock":       true,
	"(*sync.RWMutex).RLock":        true,
	"(*sync.RWMutex).RUnlock":      true,
	"time.Now":                     true,
	"time.Since":                   true,
	"(time.Time).Sub":              true,
	"(time.Time).UnixNano":         true,
	"(time.Time).IsZero":           true,
	"(time.Time).After":            true,
	"(time.Time).Before":           true,
	"(time.Duration).Nanoseconds":  true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Seconds":      true,
	"runtime.GOMAXPROCS":           true,
	// encoding/binary's fixed-endian accessors write into caller-provided
	// buffers; the ByteOrder values are package singletons, so calls through
	// them never allocate.
	"(encoding/binary.littleEndian).Uint32":    true,
	"(encoding/binary.littleEndian).PutUint32": true,
	"(encoding/binary.littleEndian).Uint64":    true,
	"(encoding/binary.littleEndian).PutUint64": true,
	"(encoding/binary.bigEndian).Uint32":       true,
	"(encoding/binary.bigEndian).PutUint32":    true,
	"(encoding/binary.bigEndian).Uint64":       true,
	"(encoding/binary.bigEndian).PutUint64":    true,
}

func runHotpathAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil || pass.Prog.FuncAnnot(obj)&AnnotHotpath == 0 {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
}

type hotpathChecker struct {
	pass    *Pass
	info    *types.Info
	decl    *ast.FuncDecl
	called  map[ast.Expr]bool // CallExpr.Fun nodes: selectors here are calls, not method values
	loops   []posRange        // for/range body extents, for defer-in-loop detection
	addrOfs map[ast.Expr]bool // operands of unary & (heap-escape candidates)
}

type posRange struct{ lo, hi token.Pos }

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	c := &hotpathChecker{
		pass:    pass,
		info:    pass.Pkg.Info,
		decl:    fd,
		called:  make(map[ast.Expr]bool),
		addrOfs: make(map[ast.Expr]bool),
	}
	// Pre-pass: call positions, loop extents, address-taken operands.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			c.called[unparen(x.Fun)] = true
		case *ast.ForStmt:
			c.loops = append(c.loops, posRange{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			c.loops = append(c.loops, posRange{x.Body.Pos(), x.Body.End()})
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				c.addrOfs[unparen(x.X)] = true
			}
		}
		return true
	})
	c.walk(fd.Body)
}

func (c *hotpathChecker) inLoop(pos token.Pos) bool {
	for _, r := range c.loops {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

func (c *hotpathChecker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.pass.Report(x.Pos(), "closure literal in hotpath function %s allocates its capture block", c.decl.Name.Name)
			return false
		case *ast.GoStmt:
			c.pass.Report(x.Pos(), "go statement in hotpath function %s allocates a goroutine", c.decl.Name.Name)
			return false
		case *ast.DeferStmt:
			if c.inLoop(x.Pos()) {
				c.pass.Report(x.Pos(), "defer inside a loop in hotpath function %s allocates per iteration", c.decl.Name.Name)
			}
		case *ast.CallExpr:
			if skipArgs := c.call(x); skipArgs {
				return false
			}
		case *ast.SelectorExpr:
			if !c.called[x] {
				if sel := c.info.Selections[x]; sel != nil && sel.Kind() == types.MethodVal {
					c.pass.Report(x.Pos(), "method value %s in hotpath function %s allocates a bound-method closure", exprString(x), c.decl.Name.Name)
				}
			}
		case *ast.CompositeLit:
			c.compositeLit(x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(c.info.TypeOf(x)) {
				c.pass.Report(x.Pos(), "string concatenation in hotpath function %s allocates", c.decl.Name.Name)
			}
		case *ast.AssignStmt:
			c.assign(x)
		case *ast.ValueSpec:
			c.valueSpec(x)
		case *ast.ReturnStmt:
			c.returnStmt(x)
		case *ast.SendStmt:
			if ch := c.info.TypeOf(x.Chan); ch != nil {
				if elem, ok := ch.Underlying().(*types.Chan); ok {
					c.box(x.Value.Pos(), elem.Elem(), x.Value, "channel send")
				}
			}
		}
		return true
	})
}

// call validates one call expression: conversions, builtins, then static
// callee legality plus argument boxing. Returns true when the subtree below
// the call should be skipped (panic failure paths).
func (c *hotpathChecker) call(x *ast.CallExpr) (skipArgs bool) {
	fun := unparen(x.Fun)
	if tv, ok := c.info.Types[fun]; ok && tv.IsType() {
		c.conversion(x, tv.Type)
		return false
	}
	if obj := calleeObject(c.info, fun); obj != nil {
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				c.pass.Report(x.Pos(), "%s in hotpath function %s allocates", b.Name(), c.decl.Name.Name)
			case "panic":
				// Failure path: a panicking hotpath has already lost the
				// race; don't charge its message construction.
				return true
			}
			return false
		}
		if fn, ok := obj.(*types.Func); ok {
			c.staticCall(x, fn)
			return false
		}
	}
	// No static callee: a call through a function-typed variable or field.
	c.pass.Report(x.Pos(), "dynamic call through function value %s in hotpath function %s cannot be verified allocation-free", exprString(fun), c.decl.Name.Name)
	return false
}

func (c *hotpathChecker) staticCall(x *ast.CallExpr, fn *types.Func) {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		c.pass.Report(x.Pos(), "call through interface method %s in hotpath function %s cannot be verified allocation-free", fn.Name(), c.decl.Name.Name)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return // universe-scope (error.Error etc. handled above)
	}
	if c.pass.Prog.Internal(pkg.Path()) {
		ann := c.pass.Prog.FuncAnnot(fn)
		if ann&(AnnotHotpath|AnnotAllocOk) == 0 {
			c.pass.Report(x.Pos(), "hotpath function %s calls %s which is neither //photon:hotpath nor //photon:allocok", c.decl.Name.Name, fn.FullName())
			return
		}
		if ann&AnnotAllocOk != 0 {
			return // allocok callee: the call site is exempt, boxing included
		}
	} else {
		if pkg.Path() == "math/rand" && sig != nil && sig.Recv() != nil {
			// Methods on an injected *rand.Rand (sampling hot loops) do not
			// allocate; package-level funcs are banned by seeded-rand anyway.
		} else if !allowedStdPkgs[pkg.Path()] && !allowedStdFuncs[fn.FullName()] {
			c.pass.Report(x.Pos(), "hotpath function %s calls %s outside the non-allocating stdlib whitelist", c.decl.Name.Name, fn.FullName())
			return
		}
	}
	c.callArgs(x, sig)
}

// callArgs flags interface boxing of arguments and variadic slice
// construction against the callee signature.
func (c *hotpathChecker) callArgs(x *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range x.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if x.Ellipsis != token.NoPos {
				pt = sig.Params().At(np - 1).Type()
			} else {
				if i == np-1 {
					c.pass.Report(arg.Pos(), "variadic call in hotpath function %s allocates the argument slice", c.decl.Name.Name)
				}
				if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			c.box(arg.Pos(), pt, arg, "argument")
		}
	}
}

func (c *hotpathChecker) conversion(x *ast.CallExpr, dst types.Type) {
	if len(x.Args) != 1 {
		return
	}
	src := c.info.TypeOf(x.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) && !isUntypedNil(c.info, x.Args[0]) {
		c.pass.Report(x.Pos(), "conversion to interface %s in hotpath function %s boxes its operand", dst.String(), c.decl.Name.Name)
		return
	}
	if stringBytesConversion(dst, src) {
		c.pass.Report(x.Pos(), "string/[]byte conversion in hotpath function %s copies and allocates", c.decl.Name.Name)
	}
}

func (c *hotpathChecker) compositeLit(x *ast.CompositeLit) {
	t := c.info.TypeOf(x)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Report(x.Pos(), "slice literal in hotpath function %s allocates", c.decl.Name.Name)
	case *types.Map:
		c.pass.Report(x.Pos(), "map literal in hotpath function %s allocates", c.decl.Name.Name)
	default:
		if c.addrOfs[x] {
			c.pass.Report(x.Pos(), "&composite literal in hotpath function %s escapes to the heap", c.decl.Name.Name)
		}
	}
}

func (c *hotpathChecker) assign(x *ast.AssignStmt) {
	if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(c.info.TypeOf(x.Lhs[0])) {
		c.pass.Report(x.Pos(), "string += in hotpath function %s allocates", c.decl.Name.Name)
		return
	}
	// Map inserts can trigger bucket growth; hotpath code must pre-size maps
	// on the cold path.
	for _, lhs := range x.Lhs {
		// Note: ast.Unparen, not this package's unparen — the latter also
		// strips IndexExpr (generic instantiation on callees), which would
		// collapse m[k] to m here.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := c.info.TypeOf(idx.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.pass.Report(lhs.Pos(), "map insert in hotpath function %s may allocate on growth", c.decl.Name.Name)
				}
			}
		}
	}
	if x.Tok != token.ASSIGN || len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i := range x.Lhs {
		if lt := c.info.TypeOf(x.Lhs[i]); lt != nil {
			c.box(x.Rhs[i].Pos(), lt, x.Rhs[i], "assignment")
		}
	}
}

func (c *hotpathChecker) valueSpec(x *ast.ValueSpec) {
	if x.Type == nil {
		return
	}
	dt := c.info.TypeOf(x.Type)
	if dt == nil {
		return
	}
	for _, v := range x.Values {
		c.box(v.Pos(), dt, v, "declaration")
	}
}

func (c *hotpathChecker) returnStmt(x *ast.ReturnStmt) {
	if c.decl.Type.Results == nil || len(x.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, field := range c.decl.Type.Results.List {
		t := c.info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(x.Results) != len(resultTypes) {
		return // naked multi-value return of a call; boxing happens in callee
	}
	for i, r := range x.Results {
		if resultTypes[i] != nil {
			c.box(r.Pos(), resultTypes[i], r, "return")
		}
	}
}

// box flags storing a concrete value into an interface-typed destination.
func (c *hotpathChecker) box(pos token.Pos, dst types.Type, src ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	if _, isTP := dst.(*types.TypeParam); isTP {
		return
	}
	st := c.info.TypeOf(src)
	if st == nil || types.IsInterface(st) || isUntypedNil(c.info, src) {
		return
	}
	c.pass.Report(pos, "%s boxes %s into interface %s in hotpath function %s", what, st.String(), dst.String(), c.decl.Name.Name)
}

// Shared AST/type helpers.

func unparen(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr: // generic instantiation
			if _, isIdent := x.X.(*ast.Ident); isIdent {
				e = x.X
			} else if _, isSel := x.X.(*ast.SelectorExpr); isSel {
				e = x.X
			} else {
				return e
			}
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// calleeObject resolves the object a call expression's Fun refers to, or nil
// for dynamic calls.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func stringBytesConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// exprString renders a small expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.BasicLit:
		return x.Value
	}
	return fmt.Sprintf("<%T>", e)
}
