package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFirst enforces the context discipline PR 1 plumbed through the stack:
// module-wide, a context.Context parameter must be the first parameter; and
// in the wire-facing packages (fed, link, serve), exported APIs with
// blocking names (Run*, Serve*, Dial*, Accept*, Wait*) must either take a
// context.Context first or have a <Name>Context sibling that does (the
// net.Listener Accept/AcceptContext idiom, kept for API compatibility).
var CtxFirst = &Analyzer{
	Name: "ctx-first",
	Doc:  "context.Context parameters come first; blocking exported APIs in fed/link/serve take one",
	Run:  runCtxFirst,
}

var blockingNamePrefixes = []string{"Run", "Serve", "Dial", "Accept", "Wait"}

func runCtxFirst(pass *Pass) {
	// Wire-facing is matched by path suffix rather than exact equality so
	// fixture packages (testdata/src/.../internal/serve) exercise the rule.
	wireFacing := func(path string) bool {
		for _, s := range []string{"/internal/fed", "/internal/link", "/internal/serve"} {
			if strings.HasSuffix(path, s) {
				return true
			}
		}
		return false
	}
	// Index declared function and method names so the <Name>Context sibling
	// rule can be checked: "Dial" is satisfied by "DialContext", a method
	// "(*Listener).Accept" by "(*Listener).AcceptContext".
	declared := map[string]bool{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				declared[funcKey(pass.Pkg.Info, fd)] = true
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			sig := funcSignature(pass.Pkg.Info, fd)
			if sig == nil {
				continue
			}
			// Module-wide: a context parameter anywhere must be first.
			for i := 0; i < sig.Params().Len(); i++ {
				if isContextType(sig.Params().At(i).Type()) && i > 0 {
					pass.Report(fd.Name.Pos(), "%s takes context.Context as parameter %d; context must be the first parameter", fd.Name.Name, i+1)
					break
				}
			}
			if !wireFacing(pass.Pkg.ImportPath) || !fd.Name.IsExported() {
				continue
			}
			if !hasBlockingName(fd.Name.Name) || strings.HasSuffix(fd.Name.Name, "Context") {
				continue
			}
			if sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
				continue
			}
			if declared[funcKey(pass.Pkg.Info, fd)+"Context"] {
				continue // Accept/AcceptContext-style pair
			}
			pass.Report(fd.Name.Pos(), "exported blocking API %s must take context.Context as its first parameter (or gain a %sContext sibling)", fd.Name.Name, fd.Name.Name)
		}
	}
}

func funcSignature(info *types.Info, fd *ast.FuncDecl) *types.Signature {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// funcKey renders "Name" for functions and "Recv.Name" for methods.
func funcKey(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return fd.Name.Name
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func hasBlockingName(name string) bool {
	for _, p := range blockingNamePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
