package lint

import (
	"go/ast"
	"go/types"
)

// NoWallclock keeps virtual-clock packages off the wall clock. internal/topo
// is today an analytic cost model and tomorrow (ROADMAP item 5) a
// discrete-event simulator; both are only trustworthy if simulated time is
// the one source of time. The package is denied time.Now/Since/Sleep and
// friends unconditionally, and any other package can opt into the same
// discipline with a //photon:virtualclock package-doc directive.
var NoWallclock = &Analyzer{
	Name: "no-wallclock",
	Doc:  "no time.Now/time.Since/time.Sleep in internal/topo or //photon:virtualclock packages",
	Run:  runNoWallclock,
}

// wallClockFuncs are the time package functions that read or wait on the
// wall/monotonic clock. Pure conversions and constructors (time.Duration
// arithmetic, time.Unix) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

func runNoWallclock(pass *Pass) {
	if !pass.Pkg.virtualClock && pass.Pkg.ImportPath != pass.Prog.ModPath+"/internal/topo" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := calleeObject(info, call.Fun).(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Report(call.Pos(), "time.%s in virtual-clock package %s; thread simulated time instead", fn.Name(), pass.Pkg.Pkg.Name())
			}
			return true
		})
	}
}
