// Package lint is photon-vet's analyzer suite: a dependency-free (go/ast,
// go/parser, go/types, go/importer — no x/tools) static checker that promotes
// the repo's hard-won runtime invariants to whole-program compile-time
// guarantees. The analyzers enforce:
//
//   - hotpath-alloc: functions annotated //photon:hotpath contain no
//     allocating constructs and only call hotpath//photon:allocok functions
//     (checked through the intra-module call graph),
//   - seeded-rand: no global math/rand state, no wall-clock-seeded sources,
//   - locked-blocking: no channel send, link I/O, or time.Sleep while a
//     sync.Mutex is held,
//   - no-wallclock: no time.Now/Since/Sleep in virtual-clock packages
//     (internal/topo and any package annotated //photon:virtualclock),
//   - ctx-first: context.Context parameters come first, and blocking-named
//     exported APIs in fed/link/serve take one (or have a Context sibling).
//
// See the README "Static analysis & invariants" section for the annotation
// grammar and cmd/photon-vet for the CLI driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the program under
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	// Annotation tables, built at load time.
	funcAnnot    map[*types.Func]FuncAnnot
	nolint       map[string]map[int][]string // file -> line -> suppressed analyzer names ("" = all)
	virtualClock bool
}

// FuncAnnot is the set of //photon: function annotations.
type FuncAnnot uint8

const (
	// AnnotHotpath marks a function whose body must be allocation-free and
	// whose callees must themselves be hotpath or allocok.
	AnnotHotpath FuncAnnot = 1 << iota
	// AnnotAllocOk marks a function hotpath code may call even though it
	// (or its callees) may allocate — the escape hatch for amortized cold
	// paths such as pool refills and buffer growth.
	AnnotAllocOk
)

// Program is the loaded module: every package parsed, type-checked in
// dependency order, and annotation-indexed.
type Program struct {
	Fset     *token.FileSet
	ModPath  string
	Root     string
	Packages map[string]*Package

	stdImporter types.Importer
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// NewProgram prepares an empty program rooted at the module containing dir
// (walking up to the nearest go.mod): no packages are loaded yet, so callers
// (golden tests) can AddDir exactly the fixture packages they need instead of
// type-checking the whole module.
func NewProgram(dir string) (*Program, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return &Program{
		Fset:        token.NewFileSet(),
		ModPath:     modPath,
		Root:        root,
		Packages:    make(map[string]*Package),
		stdImporter: importer.Default(),
	}, nil
}

// Load parses and type-checks every package under root (skipping testdata,
// vendor, and hidden directories), in dependency order, using only the
// standard library toolchain. Test files (_test.go) are not analyzed: the
// invariants guard production paths, and tests legitimately use wall clocks,
// fixed seeds, and blocking helpers.
func Load(root string) (*Program, error) {
	p, err := NewProgram(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(p.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != p.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if _, err := p.AddDir(dir); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under the module root to its import path.
func (p *Program) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return p.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module root %s", dir, p.Root)
	}
	return p.ModPath + "/" + filepath.ToSlash(rel), nil
}

// AddDir loads one package directory (parsing, resolving module-internal
// imports recursively, type-checking) and returns it. It is how golden tests
// pull fixture packages — which live under testdata/, invisible to Load —
// into an already-loaded program so fixtures can import real module packages.
func (p *Program) AddDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := p.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return p.load(path, dir, nil)
}

// load type-checks the package at path, loading module-internal dependencies
// first. chain tracks the in-progress import stack for cycle detection.
func (p *Program) load(path, dir string, chain []string) (*Package, error) {
	if pkg, ok := p.Packages[path]; ok {
		return pkg, nil
	}
	for _, c := range chain {
		if c == path {
			return nil, fmt.Errorf("import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
	}
	chain = append(chain, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	// Load module-internal dependencies first so type-checking sees them.
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if ipath != p.ModPath && !strings.HasPrefix(ipath, p.ModPath+"/") {
				continue
			}
			idir := p.Root
			if ipath != p.ModPath {
				idir = filepath.Join(p.Root, filepath.FromSlash(strings.TrimPrefix(ipath, p.ModPath+"/")))
			}
			if _, err := p.load(ipath, idir, chain); err != nil {
				return nil, err
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &progImporter{p: p},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	p.indexAnnotations(pkg)
	p.Packages[path] = pkg
	return pkg, nil
}

// progImporter resolves module-internal imports from the program's package
// map and everything else (the standard library) through go/importer.
type progImporter struct {
	p *Program
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if path == pi.p.ModPath || strings.HasPrefix(path, pi.p.ModPath+"/") {
		pkg, ok := pi.p.Packages[path]
		if !ok {
			return nil, fmt.Errorf("internal package %s not loaded", path)
		}
		return pkg.Pkg, nil
	}
	return pi.p.stdImporter.Import(path)
}

// SortedPackages returns the loaded packages in import-path order.
func (p *Program) SortedPackages() []*Package {
	paths := make([]string, 0, len(p.Packages))
	for path := range p.Packages {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = p.Packages[path]
	}
	return out
}

// FuncAnnot returns the //photon: annotations on obj's declaration, looked up
// across the whole program — this is what lets the hotpath analyzer follow
// the intra-module call graph across package boundaries.
func (p *Program) FuncAnnot(obj *types.Func) FuncAnnot {
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	pkg, ok := p.Packages[obj.Pkg().Path()]
	if !ok {
		return 0
	}
	return pkg.funcAnnot[obj]
}

// Internal reports whether path is a package of the module under analysis.
func (p *Program) Internal(path string) bool {
	return path == p.ModPath || strings.HasPrefix(path, p.ModPath+"/")
}
