package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantMarker is one `// want "substr"` expectation parsed from a fixture.
type wantMarker struct {
	file   string // base name
	line   int
	substr string
	hit    bool
}

// parseWants scans every .go file in dir for `// want "..."` markers.
func parseWants(t *testing.T, dir string) []*wantMarker {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir %s: %v", dir, err)
	}
	var wants []*wantMarker
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture %s: %v", e.Name(), err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			_, rest, ok := strings.Cut(line, `// want "`)
			if !ok {
				continue
			}
			substr, _, ok := strings.Cut(rest, `"`)
			if !ok {
				t.Fatalf("%s:%d: unterminated want marker", e.Name(), i+1)
			}
			wants = append(wants, &wantMarker{file: e.Name(), line: i + 1, substr: substr})
		}
	}
	return wants
}

// checkFixture loads the fixture dirs (relative to testdata/src) into a fresh
// program, runs one analyzer over them, and matches findings against the
// fixtures' want markers: every marker must be hit by exactly one finding on
// its line, and no finding may go unclaimed.
func checkFixture(t *testing.T, analyzer *Analyzer, dirs ...string) {
	t.Helper()
	prog, err := NewProgram(".")
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	var findings []Finding
	var wants []*wantMarker
	for _, d := range dirs {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(d))
		pkg, err := prog.AddDir(dir)
		if err != nil {
			t.Fatalf("AddDir(%s): %v", dir, err)
		}
		findings = append(findings, prog.RunPackage(pkg, []*Analyzer{analyzer})...)
		wants = append(wants, parseWants(t, dir)...)
	}
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

func TestHotpathAllocFixtures(t *testing.T) {
	checkFixture(t, HotpathAlloc, "hotpathbad", "hotpathgood")
}

func TestSeededRandFixtures(t *testing.T) {
	checkFixture(t, SeededRand, "seededrandbad", "seededrandgood")
}

func TestLockedBlockingFixtures(t *testing.T) {
	checkFixture(t, LockedBlocking, "lockedbad", "lockedgood")
}

func TestNoWallclockFixtures(t *testing.T) {
	checkFixture(t, NoWallclock, "wallclockbad", "wallclockgood")
}

// TestCtxFirstFixtures includes the regression shape of the RunSecAggSession
// violation photon-vet surfaced on its first run over the repo: an exported
// Run* API in a wire-facing package that did not take a context.
func TestCtxFirstFixtures(t *testing.T) {
	checkFixture(t, CtxFirst, "ctxfirstbad", "ctxfirstbad/internal/serve", "ctxfirstgood/internal/link")
}

// TestModuleClean pins the acceptance invariant that the repo's own tree
// stays analyzer-clean: photon-vet over ./... must report nothing. A
// violation introduced anywhere in the module fails this test with the
// would-be CLI output.
func TestModuleClean(t *testing.T) {
	prog, err := Load(".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings := prog.Run(All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d findings on the module tree; run `go run ./cmd/photon-vet ./...` locally", len(findings))
	}
}

// TestNolintUnknownAnalyzerStillReports guards the suppression grammar: a
// nolint naming a different analyzer must not mute findings from this one.
func TestNolintUnknownAnalyzerStillReports(t *testing.T) {
	src := `package scratch

import "math/rand"

func draw() int {
	return rand.Intn(3) //photon:nolint hotpath-alloc -- wrong analyzer: must not suppress seeded-rand
}
`
	findings := runScratch(t, "scratch_wrongname", src, SeededRand)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "global rand source") {
		t.Fatalf("want one global-rand finding, got %v", findings)
	}
}

// TestNolintBareSuppressesAll guards the other half of the grammar: a bare
// //photon:nolint mutes every analyzer on its line.
func TestNolintBareSuppressesAll(t *testing.T) {
	src := `package scratch

import "math/rand"

func draw() int {
	return rand.Intn(3) //photon:nolint
}
`
	if findings := runScratch(t, "scratch_bare", src, SeededRand); len(findings) != 0 {
		t.Fatalf("bare nolint should suppress all analyzers, got %v", findings)
	}
}

// runScratch materializes a one-file scratch package under testdata/src (the
// loader requires packages to sit under the module root), loads it into a
// fresh program, runs one analyzer, and cleans the directory up.
func runScratch(t *testing.T, name, src string, analyzer *Analyzer) []Finding {
	t.Helper()
	dst := filepath.Join("testdata", "src", name)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dst) })
	if err := os.WriteFile(filepath.Join(dst, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.AddDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	return prog.RunPackage(pkg, []*Analyzer{analyzer})
}
