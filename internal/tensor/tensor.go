// Package tensor provides the dense float32 linear-algebra kernels used by
// the Photon training substrate: matrix multiplication (with transposed
// variants for backpropagation), row-wise softmax, and the element-wise
// vector operations needed by a transformer language model.
//
// The package is deliberately small and allocation-conscious. All kernels
// operate on flat []float32 buffers with explicit dimensions so callers can
// reuse scratch memory across training steps. Matrix multiplication is
// cache-blocked and, above a size threshold, parallelized across row bands
// with goroutines.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
//
//photon:allocok
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps an existing buffer as a matrix. The buffer must hold
// exactly rows*cols elements.
//
//photon:allocok
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: buffer length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns the i-th row as a sub-slice (no copy).
//
//photon:hotpath
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
//
//photon:hotpath
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
//
//photon:hotpath
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
//
//photon:allocok
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all elements in place.
//
//photon:hotpath
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// parallelThreshold is the number of multiply-adds above which a kernel fans
// out across the worker pool. Tuned for small-model training where many
// matmuls are tiny and dispatch overhead dominates.
const parallelThreshold = 1 << 16

// MatMul computes C = A·B where A is m×k, B is k×n, and C is m×n.
// C must not alias A or B.
//
//photon:hotpath
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	dispatch(a.Rows, satMul(a.Cols, b.Cols), task{kind: kMatMul, c: *c, a: *a, b: *b})
}

// MatMulAccum computes C += A·B (same shapes as MatMul).
//
//photon:hotpath
func MatMulAccum(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: MatMulAccum shape mismatch")
	}
	dispatch(a.Rows, satMul(a.Cols, b.Cols), task{kind: kMatMulAccum, c: *c, a: *a, b: *b})
}

// MatMulTransA computes C = Aᵀ·B where A is k×m, B is k×n, C is m×n.
// This is the kernel used for weight gradients (dW = Xᵀ·dY).
//
//photon:hotpath
func MatMulTransA(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: MatMulTransA shape mismatch")
	}
	c.Zero()
	MatMulTransAAccum(c, a, b)
}

// MatMulTransAAccum computes C += Aᵀ·B (same shapes as MatMulTransA).
// Parallelized over output rows (columns of A): each band owns its C rows so
// no synchronization is needed.
//
//photon:hotpath
func MatMulTransAAccum(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: MatMulTransAAccum shape mismatch")
	}
	dispatch(a.Cols, satMul(b.Cols, a.Rows), task{kind: kMatMulTransAAccum, c: *c, a: *a, b: *b})
}

// MatMulTransB computes C = A·Bᵀ where A is m×k, B is n×k, C is m×n.
// This is the kernel used for input gradients (dX = dY·Wᵀ) and attention
// scores (Q·Kᵀ).
//
//photon:hotpath
func MatMulTransB(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	dispatch(a.Rows, satMul(a.Cols, b.Rows), task{kind: kMatMulTransB, c: *c, a: *a, b: *b})
}

// axpy computes y += a*x for equal-length slices, 4x unrolled.
//
//photon:hotpath
func axpy(a float32, x, y []float32) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// Axpy computes y += a*x for equal-length slices (exported form).
//
//photon:hotpath
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	if len(x) == 0 {
		return
	}
	axpy(a, x, y)
}

// Dot returns the inner product of two equal-length vectors, accumulated in
// four independent lanes for instruction-level parallelism.
//
//photon:hotpath
func Dot(x, y []float32) float32 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Scale multiplies every element of x by a in place.
//
//photon:hotpath
func Scale(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// Add computes dst[i] += src[i].
//
//photon:hotpath
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Sub computes dst[i] -= src[i].
//
//photon:hotpath
func Sub(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Sub length mismatch")
	}
	for i, v := range src {
		dst[i] -= v
	}
}

// Hadamard computes dst[i] *= src[i].
//
//photon:hotpath
func Hadamard(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Hadamard length mismatch")
	}
	for i, v := range src {
		dst[i] *= v
	}
}

// Fill sets every element of x to v.
//
//photon:hotpath
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Norm2 returns the Euclidean norm of x, accumulated in float64 for
// stability.
//
//photon:hotpath
func Norm2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// SoftmaxRow converts x to a probability distribution in place using the
// numerically stable max-subtraction form.
//
//photon:hotpath
func SoftmaxRow(x []float32) {
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := float32(math.Exp(float64(v - maxV)))
		x[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for i := range x {
		x[i] *= inv
	}
}

// LogSumExpRow returns log(Σ exp(x_i)) computed stably.
//
//photon:hotpath
func LogSumExpRow(x []float32) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(float64(v - maxV))
	}
	return float64(maxV) + math.Log(sum)
}

// ArgMax returns the index of the largest element of x (first on ties), or
// -1 for an empty slice.
//
//photon:hotpath
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}
