package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refAttend is the scalar reference for one decode item: scores + ALiBi +
// softmax + context in plain float64 loops.
func refAttend(it DecodeItem, scale float32) []float32 {
	d := len(it.Ctx) / it.QRows
	out := make([]float32, it.QRows*d)
	for r := 0; r < it.QRows; r++ {
		pos := it.KRows - it.QRows + r
		scores := make([]float64, pos+1)
		maxV := math.Inf(-1)
		for j := 0; j <= pos; j++ {
			var dot float64
			for x := 0; x < d; x++ {
				dot += float64(it.Q[r*d+x]) * float64(it.K[j*d+x])
			}
			v := dot*float64(scale) + float64(it.Slope)*float64(j-pos)
			scores[j] = v
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j := range scores {
			scores[j] = math.Exp(scores[j] - maxV)
			sum += scores[j]
		}
		for j := range scores {
			scores[j] /= sum
			for x := 0; x < d; x++ {
				out[r*d+x] += float32(scores[j] * float64(it.V[j*d+x]))
			}
		}
	}
	return out
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestAttendDecodeMatchesReference checks the fused kernel against the scalar
// reference over ragged item mixes: single-row decode, multi-row prefill, and
// prefill-with-prefix shapes, across head dims that exercise the 4-wide tiles
// and their tails.
func TestAttendDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type shape struct{ qRows, kRows, d int }
	shapes := []shape{
		{1, 1, 8},   // first token
		{1, 17, 8},  // steady-state decode
		{5, 5, 6},   // pure prefill
		{4, 19, 10}, // chunked prefill over a cached prefix
		{1, 64, 16}, // long prefix, tile-aligned
		{3, 7, 3},   // everything in the tail loops
		{2, 33, 32}, // mixed
	}
	items := make([]DecodeItem, 0, len(shapes))
	for _, s := range shapes {
		items = append(items, DecodeItem{
			Q:     randSlice(rng, s.qRows*s.d),
			K:     randSlice(rng, s.kRows*s.d),
			V:     randSlice(rng, s.kRows*s.d),
			Probs: make([]float32, s.qRows*s.kRows),
			Ctx:   make([]float32, s.qRows*s.d),
			QRows: s.qRows,
			KRows: s.kRows,
			Slope: float32(rng.Float64()),
		})
	}
	AttendDecode(items, 0.35)
	for i, it := range items {
		want := refAttend(it, 0.35)
		for j := range want {
			if diff := math.Abs(float64(it.Ctx[j] - want[j])); diff > 1e-5 {
				t.Fatalf("item %d ctx[%d]: got %v want %v (diff %g)", i, j, it.Ctx[j], want[j], diff)
			}
		}
	}
}

// TestAttendDecodeMatchesTrainingKernels runs a full-sequence prefill through
// AttendDecode and through the training-path batched causal kernels
// (BatchMatMulTransBCausal + CausalSoftmaxRows + BatchMatMulCausal) and
// requires the contexts to agree: the incremental path must compute the same
// attention as training.
func TestAttendDecodeMatchesTrainingKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		heads = 3
		seq   = 12
		d     = 8
	)
	scale := float32(1 / math.Sqrt(float64(d)))
	slopes := []float32{0.5, 0.25, 0.125}

	q := &Matrix{Rows: heads * seq, Cols: d, Data: randSlice(rng, heads*seq*d)}
	k := &Matrix{Rows: heads * seq, Cols: d, Data: randSlice(rng, heads*seq*d)}
	v := &Matrix{Rows: heads * seq, Cols: d, Data: randSlice(rng, heads*seq*d)}

	// Training path (batch=1).
	probs := NewMatrix(heads*seq, seq)
	BatchMatMulTransBCausal(probs, q, k, heads)
	CausalSoftmaxRows(probs, 1, heads, slopes, scale)
	want := NewMatrix(heads*seq, d)
	BatchMatMulCausal(want, probs, v, heads)

	// Decode path: one prefill item per head covering the whole sequence.
	items := make([]DecodeItem, heads)
	for h := 0; h < heads; h++ {
		items[h] = DecodeItem{
			Q:     q.Data[h*seq*d : (h+1)*seq*d],
			K:     k.Data[h*seq*d : (h+1)*seq*d],
			V:     v.Data[h*seq*d : (h+1)*seq*d],
			Probs: make([]float32, seq*seq),
			Ctx:   make([]float32, seq*d),
			QRows: seq,
			KRows: seq,
			Slope: slopes[h],
		}
	}
	AttendDecode(items, scale)
	for h := 0; h < heads; h++ {
		for j, wv := range want.Data[h*seq*d : (h+1)*seq*d] {
			if diff := math.Abs(float64(items[h].Ctx[j] - wv)); diff > 1e-5 {
				t.Fatalf("head %d ctx[%d]: decode %v training %v", h, j, items[h].Ctx[j], wv)
			}
		}
	}
}

// TestAttendDecodeIncrementalMatchesPrefill decodes a sequence token by token
// and checks every context row matches the one-shot prefill of the same
// sequence: appending K/V and attending over the prefix is exact, not an
// approximation.
func TestAttendDecodeIncrementalMatchesPrefill(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const (
		seq = 9
		d   = 6
	)
	scale := float32(0.4)
	slope := float32(0.3)
	q := randSlice(rng, seq*d)
	k := randSlice(rng, seq*d)
	v := randSlice(rng, seq*d)

	full := DecodeItem{
		Q: q, K: k, V: v,
		Probs: make([]float32, seq*seq),
		Ctx:   make([]float32, seq*d),
		QRows: seq, KRows: seq, Slope: slope,
	}
	AttendDecode([]DecodeItem{full}, scale)

	ctx := make([]float32, d)
	probs := make([]float32, seq)
	for tk := 0; tk < seq; tk++ {
		it := DecodeItem{
			Q:     q[tk*d : (tk+1)*d],
			K:     k[:(tk+1)*d],
			V:     v[:(tk+1)*d],
			Probs: probs[:tk+1],
			Ctx:   ctx,
			QRows: 1, KRows: tk + 1, Slope: slope,
		}
		AttendDecode([]DecodeItem{it}, scale)
		for x := 0; x < d; x++ {
			if diff := math.Abs(float64(ctx[x] - full.Ctx[tk*d+x])); diff > 1e-5 {
				t.Fatalf("token %d ctx[%d]: incremental %v prefill %v", tk, x, ctx[x], full.Ctx[tk*d+x])
			}
		}
	}
}

// TestAttendDecodeShapePanics pins the shape validation.
func TestAttendDecodeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on KRows < QRows")
		}
	}()
	AttendDecode([]DecodeItem{{
		Q: make([]float32, 8), K: make([]float32, 4), V: make([]float32, 4),
		Probs: make([]float32, 2), Ctx: make([]float32, 8),
		QRows: 2, KRows: 1,
	}}, 1)
}
