package tensor

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared worker pool. All parallel kernels in this package — and any
// caller using Parallel — dispatch band tasks to a fixed set of worker
// goroutines instead of spawning goroutines per call. Tasks are plain structs
// sent by value over a buffered channel and completion groups are recycled
// through a free list, so a steady-state dispatch performs zero heap
// allocations. That matters: the training loop calls these kernels thousands
// of times per second and per-call goroutine + closure allocations would
// dominate the GC profile the nn workspace is designed to eliminate.

// kernelKind selects the band function a worker runs for a task. Kernel
// operands travel in the task struct itself (matrix headers by value) so the
// hot path never creates closures.
type kernelKind uint8

const (
	kFn kernelKind = iota
	kMatMul
	kMatMulAccum
	kMatMulTransAAccum
	kMatMulTransB
	kBatchMatMul
	kBatchMatMulTransB
	kBatchMatMulCausal
	kBatchMatMulTransBCausal
	kBatchMatMulTransA
	kCausalSoftmax
	kCausalSoftmaxGrad
	kSoftmaxRows
	kAttendDecode
)

// task is one band of work: run kernel `kind` over [lo, hi) of the outer
// dimension (rows for flat kernels, items for batched kernels).
type task struct {
	kind    kernelKind
	fn      func(lo, hi int) // kFn only; must be a persistent func value
	c, a, b Matrix           // operand headers by value (no allocation)
	scale   float32
	sl      []float32    // ALiBi slopes for the softmax kernels
	ditems  []DecodeItem // ragged work items for the decode kernel
	batch   int          // item count for batched kernels
	heads   int          // slope period for the softmax kernels
	lo, hi  int
	g       *group
}

// group is a recycled completion latch: remaining counts outstanding bands
// and done is signalled exactly once when the last band finishes.
type group struct {
	remaining atomic.Int32
	done      chan struct{}
}

var groupFree = struct {
	sync.Mutex
	free []*group
}{}

//photon:allocok
func getGroup(n int32) *group {
	groupFree.Lock()
	var g *group
	if k := len(groupFree.free); k > 0 {
		g = groupFree.free[k-1]
		groupFree.free = groupFree.free[:k-1]
	}
	groupFree.Unlock()
	if g == nil {
		g = &group{done: make(chan struct{}, 1)}
	}
	g.remaining.Store(n)
	return g
}

//photon:allocok
func putGroup(g *group) {
	groupFree.Lock()
	groupFree.free = append(groupFree.free, g)
	groupFree.Unlock()
}

var (
	poolOnce sync.Once
	poolSize int
	taskCh   chan task
)

// ensurePool starts the worker goroutines on first parallel dispatch. The
// pool is sized to the GOMAXPROCS observed at startup; dispatch still checks
// the live GOMAXPROCS so a later GOMAXPROCS(1) (e.g. testing.AllocsPerRun)
// degrades to inline execution.
//
//photon:allocok
func ensurePool() {
	poolOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0)
		taskCh = make(chan task, 4*poolSize+16)
		for i := 0; i < poolSize; i++ {
			go func() {
				for t := range taskCh {
					runTask(&t)
					if t.g.remaining.Add(-1) == 0 {
						t.g.done <- struct{}{}
					}
				}
			}()
		}
	})
}

//photon:hotpath
func runTask(t *task) {
	switch t.kind {
	case kFn:
		// Parallel's contract requires fn to be a persistent func value, so
		// the indirect call itself allocates nothing.
		t.fn(t.lo, t.hi) //photon:nolint hotpath-alloc -- persistent func value per Parallel's contract
	case kMatMul:
		bandMatMul(&t.c, &t.a, &t.b, t.lo, t.hi, false)
	case kMatMulAccum:
		bandMatMul(&t.c, &t.a, &t.b, t.lo, t.hi, true)
	case kMatMulTransAAccum:
		bandMatMulTransAAccum(&t.c, &t.a, &t.b, t.lo, t.hi)
	case kMatMulTransB:
		bandMatMulTransB(&t.c, &t.a, &t.b, t.lo, t.hi)
	case kBatchMatMul:
		bandBatchMatMul(&t.c, &t.a, &t.b, t.batch, t.lo, t.hi, false)
	case kBatchMatMulTransB:
		bandBatchMatMulTransB(&t.c, &t.a, &t.b, t.batch, t.lo, t.hi, false)
	case kBatchMatMulCausal:
		bandBatchMatMul(&t.c, &t.a, &t.b, t.batch, t.lo, t.hi, true)
	case kBatchMatMulTransBCausal:
		bandBatchMatMulTransB(&t.c, &t.a, &t.b, t.batch, t.lo, t.hi, true)
	case kBatchMatMulTransA:
		bandBatchMatMulTransA(&t.c, &t.a, &t.b, t.batch, t.lo, t.hi)
	case kCausalSoftmax:
		bandCausalSoftmax(&t.a, t.heads, t.sl, t.scale, t.lo, t.hi)
	case kCausalSoftmaxGrad:
		bandCausalSoftmaxGrad(&t.c, &t.a, t.scale, t.lo, t.hi)
	case kSoftmaxRows:
		bandSoftmaxRows(&t.a, t.lo, t.hi)
	case kAttendDecode:
		bandAttendDecode(t.ditems, t.scale, t.lo, t.hi)
	}
}

// maxInt is the saturation ceiling for volume-hint arithmetic.
const maxInt = math.MaxInt

// satMul returns a*b for non-negative operands, saturating at maxInt instead
// of overflowing. Volume hints are products like rows·cols·cols which exceed
// int64 for paper-scale shapes; the hint only gates the parallel/serial
// decision so saturation is exactly the right semantics.
//
//photon:hotpath
func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > maxInt/b {
		return maxInt
	}
	return a * b
}

// dispatch splits [0, items) into bands and runs kernel t on the pool,
// executing serially inline when the flop volume does not justify the
// fan-out. The caller runs the first band itself so a dispatch never leaves
// the calling core idle.
//
//photon:hotpath
func dispatch(items, volumePerItem int, t task) {
	if items <= 0 {
		return
	}
	if items < 2 || runtime.GOMAXPROCS(0) <= 1 || satMul(items, volumePerItem) < parallelThreshold {
		t.lo, t.hi = 0, items
		runTask(&t)
		return
	}
	ensurePool()
	bands := poolSize
	if bands > items {
		bands = items
	}
	step := (items + bands - 1) / bands
	g := getGroup(int32((items + step - 1) / step))
	for lo := step; lo < items; lo += step {
		hi := lo + step
		if hi > items {
			hi = items
		}
		t.lo, t.hi, t.g = lo, hi, g
		taskCh <- t
	}
	// Run the first band on the calling goroutine.
	t.lo, t.hi = 0, step
	if t.hi > items {
		t.hi = items
	}
	runTask(&t)
	if g.remaining.Add(-1) != 0 {
		<-g.done
	}
	putGroup(g)
}

// Parallel runs fn over contiguous bands of [0, items) on the package worker
// pool, or inline when items·volumePerItem is too small to amortize the
// fan-out. fn must be safe for concurrent invocation on disjoint bands.
// Callers on the training hot path should pass a persistent func value (one
// stored in a struct field at construction) — a fresh closure per call heap-
// allocates its capture block and defeats the zero-allocation step guarantee.
//
//photon:hotpath
func Parallel(items, volumePerItem int, fn func(lo, hi int)) {
	dispatch(items, volumePerItem, task{kind: kFn, fn: fn})
}
