package tensor

import (
	"fmt"
	"math"
)

// This file holds the band-level compute kernels the worker pool executes.
// The micro-kernel strategy mirrors a classic register-tiled sgemm:
//
//   - axpy4: four A rows are multiplied against one streamed B row, so each
//     load of B feeds four C rows (4x arithmetic intensity on the B stream).
//   - dot4: one streamed A row feeds four simultaneous dot products against
//     four B rows (the Bᵀ kernels).
//   - axpy4in: four streamed X rows accumulate into one Y row (causal P·V).
//   - 2D cache blocking: the shared K dimension is walked in kcBlock-sized
//     panels so the active slices of A and B stay resident in L1/L2 while a
//     band of C is produced.
//
// All kernels operate on [lo, hi) bands of their outer dimension so the pool
// can split work without synchronization: each band owns its C rows.

// kcBlock is the K-dimension cache block: 128 float32 columns × (4 C rows +
// 1 B row) ≈ 2.5 KB of hot panel per tile, comfortably inside L1.
const kcBlock = 128

// bandMatMul computes C[lo:hi] (+)= A[lo:hi]·B with a 4-row register tile
// under K-panel cache blocking: the outer loop walks kcBlock-deep panels of
// B so a ~kcBlock·n slice of B stays cache-resident while every C row of
// the band accumulates against it, and within a panel each streamed B row
// feeds four C rows (axpy4). (A packed-panel 4×4 tile was measured slower
// in pure Go: per-iteration panel indexing costs more than the streaming
// stores it saves.)
//
//photon:hotpath
func bandMatMul(c, a, b *Matrix, lo, hi int, accum bool) {
	n, k := b.Cols, a.Cols
	bd := b.Data
	if !accum {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for x := range ci {
				ci[x] = 0
			}
		}
	}
	for p0 := 0; p0 < k; p0 += kcBlock {
		p1 := min(p0+kcBlock, k)
		i := lo
		for ; i+4 <= hi; i += 4 {
			a0 := a.Data[i*k : (i+1)*k]
			a1 := a.Data[(i+1)*k : (i+2)*k]
			a2 := a.Data[(i+2)*k : (i+3)*k]
			a3 := a.Data[(i+3)*k : (i+4)*k]
			c0 := c.Data[i*n : (i+1)*n]
			c1 := c.Data[(i+1)*n : (i+2)*n]
			c2 := c.Data[(i+2)*n : (i+3)*n]
			c3 := c.Data[(i+3)*n : (i+4)*n]
			p := p0
			for ; p+2 <= p1; p += 2 {
				axpy4p2(a0[p], a1[p], a2[p], a3[p],
					a0[p+1], a1[p+1], a2[p+1], a3[p+1],
					bd[p*n:(p+1)*n], bd[(p+1)*n:(p+2)*n], c0, c1, c2, c3)
			}
			for ; p < p1; p++ {
				axpy4(a0[p], a1[p], a2[p], a3[p], bd[p*n:(p+1)*n], c0, c1, c2, c3)
			}
		}
		for ; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for p := p0; p < p1; p++ {
				if av := ai[p]; av != 0 {
					axpy(av, bd[p*n:(p+1)*n], ci)
				}
			}
		}
	}
}

// bandMatMulTransB computes C[lo:hi] = A[lo:hi]·Bᵀ.
//
//photon:hotpath
func bandMatMulTransB(c, a, b *Matrix, lo, hi int) {
	n, k := b.Rows, a.Cols
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		c0 := c.Data[i*n : (i+1)*n]
		c1 := c.Data[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			c0[j], c0[j+1], c0[j+2], c0[j+3],
				c1[j], c1[j+1], c1[j+2], c1[j+3] = dot4x2(a0, a1, b0, b1, b2, b3)
		}
		for ; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			c0[j] = Dot(a0, bj)
			c1[j] = Dot(a1, bj)
		}
	}
	for ; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			ci[j], ci[j+1], ci[j+2], ci[j+3] = dot4(ai,
				b.Data[j*k:(j+1)*k], b.Data[(j+1)*k:(j+2)*k],
				b.Data[(j+2)*k:(j+3)*k], b.Data[(j+3)*k:(j+4)*k])
		}
		for ; j < n; j++ {
			ci[j] = Dot(ai, b.Data[j*k:(j+1)*k])
		}
	}
}

// bandMatMulTransAAccum computes C[lo:hi] += (Aᵀ·B)[lo:hi], i.e. the band
// covers columns [lo, hi) of A. Groups of four A/B rows are fused so each C
// row is streamed once per group (4x less C traffic) while the four B rows
// stay L1-hot; the all-zero skip preserves the fast path for the sparse
// gradients this kernel sees (padding rows, causal triangles).
//
//photon:hotpath
func bandMatMulTransAAccum(c, a, b *Matrix, lo, hi int) {
	m, n, k := a.Cols, b.Cols, a.Rows
	p := 0
	for ; p+4 <= k; p += 4 {
		a0 := a.Data[p*m : (p+1)*m]
		a1 := a.Data[(p+1)*m : (p+2)*m]
		a2 := a.Data[(p+2)*m : (p+3)*m]
		a3 := a.Data[(p+3)*m : (p+4)*m]
		b0 := b.Data[p*n : (p+1)*n]
		b1 := b.Data[(p+1)*n : (p+2)*n]
		b2 := b.Data[(p+2)*n : (p+3)*n]
		b3 := b.Data[(p+3)*n : (p+4)*n]
		i := lo
		for ; i+2 <= hi; i += 2 {
			v00, v01, v02, v03 := a0[i], a1[i], a2[i], a3[i]
			v10, v11, v12, v13 := a0[i+1], a1[i+1], a2[i+1], a3[i+1]
			z0 := v00 == 0 && v01 == 0 && v02 == 0 && v03 == 0
			z1 := v10 == 0 && v11 == 0 && v12 == 0 && v13 == 0
			switch {
			case z0 && z1:
			case z1:
				axpy4in(v00, v01, v02, v03, b0, b1, b2, b3, c.Data[i*n:(i+1)*n])
			case z0:
				axpy4in(v10, v11, v12, v13, b0, b1, b2, b3, c.Data[(i+1)*n:(i+2)*n])
			default:
				axpy4in2(v00, v01, v02, v03, v10, v11, v12, v13,
					b0, b1, b2, b3, c.Data[i*n:(i+1)*n], c.Data[(i+1)*n:(i+2)*n])
			}
		}
		for ; i < hi; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			axpy4in(v0, v1, v2, v3, b0, b1, b2, b3, c.Data[i*n:(i+1)*n])
		}
	}
	for ; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			if av := ap[i]; av != 0 {
				axpy(av, bp, c.Data[i*n:(i+1)*n])
			}
		}
	}
}

// bandBatchMatMul computes C_t (+0)= A_t·B_t for items t in [lo, hi). When
// causal is set, A_t is square and row i only consumes A_t[i][:i+1] — the
// attention context product P·V, where P's upper triangle is structurally
// zero and skipped entirely.
//
//photon:hotpath
func bandBatchMatMul(c, a, b *Matrix, batch, lo, hi int, causal bool) {
	m := c.Rows / batch
	k := a.Cols
	n := c.Cols
	for it := lo; it < hi; it++ {
		ca := Matrix{Rows: m, Cols: n, Data: c.Data[it*m*n : (it+1)*m*n]}
		aa := Matrix{Rows: m, Cols: k, Data: a.Data[it*m*k : (it+1)*m*k]}
		ba := Matrix{Rows: k, Cols: n, Data: b.Data[it*k*n : (it+1)*k*n]}
		if causal {
			causalMatMulItem(&ca, &aa, &ba)
		} else {
			bandMatMul(&ca, &aa, &ba, 0, m, false)
		}
	}
}

// causalMatMulItem computes C = A·B where row i of the square matrix A only
// contributes its first i+1 columns (its upper triangle is structurally
// zero). Halves the flops of the attention context and dQ products.
//
//photon:hotpath
func causalMatMulItem(c, a, b *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a.Data[i*k : (i+1)*k]
		end := i + 1
		p := 0
		for ; p+4 <= end; p += 4 {
			axpy4in(ai[p], ai[p+1], ai[p+2], ai[p+3],
				b.Data[p*n:(p+1)*n], b.Data[(p+1)*n:(p+2)*n],
				b.Data[(p+2)*n:(p+3)*n], b.Data[(p+3)*n:(p+4)*n], ci)
		}
		for ; p < end; p++ {
			if av := ai[p]; av != 0 {
				axpy(av, b.Data[p*n:(p+1)*n], ci)
			}
		}
	}
}

// bandBatchMatMulTransB computes C_t = A_t·B_tᵀ for items t in [lo, hi).
// When causal is set C_t is square and only C_t[i][:i+1] is written — the
// attention score product Q·Kᵀ (and dP = dCtx·Vᵀ), whose upper triangle is
// masked out by the softmax anyway. Entries above the diagonal are left
// untouched; the softmax kernels own them.
//
//photon:hotpath
func bandBatchMatMulTransB(c, a, b *Matrix, batch, lo, hi int, causal bool) {
	m := c.Rows / batch
	k := a.Cols
	n := c.Cols
	for it := lo; it < hi; it++ {
		if !causal {
			ca := Matrix{Rows: m, Cols: n, Data: c.Data[it*m*n : (it+1)*m*n]}
			aa := Matrix{Rows: m, Cols: k, Data: a.Data[it*m*k : (it+1)*m*k]}
			ba := Matrix{Rows: n, Cols: k, Data: b.Data[it*n*k : (it+1)*n*k]}
			bandMatMulTransB(&ca, &aa, &ba, 0, m)
			continue
		}
		cd := c.Data[it*m*n : (it+1)*m*n]
		ad := a.Data[it*m*k : (it+1)*m*k]
		bd := b.Data[it*n*k : (it+1)*n*k]
		for i := 0; i < m; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			end := i + 1
			j := 0
			for ; j+4 <= end; j += 4 {
				ci[j], ci[j+1], ci[j+2], ci[j+3] = dot4(ai,
					bd[j*k:(j+1)*k], bd[(j+1)*k:(j+2)*k],
					bd[(j+2)*k:(j+3)*k], bd[(j+3)*k:(j+4)*k])
			}
			for ; j < end; j++ {
				ci[j] = Dot(ai, bd[j*k:(j+1)*k])
			}
		}
	}
}

// bandBatchMatMulTransA computes C_t = A_tᵀ·B_t for items t in [lo, hi)
// (zeroing C_t first). The grouped zero-skip in the shared band kernel
// exploits the causal zeros in attention probabilities / score gradients
// (dV = Pᵀ·dCtx, dK = dSᵀ·Q).
//
//photon:hotpath
func bandBatchMatMulTransA(c, a, b *Matrix, batch, lo, hi int) {
	k := a.Rows / batch
	m := a.Cols
	n := b.Cols
	for it := lo; it < hi; it++ {
		cd := c.Data[it*m*n : (it+1)*m*n]
		for x := range cd {
			cd[x] = 0
		}
		ca := Matrix{Rows: m, Cols: n, Data: cd}
		aa := Matrix{Rows: k, Cols: m, Data: a.Data[it*k*m : (it+1)*k*m]}
		ba := Matrix{Rows: k, Cols: n, Data: b.Data[it*k*n : (it+1)*k*n]}
		bandMatMulTransAAccum(&ca, &aa, &ba, 0, m)
	}
}

// bandCausalSoftmax fuses the attention score epilogue for head-items in
// [lo, hi): scale the raw Q·Kᵀ dots, add the ALiBi bias slope·(j−i), apply
// the causal mask, and softmax each row in place. Masked positions are
// written as exact zeros so downstream kernels may treat the matrix as
// dense-lower-triangular.
//
//photon:hotpath
func bandCausalSoftmax(s *Matrix, heads int, sl []float32, scale float32, lo, hi int) {
	seq := s.Cols
	for it := lo; it < hi; it++ {
		slope := sl[it%heads]
		for i := 0; i < seq; i++ {
			row := s.Data[(it*seq+i)*seq : (it*seq+i+1)*seq]
			maxV := float32(math.Inf(-1))
			for j := 0; j <= i; j++ {
				v := row[j]*scale + slope*float32(j-i)
				row[j] = v
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for j := 0; j <= i; j++ {
				e := float32(math.Exp(float64(row[j] - maxV)))
				row[j] = e
				sum += float64(e)
			}
			inv := float32(1 / sum)
			for j := 0; j <= i; j++ {
				row[j] *= inv
			}
			for j := i + 1; j < seq; j++ {
				row[j] = 0
			}
		}
	}
}

// bandCausalSoftmaxGrad fuses the softmax backward for head-items in
// [lo, hi): given probabilities P (in p) and upstream dP (in dp, overwritten),
// computes dS_ij = scale·P_ij·(dP_ij − Σ_k P_ik·dP_ik) on the causal support
// and exact zeros above the diagonal. The score scale is folded in so the
// caller can feed dS straight into the dQ/dK products.
//
//photon:hotpath
func bandCausalSoftmaxGrad(dp, p *Matrix, scale float32, lo, hi int) {
	seq := dp.Cols
	for it := lo; it < hi; it++ {
		for i := 0; i < seq; i++ {
			off := (it*seq + i) * seq
			dpr := dp.Data[off : off+seq]
			pr := p.Data[off : off+seq]
			var dot float32
			for j := 0; j <= i; j++ {
				dot += pr[j] * dpr[j]
			}
			for j := 0; j <= i; j++ {
				dpr[j] = scale * pr[j] * (dpr[j] - dot)
			}
			for j := i + 1; j < seq; j++ {
				dpr[j] = 0
			}
		}
	}
}

//photon:hotpath
func bandSoftmaxRows(m *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		SoftmaxRow(m.Data[i*m.Cols : (i+1)*m.Cols])
	}
}

// --- exported batched / fused entry points ---

//photon:allocok
func checkBatch(rowsA, batch int, what string) int {
	if batch <= 0 || rowsA%batch != 0 {
		panic(fmt.Sprintf("tensor: %s: %d rows not divisible into %d items", what, rowsA, batch))
	}
	return rowsA / batch
}

// BatchMatMul computes C_t = A_t·B_t for t in [0, batch): A is the vertical
// stack of batch [m, k] items, B of [k, n] items, C of [m, n] items.
//
//photon:hotpath
func BatchMatMul(c, a, b *Matrix, batch int) {
	m := checkBatch(a.Rows, batch, "BatchMatMul")
	k := checkBatch(b.Rows, batch, "BatchMatMul")
	if a.Cols != k || c.Rows != batch*m || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: BatchMatMul shape mismatch %dx(%dx%d)·(%dx%d)->(%dx%d)",
			batch, m, a.Cols, k, b.Cols, c.Rows, c.Cols))
	}
	dispatch(batch, satMul(m, satMul(k, b.Cols)), task{kind: kBatchMatMul, c: *c, a: *a, b: *b, batch: batch})
}

// BatchMatMulTransB computes C_t = A_t·B_tᵀ for t in [0, batch): A stacks
// [m, k] items, B stacks [n, k] items, C stacks [m, n] items.
//
//photon:hotpath
func BatchMatMulTransB(c, a, b *Matrix, batch int) {
	m := checkBatch(a.Rows, batch, "BatchMatMulTransB")
	n := checkBatch(b.Rows, batch, "BatchMatMulTransB")
	if a.Cols != b.Cols || c.Rows != batch*m || c.Cols != n {
		panic(fmt.Sprintf("tensor: BatchMatMulTransB shape mismatch %dx(%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			batch, m, a.Cols, n, b.Cols, c.Rows, c.Cols))
	}
	dispatch(batch, satMul(m, satMul(n, a.Cols)), task{kind: kBatchMatMulTransB, c: *c, a: *a, b: *b, batch: batch})
}

// BatchMatMulCausal is BatchMatMul for square causal A items (attention
// P·V): row i of A_t only contributes columns [0, i], so the structurally
// zero upper triangle is never read.
//
//photon:hotpath
func BatchMatMulCausal(c, a, b *Matrix, batch int) {
	m := checkBatch(a.Rows, batch, "BatchMatMulCausal")
	k := checkBatch(b.Rows, batch, "BatchMatMulCausal")
	if a.Cols != k || m != k || c.Rows != batch*m || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: BatchMatMulCausal shape mismatch %dx(%dx%d)·(%dx%d)->(%dx%d)",
			batch, m, a.Cols, k, b.Cols, c.Rows, c.Cols))
	}
	dispatch(batch, satMul(m, satMul(k, b.Cols))/2, task{kind: kBatchMatMulCausal, c: *c, a: *a, b: *b, batch: batch})
}

// BatchMatMulTransBCausal is BatchMatMulTransB for square causal outputs
// (attention Q·Kᵀ): only C_t[i][j] with j ≤ i is computed; entries above the
// diagonal are left untouched for the masked-softmax kernel to own.
//
//photon:hotpath
func BatchMatMulTransBCausal(c, a, b *Matrix, batch int) {
	m := checkBatch(a.Rows, batch, "BatchMatMulTransBCausal")
	n := checkBatch(b.Rows, batch, "BatchMatMulTransBCausal")
	if a.Cols != b.Cols || m != n || c.Rows != batch*m || c.Cols != n {
		panic(fmt.Sprintf("tensor: BatchMatMulTransBCausal shape mismatch %dx(%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			batch, m, a.Cols, n, b.Cols, c.Rows, c.Cols))
	}
	dispatch(batch, satMul(m, satMul(n, a.Cols))/2, task{kind: kBatchMatMulTransBCausal, c: *c, a: *a, b: *b, batch: batch})
}

// BatchMatMulTransA computes C_t = A_tᵀ·B_t for t in [0, batch): A stacks
// [k, m] items, B stacks [k, n] items, C stacks [m, n] items.
//
//photon:hotpath
func BatchMatMulTransA(c, a, b *Matrix, batch int) {
	k := checkBatch(a.Rows, batch, "BatchMatMulTransA")
	if b.Rows != a.Rows || c.Rows != batch*a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: BatchMatMulTransA shape mismatch %dx(%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			batch, k, a.Cols, k, b.Cols, c.Rows, c.Cols))
	}
	dispatch(batch, satMul(k, satMul(a.Cols, b.Cols)), task{kind: kBatchMatMulTransA, c: *c, a: *a, b: *b, batch: batch})
}

// CausalSoftmaxRows applies the fused attention score epilogue in place: for
// each of batch·heads [seq, seq] score items, scale + ALiBi bias + causal
// mask + row softmax, writing exact zeros above the diagonal. slopes has one
// ALiBi slope per head; item t uses slopes[t % heads].
//
//photon:hotpath
func CausalSoftmaxRows(s *Matrix, batch, heads int, slopes []float32, scale float32) {
	items := batch * heads
	seq := s.Cols
	if len(slopes) != heads || checkBatch(s.Rows, items, "CausalSoftmaxRows") != seq {
		panic(fmt.Sprintf("tensor: CausalSoftmaxRows shape mismatch %d rows, %d cols, %d items, %d slopes",
			s.Rows, s.Cols, items, len(slopes)))
	}
	dispatch(items, satMul(seq, seq), task{kind: kCausalSoftmax, a: *s, heads: heads, sl: slopes, scale: scale})
}

// CausalSoftmaxGradRows applies the fused softmax backward in place: dp
// (upstream probability gradients) is overwritten with score gradients
// dS = scale·P∘(dP − rowsum(P∘dP)) on the causal support, zero above the
// diagonal. p holds the probabilities produced by CausalSoftmaxRows.
//
//photon:hotpath
func CausalSoftmaxGradRows(dp, p *Matrix, batch, heads int, scale float32) {
	items := batch * heads
	seq := dp.Cols
	if p.Rows != dp.Rows || p.Cols != dp.Cols || checkBatch(dp.Rows, items, "CausalSoftmaxGradRows") != seq {
		panic("tensor: CausalSoftmaxGradRows shape mismatch")
	}
	dispatch(items, satMul(seq, seq), task{kind: kCausalSoftmaxGrad, c: *dp, a: *p, scale: scale})
}

// SoftmaxRows applies SoftmaxRow to every row of m on the worker pool.
//
//photon:hotpath
func SoftmaxRows(m *Matrix) {
	dispatch(m.Rows, satMul(m.Cols, 16), task{kind: kSoftmaxRows, a: *m})
}

// --- register-tiled micro-kernels ---

// axpy4 computes y0..y3 += a0..a3 * x: one streamed load of x feeds four
// output rows (the 4-row register tile of the sgemm kernel).
//
//photon:hotpath
func axpy4(a0, a1, a2, a3 float32, x, y0, y1, y2, y3 []float32) {
	n := len(x)
	y0 = y0[:n]
	y1 = y1[:n]
	y2 = y2[:n]
	y3 = y3[:n]
	for i, xv := range x {
		y0[i] += a0 * xv
		y1[i] += a1 * xv
		y2[i] += a2 * xv
		y3[i] += a3 * xv
	}
}

// axpy4in computes y += a0·x0 + a1·x1 + a2·x2 + a3·x3: four streamed input
// rows accumulate into one output row held hot.
//
//photon:hotpath
func axpy4in(a0, a1, a2, a3 float32, x0, x1, x2, x3, y []float32) {
	n := len(y)
	x0 = x0[:n]
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	for i := range y {
		y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

// dot4 computes four dot products of x against y0..y3 in one pass over x.
//
//photon:hotpath
func dot4(x, y0, y1, y2, y3 []float32) (s0, s1, s2, s3 float32) {
	n := len(x)
	y0 = y0[:n]
	y1 = y1[:n]
	y2 = y2[:n]
	y3 = y3[:n]
	for i, xv := range x {
		s0 += xv * y0[i]
		s1 += xv * y1[i]
		s2 += xv * y2[i]
		s3 += xv * y3[i]
	}
	return
}

// axpy4p2 fuses two axpy4 steps: y0..y3 += a0..a3·x + b0..b3·z. Each loaded
// and stored C element absorbs two FMAs, halving the dominant store traffic
// of the sgemm inner loop.
//
//photon:hotpath
func axpy4p2(a0, a1, a2, a3, b0, b1, b2, b3 float32, x, z, y0, y1, y2, y3 []float32) {
	n := len(x)
	z = z[:n]
	y0 = y0[:n]
	y1 = y1[:n]
	y2 = y2[:n]
	y3 = y3[:n]
	for i, xv := range x {
		zv := z[i]
		y0[i] += a0*xv + b0*zv
		y1[i] += a1*xv + b1*zv
		y2[i] += a2*xv + b2*zv
		y3[i] += a3*xv + b3*zv
	}
}

// axpy4in2 fuses two axpy4in accumulations sharing the same four X rows:
// y += a0..a3·x0..x3 and z += b0..b3·x0..x3. The X loads are paid once for
// both output rows.
//
//photon:hotpath
func axpy4in2(a0, a1, a2, a3, b0, b1, b2, b3 float32, x0, x1, x2, x3, y, z []float32) {
	n := len(y)
	x0 = x0[:n]
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	z = z[:n]
	for i := range y {
		v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
		y[i] += a0*v0 + a1*v1 + a2*v2 + a3*v3
		z[i] += b0*v0 + b1*v1 + b2*v2 + b3*v3
	}
}

// dot4x2 computes eight dot products — two A rows against four B rows — in
// one fused pass, paying each B load once for two accumulator sets.
//
//photon:hotpath
func dot4x2(x0, x1, y0, y1, y2, y3 []float32) (s00, s01, s02, s03, s10, s11, s12, s13 float32) {
	n := len(x0)
	x1 = x1[:n]
	y0 = y0[:n]
	y1 = y1[:n]
	y2 = y2[:n]
	y3 = y3[:n]
	for i, v0 := range x0 {
		v1 := x1[i]
		b0, b1, b2, b3 := y0[i], y1[i], y2[i], y3[i]
		s00 += v0 * b0
		s01 += v0 * b1
		s02 += v0 * b2
		s03 += v0 * b3
		s10 += v1 * b0
		s11 += v1 * b1
		s12 += v1 * b2
		s13 += v1 * b3
	}
	return
}
