package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// itemView returns item t of a vertically stacked batch matrix.
func itemView(m *Matrix, batch, t int) *Matrix {
	rows := m.Rows / batch
	return FromSlice(rows, m.Cols, m.Data[t*rows*m.Cols:(t+1)*rows*m.Cols])
}

// randShapes generates batched shapes including non-multiples of the 4-wide
// register tiles and the kcBlock cache block (sizes like 1, 3, 129 exercise
// every remainder path).
func randShapes(r *rand.Rand) (batch, m, k, n int) {
	dims := []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 129}
	pick := func() int { return dims[r.Intn(len(dims))] }
	return 1 + r.Intn(4), pick(), pick(), pick()
}

func TestBatchMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch, m, k, n := randShapes(r)
		a := randMatrix(rng, batch*m, k)
		b := randMatrix(rng, batch*k, n)
		c := randMatrix(rng, batch*m, n) // garbage must be overwritten
		BatchMatMul(c, a, b, batch)
		for bt := 0; bt < batch; bt++ {
			want := naiveMatMul(itemView(a, batch, bt), itemView(b, batch, bt))
			got := itemView(c, batch, bt)
			for i := range got.Data {
				if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4*float64(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMatMulTransBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch, m, k, n := randShapes(r)
		a := randMatrix(rng, batch*m, k)
		b := randMatrix(rng, batch*n, k)
		c := NewMatrix(batch*m, n)
		BatchMatMulTransB(c, a, b, batch)
		for bt := 0; bt < batch; bt++ {
			want := naiveMatMul(itemView(a, batch, bt), transpose(itemView(b, batch, bt)))
			got := itemView(c, batch, bt)
			for i := range got.Data {
				if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4*float64(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMatMulTransAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch, m, k, n := randShapes(r)
		a := randMatrix(rng, batch*k, m)
		b := randMatrix(rng, batch*k, n)
		c := randMatrix(rng, batch*m, n) // garbage must be overwritten
		BatchMatMulTransA(c, a, b, batch)
		for bt := 0; bt < batch; bt++ {
			want := naiveMatMul(transpose(itemView(a, batch, bt)), itemView(b, batch, bt))
			got := itemView(c, batch, bt)
			for i := range got.Data {
				if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4*float64(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Causal variants: on inputs whose upper triangle is zeroed (for A) the
// causal product must equal the dense product restricted to j ≤ i.
func TestCausalBatchKernelsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, seq := range []int{1, 2, 3, 5, 8, 13, 33} {
		const batch, hd = 3, 7
		q := randMatrix(rng, batch*seq, hd)
		k := randMatrix(rng, batch*seq, hd)
		// Scores: causal kernel writes only j ≤ i.
		s := NewMatrix(batch*seq, seq)
		Fill(s.Data, float32(math.NaN())) // untouched entries must not be read below
		BatchMatMulTransBCausal(s, q, k, batch)
		for bt := 0; bt < batch; bt++ {
			want := naiveMatMul(itemView(q, batch, bt), transpose(itemView(k, batch, bt)))
			got := itemView(s, batch, bt)
			for i := 0; i < seq; i++ {
				for j := 0; j <= i; j++ {
					if !almostEqual(float64(got.At(i, j)), float64(want.At(i, j)), 1e-4*hd) {
						t.Fatalf("seq %d item %d score (%d,%d): got %g want %g", seq, bt, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
		// Context: P·V with a lower-triangular P must match the dense product.
		p := randMatrix(rng, batch*seq, seq)
		for bt := 0; bt < batch; bt++ {
			for i := 0; i < seq; i++ {
				for j := i + 1; j < seq; j++ {
					itemView(p, batch, bt).Set(i, j, 0)
				}
			}
		}
		v := randMatrix(rng, batch*seq, hd)
		ctx := randMatrix(rng, batch*seq, hd) // garbage must be overwritten
		BatchMatMulCausal(ctx, p, v, batch)
		for bt := 0; bt < batch; bt++ {
			want := naiveMatMul(itemView(p, batch, bt), itemView(v, batch, bt))
			got := itemView(ctx, batch, bt)
			for i := range got.Data {
				if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4*float64(seq)) {
					t.Fatalf("seq %d item %d ctx[%d]: got %g want %g", seq, bt, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestCausalSoftmaxRowsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const batch, heads, seq = 2, 3, 9
	slopes := []float32{0.5, 0.25, 0.125}
	scale := float32(0.3)
	s := randMatrix(rng, batch*heads*seq, seq)
	ref := s.Clone()
	CausalSoftmaxRows(s, batch, heads, slopes, scale)
	for it := 0; it < batch*heads; it++ {
		slope := slopes[it%heads]
		for i := 0; i < seq; i++ {
			row := make([]float32, i+1)
			for j := 0; j <= i; j++ {
				row[j] = ref.At(it*seq+i, j)*scale + slope*float32(j-i)
			}
			SoftmaxRow(row)
			var sum float64
			for j := 0; j < seq; j++ {
				got := float64(s.At(it*seq+i, j))
				if j <= i {
					if !almostEqual(got, float64(row[j]), 1e-5) {
						t.Fatalf("item %d row %d col %d: got %g want %g", it, i, j, got, row[j])
					}
				} else if got != 0 {
					t.Fatalf("item %d row %d col %d: masked entry %g != 0", it, i, j, got)
				}
				sum += got
			}
			if !almostEqual(sum, 1, 1e-4) {
				t.Fatalf("item %d row %d sums to %g", it, i, sum)
			}
		}
	}
}

// The fused softmax gradient must match the Jacobian-vector product
// dS_ij = scale·P_ij·(dP_ij − Σ_k P_ik·dP_ik) computed naively.
func TestCausalSoftmaxGradRowsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	const batch, heads, seq = 2, 2, 7
	scale := float32(0.7)
	slopes := []float32{0.5, 0.25}
	p := randMatrix(rng, batch*heads*seq, seq)
	CausalSoftmaxRows(p, batch, heads, slopes, 1) // real probabilities, causal support
	dp := randMatrix(rng, batch*heads*seq, seq)
	want := NewMatrix(batch*heads*seq, seq)
	for r := 0; r < p.Rows; r++ {
		i := r % seq
		var dot float64
		for j := 0; j <= i; j++ {
			dot += float64(p.At(r, j)) * float64(dp.At(r, j))
		}
		for j := 0; j <= i; j++ {
			want.Set(r, j, scale*p.At(r, j)*(dp.At(r, j)-float32(dot)))
		}
	}
	CausalSoftmaxGradRows(dp, p, batch, heads, scale)
	for r := 0; r < p.Rows; r++ {
		for j := 0; j < seq; j++ {
			if !almostEqual(float64(dp.At(r, j)), float64(want.At(r, j)), 1e-5) {
				t.Fatalf("row %d col %d: got %g want %g", r, j, dp.At(r, j), want.At(r, j))
			}
		}
	}
}

func TestSoftmaxRowsMatchesSoftmaxRow(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	m := randMatrix(rng, 17, 11)
	want := m.Clone()
	for i := 0; i < want.Rows; i++ {
		SoftmaxRow(want.Row(i))
	}
	SoftmaxRows(m)
	matricesClose(t, m, want, 1e-6)
}

func TestBatchShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"rows-not-divisible": func() { BatchMatMul(NewMatrix(3, 2), NewMatrix(3, 2), NewMatrix(3, 2), 2) },
		"inner-mismatch":     func() { BatchMatMul(NewMatrix(4, 2), NewMatrix(4, 3), NewMatrix(4, 2), 2) },
		"causal-not-square":  func() { BatchMatMulTransBCausal(NewMatrix(4, 3), NewMatrix(4, 5), NewMatrix(6, 5), 2) },
		"softmax-slopes":     func() { CausalSoftmaxRows(NewMatrix(4, 2), 1, 2, []float32{1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// satMul must saturate instead of overflowing: the volume hint for a
// paper-scale gradient matmul (rows · cols²) exceeds int64 and previously
// wrapped negative, silently disabling the parallel path.
func TestSatMulSaturates(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, maxInt, 0},
		{maxInt, 0, 0},
		{1, maxInt, maxInt},
		{maxInt, 2, maxInt},
		{1 << 32, 1 << 32, maxInt},
		{123, 456, 123 * 456},
	}
	for _, c := range cases {
		if got := satMul(c.a, c.b); got != c.want {
			t.Errorf("satMul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Regression: a volume hint near MaxInt must not overflow the serial/parallel
// decision — every row must still be processed exactly once.
func TestParallelHugeVolumeHintCoversAllRows(t *testing.T) {
	const rows = 1000
	var counts [rows]int32
	var fn = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	}
	Parallel(rows, maxInt, fn)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("row %d processed %d times", i, c)
		}
	}
}

// The pool must degrade to inline execution under GOMAXPROCS(1) — the mode
// testing.AllocsPerRun measures in — and still cover every band.
func TestParallelSingleProcInline(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var counts [64]int32
	fn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i]++ // no atomics: must run on the calling goroutine
		}
	}
	Parallel(len(counts), maxInt, fn)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("row %d processed %d times", i, c)
		}
	}
}

// Large shapes above parallelThreshold: on multi-core machines these go
// through the worker pool (band splitting + channel dispatch), so this is
// the correctness test for the parallel path itself. Odd sizes exercise the
// band-boundary and register-tile remainders at scale.
func TestParallelKernelsLargeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large-shape kernel comparison")
	}
	rng := rand.New(rand.NewSource(31))
	m, k, n := 203, 157, 211
	a := randMatrix(rng, m, k)
	b := randMatrix(rng, k, n)
	c := NewMatrix(m, n)
	MatMul(c, a, b)
	matricesClose(t, c, naiveMatMul(a, b), 1e-2)

	bt := randMatrix(rng, n, k)
	ct := NewMatrix(m, n)
	MatMulTransB(ct, a, bt)
	matricesClose(t, ct, naiveMatMul(a, transpose(bt)), 1e-2)

	at := randMatrix(rng, k, m)
	ca := NewMatrix(m, n)
	bb := randMatrix(rng, k, n)
	MatMulTransA(ca, at, bb)
	matricesClose(t, ca, naiveMatMul(transpose(at), bb), 1e-2)

	// Batched causal pipeline at attention scale (items over the pool).
	const items, seq, hd, heads = 8, 96, 16, 4
	q := randMatrix(rng, items*seq, hd)
	kk := randMatrix(rng, items*seq, hd)
	v := randMatrix(rng, items*seq, hd)
	s := NewMatrix(items*seq, seq)
	BatchMatMulTransBCausal(s, q, kk, items)
	CausalSoftmaxRows(s, items/heads, heads, testSlopes(heads), 0.25)
	ctx := NewMatrix(items*seq, hd)
	BatchMatMulCausal(ctx, s, v, items)
	for it := 0; it < items; it++ {
		for i := 0; i < seq; i++ {
			var sum float64
			for j := 0; j <= i; j++ {
				sum += float64(s.At(it*seq+i, j))
			}
			if !almostEqual(sum, 1, 1e-4) {
				t.Fatalf("item %d row %d: probabilities sum to %g", it, i, sum)
			}
		}
	}
}
