package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// naiveMatMul is the reference O(mnk) implementation used to validate the
// blocked/parallel kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for p := 0; p < a.Cols; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	RandNormal(rng, m.Data, 0, 1)
	return m
}

func transpose(m *Matrix) *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

func matricesClose(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape mismatch: got %dx%d want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), tol) {
			t.Fatalf("element %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 65, 17}, {128, 64, 96}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		c := NewMatrix(m, n)
		MatMul(c, a, b)
		matricesClose(t, c, naiveMatMul(a, b), 1e-3)
	}
}

func TestMatMulOverwritesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 4, 4)
	b := randMatrix(rng, 4, 4)
	c := randMatrix(rng, 4, 4) // pre-filled garbage must be overwritten
	MatMul(c, a, b)
	matricesClose(t, c, naiveMatMul(a, b), 1e-4)
}

func TestMatMulAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 5, 7)
	b := randMatrix(rng, 7, 6)
	c := randMatrix(rng, 5, 6)
	want := naiveMatMul(a, b)
	Add(want.Data, c.Data)
	MatMulAccum(c, a, b)
	matricesClose(t, c, want, 1e-3)
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 9, 4) // k x m
	b := randMatrix(rng, 9, 5) // k x n
	c := NewMatrix(4, 5)
	MatMulTransA(c, a, b)
	matricesClose(t, c, naiveMatMul(transpose(a), b), 1e-3)
}

func TestMatMulTransAAccumAddsToExisting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 6, 3)
	b := randMatrix(rng, 6, 2)
	c := randMatrix(rng, 3, 2)
	want := naiveMatMul(transpose(a), b)
	Add(want.Data, c.Data)
	MatMulTransAAccum(c, a, b)
	matricesClose(t, c, want, 1e-3)
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 8, 3) // m x k
	b := randMatrix(rng, 5, 3) // n x k
	c := NewMatrix(8, 5)
	MatMulTransB(c, a, b)
	matricesClose(t, c, naiveMatMul(a, transpose(b)), 1e-3)
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestSoftmaxRow(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	SoftmaxRow(x)
	var sum float64
	for _, v := range x {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax element out of (0,1): %v", v)
		}
		sum += float64(v)
	}
	if !almostEqual(sum, 1, 1e-5) {
		t.Fatalf("softmax does not sum to 1: %v", sum)
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			t.Fatal("softmax should be monotone for monotone inputs")
		}
	}
}

func TestSoftmaxRowStability(t *testing.T) {
	// Very large logits must not overflow.
	x := []float32{1e4, 1e4 + 1}
	SoftmaxRow(x)
	if math.IsNaN(float64(x[0])) || math.IsNaN(float64(x[1])) {
		t.Fatal("softmax produced NaN for large logits")
	}
	if !almostEqual(float64(x[0]+x[1]), 1, 1e-5) {
		t.Fatal("softmax of large logits does not sum to 1")
	}
}

func TestSoftmaxRowEmpty(t *testing.T) {
	SoftmaxRow(nil) // must not panic
}

func TestLogSumExpRow(t *testing.T) {
	x := []float32{0, 0, 0, 0}
	got := LogSumExpRow(x)
	if !almostEqual(got, math.Log(4), 1e-9) {
		t.Fatalf("LogSumExp of zeros: got %v want %v", got, math.Log(4))
	}
	if !math.IsInf(LogSumExpRow(nil), -1) {
		t.Fatal("LogSumExp of empty slice should be -Inf")
	}
}

func TestDotAxpyScale(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	if got := Dot(x, y); !almostEqual(float64(got), 32, 1e-6) {
		t.Fatalf("Dot: got %v want 32", got)
	}
	Axpy(2, x, y)
	want := []float32{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy element %d: got %v want %v", i, y[i], want[i])
		}
	}
	Scale(0.5, y)
	want = []float32{3, 4.5, 6}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale element %d: got %v want %v", i, y[i], want[i])
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float32{3, 4}); !almostEqual(got, 5, 1e-9) {
		t.Fatalf("Norm2: got %v want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil): got %v want 0", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float32{1, 5, 2, 5}); got != 1 {
		t.Fatalf("ArgMax ties should return first: got %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil): got %d want -1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, make([]float32, 3))
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, checked through the kernels.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		ab := NewMatrix(m, n)
		MatMul(ab, a, b)
		btat := naiveMatMul(transpose(b), transpose(a))
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(float64(ab.At(i, j)), float64(btat.At(j, i)), 1e-3) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is invariant to adding a constant to every logit.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		x := make([]float32, n)
		y := make([]float32, n)
		shift := float32(r.NormFloat64() * 10)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = x[i] + shift
		}
		SoftmaxRow(x)
		SoftmaxRow(y)
		for i := range x {
			if !almostEqual(float64(x[i]), float64(y[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2 is absolutely homogeneous: ||a·x|| == |a|·||x||.
func TestNorm2HomogeneityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		a := float32(r.NormFloat64())
		scaled := make([]float32, n)
		copy(scaled, x)
		Scale(a, scaled)
		return almostEqual(Norm2(scaled), math.Abs(float64(a))*Norm2(x), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float32, 200000)
	RandNormal(rng, x, 2, 3)
	var mean float64
	for _, v := range x {
		mean += float64(v)
	}
	mean /= float64(len(x))
	var varr float64
	for _, v := range x {
		d := float64(v) - mean
		varr += d * d
	}
	varr /= float64(len(x))
	if !almostEqual(mean, 2, 0.05) {
		t.Fatalf("RandNormal mean: got %v want 2", mean)
	}
	if !almostEqual(math.Sqrt(varr), 3, 0.05) {
		t.Fatalf("RandNormal std: got %v want 3", math.Sqrt(varr))
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float32, 10000)
	RandUniform(rng, x, -1, 1)
	for _, v := range x {
		if v < -1 || v >= 1 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}
