package tensor

import (
	"math/rand"
	"testing"
)

// Transformer-step shapes: activations[N,k]·weights[k,n] with N = B·T.
var mmShapes = []struct {
	name    string
	m, k, n int
}{
	{"512x64x256", 512, 64, 256},   // FC1 forward
	{"512x256x64", 512, 256, 64},   // FC2 forward
	{"512x64x192", 512, 64, 192},   // fused QKV forward
	{"128x128x128", 128, 128, 128}, // square reference
}

func BenchmarkMatMul(b *testing.B) {
	for _, sh := range mmShapes {
		b.Run(sh.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randMatrix(rng, sh.m, sh.k)
			bb := randMatrix(rng, sh.k, sh.n)
			c := NewMatrix(sh.m, sh.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(c, a, bb)
			}
			b.StopTimer()
			flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
			b.ReportMetric(flops/(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "flops/ns")
		})
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 512, 64)
	bb := randMatrix(rng, 256, 64)
	c := NewMatrix(512, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(c, a, bb)
	}
}

// BenchmarkBatchAttentionKernels times the three batched kernels that make
// up one attention forward at bench shape (B·H=8 items, T=256, d=16).
func BenchmarkBatchAttentionKernels(b *testing.B) {
	const items, seq, hd, heads = 8, 256, 16, 4
	rng := rand.New(rand.NewSource(3))
	q := randMatrix(rng, items*seq, hd)
	k := randMatrix(rng, items*seq, hd)
	v := randMatrix(rng, items*seq, hd)
	s := NewMatrix(items*seq, seq)
	ctx := NewMatrix(items*seq, hd)
	slopes := testSlopes(heads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchMatMulTransBCausal(s, q, k, items)
		CausalSoftmaxRows(s, items/heads, heads, slopes, 0.25)
		BatchMatMulCausal(ctx, s, v, items)
	}
}

// testSlopes mirrors nn.AlibiSlopes for benchmarks without an import cycle.
func testSlopes(heads int) []float32 {
	slopes := make([]float32, heads)
	for i := range slopes {
		slopes[i] = 1 / float32(int(2)<<i)
	}
	return slopes
}
