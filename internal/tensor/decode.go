package tensor

import (
	"fmt"
	"math"
)

// DecodeItem is one (sequence × head) unit of KV-cached incremental
// attention. Unlike the training-path batched kernels, items are ragged: each
// carries its own query count and cached-key count, which is exactly the
// shape a continuous-batching decode step produces — freshly admitted
// sequences prefill many query rows at once while steady-state sequences
// decode one row against a long cached prefix.
//
// Q holds QRows contiguous query rows of width d (= len(Ctx)/QRows); K and V
// hold KRows cached rows each, with the rows for the current call's queries
// already appended, so query row r sits at absolute position
// p = KRows − QRows + r and attends keys [0, p]. Probs is QRows×KRows
// row-major scratch; entries above each row's causal end are left untouched.
type DecodeItem struct {
	Q     []float32 // QRows·d query rows
	K     []float32 // KRows·d cached key rows (new rows appended)
	V     []float32 // KRows·d cached value rows
	Probs []float32 // QRows·KRows attention-probability scratch
	Ctx   []float32 // QRows·d output context rows
	QRows int
	KRows int
	Slope float32 // ALiBi slope of the item's head
}

// AttendDecode runs the fused incremental-attention epilogue for every item:
// scores = scale·Q·Kᵀ + ALiBi bias on the causal support, row softmax, and
// context = probs·V, all in one pass per item. Items are independent and are
// dispatched across the worker pool; operand slices travel in the items
// slice, so a steady-state call allocates nothing.
//
//photon:hotpath
func AttendDecode(items []DecodeItem, scale float32) {
	if len(items) == 0 {
		return
	}
	vol := 0
	for i := range items {
		it := &items[i]
		if it.QRows <= 0 || it.KRows < it.QRows {
			panic(fmt.Sprintf("tensor: AttendDecode item %d: %d query rows, %d key rows", i, it.QRows, it.KRows))
		}
		d := len(it.Ctx) / it.QRows
		if d == 0 || len(it.Ctx) != it.QRows*d || len(it.Q) != it.QRows*d ||
			len(it.K) != it.KRows*d || len(it.V) != it.KRows*d || len(it.Probs) != it.QRows*it.KRows {
			panic(fmt.Sprintf("tensor: AttendDecode item %d shape mismatch (q=%d k=%d v=%d probs=%d ctx=%d, qrows=%d krows=%d)",
				i, len(it.Q), len(it.K), len(it.V), len(it.Probs), len(it.Ctx), it.QRows, it.KRows))
		}
		// Two matrix products per row pair plus the softmax pass.
		vol += satMul(it.QRows, satMul(it.KRows, 2*d))
	}
	dispatch(len(items), vol/len(items), task{kind: kAttendDecode, ditems: items, scale: scale})
}

// bandAttendDecode runs items [lo, hi) of a decode dispatch.
//
//photon:hotpath
func bandAttendDecode(items []DecodeItem, scale float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		it := &items[i]
		d := len(it.Ctx) / it.QRows
		for r := 0; r < it.QRows; r++ {
			pos := it.KRows - it.QRows + r
			end := pos + 1
			q := it.Q[r*d : (r+1)*d]
			probs := it.Probs[r*it.KRows : r*it.KRows+end]

			// Scores against the causal prefix.
			j := 0
			for ; j+4 <= end; j += 4 {
				probs[j], probs[j+1], probs[j+2], probs[j+3] = dot4(q,
					it.K[j*d:(j+1)*d], it.K[(j+1)*d:(j+2)*d],
					it.K[(j+2)*d:(j+3)*d], it.K[(j+3)*d:(j+4)*d])
			}
			for ; j < end; j++ {
				probs[j] = Dot(q, it.K[j*d:(j+1)*d])
			}

			// Scale + ALiBi bias + softmax, matching bandCausalSoftmax.
			maxV := float32(math.Inf(-1))
			for j := 0; j < end; j++ {
				v := probs[j]*scale + it.Slope*float32(j-pos)
				probs[j] = v
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for j := 0; j < end; j++ {
				e := float32(math.Exp(float64(probs[j] - maxV)))
				probs[j] = e
				sum += float64(e)
			}
			inv := float32(1 / sum)
			for j := 0; j < end; j++ {
				probs[j] *= inv
			}

			// Context: probs·V over the causal prefix.
			ctx := it.Ctx[r*d : (r+1)*d]
			for x := range ctx {
				ctx[x] = 0
			}
			j = 0
			for ; j+4 <= end; j += 4 {
				axpy4in(probs[j], probs[j+1], probs[j+2], probs[j+3],
					it.V[j*d:(j+1)*d], it.V[(j+1)*d:(j+2)*d],
					it.V[(j+2)*d:(j+3)*d], it.V[(j+3)*d:(j+4)*d], ctx)
			}
			for ; j < end; j++ {
				if pv := probs[j]; pv != 0 {
					axpy(pv, it.V[j*d:(j+1)*d], ctx)
				}
			}
		}
	}
}
