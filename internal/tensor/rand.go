package tensor

import "math/rand"

// RandNormal fills x with samples from N(mean, std²) drawn from rng.
// Using an explicit rng keeps model initialization deterministic per seed,
// which the experiment harness relies on for reproducibility.
func RandNormal(rng *rand.Rand, x []float32, mean, std float64) {
	for i := range x {
		x[i] = float32(mean + std*rng.NormFloat64())
	}
}

// RandUniform fills x with samples from U[lo, hi).
func RandUniform(rng *rand.Rand, x []float32, lo, hi float64) {
	span := hi - lo
	for i := range x {
		x[i] = float32(lo + span*rng.Float64())
	}
}
