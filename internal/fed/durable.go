package fed

// Durable control plane: the journal wraps the ckpt write-ahead log with
// fed-level record semantics, and the replay functions fold a recovered
// record stream back into aggregator / relay state. The protocol per round:
//
//	round_open(round, epoch, cohort IDs)
//	member_update(round, member, decoded vector)      — one per arrival
//	outer_step(round, post-step global params)        — aggregation applied
//	state_snapshot("outer", optimizer state)          — momentum buffers
//	round_commit(round, epoch)                        — fsync barrier
//
// Everything before round_commit is cheap (buffered appends); the commit
// record is the only fsync, so journaling adds one disk flush per round.
// A crash between records leaves a prefix the WAL replays verbatim: the
// resumed aggregator re-opens the in-flight round, keeps the journaled
// member updates, and only re-asks members whose updates were lost.
//
// Relays journal a smaller protocol: the encoded upstream reply bytes
// (member "up"), the upstream codec's error-feedback residual
// (state_snapshot "codec"), and a commit per served round. Re-encoding an
// update after a crash would double-apply the top-k residual, so the relay
// journals the exact bytes it sent and replays them on redelivery.
//
// An async (FedBuff-mode) aggregator journals its own protocol per version:
//
//	round_open(max leased task, member "lease")       — task-ID lease
//	buffer_fold(task, trained version, member, vec)   — one per folded update
//	outer_step(version, post-step global params)      — buffer committed
//	state_snapshot("outer", optimizer state)          — momentum buffers
//	version_commit(version, epoch)                    — fsync barrier
//
// The fold records between two version commits are the pending buffer; a
// crash mid-buffer replays them and the resumed aggregator re-folds without
// re-asking the members. Post-step state is only trusted once its
// version_commit sealed it — otherwise the step is redone from the journaled
// folds, which is bit-exact (same updates, same order, same weights). The
// lease records ensure a restarted aggregator never reuses a dispatch task
// ID that may have trained a member before the crash.

import (
	"encoding/binary"
	"log"
	"strconv"

	"photon/internal/ckpt"
	"photon/internal/link"
	"photon/internal/obsv"
)

// snapOuter is the Member key for outer-optimizer state snapshots.
const snapOuter = "outer"

// snapCodec is the Member key for upstream-codec residual snapshots.
const snapCodec = "codec"

// upstreamMember is the Member key for a relay's journaled encoded reply.
const upstreamMember = "up"

// asyncLeaseMember is the Member key marking a round_open record as an async
// task-ID lease rather than a sync cohort open (sync opens never set Member).
const asyncLeaseMember = "lease"

// journal provides nil-safe, typed appends over a ckpt.WAL. A nil *journal
// is the "durability off" mode: every method is a no-op, so call sites need
// no branching.
type journal struct {
	wal *ckpt.WAL
}

func newJournal(w *ckpt.WAL) *journal {
	if w == nil {
		return nil
	}
	return &journal{wal: w}
}

func (j *journal) enabled() bool { return j != nil && j.wal != nil }

func (j *journal) close() {
	if j.enabled() {
		j.wal.Close()
	}
}

// roundOpen journals the start of a round with its sampled cohort.
func (j *journal) roundOpen(round int, epoch uint64, cohort []string) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Append(&ckpt.Record{Type: ckpt.RecRoundOpen, Round: round, Epoch: epoch, IDs: cohort})
}

// memberUpdate journals one decoded client update as it arrives.
func (j *journal) memberUpdate(round int, member string, vec []float32) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Append(&ckpt.Record{Type: ckpt.RecMemberUpdate, Round: round, Member: member, Vec: vec})
}

// outerStep journals the post-step global parameters plus the outer
// optimizer's state. Replay restores the params bit-for-bit instead of
// re-running the order-sensitive float32 aggregation.
func (j *journal) outerStep(round int, global []float32, outer OuterOpt) error {
	if !j.enabled() {
		return nil
	}
	if err := j.wal.Append(&ckpt.Record{Type: ckpt.RecOuterStep, Round: round, Vec: global}); err != nil {
		return err
	}
	if st := snapshotOuter(outer); st != nil {
		return j.wal.Append(&ckpt.Record{Type: ckpt.RecStateSnapshot, Round: round, Member: snapOuter, Vec: st})
	}
	return nil
}

// roundCommit seals a round; this is the journal's only fsync.
func (j *journal) roundCommit(round int, epoch uint64) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Append(&ckpt.Record{Type: ckpt.RecRoundCommit, Round: round, Epoch: epoch})
}

// codecSnapshot journals a stateful upstream codec's residual (relay side).
func (j *journal) codecSnapshot(round int, state []float32) error {
	if !j.enabled() || len(state) == 0 {
		return nil
	}
	return j.wal.Append(&ckpt.Record{Type: ckpt.RecStateSnapshot, Round: round, Member: snapCodec, Vec: state})
}

// upstreamReply journals the exact encoded bytes a relay sent upstream for
// a round, so redelivery after a crash re-sends them without re-encoding
// (which would double-apply an error-feedback codec's residual). cohort is
// the update count folded into the reply, stashed in the Epoch field so
// redelivery can restamp the CohortKey meta.
func (j *journal) upstreamReply(round, cohort int, p link.EncodedPayload) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Append(&ckpt.Record{
		Type: ckpt.RecMemberUpdate, Round: round, Epoch: uint64(cohort),
		Member: upstreamMember, Data: encodePayloadBytes(p),
	})
}

// bufferFold journals one update folded into the async staleness-weighted
// buffer: the dispatch task ID, the model version the member trained on, and
// the decoded vector. Appended before the in-memory fold, so a crash after
// the append loses nothing and a crash before it folds nothing.
func (j *journal) bufferFold(task int, member string, trainedVersion uint64, vec []float32) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Append(&ckpt.Record{Type: ckpt.RecBufferFold, Round: task, Epoch: trainedVersion, Member: member, Vec: vec})
}

// versionCommit seals one async model-version commit; like roundCommit it is
// the journal's fsync barrier.
func (j *journal) versionCommit(version int, epoch uint64) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Append(&ckpt.Record{Type: ckpt.RecVersionCommit, Round: version, Epoch: epoch})
}

// taskLease journals (and fsyncs) a dispatch task-ID lease: every ID up to
// and including leasedThrough may be handed out by this process life. A
// restarted aggregator resumes its counter past the lease, so a task ID that
// was in flight at the crash — and may have advanced a member's data stream
// — is never minted a second time.
func (j *journal) taskLease(leasedThrough int) error {
	if !j.enabled() {
		return nil
	}
	if err := j.wal.Append(&ckpt.Record{Type: ckpt.RecRoundOpen, Round: leasedThrough, Member: asyncLeaseMember}); err != nil {
		return err
	}
	return j.wal.Sync()
}

// compact folds committed state into the base checkpoint and truncates the
// log; carry holds any records for the still-open round.
func (j *journal) compact(base *ckpt.Checkpoint, carry []ckpt.Record) error {
	if !j.enabled() {
		return nil
	}
	return j.wal.Compact(base, carry)
}

// openRound is a partially-completed round reconstructed from the WAL.
type openRound struct {
	round   int
	epoch   uint64
	cohort  []string             // journaled cohort member IDs
	updates map[string][]float32 // journaled decoded updates by member
	order   []string             // arrival order, for deterministic averaging
	stepped bool                 // outer step already applied pre-crash

	// Post-step state journaled for this round before the crash. It is
	// kept on the open round — not folded into the resume state — because
	// a crash can land between the outer_step record and its state
	// snapshot: the params would be post-step but the momentum pre-step.
	// The resume path only trusts the pair when it is complete (snapped,
	// or the outer optimizer is stateless); otherwise it redoes the step
	// from the journaled updates.
	postGlobal []float32
	postOuter  []float32
	snapped    bool
}

// serverResume is the aggregator state recovered from a WAL replay.
type serverResume struct {
	committed int        // last committed round (0: none)
	epoch     uint64     // membership epoch at last commit
	global    []float32  // post-step params as of the newest outer_step / base
	outer     []float32  // outer optimizer state as of the newest snapshot
	open      *openRound // in-flight round, nil when cleanly committed
}

// replayServerWAL folds a recovery into aggregator resume state. The WAL
// layer already guarantees Records is a valid prefix; replay is therefore
// infallible — unknown or out-of-order records are skipped, never fatal.
func replayServerWAL(rv *ckpt.Recovery) *serverResume {
	res := &serverResume{}
	if rv == nil {
		return res
	}
	if rv.Base != nil {
		res.committed = rv.Base.Round
		res.global = rv.Base.Params
	}
	for _, rec := range rv.Records {
		switch rec.Type {
		case ckpt.RecRoundOpen:
			if rec.Member != "" {
				// An async task-ID lease (member "lease"), not a cohort
				// open; a sync replay over an async log must not invent an
				// in-flight round from it.
				break
			}
			res.open = &openRound{
				round:   rec.Round,
				epoch:   rec.Epoch,
				cohort:  rec.IDs,
				updates: make(map[string][]float32, len(rec.IDs)),
			}
		case ckpt.RecMemberUpdate:
			if res.open != nil && rec.Round == res.open.round && rec.Member != upstreamMember {
				if _, dup := res.open.updates[rec.Member]; !dup {
					res.open.order = append(res.open.order, rec.Member)
				}
				res.open.updates[rec.Member] = rec.Vec
			}
		case ckpt.RecOuterStep:
			if res.open != nil && res.open.round == rec.Round {
				res.open.stepped = true
				res.open.postGlobal = rec.Vec
			} else {
				res.global = rec.Vec
			}
		case ckpt.RecStateSnapshot:
			if rec.Member != snapOuter {
				break
			}
			if res.open != nil && res.open.round == rec.Round {
				res.open.postOuter = rec.Vec
				res.open.snapped = true
			} else {
				// A compacted log carries the committed outer state as a
				// bare snapshot record with no surrounding round.
				res.outer = rec.Vec
			}
		case ckpt.RecRoundCommit:
			if rec.Round > res.committed {
				res.committed = rec.Round
				res.epoch = rec.Epoch
			}
			if res.open != nil && res.open.round <= rec.Round {
				// The commit seals the open round: its post-step state is
				// now the durable truth.
				if res.open.stepped {
					res.global = res.open.postGlobal
					if res.open.snapped {
						res.outer = res.open.postOuter
					}
				}
				res.open = nil
			}
		}
	}
	// A round opened at or before the last commit is stale (possible only
	// with a reordered or hand-edited log); drop it rather than replay it.
	if res.open != nil && res.open.round <= res.committed {
		res.open = nil
	}
	return res
}

// pendingFold is one journaled-but-uncommitted async buffer fold.
type pendingFold struct {
	task           int       // dispatch task ID the update answered
	member         string    // member that produced it
	trainedVersion int       // global model version it was trained on
	vec            []float32 // decoded update
}

// asyncResume is the async-aggregator state recovered from a WAL replay.
type asyncResume struct {
	committed int           // last committed model version (0: none)
	epoch     uint64        // membership epoch at last commit
	global    []float32     // params as of the newest *sealed* commit / base
	outer     []float32     // outer state as of the newest sealed snapshot
	pending   []pendingFold // folds journaled after the last commit, in order
	maxTask   int           // highest task ID leased or observed in the log
}

// replayAsyncWAL folds a recovery into async resume state. Post-step state
// (outer_step + its snapshot) is only adopted once a version_commit seals
// it; an unsealed step is discarded and redone from the pending folds, which
// reproduces it bit-for-bit — same updates, same order, same staleness
// weights (the global version is constant while a buffer fills, so replayed
// staleness equals the original).
func replayAsyncWAL(rv *ckpt.Recovery) *asyncResume {
	res := &asyncResume{}
	if rv == nil {
		return res
	}
	if rv.Base != nil {
		res.committed = rv.Base.Round
		res.global = rv.Base.Params
	}
	var pendingGlobal, pendingOuter []float32
	for _, rec := range rv.Records {
		switch rec.Type {
		case ckpt.RecRoundOpen:
			if rec.Member == asyncLeaseMember && rec.Round > res.maxTask {
				res.maxTask = rec.Round
			}
		case ckpt.RecBufferFold:
			res.pending = append(res.pending, pendingFold{
				task:           rec.Round,
				member:         rec.Member,
				trainedVersion: int(rec.Epoch),
				vec:            rec.Vec,
			})
			if rec.Round > res.maxTask {
				res.maxTask = rec.Round
			}
		case ckpt.RecOuterStep:
			pendingGlobal = rec.Vec
		case ckpt.RecStateSnapshot:
			if rec.Member != snapOuter {
				break
			}
			if pendingGlobal != nil {
				pendingOuter = rec.Vec
			} else {
				// A compacted log carries the committed outer state as a
				// bare snapshot with no preceding step record.
				res.outer = rec.Vec
			}
		case ckpt.RecVersionCommit:
			if rec.Round > res.committed {
				res.committed = rec.Round
				res.epoch = rec.Epoch
			}
			if pendingGlobal != nil {
				res.global = pendingGlobal
				if pendingOuter != nil {
					res.outer = pendingOuter
				}
			}
			pendingGlobal, pendingOuter = nil, nil
			res.pending = res.pending[:0]
		}
	}
	return res
}

// relayResume is the relay state recovered from a WAL replay.
type relayResume struct {
	committed int                 // last upstream round this relay completed
	reply     link.EncodedPayload // encoded upstream reply for that round
	replyOK   bool
	cohort    int       // update count folded into that reply
	codec     []float32 // upstream codec residual after that round
}

// replayRelayWAL folds a recovery into relay resume state.
func replayRelayWAL(rv *ckpt.Recovery) *relayResume {
	res := &relayResume{}
	if rv == nil {
		return res
	}
	var pendingReply link.EncodedPayload
	var pendingOK bool
	pendingRound, pendingCohort := 0, 0
	var pendingCodec []float32
	for _, rec := range rv.Records {
		switch rec.Type {
		case ckpt.RecMemberUpdate:
			if rec.Member == upstreamMember {
				if p, ok := decodePayloadBytes(rec.Data); ok {
					pendingReply, pendingOK = p, true
					pendingRound, pendingCohort = rec.Round, int(rec.Epoch)
				}
			}
		case ckpt.RecStateSnapshot:
			if rec.Member == snapCodec {
				pendingCodec = rec.Vec
			}
		case ckpt.RecRoundCommit:
			// Only committed replies are safe to redeliver: an uncommitted
			// reply may never have left the socket, and its residual
			// snapshot may be torn away by the same crash.
			if rec.Round > res.committed {
				res.committed = rec.Round
			}
			if pendingOK && pendingRound == rec.Round {
				res.reply, res.replyOK = pendingReply, true
				res.cohort = pendingCohort
				res.codec = pendingCodec
			}
		}
	}
	return res
}

// encodePayloadBytes flattens an EncodedPayload for a WAL record's Data
// field: u8 codec ID | u32 elems | codec bytes.
func encodePayloadBytes(p link.EncodedPayload) []byte {
	out := make([]byte, 5+len(p.Data))
	out[0] = p.CodecID
	binary.LittleEndian.PutUint32(out[1:5], uint32(p.Elems))
	copy(out[5:], p.Data)
	return out
}

// decodePayloadBytes reverses encodePayloadBytes.
func decodePayloadBytes(b []byte) (link.EncodedPayload, bool) {
	if len(b) < 5 {
		return link.EncodedPayload{}, false
	}
	return link.EncodedPayload{
		CodecID: b[0],
		Elems:   int(binary.LittleEndian.Uint32(b[1:5])),
		Data:    b[5:],
	}, true
}

// membershipEpoch derives a monotonic (within one process run) membership
// epoch from cumulative churn: every join, rejoin, leave, and eviction
// advances it. It is journaled on round_open/round_commit records so a
// replayed log tells membership eras apart.
func (s *server) membershipEpoch() uint64 {
	tot := s.reg.Totals()
	return uint64(tot.Joins + tot.Rejoins + tot.Leaves + tot.Evictions)
}

// publishRegistry publishes a committed round's params into the
// content-addressed registry and moves the "latest" tag. Registry failures
// never abort training — the WAL still has the round — they are logged and
// counted instead.
func publishRegistry(reg *ckpt.Registry, round int, global []float32, lineage map[string]string) {
	snap := make([]float32, len(global))
	copy(snap, global)
	full := make(map[string]string, len(lineage)+1)
	for k, v := range lineage {
		full[k] = v
	}
	full["round"] = strconv.Itoa(round)
	hash, err := reg.Put(&ckpt.Checkpoint{Round: round, Params: snap}, full)
	if err == nil {
		err = reg.Tag("latest", hash)
	}
	if err != nil {
		log.Printf("fed: registry publish for round %d failed: %v", round, err)
		obsv.Default.Counter(
			"photon_registry_errors_total",
			"Model-registry publishes that failed after a round commit.",
		).Inc()
	}
}

// noteCheckpointErr surfaces an async checkpoint writer failure exactly
// once per writer: a log line plus an obsv counter bump, after which the
// run continues without durability rather than aborting training.
func noteCheckpointErr(seen *bool, err error) {
	if err == nil || *seen {
		return
	}
	*seen = true
	log.Printf("fed: async checkpoint write failed; run continues without checkpoint durability: %v", err)
	obsv.Default.Counter(
		"photon_ckpt_write_errors_total",
		"Async checkpoint writes that failed and were surfaced to the run loop.",
	).Inc()
}
