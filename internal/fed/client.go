package fed

import (
	"context"
	"fmt"
	"math/rand"

	"photon/internal/data"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/tensor"
)

// LocalSpec describes the client-side training recipe for one run: the
// number of local steps per round τ, the hardware-determined batch size Bl,
// the learning-rate schedule (shared across clients and synchronized by
// cumulative step count), gradient clipping, and whether optimizer state is
// reset at round boundaries (the paper's stateless local optimization).
type LocalSpec struct {
	Steps     int // τ: local steps per round
	BatchSize int // Bl: hardware-determined local batch size
	SeqLen    int
	Schedule  opt.Schedule
	ClipNorm  float64 // global-norm gradient clip (0 disables)
	Stateful  bool    // keep optimizer state across rounds (ablation; default false = paper behavior)

	// ProxMu adds the FedProx proximal term µ/2·‖θ−θ_global‖² to the local
	// objective (its gradient µ·(θ−θ_global) is added each step), limiting
	// client drift under heterogeneous data (Section 6; 0 disables).
	ProxMu float64
}

// Validate reports whether the spec is runnable.
func (s LocalSpec) Validate() error {
	switch {
	case s.Steps <= 0:
		return fmt.Errorf("fed: LocalSpec.Steps must be positive, got %d", s.Steps)
	case s.BatchSize <= 0:
		return fmt.Errorf("fed: LocalSpec.BatchSize must be positive, got %d", s.BatchSize)
	case s.SeqLen <= 0:
		return fmt.Errorf("fed: LocalSpec.SeqLen must be positive, got %d", s.SeqLen)
	case s.Schedule == nil:
		return fmt.Errorf("fed: LocalSpec.Schedule must be set")
	}
	return nil
}

// Client is one LLM-C: a local model replica, its bound data stream, and its
// local optimizer. A client with SubNodes runs the nested sub-federation of
// Algorithm 1 lines 19–25 instead of a flat local loop.
type Client struct {
	ID        string
	Model     *nn.Model
	Stream    data.Stream
	Optimizer opt.Optimizer

	// SubNodes, when non-empty, are the poorly connected nodes inside this
	// client's silo; the client trains each on a partition of its stream and
	// averages their parameters into a single update (lines 24–25).
	SubNodes []*Client

	// ddp, when non-nil, switches the local pipeline to synchronous data
	// parallelism across the silo's well-connected GPUs (lines 16–18);
	// built via NewDDPClient or BuildClient.
	ddp *ddpGroup

	// Round scratch, reused across rounds so long-running simulations with
	// many clients do not reallocate two model-size vectors per client per
	// round. The returned RoundResult.Update aliases updateBuf: it is valid
	// until this client's next RunRound, which is exactly the aggregation
	// window (updates are folded into the round delta before the next round
	// starts).
	localBuf, updateBuf []float32
}

// NewClient builds an LLM-C with its own model replica (weights are
// overwritten by the global model each round, so the init seed here is
// irrelevant to training).
func NewClient(id string, cfg nn.Config, stream data.Stream, optimizer opt.Optimizer) *Client {
	return &Client{
		ID:        id,
		Model:     nn.NewModel(cfg, rand.New(rand.NewSource(1))),
		Stream:    stream,
		Optimizer: optimizer,
	}
}

// NumParams returns the client's model parameter count — its local replica
// or, for a DDP client, the first intra-silo replica — and 0 when unknown.
func (c *Client) NumParams() int {
	if c.Model != nil {
		return c.Model.NumParams()
	}
	if c.ddp != nil && len(c.ddp.replicas) > 0 {
		return c.ddp.replicas[0].NumParams()
	}
	return 0
}

// RoundResult is what an LLM-C returns to the aggregator.
type RoundResult struct {
	// Update is the pseudo-gradient contribution θt − θt_k.
	Update []float32
	// Metrics carries scalar training metadata (mean loss, steps, last LR).
	Metrics map[string]float64
}

// RunRound executes the client's local training pipeline (Algorithm 1 lines
// 13–28): load the global parameters, run τ local steps (or the nested
// sub-federation), and return the update θt − θt_k with metrics. stepBase is
// the cumulative global step count at the start of the round, which keys the
// shared learning-rate schedule. Cancelling ctx aborts the local loop
// between steps and returns the context's error.
func (c *Client) RunRound(ctx context.Context, global []float32, stepBase int, spec LocalSpec) (RoundResult, error) {
	if err := spec.Validate(); err != nil {
		return RoundResult{}, err
	}
	if len(c.SubNodes) > 0 {
		return c.runSubFederation(ctx, global, stepBase, spec)
	}
	if c.ddp != nil {
		return c.runDDP(ctx, global, stepBase, spec)
	}
	if err := c.Model.Params().LoadFlat(global); err != nil {
		return RoundResult{}, fmt.Errorf("fed: client %s: %w", c.ID, err)
	}
	if !spec.Stateful {
		c.Optimizer.Reset() // stateless local optimization (Appendix A)
	}

	var lossSum float64
	lastLR := 0.0
	for step := 0; step < spec.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return RoundResult{}, err
		}
		batch := c.Stream.NextBatch(spec.BatchSize, spec.SeqLen)
		c.Model.Params().ZeroGrads()
		lossSum += c.Model.ForwardBackward(batch)
		if spec.ProxMu > 0 {
			addProximalGrad(c.Model.Params(), global, float32(spec.ProxMu))
		}
		if spec.ClipNorm > 0 {
			c.Model.Params().ClipGradNorm(spec.ClipNorm)
		}
		lastLR = spec.Schedule.LR(stepBase + step)
		c.Optimizer.Step(c.Model.Params(), lastLR)
	}

	c.localBuf = c.Model.Params().Flatten(c.localBuf)
	if len(c.updateBuf) != len(global) {
		c.updateBuf = make([]float32, len(global))
	}
	update := c.updateBuf
	copy(update, global)
	tensor.Sub(update, c.localBuf) // θt − θt_k
	return RoundResult{
		Update: update,
		Metrics: map[string]float64{
			"loss":  lossSum / float64(spec.Steps),
			"steps": float64(spec.Steps),
			"lr":    lastLR,
		},
	}, nil
}

// addProximalGrad adds the FedProx gradient µ·(θ − θ_global) in place.
func addProximalGrad(ps nn.ParamSet, global []float32, mu float32) {
	off := 0
	for _, p := range ps {
		for i := range p.Grad {
			p.Grad[i] += mu * (p.Data[i] - global[off+i])
		}
		off += len(p.Data)
	}
}

// runSubFederation implements the low-bandwidth intra-silo path: each
// sub-node trains independently from the same starting point on its own
// stream partition, and the client averages the node models into one update
// before replying to the aggregator.
func (c *Client) runSubFederation(ctx context.Context, global []float32, stepBase int, spec LocalSpec) (RoundResult, error) {
	updates := make([][]float32, 0, len(c.SubNodes))
	clientMetrics := make([]map[string]float64, 0, len(c.SubNodes))
	for _, node := range c.SubNodes {
		res, err := node.RunRound(ctx, global, stepBase, spec)
		if err != nil {
			return RoundResult{}, fmt.Errorf("fed: sub-node %s: %w", node.ID, err)
		}
		updates = append(updates, res.Update)
		clientMetrics = append(clientMetrics, res.Metrics)
	}
	// Averaging node *updates* equals averaging node models (line 24):
	// θt − mean(θ_i) = mean(θt − θ_i).
	mean, err := MeanDelta(updates)
	if err != nil {
		return RoundResult{}, err
	}
	agg := map[string]float64{}
	for _, m := range clientMetrics {
		for k, v := range m {
			agg[k] += v / float64(len(clientMetrics))
		}
	}
	agg["subnodes"] = float64(len(c.SubNodes))
	return RoundResult{Update: mean, Metrics: agg}, nil
}
