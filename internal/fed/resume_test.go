package fed

import (
	"context"
	"path/filepath"
	"testing"

	"photon/internal/ckpt"
)

// TestResumeFromCheckpoint exercises the crash-recovery path: a run is
// checkpointed, "crashes", and a second run resumes from the checkpoint,
// continuing to improve rather than restarting from scratch.
func TestResumeFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "global.ckpt")

	first, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.Rounds = 5
		c.EvalEvery = 1
		c.CheckpointPath = path
	}))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 5 {
		t.Fatalf("checkpoint at round %d, want 5", snap.Round)
	}

	resumed, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.Rounds = 5
		c.EvalEvery = 1
		c.InitParams = snap.Params
		c.StartRound = snap.Round
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Round numbering continues.
	if got := resumed.History.Rounds[0].Round; got != 6 {
		t.Fatalf("resumed first round: got %d want 6", got)
	}
	// The resumed run starts from the checkpointed quality, not from
	// scratch: its first evaluation must be far below the cold-start
	// perplexity of the original run's first round.
	cold := first.History.Rounds[0].ValPPL
	warm := resumed.History.Rounds[0].ValPPL
	if !(warm < cold*0.95) {
		t.Fatalf("resume did not preserve progress: cold %v warm %v", cold, warm)
	}
	// And it keeps improving.
	if !(resumed.History.FinalPPL() <= warm*1.1) {
		t.Fatalf("resumed run regressed: %v -> %v", warm, resumed.History.FinalPPL())
	}
}

func TestInitParamsLengthChecked(t *testing.T) {
	_, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.InitParams = []float32{1, 2, 3}
	}))
	if err == nil {
		t.Fatal("mismatched InitParams accepted")
	}
}
