package fed

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"photon/internal/cluster"
	"photon/internal/link"
	"photon/internal/metrics"
)

// The observe stream is Meta-only MsgMetrics frames: every round record
// field an observer needs travels as a named float64, so any observer can
// attach regardless of the fleet's wire codec (no payloads to decode).
// These keys are the frame schema; obsMemberCap bounds the per-member
// health section so a huge fleet cannot blow the frame's Meta budget.
const (
	obsRoundKey      = "o_round"
	obsLossKey       = "o_loss"
	obsPPLKey        = "o_ppl"
	obsClientsKey    = "o_clients"
	obsTierKey       = "o_tier"
	obsDepthKey      = "o_depth"
	obsSentKey       = "o_sent_b"
	obsRecvKey       = "o_recv_b"
	obsRatioKey      = "o_ratio"
	obsEncMsKey      = "o_enc_ms"
	obsDecMsKey      = "o_dec_ms"
	obsWallMsKey     = "o_wall_ms"
	obsJoinsKey      = "o_joins"
	obsEvictionsKey  = "o_evictions"
	obsStragglersKey = "o_stragglers"
	obsRTTKey        = "o_rtt_ms"
	obsRTTP99Key     = "o_rtt_p99_ms"
	obsTraceKey      = "o_trace_id"
	obsVersionKey    = "o_version"   // async: committed global model version
	obsBufFillKey    = "o_buf_fill"  // async: updates folded into this commit
	obsStalenessKey  = "o_staleness" // async: mean staleness of the commit's buffer
	obsPhasePrefix   = "o_ph_ms."    // + phase name → milliseconds
	obsMemberPrefix  = "o_m."        // + id + member-field suffix
	obsMemberHealth  = ".health"     // (0,1] health score
	obsMemberRTT     = ".rtt_ms"     // heartbeat RTT EWMA
	obsMemberStrag   = ".straggle"   // straggle count
	obsMemberStale   = ".stale"      // async: member's version lag, in versions
	obsMemberCap     = 64
)

// ObserveEvent is one round's worth of the observe stream, parsed back
// into the round record plus the fleet's member-health snapshot.
type ObserveEvent struct {
	Record  metrics.Round
	Members []MemberHealth
}

// MemberHealth is one member's liveness snapshot as published to
// observers.
type MemberHealth struct {
	ID        string
	Health    float64
	RTTMs     float64
	Straggles int
	// Staleness is the member's version lag in async mode: how many
	// versions behind the committed global model its newest answered
	// dispatch was. Always 0 under synchronous aggregation.
	Staleness int
}

// observeMessage renders a round record (and the alive membership) as a
// Meta-only MsgMetrics frame. SlowestID rides in the frame's one string
// field, ClientID. stale, non-nil only under async aggregation, carries
// each member's version lag.
func observeMessage(rec metrics.Round, alive []cluster.Info, stale map[string]int) *link.Message {
	meta := map[string]float64{
		obsRoundKey:      float64(rec.Round),
		obsLossKey:       rec.TrainLoss,
		obsPPLKey:        rec.ValPPL,
		obsClientsKey:    float64(rec.Clients),
		obsTierKey:       float64(rec.Tier),
		obsDepthKey:      float64(rec.Depth),
		obsSentKey:       float64(rec.WireSentBytes),
		obsRecvKey:       float64(rec.WireRecvBytes),
		obsRatioKey:      rec.CompressionRatio,
		obsEncMsKey:      rec.EncodeMs,
		obsDecMsKey:      rec.DecodeMs,
		obsWallMsKey:     rec.WallMs,
		obsJoinsKey:      float64(rec.Joins),
		obsEvictionsKey:  float64(rec.Evictions),
		obsStragglersKey: float64(rec.Stragglers),
		obsRTTKey:        rec.HeartbeatRTTMs,
		obsRTTP99Key:     rec.HeartbeatRTTP99Ms,
		obsTraceKey:      float64(rec.TraceID),
	}
	if rec.ModelVersion > 0 {
		meta[obsVersionKey] = float64(rec.ModelVersion)
		meta[obsBufFillKey] = float64(rec.BufferFill)
		meta[obsStalenessKey] = rec.MeanStaleness
	}
	b := rec.Phases
	for phase, ms := range map[string]float64{
		"broadcast": b.BroadcastMs, "train": b.TrainMs, "encode": b.EncodeMs,
		"wire": b.WireMs, "decode": b.DecodeMs, "aggregate": b.AggregateMs,
		"eval": b.EvalMs,
	} {
		meta[obsPhasePrefix+phase] = ms
	}
	for i, m := range alive {
		if i >= obsMemberCap {
			break
		}
		meta[obsMemberPrefix+m.ID+obsMemberHealth] = m.Health
		meta[obsMemberPrefix+m.ID+obsMemberRTT] = float64(m.HeartbeatRTT.Nanoseconds()) / 1e6
		meta[obsMemberPrefix+m.ID+obsMemberStrag] = float64(m.Straggles)
		if s, ok := stale[m.ID]; ok {
			meta[obsMemberPrefix+m.ID+obsMemberStale] = float64(s)
		}
	}
	return &link.Message{
		Type:     link.MsgMetrics,
		Round:    int32(rec.Round),
		ClientID: rec.SlowestID,
		Meta:     meta,
	}
}

// parseObserve inverts observeMessage.
func parseObserve(msg *link.Message) ObserveEvent {
	m := msg.Meta
	ev := ObserveEvent{Record: metrics.Round{
		Round:             int(m[obsRoundKey]),
		TrainLoss:         m[obsLossKey],
		ValPPL:            m[obsPPLKey],
		Clients:           int(m[obsClientsKey]),
		Tier:              int(m[obsTierKey]),
		Depth:             int(m[obsDepthKey]),
		WireSentBytes:     int64(m[obsSentKey]),
		WireRecvBytes:     int64(m[obsRecvKey]),
		CompressionRatio:  m[obsRatioKey],
		EncodeMs:          m[obsEncMsKey],
		DecodeMs:          m[obsDecMsKey],
		WallMs:            m[obsWallMsKey],
		Joins:             int(m[obsJoinsKey]),
		Evictions:         int(m[obsEvictionsKey]),
		Stragglers:        int(m[obsStragglersKey]),
		HeartbeatRTTMs:    m[obsRTTKey],
		HeartbeatRTTP99Ms: m[obsRTTP99Key],
		TraceID:           uint64(m[obsTraceKey]),
		ModelVersion:      int(m[obsVersionKey]),
		BufferFill:        int(m[obsBufFillKey]),
		MeanStaleness:     m[obsStalenessKey],
		SlowestID:         msg.ClientID,
	}}
	ev.Record.CommBytes = ev.Record.WireSentBytes + ev.Record.WireRecvBytes
	ev.Record.Phases.BroadcastMs = m[obsPhasePrefix+"broadcast"]
	ev.Record.Phases.TrainMs = m[obsPhasePrefix+"train"]
	ev.Record.Phases.EncodeMs = m[obsPhasePrefix+"encode"]
	ev.Record.Phases.WireMs = m[obsPhasePrefix+"wire"]
	ev.Record.Phases.DecodeMs = m[obsPhasePrefix+"decode"]
	ev.Record.Phases.AggregateMs = m[obsPhasePrefix+"aggregate"]
	ev.Record.Phases.EvalMs = m[obsPhasePrefix+"eval"]

	members := map[string]*MemberHealth{}
	get := func(id string) *MemberHealth {
		if mh, ok := members[id]; ok {
			return mh
		}
		mh := &MemberHealth{ID: id}
		members[id] = mh
		return mh
	}
	for k, v := range m {
		if !strings.HasPrefix(k, obsMemberPrefix) {
			continue
		}
		rest := k[len(obsMemberPrefix):]
		switch {
		case strings.HasSuffix(rest, obsMemberHealth):
			get(strings.TrimSuffix(rest, obsMemberHealth)).Health = v
		case strings.HasSuffix(rest, obsMemberRTT):
			get(strings.TrimSuffix(rest, obsMemberRTT)).RTTMs = v
		case strings.HasSuffix(rest, obsMemberStrag):
			get(strings.TrimSuffix(rest, obsMemberStrag)).Straggles = int(v)
		case strings.HasSuffix(rest, obsMemberStale):
			get(strings.TrimSuffix(rest, obsMemberStale)).Staleness = int(v)
		}
	}
	for _, mh := range members {
		ev.Members = append(ev.Members, *mh)
	}
	sort.Slice(ev.Members, func(i, j int) bool { return ev.Members[i].ID < ev.Members[j].ID })
	return ev
}

// Observe attaches to an aggregator as a read-only event subscriber and
// calls fn for every round record the aggregator publishes, until the
// aggregator shuts down (returns nil), the connection drops, or ctx is
// cancelled. The subscription is codec-free: the observer answers the
// aggregator's codec announcement with MsgObserve instead of a join, so
// it works against any fleet configuration and never occupies a
// membership slot. It is the client half of the photon-top dashboard.
func Observe(ctx context.Context, conn *link.Conn, fn func(ObserveEvent)) error {
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	msg, err := conn.RecvTimeout(handshakeTimeout)
	if err != nil {
		return fmt.Errorf("fed: observe handshake: %w", err)
	}
	if msg.Type != link.MsgCodecAnnounce {
		return fmt.Errorf("fed: observe: aggregator sent message type %d before its codec announcement", msg.Type)
	}
	if err := conn.Send(&link.Message{Type: link.MsgObserve, ClientID: "observer"}); err != nil {
		return fmt.Errorf("fed: observe subscribe: %w", err)
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fed: observe: %w: %w", ErrSessionLost, err)
		}
		switch msg.Type {
		case link.MsgMetrics:
			fn(parseObserve(msg))
		case link.MsgShutdown:
			return nil
		default:
			// Heartbeats or future frame types: observers ignore them.
		}
	}
}
