package fed

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"photon/internal/ckpt"
	"photon/internal/data"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/obsv"
	"photon/internal/opt"
	"photon/internal/testutil"
	"photon/internal/topo"
)

func tinyCfg() nn.Config {
	c := nn.ConfigTiny
	c.SeqLen = 16
	return c
}

func tinySpec() LocalSpec {
	return LocalSpec{
		Steps:     4,
		BatchSize: 4,
		SeqLen:    16,
		Schedule:  opt.Constant(3e-3),
		ClipNorm:  1.0,
	}
}

func makeClients(t *testing.T, cfg nn.Config, n int) []*Client {
	t.Helper()
	part, err := data.IIDPartition(data.C4Like(cfg.VocabSize), n, 7)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
	}
	return clients
}

func baseRun(t *testing.T, mutate func(*RunConfig)) RunConfig {
	t.Helper()
	cfg := RunConfig{
		ModelConfig:     tinyCfg(),
		Seed:            1,
		Rounds:          6,
		ClientsPerRound: 4,
		Clients:         makeClients(t, tinyCfg(), 4),
		Outer:           FedAvg{},
		Spec:            tinySpec(),
		Validation:      data.NewValidationSet(data.C4Like(tinyCfg().VocabSize), 8, 16, 999),
		EvalEvery:       2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func TestFedAvgIsClientMean(t *testing.T) {
	// With ηs = 1, one round of FedAvg must set the global model to the
	// exact mean of the client models.
	global := []float32{10, 10}
	clientParams := [][]float32{{8, 12}, {6, 10}}
	updates := make([][]float32, len(clientParams))
	for i, cp := range clientParams {
		updates[i] = []float32{global[0] - cp[0], global[1] - cp[1]}
	}
	delta, err := MeanDelta(updates)
	if err != nil {
		t.Fatal(err)
	}
	FedAvg{}.Step(global, delta, 1)
	if global[0] != 7 || global[1] != 11 {
		t.Fatalf("FedAvg(1.0) should average client models: got %v", global)
	}
}

func TestMeanDeltaErrors(t *testing.T) {
	if _, err := MeanDelta(nil); err == nil {
		t.Fatal("empty updates accepted")
	}
	if _, err := MeanDelta([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged updates accepted")
	}
}

func TestFedMomAccumulates(t *testing.T) {
	fm := NewFedMom(1.0, 0.9)
	g1 := []float32{0}
	fm.Step(g1, []float32{1}, 1)
	first := g1[0]
	fm.Step(g1, []float32{1}, 2)
	second := g1[0] - first
	// Second step moves further than the first (velocity build-up):
	// |Δ2| = 1 + 0.9 > |Δ1| = 1.
	if !(math.Abs(float64(second)) > math.Abs(float64(first))) {
		t.Fatalf("momentum should accelerate: step1 %v step2 %v", first, second)
	}
}

func TestDiLoCoNesterovForm(t *testing.T) {
	d := NewDiLoCo(0.1, 0.9)
	g := []float32{0}
	d.Step(g, []float32{1}, 1)
	// First Nesterov step: v=1, update = 0.1*(1 + 0.9*1) = 0.19.
	if math.Abs(float64(g[0])+0.19) > 1e-6 {
		t.Fatalf("first DiLoCo step: got %v want -0.19", g[0])
	}
	// DiLoCo(0.1) must take much smaller early steps than FedAvg.
	g2 := []float32{0}
	FedAvg{}.Step(g2, []float32{1}, 1)
	if math.Abs(float64(g[0])) >= math.Abs(float64(g2[0])) {
		t.Fatal("DiLoCo(0.1) early step should be smaller than FedAvg")
	}
}

func TestLocalSpecValidate(t *testing.T) {
	good := tinySpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, mutate := range []func(*LocalSpec){
		func(s *LocalSpec) { s.Steps = 0 },
		func(s *LocalSpec) { s.BatchSize = 0 },
		func(s *LocalSpec) { s.SeqLen = 0 },
		func(s *LocalSpec) { s.Schedule = nil },
	} {
		s := tinySpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestClientRunRoundProducesUpdate(t *testing.T) {
	cfg := tinyCfg()
	c := makeClients(t, cfg, 1)[0]
	global := nn.NewModel(cfg, rand.New(rand.NewSource(3))).Params().Flatten(nil)
	res, err := c.RunRound(context.Background(), global, 0, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Update) != len(global) {
		t.Fatalf("update length %d != %d", len(res.Update), len(global))
	}
	var n float64
	for _, v := range res.Update {
		n += float64(v) * float64(v)
	}
	if n == 0 {
		t.Fatal("training produced a zero update")
	}
	if res.Metrics["steps"] != 4 || res.Metrics["loss"] <= 0 {
		t.Fatalf("bad metrics: %v", res.Metrics)
	}
}

func TestClientWrongGlobalSize(t *testing.T) {
	c := makeClients(t, tinyCfg(), 1)[0]
	if _, err := c.RunRound(context.Background(), []float32{1, 2, 3}, 0, tinySpec()); err == nil {
		t.Fatal("mismatched global vector accepted")
	}
}

func TestSubFederationEqualsMeanOfNodes(t *testing.T) {
	cfg := tinyCfg()
	nodes := makeClients(t, cfg, 2)
	parent := &Client{ID: "silo", SubNodes: nodes}
	global := nn.NewModel(cfg, rand.New(rand.NewSource(5))).Params().Flatten(nil)
	spec := tinySpec()

	res, err := parent.RunRound(context.Background(), global, 0, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: run the same nodes independently (fresh streams/state).
	refNodes := makeClients(t, cfg, 2)
	r0, err := refNodes[0].RunRound(context.Background(), global, 0, spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := refNodes[1].RunRound(context.Background(), global, 0, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Update {
		want := (r0.Update[i] + r1.Update[i]) / 2
		if math.Abs(float64(res.Update[i]-want)) > 1e-5 {
			t.Fatalf("sub-federation update[%d] = %v, want mean %v", i, res.Update[i], want)
		}
	}
	if res.Metrics["subnodes"] != 2 {
		t.Fatalf("subnodes metric: %v", res.Metrics)
	}
}

// scrubTimings zeroes the wall-clock measurement fields (real elapsed
// time, inherently non-deterministic) so histories can be compared for
// training determinism. Trace IDs are seeded and stay comparable.
func scrubTimings(h *metrics.History) {
	for i := range h.Rounds {
		h.Rounds[i].WallMs = 0
		h.Rounds[i].Phases = obsv.Breakdown{}
		h.Rounds[i].EncodeMs = 0
		h.Rounds[i].DecodeMs = 0
	}
}

func TestRunConvergesAndIsDeterministic(t *testing.T) {
	res1, err := Run(context.Background(), baseRun(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), baseRun(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	scrubTimings(res1.History)
	scrubTimings(res2.History)
	if !reflect.DeepEqual(res1.History, res2.History) {
		t.Fatal("same config+seed produced different histories")
	}
	// Perplexity must improve from near-uniform (vocab 64 → ~64).
	first := res1.History.Rounds[1].ValPPL // round 2 is the first eval
	last := res1.History.FinalPPL()
	if !(last < first) {
		t.Fatalf("no convergence: %v -> %v", first, last)
	}
	if last > 55 {
		t.Fatalf("final perplexity too high: %v", last)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	for i, mutate := range []func(*RunConfig){
		func(c *RunConfig) { c.Rounds = 0 },
		func(c *RunConfig) { c.Clients = nil },
		func(c *RunConfig) { c.ClientsPerRound = 0 },
		func(c *RunConfig) { c.Outer = nil },
		func(c *RunConfig) { c.Spec.Steps = 0 },
	} {
		cfg := baseRun(t, mutate)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunFullDropoutSkipsUpdates(t *testing.T) {
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.DropoutProb = 1.0
		c.Rounds = 3
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.History.Rounds {
		if r.Clients != 0 || r.UpdateNorm != 0 {
			t.Fatalf("round %d should have no surviving clients: %+v", r.Round, r)
		}
	}
}

func TestRunPartialDropoutStillConverges(t *testing.T) {
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.DropoutProb = 0.25
		c.Rounds = 8
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalPPL() > 58 {
		t.Fatalf("dropout run did not converge: %v", res.History.FinalPPL())
	}
}

func TestRunSimulatedTime(t *testing.T) {
	tm := &topo.Model{ModelSizeMB: 1, BandwidthMBps: 100, Throughput: 2, LocalSteps: 4}
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.TimeModel = tm
		c.Topology = topo.RAR
		c.Rounds = 3
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := tm.RoundTime(topo.RAR, 4)
	for i, r := range res.History.Rounds {
		if math.Abs(r.SimSeconds-want*float64(i+1)) > 1e-9 {
			t.Fatalf("round %d sim time %v, want %v", r.Round, r.SimSeconds, want*float64(i+1))
		}
	}
}

func TestRunStopAtPPL(t *testing.T) {
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.Rounds = 50
		c.StopAtPPL = 60 // easy target: reached quickly
		c.EvalEvery = 1
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() >= 50 {
		t.Fatal("early stopping did not trigger")
	}
}

func TestRunCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "global.ckpt")
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.CheckpointPath = path
		c.Rounds = 3
	}))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Round != 3 || len(c.Params) != len(res.Global) {
		t.Fatalf("checkpoint round %d, %d params", c.Round, len(c.Params))
	}
	// The checkpoint must hold the final global parameters exactly.
	for i := range c.Params {
		if c.Params[i] != res.Global[i] {
			t.Fatal("checkpoint params differ from final global model")
		}
	}
}

func TestRunPostPipelineClips(t *testing.T) {
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.Post = link.Pipeline{link.ClipL2{MaxNorm: 0.001}, link.NaNGuard{}}
		c.Rounds = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.History.Rounds {
		if r.UpdateNorm > 0.0011 {
			t.Fatalf("post-process clip not applied: norm %v", r.UpdateNorm)
		}
	}
}

func TestUniformSamplerProperties(t *testing.T) {
	f := func(seed int64, popRaw, kRaw uint8) bool {
		pop := 1 + int(popRaw)%20
		k := 1 + int(kRaw)%25 // may exceed pop: must clamp
		rng := rand.New(rand.NewSource(seed))
		idx := (UniformSampler{}).Sample(rng, pop, k)
		if len(idx) != min(k, pop) {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= pop || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkedFederation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := tinyCfg()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	spec := tinySpec()
	clients := makeClients(t, cfg, 3)
	for _, c := range clients {
		go func(c *Client) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = ServeClient(context.Background(), conn, c, spec)
		}(c)
	}

	res, err := Serve(context.Background(), l, ServerConfig{
		ModelConfig:   cfg,
		Seed:          11,
		Rounds:        4,
		ExpectClients: 3,
		Outer:         FedAvg{},
		Validation:    data.NewValidationSet(data.C4Like(cfg.VocabSize), 8, 16, 999),
		EvalEvery:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != 4 {
		t.Fatalf("want 4 rounds, got %d", res.History.Len())
	}
	for _, r := range res.History.Rounds {
		if r.Clients != 3 {
			t.Fatalf("round %d: %d clients, want 3", r.Round, r.Clients)
		}
	}
	if !(res.History.FinalPPL() < 64) {
		t.Fatalf("networked run did not learn: ppl %v", res.History.FinalPPL())
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := Serve(context.Background(), l, ServerConfig{}); err == nil {
		t.Fatal("empty server config accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestServeDropsMisSizedUpdate: a member whose update declares an element
// count different from the model is evicted before its payload can drive a
// decode-time allocation or reach MeanDelta — the round aggregates the
// well-behaved survivors and the run completes.
func TestServeDropsMisSizedUpdate(t *testing.T) {
	cfg := tinyCfg()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	spec := tinySpec()
	for _, c := range makeClients(t, cfg, 2) {
		go func(c *Client) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = ServeClient(ctx, conn, c, spec)
		}(c)
	}
	// The liar: joins correctly, then answers every model broadcast with a
	// 3-element "update".
	go func() {
		conn, err := link.Dial(l.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := Handshake(conn, "liar", ""); err != nil {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil || msg.Type == link.MsgShutdown {
				return
			}
			if msg.Type == link.MsgModel {
				conn.Send(&link.Message{Type: link.MsgUpdate, Round: msg.Round,
					ClientID: "liar", Payload: link.Dense([]float32{1, 2, 3})})
			}
		}
	}()

	var evictions int
	res, err := Serve(ctx, l, ServerConfig{
		ModelConfig:   cfg,
		Seed:          13,
		Rounds:        2,
		ExpectClients: 3,
		Outer:         FedAvg{},
		OnRound:       func(r metrics.Round) { evictions += r.Evictions },
	})
	if err != nil {
		t.Fatalf("mis-sized update aborted the run: %v", err)
	}
	if res.History.Len() != 2 {
		t.Fatalf("completed %d rounds, want 2", res.History.Len())
	}
	for _, r := range res.History.Rounds {
		if r.Clients != 2 {
			t.Fatalf("round %d aggregated %d clients, want the 2 honest ones", r.Round, r.Clients)
		}
	}
	if evictions != 1 {
		t.Fatalf("evictions = %d, want the liar dropped once", evictions)
	}
}
