package fed

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"photon/internal/ckpt"
	"photon/internal/link"
	"photon/internal/metrics"
)

// ReconnectConfig tunes RunResilientClient's fault tolerance.
type ReconnectConfig struct {
	// MaxAttempts is how many consecutive failed reconnect attempts are
	// tolerated before the session is abandoned. Zero disables
	// reconnection (a connection loss is fatal, the plain ServeClient
	// behavior).
	MaxAttempts int
	// InitialBackoff is the first retry delay (default 200ms); each
	// subsequent attempt doubles it up to MaxBackoff (default 5s). A
	// successful reconnect resets the backoff.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// CheckpointPath, when non-empty, snapshots the client's local model
	// after every completed round and warm-starts from the snapshot when
	// the process restarts. The aggregator's MsgModel overwrites the
	// parameters each round regardless — the checkpoint's value is a warm
	// local replica (for generation or inspection) across a crash, plus
	// the recorded round for logs.
	CheckpointPath string

	// Codec, when non-empty, requires the aggregator to announce exactly
	// this wire codec; empty accepts whatever the aggregator announces.
	// Either way the codec instance lives on the session, not the
	// connection, so error-feedback state (the topk residual) survives
	// reconnects and dropped coordinates still reach later rounds.
	Codec string
}

func (rc *ReconnectConfig) fill() {
	if rc.InitialBackoff <= 0 {
		rc.InitialBackoff = 200 * time.Millisecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 5 * time.Second
	}
}

// RunResilientClient runs an LLM-C session that survives aggregator
// connection churn: when an established session drops without a clean
// MsgShutdown, it redials with exponential backoff and rejoins under the
// same identity. The elastic aggregator admits the rejoin and the client
// resumes at the aggregator's current round (MsgModel carries the round
// number keying the shared schedule), so a mid-run crash costs at most the
// interrupted round.
//
// The initial dial is NOT retried: failing to reach the aggregator at
// startup is a configuration error and reports immediately. Only a session
// that joined successfully at least once reconnects.
//
// dial builds a fresh connection; it is called once up front and once per
// reconnect attempt. Cancelling ctx stops the session (and any backoff
// sleep) promptly with ctx.Err().
func RunResilientClient(ctx context.Context, dial func(context.Context) (*link.Conn, error), client *Client, spec LocalSpec, rc ReconnectConfig, onRound ...func(metrics.Round)) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	rc.fill()

	var writer *ckpt.AsyncWriter
	if rc.CheckpointPath != "" {
		if snap, err := ckpt.Load(rc.CheckpointPath); err == nil {
			// Warm-start the local replica from the pre-crash state.
			if err := client.Model.Params().LoadFlat(snap.Params); err != nil {
				return fmt.Errorf("fed: client %s: resume checkpoint: %w", client.ID, err)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("fed: client %s: resume checkpoint: %w", client.ID, err)
		}
		writer = ckpt.NewAsyncWriter(rc.CheckpointPath)
		defer writer.Close()
		var ckptErrSeen bool
		onRound = append(onRound, func(r metrics.Round) {
			writer.Submit(&ckpt.Checkpoint{
				Round:  r.Round,
				Step:   r.Round * spec.Steps,
				Meta:   map[string]float64{"loss": r.TrainLoss},
				Params: client.Model.Params().Flatten(nil),
			})
			// Surface a failed write mid-run (once) rather than at Close:
			// a client that cannot persist its warm-start state keeps
			// training, but the operator should know crash recovery is off.
			noteCheckpointErr(&ckptErrSeen, writer.Err())
		})
	}

	conn, err := dial(ctx)
	if err != nil {
		return err
	}
	session := &Session{Client: client, Spec: spec, Codec: rc.Codec}
	for {
		err := session.ServeConn(ctx, conn, onRound...)
		conn.Close()
		if err == nil || ctx.Err() != nil {
			return err // clean shutdown, or cancellation
		}
		// Only transport failures are worth retrying: a deterministic
		// session error (protocol violation, training failure) would just
		// recur forever, since a successful redial resets the attempt
		// budget.
		if rc.MaxAttempts <= 0 || !errors.Is(err, ErrSessionLost) {
			return err
		}
		conn, err = redial(ctx, dial, client.ID, rc, err)
		if err != nil {
			return err
		}
	}
}

// redial attempts to rebuild the connection with exponential backoff,
// returning the session error wrapped when every attempt fails.
func redial(ctx context.Context, dial func(context.Context) (*link.Conn, error), id string, rc ReconnectConfig, sessionErr error) (*link.Conn, error) {
	backoff := rc.InitialBackoff
	var lastErr error
	for attempt := 1; attempt <= rc.MaxAttempts; attempt++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > rc.MaxBackoff {
			backoff = rc.MaxBackoff
		}
		conn, err := dial(ctx)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fed: client %s: session lost (%v) and %d reconnect attempts failed: %w",
		id, sessionErr, rc.MaxAttempts, lastErr)
}
