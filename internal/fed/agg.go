package fed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"photon/internal/ckpt"
	"photon/internal/data"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/obsv"
	"photon/internal/topo"
)

// Sampler selects the client cohort for a round.
type Sampler interface {
	// Sample returns the indices of the clients participating in the round.
	Sample(rng *rand.Rand, population, k int) []int
}

// UniformSampler draws K distinct clients uniformly (Algorithm 1 line 4).
type UniformSampler struct{}

// Sample implements Sampler via a partial Fisher-Yates shuffle.
func (UniformSampler) Sample(rng *rand.Rand, population, k int) []int {
	if k > population {
		k = population
	}
	perm := rng.Perm(population)
	return perm[:k]
}

// RunConfig configures a federated training run in the in-process simulator.
type RunConfig struct {
	ModelConfig nn.Config
	Seed        int64

	// Rng, when non-nil, is the injected source behind every random
	// decision the run makes — model init, cohort sampling, dropout /
	// churn draws — replacing any implicit global-rand usage. Nil seeds a
	// fresh source from Seed. Injecting the source makes churn simulations
	// reproducible and lets callers share one stream across subsystems.
	Rng *rand.Rand

	Rounds          int
	ClientsPerRound int // K
	Clients         []*Client
	Outer           OuterOpt
	Spec            LocalSpec
	Sampler         Sampler // nil → UniformSampler

	// Validation is evaluated on the global model every EvalEvery rounds
	// (and always on the final round). Nil disables evaluation.
	Validation *data.ValidationSet
	EvalEvery  int

	// Post is the update post-processing pipeline (Algorithm 1 line 27).
	Post link.Pipeline

	// Codec, when non-empty, routes every model broadcast and client
	// update through the named wire codec exactly as the networked path
	// does: payloads are encoded, their encoded size is charged to the
	// round's communication accounting, and training continues from the
	// decoded (for lossy codecs, perturbed) values. Each client holds its
	// own codec instance across rounds, so error-feedback codecs (topk)
	// accumulate residuals per client. Empty skips codec simulation and
	// keeps the raw dense exchange with element-count byte estimates.
	Codec string

	// Tiers selects the aggregation depth: 1 (or 0, the default) is the
	// flat Algorithm 1 loop; 2 simulates hierarchical aggregation — the
	// sampled cohort is split into Relays contiguous groups, each group's
	// updates fold into a relay mean first, and the outer optimizer
	// consumes the mean of relay means. Under FedAvg(ηs=1) with equal
	// groups the two-tier mean equals the flat mean exactly; the point of
	// the simulation is the wire accounting, which splits into a leaf tier
	// (cohort×Codec) and a parent tier (Relays×UpstreamCodec).
	Tiers int
	// Relays is the number of relay groups when Tiers == 2 (≤ 0 defaults
	// to 2).
	Relays int
	// UpstreamCodec names the relay→root tier's wire codec (per-relay
	// instances, so error-feedback codecs accumulate residuals per relay).
	// Empty inherits Codec.
	UpstreamCodec string

	// DropoutProb injects client failure: each sampled client independently
	// fails to return its update with this probability. The aggregator
	// applies a partial update from survivors (the PS/AR behavior).
	DropoutProb float64

	// TimeModel, when set, accrues simulated wall-clock time per round under
	// Topology, populating History.SimSeconds (Appendix B.1 model).
	TimeModel *topo.Model
	Topology  topo.Topology

	// CheckpointPath, when non-empty, asynchronously checkpoints the global
	// model each round (Algorithm 1 line 11).
	CheckpointPath string

	// InitParams, when non-nil, initializes the global model from a prior
	// checkpoint instead of the seed (crash recovery / warm start). Its
	// length must match the model's parameter count.
	InitParams []float32

	// StartRound offsets round numbering and the schedule step base when
	// resuming from a checkpoint (the first executed round is StartRound+1).
	StartRound int

	// StopAtPPL ends training early once validation reaches the target
	// (0 disables early stopping).
	StopAtPPL float64

	// OnRound, when non-nil, is called synchronously with each round's
	// record right after it is appended to the history — the hook behind
	// live observability (Job.Events).
	OnRound func(metrics.Round)
}

func (c *RunConfig) validate() error {
	if err := c.ModelConfig.Validate(); err != nil {
		return err
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("fed: Rounds must be positive, got %d", c.Rounds)
	case len(c.Clients) == 0:
		return fmt.Errorf("fed: no clients")
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("fed: ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	case c.Outer == nil:
		return fmt.Errorf("fed: Outer optimizer must be set")
	case c.Tiers < 0 || c.Tiers > 2:
		return fmt.Errorf("fed: Tiers must be 1 (flat) or 2, got %d", c.Tiers)
	case c.Tiers == 2 && c.effectiveRelays() > c.ClientsPerRound:
		return fmt.Errorf("fed: %d relays cannot each hold a member of a %d-client cohort", c.effectiveRelays(), c.ClientsPerRound)
	}
	return nil
}

// effectiveRelays resolves the relay-group count (Relays ≤ 0 defaults to
// 2), so validation and the run loop agree on the same value.
func (c *RunConfig) effectiveRelays() int {
	if c.Relays <= 0 {
		return 2
	}
	return c.Relays
}

// Result bundles a finished run.
type Result struct {
	History *metrics.History
	// Global is the final global parameter vector.
	Global []float32
	// FinalModel holds the final parameters, ready for evaluation.
	FinalModel *nn.Model
}

// Run executes Algorithm 1 in a single process: the global model is
// initialized from the seed, and each round samples a cohort, trains all
// cohort clients concurrently (each in its own goroutine with its own model
// replica and data stream), aggregates surviving updates into a
// pseudo-gradient, and applies the outer optimizer. It is deterministic for
// a fixed config.
//
// Cancelling ctx stops the run promptly — in-flight clients abort between
// local steps and the interrupted round is discarded — and Run returns the
// partial Result for the completed rounds together with ctx.Err().
func Run(ctx context.Context, cfg RunConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	// traceRng mints per-round trace IDs from its own stream so tracing
	// never perturbs cohort sampling or dropout draws.
	traceRng := rand.New(rand.NewSource(int64(uint64(cfg.Seed) ^ 0x9E3779B97F4A7C15)))
	globalModel := nn.NewModel(cfg.ModelConfig, rng)
	if cfg.InitParams != nil {
		if err := globalModel.Params().LoadFlat(cfg.InitParams); err != nil {
			return nil, fmt.Errorf("fed: InitParams: %w", err)
		}
	}
	global := globalModel.Params().Flatten(nil)

	sampler := cfg.Sampler
	if sampler == nil {
		sampler = UniformSampler{}
	}
	// Codec simulation state: the model-broadcast encoder is shared (one
	// encode per round), while each client index keeps its own update
	// codec so error-feedback residuals accumulate per client exactly as
	// they would on real client processes.
	var modelCodec link.Codec
	var clientCodecs []link.Codec
	if cfg.Codec != "" {
		c, err := link.NewCodec(cfg.Codec)
		if err != nil {
			return nil, fmt.Errorf("fed: %w", err)
		}
		modelCodec = link.ModelCodec(c)
		clientCodecs = make([]link.Codec, len(cfg.Clients))
	}
	clientCodec := func(i int) (link.Codec, error) {
		if clientCodecs[i] == nil {
			var err error
			if clientCodecs[i], err = link.NewCodec(cfg.Codec); err != nil {
				return nil, err
			}
		}
		return clientCodecs[i], nil
	}

	// Hierarchical simulation state: the parent tier's model-broadcast
	// encoder plus one upstream codec instance per relay, so error-feedback
	// codecs (topk) accumulate residuals per relay exactly as a networked
	// fed.Relay does.
	tiers := cfg.Tiers
	if tiers <= 0 {
		tiers = 1
	}
	relays := cfg.effectiveRelays()
	var upModelCodec link.Codec
	var relayCodecs []link.Codec
	upName := cfg.UpstreamCodec
	if upName == "" {
		upName = cfg.Codec
	}
	if tiers == 2 && upName != "" {
		c, err := link.NewCodec(upName)
		if err != nil {
			return nil, fmt.Errorf("fed: upstream codec: %w", err)
		}
		upModelCodec = link.ModelCodec(c)
		relayCodecs = make([]link.Codec, relays)
	}
	relayCodec := func(g int) (link.Codec, error) {
		if relayCodecs[g] == nil {
			var err error
			if relayCodecs[g], err = link.NewCodec(upName); err != nil {
				return nil, err
			}
		}
		return relayCodecs[g], nil
	}
	var writer *ckpt.AsyncWriter
	var ckptErrSeen bool
	if cfg.CheckpointPath != "" {
		writer = ckpt.NewAsyncWriter(cfg.CheckpointPath)
		defer writer.Close()
	}

	hist := &metrics.History{}
	simTime := 0.0
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	var runErr error
	for round := cfg.StartRound + 1; round <= cfg.StartRound+cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		cohortIdx := sampler.Sample(rng, len(cfg.Clients), cfg.ClientsPerRound)
		// Draw dropout decisions up front so parallel execution stays
		// deterministic.
		dropped := make([]bool, len(cohortIdx))
		for i := range dropped {
			dropped[i] = cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb
		}
		// 52-bit trace IDs match the networked tiers' float64 Meta limit,
		// so simulated and real runs share one identifier space.
		traceID := traceRng.Uint64() & (1<<52 - 1)
		if traceID == 0 {
			traceID = 1
		}
		roundStart := time.Now()

		// Under a codec, clients train from the decoded broadcast — for a
		// lossy codec the same perturbed parameters a real remote client
		// would receive — and the encoded size is what the round pays for.
		// In a tiered simulation the broadcast chains through both tiers:
		// root → relays under the upstream codec, relays → cohort under
		// the leaf codec.
		var wire roundWire
		var downBytes, upBytes int64
		var parentDown, parentUp int64
		relayGlobal := global
		if upModelCodec != nil {
			encStart := time.Now()
			encUp, err := link.EncodeVector(upModelCodec, global)
			wire.encNs += time.Since(encStart).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("fed: round %d: %w", round, err)
			}
			decStart := time.Now()
			if relayGlobal, err = link.DecodePayload(upModelCodec, encUp); err != nil {
				return nil, fmt.Errorf("fed: round %d: %w", round, err)
			}
			wire.decNs += time.Since(decStart).Nanoseconds()
			parentDown = int64(relays) * int64(encUp.WireBytes())
			wire.payloadBytes += parentDown
			wire.denseBytes += int64(relays) * int64(len(global)) * 4
		}
		trainGlobal := relayGlobal
		if modelCodec != nil {
			encStart := time.Now()
			encModel, err := link.EncodeVector(modelCodec, relayGlobal)
			wire.encNs += time.Since(encStart).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("fed: round %d: %w", round, err)
			}
			decStart := time.Now()
			if trainGlobal, err = link.DecodePayload(modelCodec, encModel); err != nil {
				return nil, fmt.Errorf("fed: round %d: %w", round, err)
			}
			wire.decNs += time.Since(decStart).Nanoseconds()
			downBytes = int64(len(cohortIdx)) * int64(encModel.WireBytes())
			wire.payloadBytes += downBytes
			wire.denseBytes += int64(len(cohortIdx)) * int64(len(global)) * 4
		}

		type outcome struct {
			res RoundResult
			err error
			ok  bool
		}
		outcomes := make([]outcome, len(cohortIdx))
		stepBase := (round - 1) * cfg.Spec.Steps
		trainStart := time.Now()
		var wg sync.WaitGroup
		for i, ci := range cohortIdx {
			if dropped[i] {
				continue
			}
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				res, err := c.RunRound(ctx, trainGlobal, stepBase, cfg.Spec)
				outcomes[i] = outcome{res: res, err: err, ok: err == nil}
			}(i, cfg.Clients[ci])
		}
		wg.Wait()
		// Train phase is the wall time of the parallel local-training
		// section — the cohort's critical path, not per-client sums.
		trainNs := time.Since(trainStart).Nanoseconds()
		if err := ctx.Err(); err != nil {
			// The round was interrupted; discard its partial work and
			// return what completed before the cancellation.
			runErr = err
			break
		}

		var updates [][]float32
		var clientMetrics []map[string]float64
		var updGroups []int // tiered: surviving update → relay group
		lossAware, _ := sampler.(LossAware)
		for i := range outcomes {
			o := outcomes[i]
			if !o.ok {
				if o.err != nil && !errors.Is(o.err, context.Canceled) && !errors.Is(o.err, context.DeadlineExceeded) {
					return nil, fmt.Errorf("fed: round %d client %s: %w", round, cfg.Clients[cohortIdx[i]].ID, o.err)
				}
				continue // dropped or cancelled client
			}
			upd := o.res.Update
			if len(cfg.Post) > 0 {
				var err error
				upd, err = cfg.Post.Apply(upd)
				if err != nil {
					// A rejected update (e.g. NaN guard) is treated as a
					// dropout: the round proceeds with survivors.
					continue
				}
			}
			if modelCodec != nil {
				codec, err := clientCodec(cohortIdx[i])
				if err != nil {
					return nil, fmt.Errorf("fed: round %d: %w", round, err)
				}
				encStart := time.Now()
				encUpd, err := link.EncodeVector(codec, upd)
				wire.encNs += time.Since(encStart).Nanoseconds()
				if err != nil {
					return nil, fmt.Errorf("fed: round %d client %s: %w", round, cfg.Clients[cohortIdx[i]].ID, err)
				}
				decStart := time.Now()
				if upd, err = link.DecodePayload(codec, encUpd); err != nil {
					return nil, fmt.Errorf("fed: round %d client %s: %w", round, cfg.Clients[cohortIdx[i]].ID, err)
				}
				wire.decNs += time.Since(decStart).Nanoseconds()
				upBytes += int64(encUpd.WireBytes())
				wire.payloadBytes += int64(encUpd.WireBytes())
				wire.denseBytes += int64(encUpd.Elems) * 4
			}
			updates = append(updates, upd)
			clientMetrics = append(clientMetrics, o.res.Metrics)
			if tiers == 2 {
				// Static fleet partition: client index ci always belongs to
				// relay ci·R/N, exactly like a deployment where each relay
				// serves a fixed slice of the fleet — so per-relay
				// error-feedback residuals stay with the same client set
				// across rounds regardless of cohort sampling order.
				updGroups = append(updGroups, cohortIdx[i]*relays/len(cfg.Clients))
			}
			if lossAware != nil {
				lossAware.ObserveLoss(cohortIdx[i], o.res.Metrics["loss"])
			}
		}

		// Hierarchical fold: each relay group's survivors fold into a
		// group mean (optionally crossing the upstream codec, per-relay
		// error feedback included), and the root aggregates relay means.
		rootUpdates := updates
		if tiers == 2 && len(updates) > 0 {
			groups := make([][][]float32, relays)
			for j, u := range updates {
				groups[updGroups[j]] = append(groups[updGroups[j]], u)
			}
			rootUpdates = nil
			for g := range groups {
				if len(groups[g]) == 0 {
					continue // an emptied cohort sends nothing upstream
				}
				mean, err := MeanDelta(groups[g])
				if err != nil {
					return nil, err
				}
				if upModelCodec != nil {
					codec, err := relayCodec(g)
					if err != nil {
						return nil, fmt.Errorf("fed: round %d: %w", round, err)
					}
					encStart := time.Now()
					encMean, err := link.EncodeVector(codec, mean)
					wire.encNs += time.Since(encStart).Nanoseconds()
					if err != nil {
						return nil, fmt.Errorf("fed: round %d relay %d: %w", round, g, err)
					}
					decStart := time.Now()
					if mean, err = link.DecodePayload(codec, encMean); err != nil {
						return nil, fmt.Errorf("fed: round %d relay %d: %w", round, g, err)
					}
					wire.decNs += time.Since(decStart).Nanoseconds()
					parentUp += int64(encMean.WireBytes())
					wire.payloadBytes += int64(encMean.WireBytes())
					wire.denseBytes += int64(encMean.Elems) * 4
				}
				rootUpdates = append(rootUpdates, mean)
			}
		}

		paramBytes := int64(len(global)) * 4
		rec := metrics.Round{
			Round:   round,
			Clients: len(updates),
			Depth:   tiers,
			// Model broadcast to the sampled cohort plus surviving uploads
			// (plus, when tiered, the parent tier's relay exchanges).
			CommBytes: int64(len(cohortIdx))*paramBytes + int64(len(updates))*paramBytes,
		}
		if tiers == 2 && upModelCodec == nil {
			rec.CommBytes += int64(relays+len(rootUpdates)) * paramBytes
			rec.WireSentBytes = int64(relays) * paramBytes
			rec.WireRecvBytes = int64(len(rootUpdates)) * paramBytes
		}
		if modelCodec != nil || upModelCodec != nil {
			// Codec accounting: the round pays for encoded payload bytes
			// (headerless — the simulator has no frames). Flat runs split
			// them into the aggregator's send/receive sides; tiered runs
			// report the parent link's bytes there instead, which is what
			// a relay deployment actually moves inter-region.
			rec.CommBytes = wire.payloadBytes
			if modelCodec == nil {
				// Upstream-only codec: the leaf tier still moves raw dense
				// vectors, so charge them at the element-count estimate —
				// otherwise CommBytes would silently drop a whole tier.
				rec.CommBytes += int64(len(cohortIdx))*paramBytes + int64(len(updates))*paramBytes
			}
			rec.WireSentBytes = downBytes
			rec.WireRecvBytes = upBytes
			if tiers == 2 {
				rec.WireSentBytes = parentDown
				rec.WireRecvBytes = parentUp
			}
			rec.EncodeMs = float64(wire.encNs) / 1e6
			rec.DecodeMs = float64(wire.decNs) / 1e6
			if wire.denseBytes > 0 {
				rec.CompressionRatio = float64(wire.payloadBytes) / float64(wire.denseBytes)
			}
		}
		var aggNs int64
		if len(rootUpdates) > 0 {
			aggStart := time.Now()
			var delta []float32
			var err error
			if ca, ok := cfg.Outer.(CohortAggregator); ok {
				delta, err = ca.Aggregate(rootUpdates)
			} else {
				delta, err = MeanDelta(rootUpdates)
			}
			if err != nil {
				return nil, err
			}
			cfg.Outer.Step(global, delta, round)
			aggNs = time.Since(aggStart).Nanoseconds()
			rec.UpdateNorm = norm2(delta)
			rec.TrainLoss = metrics.AggMetrics(clientMetrics)["loss"]
		}

		if cfg.TimeModel != nil {
			simTime += cfg.TimeModel.RoundTime(cfg.Topology, len(cohortIdx))
		}
		rec.SimSeconds = simTime

		var evalNs int64
		if cfg.Validation != nil && (round%evalEvery == 0 || round == cfg.StartRound+cfg.Rounds) {
			evalStart := time.Now()
			if err := globalModel.Params().LoadFlat(global); err != nil {
				return nil, err
			}
			rec.ValPPL = cfg.Validation.Evaluate(globalModel)
			evalNs = time.Since(evalStart).Nanoseconds()
		}
		rec.TraceID = traceID
		rec.WallMs = float64(time.Since(roundStart).Nanoseconds()) / 1e6
		var pn obsv.PhaseNanos
		pn.Add(obsv.PhaseTrain, trainNs)
		pn.Add(obsv.PhaseEncode, wire.encNs)
		pn.Add(obsv.PhaseDecode, wire.decNs)
		pn.Add(obsv.PhaseAggregate, aggNs)
		pn.Add(obsv.PhaseEval, evalNs)
		rec.Phases = pn.Breakdown()
		hist.Append(rec)
		if cfg.OnRound != nil {
			cfg.OnRound(rec)
		}

		if writer != nil {
			snapshot := make([]float32, len(global))
			copy(snapshot, global)
			writer.Submit(&ckpt.Checkpoint{
				Round:  round,
				Step:   round * cfg.Spec.Steps,
				Meta:   map[string]float64{"ppl": rec.ValPPL, "loss": rec.TrainLoss},
				Params: snapshot,
			})
			// Surface a failed write mid-run (once) instead of letting it
			// hide until Close: the operator learns the run has no durable
			// checkpoints while there is still time to fix the disk.
			noteCheckpointErr(&ckptErrSeen, writer.Err())
		}
		if cfg.StopAtPPL > 0 && rec.ValPPL > 0 && rec.ValPPL <= cfg.StopAtPPL {
			break
		}
	}

	if err := globalModel.Params().LoadFlat(global); err != nil {
		return nil, err
	}
	return &Result{History: hist, Global: global, FinalModel: globalModel}, runErr
}

func norm2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
