package fed

// The mode-pluggable aggregation core behind Serve. Serve owns everything
// around the seam — listener, handshakes, membership, liveness, WAL/registry
// setup, shutdown — and hands the assembled aggState to exactly one
// Aggregator implementation:
//
//   - syncAggregator: the deadline-based synchronous round loop (sample a
//     cohort, broadcast, collect until the deadline, fold with MeanDelta,
//     emit one outer step per round).
//   - asyncAggregator (async.go): the FedBuff-style asynchronous mode
//     (broadcast continuously-versioned models, fold arrivals into a
//     staleness-weighted buffer, emit a commit every K folds).
//
// Both modes are the same collect → fold → emit state machine; they differ
// only in what bounds a collect window (a deadline vs a buffer count) and
// in how a fold weighs its inputs (uniform mean vs staleness weights).

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"photon/internal/ckpt"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/obsv"
)

// compactEvery is how many commits the journal folds into the base
// checkpoint at a time, bounding replay time by the compaction window
// rather than the run length.
const compactEvery = 8

// Aggregator is the aggregation-core seam: one collect → fold → emit state
// machine with a synchronous and an asynchronous implementation. run drives
// the machine to completion and returns Serve's result; it is unexported
// because implementations share the package-private server plumbing.
type Aggregator interface {
	// Mode names the aggregation mode ("sync" or "async") for logs and
	// registry lineage.
	Mode() string

	run(ctx context.Context) (*Result, error)
}

// aggState is everything Serve assembles before handing control to an
// Aggregator: server plumbing, model and optimizer state, run bookkeeping,
// and the finish/fail exits that package (possibly partial) results.
type aggState struct {
	s   *server
	cfg ServerConfig

	k          int // cohort size per collect window (bounded by membership)
	minClients int
	evalEvery  int

	rng      *rand.Rand // cohort sampling / model init stream
	traceRng *rand.Rand // trace-ID stream, separate so tracing never perturbs sampling

	globalModel *nn.Model
	global      []float32
	hist        *metrics.History

	registry *ckpt.Registry
	lineage  map[string]string

	// finish packages the (possibly partial) run: completed rounds are
	// never discarded, even when the run ends on a membership or
	// no-progress error. fail routes a loop error through finish,
	// downgrading the exit to abrupt when an armed crash point fired.
	finish func(error) (*Result, error)
	fail   func(int, error) (*Result, error)
}

// syncAggregator is the deadline-based synchronous mode: one collect →
// fold → emit cycle per round, stragglers dropped (and down-weighted) at
// the round deadline.
type syncAggregator struct {
	*aggState
	resume *serverResume
}

func (a *syncAggregator) Mode() string { return "sync" }

func (a *syncAggregator) run(ctx context.Context) (*Result, error) {
	s, cfg, resume := a.s, a.cfg, a.resume
	startRound := resume.committed + 1
	commits := 0

	// emptyRounds counts consecutive rounds that aggregated zero updates
	// (every cohort member straggled past the deadline or failed). A few
	// in a row mean the run is burning rounds without training — better to
	// stop with the partial result than to silently "complete".
	const maxEmptyRounds = 3
	emptyRounds := 0

	// Wire-accounting windows tile the run with no gaps: each round's
	// window starts where the previous one ended, so traffic between
	// exchanges (heartbeats during aggregation and evaluation, rejoin
	// waits) is attributed to the next recorded round rather than lost,
	// and the per-round sums add up to the meter's cumulative totals.
	sentPrev, recvPrev := s.meter.Totals()
	// depth is the aggregation depth stamped on round records: 1 until a
	// relay identifies itself, then sticky at 2 — an empty round (every
	// relay straggled) does not mean the topology collapsed to flat.
	depth := 1
	var runErr error
	for round := startRound; round <= cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		// Membership floor: give evicted members a grace window to rejoin
		// before declaring the run dead.
		rejoinGrace := cfg.RoundDeadline
		if rejoinGrace <= 0 {
			rejoinGrace = 10 * time.Second
		}
		if err := s.waitAlive(ctx, a.minClients, rejoinGrace); err != nil {
			if ctx.Err() != nil {
				runErr = ctx.Err()
				break
			}
			return a.finish(fmt.Errorf("fed: round %d: %w", round, err))
		}

		// A WAL replay may hand this round back partially done: pre carries
		// the journaled cohort and the updates that already arrived before
		// the crash. Consume it exactly once.
		var pre *openRound
		if resume.open != nil && resume.open.round == round {
			pre = resume.open
			resume.open = nil
		}
		epoch := s.membershipEpoch()

		if pre != nil && pre.stepped {
			// The crash hit after the outer step: the journaled post-step
			// state is trusted only when it is complete — params plus the
			// outer snapshot when the optimizer is stateful. A crash that
			// landed between the two records left post-step params next to
			// pre-step momentum; using them together would corrupt the
			// trajectory, so the incomplete pair is discarded and the step
			// is redone below from the journaled updates instead.
			if snapshotOuter(cfg.Outer) == nil || pre.snapped {
				if len(pre.postGlobal) != len(a.global) {
					return a.fail(round, fmt.Errorf("journaled step has %d params, model has %d", len(pre.postGlobal), len(a.global)))
				}
				copy(a.global, pre.postGlobal)
				if pre.snapped {
					if err := restoreOuter(cfg.Outer, pre.postOuter); err != nil {
						return a.fail(round, err)
					}
				}
				if err := s.jrn.roundCommit(round, epoch); err != nil {
					return a.fail(round, err)
				}
				commits++
				if a.registry != nil {
					publishRegistry(a.registry, round, a.global, a.lineage)
				}
				emptyRounds = 0
				continue
			}
			pre.stepped = false
		}

		var cohort []*memberConn
		var preUpdates [][]float32
		var preMetrics []map[string]float64
		if pre != nil {
			// Re-open the journaled cohort: keep the updates that survived
			// in the log, re-ask only the members whose updates were lost.
			// Members that answered pre-crash are never re-trained — their
			// data streams must not advance twice for one round.
			for _, id := range pre.order {
				preUpdates = append(preUpdates, pre.updates[id])
				preMetrics = append(preMetrics, map[string]float64{})
			}
			for _, id := range pre.cohort {
				if _, done := pre.updates[id]; done {
					continue
				}
				if mc := s.get(id); mc != nil {
					cohort = append(cohort, mc)
				}
			}
			if len(cohort) == 0 && len(preUpdates) == 0 {
				// Nothing journaled and nobody reconnected yet: retry the
				// round as a fresh draw against the refreshed membership.
				round--
				continue
			}
		} else {
			cohortInfos := s.reg.SampleCohort(a.rng, a.k, cfg.OverProvision)
			cohort = make([]*memberConn, 0, len(cohortInfos))
			ids := make([]string, 0, len(cohortInfos))
			for _, info := range cohortInfos {
				if mc := s.get(info.ID); mc != nil {
					cohort = append(cohort, mc)
					ids = append(ids, info.ID)
				}
			}
			if len(cohort) == 0 {
				// Sampled members vanished between the wait and the draw;
				// retry the round against the refreshed membership.
				round--
				continue
			}
			if err := s.jrn.roundOpen(round, epoch, ids); err != nil {
				return a.fail(round, err)
			}
		}

		// Meta values ride the wire as float64, so trace IDs are confined
		// to 52 bits — they survive the float round-trip exactly.
		traceID := a.traceRng.Uint64() & (1<<52 - 1)
		if traceID == 0 {
			traceID = 1
		}
		roundStart := time.Now()
		updates, clientMetrics, wire, phases, interrupted, err := s.exchangeRound(ctx, round, traceID, a.global, cohort, pre != nil)
		if err != nil {
			return a.fail(round, err)
		}
		if interrupted {
			runErr = ctx.Err()
			break
		}
		// Journaled pre-crash updates come first (their arrival order is
		// the log order), freshly collected ones after.
		if len(preUpdates) > 0 {
			updates = append(preUpdates, updates...)
			clientMetrics = append(preMetrics, clientMetrics...)
		}
		sentAfter, recvAfter := s.meter.Totals()
		sentRound, recvRound := sentAfter-sentPrev, recvAfter-recvPrev
		sentPrev, recvPrev = sentAfter, recvAfter

		// Depth 2 once any member identifies itself as an aggregation
		// tier (a relay stamps CohortKey on its upstream updates).
		for _, m := range clientMetrics {
			if _, ok := m[link.CohortKey]; ok {
				depth = 2
				break
			}
		}

		churn := s.reg.RoundDelta()
		rec := metrics.Round{
			Round:   round,
			Clients: len(updates),
			Depth:   depth,
			// Real wire traffic measured over the round's window, frame
			// headers and heartbeats included — not an element-count
			// estimate.
			WireSentBytes:     sentRound,
			WireRecvBytes:     recvRound,
			CommBytes:         sentRound + recvRound,
			EncodeMs:          float64(wire.encNs) / 1e6,
			DecodeMs:          float64(wire.decNs) / 1e6,
			Joins:             churn.Joins + churn.Rejoins,
			Evictions:         churn.Evictions,
			Stragglers:        churn.Stragglers,
			HeartbeatRTTMs:    churn.HeartbeatRTTMs,
			HeartbeatRTTP99Ms: churn.HeartbeatRTTP99Ms,
			TraceID:           traceID,
		}
		if wire.denseBytes > 0 {
			rec.CompressionRatio = float64(wire.payloadBytes) / float64(wire.denseBytes)
		}
		if len(updates) > 0 {
			aggSpan := s.tracer.Begin(obsv.PhaseAggregate)
			delta, err := MeanDelta(updates)
			if err != nil {
				return nil, err
			}
			cfg.Outer.Step(a.global, delta, round)
			// Journal the post-step params (bit-for-bit restore on replay,
			// no re-aggregation) plus the optimizer's momentum state.
			if err := s.jrn.outerStep(round, a.global, cfg.Outer); err != nil {
				return a.fail(round, err)
			}
			phases.pn.Add(obsv.PhaseAggregate, aggSpan.End(traceID))
			rec.UpdateNorm = norm2(delta)
			rec.TrainLoss = metrics.AggMetrics(clientMetrics)["loss"]
		}
		if cfg.Validation != nil && (round%a.evalEvery == 0 || round == cfg.Rounds) {
			evalSpan := s.tracer.Begin(obsv.PhaseEval)
			if err := a.globalModel.Params().LoadFlat(a.global); err != nil {
				return nil, err
			}
			rec.ValPPL = cfg.Validation.Evaluate(a.globalModel)
			phases.pn.Add(obsv.PhaseEval, evalSpan.End(traceID))
		}
		rec.WallMs = float64(time.Since(roundStart).Nanoseconds()) / 1e6
		rec.Phases = phases.pn.Breakdown()
		rec.SlowestID = phases.slowestID
		if phases.slowestID != "" {
			rec.SlowestPhase = phases.slowestPhase.String()
		}
		a.hist.Append(rec)
		if cfg.OnRound != nil {
			cfg.OnRound(rec)
		}
		s.publishRound(rec, nil)
		if len(updates) > 0 {
			// Seal the round (the journal's one fsync), publish the
			// committed checkpoint, and periodically fold the log into the
			// base checkpoint so replay time stays bounded.
			if err := s.jrn.roundCommit(round, epoch); err != nil {
				return a.fail(round, err)
			}
			commits++
			if a.registry != nil {
				publishRegistry(a.registry, round, a.global, a.lineage)
			}
			if commits%compactEvery == 0 {
				snap := make([]float32, len(a.global))
				copy(snap, a.global)
				base := &ckpt.Checkpoint{Round: round, Meta: map[string]float64{"loss": rec.TrainLoss}, Params: snap}
				// The base checkpoint holds params only, so the outer
				// optimizer's momentum must be carried into the fresh
				// log segment or a post-compaction resume would lose it.
				var carry []ckpt.Record
				if st := snapshotOuter(cfg.Outer); st != nil {
					carry = append(carry, ckpt.Record{Type: ckpt.RecStateSnapshot, Round: round, Member: snapOuter, Vec: st})
				}
				if err := s.jrn.compact(base, carry); err != nil {
					return a.fail(round, err)
				}
			}
		}
		if len(updates) == 0 {
			if emptyRounds++; emptyRounds >= maxEmptyRounds {
				return a.finish(fmt.Errorf("fed: no client updates for %d consecutive rounds", emptyRounds))
			}
		} else {
			emptyRounds = 0
		}
	}

	return a.finish(runErr)
}

// mintTrace draws a fresh 52-bit trace ID from the dedicated trace stream
// (Meta values ride the wire as float64, so trace IDs must survive the
// float round-trip exactly).
func (a *aggState) mintTrace() uint64 {
	id := a.traceRng.Uint64() & (1<<52 - 1)
	if id == 0 {
		id = 1
	}
	return id
}
