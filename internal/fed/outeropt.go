// Package fed implements Photon's federated optimization core — the paper's
// primary contribution. It provides Algorithm 1 end to end: the Aggregator
// round loop with uniform client sampling and partial participation, the
// server-side outer optimizers (FedAvg, FedAvg with server momentum, and
// DiLoCo's outer Nesterov SGD used as the state-of-the-art baseline), the
// LLM client local training pipeline with stateless AdamW, hardware-driven
// strategy selection including nested sub-federations (lines 19–25), update
// post-processing, dropout handling, checkpointing, and both a deterministic
// in-process simulation driver and a real networked aggregator/client over
// the link transport.
package fed

import (
	"fmt"

	"photon/internal/tensor"
)

// OuterOpt is the server optimizer of Algorithm 1 line 9: it consumes the
// round's pseudo-gradient Δt = θt − mean_k(θt_k) and updates the global
// parameters in place.
type OuterOpt interface {
	// Step applies θ_{t+1} = ServerOpt(θ_t, −Δ_t, t).
	Step(global, delta []float32, round int)
	// Name identifies the optimizer in logs and checkpoints.
	Name() string
}

// OuterState is implemented by server optimizers that carry state across
// rounds (momentum buffers). The durable control plane snapshots it into
// the WAL after every outer step and restores it on resume, so a restarted
// aggregator's optimizer continues from the exact pre-crash trajectory.
// FedAvg is stateless and does not implement it.
type OuterState interface {
	// Snapshot returns a copy of the optimizer state (nil before the
	// first step).
	Snapshot() []float32
	// Restore replaces the optimizer state with a copy of s; nil or empty
	// resets to the fresh-optimizer state.
	Restore(s []float32) error
}

// snapshotOuter copies an optimizer's state, nil for stateless ones.
func snapshotOuter(o OuterOpt) []float32 {
	if s, ok := o.(OuterState); ok {
		return s.Snapshot()
	}
	return nil
}

// restoreOuter restores a snapshot taken by snapshotOuter; a no-op for
// stateless optimizers.
func restoreOuter(o OuterOpt, s []float32) error {
	if so, ok := o.(OuterState); ok && len(s) > 0 {
		return so.Restore(s)
	}
	return nil
}

// copyState is the shared Snapshot/Restore plumbing for the momentum
// optimizers.
func copyState(v []float32) []float32 {
	if v == nil {
		return nil
	}
	return append([]float32(nil), v...)
}

// FedAvg is federated averaging with server learning rate ηs: the paper's
// default is ηs = 1, which makes the new global model exactly the mean of
// the client models. Photon's headline recipe is FedAvg(1.0) combined with
// small local batches and high client learning rates.
type FedAvg struct {
	LR float64 // ηs; 0 means 1.0
}

// Name implements OuterOpt.
func (f FedAvg) Name() string { return "fedavg" }

// Step implements OuterOpt: θ ← θ − ηs·Δ.
func (f FedAvg) Step(global, delta []float32, _ int) {
	lr := f.LR
	if lr == 0 {
		lr = 1
	}
	tensor.Axpy(float32(-lr), delta, global)
}

// FedMom is FedAvg with server momentum (FedAvgM / federated momentum): the
// pseudo-gradient accumulates into a velocity buffer before being applied.
// The paper's Table 5 sweeps µs ∈ {0, 0.9}.
type FedMom struct {
	LR float64 // ηs
	Mu float64 // µs

	v []float32
}

// NewFedMom constructs the server-momentum optimizer.
func NewFedMom(lr, mu float64) *FedMom { return &FedMom{LR: lr, Mu: mu} }

// Name implements OuterOpt.
func (f *FedMom) Name() string { return "fedmom" }

// Step implements OuterOpt: v ← µv + Δ ; θ ← θ − ηs·v.
func (f *FedMom) Step(global, delta []float32, _ int) {
	if f.v == nil {
		f.v = make([]float32, len(global))
	}
	mu := float32(f.Mu)
	lr := float32(f.LR)
	for i, d := range delta {
		f.v[i] = mu*f.v[i] + d
		global[i] -= lr * f.v[i]
	}
}

// Snapshot implements OuterState: the velocity buffer.
func (f *FedMom) Snapshot() []float32 { return copyState(f.v) }

// Restore implements OuterState.
func (f *FedMom) Restore(s []float32) error {
	if len(s) == 0 {
		f.v = nil
		return nil
	}
	if f.v != nil && len(f.v) != len(s) {
		return fmt.Errorf("fed: fedmom state size changed: %d vs snapshot %d", len(f.v), len(s))
	}
	f.v = copyState(s)
	return nil
}

// DiLoCo is the outer optimizer of Douillard et al.: SGD with Nesterov
// momentum over pseudo-gradients, the baseline Photon is compared against in
// Table 3 and Figure 8 (recommended µ = 0.9; the only stable server learning
// rate in the paper's sweep was ηs = 0.1).
type DiLoCo struct {
	LR float64 // ηs
	Mu float64 // Nesterov momentum coefficient

	v []float32
}

// NewDiLoCo constructs the DiLoCo outer optimizer.
func NewDiLoCo(lr, mu float64) *DiLoCo { return &DiLoCo{LR: lr, Mu: mu} }

// Name implements OuterOpt.
func (d *DiLoCo) Name() string { return "diloco" }

// Step implements OuterOpt with the Nesterov form:
// v ← µv + Δ ; θ ← θ − ηs·(Δ + µv).
func (d *DiLoCo) Step(global, delta []float32, _ int) {
	if d.v == nil {
		d.v = make([]float32, len(global))
	}
	mu := float32(d.Mu)
	lr := float32(d.LR)
	for i, g := range delta {
		d.v[i] = mu*d.v[i] + g
		global[i] -= lr * (g + mu*d.v[i])
	}
}

// Snapshot implements OuterState: the Nesterov velocity buffer.
func (d *DiLoCo) Snapshot() []float32 { return copyState(d.v) }

// Restore implements OuterState.
func (d *DiLoCo) Restore(s []float32) error {
	if len(s) == 0 {
		d.v = nil
		return nil
	}
	if d.v != nil && len(d.v) != len(s) {
		return fmt.Errorf("fed: diloco state size changed: %d vs snapshot %d", len(d.v), len(s))
	}
	d.v = copyState(s)
	return nil
}

// MeanDelta computes the round pseudo-gradient Δt = mean_k(θt − θt_k) from
// the surviving clients' updates (each update is already θt − θt_k). It
// errors on an empty or ragged set.
func MeanDelta(updates [][]float32) ([]float32, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fed: no client updates to aggregate")
	}
	n := len(updates[0])
	out := make([]float32, n)
	for i, u := range updates {
		if len(u) != n {
			return nil, fmt.Errorf("fed: update %d has %d params, want %d", i, len(u), n)
		}
		tensor.Add(out, u)
	}
	tensor.Scale(1/float32(len(updates)), out)
	return out, nil
}
