package fed

import (
	"testing"
	"time"

	"photon/internal/cluster"
	"photon/internal/metrics"
	"photon/internal/obsv"
)

func TestObserveMessageRoundTrip(t *testing.T) {
	rec := metrics.Round{
		Round:             7,
		TrainLoss:         3.25,
		ValPPL:            41.5,
		Clients:           4,
		Tier:              0,
		Depth:             2,
		WireSentBytes:     123456,
		WireRecvBytes:     654321,
		CommBytes:         123456 + 654321,
		CompressionRatio:  0.25,
		EncodeMs:          1.5,
		DecodeMs:          2.5,
		WallMs:            321.5,
		Joins:             2,
		Evictions:         1,
		Stragglers:        3,
		HeartbeatRTTMs:    0.5,
		HeartbeatRTTP99Ms: 4.5,
		TraceID:           (1 << 52) - 17,
		ModelVersion:      9,
		BufferFill:        3,
		MeanStaleness:     0.5,
		SlowestID:         "relay-west",
		Phases: obsv.Breakdown{
			BroadcastMs: 1, TrainMs: 300, EncodeMs: 2, WireMs: 10,
			DecodeMs: 3, AggregateMs: 4, EvalMs: 5,
		},
	}
	alive := []cluster.Info{
		{ID: "a", Health: 1, HeartbeatRTT: 2 * time.Millisecond, Straggles: 0},
		{ID: "b", Health: 0.5, HeartbeatRTT: 7 * time.Millisecond, Straggles: 3},
	}
	ev := parseObserve(observeMessage(rec, alive, map[string]int{"b": 2}))
	got := ev.Record
	// SimSeconds/UpdateNorm/SlowestPhase don't ride the observe frame.
	if got != rec {
		t.Fatalf("record round-trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	if len(ev.Members) != 2 {
		t.Fatalf("members = %+v", ev.Members)
	}
	if ev.Members[0].ID != "a" || ev.Members[0].Health != 1 || ev.Members[0].RTTMs != 2 {
		t.Fatalf("member a = %+v", ev.Members[0])
	}
	if ev.Members[1].ID != "b" || ev.Members[1].Straggles != 3 || ev.Members[1].RTTMs != 7 {
		t.Fatalf("member b = %+v", ev.Members[1])
	}
	if ev.Members[0].Staleness != 0 || ev.Members[1].Staleness != 2 {
		t.Fatalf("staleness: a=%d b=%d, want 0 and 2", ev.Members[0].Staleness, ev.Members[1].Staleness)
	}
}

func TestObserveMessageCapsMembers(t *testing.T) {
	alive := make([]cluster.Info, obsMemberCap+10)
	for i := range alive {
		alive[i] = cluster.Info{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Health: 1}
	}
	ev := parseObserve(observeMessage(metrics.Round{Round: 1}, alive, nil))
	if len(ev.Members) != obsMemberCap {
		t.Fatalf("got %d members, want cap %d", len(ev.Members), obsMemberCap)
	}
}
