package fed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"photon/internal/tensor"
)

// CohortAggregator is an optional OuterOpt extension: outer optimizers that
// need the individual client updates (not just their mean) implement it, and
// the Run loop feeds them the full cohort.
type CohortAggregator interface {
	// Aggregate reduces the cohort's updates (each θt − θt_k) to the round
	// pseudo-gradient.
	Aggregate(updates [][]float32) ([]float32, error)
}

// TiesMerge is the interference-resolving aggregation of Yadav et al.
// (TIES-merging), which Section 6 suggests for heterogeneous data: each
// client update is trimmed to its top-magnitude fraction, a per-coordinate
// majority sign is elected by total magnitude, and only the values agreeing
// with the elected sign are averaged. It applies the merged pseudo-gradient
// with server learning rate LR.
type TiesMerge struct {
	LR   float64 // ηs; 0 means 1.0
	Keep float64 // fraction of top-magnitude coordinates kept per client (0 → 0.2)
}

// Name implements OuterOpt.
func (t *TiesMerge) Name() string { return "ties" }

// Step implements OuterOpt.
func (t *TiesMerge) Step(global, delta []float32, _ int) {
	lr := t.LR
	if lr == 0 {
		lr = 1
	}
	tensor.Axpy(float32(-lr), delta, global)
}

// Aggregate implements CohortAggregator with trim → elect → disjoint merge.
func (t *TiesMerge) Aggregate(updates [][]float32) ([]float32, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fed: ties: no updates")
	}
	n := len(updates[0])
	keep := t.Keep
	if keep <= 0 || keep > 1 {
		keep = 0.2
	}

	trimmed := make([][]float32, len(updates))
	for i, u := range updates {
		if len(u) != n {
			return nil, fmt.Errorf("fed: ties: ragged updates")
		}
		trimmed[i] = trimTopK(u, keep)
	}
	out := make([]float32, n)
	for j := 0; j < n; j++ {
		// Elect the sign carrying the most total magnitude.
		var pos, neg float64
		for i := range trimmed {
			v := float64(trimmed[i][j])
			if v > 0 {
				pos += v
			} else {
				neg -= v
			}
		}
		sign := float32(1)
		if neg > pos {
			sign = -1
		}
		// Disjoint merge: average contributors agreeing with the sign.
		var sum float64
		count := 0
		for i := range trimmed {
			v := trimmed[i][j]
			if v != 0 && (v > 0) == (sign > 0) {
				sum += float64(v)
				count++
			}
		}
		if count > 0 {
			out[j] = float32(sum / float64(count))
		}
	}
	return out, nil
}

// trimTopK returns a copy of u keeping only the keep-fraction of
// largest-magnitude coordinates.
func trimTopK(u []float32, keep float64) []float32 {
	k := int(math.Ceil(keep * float64(len(u))))
	if k >= len(u) {
		out := make([]float32, len(u))
		copy(out, u)
		return out
	}
	mags := make([]float32, len(u))
	for i, v := range u {
		if v < 0 {
			mags[i] = -v
		} else {
			mags[i] = v
		}
	}
	sorted := append([]float32(nil), mags...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	thresh := sorted[k-1]
	out := make([]float32, len(u))
	for i, v := range u {
		if mags[i] >= thresh {
			out[i] = v
		}
	}
	return out
}

// LossAware is an optional Sampler extension: samplers that bias selection
// by client training loss receive per-client observations after each round.
type LossAware interface {
	ObserveLoss(clientIdx int, loss float64)
}

// PowerOfChoice is the loss-biased client selection of Cho et al. (Section
// 6): each round it draws D candidate clients uniformly and selects the K
// with the highest last-observed training loss, prioritizing clients the
// global model currently serves worst. Unobserved clients rank first so
// every client is explored.
type PowerOfChoice struct {
	D int // candidate pool size per round (0 → 2K)

	lastLoss map[int]float64
}

// Sample implements Sampler.
func (p *PowerOfChoice) Sample(rng *rand.Rand, population, k int) []int {
	if k > population {
		k = population
	}
	d := p.D
	if d <= 0 {
		d = 2 * k
	}
	if d > population {
		d = population
	}
	candidates := rng.Perm(population)[:d]
	sort.SliceStable(candidates, func(a, b int) bool {
		return p.lossOf(candidates[a]) > p.lossOf(candidates[b])
	})
	return candidates[:k]
}

func (p *PowerOfChoice) lossOf(idx int) float64 {
	if l, ok := p.lastLoss[idx]; ok {
		return l
	}
	return math.Inf(1) // unexplored clients first
}

// ObserveLoss implements LossAware.
func (p *PowerOfChoice) ObserveLoss(clientIdx int, loss float64) {
	if p.lastLoss == nil {
		p.lastLoss = map[int]float64{}
	}
	p.lastLoss[clientIdx] = loss
}
