package fed

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/ckpt"
	"photon/internal/data"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/testutil"
)

func reconClient(id string) *Client {
	cfg := nn.ConfigTiny
	cfg.SeqLen = 16
	stream := data.NewShard(data.C4Like(cfg.VocabSize), 0, 7)
	return NewClient(id, cfg, stream, opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
}

func reconSpec() LocalSpec {
	return LocalSpec{Steps: 2, BatchSize: 2, SeqLen: 16, Schedule: opt.Constant(3e-3)}
}

// announceDense performs the aggregator half of the codec handshake for
// hand-rolled test aggregators: announce the dense codec, then consume the
// client's join/ack. It returns the join message.
func announceDense(conn *link.Conn) (*link.Message, error) {
	err := conn.Send(&link.Message{
		Type:     link.MsgCodecAnnounce,
		ClientID: "dense",
		Meta:     map[string]float64{link.CodecIDKey: float64(link.CodecWireID("dense"))},
	})
	if err != nil {
		return nil, err
	}
	return conn.Recv()
}

// fakeAggregator answers one ServeClient session over a pipe: it announces
// the codec, consumes the join/ack, serves `rounds` model/update exchanges,
// and shuts down.
func fakeAggregator(t *testing.T, conn *link.Conn, rounds int) {
	t.Helper()
	if msg, err := announceDense(conn); err != nil || msg.Type != link.MsgJoin {
		t.Errorf("expected join, got %v (%v)", msg, err)
		return
	}
	params := make([]float32, reconClient("x").Model.NumParams())
	for r := 1; r <= rounds; r++ {
		if err := conn.Send(&link.Message{Type: link.MsgModel, Round: int32(r), Payload: link.Dense(params)}); err != nil {
			t.Errorf("send model: %v", err)
			return
		}
		reply, err := conn.Recv()
		if err != nil || reply.Type != link.MsgUpdate {
			t.Errorf("expected update, got %v (%v)", reply, err)
			return
		}
	}
	conn.Send(&link.Message{Type: link.MsgShutdown})
	// Drain until the client hangs up so the shutdown is not reset.
	for {
		if _, err := conn.Recv(); err != nil {
			return
		}
	}
}

// TestResilientClientInitialDialNotRetried: failing to reach the
// aggregator at startup is a configuration error, reported immediately
// without burning reconnect attempts.
func TestResilientClientInitialDialNotRetried(t *testing.T) {
	var dials atomic.Int32
	dialErr := errors.New("nobody home")
	dial := func(context.Context) (*link.Conn, error) {
		dials.Add(1)
		return nil, dialErr
	}
	err := RunResilientClient(context.Background(), dial, reconClient("c"), reconSpec(),
		ReconnectConfig{MaxAttempts: 5, InitialBackoff: time.Millisecond})
	if !errors.Is(err, dialErr) {
		t.Fatalf("want the dial error, got %v", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("initial dial retried: %d attempts", got)
	}
}

// TestResilientClientZeroAttemptsDisablesReconnect: MaxAttempts 0 is the
// plain ServeClient behavior — a lost session is fatal.
func TestResilientClientZeroAttemptsDisablesReconnect(t *testing.T) {
	var dials atomic.Int32
	dial := func(context.Context) (*link.Conn, error) {
		dials.Add(1)
		a, b := link.Pipe()
		go func() {
			announceDense(b) // session established...
			b.Close()        // ...then the "network" dies
		}()
		return a, nil
	}
	err := RunResilientClient(context.Background(), dial, reconClient("c"), reconSpec(),
		ReconnectConfig{MaxAttempts: 0})
	if err == nil {
		t.Fatal("lost session with reconnect disabled returned nil")
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dialed %d times with reconnect disabled", got)
	}
}

// TestResilientClientReconnectsThroughPipe drops the first session after
// one round and verifies the wrapper redials, rejoins, and completes the
// second session cleanly.
func TestResilientClientReconnectsThroughPipe(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var dials atomic.Int32
	dial := func(context.Context) (*link.Conn, error) {
		a, b := link.Pipe()
		if dials.Add(1) == 1 {
			go func() { // first session: one round, then the "network" dies
				if msg, _ := announceDense(b); msg == nil || msg.Type != link.MsgJoin {
					b.Close()
					return
				}
				params := make([]float32, reconClient("x").Model.NumParams())
				b.Send(&link.Message{Type: link.MsgModel, Round: 1, Payload: link.Dense(params)})
				b.Recv() // the update
				b.Close()
			}()
		} else {
			go fakeAggregator(t, b, 2)
		}
		return a, nil
	}
	var rounds []int
	err := RunResilientClient(context.Background(), dial, reconClient("c"), reconSpec(),
		ReconnectConfig{MaxAttempts: 3, InitialBackoff: time.Millisecond},
		func(r metrics.Round) { rounds = append(rounds, r.Round) })
	if err != nil {
		t.Fatal(err)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
	if len(rounds) != 3 || rounds[0] != 1 {
		t.Fatalf("served rounds %v, want [1 1 2]", rounds)
	}
}

// TestResilientClientDoesNotRetryProtocolErrors: a deterministic session
// failure (here: a protocol violation) must not trigger reconnection — a
// successful redial resets the attempt budget, so retrying a recurring
// error would spin forever.
func TestResilientClientDoesNotRetryProtocolErrors(t *testing.T) {
	var dials atomic.Int32
	dial := func(context.Context) (*link.Conn, error) {
		dials.Add(1)
		a, b := link.Pipe()
		go func() {
			announceDense(b)
			b.Send(&link.Message{Type: link.MsgMetrics})
			b.Recv() // wait for the client to hang up
			b.Close()
		}()
		return a, nil
	}
	err := RunResilientClient(context.Background(), dial, reconClient("c"), reconSpec(),
		ReconnectConfig{MaxAttempts: 5, InitialBackoff: time.Millisecond})
	if err == nil || errors.Is(err, ErrSessionLost) {
		t.Fatalf("protocol violation misclassified: %v", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("protocol error retried: %d dials", got)
	}
}

// TestResilientClientExhaustsAttempts: when the aggregator never comes
// back, the wrapper gives up after MaxAttempts with a descriptive error.
func TestResilientClientExhaustsAttempts(t *testing.T) {
	var dials atomic.Int32
	dial := func(context.Context) (*link.Conn, error) {
		if dials.Add(1) == 1 {
			a, b := link.Pipe()
			go func() {
				announceDense(b)
				b.Close()
			}()
			return a, nil
		}
		return nil, fmt.Errorf("still down")
	}
	err := RunResilientClient(context.Background(), dial, reconClient("c"), reconSpec(),
		ReconnectConfig{MaxAttempts: 3, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err == nil {
		t.Fatal("exhausted reconnects returned nil")
	}
	if got := dials.Load(); got != 4 { // 1 initial + 3 attempts
		t.Fatalf("dials = %d, want 4", got)
	}
}

// TestResilientClientCheckpointRoundTrip: the local checkpoint written
// after each round warm-starts the next process under the same path.
func TestResilientClientCheckpointRoundTrip(t *testing.T) {
	path := t.TempDir() + "/client.ckpt"
	dial := func(context.Context) (*link.Conn, error) {
		a, b := link.Pipe()
		go fakeAggregator(t, b, 2)
		return a, nil
	}
	c1 := reconClient("c")
	err := RunResilientClient(context.Background(), dial, c1, reconSpec(),
		ReconnectConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ckpt.Load(path)
	if err != nil {
		t.Fatalf("no checkpoint after run: %v", err)
	}
	if snap.Round != 2 {
		t.Fatalf("checkpoint round = %d, want 2", snap.Round)
	}
	want := c1.Model.Params().Flatten(nil)
	if len(snap.Params) != len(want) {
		t.Fatalf("checkpoint params %d, model %d", len(snap.Params), len(want))
	}

	// A fresh client under the same path warm-starts from the snapshot.
	c2 := reconClient("c")
	dial2 := func(context.Context) (*link.Conn, error) {
		a, b := link.Pipe()
		go func() {
			announceDense(b)
			b.Send(&link.Message{Type: link.MsgShutdown})
			for {
				if _, err := b.Recv(); err != nil {
					return
				}
			}
		}()
		return a, nil
	}
	if err := RunResilientClient(context.Background(), dial2, c2, reconSpec(),
		ReconnectConfig{CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	got := c2.Model.Params().Flatten(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("warm start did not restore the checkpointed parameters")
		}
	}
}
