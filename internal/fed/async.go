package fed

// asyncAggregator is the FedBuff-style asynchronous implementation of the
// Aggregator seam. The synchronous loop's collect window is a round
// deadline; here it is a buffer count: one dispatcher goroutine ("pump")
// per connected member keeps a continuously-versioned model task in flight,
// every reply is folded into a staleness-weighted buffer the moment it
// arrives, and every K folds the outer optimizer commits a new global model
// version. A straggler never gates the commit cadence — its update simply
// lands in a later buffer with weight 1/(1+staleness)^α.
//
// Concurrency discipline: pumps own the per-member send/receive I/O; the
// run loop is the only goroutine that touches the buffer, the journal, and
// the outer optimizer (arrivals serialize through one channel — the same
// single-appender rule the sync collect loop gives the WAL). The short
// mu-guarded section shared with the pumps covers the version counter, the
// per-version encoded-broadcast cache, and the commit wait channel.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/ckpt"
	"photon/internal/cluster"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/obsv"
)

// DefaultAsyncMinHealth is the admission floor the photon Job layer applies
// in async mode: members whose cluster health score fell below it keep
// receiving models (and can recover), but their updates are not folded.
const DefaultAsyncMinHealth = 0.1

// AsyncConfig tunes FedBuff-style asynchronous buffered aggregation
// (ServerConfig.Async).
type AsyncConfig struct {
	// K is the buffer size: a new global model version commits every K
	// folded updates (default 2). K must not exceed the number of members
	// expected to keep contributing, or commits stall waiting for a buffer
	// that can never fill.
	K int

	// Alpha is the staleness-weighting exponent: an update trained on a
	// model s versions behind the current one folds with weight
	// 1/(1+s)^Alpha. 0 weights all updates equally; larger values
	// down-weight stale updates harder. Negative selects the default 0.5.
	Alpha float64

	// MinHealth gates admission on the cluster health score (the same
	// score cohort sampling weights by in sync mode): updates from alive
	// members whose score is below the floor are dropped instead of
	// folded. 0 disables the gate.
	MinHealth float64
}

// norm returns the config with defaults applied.
func (c *AsyncConfig) norm() AsyncConfig {
	out := *c
	if out.K < 1 {
		out.K = 2
	}
	if out.Alpha < 0 {
		out.Alpha = 0.5
	}
	if out.MinHealth < 0 {
		out.MinHealth = 0
	}
	return out
}

// Task-ID leases: dispatch task IDs must stay unique across process lives
// (a member's data-stream position derives from them), so the run loop
// journals an upper bound ahead of the counter and tops it up — one fsync
// per leaseBlock dispatches at worst — whenever fewer than leaseLow IDs
// remain.
const (
	leaseLow   = 1 << 12
	leaseBlock = 1 << 16
)

// asyncArrival is one decoded member reply handed from a pump to the run
// loop.
type asyncArrival struct {
	mc      *memberConn
	task    int                // dispatch task ID the reply answers
	version int                // global model version the update trained on
	update  []float32          // decoded pseudo-gradient
	meta    map[string]float64 // member-reported metrics (loss, phases)
	latency time.Duration      // dispatch-to-reply wall time
}

type asyncAggregator struct {
	*aggState
	resume *asyncResume

	kBuf      int
	alpha     float64
	minHealth float64

	arrivals chan asyncArrival
	fatal    chan error    // pump-detected run-fatal errors (broken codec)
	stop     chan struct{} // closed when the run loop exits

	// taskCtr mints globally unique dispatch task IDs — the MsgModel round
	// numbers async members see. leasedThrough is the journaled bound the
	// counter may run up to (run-loop-owned; see taskLease).
	taskCtr       atomic.Int64
	leasedThrough int

	pumpMu sync.Mutex
	pumps  map[*memberConn]struct{}
	pumpWg sync.WaitGroup

	// Pump-shared state. version is the committed global model version;
	// verWait is closed and replaced at every commit, waking pumps whose
	// member already trained the current version. The encoded broadcast is
	// cached per version so a thousand pumps cost one encode.
	mu          sync.Mutex
	version     int
	verWait     chan struct{}
	encVersion  int
	encModel    link.EncodedPayload
	lastTrained map[string]int // newest version each member has answered
	traceID     uint64         // trace ID stamped on the filling buffer's dispatches

	// Buffer state, run-loop-only.
	buf         []float32
	bufWeight   float64
	bufCount    int
	bufStale    float64
	bufMetrics  []map[string]float64
	lastContrib map[string]int // newest trained version folded per member
	foldNs      int64
	pn          obsv.PhaseNanos
	depth       int
	commits     int
	lastCommit  time.Time
	sentPrev    int64
	recvPrev    int64

	// Cached instruments, so the fold path does one registry lookup per
	// run instead of one per update.
	cFolds    *obsv.Counter
	cRejected *obsv.Counter
	gFill     *obsv.Gauge
	gStale    *obsv.Gauge
	gVersion  *obsv.Gauge
}

func newAsyncAggregator(st *aggState, resume *asyncResume) *asyncAggregator {
	cfg := st.cfg.Async.norm()
	a := &asyncAggregator{
		aggState:    st,
		resume:      resume,
		kBuf:        cfg.K,
		alpha:       cfg.Alpha,
		minHealth:   cfg.MinHealth,
		arrivals:    make(chan asyncArrival, st.cfg.ExpectClients+1),
		fatal:       make(chan error, 1),
		stop:        make(chan struct{}),
		pumps:       make(map[*memberConn]struct{}),
		verWait:     make(chan struct{}),
		encVersion:  -1,
		lastTrained: make(map[string]int),
		buf:         make([]float32, len(st.global)),
		lastContrib: make(map[string]int),
		depth:       1,
		cFolds: obsv.Default.Counter("photon_async_folds_total",
			"Updates folded into the async staleness-weighted buffer."),
		cRejected: obsv.Default.Counter("photon_async_rejected_total",
			"Async updates dropped by admission (duplicate or below the health floor)."),
		gFill: obsv.Default.Gauge("photon_async_buffer_fill",
			"Updates currently folded into the async buffer (commits at K)."),
		gStale: obsv.Default.Gauge("photon_async_staleness",
			"Staleness in versions of the most recently folded update."),
		gVersion: obsv.Default.Gauge("photon_async_model_version",
			"Committed global model version."),
	}
	a.version = resume.committed
	a.taskCtr.Store(int64(resume.maxTask))
	a.leasedThrough = resume.maxTask
	a.traceID = st.mintTrace()
	return a
}

func (a *asyncAggregator) Mode() string { return "async" }

func (a *asyncAggregator) run(ctx context.Context) (*Result, error) {
	// Pumps must be gone before Serve's shutdown path touches the member
	// connections (and before the leak checker looks).
	defer func() {
		close(a.stop)
		a.pumpWg.Wait()
	}()
	grace := a.cfg.RoundDeadline
	if grace <= 0 {
		grace = 10 * time.Second
	}
	a.lastCommit = time.Now()
	a.sentPrev, a.recvPrev = a.s.meter.Totals()

	// Resume: re-fold the journaled pending buffer in log order — without
	// re-journaling, the records are already durable. The weights replay
	// exactly (the global version is constant while a buffer fills), so a
	// full buffer re-commits to bit-identical params.
	for _, pf := range a.resume.pending {
		if len(pf.vec) != len(a.global) {
			return a.fail(a.version+1, fmt.Errorf("journaled fold has %d params, model has %d (config changed between runs?)", len(pf.vec), len(a.global)))
		}
		stale := a.version - pf.trainedVersion
		if stale < 0 {
			stale = 0
		}
		a.fold(pf.member, pf.trainedVersion, stale, pf.vec, map[string]float64{})
		a.noteTrained(pf.member, pf.trainedVersion)
	}
	if a.bufCount >= a.kBuf {
		if err := a.commit(); err != nil {
			return a.fail(a.version+1, err)
		}
	}
	if err := a.ensureLease(); err != nil {
		return a.fail(a.version+1, err)
	}
	a.startPumps()

	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	var belowSince time.Time
	for a.version < a.cfg.Rounds {
		select {
		case <-ctx.Done():
			return a.finish(ctx.Err())
		case err := <-a.fatal:
			return a.fail(a.version+1, err)
		case ar := <-a.arrivals:
			if err := a.admit(ar); err != nil {
				return a.fail(a.version+1, err)
			}
			if a.bufCount >= a.kBuf {
				if err := a.commit(); err != nil {
					return a.fail(a.version+1, err)
				}
				if err := a.ensureLease(); err != nil {
					return a.fail(a.version+1, err)
				}
			}
		case <-tick.C:
			// The ticker adopts pumps for members that joined after the
			// last scan and watches the membership floor: persistent
			// starvation below MinClients ends the run with the partial
			// result, mirroring the sync loop's rejoin grace.
			a.startPumps()
			if err := a.ensureLease(); err != nil {
				return a.fail(a.version+1, err)
			}
			if a.s.reg.AliveCount() >= a.minClients {
				belowSince = time.Time{}
			} else if belowSince.IsZero() {
				belowSince = time.Now()
			} else if time.Since(belowSince) > grace {
				if alive := a.s.reg.AliveCount(); alive == 0 {
					return a.finish(fmt.Errorf("fed: version %d: all clients lost", a.version+1))
				} else {
					return a.finish(fmt.Errorf("fed: version %d: %d alive members, need %d", a.version+1, alive, a.minClients))
				}
			}
		}
	}
	return a.finish(nil)
}

// admit applies admission control to one arrival and folds it: duplicates
// (a cached redelivery whose original did land) and members below the
// health floor are dropped; everything else is journaled, then folded.
func (a *asyncAggregator) admit(ar asyncArrival) error {
	if prev, ok := a.lastContrib[ar.mc.id]; ok && ar.version <= prev {
		a.cRejected.Inc()
		return nil
	}
	if !a.s.reg.Admissible(ar.mc.id, a.minHealth) {
		a.cRejected.Inc()
		return nil
	}
	stale := a.version - ar.version
	if stale < 0 {
		stale = 0
	}
	// Journal before folding: a crash after this append replays the fold,
	// a crash before it folds nothing — either way no double-count.
	if err := a.s.jrn.bufferFold(ar.task, ar.mc.id, uint64(ar.version), ar.update); err != nil {
		return err
	}
	a.fold(ar.mc.id, ar.version, stale, ar.update, ar.meta)
	a.s.reg.ObserveRound(ar.mc.id, ar.latency, cluster.OutcomeOK)
	return nil
}

// fold accumulates one update into the staleness-weighted buffer.
func (a *asyncAggregator) fold(member string, version, stale int, vec []float32, meta map[string]float64) {
	w := 1 / math.Pow(1+float64(stale), a.alpha)
	span := a.s.tracer.Begin(obsv.PhaseAggregate)
	foldUpdate(a.buf, vec, float32(w))
	a.foldNs += span.End(a.traceID)
	a.bufWeight += w
	a.bufCount++
	a.bufStale += float64(stale)
	a.bufMetrics = append(a.bufMetrics, meta)
	a.lastContrib[member] = version
	if _, ok := meta[link.CohortKey]; ok {
		a.depth = 2
	}
	a.cFolds.Inc()
	a.gFill.Set(float64(a.bufCount))
	a.gStale.Set(float64(stale))
}

// foldUpdate accumulates one staleness-weighted update into the buffer:
// buf[i] += w·u[i]. Every update the fleet produces passes through this
// loop exactly once — it is the async core's innermost hot path.
//
//photon:hotpath
func foldUpdate(buf, u []float32, w float32) {
	for i, v := range u {
		buf[i] += w * v
	}
}

// commit seals the buffer into a new global model version: weighted mean,
// outer step, journal, eval, record, fsync, publish — the same order the
// sync loop emits in, so crash points land between the same record pairs.
func (a *asyncAggregator) commit() error {
	newVersion := a.version + 1
	epoch := a.s.membershipEpoch()
	span := a.s.tracer.Begin(obsv.PhaseAggregate)
	// The buffer holds Σ wᵢ·uᵢ; scale by 1/Σwᵢ in place for the weighted
	// mean pseudo-gradient.
	inv := float32(1 / a.bufWeight)
	for i := range a.buf {
		a.buf[i] *= inv
	}
	delta := a.buf
	// The optimizer mutates global in place while pumps may be encoding
	// it, so the step shares the mu section that also publishes the new
	// version, invalidates the broadcast cache, and wakes waiting pumps.
	a.mu.Lock()
	a.cfg.Outer.Step(a.global, delta, newVersion)
	a.version = newVersion
	a.encVersion = -1
	close(a.verWait)
	a.verWait = make(chan struct{})
	traceID := a.traceID
	a.traceID = a.mintTrace()
	a.mu.Unlock()
	a.pn.Add(obsv.PhaseAggregate, a.foldNs+span.End(traceID))
	if err := a.s.jrn.outerStep(newVersion, a.global, a.cfg.Outer); err != nil {
		return err
	}
	sentAfter, recvAfter := a.s.meter.Totals()
	sentRound, recvRound := sentAfter-a.sentPrev, recvAfter-a.recvPrev
	a.sentPrev, a.recvPrev = sentAfter, recvAfter
	churn := a.s.reg.RoundDelta()
	rec := metrics.Round{
		Round:             newVersion,
		Clients:           a.bufCount,
		Depth:             a.depth,
		WireSentBytes:     sentRound,
		WireRecvBytes:     recvRound,
		CommBytes:         sentRound + recvRound,
		Joins:             churn.Joins + churn.Rejoins,
		Evictions:         churn.Evictions,
		Stragglers:        churn.Stragglers,
		HeartbeatRTTMs:    churn.HeartbeatRTTMs,
		HeartbeatRTTP99Ms: churn.HeartbeatRTTP99Ms,
		TraceID:           traceID,
		ModelVersion:      newVersion,
		BufferFill:        a.bufCount,
		MeanStaleness:     a.bufStale / float64(a.bufCount),
	}
	rec.UpdateNorm = norm2(delta)
	rec.TrainLoss = metrics.AggMetrics(a.bufMetrics)["loss"]
	if a.cfg.Validation != nil && (newVersion%a.evalEvery == 0 || newVersion == a.cfg.Rounds) {
		evalSpan := a.s.tracer.Begin(obsv.PhaseEval)
		if err := a.globalModel.Params().LoadFlat(a.global); err != nil {
			return err
		}
		rec.ValPPL = a.cfg.Validation.Evaluate(a.globalModel)
		a.pn.Add(obsv.PhaseEval, evalSpan.End(traceID))
	}
	rec.WallMs = float64(time.Since(a.lastCommit).Nanoseconds()) / 1e6
	a.lastCommit = time.Now()
	rec.Phases = a.pn.Breakdown()
	a.hist.Append(rec)
	if a.cfg.OnRound != nil {
		a.cfg.OnRound(rec)
	}
	a.s.publishRound(rec, a.staleSnapshot())
	// Seal the version (the journal's one fsync per commit), publish the
	// checkpoint, and periodically fold the log into the base checkpoint.
	if err := a.s.jrn.versionCommit(newVersion, epoch); err != nil {
		return err
	}
	a.commits++
	if a.registry != nil {
		publishRegistry(a.registry, newVersion, a.global, a.lineage)
	}
	if a.commits%compactEvery == 0 {
		snap := make([]float32, len(a.global))
		copy(snap, a.global)
		base := &ckpt.Checkpoint{Round: newVersion, Meta: map[string]float64{"loss": rec.TrainLoss}, Params: snap}
		var carry []ckpt.Record
		if st := snapshotOuter(a.cfg.Outer); st != nil {
			carry = append(carry, ckpt.Record{Type: ckpt.RecStateSnapshot, Round: newVersion, Member: snapOuter, Vec: st})
		}
		// The task-ID lease must survive compaction, or a restart could
		// re-mint IDs that were in flight at the crash.
		carry = append(carry, ckpt.Record{Type: ckpt.RecRoundOpen, Round: a.leasedThrough, Member: asyncLeaseMember})
		if err := a.s.jrn.compact(base, carry); err != nil {
			return err
		}
	}
	a.gVersion.Set(float64(newVersion))
	a.gFill.Set(0)
	// Reset the buffer for the next window. The commit consumed the slice
	// in place, so zero it rather than reallocate.
	for i := range a.buf {
		a.buf[i] = 0
	}
	a.bufWeight, a.bufStale = 0, 0
	a.bufCount = 0
	a.bufMetrics = a.bufMetrics[:0]
	a.foldNs = 0
	a.pn = obsv.PhaseNanos{}
	return nil
}

// ensureLease tops up the durable task-ID lease when the counter gets
// within leaseLow of the journaled bound.
func (a *asyncAggregator) ensureLease() error {
	if a.leasedThrough-int(a.taskCtr.Load()) > leaseLow {
		return nil
	}
	next := int(a.taskCtr.Load()) + leaseBlock
	if err := a.s.jrn.taskLease(next); err != nil {
		return err
	}
	a.leasedThrough = next
	return nil
}

// startPumps adopts a dispatcher goroutine for every connected member that
// does not have one yet. Pumps are keyed by connection, so a rejoining
// member's fresh connection gets a fresh pump while the dead one's drains
// away.
func (a *asyncAggregator) startPumps() {
	for _, mc := range a.s.snapshot() {
		a.pumpMu.Lock()
		_, have := a.pumps[mc]
		if !have {
			a.pumps[mc] = struct{}{}
		}
		a.pumpMu.Unlock()
		if !have {
			a.pumpWg.Add(1)
			go a.pump(mc)
		}
	}
}

// noteTrained records the newest model version a member has answered; its
// pump will not re-dispatch until a newer version commits.
func (a *asyncAggregator) noteTrained(id string, version int) {
	a.mu.Lock()
	if version > a.lastTrained[id] || a.lastTrained[id] == 0 {
		a.lastTrained[id] = version
	}
	a.mu.Unlock()
}

// staleSnapshot captures per-member version lag (current version minus the
// newest version the member has answered) for the observability feed.
func (a *asyncAggregator) staleSnapshot() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.lastTrained))
	for id, v := range a.lastTrained {
		s := a.version - v
		if s < 0 {
			s = 0
		}
		out[id] = s
	}
	return out
}

// modelFor returns the broadcast for one member: the current version, its
// (cached) encoded payload, and the trace ID to stamp. ok=false with a
// non-nil wait channel means the member has already trained the current
// version and its pump must wait for the next commit.
func (a *asyncAggregator) modelFor(id string) (ver int, enc link.EncodedPayload, traceID uint64, wait chan struct{}, ok bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if lt, seen := a.lastTrained[id]; seen && lt >= a.version {
		return 0, link.EncodedPayload{}, 0, a.verWait, false, nil
	}
	if a.encVersion != a.version {
		span := a.s.tracer.Begin(obsv.PhaseEncode)
		e, eerr := link.EncodeVector(a.s.modelEnc, a.global)
		span.End(a.traceID)
		if eerr != nil {
			return 0, link.EncodedPayload{}, 0, nil, false, eerr
		}
		a.encModel, a.encVersion = e, a.version
	}
	return a.version, a.encModel, a.traceID, nil, true, nil
}

// pump is one member's dispatcher: whenever the member has not yet trained
// the current global version, send it a versioned model task and hand the
// reply to the run loop; otherwise sleep until the next commit. It exits
// when the member's connection dies or the run ends.
func (a *asyncAggregator) pump(mc *memberConn) {
	defer a.pumpWg.Done()
	for {
		ver, enc, traceID, wait, ok, err := a.modelFor(mc.id)
		if err != nil {
			// A broken broadcast codec is deterministic and run-fatal,
			// exactly as in the sync loop.
			select {
			case a.fatal <- err:
			default:
			}
			return
		}
		if !ok {
			select {
			case <-wait:
				continue
			case <-mc.dead:
				return
			case <-a.stop:
				return
			}
		}
		if !a.dispatch(mc, ver, enc, traceID) {
			return
		}
	}
}

// dispatch sends one versioned model task and waits for its reply,
// delivering it to the run loop. It returns false when the pump should
// exit (member lost or run over).
func (a *asyncAggregator) dispatch(mc *memberConn, ver int, enc link.EncodedPayload, traceID uint64) bool {
	task := int(a.taskCtr.Add(1))
	// Drain a stale reply from a superseded dispatch.
	select {
	case <-mc.updates:
	default:
	}
	meta := map[string]float64{
		link.TraceKey:   float64(traceID),
		link.VersionKey: float64(ver),
		// Every async dispatch tolerates redelivery: a member that already
		// trained this exact version (its reply was lost to a crash or a
		// dropped connection) answers from its cache instead of advancing
		// its data stream a second time.
		link.ResumeKey: 1,
	}
	sendTO := a.cfg.RoundDeadline
	if sendTO <= 0 {
		sendTO = 30 * time.Second
	}
	start := time.Now()
	span := a.s.tracer.Begin(obsv.PhaseBroadcast)
	err := mc.conn.SendTimeout(&link.Message{
		Type:    link.MsgModel,
		Round:   int32(task),
		Meta:    meta,
		Payload: enc,
	}, sendTO)
	span.End(traceID)
	if err != nil {
		a.s.drop(mc, "model send failed")
		mc.conn.Close()
		return false
	}
	for {
		select {
		case msg := <-mc.updates:
			if msg.Round != int32(task) {
				continue // late reply to a superseded dispatch
			}
			// Size-check the declared element count before any codec
			// allocates for it, exactly as the sync collect path does.
			if msg.Payload.Elems != len(a.global) {
				a.s.drop(mc, "update size mismatch")
				mc.conn.Close()
				return false
			}
			decSpan := a.s.tracer.Begin(obsv.PhaseDecode)
			vec, derr := link.DecodePayload(a.s.codec, msg.Payload)
			decSpan.End(traceID)
			if derr != nil || len(vec) != len(a.global) {
				a.s.drop(mc, "update decode failed")
				mc.conn.Close()
				return false
			}
			trained := ver
			if v, okv := msg.Meta[link.VersionKey]; okv {
				trained = int(v)
			}
			a.noteTrained(mc.id, trained)
			select {
			case a.arrivals <- asyncArrival{mc: mc, task: task, version: trained, update: vec, meta: msg.Meta, latency: time.Since(start)}:
			case <-a.stop:
			}
			return true
		case <-mc.dead:
			return false
		case <-a.stop:
			return false
		}
	}
}
