package fed

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"photon/internal/data"
	"photon/internal/ddp"
	"photon/internal/hw"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/tensor"
)

// ddpGroup is the high-bandwidth local path of Algorithm 1 (lines 16–18):
// when a client's nodes are connected by RDMA-class links, the local
// training pipeline runs synchronous data parallelism — every step each
// replica computes gradients on its own micro-batch, the replicas average
// them with a real Ring-AllReduce, and all replicas apply identical
// optimizer updates.
type ddpGroup struct {
	replicas []*nn.Model
	streams  []data.Stream
	opts     []opt.Optimizer

	// Step/round scratch reused across rounds (see Client.localBuf).
	grads               [][]float32
	localBuf, updateBuf []float32
}

// NewDDPClient builds an LLM-C whose local pipeline is synchronous data
// parallelism across len(streams) replicas (one per local GPU/node). newOpt
// constructs one optimizer per replica; identical construction keeps the
// replicas in lockstep.
func NewDDPClient(id string, cfg nn.Config, streams []data.Stream, newOpt func() opt.Optimizer) (*Client, error) {
	if len(streams) < 2 {
		return nil, fmt.Errorf("fed: DDP client needs at least 2 streams, got %d", len(streams))
	}
	g := &ddpGroup{streams: streams}
	for range streams {
		g.replicas = append(g.replicas, nn.NewModel(cfg, rand.New(rand.NewSource(1))))
		g.opts = append(g.opts, newOpt())
	}
	return &Client{ID: id, ddp: g}, nil
}

// runDDP executes the client's round with the intra-silo DDP strategy and
// returns the update θt − θt_k (identical across replicas by construction).
func (c *Client) runDDP(ctx context.Context, global []float32, stepBase int, spec LocalSpec) (RoundResult, error) {
	g := c.ddp
	n := len(g.replicas)
	for i, m := range g.replicas {
		if err := m.Params().LoadFlat(global); err != nil {
			return RoundResult{}, fmt.Errorf("fed: ddp client %s: %w", c.ID, err)
		}
		if !spec.Stateful {
			g.opts[i].Reset()
		}
	}

	if len(g.grads) != n {
		g.grads = make([][]float32, n)
	}
	grads := g.grads
	losses := make([]float64, n)
	var lossSum float64
	lastLR := 0.0
	for step := 0; step < spec.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return RoundResult{}, err
		}
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				batch := g.streams[w].NextBatch(spec.BatchSize, spec.SeqLen)
				ps := g.replicas[w].Params()
				ps.ZeroGrads()
				losses[w] = g.replicas[w].ForwardBackward(batch)
				grads[w] = flattenGrads(ps, grads[w])
			}(w)
		}
		wg.Wait()
		if err := ddp.RingAllReduce(grads); err != nil {
			return RoundResult{}, err
		}
		lastLR = spec.Schedule.LR(stepBase + step)
		inv := 1 / float32(n)
		for w := 0; w < n; w++ {
			loadGrads(g.replicas[w].Params(), grads[w], inv)
			if spec.ClipNorm > 0 {
				g.replicas[w].Params().ClipGradNorm(spec.ClipNorm)
			}
			g.opts[w].Step(g.replicas[w].Params(), lastLR)
			lossSum += losses[w] / float64(n)
		}
	}

	g.localBuf = g.replicas[0].Params().Flatten(g.localBuf)
	if len(g.updateBuf) != len(global) {
		g.updateBuf = make([]float32, len(global))
	}
	update := g.updateBuf
	copy(update, global)
	tensor.Sub(update, g.localBuf)
	return RoundResult{
		Update: update,
		Metrics: map[string]float64{
			"loss":      lossSum / float64(spec.Steps),
			"steps":     float64(spec.Steps),
			"lr":        lastLR,
			"ddp_nodes": float64(n),
		},
	}, nil
}

func flattenGrads(ps nn.ParamSet, dst []float32) []float32 {
	n := ps.NumElements()
	if len(dst) != n {
		dst = make([]float32, n)
	}
	off := 0
	for _, p := range ps {
		copy(dst[off:], p.Grad)
		off += len(p.Grad)
	}
	return dst
}

func loadGrads(ps nn.ParamSet, src []float32, scale float32) {
	off := 0
	for _, p := range ps {
		for i := range p.Grad {
			p.Grad[i] = src[off+i] * scale
		}
		off += len(p.Grad)
	}
}

// BuildClient implements Photon's adaptive local parallelism (Section 4):
// it selects the training strategy for a silo via the hardware heuristic and
// assembles the matching client — a flat single-GPU client, an intra-silo
// DDP/FSDP group over the silo's GPUs, or a nested sub-federation across
// poorly connected nodes. streams must provide one stream per GPU for the
// multi-GPU strategies (extra streams are ignored by the single-GPU path).
func BuildClient(id string, cfg nn.Config, silo hw.Silo, streams []data.Stream,
	newOpt func() opt.Optimizer) (*Client, hw.Strategy, error) {
	strategy, err := hw.SelectStrategy(cfg, silo)
	if err != nil {
		return nil, 0, err
	}
	nGPUs := silo.NumGPUs()
	if len(streams) < nGPUs {
		return nil, 0, fmt.Errorf("fed: silo %s has %d GPUs but only %d streams", silo.Region, nGPUs, len(streams))
	}
	switch strategy {
	case hw.StrategySingleGPU:
		return NewClient(id, cfg, streams[0], newOpt()), strategy, nil
	case hw.StrategyDDP, hw.StrategyFSDP:
		// FSDP shards parameters for memory; its optimization semantics
		// match DDP, which is what the simulation reproduces.
		c, err := NewDDPClient(id, cfg, streams[:nGPUs], newOpt)
		if err != nil {
			return nil, 0, err
		}
		return c, strategy, nil
	default: // sub-federation across poorly connected nodes
		sub := make([]*Client, 0, len(silo.Nodes))
		for i := range silo.Nodes {
			sub = append(sub, NewClient(fmt.Sprintf("%s/node%d", id, i), cfg, streams[i], newOpt()))
		}
		return &Client{ID: id, SubNodes: sub}, strategy, nil
	}
}
