package fed

import (
	"context"
	"math"
	"testing"
	"time"

	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/testutil"
)

// startRelay launches a relay with its own listener and cohort of leaf
// clients (plain ServeClient sessions) and returns the relay's result
// channel.
func startRelay(t *testing.T, ctx context.Context, parentAddr, id string, clients []*Client, cfg RelayConfig) (<-chan *Result, <-chan error) {
	t.Helper()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		go func(c *Client) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = ServeClient(ctx, conn, c, tinySpec())
		}(c)
	}
	cfg.ID = id
	cfg.ExpectClients = len(clients)
	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := RunRelay(ctx, l, func(ctx context.Context) (*link.Conn, error) {
			return link.DialContext(ctx, parentAddr)
		}, cfg)
		l.Close()
		resCh <- res
		errCh <- err
	}()
	return resCh, errCh
}

// TestTwoTierMatchesFlatNetworked is the acceptance scenario: a real
// networked 2-tier federation (2 relays × 2 clients, FedAvg ηs=1, dense
// codecs) must land on the same global parameters as the flat 4-client
// federation to ≤1e-5 — the two-tier mean of equal cohorts IS the flat
// mean.
func TestTwoTierMatchesFlatNetworked(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := tinyCfg()
	const rounds = 3

	runFlat := func() []float32 {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		l, err := link.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		clients := makeClients(t, cfg, 4)
		for _, c := range clients {
			go func(c *Client) {
				conn, err := link.Dial(l.Addr())
				if err != nil {
					return
				}
				defer conn.Close()
				_ = ServeClient(ctx, conn, c, tinySpec())
			}(c)
		}
		res, err := Serve(ctx, l, ServerConfig{
			ModelConfig:   cfg,
			Seed:          21,
			Rounds:        rounds,
			ExpectClients: 4,
			Outer:         FedAvg{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Global
	}

	runTiered := func() ([]float32, *metrics.History, []*metrics.History) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		l, err := link.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		clients := makeClients(t, cfg, 4)
		relayCfg := RelayConfig{ModelConfig: cfg, RoundDeadline: 60 * time.Second}
		resA, errA := startRelay(t, ctx, l.Addr(), "relay-a", clients[:2], relayCfg)
		resB, errB := startRelay(t, ctx, l.Addr(), "relay-b", clients[2:], relayCfg)

		res, err := Serve(ctx, l, ServerConfig{
			ModelConfig:   cfg,
			Seed:          21,
			Rounds:        rounds,
			ExpectClients: 2,
			Outer:         FedAvg{},
		})
		if err != nil {
			t.Fatal(err)
		}
		var relayHists []*metrics.History
		for i, ch := range []<-chan *Result{resA, resB} {
			r := <-ch
			relayHists = append(relayHists, r.History)
			if err := <-[]<-chan error{errA, errB}[i]; err != nil {
				t.Fatalf("relay %d: %v", i, err)
			}
		}
		return res.Global, res.History, relayHists
	}

	flat := runFlat()
	tiered, parentHist, relayHists := runTiered()
	if len(flat) != len(tiered) {
		t.Fatalf("param count mismatch: %d vs %d", len(flat), len(tiered))
	}
	maxDiff := 0.0
	for i := range flat {
		if d := math.Abs(float64(flat[i] - tiered[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-5 {
		t.Fatalf("2-tier FedAvg(1.0) diverged from flat mean: max |Δ| = %v", maxDiff)
	}

	// Tier/Depth accounting: the parent saw relay members (Depth 2), the
	// relays report their own tier (Tier 1, Depth 1) and full cohorts.
	for _, r := range parentHist.Rounds {
		if r.Tier != 0 || r.Depth != 2 {
			t.Fatalf("parent round %d: Tier=%d Depth=%d, want 0/2", r.Round, r.Tier, r.Depth)
		}
		if r.Clients != 2 {
			t.Fatalf("parent round %d aggregated %d relays, want 2", r.Round, r.Clients)
		}
	}
	for i, h := range relayHists {
		if h.Len() != rounds {
			t.Fatalf("relay %d served %d rounds, want %d", i, h.Len(), rounds)
		}
		for _, r := range h.Rounds {
			if r.Tier != 1 || r.Depth != 1 {
				t.Fatalf("relay round %d: Tier=%d Depth=%d, want 1/1", r.Round, r.Tier, r.Depth)
			}
			if r.Clients != 2 {
				t.Fatalf("relay round %d aggregated %d clients, want 2", r.Round, r.Clients)
			}
		}
	}
}

// TestTieredSimMatchesFlatSim: the in-process two-tier simulation under
// FedAvg(ηs=1) must reproduce the flat run's global parameters (mean of
// equal group means == flat mean) while reporting parent-tier wire bytes
// and Depth 2.
func TestTieredSimMatchesFlatSim(t *testing.T) {
	// 2 rounds: summation-order rounding (mean-of-means vs flat mean
	// differs at ~1e-8/coordinate) amplifies chaotically through further
	// AdamW training, so long runs drift apart numerically even though the
	// aggregation semantics are identical.
	flatRes, err := Run(context.Background(), baseRun(t, func(c *RunConfig) { c.Rounds = 2 }))
	if err != nil {
		t.Fatal(err)
	}
	tieredCfg := baseRun(t, func(c *RunConfig) {
		c.Rounds = 2
		c.Tiers = 2
		c.Relays = 2
	})
	tieredRes, err := Run(context.Background(), tieredCfg)
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i := range flatRes.Global {
		if d := math.Abs(float64(flatRes.Global[i] - tieredRes.Global[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-5 {
		t.Fatalf("tiered sim diverged from flat: max |Δ| = %v", maxDiff)
	}
	for _, r := range tieredRes.History.Rounds {
		if r.Depth != 2 {
			t.Fatalf("tiered sim round %d reports Depth %d, want 2", r.Round, r.Depth)
		}
	}
	// Raw tiered runs estimate the parent link at relays×(model+mean).
	last := tieredRes.History.Rounds[len(tieredRes.History.Rounds)-1]
	paramBytes := int64(len(tieredRes.Global)) * 4
	if last.WireSentBytes != 2*paramBytes || last.WireRecvBytes != 2*paramBytes {
		t.Fatalf("parent-link estimate %d/%d bytes, want %d each",
			last.WireSentBytes, last.WireRecvBytes, 2*paramBytes)
	}
}

// TestTieredSimUpstreamCodecShrinksParentLink: with a topk upstream codec
// the simulated parent link must carry far fewer bytes than the leaf tier,
// and training must still converge (error feedback at the relay tier).
func TestTieredSimUpstreamCodecShrinksParentLink(t *testing.T) {
	res, err := Run(context.Background(), baseRun(t, func(c *RunConfig) {
		c.Tiers = 2
		c.Relays = 2
		c.Codec = "dense"
		c.UpstreamCodec = "topk:0.1"
		c.Rounds = 8
	}))
	if err != nil {
		t.Fatal(err)
	}
	paramBytes := int64(len(res.Global)) * 4
	for _, r := range res.History.Rounds {
		// Parent uplink: 2 relay means at ~10% density (8 bytes/kept pair)
		// must be well under one dense mean.
		if r.WireRecvBytes >= paramBytes {
			t.Fatalf("round %d parent uplink %d bytes, want < %d (topk should sparsify)",
				r.Round, r.WireRecvBytes, paramBytes)
		}
		if r.WireRecvBytes == 0 {
			t.Fatalf("round %d parent uplink accounted no bytes", r.Round)
		}
	}
	if !(res.History.FinalPPL() < 64) {
		t.Fatalf("tiered topk run did not learn: ppl %v", res.History.FinalPPL())
	}
}

// TestRelayEmptyCohortStragglesUpstream: a relay whose entire cohort
// vanishes must skip its upstream reply (the parent counts one straggler
// and aggregates the partial round) instead of forwarding a bogus update —
// and the parent run must still complete on the healthy relay.
func TestRelayEmptyCohortStragglesUpstream(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := tinyCfg()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	clients := makeClients(t, cfg, 3)
	healthy, errH := startRelay(t, ctx, l.Addr(), "relay-healthy", clients[:2], RelayConfig{
		ModelConfig: cfg, RoundDeadline: 60 * time.Second,
	})

	// The doomed relay's sole cohort member answers round 1 and vanishes
	// (its eviction empties the cohort); the cohort-tier deadline bounds
	// the rejoin grace, so every later round is an empty one.
	doomedClientDone := make(chan struct{})
	lDoomed, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lDoomed.Close()
	go func() {
		defer close(doomedClientDone)
		conn, err := link.Dial(lDoomed.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := Handshake(conn, "mortal", ""); err != nil {
			return
		}
		c := clients[2]
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			switch msg.Type {
			case link.MsgHeartbeat:
				conn.Send(&link.Message{Type: link.MsgHeartbeat, Meta: msg.Meta})
			case link.MsgModel:
				global, err := msg.Payload.Floats()
				if err != nil {
					return
				}
				res, err := c.RunRound(ctx, global, 0, tinySpec())
				if err != nil {
					return
				}
				conn.Send(&link.Message{Type: link.MsgUpdate, Round: msg.Round,
					ClientID: "mortal", Meta: res.Metrics, Payload: link.Dense(res.Update)})
				return // vanish after one round
			}
		}
	}()
	var doomedRounds []metrics.Round
	doomedDone := make(chan error, 1)
	go func() {
		_, err := RunRelay(ctx, lDoomed, func(ctx context.Context) (*link.Conn, error) {
			return link.DialContext(ctx, l.Addr())
		}, RelayConfig{
			ModelConfig:   cfg,
			ID:            "relay-doomed",
			ExpectClients: 1,
			// Generous against race-detector slowdown: round 1 must finish
			// real training inside this window, and only the post-eviction
			// rounds may come up empty.
			RoundDeadline: 5 * time.Second,
			OnRound:       func(r metrics.Round) { doomedRounds = append(doomedRounds, r) },
		})
		doomedDone <- err
	}()

	var stragglers int
	res, err := Serve(ctx, l, ServerConfig{
		ModelConfig:   cfg,
		Seed:          33,
		Rounds:        2,
		ExpectClients: 2,
		RoundDeadline: 12 * time.Second,
		Outer:         FedAvg{},
		OnRound:       func(r metrics.Round) { stragglers += r.Stragglers },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-healthy
	if err := <-errH; err != nil {
		t.Fatalf("healthy relay: %v", err)
	}
	if err := <-doomedDone; err != nil {
		t.Fatalf("doomed relay must survive an empty cohort, got: %v", err)
	}
	if res.History.Len() != 2 {
		t.Fatalf("parent completed %d rounds, want 2", res.History.Len())
	}
	// Round 1 has both relays; the later rounds aggregate only the healthy
	// one while the doomed relay straggles (not dies).
	if res.History.Rounds[0].Clients != 2 {
		t.Fatalf("round 1 aggregated %d relays, want 2", res.History.Rounds[0].Clients)
	}
	for _, r := range res.History.Rounds[1:] {
		if r.Clients != 1 {
			t.Fatalf("round %d aggregated %d relays, want the healthy one only", r.Round, r.Clients)
		}
	}
	if stragglers < 1 {
		t.Fatalf("parent counted %d stragglers, want one per empty round", stragglers)
	}
	// The doomed relay recorded empty rounds (0 clients) after round 1.
	if len(doomedRounds) < 2 {
		t.Fatalf("doomed relay recorded %d rounds", len(doomedRounds))
	}
	if doomedRounds[0].Clients != 1 {
		t.Fatalf("doomed relay round 1 aggregated %d, want 1", doomedRounds[0].Clients)
	}
	for _, r := range doomedRounds[1:] {
		if r.Clients != 0 {
			t.Fatalf("doomed relay round %d aggregated %d, want 0", r.Round, r.Clients)
		}
	}
	<-doomedClientDone
}
