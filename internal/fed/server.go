package fed

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"photon/internal/data"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
)

// ServerConfig configures a networked aggregator (the Agg component) that
// coordinates real LLM-C processes over the link protocol.
type ServerConfig struct {
	ModelConfig nn.Config
	Seed        int64

	Rounds          int
	ExpectClients   int // block until this many clients join
	ClientsPerRound int // K; 0 means full participation

	Outer      OuterOpt
	Validation *data.ValidationSet
	EvalEvery  int

	// OnRound, when non-nil, is called synchronously with each round's
	// record right after it is appended to the history.
	OnRound func(metrics.Round)
}

// Serve runs the aggregator protocol on the listener: wait for
// ExpectClients joins, then for each round send the global model to the
// sampled cohort, collect updates, aggregate, and advance the outer
// optimizer. Clients that error or disconnect mid-round are treated as
// dropouts (the PS partial-update behavior); a client failure is permanent
// for the rest of the run. All clients receive MsgShutdown at the end.
//
// Cancelling ctx aborts the join wait and the round loop promptly: members
// are sent a best-effort MsgShutdown and in-flight I/O is expired via
// deadlines, and Serve returns the partial Result for the completed rounds
// together with ctx.Err(). A member that is mid-training when the
// cancellation lands may still observe a connection error instead of the
// shutdown message.
func Serve(ctx context.Context, l *link.Listener, cfg ServerConfig) (*Result, error) {
	if cfg.Outer == nil || cfg.Rounds <= 0 || cfg.ExpectClients <= 0 {
		return nil, fmt.Errorf("fed: invalid server config %+v", cfg)
	}
	if err := cfg.ModelConfig.Validate(); err != nil {
		return nil, err
	}
	k := cfg.ClientsPerRound
	if k <= 0 || k > cfg.ExpectClients {
		k = cfg.ExpectClients
	}

	type member struct {
		id    string
		conn  *link.Conn
		alive bool
	}
	// Registered before the join wait so that members who already joined
	// are shut down and closed even when the wait itself is cancelled or
	// fails.
	members := make([]*member, 0, cfg.ExpectClients)
	defer func() {
		// Send every member a shutdown (members marked dead by a
		// cancellation-induced deadline expiry may still be reachable),
		// then drain inbound data for a bounded grace period before
		// closing: closing with an unread in-flight update would reset the
		// connection and destroy the shutdown message before the client
		// reads it.
		var shut sync.WaitGroup
		for _, m := range members {
			shut.Add(1)
			go func(m *member) {
				defer shut.Done()
				m.conn.SetDeadline(time.Now().Add(3 * time.Second))
				m.conn.Send(&link.Message{Type: link.MsgShutdown})
				for {
					if _, err := m.conn.Recv(); err != nil {
						break
					}
				}
				m.conn.Close()
			}(m)
		}
		shut.Wait()
	}()

	for len(members) < cfg.ExpectClients {
		conn, err := l.AcceptContext(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("fed: accept: %w", err)
		}
		// Bound the join handshake so a stray connection that never sends
		// MsgJoin (port scanner, stalled client) cannot wedge the wait.
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		join, err := conn.Recv()
		if err != nil || join.Type != link.MsgJoin {
			conn.Close()
			continue
		}
		conn.SetDeadline(time.Time{})
		members = append(members, &member{id: join.ClientID, conn: conn, alive: true})
	}

	// On cancellation, expire in-flight member I/O via deadlines (rather
	// than closing the connections, which would destroy the shutdown
	// message the drain defer above delivers afterwards). Deadlines only —
	// sending here could block on a send mutex held by a stalled round
	// exchange, which is exactly what the deadline must break. Started only
	// after the membership is final, so it never races the appends above.
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			for _, m := range members {
				m.conn.SetDeadline(time.Now())
			}
		case <-watchDone:
		}
	}()
	defer func() { close(watchDone); <-watcherExited }()

	rng := rand.New(rand.NewSource(cfg.Seed))
	globalModel := nn.NewModel(cfg.ModelConfig, rng)
	global := globalModel.Params().Flatten(nil)
	hist := &metrics.History{}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	var runErr error
	for round := 1; round <= cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		alive := make([]*member, 0, len(members))
		for _, m := range members {
			if m.alive {
				alive = append(alive, m)
			}
		}
		if len(alive) == 0 {
			return nil, fmt.Errorf("fed: round %d: all clients lost", round)
		}
		kr := k
		if kr > len(alive) {
			kr = len(alive)
		}
		cohort := make([]*member, 0, kr)
		for _, idx := range rng.Perm(len(alive))[:kr] {
			cohort = append(cohort, alive[idx])
		}

		var mu sync.Mutex
		var updates [][]float32
		var clientMetrics []map[string]float64
		var wg sync.WaitGroup
		for _, m := range cohort {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				err := m.conn.Send(&link.Message{
					Type:    link.MsgModel,
					Round:   int32(round),
					Payload: global,
				})
				if err != nil {
					m.alive = false
					return
				}
				reply, err := m.conn.Recv()
				if err != nil || reply.Type != link.MsgUpdate || reply.Round != int32(round) {
					m.alive = false
					return
				}
				mu.Lock()
				updates = append(updates, reply.Payload)
				clientMetrics = append(clientMetrics, reply.Meta)
				mu.Unlock()
			}(m)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			// The round was interrupted by cancellation; discard it.
			runErr = err
			break
		}

		paramBytes := int64(len(global)) * 4
		rec := metrics.Round{
			Round:     round,
			Clients:   len(updates),
			CommBytes: int64(len(cohort))*paramBytes + int64(len(updates))*paramBytes,
		}
		if len(updates) > 0 {
			delta, err := MeanDelta(updates)
			if err != nil {
				return nil, err
			}
			cfg.Outer.Step(global, delta, round)
			rec.UpdateNorm = norm2(delta)
			rec.TrainLoss = metrics.AggMetrics(clientMetrics)["loss"]
		}
		if cfg.Validation != nil && (round%evalEvery == 0 || round == cfg.Rounds) {
			if err := globalModel.Params().LoadFlat(global); err != nil {
				return nil, err
			}
			rec.ValPPL = cfg.Validation.Evaluate(globalModel)
		}
		hist.Append(rec)
		if cfg.OnRound != nil {
			cfg.OnRound(rec)
		}
	}

	if err := globalModel.Params().LoadFlat(global); err != nil {
		return nil, err
	}
	return &Result{History: hist, Global: global, FinalModel: globalModel}, runErr
}

// ServeClient runs an LLM-C against a connected aggregator: it joins with
// the client's ID and then answers MsgModel rounds with MsgUpdate replies
// until MsgShutdown (or connection loss). stepBase for the shared schedule
// is derived from the round number. Cancelling ctx closes the connection to
// unblock a pending receive and returns ctx.Err(). onRound observers, if
// any, see one record per completed round (client-side loss, no PPL).
func ServeClient(ctx context.Context, conn *link.Conn, client *Client, spec LocalSpec, onRound ...func(metrics.Round)) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	if err := conn.Send(&link.Message{Type: link.MsgJoin, ClientID: client.ID}); err != nil {
		return fmt.Errorf("fed: join: %w", err)
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fed: client %s recv: %w", client.ID, err)
		}
		switch msg.Type {
		case link.MsgShutdown:
			return nil
		case link.MsgModel:
			stepBase := (int(msg.Round) - 1) * spec.Steps
			res, err := client.RunRound(ctx, msg.Payload, stepBase, spec)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fed: client %s round %d: %w", client.ID, msg.Round, err)
			}
			err = conn.Send(&link.Message{
				Type:     link.MsgUpdate,
				Round:    msg.Round,
				ClientID: client.ID,
				Meta:     res.Metrics,
				Payload:  res.Update,
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fed: client %s send: %w", client.ID, err)
			}
			paramBytes := int64(len(msg.Payload)) * 4
			rec := metrics.Round{
				Round:     int(msg.Round),
				TrainLoss: res.Metrics["loss"],
				Clients:   1,
				CommBytes: 2 * paramBytes, // model down + update up
			}
			for _, fn := range onRound {
				fn(rec)
			}
		default:
			return fmt.Errorf("fed: client %s: unexpected message type %d", client.ID, msg.Type)
		}
	}
}
