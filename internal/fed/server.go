package fed

import (
	"fmt"
	"math/rand"
	"sync"

	"photon/internal/data"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
)

// ServerConfig configures a networked aggregator (the Agg component) that
// coordinates real LLM-C processes over the link protocol.
type ServerConfig struct {
	ModelConfig nn.Config
	Seed        int64

	Rounds          int
	ExpectClients   int // block until this many clients join
	ClientsPerRound int // K; 0 means full participation

	Outer      OuterOpt
	Validation *data.ValidationSet
	EvalEvery  int
}

// Serve runs the aggregator protocol on the listener: wait for
// ExpectClients joins, then for each round send the global model to the
// sampled cohort, collect updates, aggregate, and advance the outer
// optimizer. Clients that error or disconnect mid-round are treated as
// dropouts (the PS partial-update behavior); a client failure is permanent
// for the rest of the run. All clients receive MsgShutdown at the end.
func Serve(l *link.Listener, cfg ServerConfig) (*Result, error) {
	if cfg.Outer == nil || cfg.Rounds <= 0 || cfg.ExpectClients <= 0 {
		return nil, fmt.Errorf("fed: invalid server config %+v", cfg)
	}
	if err := cfg.ModelConfig.Validate(); err != nil {
		return nil, err
	}
	k := cfg.ClientsPerRound
	if k <= 0 || k > cfg.ExpectClients {
		k = cfg.ExpectClients
	}

	type member struct {
		id    string
		conn  *link.Conn
		alive bool
	}
	members := make([]*member, 0, cfg.ExpectClients)
	for len(members) < cfg.ExpectClients {
		conn, err := l.Accept()
		if err != nil {
			return nil, fmt.Errorf("fed: accept: %w", err)
		}
		join, err := conn.Recv()
		if err != nil || join.Type != link.MsgJoin {
			conn.Close()
			continue
		}
		members = append(members, &member{id: join.ClientID, conn: conn, alive: true})
	}
	defer func() {
		for _, m := range members {
			if m.alive {
				m.conn.Send(&link.Message{Type: link.MsgShutdown})
			}
			m.conn.Close()
		}
	}()

	rng := rand.New(rand.NewSource(cfg.Seed))
	globalModel := nn.NewModel(cfg.ModelConfig, rng)
	global := globalModel.Params().Flatten(nil)
	hist := &metrics.History{}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	for round := 1; round <= cfg.Rounds; round++ {
		alive := make([]*member, 0, len(members))
		for _, m := range members {
			if m.alive {
				alive = append(alive, m)
			}
		}
		if len(alive) == 0 {
			return nil, fmt.Errorf("fed: round %d: all clients lost", round)
		}
		kr := k
		if kr > len(alive) {
			kr = len(alive)
		}
		cohort := make([]*member, 0, kr)
		for _, idx := range rng.Perm(len(alive))[:kr] {
			cohort = append(cohort, alive[idx])
		}

		var mu sync.Mutex
		var updates [][]float32
		var clientMetrics []map[string]float64
		var wg sync.WaitGroup
		for _, m := range cohort {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				err := m.conn.Send(&link.Message{
					Type:    link.MsgModel,
					Round:   int32(round),
					Payload: global,
				})
				if err != nil {
					m.alive = false
					return
				}
				reply, err := m.conn.Recv()
				if err != nil || reply.Type != link.MsgUpdate || reply.Round != int32(round) {
					m.alive = false
					return
				}
				mu.Lock()
				updates = append(updates, reply.Payload)
				clientMetrics = append(clientMetrics, reply.Meta)
				mu.Unlock()
			}(m)
		}
		wg.Wait()

		rec := metrics.Round{Round: round, Clients: len(updates)}
		if len(updates) > 0 {
			delta, err := MeanDelta(updates)
			if err != nil {
				return nil, err
			}
			cfg.Outer.Step(global, delta, round)
			rec.UpdateNorm = norm2(delta)
			rec.TrainLoss = metrics.AggMetrics(clientMetrics)["loss"]
		}
		if cfg.Validation != nil && (round%evalEvery == 0 || round == cfg.Rounds) {
			if err := globalModel.Params().LoadFlat(global); err != nil {
				return nil, err
			}
			rec.ValPPL = cfg.Validation.Evaluate(globalModel)
		}
		hist.Append(rec)
	}

	if err := globalModel.Params().LoadFlat(global); err != nil {
		return nil, err
	}
	return &Result{History: hist, Global: global, FinalModel: globalModel}, nil
}

// ServeClient runs an LLM-C against a connected aggregator: it joins with
// the client's ID and then answers MsgModel rounds with MsgUpdate replies
// until MsgShutdown (or connection loss). stepBase for the shared schedule
// is derived from the round number.
func ServeClient(conn *link.Conn, client *Client, spec LocalSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := conn.Send(&link.Message{Type: link.MsgJoin, ClientID: client.ID}); err != nil {
		return fmt.Errorf("fed: join: %w", err)
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("fed: client %s recv: %w", client.ID, err)
		}
		switch msg.Type {
		case link.MsgShutdown:
			return nil
		case link.MsgModel:
			stepBase := (int(msg.Round) - 1) * spec.Steps
			res, err := client.RunRound(msg.Payload, stepBase, spec)
			if err != nil {
				return fmt.Errorf("fed: client %s round %d: %w", client.ID, msg.Round, err)
			}
			err = conn.Send(&link.Message{
				Type:     link.MsgUpdate,
				Round:    msg.Round,
				ClientID: client.ID,
				Meta:     res.Metrics,
				Payload:  res.Update,
			})
			if err != nil {
				return fmt.Errorf("fed: client %s send: %w", client.ID, err)
			}
		default:
			return fmt.Errorf("fed: client %s: unexpected message type %d", client.ID, msg.Type)
		}
	}
}
