package fed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/ckpt"
	"photon/internal/cluster"
	"photon/internal/data"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/obsv"
)

// joinTimeout bounds the handshake of a freshly accepted connection: a
// stray connection that never sends MsgJoin is dropped without ever
// counting toward the membership.
const joinTimeout = 10 * time.Second

// handshakeTimeout bounds the client's wait for the aggregator's codec
// announcement; a pre-codec aggregator never announces, so waiting past
// this is a configuration error, not a transient.
const handshakeTimeout = 10 * time.Second

// ServerConfig configures a networked aggregator (the Agg component) that
// coordinates real LLM-C processes over the link protocol.
type ServerConfig struct {
	ModelConfig nn.Config
	Seed        int64

	// Rng, when non-nil, drives all of the aggregator's randomness (model
	// init, cohort sampling). Nil seeds a fresh source from Seed. Injecting
	// it makes churn simulations reproducible across processes.
	Rng *rand.Rand

	Rounds          int
	ExpectClients   int // block until this many clients join before round 1
	ClientsPerRound int // K; 0 means full participation

	// MinClients is the per-round participation floor once training has
	// started: a round does not begin until at least this many members are
	// alive (default 1), giving evicted clients a window to rejoin.
	MinClients int

	// HeartbeatInterval enables liveness tracking: the aggregator pings
	// every member on this cadence and evicts members that miss MissedBeats
	// consecutive beats. Zero disables heartbeats (pure round-driven
	// failure detection, the pre-elastic behavior).
	HeartbeatInterval time.Duration
	// MissedBeats is the eviction threshold (default 3).
	MissedBeats int

	// RoundDeadline bounds one round's model/update exchange. When it
	// expires the round aggregates the updates that arrived and counts the
	// missing members as stragglers (they stay alive, but their health
	// score — and so their sampling weight — drops). Zero blocks until
	// every cohort member answers or fails, the pre-elastic behavior.
	RoundDeadline time.Duration

	// OverProvision inflates the sampled cohort by this fraction (e.g.
	// 0.25 → 25% extra members) so that a round deadline with stragglers
	// still collects about K updates. Zero disables over-provisioning.
	OverProvision float64

	// Codec names the wire codec for parameter payloads ("dense", "flate",
	// "q8", "topk:<keep>", or anything added via link.RegisterCodec; empty
	// → "dense"). The aggregator announces it on every fresh connection
	// and clients ack by echoing its wire ID in their join, so a mixed
	// fleet fails fast at join time instead of corrupting rounds. Model
	// broadcasts under an update-only codec (topk) fall back to lossless
	// flate.
	Codec string

	Outer      OuterOpt
	Validation *data.ValidationSet
	EvalEvery  int

	// OnRound, when non-nil, is called synchronously with each round's
	// record right after it is appended to the history.
	OnRound func(metrics.Round)

	// WALDir, when non-empty, journals every round-state transition to a
	// write-ahead log in that directory. An aggregator restarted on the
	// same directory (same -id) replays the log, restores the global
	// params, outer-optimizer state, and any in-flight round, and resumes
	// where the crash left off instead of starting over.
	WALDir string

	// RegistryDir, when non-empty, publishes each committed round's
	// checkpoint into a content-addressed model registry rooted there and
	// moves its "latest" tag. Registry failures never abort training.
	RegistryDir string

	// Failpoint, when non-nil, arms crash-point injection inside the WAL:
	// the append whose site matches the armed site returns
	// ckpt.ErrFailpoint after the record is on disk, and Serve exits
	// abruptly (no MsgShutdown) as a real crash would. Test-only.
	Failpoint *ckpt.Failpoint

	// Async, when non-nil, swaps the deadline-based synchronous round loop
	// for FedBuff-style asynchronous buffered aggregation: the server
	// broadcasts continuously-versioned models, folds updates into a
	// staleness-weighted buffer as they arrive, and commits a new global
	// model version every AsyncConfig.K folds — stragglers contribute late
	// instead of being dropped at a deadline. Rounds then counts version
	// commits, and ClientsPerRound/OverProvision/RoundDeadline lose their
	// cohort meaning (RoundDeadline still bounds sends and the no-progress
	// grace). Nil keeps the synchronous mode bit-for-bit unchanged.
	Async *AsyncConfig
}

// memberConn is the aggregator's handle on one connected member: the
// connection plus the channels its reader goroutine communicates through.
type memberConn struct {
	id      string
	conn    *link.Conn
	updates chan *link.Message // latest-wins buffer of MsgUpdate replies
	dead    chan struct{}      // closed when the reader exits (conn lost)
}

// server is the state shared between the accept loop, per-member readers,
// the liveness loop, and the round loop.
type server struct {
	cfg ServerConfig
	reg *cluster.Registry

	// Negotiated wire codec: the configured name and wire ID announced to
	// every joiner, the session codec updates decode through, and the
	// model-broadcast encoder (the session codec, or its lossless fallback
	// for update-only codecs).
	codecName string
	codecID   uint8
	codec     link.Codec
	modelEnc  link.Codec

	// meter sums real wire bytes over every member connection; per-round
	// deltas ground the round records' communication cost in measured
	// traffic (headers and heartbeats included) rather than element-count
	// estimates.
	meter *link.Meter

	// jrn journals round-state transitions when the durable control plane
	// is on (ServerConfig.WALDir); nil (all methods no-ops) otherwise.
	// Only exchangeRound's single-threaded collect loop appends member
	// updates, so the journal needs no locking of its own.
	jrn *journal

	mu    sync.Mutex
	conns map[string]*memberConn

	// tracer ring-buffers round phase spans. It is always present and
	// always driven (End doubles as the phase stopwatch), but records
	// nothing until an observer subscribes — keeping the instrumented
	// round path allocation-free when nobody is watching.
	tracer *obsv.Tracer

	// observers are read-only MsgObserve subscribers (photon-top). They
	// are never members: no registry entry, no heartbeats, no cohort
	// slots — just a Meta-only MsgMetrics frame after every round.
	obsMu     sync.Mutex
	observers map[*link.Conn]struct{}
}

// newServer resolves the configured codec and builds the shared server
// state behind both the root aggregator (Serve) and the relay tier
// (RunRelay): the membership registry, the connection map, and the wire
// meter.
func newServer(cfg ServerConfig) (*server, error) {
	codecName := cfg.Codec
	if codecName == "" {
		codecName = "dense"
	}
	sessionCodec, err := link.NewCodec(codecName)
	if err != nil {
		return nil, fmt.Errorf("fed: server codec: %w", err)
	}
	return &server{
		cfg:       cfg,
		codecName: codecName,
		codecID:   link.CodecWireID(codecName),
		codec:     sessionCodec,
		modelEnc:  link.ModelCodec(sessionCodec),
		meter:     &link.Meter{},
		reg: cluster.New(cluster.Config{
			HeartbeatInterval: cfg.HeartbeatInterval,
			MissedBeats:       cfg.MissedBeats,
		}),
		conns:     make(map[string]*memberConn),
		tracer:    obsv.NewTracer(0),
		observers: make(map[*link.Conn]struct{}),
	}, nil
}

// addObserver admits a MsgObserve subscriber and starts a drain reader
// that detects its departure (observers send nothing after the handshake).
func (s *server) addObserver(conn *link.Conn) {
	s.obsMu.Lock()
	s.observers[conn] = struct{}{}
	s.obsMu.Unlock()
	s.tracer.Subscribe()
	go func() {
		for {
			if _, err := conn.Recv(); err != nil {
				break
			}
		}
		s.removeObserver(conn)
	}()
}

func (s *server) removeObserver(conn *link.Conn) {
	s.obsMu.Lock()
	_, ok := s.observers[conn]
	delete(s.observers, conn)
	s.obsMu.Unlock()
	if ok {
		s.tracer.Unsubscribe()
		conn.Close()
	}
}

func (s *server) closeObservers() {
	s.obsMu.Lock()
	conns := make([]*link.Conn, 0, len(s.observers))
	for c := range s.observers {
		conns = append(conns, c)
	}
	s.obsMu.Unlock()
	for _, c := range conns {
		// Best-effort goodbye so a tailing dashboard can distinguish a
		// clean end-of-run from a lost aggregator.
		c.SendTimeout(&link.Message{Type: link.MsgShutdown}, time.Second)
		s.removeObserver(c)
	}
}

// publishRound fans one round record out to every attached observer as a
// codec-free Meta-only frame. Sends are bounded and best-effort: a stuck
// observer is detached, never allowed to stall the round loop. stale, when
// non-nil, carries per-member staleness in versions (async mode only; the
// synchronous loop passes nil).
func (s *server) publishRound(rec metrics.Round, stale map[string]int) {
	s.obsMu.Lock()
	n := len(s.observers)
	conns := make([]*link.Conn, 0, n)
	for c := range s.observers {
		conns = append(conns, c)
	}
	s.obsMu.Unlock()
	if n == 0 {
		return
	}
	msg := observeMessage(rec, s.reg.Alive(), stale)
	for _, c := range conns {
		if err := c.SendTimeout(msg, time.Second); err != nil {
			s.removeObserver(c)
		}
	}
}

// startLoops launches the accept loop (and, when configured, the liveness
// loop) and returns a stop function that cancels both and waits for them to
// exit. The accept loop admits members for the whole run, so evicted or
// crashed members can rejoin at any time.
func (s *server) startLoops(ctx context.Context, l *link.Listener) (stop func()) {
	loopCtx, cancel := context.WithCancel(ctx)
	var loops sync.WaitGroup
	loops.Add(1)
	go func() {
		defer loops.Done()
		s.acceptLoop(loopCtx, l)
	}()
	if s.cfg.HeartbeatInterval > 0 {
		loops.Add(1)
		go func() {
			defer loops.Done()
			s.livenessLoop(loopCtx)
		}()
	}
	return func() {
		cancel()
		loops.Wait()
	}
}

// expireMemberIO expires every member connection's pending I/O — the
// cancellation path's way of breaking a round waiter out of an unbounded
// Send so shutdown can proceed.
func (s *server) expireMemberIO() {
	for _, mc := range s.snapshot() {
		mc.conn.SetDeadline(time.Now())
	}
}

// shutdownMembers ends every member session. Graceful delivers MsgShutdown
// with a bounded drain window so clients exit cleanly; abrupt just closes
// the connections — the crash path a relay takes when it loses its parent,
// so its cohort's resilient clients treat the loss as a transport failure
// and reconnect to a restarted relay instead of terminating.
func (s *server) shutdownMembers(graceful bool) {
	var shut sync.WaitGroup
	for _, mc := range s.snapshot() {
		shut.Add(1)
		go func(mc *memberConn) {
			defer shut.Done()
			if !graceful {
				mc.conn.Close()
				return
			}
			// SendTimeout installs a fresh write deadline once it holds
			// the send mutex, overriding any expiry the cancellation
			// watcher left behind.
			mc.conn.SendTimeout(&link.Message{Type: link.MsgShutdown}, 3*time.Second)
			select {
			case <-mc.dead:
				// The reader is gone; drain inbound for a bounded grace
				// period ourselves — closing with an unread in-flight
				// update would reset the connection and destroy the
				// shutdown message before the client reads it.
				mc.conn.SetReadDeadline(time.Now().Add(3 * time.Second))
				for {
					if _, err := mc.conn.Recv(); err != nil {
						break
					}
				}
			case <-time.After(3 * time.Second):
			}
			mc.conn.Close()
		}(mc)
	}
	shut.Wait()
}

// Serve runs the elastic aggregator protocol on the listener: wait for
// ExpectClients joins, then for each round sample a (possibly
// over-provisioned) cohort from the alive membership, send the global
// model, collect updates until all answer or RoundDeadline expires,
// aggregate what arrived, and advance the outer optimizer.
//
// Membership is elastic: the accept loop keeps admitting clients for the
// whole run, so an evicted or crashed client can rejoin mid-run (it resumes
// at the current round — MsgModel carries the round number that keys the
// shared schedule), and a brand-new client can join late. Members whose
// connection breaks are evicted immediately; with HeartbeatInterval set,
// silent members are evicted after MissedBeats missed beats. Per-round
// joins, evictions, stragglers, and mean heartbeat RTT are stamped on each
// round record.
//
// Cancelling ctx aborts the join wait and the round loop promptly: members
// are sent a best-effort MsgShutdown, and Serve returns the partial Result
// for the completed rounds together with ctx.Err().
func Serve(ctx context.Context, l *link.Listener, cfg ServerConfig) (*Result, error) {
	if cfg.Outer == nil || cfg.Rounds <= 0 || cfg.ExpectClients <= 0 {
		return nil, fmt.Errorf("fed: invalid server config %+v", cfg)
	}
	if err := cfg.ModelConfig.Validate(); err != nil {
		return nil, err
	}
	k := cfg.ClientsPerRound
	if k <= 0 || k > cfg.ExpectClients {
		k = cfg.ExpectClients
	}
	minClients := cfg.MinClients
	if minClients < 1 {
		minClients = 1
	}
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}

	// Durable control plane: open the registry and the WAL (replaying any
	// prior journal) before accepting a single connection, so a restart
	// that cannot recover fails fast instead of re-training from scratch.
	var registry *ckpt.Registry
	if cfg.RegistryDir != "" {
		if registry, err = ckpt.OpenRegistry(cfg.RegistryDir); err != nil {
			return nil, err
		}
	}
	resume := &serverResume{}
	aResume := &asyncResume{}
	if cfg.WALDir != "" {
		wal, rv, werr := ckpt.OpenWAL(cfg.WALDir, cfg.Failpoint)
		if werr != nil {
			return nil, werr
		}
		s.jrn = newJournal(wal)
		defer s.jrn.close()
		// The two modes journal different record sequences, so each replays
		// its own: a WAL written in one mode does not resume the other.
		if cfg.Async != nil {
			aResume = replayAsyncWAL(rv)
		} else {
			resume = replayServerWAL(rv)
		}
	}

	// The accept loop admits members for the entire run. Handshakes run in
	// their own goroutines so a stray connection that never sends MsgJoin
	// can neither hold a membership slot nor stall other joiners.
	stopLoops := s.startLoops(ctx, l)

	// On cancellation, expire in-flight member I/O via deadlines. Deadlines
	// only — a round waiter stuck in an unbounded model Send holds the
	// connection's send mutex, which is exactly what the deadline must
	// break before the shutdown path below can deliver MsgShutdown.
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			s.expireMemberIO()
		case <-watchDone:
		}
	}()

	// Shutdown: stop admitting, then deliver MsgShutdown to every member
	// still connected and give each a bounded grace period to read it
	// before the connection is torn down. An armed-failpoint exit flips
	// graceful off: the members see a dropped connection — exactly what a
	// real aggregator crash looks like — and resilient clients reconnect
	// to the restarted process instead of shutting down cleanly.
	graceful := true
	defer func() {
		stopLoops()
		close(watchDone)
		<-watcherExited
		s.closeObservers()
		s.shutdownMembers(graceful)
	}()

	// Initial membership: wait (ctx-bounded) for the expected cohort.
	if err := s.waitAlive(ctx, cfg.ExpectClients, 0); err != nil {
		return nil, err
	}

	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	// traceRng mints round trace IDs from its own stream so tracing never
	// perturbs the cohort-sampling draws (run determinism is seeded).
	traceRng := rand.New(rand.NewSource(int64(uint64(cfg.Seed) ^ 0x9E3779B97F4A7C15)))
	globalModel := nn.NewModel(cfg.ModelConfig, rng)
	// The model init always draws from rng — even on resume — so the rng
	// stream stays aligned with an uninterrupted run's cohort sampling;
	// the recovered params then overwrite the fresh init in place.
	global := globalModel.Params().Flatten(nil)
	if cfg.Async != nil {
		if aResume.global != nil {
			if len(aResume.global) != len(global) {
				return nil, fmt.Errorf("fed: WAL params have %d elements, model has %d (config changed between runs?)", len(aResume.global), len(global))
			}
			copy(global, aResume.global)
		}
		if err := restoreOuter(cfg.Outer, aResume.outer); err != nil {
			return nil, err
		}
	} else if resume.global != nil || resume.committed > 0 || resume.open != nil {
		if resume.global != nil {
			if len(resume.global) != len(global) {
				return nil, fmt.Errorf("fed: WAL params have %d elements, model has %d (config changed between runs?)", len(resume.global), len(global))
			}
			copy(global, resume.global)
		}
		if err := restoreOuter(cfg.Outer, resume.outer); err != nil {
			return nil, err
		}
	}
	hist := &metrics.History{}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	// finish packages the (possibly partial) run: completed rounds are
	// never discarded, even when the run ends on a membership or
	// no-progress error.
	finish := func(err error) (*Result, error) {
		if lerr := globalModel.Params().LoadFlat(global); lerr != nil {
			return nil, lerr
		}
		return &Result{History: hist, Global: global, FinalModel: globalModel}, err
	}
	// fail routes a round-loop error through finish, downgrading the exit
	// to abrupt when it is an armed crash point firing.
	fail := func(round int, err error) (*Result, error) {
		if errors.Is(err, ckpt.ErrFailpoint) {
			graceful = false
		}
		return finish(fmt.Errorf("fed: round %d: %w", round, err))
	}
	// lineage stamps registry manifests with enough to reproduce the job.
	lineage := map[string]string{
		"job": fmt.Sprintf("seed=%d rounds=%d expect=%d cohort=%d codec=%s outer=%s params=%d",
			cfg.Seed, cfg.Rounds, cfg.ExpectClients, k, s.codecName, cfg.Outer.Name(), len(global)),
	}
	st := &aggState{
		s:           s,
		cfg:         cfg,
		k:           k,
		minClients:  minClients,
		evalEvery:   evalEvery,
		rng:         rng,
		traceRng:    traceRng,
		globalModel: globalModel,
		global:      global,
		hist:        hist,
		registry:    registry,
		lineage:     lineage,
		finish:      finish,
		fail:        fail,
	}
	var core Aggregator
	if cfg.Async != nil {
		core = newAsyncAggregator(st, aResume)
	} else {
		core = &syncAggregator{aggState: st, resume: resume}
	}
	lineage["mode"] = core.Mode()
	return core.run(ctx)
}

// acceptLoop admits connections until ctx is cancelled, handing each off to
// a handshake goroutine.
func (s *server) acceptLoop(ctx context.Context, l *link.Listener) {
	var handshakes sync.WaitGroup
	defer handshakes.Wait()
	for {
		conn, err := l.AcceptContext(ctx)
		if err != nil {
			return
		}
		handshakes.Add(1)
		go func() {
			defer handshakes.Done()
			s.handshake(ctx, conn)
		}()
	}
}

// handshake performs the bounded join exchange on a fresh connection: the
// server announces its wire codec, and only a MsgJoin that acks the
// announcement by echoing the codec's wire ID admits the connection into
// the membership. Anything else — a stray connection, a legacy client that
// joined blind, a client configured for a different codec — closes without
// side effects, so a mixed fleet can never corrupt a round.
func (s *server) handshake(ctx context.Context, conn *link.Conn) {
	// Unblock the bounded Recv early if the server is shutting down.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	announce := &link.Message{
		Type:     link.MsgCodecAnnounce,
		ClientID: s.codecName,
		Meta:     map[string]float64{link.CodecIDKey: float64(s.codecID)},
	}
	if err := conn.SendTimeout(announce, joinTimeout); err != nil {
		conn.Close()
		return
	}
	msg, err := conn.RecvTimeout(joinTimeout)
	if err != nil {
		conn.Close()
		return
	}
	if msg.Type == link.MsgObserve {
		// Read-only subscriber: no codec echo required (the observe
		// stream is Meta-only), no membership slot taken.
		s.addObserver(conn)
		return
	}
	if msg.Type != link.MsgJoin || msg.ClientID == "" {
		conn.Close()
		return
	}
	if echo, ok := msg.Meta[link.CodecIDKey]; !ok || uint8(echo) != s.codecID {
		conn.Close()
		return
	}
	s.admit(msg.ClientID, conn)
}

// admit registers a joined connection, displacing any previous connection
// held under the same identity (fast reconnect), and starts its reader.
func (s *server) admit(id string, conn *link.Conn) {
	mc := &memberConn{
		id:      id,
		conn:    conn,
		updates: make(chan *link.Message, 1),
		dead:    make(chan struct{}),
	}
	conn.SetMeter(s.meter)
	s.mu.Lock()
	old := s.conns[id]
	s.conns[id] = mc
	s.mu.Unlock()
	if old != nil {
		old.conn.Close()
	}
	s.reg.Join(id)
	go s.readLoop(mc)
}

// readLoop is the single receiver for one member connection: it answers
// nothing itself but routes heartbeat echoes into the registry and round
// updates into the member's latest-wins buffer. A receive error evicts the
// member (unless a newer connection has already displaced this one).
func (s *server) readLoop(mc *memberConn) {
	defer close(mc.dead)
	for {
		msg, err := mc.conn.Recv()
		if err != nil {
			s.drop(mc, "connection lost")
			return
		}
		switch msg.Type {
		case link.MsgHeartbeat:
			rtt := time.Duration(0)
			if ns, ok := msg.Meta[link.HeartbeatSentKey]; ok {
				rtt = time.Since(time.Unix(0, int64(ns)))
			}
			s.reg.Heartbeat(mc.id, rtt)
		case link.MsgUpdate:
			// Latest-wins: a stale straggler reply never blocks the reader
			// or shadows the current round's update.
			select {
			case mc.updates <- msg:
			default:
				select {
				case <-mc.updates:
				default:
				}
				select {
				case mc.updates <- msg:
				default:
				}
			}
		default:
			// Ignore anything else (duplicate joins, metrics-only frames).
		}
	}
}

// livenessLoop pings every member on the heartbeat cadence and evicts the
// ones that stopped answering.
func (s *server) livenessLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for _, mc := range s.snapshot() {
				go func(mc *memberConn) {
					ping := &link.Message{
						Type: link.MsgHeartbeat,
						Meta: map[string]float64{link.HeartbeatSentKey: float64(time.Now().UnixNano())},
					}
					if err := mc.conn.SendTimeout(ping, s.cfg.HeartbeatInterval); err != nil {
						s.drop(mc, "heartbeat send failed")
						mc.conn.Close()
					}
				}(mc)
			}
			for _, id := range s.reg.ExpireDead() {
				if mc := s.get(id); mc != nil {
					s.remove(mc)
					mc.conn.Close()
				}
			}
		}
	}
}

// roundWire is one round's codec accounting: encode/decode wall time and
// the encoded-vs-dense payload volume the compression ratio is derived
// from.
type roundWire struct {
	encNs        int64
	decNs        int64
	payloadBytes int64 // codec-encoded payload bytes exchanged
	denseBytes   int64 // what the same payloads would cost as dense float32
}

// roundPhases is one round's critical-path phase accounting: the phase
// accumulator plus straggler attribution (the last member to answer, and
// the phase that member spent the most time in).
type roundPhases struct {
	pn           obsv.PhaseNanos
	slowestID    string
	slowestPhase obsv.Phase
}

// exchangeRound encodes the global model once with the negotiated codec,
// broadcasts it to the cohort, and collects codec-decoded updates until
// every member answers or fails, the round deadline expires, or ctx is
// cancelled (interrupted=true discards the round). A member whose update
// fails to decode is dropped — a codec disagreement must never silently
// poison the aggregate. err is only non-nil for a server-side encode
// failure (a broken codec), which aborts the run.
//
// traceID is the round-scoped trace identifier stamped on every MsgModel;
// members echo it (and their per-phase self-reports) on their MsgUpdate,
// which is how phases returns a full critical-path breakdown: the slowest
// successful member's latency is split into broadcast (measured send),
// member train/encode/decode (self-reported), server decode (measured per
// member), and a wire residual.
func (s *server) exchangeRound(ctx context.Context, round int, traceID uint64, global []float32, cohort []*memberConn, resume bool) (updates [][]float32, clientMetrics []map[string]float64, wire roundWire, phases roundPhases, interrupted bool, err error) {
	encSpan := s.tracer.Begin(obsv.PhaseEncode)
	encModel, err := link.EncodeVector(s.modelEnc, global)
	if err != nil {
		return nil, nil, wire, phases, false, err
	}
	wire.encNs = encSpan.End(traceID)

	type reply struct {
		mc       *memberConn
		update   []float32 // nil when the member failed
		meta     map[string]float64
		latency  time.Duration
		sendNs   int64 // model broadcast send duration
		srvDecNs int64 // server-side decode of this member's update
	}
	results := make(chan reply, len(cohort))
	stop := make(chan struct{})
	defer close(stop)

	var decNs, payloadBytes, denseBytes atomic.Int64
	for _, mc := range cohort {
		go func(mc *memberConn) {
			// Drain any stale straggler update from a previous round.
			select {
			case <-mc.updates:
			default:
			}
			start := time.Now()
			meta := map[string]float64{link.TraceKey: float64(traceID)}
			if resume {
				// Redelivery of an in-flight round after a crash: a member
				// that already trained it re-sends its cached update
				// instead of advancing its data stream a second time.
				meta[link.ResumeKey] = 1
			}
			sendSpan := s.tracer.Begin(obsv.PhaseBroadcast)
			err := mc.conn.SendTimeout(&link.Message{
				Type:    link.MsgModel,
				Round:   int32(round),
				Meta:    meta,
				Payload: encModel,
			}, s.cfg.RoundDeadline)
			sendNs := sendSpan.End(traceID)
			if err != nil {
				s.drop(mc, "model send failed")
				mc.conn.Close()
				results <- reply{mc: mc}
				return
			}
			payloadBytes.Add(int64(encModel.WireBytes()))
			denseBytes.Add(int64(len(global)) * 4)
			for {
				select {
				case msg := <-mc.updates:
					if msg.Round != int32(round) {
						continue // late reply from an earlier round
					}
					// The declared element count must match the model
					// before any codec allocates for it: a mis-sized
					// update can neither OOM the aggregator nor poison
					// MeanDelta — the member is dropped instead.
					if msg.Payload.Elems != len(global) {
						s.drop(mc, "update size mismatch")
						mc.conn.Close()
						results <- reply{mc: mc}
						return
					}
					decSpan := s.tracer.Begin(obsv.PhaseDecode)
					vec, derr := link.DecodePayload(s.codec, msg.Payload)
					srvDecNs := decSpan.End(traceID)
					decNs.Add(srvDecNs)
					if derr != nil || len(vec) != len(global) {
						s.drop(mc, "update decode failed")
						mc.conn.Close()
						results <- reply{mc: mc}
						return
					}
					payloadBytes.Add(int64(msg.Payload.WireBytes()))
					denseBytes.Add(int64(msg.Payload.Elems) * 4)
					results <- reply{mc: mc, update: vec, meta: msg.Meta,
						latency: time.Since(start), sendNs: sendNs, srvDecNs: srvDecNs}
					return
				case <-mc.dead:
					results <- reply{mc: mc}
					return
				case <-stop:
					return
				}
			}
		}(mc)
	}

	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := time.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}
	// slow tracks the slowest successful member: its latency dominates the
	// round's wall time, so its phase split IS the round's critical path.
	var slow reply
	collect := func() {
		wire.decNs = decNs.Load()
		wire.payloadBytes = payloadBytes.Load()
		wire.denseBytes = denseBytes.Load()
		if slow.mc == nil {
			return
		}
		memberTrain := int64(slow.meta[link.PhaseTrainNsKey])
		memberEnc := int64(slow.meta[link.PhaseEncNsKey])
		memberDec := int64(slow.meta[link.PhaseDecNsKey])
		phases.pn.Add(obsv.PhaseBroadcast, slow.sendNs)
		phases.pn.Add(obsv.PhaseTrain, memberTrain)
		phases.pn.Add(obsv.PhaseEncode, wire.encNs+memberEnc)
		phases.pn.Add(obsv.PhaseDecode, memberDec+slow.srvDecNs)
		// Whatever the latency doesn't account for is wire transfer (plus
		// scheduling slack). Legacy members report no phase keys, so for
		// them the whole latency after the send lands here.
		wireNs := slow.latency.Nanoseconds() - slow.sendNs - memberTrain - memberEnc - memberDec - slow.srvDecNs
		phases.pn.Add(obsv.PhaseWire, wireNs)
		phases.slowestID = slow.mc.id
		phases.slowestPhase = phases.pn.Slowest()
	}
	responded := make(map[string]bool, len(cohort))
	for len(responded) < len(cohort) {
		select {
		case r := <-results:
			responded[r.mc.id] = true
			if r.update != nil {
				// Journal the decoded update before counting it: a crash
				// after this append re-collects nothing from this member.
				if jerr := s.jrn.memberUpdate(round, r.mc.id, r.update); jerr != nil {
					return nil, nil, wire, phases, false, jerr
				}
				updates = append(updates, r.update)
				clientMetrics = append(clientMetrics, r.meta)
				s.reg.ObserveRound(r.mc.id, r.latency, cluster.OutcomeOK)
				if slow.mc == nil || r.latency > slow.latency {
					slow = r
				}
			}
		case <-deadlineC:
			// Deadline: aggregate the partial round; everyone who has not
			// answered is a straggler (alive, but down-weighted).
			for _, mc := range cohort {
				if !responded[mc.id] {
					s.reg.ObserveRound(mc.id, s.cfg.RoundDeadline, cluster.OutcomeStraggler)
				}
			}
			collect()
			return updates, clientMetrics, wire, phases, false, nil
		case <-ctx.Done():
			return nil, nil, wire, phases, true, nil
		}
	}
	collect()
	return updates, clientMetrics, wire, phases, false, nil
}

// waitAlive blocks until at least n members are alive. grace > 0 bounds the
// wait; grace == 0 waits until ctx is cancelled.
func (s *server) waitAlive(ctx context.Context, n int, grace time.Duration) error {
	var deadlineC <-chan time.Time
	if grace > 0 {
		timer := time.NewTimer(grace)
		defer timer.Stop()
		deadlineC = timer.C
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.reg.AliveCount() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadlineC:
			if alive := s.reg.AliveCount(); alive == 0 {
				return fmt.Errorf("all clients lost")
			} else {
				return fmt.Errorf("%d alive members, need %d", alive, n)
			}
		case <-tick.C:
		}
	}
}

// drop evicts a member whose connection mc failed — unless a newer
// connection has already displaced mc (fast rejoin), in which case the
// stale connection just goes away without touching the membership.
func (s *server) drop(mc *memberConn, reason string) {
	s.mu.Lock()
	current := s.conns[mc.id] == mc
	if current {
		delete(s.conns, mc.id)
	}
	s.mu.Unlock()
	if current {
		s.reg.Evict(mc.id, reason)
	}
}

// remove deletes a member's connection entry without evicting (used when
// the registry already evicted it, e.g. for missed heartbeats).
func (s *server) remove(mc *memberConn) {
	s.mu.Lock()
	if s.conns[mc.id] == mc {
		delete(s.conns, mc.id)
	}
	s.mu.Unlock()
}

func (s *server) get(id string) *memberConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns[id]
}

func (s *server) snapshot() []*memberConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*memberConn, 0, len(s.conns))
	for _, mc := range s.conns {
		out = append(out, mc)
	}
	return out
}

// ErrSessionLost marks a ServeClient failure caused by connection I/O —
// the session was healthy but the transport died. It is the class of
// failure RunResilientClient reconnects on; protocol violations and
// training errors are deterministic and not worth retrying.
var ErrSessionLost = errors.New("fed: session lost")

// Handshake performs the client half of the join protocol on a fresh
// connection: wait for the aggregator's codec announcement, verify the
// codec is locally available (and equals require, when non-empty), and ack
// by sending MsgJoin with the announced wire ID echoed. It returns the
// negotiated codec name. Codec disagreements return descriptive permanent
// errors; transport failures are wrapped in ErrSessionLost so resilient
// clients know a retry is worthwhile.
func Handshake(conn *link.Conn, clientID, require string) (string, error) {
	msg, err := conn.RecvTimeout(handshakeTimeout)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return "", fmt.Errorf("fed: no codec announcement from aggregator within %v (pre-codec aggregator?)", handshakeTimeout)
		}
		return "", fmt.Errorf("fed: handshake: %w: %w", ErrSessionLost, err)
	}
	if msg.Type != link.MsgCodecAnnounce {
		return "", fmt.Errorf("fed: handshake: aggregator sent message type %d before its codec announcement", msg.Type)
	}
	name := msg.ClientID
	announcedID := uint8(msg.Meta[link.CodecIDKey])
	if require != "" && require != name {
		return "", fmt.Errorf("fed: codec mismatch: aggregator announced %q, client requires %q", name, require)
	}
	if _, err := link.NewCodec(name); err != nil {
		return "", fmt.Errorf("fed: aggregator announced a codec this client cannot provide: %w", err)
	}
	if id := link.CodecWireID(name); id != announcedID {
		return "", fmt.Errorf("fed: codec %q wire id disagreement: aggregator says %d, local registration says %d", name, announcedID, id)
	}
	join := &link.Message{
		Type:     link.MsgJoin,
		ClientID: clientID,
		Meta:     map[string]float64{link.CodecIDKey: float64(announcedID)},
	}
	if err := conn.Send(join); err != nil {
		return "", fmt.Errorf("fed: join: %w: %w", ErrSessionLost, err)
	}
	return name, nil
}

// Session is a client's long-lived attachment to an aggregator: the local
// client, its training recipe, and the negotiated wire codec. The codec
// instance — including any error-feedback state a lossy codec carries, such
// as the topk residual — lives on the Session, so it survives connection
// churn: a resilient client reuses one Session across reconnects and
// dropped coordinates are still delivered in later rounds.
type Session struct {
	Client *Client
	Spec   LocalSpec
	// Codec, when non-empty, requires the aggregator to announce exactly
	// this codec name; empty accepts whatever the aggregator announces
	// (negotiation is server-driven).
	Codec string

	enc     link.Codec
	encName string

	// Last delivered update, kept for idempotent redelivery: when a
	// WAL-resuming aggregator re-broadcasts an in-flight round (ResumeKey
	// set) this client already trained, the cached encoded reply is
	// re-sent verbatim instead of training the round again — the data
	// stream and the codec's error-feedback state must not advance twice
	// for one round. Like the codec, the cache lives on the Session so it
	// survives reconnects.
	cacheOK    bool
	cacheRound int32
	cacheReply link.EncodedPayload
	cacheLoss  float64
	// Async aggregators key redelivery by model version rather than round
	// number (async dispatch task IDs are unique per send, so a resumed
	// dispatch of the same version arrives under a fresh round number).
	cacheHasVer  bool
	cacheVersion float64
}

// ServeConn runs one connection's worth of the session: handshake, then
// answer MsgModel rounds with codec-encoded MsgUpdate replies until
// MsgShutdown (or connection loss). Heartbeat pings are echoed immediately
// — even while a round is training, thanks to the dedicated reader
// goroutine — so a slow client is seen as alive-but-straggling rather than
// dead. stepBase for the shared schedule is derived from the round number,
// which also makes a rejoining client resume at the aggregator's current
// round. Cancelling ctx closes the connection to unblock a pending receive
// and returns ctx.Err(). onRound observers, if any, see one record per
// completed round (client-side loss and measured wire bytes, no PPL).
func (s *Session) ServeConn(ctx context.Context, conn *link.Conn, onRound ...func(metrics.Round)) error {
	client, spec := s.Client, s.Spec
	if err := spec.Validate(); err != nil {
		return err
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	name, err := Handshake(conn, client.ID, s.Codec)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if s.enc == nil || s.encName != name {
		codec, err := link.NewCodec(name) // validated by Handshake
		if err != nil {
			return err
		}
		s.enc, s.encName = codec, name
	}

	// The reader answers heartbeats inline — even while a round is training
	// — and routes models and control messages to the training loop. Send
	// is safe concurrently with the training loop's update uploads (Conn
	// serializes senders). Models are latest-wins: if the aggregator
	// deadlined past rounds while this client was still training, the
	// superseded broadcasts are dropped and the client jumps straight to
	// the current round — the backlog can never grow, so the reader is
	// never blocked off the heartbeat path and a chronically slow client
	// stays visible as alive-but-straggling instead of being evicted dead.
	models := make(chan *link.Message, 1)
	ctrl := make(chan *link.Message, 4)
	readErr := make(chan error, 1)
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				readErr <- err
				return
			}
			switch msg.Type {
			case link.MsgHeartbeat:
				conn.Send(&link.Message{Type: link.MsgHeartbeat, Meta: msg.Meta})
			case link.MsgModel:
				select {
				case models <- msg:
				default:
					select {
					case <-models:
					default:
					}
					select {
					case models <- msg:
					default:
					}
				}
			default:
				select {
				case ctrl <- msg:
				default:
				}
			}
		}
	}()

	prevStats := conn.Stats()
	for {
		var msg *link.Message
		// A pending control message (shutdown) takes priority over a
		// pending model broadcast.
		select {
		case msg = <-ctrl:
		default:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case err := <-readErr:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fed: client %s recv: %w: %w", client.ID, ErrSessionLost, err)
			case msg = <-ctrl:
			case msg = <-models:
			}
		}
		switch msg.Type {
		case link.MsgShutdown:
			return nil
		case link.MsgModel:
			// Idempotent redelivery: a resumed broadcast of a round this
			// client already trained is answered from the cache — no
			// decode, no training, no stream advance. Sync aggregators
			// re-broadcast under the same round number; async ones dispatch
			// the same model *version* under a fresh task ID, so the cache
			// also matches on the version stamp.
			ver, hasVer := msg.Meta[link.VersionKey]
			if msg.Meta[link.ResumeKey] != 0 && s.cacheOK &&
				(msg.Round == s.cacheRound || (hasVer && s.cacheHasVer && ver == s.cacheVersion)) {
				meta := map[string]float64{"loss": s.cacheLoss}
				if traceID := msg.Meta[link.TraceKey]; traceID != 0 {
					meta[link.TraceKey] = traceID
				}
				if s.cacheHasVer {
					meta[link.VersionKey] = s.cacheVersion
				}
				err := conn.Send(&link.Message{
					Type:     link.MsgUpdate,
					Round:    msg.Round,
					ClientID: client.ID,
					Meta:     meta,
					Payload:  s.cacheReply,
				})
				if err != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					return fmt.Errorf("fed: client %s send: %w: %w", client.ID, ErrSessionLost, err)
				}
				continue
			}
			// Size-check before decoding so a corrupt or hostile element
			// count can never drive a model-sized allocation past the
			// local replica's actual parameter count.
			if want := client.NumParams(); want > 0 && msg.Payload.Elems != want {
				return fmt.Errorf("fed: client %s round %d: model payload carries %d elems, want %d",
					client.ID, msg.Round, msg.Payload.Elems, want)
			}
			decStart := time.Now()
			global, err := link.DecodePayload(s.enc, msg.Payload)
			decNs := time.Since(decStart).Nanoseconds()
			if err != nil {
				return fmt.Errorf("fed: client %s round %d model: %w", client.ID, msg.Round, err)
			}
			stepBase := (int(msg.Round) - 1) * spec.Steps
			trainStart := time.Now()
			res, err := client.RunRound(ctx, global, stepBase, spec)
			trainNs := time.Since(trainStart).Nanoseconds()
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fed: client %s round %d: %w", client.ID, msg.Round, err)
			}
			encStart := time.Now()
			encUpd, err := link.EncodeVector(s.enc, res.Update)
			encNs := time.Since(encStart).Nanoseconds()
			if err != nil {
				return fmt.Errorf("fed: client %s round %d update: %w", client.ID, msg.Round, err)
			}
			// Phase self-reports let the aggregator split this member's
			// round latency into compute vs codec vs wire; the trace ID
			// echo attributes the reply to the root round that caused it.
			// res.Metrics is a fresh per-round map, safe to extend.
			res.Metrics[link.PhaseTrainNsKey] = float64(trainNs)
			res.Metrics[link.PhaseEncNsKey] = float64(encNs)
			res.Metrics[link.PhaseDecNsKey] = float64(decNs)
			traceID := uint64(msg.Meta[link.TraceKey])
			if traceID != 0 {
				res.Metrics[link.TraceKey] = float64(traceID)
			}
			if hasVer {
				// Echo the trained model version so an async aggregator can
				// compute this update's staleness when it finally folds.
				res.Metrics[link.VersionKey] = ver
			}
			// Cache before sending: the round is trained, so the stream and
			// error-feedback state have advanced. If the aggregator crashes
			// mid-send and this reply never lands, the resumed broadcast
			// must hit the cache — retraining would advance the stream a
			// second time for the same round.
			s.cacheOK, s.cacheRound = true, msg.Round
			s.cacheReply, s.cacheLoss = encUpd, res.Metrics["loss"]
			s.cacheHasVer, s.cacheVersion = hasVer, ver
			err = conn.Send(&link.Message{
				Type:     link.MsgUpdate,
				Round:    msg.Round,
				ClientID: client.ID,
				Meta:     res.Metrics,
				Payload:  encUpd,
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fed: client %s send: %w: %w", client.ID, ErrSessionLost, err)
			}
			cur := conn.Stats()
			rec := metrics.Round{
				Round:     int(msg.Round),
				TrainLoss: res.Metrics["loss"],
				Clients:   1,
				// Measured wire traffic since the previous record: this
				// round's model down and update up, plus interleaved
				// heartbeats (round 1 absorbs the handshake).
				WireSentBytes: cur.SentBytes - prevStats.SentBytes,
				WireRecvBytes: cur.RecvBytes - prevStats.RecvBytes,
				CommBytes:     (cur.SentBytes - prevStats.SentBytes) + (cur.RecvBytes - prevStats.RecvBytes),
				EncodeMs:      float64(encNs) / 1e6,
				DecodeMs:      float64(decNs) / 1e6,
			}
			if dense := int64(msg.Payload.Elems+len(res.Update)) * 4; dense > 0 {
				rec.CompressionRatio = float64(msg.Payload.WireBytes()+encUpd.WireBytes()) / float64(dense)
			}
			rec.TraceID = traceID
			if hasVer {
				rec.ModelVersion = int(ver)
			}
			rec.WallMs = float64(time.Since(decStart).Nanoseconds()) / 1e6
			var pn obsv.PhaseNanos
			pn.Add(obsv.PhaseDecode, decNs)
			pn.Add(obsv.PhaseTrain, trainNs)
			pn.Add(obsv.PhaseEncode, encNs)
			rec.Phases = pn.Breakdown()
			prevStats = cur
			for _, fn := range onRound {
				fn(rec)
			}
		default:
			return fmt.Errorf("fed: client %s: unexpected message type %d", client.ID, msg.Type)
		}
	}
}

// ServeClient runs an LLM-C against a connected aggregator under a
// single-connection Session that accepts whatever codec the aggregator
// announces. See Session.ServeConn for the protocol; resilient clients
// that must keep codec state across reconnects build a Session directly.
func ServeClient(ctx context.Context, conn *link.Conn, client *Client, spec LocalSpec, onRound ...func(metrics.Round)) error {
	s := &Session{Client: client, Spec: spec}
	return s.ServeConn(ctx, conn, onRound...)
}
