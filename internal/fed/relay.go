package fed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"photon/internal/ckpt"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/obsv"
)

// RelayConfig configures a networked relay aggregator: a node that joins a
// parent aggregator as an ordinary client while serving its own regional
// cohort with the elastic membership machinery. Each parent round it
// re-broadcasts the global model down, aggregates its cohort's updates
// locally, and forwards one pseudo-gradient upward — the Algorithm 1
// lines 19–25 sub-federation running over real links instead of inside one
// process.
type RelayConfig struct {
	// ModelConfig sizes payload validation on both tiers; the relay never
	// trains, it only moves and folds parameter vectors.
	ModelConfig nn.Config
	// ID is the identity the relay joins the parent under. Required — a
	// restarted relay rejoining under the same ID resumes its membership.
	ID string

	Seed int64
	// Rng, when non-nil, drives cohort sampling (nil seeds from Seed).
	Rng *rand.Rand

	// Cohort-tier membership, liveness, and pacing — the same knobs as
	// ServerConfig, scoped to this tier. ExpectClients is how many cohort
	// members must join before the relay dials its parent (the parent's
	// round 1 therefore starts only when every relay's cohort is ready).
	ExpectClients     int
	ClientsPerRound   int // K within the cohort; 0 means full participation
	MinClients        int
	HeartbeatInterval time.Duration
	MissedBeats       int
	// RoundDeadline bounds the cohort tier's model/update exchange. With
	// it set, a straggling cohort member costs this tier a partial round
	// instead of stalling the parent's round; elasticity composes because
	// each tier enforces its own deadline.
	RoundDeadline time.Duration
	OverProvision float64

	// Codec is the cohort-tier wire codec the relay announces downstream
	// (typically "dense" on LAN). The upstream codec is negotiated with
	// the parent and pinned via Parent.Codec — the two tiers are
	// independent, so a dense intra-region cohort can feed a q8 or topk
	// inter-region uplink.
	Codec string

	// Outer folds the cohort's updates into the upstream pseudo-gradient:
	// the relay applies it to a scratch copy of the broadcast parameters
	// and forwards the resulting delta. Nil defaults to FedAvg(ηs=1),
	// whose mean semantics make a two-tier mean of equal cohorts equal the
	// flat mean exactly.
	Outer OuterOpt

	// Parent tunes the uplink's fault tolerance: MaxAttempts/backoff
	// reconnect a lost parent session under the same ID (the upstream
	// codec's error-feedback state survives, as it lives on the relay, not
	// the connection), and Codec requires the parent to announce exactly
	// that codec. CheckpointPath is ignored — a relay carries no model
	// state worth snapshotting.
	Parent ReconnectConfig

	// OnRound observes this tier's round records (Tier 1, Depth 1).
	OnRound func(metrics.Round)

	// WALDir, when non-empty, journals each served round's encoded
	// upstream reply and the upstream codec's error-feedback residual. A
	// restarted relay (same ID, same directory) replays the log and can
	// redeliver its last committed reply when a durably-resuming parent
	// re-broadcasts an in-flight round, instead of retraining its cohort.
	WALDir string

	// Failpoint, when non-nil, arms crash-point injection in the relay's
	// WAL appends. Test-only.
	Failpoint *ckpt.Failpoint
}

func (c *RelayConfig) validate() error {
	switch {
	case c.ID == "":
		return fmt.Errorf("fed: relay requires an ID")
	case c.ExpectClients <= 0:
		return fmt.Errorf("fed: relay ExpectClients must be positive, got %d", c.ExpectClients)
	}
	return c.ModelConfig.Validate()
}

// relay is the running state: the cohort-side server plus the parent-side
// session (negotiated upstream codec, persistent across reconnects so
// error-feedback codecs keep their residuals).
type relay struct {
	cfg   RelayConfig
	srv   *server
	outer OuterOpt
	rng   *rand.Rand
	want  int // model parameter count, for payload size checks

	upEnc     link.Codec
	upEncName string

	hist      *metrics.History
	global    []float32 // last decoded global broadcast
	scratch   []float32 // outer-step scratch, reused across rounds
	sentPrev  int64     // cohort meter windows (tile the run, no gaps)
	recvPrev  int64
	lastRound int32 // highest parent round served, skipped on stale redelivery

	// jrn journals served rounds when RelayConfig.WALDir is set (nil
	// otherwise), and the cache* fields hold the last upstream reply —
	// in-memory always, WAL-recovered across restarts — so a resuming
	// parent's re-broadcast (ResumeKey) is answered from the cache instead
	// of re-running a cohort exchange whose data streams already advanced.
	jrn         *journal
	cacheOK     bool
	cacheRound  int32
	cacheReply  link.EncodedPayload
	cacheCohort int
	// Version stamp of the cached reply, for async parents: an async
	// aggregator redelivers a model *version* under a fresh round (task)
	// number, so the cache also matches on the version. In-memory only —
	// a WAL-recovered cache redelivers by round match as before.
	cacheHasVer  bool
	cacheVersion float64
	// lastVer is the newest global model version seen from an async parent
	// (0 under a sync parent), stamped on this tier's round records.
	lastVer int
	// pendingCodec is a WAL-recovered upstream-codec residual, applied
	// once the parent handshake instantiates the codec.
	pendingCodec []float32
}

// RunRelay serves a relay aggregator until the parent ends the session:
// wait for ExpectClients cohort joins on l, dial the parent, and bridge
// parent rounds onto cohort rounds. The cohort side is fully elastic (late
// joins, rejoins, heartbeat eviction, per-round deadline with partial
// aggregation); a cohort that delivers zero updates for a round simply
// sends nothing upstream, so the parent sees one straggler — not a dead
// cohort. A parent connection loss is retried per cfg.Parent; when the
// session is lost for good the cohort is dropped abruptly (no MsgShutdown),
// so resilient cohort clients reconnect to a restarted relay instead of
// exiting.
//
// The returned Result carries this tier's round history and the last
// global parameters seen from the parent (loaded into FinalModel).
func RunRelay(ctx context.Context, l *link.Listener, dial func(context.Context) (*link.Conn, error), cfg RelayConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	outer := cfg.Outer
	if outer == nil {
		outer = FedAvg{LR: 1}
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	srv, err := newServer(ServerConfig{
		ModelConfig:       cfg.ModelConfig,
		HeartbeatInterval: cfg.HeartbeatInterval,
		MissedBeats:       cfg.MissedBeats,
		RoundDeadline:     cfg.RoundDeadline,
		Codec:             cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	r := &relay{
		cfg:   cfg,
		srv:   srv,
		outer: outer,
		rng:   rng,
		want:  int(cfg.ModelConfig.ParamCount()),
		hist:  &metrics.History{},
	}
	r.cfg.Parent.fill()

	// Durable relay: replay the WAL before serving, recovering the last
	// committed upstream reply and the codec residual that produced it.
	if cfg.WALDir != "" {
		wal, rv, werr := ckpt.OpenWAL(cfg.WALDir, cfg.Failpoint)
		if werr != nil {
			return nil, werr
		}
		r.jrn = newJournal(wal)
		defer r.jrn.close()
		if rec := replayRelayWAL(rv); rec.replyOK {
			r.cacheOK = true
			r.cacheRound = int32(rec.committed)
			r.cacheReply = rec.reply
			r.cacheCohort = rec.cohort
			r.pendingCodec = rec.codec
		}
	}

	stopLoops := srv.startLoops(ctx, l)
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			srv.expireMemberIO()
		case <-watchDone:
		}
	}()
	graceful := false
	defer func() {
		stopLoops()
		close(watchDone)
		<-watcherExited
		srv.closeObservers()
		srv.shutdownMembers(graceful)
	}()

	// The cohort assembles before the relay announces itself upstream.
	if err := r.waitCohort(ctx); err != nil {
		return nil, err
	}

	conn, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	finish := func(err error) (*Result, error) {
		res := &Result{History: r.hist, Global: r.global}
		if r.global != nil {
			model := nn.NewModel(cfg.ModelConfig, rand.New(rand.NewSource(cfg.Seed)))
			if lerr := model.Params().LoadFlat(r.global); lerr != nil {
				return nil, lerr
			}
			res.FinalModel = model
		}
		return res, err
	}
	for {
		err := r.serveParentConn(ctx, conn)
		conn.Close()
		if err == nil {
			graceful = true
			return finish(nil)
		}
		if ctx.Err() != nil {
			graceful = true // operator-initiated stop, not a crash
			return finish(ctx.Err())
		}
		if r.cfg.Parent.MaxAttempts <= 0 || !errors.Is(err, ErrSessionLost) {
			return finish(err)
		}
		conn, err = redial(ctx, dial, cfg.ID, r.cfg.Parent, err)
		if err != nil {
			return finish(err)
		}
	}
}

// waitCohort blocks until ExpectClients cohort members joined.
func (r *relay) waitCohort(ctx context.Context) error {
	return r.srv.waitAlive(ctx, r.cfg.ExpectClients, 0)
}

// serveParentConn runs one parent connection's worth of the relay session:
// handshake under the relay's ID, then serve parent rounds until
// MsgShutdown or connection loss (wrapped in ErrSessionLost for the
// reconnect loop).
func (r *relay) serveParentConn(ctx context.Context, conn *link.Conn) error {
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	name, err := Handshake(conn, r.cfg.ID, r.cfg.Parent.Codec)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	// The upstream codec lives on the relay, not the connection: a topk
	// uplink's error-feedback residual survives parent reconnects, so
	// coordinates dropped before a crash still reach later rounds.
	if r.upEnc == nil || r.upEncName != name {
		codec, err := link.NewCodec(name) // validated by Handshake
		if err != nil {
			return err
		}
		r.upEnc, r.upEncName = codec, name
		// A WAL-recovered residual belongs to this freshly created codec;
		// a codec that survived in-process already carries its state.
		if err := link.RestoreCodecState(r.upEnc, r.pendingCodec); err != nil {
			return err
		}
	}
	r.pendingCodec = nil
	// Round numbering is per parent RUN, not global: a restarted parent
	// starts over at round 1, so the stale-redelivery guard resets with
	// each fresh connection. Within one connection the models channel's
	// latest-wins buffer already discards superseded broadcasts.
	r.lastRound = 0

	// Dedicated parent reader: heartbeats are echoed inline even while a
	// cohort round is in flight, so a relay busy with a slow cohort reads
	// as alive-but-straggling upstream rather than dead. Models are
	// latest-wins — if the parent deadlined past rounds, the relay jumps
	// to the current one.
	models := make(chan *link.Message, 1)
	ctrl := make(chan *link.Message, 4)
	readErr := make(chan error, 1)
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				readErr <- err
				return
			}
			switch msg.Type {
			case link.MsgHeartbeat:
				conn.Send(&link.Message{Type: link.MsgHeartbeat, Meta: msg.Meta})
			case link.MsgModel:
				select {
				case models <- msg:
				default:
					select {
					case <-models:
					default:
					}
					select {
					case models <- msg:
					default:
					}
				}
			default:
				select {
				case ctrl <- msg:
				default:
				}
			}
		}
	}()

	for {
		var msg *link.Message
		select {
		case msg = <-ctrl:
		default:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case err := <-readErr:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fed: relay %s recv: %w: %w", r.cfg.ID, ErrSessionLost, err)
			case msg = <-ctrl:
			case msg = <-models:
			}
		}
		switch msg.Type {
		case link.MsgShutdown:
			return nil
		case link.MsgModel:
			if err := r.serveRound(ctx, conn, msg); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fed: relay %s: unexpected message type %d", r.cfg.ID, msg.Type)
		}
	}
}

// serveRound bridges one parent round onto the cohort: decode the global
// broadcast, run the cohort tier's exchange under its own deadline, fold
// the surviving updates through the outer optimizer, and forward one
// pseudo-gradient upstream. A round whose cohort delivered nothing sends
// nothing — the parent's deadline counts the relay as a straggler and the
// run moves on.
func (r *relay) serveRound(ctx context.Context, conn *link.Conn, msg *link.Message) error {
	round := msg.Round
	resumed := msg.Meta[link.ResumeKey] != 0
	ver, hasVer := msg.Meta[link.VersionKey]
	if resumed && r.cacheOK &&
		(round == r.cacheRound || (hasVer && r.cacheHasVer && ver == r.cacheVersion)) {
		// A durably-resuming parent lost this round's reply; re-send the
		// cached (possibly WAL-recovered) bytes verbatim. Re-encoding
		// would double-apply an error-feedback codec's residual, and
		// re-running the exchange would advance cohort data streams twice.
		meta := map[string]float64{
			link.TraceKey:  msg.Meta[link.TraceKey],
			link.CohortKey: float64(r.cacheCohort),
		}
		if r.cacheHasVer {
			meta[link.VersionKey] = r.cacheVersion
		}
		err := conn.Send(&link.Message{
			Type:     link.MsgUpdate,
			Round:    round,
			ClientID: r.cfg.ID,
			Meta:     meta,
			Payload:  r.cacheReply,
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fed: relay %s send: %w: %w", r.cfg.ID, ErrSessionLost, err)
		}
		r.lastRound = round
		return nil
	}
	if round <= r.lastRound && !resumed {
		return nil // stale redelivery after a reconnect
	}
	if r.want > 0 && msg.Payload.Elems != r.want {
		return fmt.Errorf("fed: relay %s round %d: model payload carries %d elems, want %d",
			r.cfg.ID, round, msg.Payload.Elems, r.want)
	}
	// The parent's trace ID attributes everything this round does — the
	// cohort exchange included, since it is propagated downstream on the
	// cohort broadcasts — to the root round that caused it.
	traceID := uint64(msg.Meta[link.TraceKey])
	roundStart := time.Now()
	decSpan := r.srv.tracer.Begin(obsv.PhaseDecode)
	global, err := link.DecodePayload(r.upEnc, msg.Payload)
	decNs := decSpan.End(traceID)
	if err != nil {
		return fmt.Errorf("fed: relay %s round %d model: %w", r.cfg.ID, round, err)
	}
	r.global = global

	// Give an emptied cohort a rejoin window before running the round; if
	// nobody comes back the round is simply skipped upstream.
	minClients := r.cfg.MinClients
	if minClients < 1 {
		minClients = 1
	}
	grace := r.cfg.RoundDeadline
	if grace <= 0 {
		grace = 10 * time.Second
	}
	if err := r.srv.waitAlive(ctx, minClients, grace); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.record(int(round), nil, nil, roundWire{decNs: decNs}, 0, traceID, roundPhases{}, roundStart)
		r.lastRound = round
		return nil
	}

	k := r.cfg.ClientsPerRound
	if k <= 0 || k > r.cfg.ExpectClients {
		k = r.cfg.ExpectClients
	}
	cohortInfos := r.srv.reg.SampleCohort(r.rng, k, r.cfg.OverProvision)
	cohort := make([]*memberConn, 0, len(cohortInfos))
	for _, info := range cohortInfos {
		if mc := r.srv.get(info.ID); mc != nil {
			cohort = append(cohort, mc)
		}
	}
	exStart := time.Now()
	// A resumed round with no usable cache re-runs the cohort exchange and
	// propagates the resume flag downstream, so leaf clients that already
	// trained this round answer from their own caches.
	updates, clientMetrics, wire, phases, interrupted, err := r.srv.exchangeRound(ctx, int(round), traceID, global, cohort, resumed)
	exchangeNs := time.Since(exStart).Nanoseconds()
	wire.decNs += decNs
	phases.pn.Add(obsv.PhaseDecode, decNs)
	if err != nil {
		return err // server-side encode failure: deterministic, not retryable
	}
	if interrupted {
		return ctx.Err()
	}
	r.lastRound = round

	if len(updates) == 0 {
		r.record(int(round), nil, nil, wire, 0, traceID, phases, roundStart)
		return nil
	}

	aggSpan := r.srv.tracer.Begin(obsv.PhaseAggregate)
	delta, err := MeanDelta(updates)
	if err != nil {
		return err
	}
	// Reuse OuterOpt for the fold: apply it to a scratch copy of the
	// broadcast parameters and forward θ_global − θ_local, computed in
	// place on the scratch buffer (dead after the subtraction) so a
	// long-running relay allocates nothing per round. Under the default
	// FedAvg(ηs=1) this is exactly the cohort-mean pseudo-gradient, so a
	// two-tier mean of equal cohorts equals the flat mean.
	if len(r.scratch) != len(global) {
		r.scratch = make([]float32, len(global))
	}
	copy(r.scratch, global)
	r.outer.Step(r.scratch, delta, int(round))
	for i := range r.scratch {
		r.scratch[i] = global[i] - r.scratch[i]
	}
	upward := r.scratch
	phases.pn.Add(obsv.PhaseAggregate, aggSpan.End(traceID))

	meta := metrics.AggMetrics(clientMetrics)
	meta[link.CohortKey] = float64(len(updates))
	encSpan := r.srv.tracer.Begin(obsv.PhaseEncode)
	encUpd, err := link.EncodeVector(r.upEnc, upward)
	upEncNs := encSpan.End(traceID)
	wire.encNs += upEncNs
	phases.pn.Add(obsv.PhaseEncode, upEncNs)
	if err != nil {
		return fmt.Errorf("fed: relay %s round %d update: %w", r.cfg.ID, round, err)
	}
	// Upstream phase self-report. AggMetrics just averaged the cohort's
	// own ph_*/trace keys into meta — overwrite them with this tier's
	// values: the parent must see the relay's cohort-exchange wall as its
	// "train" time and this connection's codec costs, not a mean of the
	// leaves'.
	meta[link.TraceKey] = float64(traceID)
	meta[link.PhaseTrainNsKey] = float64(exchangeNs)
	meta[link.PhaseEncNsKey] = float64(upEncNs)
	meta[link.PhaseDecNsKey] = float64(decNs)
	if hasVer {
		// Echo the trained version upstream so an async parent can weight
		// this pseudo-gradient by its staleness — two-tier async composes.
		meta[link.VersionKey] = ver
		r.lastVer = int(ver)
	}
	// Cache before sending: the cohort exchange ran and the upstream
	// codec's residual advanced, so if the parent crashes mid-send its
	// resumed re-broadcast (ResumeKey) must get these exact bytes back —
	// re-running the exchange or re-encoding would advance cohort streams
	// and the error-feedback state twice for one round.
	r.cacheOK, r.cacheRound, r.cacheCohort = true, round, len(updates)
	r.cacheReply = encUpd
	r.cacheHasVer, r.cacheVersion = hasVer, ver
	err = conn.Send(&link.Message{
		Type:     link.MsgUpdate,
		Round:    round,
		ClientID: r.cfg.ID,
		Meta:     meta,
		Payload:  encUpd,
	})
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fed: relay %s send: %w: %w", r.cfg.ID, ErrSessionLost, err)
	}
	// Journal the reply (bytes, residual, commit) so the cache survives a
	// relay restart. A journal error is fatal — an armed failpoint here
	// models the relay crashing right after the record lands.
	if err := r.jrn.upstreamReply(int(round), len(updates), encUpd); err != nil {
		return err
	}
	if err := r.jrn.codecSnapshot(int(round), link.CodecState(r.upEnc)); err != nil {
		return err
	}
	if err := r.jrn.roundCommit(int(round), 0); err != nil {
		return err
	}
	r.record(int(round), updates, clientMetrics, wire, norm2(upward), traceID, phases, roundStart)
	return nil
}

// record stamps one relay-tier round onto the history: cohort-side wire
// bytes over the round's meter window (tiling the run with no gaps), codec
// wall times, churn, the Tier/Depth position, and — carried over from the
// parent's broadcast — the root round's trace ID, which is what lets an
// observer join this tier's phase breakdown to the root record it belongs
// to.
func (r *relay) record(round int, updates [][]float32, clientMetrics []map[string]float64, wire roundWire, updateNorm float64, traceID uint64, phases roundPhases, start time.Time) {
	sent, recv := r.srv.meter.Totals()
	sentRound, recvRound := sent-r.sentPrev, recv-r.recvPrev
	r.sentPrev, r.recvPrev = sent, recv
	churn := r.srv.reg.RoundDelta()
	rec := metrics.Round{
		Round:             round,
		Clients:           len(updates),
		Tier:              1,
		Depth:             1,
		UpdateNorm:        updateNorm,
		WireSentBytes:     sentRound,
		WireRecvBytes:     recvRound,
		CommBytes:         sentRound + recvRound,
		EncodeMs:          float64(wire.encNs) / 1e6,
		DecodeMs:          float64(wire.decNs) / 1e6,
		Joins:             churn.Joins + churn.Rejoins,
		Evictions:         churn.Evictions,
		Stragglers:        churn.Stragglers,
		HeartbeatRTTMs:    churn.HeartbeatRTTMs,
		HeartbeatRTTP99Ms: churn.HeartbeatRTTP99Ms,
		TraceID:           traceID,
		ModelVersion:      r.lastVer,
		WallMs:            float64(time.Since(start).Nanoseconds()) / 1e6,
		Phases:            phases.pn.Breakdown(),
		SlowestID:         phases.slowestID,
	}
	if phases.slowestID != "" {
		rec.SlowestPhase = phases.slowestPhase.String()
	}
	if wire.denseBytes > 0 {
		rec.CompressionRatio = float64(wire.payloadBytes) / float64(wire.denseBytes)
	}
	if len(clientMetrics) > 0 {
		rec.TrainLoss = metrics.AggMetrics(clientMetrics)["loss"]
	}
	r.hist.Append(rec)
	if r.cfg.OnRound != nil {
		r.cfg.OnRound(rec)
	}
	r.srv.publishRound(rec, nil)
}
