package fed

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"photon/internal/data"
	"photon/internal/hw"
	"photon/internal/nn"
	"photon/internal/opt"
)

// siloWith builds a test silo of nodes×gpusPerNode H100s; rdma selects the
// inter-node interconnect class.
func siloWith(nodes, gpusPerNode int, rdma bool) hw.Silo {
	inter := hw.Ethernet
	if rdma {
		inter = hw.InfiniBand
	}
	s := hw.Silo{Region: "test", InterNode: inter}
	for i := 0; i < nodes; i++ {
		gpus := make([]hw.GPU, gpusPerNode)
		for j := range gpus {
			gpus[j] = hw.H100
		}
		s.Nodes = append(s.Nodes, hw.Node{GPUs: gpus, IntraGPU: hw.NVLink})
	}
	return s
}

func TestTiesMergeSignElection(t *testing.T) {
	ties := &TiesMerge{Keep: 1.0}
	// Coordinate 0: two positive contributors outweigh one negative.
	// Coordinate 1: one large negative outweighs two small positives.
	updates := [][]float32{
		{2, 0.5},
		{3, 0.5},
		{-1, -4},
	}
	out, err := ties.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out[0])-2.5) > 1e-6 { // mean of {2, 3}
		t.Fatalf("coord 0: got %v want 2.5", out[0])
	}
	if out[1] != -4 { // only the elected-sign contributor
		t.Fatalf("coord 1: got %v want -4", out[1])
	}
}

func TestTiesMergeTrim(t *testing.T) {
	ties := &TiesMerge{Keep: 0.25}
	u := []float32{10, 0.1, 0.2, 0.3} // only the largest survives trimming
	out, err := ties.Aggregate([][]float32{u})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 {
		t.Fatalf("top coordinate lost: %v", out)
	}
	for i := 1; i < 4; i++ {
		if out[i] != 0 {
			t.Fatalf("trimmed coordinate %d survived: %v", i, out[i])
		}
	}
}

func TestTiesMergeErrors(t *testing.T) {
	ties := &TiesMerge{}
	if _, err := ties.Aggregate(nil); err == nil {
		t.Fatal("empty cohort accepted")
	}
	if _, err := ties.Aggregate([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged updates accepted")
	}
}

func TestTiesMergeInFederation(t *testing.T) {
	// TIES must train successfully end to end on heterogeneous data.
	cfg := tinyCfg()
	pile := data.PileLike(cfg.VocabSize)
	part, err := data.BySourcePartition(pile, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
	}
	val := data.NewValidationSet(data.NewMixtureSource("pile", pile, nil), 8, 16, 999)
	res, err := Run(context.Background(), RunConfig{
		ModelConfig: cfg, Seed: 1, Rounds: 6, ClientsPerRound: 4,
		Clients: clients, Outer: &TiesMerge{Keep: 0.5}, Spec: tinySpec(),
		Validation: val, EvalEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalPPL() >= 64 {
		t.Fatalf("TIES federation did not learn: %v", res.History.FinalPPL())
	}
}

func TestPowerOfChoiceBiasesToHighLoss(t *testing.T) {
	p := &PowerOfChoice{D: 4}
	// Observe: client 3 has the worst loss among explored.
	p.ObserveLoss(0, 1.0)
	p.ObserveLoss(1, 2.0)
	p.ObserveLoss(2, 1.5)
	p.ObserveLoss(3, 9.0)
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for trial := 0; trial < 200; trial++ {
		for _, idx := range p.Sample(rng, 4, 1) {
			counts[idx]++
		}
	}
	// With D=4 (all candidates) and K=1, the highest-loss client must win
	// every draw.
	if counts[3] != 200 {
		t.Fatalf("power-of-choice should always pick the worst client: %v", counts)
	}
}

func TestPowerOfChoiceExploresUnobserved(t *testing.T) {
	p := &PowerOfChoice{D: 10}
	p.ObserveLoss(0, 100) // explored, terrible
	rng := rand.New(rand.NewSource(2))
	picked := p.Sample(rng, 10, 3)
	// Unobserved clients rank as +Inf loss and must fill the cohort before
	// any observed one.
	for _, idx := range picked {
		if idx == 0 {
			t.Fatal("observed client displaced an unexplored one")
		}
	}
	if len(picked) != 3 {
		t.Fatalf("cohort size %d", len(picked))
	}
}

func TestPowerOfChoiceInFederation(t *testing.T) {
	cfg := tinyCfg()
	clients := makeClients(t, cfg, 6)
	res, err := Run(context.Background(), RunConfig{
		ModelConfig: cfg, Seed: 1, Rounds: 5, ClientsPerRound: 2,
		Clients: clients, Outer: FedAvg{}, Spec: tinySpec(),
		Sampler:    &PowerOfChoice{},
		Validation: data.NewValidationSet(data.C4Like(cfg.VocabSize), 8, 16, 999),
		EvalEvery:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != 5 {
		t.Fatalf("rounds: %d", res.History.Len())
	}
}

func TestFedProxLimitsDrift(t *testing.T) {
	cfg := tinyCfg()
	global := nn.NewModel(cfg, rand.New(rand.NewSource(7))).Params().Flatten(nil)

	run := func(mu float64) float64 {
		c := makeClients(t, cfg, 1)[0]
		spec := tinySpec()
		spec.Steps = 8
		spec.ProxMu = mu
		res, err := c.RunRound(context.Background(), global, 0, spec)
		if err != nil {
			t.Fatal(err)
		}
		var n float64
		for _, v := range res.Update {
			n += float64(v) * float64(v)
		}
		return math.Sqrt(n)
	}
	free := run(0)
	prox := run(1.0)
	if !(prox < free) {
		t.Fatalf("FedProx should shrink client drift: free %v prox %v", free, prox)
	}
	if prox == 0 {
		t.Fatal("proximal term killed all learning")
	}
}

func TestDDPClientMatchesFlatDynamics(t *testing.T) {
	cfg := tinyCfg()
	src := data.C4Like(cfg.VocabSize)
	newOpt := func() opt.Optimizer { return opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01) }

	streams := []data.Stream{data.NewShard(src, 0, 7), data.NewShard(src, 1, 7)}
	ddpClient, err := NewDDPClient("ddp", cfg, streams, newOpt)
	if err != nil {
		t.Fatal(err)
	}
	global := nn.NewModel(cfg, rand.New(rand.NewSource(9))).Params().Flatten(nil)
	spec := tinySpec()
	res, err := ddpClient.RunRound(context.Background(), global, 0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["ddp_nodes"] != 2 {
		t.Fatalf("metrics: %v", res.Metrics)
	}
	var n float64
	for _, v := range res.Update {
		n += float64(v) * float64(v)
	}
	if n == 0 {
		t.Fatal("DDP client produced no update")
	}
	// A second round from the same global must be deterministic in shape
	// (replicas stay in lockstep internally: update equals θt − replica0).
	if len(res.Update) != len(global) {
		t.Fatalf("update size %d", len(res.Update))
	}
}

func TestNewDDPClientValidation(t *testing.T) {
	cfg := tinyCfg()
	_, err := NewDDPClient("x", cfg, []data.Stream{data.NewShard(data.C4Like(cfg.VocabSize), 0, 7)},
		func() opt.Optimizer { return opt.SGD{} })
	if err == nil {
		t.Fatal("single-stream DDP client accepted")
	}
}

func TestBuildClientStrategies(t *testing.T) {
	cfg := tinyCfg()
	src := data.C4Like(cfg.VocabSize)
	streams := make([]data.Stream, 4)
	for i := range streams {
		streams[i] = data.NewShard(src, i, 7)
	}
	newOpt := func() opt.Optimizer { return opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01) }

	// Tiny model on one GPU → single-GPU flat client.
	oneGPU := siloWith(1, 1, false)
	c, strat, err := BuildClient("a", cfg, oneGPU, streams, newOpt)
	if err != nil {
		t.Fatal(err)
	}
	if strat.String() != "single-gpu" || c.ddp != nil || len(c.SubNodes) != 0 {
		t.Fatalf("one GPU: strategy %v", strat)
	}

	// Multi-GPU node → DDP client.
	fourGPU := siloWith(1, 4, false)
	c, strat, err = BuildClient("b", cfg, fourGPU, streams, newOpt)
	if err != nil {
		t.Fatal(err)
	}
	if strat.String() != "ddp" || c.ddp == nil {
		t.Fatalf("four GPUs: strategy %v", strat)
	}

	// Multi-node Ethernet → sub-federation.
	twoNodes := siloWith(2, 1, false)
	c, strat, err = BuildClient("c", cfg, twoNodes, streams, newOpt)
	if err != nil {
		t.Fatal(err)
	}
	if strat.String() != "sub-federation" || len(c.SubNodes) != 2 {
		t.Fatalf("two nodes: strategy %v, %d subnodes", strat, len(c.SubNodes))
	}

	// Too few streams errors.
	if _, _, err := BuildClient("d", cfg, fourGPU, streams[:2], newOpt); err == nil {
		t.Fatal("insufficient streams accepted")
	}

	// All three client shapes must train a round successfully.
	global := nn.NewModel(cfg, rand.New(rand.NewSource(11))).Params().Flatten(nil)
	for _, built := range []string{"a", "b", "c"} {
		var client *Client
		switch built {
		case "a":
			client, _, _ = BuildClient("a", cfg, oneGPU, streams, newOpt)
		case "b":
			client, _, _ = BuildClient("b", cfg, fourGPU, streams, newOpt)
		case "c":
			client, _, _ = BuildClient("c", cfg, twoNodes, streams, newOpt)
		}
		if _, err := client.RunRound(context.Background(), global, 0, tinySpec()); err != nil {
			t.Fatalf("client %s round failed: %v", built, err)
		}
	}
}
