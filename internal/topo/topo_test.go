package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel() Model {
	return Model{
		ModelSizeMB:   250, // 125M params in BF16
		BandwidthMBps: GbpsToMBps(10),
		Throughput:    2,
		LocalSteps:    512,
	}
}

func TestGbpsToMBps(t *testing.T) {
	if got := GbpsToMBps(8); got != 1000 {
		t.Fatalf("8 Gbps should be 1000 MB/s, got %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{ModelSizeMB: 0, BandwidthMBps: 1, Throughput: 1, LocalSteps: 1},
		{ModelSizeMB: 1, BandwidthMBps: 0, Throughput: 1, LocalSteps: 1},
		{ModelSizeMB: 1, BandwidthMBps: 1, Throughput: 0, LocalSteps: 1},
		{ModelSizeMB: 1, BandwidthMBps: 1, Throughput: 1, LocalSteps: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestLocalComputeTime(t *testing.T) {
	m := testModel()
	if got := m.LocalComputeTime(); got != 256 { // 512 steps / 2 batches/s
		t.Fatalf("Eq.1: got %v want 256", got)
	}
}

func TestCommTimeEquations(t *testing.T) {
	m := testModel()
	k := 8
	s, b := m.ModelSizeMB, m.BandwidthMBps
	if got, want := m.CommTime(PS, k), float64(k)*s/b; math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq.2 PS: got %v want %v", got, want)
	}
	if got, want := m.CommTime(AR, k), float64(k-1)*s/b; math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq.3 AR: got %v want %v", got, want)
	}
	if got, want := m.CommTime(RAR, k), 2*s*float64(k-1)/(float64(k)*b); math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq.4 RAR: got %v want %v", got, want)
	}
}

func TestCommTimeSingleClient(t *testing.T) {
	m := testModel()
	for _, tp := range []Topology{PS, AR, RAR} {
		if m.CommTime(tp, 1) != 0 {
			t.Errorf("%v: single client must have zero comm", tp)
		}
	}
}

func TestTopologyOrderingAtScale(t *testing.T) {
	// For K ≥ 3: RAR < AR < PS (RAR is bandwidth-optimal, PS serializes).
	m := testModel()
	for _, k := range []int{3, 4, 8, 16} {
		rar, ar, ps := m.CommTime(RAR, k), m.CommTime(AR, k), m.CommTime(PS, k)
		if !(rar < ar && ar < ps) {
			t.Errorf("K=%d: want RAR<AR<PS, got %v %v %v", k, rar, ar, ps)
		}
	}
}

func TestRARBounded(t *testing.T) {
	// RAR cost approaches 2S/B as K → ∞ and never exceeds it.
	m := testModel()
	bound := 2 * m.ModelSizeMB / m.BandwidthMBps
	for k := 2; k <= 1024; k *= 2 {
		if ct := m.CommTime(RAR, k); ct > bound {
			t.Fatalf("K=%d: RAR %v exceeds bound %v", k, ct, bound)
		}
	}
}

func TestRoundAndTotalTime(t *testing.T) {
	m := testModel()
	rt := m.RoundTime(RAR, 8)
	// Eq. 5 covers local compute, communication, AND the Eq. 7 server
	// aggregation term, exactly as the model's doc claims.
	if want := m.LocalComputeTime() + m.CommTime(RAR, 8) + m.AggregationTime(8); rt != want {
		t.Fatalf("Eq.5: got %v want %v", rt, want)
	}
	if tot := m.TotalTime(RAR, 8, 10); tot != 10*rt {
		t.Fatalf("Eq.6: got %v want %v", tot, 10*rt)
	}
}

// TestCongestionRegressionTable1 pins Eq. 5/6 values for the paper's 125M
// Table-1 deployment (10 clients, S=250MB BF16, ν=2, τ=512) below and above
// the congestion threshold θ. Below θ the PS cost is the plain Eq. 2 serial
// transfer; above it each of the K transfers only gets a θ/K share of the
// server link, so the cost is K²·S/(θ·B).
func TestCongestionRegressionTable1(t *testing.T) {
	m := testModel() // the Table 1 125M setup
	m.CongestionThr = 8
	s, b := m.ModelSizeMB, m.BandwidthMBps

	// Below θ: K=5 regions' worth of clients — plain serial PS (Eq. 2).
	if got, want := m.CommTime(PS, 5), 5*s/b; math.Abs(got-want) > 1e-9 {
		t.Fatalf("below θ: got %v want %v", got, want)
	}
	// At θ: both branches agree (continuity).
	if got, want := m.CommTime(PS, 8), 8*s/b; math.Abs(got-want) > 1e-9 {
		t.Fatalf("at θ: got %v want %v", got, want)
	}
	// Above θ: the 125M deployment's 10 clients congest an 8-channel
	// server: 10²·S/(8·B).
	if got, want := m.CommTime(PS, 10), 100*s/(8*b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("above θ: got %v want %v", got, want)
	}
	// Eq. 5/6 regression above θ: round and 20-round total wall time.
	wantRound := m.LocalComputeTime() + 100*s/(8*b) + m.AggregationTime(10)
	if got := m.RoundTime(PS, 10); math.Abs(got-wantRound) > 1e-9 {
		t.Fatalf("Eq.5 above θ: got %v want %v", got, wantRound)
	}
	if got := m.TotalTime(PS, 10, 20); math.Abs(got-20*wantRound) > 1e-9 {
		t.Fatalf("Eq.6 above θ: got %v want %v", got, 20*wantRound)
	}
}

// TestCongestionContinuousAndMonotone sweeps K across θ and asserts the PS
// cost curve has no discontinuity at the threshold and never decreases.
func TestCongestionContinuousAndMonotone(t *testing.T) {
	m := testModel()
	m.CongestionThr = 16
	prev := 0.0
	for k := 2; k <= 64; k++ {
		ct := m.CommTime(PS, k)
		if ct < prev {
			t.Fatalf("K=%d: PS comm time decreased: %v after %v", k, ct, prev)
		}
		// Discontinuity-free: consecutive steps never jump by more than the
		// smooth quadratic branch's worst-case ratio ((K+1)/K)² ≤ 2.25 at
		// K=2; near and past θ=16 the ratio stays below 1.2.
		if k > 2 && prev > 0 {
			if ratio := ct / prev; k >= 8 && ratio > 1.5 {
				t.Fatalf("K=%d: PS comm time jumped by %.2fx across a single client increment", k, ratio)
			}
		}
		prev = ct
	}
	// Defaulted θ (zero value) behaves as 100 channels.
	m.CongestionThr = 0
	if got, want := m.CommTime(PS, 200), 200.0*200.0*m.ModelSizeMB/(100*m.BandwidthMBps); math.Abs(got-want) > 1e-6 {
		t.Fatalf("default θ=100: got %v want %v", got, want)
	}
}

func TestAggregationTime(t *testing.T) {
	m := testModel()
	// Eq.7 with default ζ=5 TFLOPS: K·S·1e6 bytes / 5e12 FLOPs/s.
	if got, want := m.AggregationTime(8), 8*250.0*1e6/5e12; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eq.7: got %v want %v", got, want)
	}
	// Aggregation must be negligible versus PS communication (paper claim).
	if m.AggregationTime(8) > 0.05*m.CommTime(PS, 8) {
		t.Fatal("aggregation should be negligible next to communication")
	}
}

func TestCommShare(t *testing.T) {
	m := testModel()
	share := m.CommShare(RAR, 16)
	if share <= 0 || share >= 1 {
		t.Fatalf("comm share out of (0,1): %v", share)
	}
	// Figure 6 annotation scale: with τ=512 shares are single-digit percent.
	if share > 0.1 {
		t.Fatalf("τ=512 RAR comm share should be small, got %.1f%%", 100*share)
	}
}

func TestCommReductionFactorIsTau(t *testing.T) {
	m := testModel()
	if m.CommReductionFactor() != 512 {
		t.Fatalf("comm reduction should equal τ: %v", m.CommReductionFactor())
	}
	if m.DDPStepCommTime(8) != m.CommTime(RAR, 8) {
		t.Fatal("DDP pays the ring cost per step")
	}
}

func TestSelectTopology(t *testing.T) {
	m := testModel()
	if got := m.SelectTopology(Constraints{PeerToPeerAllowed: false}, 8); got != PS {
		t.Fatalf("privacy constraint must force PS, got %v", got)
	}
	if got := m.SelectTopology(Constraints{PeerToPeerAllowed: true}, 8); got != RAR {
		t.Fatalf("unconstrained should pick RAR, got %v", got)
	}
	if got := m.SelectTopology(Constraints{PeerToPeerAllowed: true, DropoutExpected: true}, 8); got != AR {
		t.Fatalf("dropout risk should pick AR, got %v", got)
	}
}

func TestWorldGraphCaptionConstraints(t *testing.T) {
	g := WorldGraph()
	ring := WorldRing()
	bw, a, b, err := g.RingBottleneck(ring)
	if err != nil {
		t.Fatal(err)
	}
	if bw != 0.8 {
		t.Fatalf("ring bottleneck: got %v Gbps want 0.8", bw)
	}
	pair := map[string]bool{a: true, b: true}
	if !pair[Maharashtra] || !pair[Quebec] {
		t.Fatalf("bottleneck should be Maharashtra-Quebec, got %s-%s", a, b)
	}
	// PS star on England must have a link to every other region.
	leaves := []string{Utah, Texas, Quebec, Maharashtra}
	if _, _, err := g.StarBottleneck(England, leaves); err != nil {
		t.Fatalf("PS star incomplete: %v", err)
	}
	if len(g.Regions()) != 5 {
		t.Fatalf("want 5 regions, got %d", len(g.Regions()))
	}
}

func TestGraphSymmetry(t *testing.T) {
	g := WorldGraph()
	for _, a := range g.Regions() {
		for _, b := range g.Regions() {
			if g.Bandwidth(a, b) != g.Bandwidth(b, a) {
				t.Fatalf("asymmetric bandwidth %s-%s", a, b)
			}
		}
	}
	if g.Bandwidth("England", "England") != 0 {
		t.Fatal("self-link should be 0")
	}
}

func TestRingBottleneckErrors(t *testing.T) {
	g := NewGraph()
	g.AddLink("a", "b", 1)
	if _, _, _, err := g.RingBottleneck([]string{"a"}); err == nil {
		t.Fatal("short ring must error")
	}
	if _, _, _, err := g.RingBottleneck([]string{"a", "b", "c"}); err == nil {
		t.Fatal("missing link must error")
	}
}

func TestStarBottleneckErrors(t *testing.T) {
	g := NewGraph()
	if _, _, err := g.StarBottleneck("hub", nil); err == nil {
		t.Fatal("empty star must error")
	}
	if _, _, err := g.StarBottleneck("hub", []string{"x"}); err == nil {
		t.Fatal("missing hub link must error")
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	g := WorldGraph()
	regions := WorldRing()
	rar, err := g.EffectiveBandwidthGbps(RAR, England, regions)
	if err != nil || rar != 0.8 {
		t.Fatalf("RAR effective bw: %v, %v", rar, err)
	}
	ps, err := g.EffectiveBandwidthGbps(PS, England, regions)
	if err != nil || ps != 1.2 { // England-Maharashtra is the weakest hub link
		t.Fatalf("PS effective bw: %v, %v", ps, err)
	}
	ar, err := g.EffectiveBandwidthGbps(AR, England, regions)
	if err != nil || ar != 0.8 {
		t.Fatalf("AR effective bw: %v, %v", ar, err)
	}
	if _, err := NewGraph().EffectiveBandwidthGbps(AR, "x", []string{"x", "y"}); err == nil {
		t.Fatal("empty graph must error for AR")
	}
}

// Property: comm time is non-negative and monotone non-decreasing in K for
// every topology.
func TestCommMonotoneProperty(t *testing.T) {
	m := testModel()
	f := func(kRaw uint8) bool {
		k := 2 + int(kRaw)%64
		for _, tp := range []Topology{PS, AR, RAR} {
			if m.CommTime(tp, k) < 0 || m.CommTime(tp, k+1) < m.CommTime(tp, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling bandwidth halves communication time exactly.
func TestBandwidthScalingProperty(t *testing.T) {
	f := func(kRaw uint8, bwRaw uint8) bool {
		k := 2 + int(kRaw)%32
		bw := 1 + float64(bwRaw%100)
		m1 := Model{ModelSizeMB: 100, BandwidthMBps: bw, Throughput: 1, LocalSteps: 1}
		m2 := m1
		m2.BandwidthMBps *= 2
		for _, tp := range []Topology{PS, AR, RAR} {
			if math.Abs(m1.CommTime(tp, k)-2*m2.CommTime(tp, k)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
