package topo

import (
	"fmt"
	"math"
	"sort"
)

// Graph is a symmetric inter-region bandwidth map in Gbps.
type Graph struct {
	links map[[2]string]float64
}

// NewGraph creates an empty bandwidth graph.
func NewGraph() *Graph { return &Graph{links: map[[2]string]float64{}} }

func key(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// AddLink records a bidirectional link of the given Gbps.
func (g *Graph) AddLink(a, b string, gbps float64) {
	g.links[key(a, b)] = gbps
}

// Bandwidth returns the link bandwidth between two regions, or 0 when no
// direct link is recorded.
func (g *Graph) Bandwidth(a, b string) float64 { return g.links[key(a, b)] }

// Regions returns the sorted set of regions appearing in any link.
func (g *Graph) Regions() []string {
	set := map[string]bool{}
	for k := range g.links {
		set[k[0]] = true
		set[k[1]] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RingBottleneck returns the slowest link along the given ring order (the
// ring closes from the last region back to the first) together with its
// endpoints. It returns an error if any ring edge is missing from the graph.
func (g *Graph) RingBottleneck(order []string) (gbps float64, a, b string, err error) {
	if len(order) < 2 {
		return 0, "", "", fmt.Errorf("topo: ring needs at least 2 regions")
	}
	gbps = math.Inf(1)
	for i := range order {
		x, y := order[i], order[(i+1)%len(order)]
		bw := g.Bandwidth(x, y)
		if bw == 0 {
			return 0, "", "", fmt.Errorf("topo: missing ring link %s-%s", x, y)
		}
		if bw < gbps {
			gbps, a, b = bw, x, y
		}
	}
	return gbps, a, b, nil
}

// StarBottleneck returns the slowest direct link from the hub to each leaf
// (the PS topology constraint: "the connection speed to England limits each
// update's communication").
func (g *Graph) StarBottleneck(hub string, leaves []string) (gbps float64, leaf string, err error) {
	if len(leaves) == 0 {
		return 0, "", fmt.Errorf("topo: star needs at least one leaf")
	}
	gbps = math.Inf(1)
	for _, l := range leaves {
		bw := g.Bandwidth(hub, l)
		if bw == 0 {
			return 0, "", fmt.Errorf("topo: missing star link %s-%s", hub, l)
		}
		if bw < gbps {
			gbps, leaf = bw, l
		}
	}
	return gbps, leaf, nil
}

// Figure 2 region names.
const (
	England     = "England"
	Utah        = "Utah"
	Texas       = "Texas"
	Quebec      = "Quebec"
	Maharashtra = "Maharashtra"
)

// WorldRing is the RAR ring order drawn in Figure 2 (gray dashed line); the
// caption identifies Maharashtra–Quebec as the slowest ring link.
func WorldRing() []string {
	return []string{England, Maharashtra, Quebec, Texas, Utah}
}

// WorldGraph reconstructs the Figure 2 bandwidth map. The figure prints the
// link speeds {0.8, 1.2, 1.5, 2, 2, 3, 5, 8} Gbps without labeling every
// edge; this assignment honors the two constraints the caption states —
// Maharashtra–Quebec (0.8 Gbps) is the RAR bottleneck, and the PS topology
// is a star on England — and keeps all drawn edges present.
func WorldGraph() *Graph {
	g := NewGraph()
	// RAR ring edges.
	g.AddLink(England, Maharashtra, 1.2)
	g.AddLink(Maharashtra, Quebec, 0.8) // slowest ring link (caption)
	g.AddLink(Quebec, Texas, 3)
	g.AddLink(Texas, Utah, 5)
	g.AddLink(Utah, England, 8)
	// PS star edges to the England aggregator not already on the ring.
	g.AddLink(England, Quebec, 2)
	g.AddLink(England, Texas, 2)
	// Remaining drawn link.
	g.AddLink(Maharashtra, Texas, 1.5)
	return g
}

// EffectiveBandwidthGbps returns the bandwidth the wall-time model should
// use for a topology over this graph: the ring bottleneck for RAR, the
// weakest hub link for PS, and the weakest pairwise link among participants
// for AR.
func (g *Graph) EffectiveBandwidthGbps(t Topology, hub string, regions []string) (float64, error) {
	switch t {
	case RAR:
		bw, _, _, err := g.RingBottleneck(regions)
		return bw, err
	case PS:
		leaves := make([]string, 0, len(regions))
		for _, r := range regions {
			if r != hub {
				leaves = append(leaves, r)
			}
		}
		bw, _, err := g.StarBottleneck(hub, leaves)
		return bw, err
	default: // AR: weakest existing link among all pairs
		best := math.Inf(1)
		found := false
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				if bw := g.Bandwidth(regions[i], regions[j]); bw > 0 && bw < best {
					best, found = bw, true
				}
			}
		}
		if !found {
			return 0, fmt.Errorf("topo: no links among regions %v", regions)
		}
		return best, nil
	}
}
