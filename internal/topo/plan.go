package topo

import (
	"fmt"
	"math"
	"sort"

	"photon/internal/hw"
)

// PlanOptions tunes BuildPlan's search.
type PlanOptions struct {
	// IntraRegionGbps is the LAN bandwidth between clients and a relay
	// placed in the same region (default 10 Gbps — an order of magnitude
	// above the Figure 2 WAN links, which is what makes tiering pay).
	IntraRegionGbps float64
	// UpstreamCodec names the wire codec the relay→root tier should run
	// (recorded on the emitted dial edges; default "q8").
	UpstreamCodec string
	// UpstreamCompression is the expected wire-size ratio of UpstreamCodec
	// (encoded bytes / dense bytes) applied to the parent tier's model size
	// when costing the tiered option (default 1 = no reduction assumed).
	UpstreamCompression float64
	// IntraCodec names the leaf→relay tier codec (default "dense": LAN
	// bandwidth makes compression CPU a net loss there).
	IntraCodec string
}

func (o *PlanOptions) fill() {
	if o.IntraRegionGbps <= 0 {
		o.IntraRegionGbps = 10
	}
	if o.UpstreamCodec == "" {
		o.UpstreamCodec = "q8"
	}
	if o.UpstreamCompression <= 0 || o.UpstreamCompression > 1 {
		o.UpstreamCompression = 1
	}
	if o.IntraCodec == "" {
		o.IntraCodec = "dense"
	}
}

// Cohort is one relay's tier assignment: the region hosting the relay and
// the client nodes it aggregates.
type Cohort struct {
	RelayRegion string
	// Members are the leaf client nodes ("<region>/<i>") attached to this
	// relay, sorted.
	Members []string
}

// Dial is one edge of the executable dial graph: From dials To. Tier 0 is
// the relay→root (or, in a flat plan, client→root) link; tier 1 is the
// leaf→relay link.
type Dial struct {
	From, To      string
	Tier          int
	BandwidthGbps float64
	Codec         string
}

// Plan is the executable output of the Appendix B.1 model: a relay
// placement minimizing congestion-corrected Eq. 5/6 wall time over a
// deployment, plus the dial graph that photon-agg -parent / photon-sim
// -tiers / the Job API consume.
type Plan struct {
	ModelName string
	AggRegion string
	// Tiers is 1 when the flat PS star wins, 2 when relays pay off.
	Tiers int
	// Relays is the chosen tier assignment (empty for a flat plan).
	Relays []Cohort
	// UpstreamCodec / IntraCodec are the per-tier codecs the plan assumes.
	UpstreamCodec string
	IntraCodec    string
	// FlatRoundSeconds and TieredRoundSeconds are the Eq. 5 wall times of
	// the two candidates; RoundSeconds is the chosen one.
	FlatRoundSeconds   float64
	TieredRoundSeconds float64
	RoundSeconds       float64
	// Dials is the dial graph of the chosen topology, sorted by (Tier,
	// From).
	Dials []Dial
}

// TotalSeconds is Eq. 6 for the chosen plan: rounds × RoundSeconds.
func (p *Plan) TotalSeconds(rounds int) float64 {
	return float64(rounds) * p.RoundSeconds
}

// nodeName labels the i-th client in a region on the dial graph.
func nodeName(region string, i int) string { return fmt.Sprintf("%s/%d", region, i) }

// regionLinkGbps returns the bandwidth between two regions, using the LAN
// figure when they coincide.
func regionLinkGbps(g *Graph, a, b string, intraGbps float64) float64 {
	if a == b {
		return intraGbps
	}
	return g.Bandwidth(a, b)
}

// BuildPlan searches relay placements for the deployment over the bandwidth
// graph and returns the cheapest executable plan under the
// congestion-corrected wall-time model.
//
// The flat candidate is the PS star on d.AggRegion. The tiered candidates
// place relays on every non-empty subset of the client-hosting regions;
// each region's clients attach to the highest-bandwidth relay site (their
// own region counts as a LAN link), the relay tier costs the slowest
// relay's congestion-corrected serial ingest, and the root tier moves one
// (possibly codec-compressed) pseudo-gradient per relay. With ≤5 regions
// the subset search is exhaustive and exact.
func BuildPlan(d hw.Deployment, g *Graph, m Model, opt PlanOptions) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opt.fill()
	rc := d.RegionClients()
	if len(rc) == 0 {
		return nil, fmt.Errorf("topo: deployment %q has no clients", d.ModelName)
	}
	regions := d.Regions()
	for _, r := range regions {
		if r != d.AggRegion && g.Bandwidth(r, d.AggRegion) == 0 {
			return nil, fmt.Errorf("topo: region %s has no link to aggregator region %s", r, d.AggRegion)
		}
	}
	total := d.TotalClients()
	theta := m.theta()
	s, agg := m.ModelSizeMB, d.AggRegion

	// Flat: every client lands on the aggregator's star; the binding link
	// is the weakest client→agg edge, and all N transfers serialize there.
	// The inter-region codec is available to EITHER topology (a flat fleet
	// can run topk just as well), so both candidates' root tiers get the
	// same UpstreamCompression — tiering must win on congestion relief,
	// transfer-count folding, or routing around weak links, never on a
	// codec it does not own.
	flatBw := math.Inf(1)
	for _, r := range regions {
		if bw := regionLinkGbps(g, r, agg, opt.IntraRegionGbps); bw < flatBw {
			flatBw = bw
		}
	}
	flatComm := psSerialTime(float64(total), s*opt.UpstreamCompression, GbpsToMBps(flatBw), theta)
	flatRound := m.LocalComputeTime() + flatComm + m.AggregationTime(total)

	// Tiered: exhaustive search over relay-site subsets.
	type assignment struct {
		sites   []string
		attach  map[string]string // client region → relay site
		seconds float64
	}
	best := assignment{seconds: math.Inf(1)}
	for mask := 1; mask < 1<<len(regions); mask++ {
		var sites []string
		for i, r := range regions {
			if mask&(1<<i) != 0 {
				sites = append(sites, r)
			}
		}
		// Attach each client region to its best-bandwidth relay site.
		attach := make(map[string]string, len(regions))
		ok := true
		for _, r := range regions {
			bestBw, bestSite := 0.0, ""
			for _, h := range sites {
				if bw := regionLinkGbps(g, r, h, opt.IntraRegionGbps); bw > bestBw {
					bestBw, bestSite = bw, h
				}
			}
			if bestSite == "" {
				ok = false
				break
			}
			attach[r] = bestSite
		}
		if !ok {
			continue
		}
		// Relay tier: each relay serially ingests its cohort over its
		// weakest attached link; the tier finishes with the slowest relay.
		relayTier := 0.0
		relayAgg := 0.0
		for _, h := range sites {
			n, minBw := 0, math.Inf(1)
			for _, r := range regions {
				if attach[r] != h {
					continue
				}
				n += rc[r]
				if bw := regionLinkGbps(g, r, h, opt.IntraRegionGbps); bw < minBw {
					minBw = bw
				}
			}
			if n == 0 {
				continue // a site nothing attaches to adds nothing
			}
			if t := psSerialTime(float64(n), s, GbpsToMBps(minBw), theta); t > relayTier {
				relayTier = t
			}
			if t := m.AggregationTime(n); t > relayAgg {
				relayAgg = t
			}
		}
		// Root tier: one (codec-compressed) exchange per populated relay
		// over the weakest relay→agg link.
		populated := 0
		rootBw := math.Inf(1)
		for _, h := range sites {
			used := false
			for _, r := range regions {
				if attach[r] == h && rc[r] > 0 {
					used = true
				}
			}
			if !used {
				continue
			}
			populated++
			if bw := regionLinkGbps(g, h, agg, opt.IntraRegionGbps); bw < rootBw {
				rootBw = bw
			}
		}
		rootComm := psSerialTime(float64(populated), s*opt.UpstreamCompression, GbpsToMBps(rootBw), theta)
		seconds := m.LocalComputeTime() + relayTier + relayAgg + rootComm + m.AggregationTime(populated)
		if seconds < best.seconds {
			best = assignment{sites: sites, attach: attach, seconds: seconds}
		}
	}

	p := &Plan{
		ModelName:          d.ModelName,
		AggRegion:          agg,
		UpstreamCodec:      opt.UpstreamCodec,
		IntraCodec:         opt.IntraCodec,
		FlatRoundSeconds:   flatRound,
		TieredRoundSeconds: best.seconds,
	}
	if flatRound <= best.seconds {
		// Flat wins: clients dial the root directly. Their WAN edges carry
		// the inter-region codec the flat candidate was costed with (only
		// clients co-located with the aggregator stay on the LAN codec),
		// so the emitted plan runs exactly what the cost model priced.
		p.Tiers = 1
		p.RoundSeconds = flatRound
		for _, r := range regions {
			bw := regionLinkGbps(g, r, agg, opt.IntraRegionGbps)
			codec := opt.UpstreamCodec
			if r == agg {
				codec = opt.IntraCodec
			}
			for i := 0; i < rc[r]; i++ {
				p.Dials = append(p.Dials, Dial{
					From: nodeName(r, i), To: agg, Tier: 0,
					BandwidthGbps: bw, Codec: codec,
				})
			}
		}
	} else {
		p.Tiers = 2
		p.RoundSeconds = best.seconds
		bysite := map[string][]string{}
		for _, r := range regions {
			h := best.attach[r]
			bw := regionLinkGbps(g, r, h, opt.IntraRegionGbps)
			for i := 0; i < rc[r]; i++ {
				name := nodeName(r, i)
				bysite[h] = append(bysite[h], name)
				p.Dials = append(p.Dials, Dial{
					From: name, To: "relay@" + h, Tier: 1,
					BandwidthGbps: bw, Codec: opt.IntraCodec,
				})
			}
		}
		sites := make([]string, 0, len(bysite))
		for h := range bysite {
			sites = append(sites, h)
		}
		sort.Strings(sites)
		for _, h := range sites {
			members := bysite[h]
			sort.Strings(members)
			p.Relays = append(p.Relays, Cohort{RelayRegion: h, Members: members})
			p.Dials = append(p.Dials, Dial{
				From: "relay@" + h, To: agg, Tier: 0,
				BandwidthGbps: regionLinkGbps(g, h, agg, opt.IntraRegionGbps),
				Codec:         opt.UpstreamCodec,
			})
		}
	}
	sort.Slice(p.Dials, func(i, j int) bool {
		if p.Dials[i].Tier != p.Dials[j].Tier {
			return p.Dials[i].Tier < p.Dials[j].Tier
		}
		return p.Dials[i].From < p.Dials[j].From
	})
	return p, nil
}
