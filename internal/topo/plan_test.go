package topo

import (
	"math"
	"strings"
	"testing"

	"photon/internal/hw"
)

func planModel() Model {
	return Model{
		ModelSizeMB: 250, // 125M in BF16
		// BandwidthMBps is superseded per link by the graph; Validate still
		// wants it positive.
		BandwidthMBps: 1,
		Throughput:    2,
		LocalSteps:    512,
	}
}

func deployment125M() hw.Deployment {
	for _, d := range hw.Table1Deployments() {
		if d.ModelName == "125M" {
			return d
		}
	}
	panic("125M deployment missing")
}

func TestBuildPlanPrefersTiersUnderCongestion(t *testing.T) {
	d := deployment125M() // 10 clients across 5 regions, aggregator in England
	m := planModel()
	m.CongestionThr = 4 // a 4-channel root link congests under 10 direct clients
	p, err := BuildPlan(d, WorldGraph(), m, PlanOptions{UpstreamCompression: 0.26, UpstreamCodec: "q8"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tiers != 2 {
		t.Fatalf("congested flat star should lose to relays: tiers=%d (flat %.1fs, tiered %.1fs)",
			p.Tiers, p.FlatRoundSeconds, p.TieredRoundSeconds)
	}
	if p.TieredRoundSeconds >= p.FlatRoundSeconds {
		t.Fatalf("tiered plan selected but not cheaper: %v vs %v", p.TieredRoundSeconds, p.FlatRoundSeconds)
	}
	if p.RoundSeconds != p.TieredRoundSeconds {
		t.Fatal("RoundSeconds must be the chosen candidate's time")
	}
	// Every client must appear exactly once as a tier-1 dialer, and every
	// relay must dial the aggregator on tier 0.
	leaves := map[string]int{}
	relays := map[string]bool{}
	for _, e := range p.Dials {
		switch e.Tier {
		case 1:
			leaves[e.From]++
			if !strings.HasPrefix(e.To, "relay@") {
				t.Fatalf("tier-1 edge %s -> %s does not target a relay", e.From, e.To)
			}
		case 0:
			if e.To != England {
				t.Fatalf("tier-0 edge %s -> %s does not target the aggregator", e.From, e.To)
			}
			relays[e.From] = true
			if e.Codec != "q8" {
				t.Fatalf("tier-0 edge carries codec %q, want the upstream codec", e.Codec)
			}
		}
	}
	if len(leaves) != d.TotalClients() {
		t.Fatalf("dial graph covers %d leaves, want %d", len(leaves), d.TotalClients())
	}
	for leaf, n := range leaves {
		if n != 1 {
			t.Fatalf("leaf %s dials %d relays", leaf, n)
		}
	}
	if len(relays) != len(p.Relays) {
		t.Fatalf("dial graph has %d relays, plan lists %d", len(relays), len(p.Relays))
	}
	// Cohort membership and dial graph must agree.
	cohortMembers := 0
	for _, c := range p.Relays {
		cohortMembers += len(c.Members)
		if !relays["relay@"+c.RelayRegion] {
			t.Fatalf("cohort relay %s missing from dial graph", c.RelayRegion)
		}
	}
	if cohortMembers != d.TotalClients() {
		t.Fatalf("cohorts cover %d clients, want %d", cohortMembers, d.TotalClients())
	}
	if p.TotalSeconds(20) != 20*p.RoundSeconds {
		t.Fatal("TotalSeconds must be Eq. 6 over the chosen round time")
	}
}

func TestBuildPlanFallsBackToFlatWhenCheap(t *testing.T) {
	// Two clients on the fat Utah–England link, well below θ: a relay hop
	// adds a serial ingest stage for nothing, so the planner keeps the
	// flat star.
	d := hw.Deployment{ModelName: "7B", AggRegion: England, Silos: []hw.RegionSilo{
		{Region: Utah, Clients: 2, GPUsPerClient: 8},
	}}
	m := planModel()
	p, err := BuildPlan(d, WorldGraph(), m, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tiers != 1 {
		t.Fatalf("uncongested 2-client star should stay flat, got %d tiers (flat %.2fs, tiered %.2fs)",
			p.Tiers, p.FlatRoundSeconds, p.TieredRoundSeconds)
	}
	if len(p.Relays) != 0 {
		t.Fatal("flat plan must carry no relays")
	}
	for _, e := range p.Dials {
		if e.Tier != 0 || e.To != England {
			t.Fatalf("flat dial graph edge %+v should point clients at the aggregator", e)
		}
	}
	if len(p.Dials) != 2 {
		t.Fatalf("flat dial graph has %d edges, want 2", len(p.Dials))
	}
}

func TestBuildPlanErrors(t *testing.T) {
	m := planModel()
	if _, err := BuildPlan(hw.Deployment{ModelName: "x", AggRegion: England}, WorldGraph(), m, PlanOptions{}); err == nil {
		t.Fatal("empty deployment must error")
	}
	d := hw.Deployment{ModelName: "x", AggRegion: England, Silos: []hw.RegionSilo{
		{Region: "Atlantis", Clients: 2, GPUsPerClient: 1},
	}}
	if _, err := BuildPlan(d, WorldGraph(), m, PlanOptions{}); err == nil {
		t.Fatal("unreachable region must error")
	}
	bad := m
	bad.Throughput = 0
	if _, err := BuildPlan(deployment125M(), WorldGraph(), bad, PlanOptions{}); err == nil {
		t.Fatal("invalid model must error")
	}
}

// TestBuildPlanTieredBeatsFlatAnalytically cross-checks the chosen tiered
// time against a hand-computed bound: the tiered round can never beat local
// compute plus the cheapest conceivable root exchange.
func TestBuildPlanTieredBeatsFlatAnalytically(t *testing.T) {
	m := planModel()
	m.CongestionThr = 4
	p, err := BuildPlan(deployment125M(), WorldGraph(), m, PlanOptions{UpstreamCompression: 0.26})
	if err != nil {
		t.Fatal(err)
	}
	if p.TieredRoundSeconds < m.LocalComputeTime() {
		t.Fatal("tiered time below pure compute time is impossible")
	}
	if math.IsInf(p.TieredRoundSeconds, 0) || math.IsNaN(p.TieredRoundSeconds) {
		t.Fatal("tiered time must be finite")
	}
}
