// Package topo implements Photon's aggregation topologies and the analytic
// wall-time model of Appendix B.1.
//
// The three aggregation variants of Section 4 — parameter server (PS),
// AllReduce (AR), and Ring-AllReduce (RAR) — have the communication costs of
// Eqs. 2–4; local compute time follows Eq. 1; round and total wall time
// follow Eqs. 5–6 (RoundTime includes the Eq. 7 server aggregation term);
// PS bandwidth degrades past the Appendix B.1 congestion threshold θ
// (CongestionThr), continuously and monotonically in the client count. The
// package also carries the Figure 2 inter-region bandwidth graph, the
// topology auto-selection rule Photon applies per scenario (privacy
// constraints rule out peer-to-peer; dropout risk rules out RAR; otherwise
// the cheapest topology wins), and BuildPlan, which turns the analytic
// model into an executable two-tier relay placement over a deployment.
package topo

import (
	"fmt"
	"math"
)

// Topology identifies an aggregation implementation.
type Topology int

// Aggregation topologies from Section 4.
const (
	// PS routes all updates through a parameter server: O(N·M) at the
	// server, tolerant of dropouts, the only option under strict privacy.
	PS Topology = iota
	// AR is direct all-to-all AllReduce: O(N²·M) total traffic.
	AR
	// RAR is bandwidth-optimal Ring-AllReduce, bottlenecked by the slowest
	// ring link and intolerant of dropouts.
	RAR
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case PS:
		return "PS"
	case AR:
		return "AR"
	default:
		return "RAR"
	}
}

// GbpsToMBps converts link bandwidth from gigabits/s to megabytes/s.
func GbpsToMBps(gbps float64) float64 { return gbps * 1000 / 8 }

// Model is the Appendix B.1 wall-time model. All times are seconds.
type Model struct {
	ModelSizeMB   float64 // S: model size on the wire (MB)
	BandwidthMBps float64 // B: effective bandwidth of the binding link (MB/s)
	Throughput    float64 // ν: local training throughput (batches/s), Eq. 1
	LocalSteps    int     // τ: local steps per round
	ServerTFLOPS  float64 // ζ: server aggregation capacity (default 5 TFLOPS)
	CongestionThr int     // θ: channels before bandwidth scaling (default 100)
}

// Validate reports whether the model's parameters are usable.
func (m Model) Validate() error {
	switch {
	case m.ModelSizeMB <= 0:
		return fmt.Errorf("topo: ModelSizeMB must be positive, got %v", m.ModelSizeMB)
	case m.BandwidthMBps <= 0:
		return fmt.Errorf("topo: BandwidthMBps must be positive, got %v", m.BandwidthMBps)
	case m.Throughput <= 0:
		return fmt.Errorf("topo: Throughput must be positive, got %v", m.Throughput)
	case m.LocalSteps <= 0:
		return fmt.Errorf("topo: LocalSteps must be positive, got %v", m.LocalSteps)
	}
	return nil
}

// LocalComputeTime is Eq. 1: T_L = τ/ν. It does not scale with the client
// count because all clients train in parallel on equipollent hardware.
func (m Model) LocalComputeTime() float64 {
	return float64(m.LocalSteps) / m.Throughput
}

// theta returns the effective congestion threshold (default 100 channels).
func (m Model) theta() float64 {
	if m.CongestionThr <= 0 {
		return 100
	}
	return float64(m.CongestionThr)
}

// psSerialTime is the Appendix B.1 congestion-corrected cost of serializing
// k model transfers of s MB over a link of b MB/s: k·s/b while k stays
// within the θ concurrent channels the server NIC sustains at full rate,
// and k²·s/(θ·b) beyond it — each of the k transfers then only gets the
// θ/k-th share of the link. The two branches agree at k = θ, so the cost is
// continuous and monotone non-decreasing in k.
func psSerialTime(k float64, s, b, theta float64) float64 {
	if k <= theta {
		return k * s / b
	}
	return k * k * s / (theta * b)
}

// CommTime returns the per-round communication time of Eqs. 2–4 for K
// clients under the given topology. K ≤ 1 means no communication. The PS
// cost degrades past the congestion threshold θ (CongestionThr): beyond θ
// concurrent channels the server link's effective per-transfer bandwidth
// shrinks proportionally, so the cost grows quadratically in K.
func (m Model) CommTime(t Topology, k int) float64 {
	if k <= 1 {
		return 0
	}
	kf := float64(k)
	s, b := m.ModelSizeMB, m.BandwidthMBps
	switch t {
	case PS:
		// Eq. 2 with the Appendix B.1 congestion correction.
		return psSerialTime(kf, s, b, m.theta())
	case AR:
		// Eq. 3: each worker exchanges with K−1 peers.
		return (kf - 1) * s / b
	default:
		// Eq. 4: bandwidth-optimal ring, 2S(K−1)/(K·B).
		return 2 * s * (kf - 1) / (kf * b)
	}
}

// AggregationTime is Eq. 7: T_agg = K·S/ζ with ζ in TFLOPS (default 5),
// counting one reduce FLOP per aggregated byte. As the paper notes, this is
// negligible next to communication.
func (m Model) AggregationTime(k int) float64 {
	z := m.ServerTFLOPS
	if z <= 0 {
		z = 5
	}
	return float64(k) * m.ModelSizeMB * 1e6 / (z * 1e12)
}

// RoundTime is Eq. 5: one round of local compute, aggregation traffic, and
// the Eq. 7 server aggregation term (negligible next to communication, but
// part of the equation).
func (m Model) RoundTime(t Topology, k int) float64 {
	return m.LocalComputeTime() + m.CommTime(t, k) + m.AggregationTime(k)
}

// TotalTime is Eq. 6: R rounds of RoundTime.
func (m Model) TotalTime(t Topology, k, rounds int) float64 {
	return float64(rounds) * m.RoundTime(t, k)
}

// CommShare returns the fraction of round wall time spent communicating,
// the percentage annotated on top of the Figure 6/9/10 bars.
func (m Model) CommShare(t Topology, k int) float64 {
	rt := m.RoundTime(t, k)
	if rt == 0 {
		return 0
	}
	return m.CommTime(t, k) / rt
}

// DDPStepCommTime returns the per-step gradient synchronization cost of
// centralized distributed data parallelism over the same links, which pays
// the Eq. 4 ring cost at *every* optimizer step instead of every τ steps.
func (m Model) DDPStepCommTime(k int) float64 {
	return m.CommTime(RAR, k)
}

// CommReductionFactor returns how many times less often federated training
// communicates versus DDP: exactly τ (the 64×–512× headline).
func (m Model) CommReductionFactor() float64 { return float64(m.LocalSteps) }

// Constraints describe deployment restrictions for topology selection.
type Constraints struct {
	// PeerToPeerAllowed is false under privacy restrictions that force all
	// traffic through a trusted server.
	PeerToPeerAllowed bool
	// DropoutExpected is true when clients may vanish mid-round, which RAR
	// cannot tolerate.
	DropoutExpected bool
}

// SelectTopology picks the cheapest admissible topology for K clients.
func (m Model) SelectTopology(c Constraints, k int) Topology {
	if !c.PeerToPeerAllowed {
		return PS
	}
	best, bestT := math.Inf(1), PS
	for _, t := range []Topology{PS, AR, RAR} {
		if t == RAR && c.DropoutExpected {
			continue
		}
		if ct := m.CommTime(t, k); ct < best {
			best, bestT = ct, t
		}
	}
	return bestT
}
