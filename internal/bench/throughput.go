package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"photon/internal/nn"
	"photon/internal/opt"
)

// TrainBenchShape is the canonical Quick-scale throughput shape: long enough
// sequences that attention carries a realistic share of the FLOPs, small
// enough that a full step runs in milliseconds on one core. It is shared by
// the committed BENCH_train.json emitter (internal/nn trainbench_test.go)
// and the train-throughput experiment so the two measurements can never
// drift apart.
func TrainBenchShape() (cfg nn.Config, batchSize int) {
	return nn.Config{Name: "bench", Blocks: 2, Dim: 64, Heads: 4, ExpRatio: 4,
		VocabSize: 256, SeqLen: 256, Beta1: 0.9, Beta2: 0.95}, 2
}

// TrainStep runs one full steady-state training step — zero grads, forward,
// backward, clip, optimizer update — the unit both throughput benchmarks
// time.
func TrainStep(m *nn.Model, batch nn.Batch, optimizer opt.Optimizer, lr float64) {
	m.Params().ZeroGrads()
	m.ForwardBackward(batch)
	m.Params().ClipGradNorm(1.0)
	optimizer.Step(m.Params(), lr)
}

// TrainThroughput measures local-compute training throughput — the quantity
// the batched attention kernels and the zero-allocation workspace exist to
// maximize. For each proxy size it runs warm steady-state training steps
// (zero grads + forward + backward + clip + AdamW) and reports wall time per
// step, tokens/sec, and heap allocations per step (which should be zero).
//
// This is the in-repo analogue of the committed BENCH_train.json artifact:
// `photon-bench -exp train-throughput` regenerates the measurement at any
// scale on any machine.
func TrainThroughput(ctx context.Context, w io.Writer, scale Scale) error {
	type shape struct {
		name  string
		cfg   nn.Config
		batch int
	}
	bench, benchBatch := TrainBenchShape()
	shapes := []shape{
		{"tiny (test proxy)", nn.ConfigTiny, 4},
		{"bench (64d, T=256)", bench, benchBatch},
	}
	if scale == Full {
		big := bench
		big.Name = "bench-128d"
		big.Dim, big.Heads, big.SeqLen = 128, 8, 512
		shapes = append(shapes, shape{"full (128d, T=512)", big, 2})
	}
	steps := 3
	if scale == Full {
		steps = 10
	}

	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s\n", "shape", "ns/step", "tokens/s", "B/step", "allocs/step")
	for _, sh := range shapes {
		if err := ctx.Err(); err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(7))
		m := nn.NewModel(sh.cfg, rng)
		batch := nn.Batch{}
		for i := 0; i < sh.batch; i++ {
			in := make([]int, sh.cfg.SeqLen)
			tg := make([]int, sh.cfg.SeqLen)
			for t := range in {
				in[t] = rng.Intn(sh.cfg.VocabSize)
				tg[t] = rng.Intn(sh.cfg.VocabSize)
			}
			batch.Inputs = append(batch.Inputs, in)
			batch.Targets = append(batch.Targets, tg)
		}
		optimizer := opt.NewAdamW(sh.cfg.Beta1, sh.cfg.Beta2, 0.01)
		step := func() { TrainStep(m, batch, optimizer, 1e-4) }
		// Warm up workspace + optimizer state outside the measurement.
		step()
		step()

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for s := 0; s < steps; s++ {
			step()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)

		nsPerStep := float64(elapsed.Nanoseconds()) / float64(steps)
		tokens := float64(batch.Tokens())
		fmt.Fprintf(w, "%-22s %12.0f %12.0f %12d %12d\n",
			sh.name, nsPerStep, tokens/(nsPerStep/1e9),
			int64(after.TotalAlloc-before.TotalAlloc)/int64(steps),
			int64(after.Mallocs-before.Mallocs)/int64(steps))
	}
	fmt.Fprintf(w, "\nGOMAXPROCS=%d; steady-state steps after warm-up; B/step and allocs/step\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "should be ~0 (workspace-arena training step; see README Performance).\n")
	return nil
}
