package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment at Quick
// scale and checks it produces non-trivial output without errors. This is
// the harness's own smoke test; paper-shape assertions live in the targeted
// tests below.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments are slow")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(context.Background(), &buf, Quick); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() < 50 {
				t.Fatalf("%s: suspiciously small output (%d bytes):\n%s", e.ID, buf.Len(), buf.String())
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("table2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Registry()) < 20 {
		t.Fatalf("registry shrank: %d experiments", len(Registry()))
	}
}

func TestTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(context.Background(), &buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Headline claims that must hold in the generated table: federated
	// wall time beats centralized (ratio < 1) and communication is reduced
	// by orders of magnitude.
	for _, want := range []string{"Fed-7B", "Cen-7B", "Fed-1.3B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing row %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "0.00") { // comm ratio ~0.001x rendered as 0.00xx
		t.Fatalf("expected ~0.001x comm ratio in:\n%s", out)
	}
}

func TestTable2FedBeatsCent(t *testing.T) {
	// Recompute the model directly: for every size, fed wall < cent wall
	// and fed comm < 1% of cent comm.
	for _, r := range table2Rows() {
		var buf bytes.Buffer
		if err := Table2(context.Background(), &buf, Quick); err != nil {
			t.Fatal(err)
		}
		_ = r
	}
	out := captureTable2Ratios(t)
	for size, ratios := range out {
		if ratios.wall >= 1 {
			t.Errorf("%s: fed wall ratio %.2f >= 1", size, ratios.wall)
		}
		if ratios.comm >= 0.01 {
			t.Errorf("%s: fed comm ratio %.4f >= 0.01", size, ratios.comm)
		}
	}
}

type t2ratio struct{ wall, comm float64 }

// captureTable2Ratios recomputes the Table 2 ratios from the shared row data
// using the same arithmetic as the renderer.
func captureTable2Ratios(t *testing.T) map[string]t2ratio {
	t.Helper()
	out := map[string]t2ratio{}
	for _, r := range table2Rows() {
		wallFed, commFed, wallCen, commCen := table2Times(r, 500, 10)
		out[r.name] = t2ratio{wall: wallFed / wallCen, comm: commFed / commCen}
	}
	return out
}
