package bench

import (
	"context"
	"fmt"
	"io"

	"photon/internal/hw"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/topo"
)

// Figure2 reproduces the paper's Figure 2: the federation's inter-region
// bandwidth map, the Ring-AllReduce bottleneck (Maharashtra–Quebec), the
// parameter-server star bottleneck to England, and the resulting per-update
// communication times for each model size.
func Figure2(ctx context.Context, w io.Writer, _ Scale) error {
	g := topo.WorldGraph()
	ring := topo.WorldRing()
	fprintf(w, "Figure 2: federation locations and bandwidth\n\nLinks (Gbps):\n")
	regions := g.Regions()
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if bw := g.Bandwidth(regions[i], regions[j]); bw > 0 {
				fprintf(w, "  %-12s - %-12s %5.1f\n", regions[i], regions[j], bw)
			}
		}
	}
	rarBW, a, b, err := g.RingBottleneck(ring)
	if err != nil {
		return err
	}
	psBW, leaf, err := g.StarBottleneck(topo.England, []string{topo.Utah, topo.Texas, topo.Quebec, topo.Maharashtra})
	if err != nil {
		return err
	}
	fprintf(w, "\nRAR ring order: %v\nRAR bottleneck: %s-%s at %.1f Gbps\nPS hub: England; slowest star link: England-%s at %.1f Gbps\n",
		ring, a, b, rarBW, leaf, psBW)

	fprintf(w, "\nPer-update communication time over this federation (K=4 silos):\n")
	headers := []string{"Model", "Wire[MB]", "RAR[s]", "PS[s]", "AR[s]"}
	var rows [][]string
	for _, cfg := range []nn.Config{nn.Config125M, nn.Config1B, nn.Config3B, nn.Config7B} {
		s := hw.ModelSizeMB(cfg)
		mk := func(bwGbps float64) topo.Model {
			return topo.Model{ModelSizeMB: s, BandwidthMBps: topo.GbpsToMBps(bwGbps), Throughput: 1, LocalSteps: 1}
		}
		arBW, err := g.EffectiveBandwidthGbps(topo.AR, topo.England, ring)
		if err != nil {
			return err
		}
		rows = append(rows, []string{cfg.Name, f1(s),
			f1(mk(rarBW).CommTime(topo.RAR, 4)),
			f1(mk(psBW).CommTime(topo.PS, 4)),
			f1(mk(arBW).CommTime(topo.AR, 4))})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// topologyWallTime renders one of Figures 6/9/10: total wall time to the
// target perplexity split into local compute and communication for the
// PS/AR/RAR aggregation implementations, across client counts. Rounds-to-
// target R(N) comes from real proxy training runs (τ scaled down by the
// documented factor); each round is then charged at the paper's 125M round
// cost with τ local steps at ν=2 over the cross-silo bandwidth.
func topologyWallTime(ctx context.Context, w io.Writer, scale Scale, figure string, tauPaper, tauProxy int, targetPPL float64) error {
	ns := []int{2, 4, 8, 16}
	if scale == Quick {
		ns = []int{2, 8}
	}
	const bandwidthGbps = 2.5 // the paper's stated average cross-silo link

	fprintf(w, "%s: wall time split (LC vs comm) to ppl=%.0f, τ=%d, 125M @ %.1f Gbps\n",
		figure, targetPPL, tauPaper, bandwidthGbps)
	headers := []string{"N", "Rounds", "LC[s]", "RAR[s]", "RAR%", "AR[s]", "AR%", "PS[s]", "PS%"}
	var rows [][]string
	cfg := proxyCfg()
	for _, n := range ns {
		clients, err := federation(cfg, n, 7)
		if err != nil {
			return err
		}
		maxRounds := 400
		if scale == Quick {
			maxRounds = 60
		}
		hist, err := runFed(ctx, cfg, clients, photonOuter(), proxySpec(tauProxy, proxyLR),
			maxRounds, n, 1, targetPPL)
		if err != nil {
			return err
		}
		rounds, ok := hist.RoundsToPPL(targetPPL)
		if !ok {
			rounds = hist.Len() // did not reach target inside budget: report budget
		}
		m := paper125MModel(tauPaper, bandwidthGbps)
		lc := float64(rounds) * m.LocalComputeTime()
		row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", rounds), f1(lc)}
		for _, tp := range []topo.Topology{topo.RAR, topo.AR, topo.PS} {
			comm := float64(rounds) * m.CommTime(tp, n)
			row = append(row, f1(comm), fmt.Sprintf("%.1f%%", 100*comm/(lc+comm)))
		}
		rows = append(rows, row)
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	fprintf(w, "\nProxy mapping: R(N) measured with τ=%d proxy steps/round; each round charged at the paper's 125M cost (τ=%d, ν=2).\n", tauProxy, tauPaper)
	return nil
}

// Figure6 reproduces the paper's Figure 6 (τ=512 local steps per round).
func Figure6(ctx context.Context, w io.Writer, scale Scale) error {
	return topologyWallTime(ctx, w, scale, "Figure 6", 512, 24, 35)
}

// Figure9 reproduces the appendix Figure 9 (τ=64).
func Figure9(ctx context.Context, w io.Writer, scale Scale) error {
	return topologyWallTime(ctx, w, scale, "Figure 9", 64, 6, 35)
}

// Figure10 reproduces the appendix Figure 10 (τ=128).
func Figure10(ctx context.Context, w io.Writer, scale Scale) error {
	return topologyWallTime(ctx, w, scale, "Figure 10", 128, 12, 35)
}
