package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"photon/internal/data"
	"photon/internal/ddp"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/opt"
)

// AblationOuterOpt compares the server optimizers DESIGN.md calls out:
// FedAvg(1.0) (Photon's recipe), FedAvg with server momentum, and DiLoCo's
// outer Nesterov at its stable learning rate.
func AblationOuterOpt(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau, n := 30, 16, 4
	if scale == Quick {
		rounds = 10
	}
	fprintf(w, "Ablation: outer optimizer (N=%d, τ=%d)\n", n, tau)
	headers := []string{"OuterOpt", "BestPPL", "Rounds→42", "Rounds→35"}
	var rows [][]string
	for _, c := range []struct {
		name  string
		outer fed.OuterOpt
	}{
		{"FedAvg(1.0)", fed.FedAvg{LR: 1.0}},
		{"FedMom(1.0,0.9)", fed.NewFedMom(1.0, 0.9)},
		{"FedMom(0.5,0.9)", fed.NewFedMom(0.5, 0.9)},
		{"DiLoCo(0.1,0.9)", fed.NewDiLoCo(0.1, 0.9)},
	} {
		clients, err := federation(proxyCfg(), n, 41)
		if err != nil {
			return err
		}
		hist, err := runFed(ctx, proxyCfg(), clients, c.outer, proxySpec(tau, proxyLR), rounds, n, 10, 0)
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.name, f1(hist.BestPPL()),
			roundsOrDash(hist, 42), roundsOrDash(hist, 35)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

func roundsOrDash(h *metrics.History, target float64) string {
	if r, ok := h.RoundsToPPL(target); ok {
		return fmt.Sprintf("%d", r)
	}
	return "-"
}

// AblationRecipe reproduces the Appendix C.1 observation behind Photon's
// recipe: federated averaging tolerates the high learning rate with small
// batches, while centralized small-batch training at the same rate is
// unstable unless the rate is scaled down linearly with batch size.
func AblationRecipe(ctx context.Context, w io.Writer, scale Scale) error {
	steps, tau, n := 480, 16, 4
	if scale == Quick {
		steps, tau = 160, 8
	}
	rounds := steps / tau
	highLR := 10 * proxyLR // deliberately past the centralized stability edge
	fprintf(w, "Ablation: small-batch + high-LR recipe (Bl=%d, LR=%g)\n", proxyBatch, highLR)
	headers := []string{"Recipe", "FinalPPL", "Stable"}
	var rows [][]string

	clients, err := federation(proxyCfg(), n, 43)
	if err != nil {
		return err
	}
	fedH, err := runFed(ctx, proxyCfg(), clients, photonOuter(),
		fed.LocalSpec{Steps: tau, BatchSize: proxyBatch, SeqLen: 16,
			Schedule: opt.PaperCosine(highLR, 4*steps), ClipNorm: 1.0},
		rounds, n, 12, 0)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"federated high-LR small-batch", pplOrDiverged(fedH.FinalPPL()),
		stable(fedH.FinalPPL())})

	cenHigh, err := runCentralized(ctx, proxyCfg(), steps, proxyBatch, highLR, 12)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"centralized high-LR small-batch", pplOrDiverged(cenHigh.FinalPPL()),
		stable(cenHigh.FinalPPL())})

	scaled := opt.LinearLRScale(highLR, proxyBatch*8, proxyBatch)
	cenScaled, err := runCentralized(ctx, proxyCfg(), steps, proxyBatch, scaled, 12)
	if err != nil {
		return err
	}
	rows = append(rows, []string{fmt.Sprintf("centralized lin-scaled LR=%.2g", scaled),
		pplOrDiverged(cenScaled.FinalPPL()), stable(cenScaled.FinalPPL())})

	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

func pplOrDiverged(p float64) string {
	if p != p || p > 1e6 {
		return "diverged"
	}
	return f1(p)
}

func stable(p float64) string {
	if p == p && p < 100 {
		return "yes"
	}
	return "no"
}

// AblationOptState compares stateless local AdamW (the paper's choice, which
// avoids communicating or persisting optimizer state) against keeping
// momenta across rounds.
func AblationOptState(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau, n := 24, 16, 4
	if scale == Quick {
		rounds = 8
	}
	fprintf(w, "Ablation: stateless vs stateful local optimizer (N=%d, τ=%d)\n", n, tau)
	headers := []string{"ClientOpt state", "BestPPL", "Rounds→42"}
	var rows [][]string
	for _, stateful := range []bool{false, true} {
		clients, err := federation(proxyCfg(), n, 47)
		if err != nil {
			return err
		}
		spec := proxySpec(tau, proxyLR)
		spec.Stateful = stateful
		hist, err := runFed(ctx, proxyCfg(), clients, photonOuter(), spec, rounds, n, 14, 0)
		if err != nil {
			return err
		}
		label := "stateless (paper)"
		if stateful {
			label = "stateful"
		}
		rows = append(rows, []string{label, f1(hist.BestPPL()), roundsOrDash(hist, 42)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// AblationCompression measures every built-in wire codec on a realistic
// payload — a fresh model update from one local round — reporting the
// encoded wire cost, compression ratio versus dense float32, encode/decode
// time, and the relative L2 reconstruction error lossy codecs introduce
// (topk's first-round error is recovered over later rounds by its
// error-feedback residual).
func AblationCompression(ctx context.Context, w io.Writer, _ Scale) error {
	fprintf(w, "Ablation: Link wire codecs (one model-update payload)\n")
	cfg := proxyCfg()
	clients, err := federation(cfg, 1, 53)
	if err != nil {
		return err
	}
	global := nn.NewModel(cfg, rand.New(rand.NewSource(53))).Params().Flatten(nil)
	res, err := clients[0].RunRound(ctx, global, 0, proxySpec(8, proxyLR))
	if err != nil {
		return err
	}
	update := res.Update

	headers := []string{"Codec", "Bytes", "B/elem", "Ratio", "Enc", "Dec", "RelErr"}
	var rows [][]string
	for _, name := range []string{"dense", "flate", "q8", "topk:0.1"} {
		codec, err := link.NewCodec(name)
		if err != nil {
			return err
		}
		encStart := time.Now()
		enc, err := link.EncodeVector(codec, update)
		encTime := time.Since(encStart)
		if err != nil {
			return err
		}
		decStart := time.Now()
		dec, err := link.DecodePayload(codec, enc)
		decTime := time.Since(decStart)
		if err != nil {
			return err
		}
		var errSq, refSq float64
		for i := range update {
			d := float64(update[i] - dec[i])
			errSq += d * d
			refSq += float64(update[i]) * float64(update[i])
		}
		relErr := 0.0
		if refSq > 0 {
			relErr = math.Sqrt(errSq / refSq)
		}
		denseBytes := 4 * len(update)
		rows = append(rows, []string{name,
			fmt.Sprintf("%d", enc.WireBytes()),
			f2(float64(enc.WireBytes()) / float64(len(update))),
			f2(float64(enc.WireBytes()) / float64(denseBytes)),
			encTime.Round(time.Microsecond).String(),
			decTime.Round(time.Microsecond).String(),
			f3(relErr)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// AblationCodecConvergence trains the same federation under each wire
// codec and reports final perplexity next to the measured per-round
// communication cost, the trade-off the codec API exists to expose: q8
// should track dense at ~1/4 the bytes, and topk at 10% density must not
// diverge thanks to error feedback.
func AblationCodecConvergence(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau, n := 16, 16, 2
	if scale == Quick {
		rounds = 6
	}
	cfg := proxyCfg()
	fprintf(w, "Ablation: convergence under wire codecs (N=%d, τ=%d, %d rounds)\n", n, tau, rounds)
	headers := []string{"Codec", "FinalPPL", "MB/round", "Ratio"}
	var rows [][]string
	for _, name := range []string{"dense", "flate", "q8", "topk:0.1"} {
		clients, err := federation(cfg, n, 61)
		if err != nil {
			return err
		}
		res, err := fed.Run(ctx, fed.RunConfig{
			ModelConfig:     cfg,
			Seed:            61,
			Rounds:          rounds,
			ClientsPerRound: n,
			Clients:         clients,
			Outer:           photonOuter(),
			Spec:            proxySpec(tau, proxyLR),
			Validation:      validation(cfg),
			EvalEvery:       rounds,
			Codec:           name,
		})
		if err != nil {
			return err
		}
		var bytesSum, ratioSum float64
		for _, r := range res.History.Rounds {
			bytesSum += float64(r.CommBytes)
			ratioSum += r.CompressionRatio
		}
		nr := float64(res.History.Len())
		rows = append(rows, []string{name, f2(res.History.FinalPPL()),
			f2(bytesSum / nr / 1e6), f2(ratioSum / nr)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// AblationSubFed compares flat clients against nested sub-federations
// (Algorithm 1 lines 19–25): the same 4 GPUs organized as 4 flat clients
// versus 2 clients of 2 sub-nodes each.
func AblationSubFed(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau := 20, 16
	if scale == Quick {
		rounds = 8
	}
	cfg := proxyCfg()
	fprintf(w, "Ablation: flat clients vs nested sub-federation (4 worker nodes, τ=%d)\n", tau)
	headers := []string{"Topology", "BestPPL", "Rounds→42"}
	var rows [][]string

	flat, err := federation(cfg, 4, 59)
	if err != nil {
		return err
	}
	flatH, err := runFed(ctx, cfg, flat, photonOuter(), proxySpec(tau, proxyLR), rounds, 4, 16, 0)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"4 flat clients", f1(flatH.BestPPL()), roundsOrDash(flatH, 42)})

	nodes, err := federation(cfg, 4, 59)
	if err != nil {
		return err
	}
	nested := []*fed.Client{
		{ID: "silo-a", SubNodes: nodes[:2]},
		{ID: "silo-b", SubNodes: nodes[2:]},
	}
	nestedH, err := runFed(ctx, cfg, nested, photonOuter(), proxySpec(tau, proxyLR), rounds, 2, 16, 0)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"2 silos x 2 sub-nodes", f1(nestedH.BestPPL()), roundsOrDash(nestedH, 42)})
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// AblationDDPBaseline exercises the real multi-worker DDP substrate against
// the single-worker large-batch equivalent, verifying the Algorithm 2
// baseline behaves like its mathematical definition.
func AblationDDPBaseline(ctx context.Context, w io.Writer, scale Scale) error {
	steps := 120
	if scale == Quick {
		steps = 40
	}
	cfg := proxyCfg()
	fprintf(w, "Ablation: DDP workers vs single-worker large batch (%d steps)\n", steps)
	headers := []string{"Setup", "FinalPPL"}
	var rows [][]string
	for _, c := range []struct {
		name    string
		workers int
		batch   int
	}{
		{"1 worker x batch 16", 1, 16},
		{"4 workers x batch 4", 4, 4},
	} {
		streams := make([]data.Stream, c.workers)
		for i := range streams {
			streams[i] = data.NewShard(data.C4Like(cfg.VocabSize), i, 61)
		}
		res, err := ddp.Run(ctx, ddp.Config{
			ModelConfig: cfg, Seed: 18, Steps: steps, Workers: c.workers,
			BatchSize: c.batch, SeqLen: cfg.SeqLen,
			Schedule: opt.PaperCosine(proxyLR, steps*40), ClipNorm: 1,
			Streams: streams, Validation: validation(cfg), EvalEvery: steps,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.name, f1(res.History.FinalPPL())})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}
