package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, w io.Writer, scale Scale) error
}

// Registry returns every experiment, keyed and ordered by ID.
func Registry() []Experiment {
	exps := []Experiment{
		{"table1", "Table 1: regional compute resources", Table1},
		{"table2", "Table 2: wall/compute/comm time breakdown", Table2},
		{"table3", "Table 3: Photon vs DiLoCo time-to-perplexity", Table3},
		{"table4", "Table 4: architecture details", Table4},
		{"table5", "Table 5: hyperparameters", Table5},
		{"table6", "Table 6: federated experiment configuration", Table6},
		{"table78", "Tables 7-8: downstream in-context evaluation", Table78},
		{"fig2", "Figure 2: federation bandwidth map", Figure2},
		{"fig3", "Figure 3: fed vs centralized convergence", Figure3},
		{"fig4", "Figure 4: fed vs centralized perplexity by size", Figure4},
		{"fig5", "Figure 5: compute-time trade-off", Figure5},
		{"fig6", "Figure 6: topology wall time (τ=512)", Figure6},
		{"fig7", "Figure 7: data heterogeneity robustness", Figure7},
		{"fig8", "Figure 8: DiLoCo server LR sweep", Figure8},
		{"fig9", "Figure 9: topology wall time (τ=64)", Figure9},
		{"fig10", "Figure 10: topology wall time (τ=128)", Figure10},
		{"ablation-async", "Ablation: async FedBuff vs sync FedAvg on a straggling fleet", AblationAsync},
		{"ablation-outeropt", "Ablation: outer optimizer", AblationOuterOpt},
		{"ablation-recipe", "Ablation: small-batch high-LR recipe", AblationRecipe},
		{"ablation-optstate", "Ablation: stateless vs stateful ClientOpt", AblationOptState},
		{"ablation-compression", "Ablation: Link wire codecs", AblationCompression},
		{"ablation-codec-convergence", "Ablation: convergence under lossy wire codecs", AblationCodecConvergence},
		{"ablation-subfed", "Ablation: sub-federation", AblationSubFed},
		{"ablation-ddp", "Ablation: DDP vs large-batch equivalence", AblationDDPBaseline},
		{"train-throughput", "Local-compute training throughput (tokens/s, allocs/step)", TrainThroughput},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
