package bench

import (
	"context"
	"fmt"
	"io"

	"photon/internal/hw"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/topo"
)

// Table1 reproduces the paper's Table 1: the regional compute resources per
// model size, extended with the batch size and training strategy Photon's
// heuristics select for each silo.
func Table1(ctx context.Context, w io.Writer, _ Scale) error {
	fprintf(w, "Table 1: computational resources of different regions\n")
	graph := topo.WorldGraph()
	cfgByName := map[string]nn.Config{"7B": nn.Config7B, "3B": nn.Config3B,
		"1.3B": nn.Config1B, "125M": nn.Config125M}
	headers := []string{"Size", "Agg", "Region", "Clients x GPUs", "WAN Gbps", "Batch/GPU", "Strategy"}
	var rows [][]string
	for _, d := range hw.Table1Deployments() {
		cfg := cfgByName[d.ModelName]
		for _, rs := range d.Silos {
			wan := graph.Bandwidth(d.AggRegion, rs.Region)
			silo := hw.SiloForRegion(rs, wan)
			strat, err := hw.SelectStrategy(cfg, silo)
			stratStr := "n/a"
			if err == nil {
				stratStr = strat.String()
			}
			batch := hw.CalcBatchSize(cfg, hw.H100, rs.GPUsPerClient)
			rows = append(rows, []string{
				d.ModelName, d.AggRegion, rs.Region,
				fmt.Sprintf("%d x %d H100", rs.Clients, rs.GPUsPerClient),
				f1(wan), fmt.Sprintf("%d", batch), stratStr,
			})
		}
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// table2Row holds the measured inputs for one Table 2 model size: the
// effective optimization step counts are backed out of the paper's reported
// compute hours and Appendix B.1 throughputs (steps = hours·3600·ν), and the
// rest of the table is recomputed from the Eq. 1–6 wall-time model so the
// ratios are model outputs, not copied numbers.
type table2Row struct {
	name               string
	cfg                nn.Config
	k                  int     // clients / data-parallel workers (Table 1)
	gpusPerClient      int     // GPUs per client (Table 1)
	stepsFed, stepsCen int     // effective optimization steps
	nuFed, nuCen       float64 // batches/s (Appendix B.1)
	batchFed, batchCen int     // per-step batch sizes (Table 5)
	paperWallCen       float64 // paper-reported hours, for comparison
	paperWallFed       float64
}

func table2Rows() []table2Row {
	return []table2Row{
		{name: "1.3B", cfg: nn.Config1B, k: 8, gpusPerClient: 2,
			stepsFed: 9526, stepsCen: 19632, nuFed: 0.147, nuCen: 0.839,
			batchFed: 512, batchCen: 512, paperWallCen: 26.7, paperWallFed: 18.02},
		{name: "3B", cfg: nn.Config3B, k: 4, gpusPerClient: 4,
			stepsFed: 13012, stepsCen: 22894, nuFed: 0.144, nuCen: 0.395,
			batchFed: 512, batchCen: 512, paperWallCen: 56.6, paperWallFed: 25.2},
		{name: "7B", cfg: nn.Config7B, k: 4, gpusPerClient: 8,
			stepsFed: 11001, stepsCen: 21902, nuFed: 0.032, nuCen: 0.12,
			batchFed: 1024, batchCen: 1024, paperWallCen: 147.9, paperWallFed: 95.6},
	}
}

// table2Times computes the Appendix B.1 wall and communication times (in
// seconds) for one Table 2 size: federated (RAR every τ steps) versus
// centralized DDP (RAR every step) over the fixed slowest link.
func table2Times(r table2Row, tau int, bandwidthGbps float64) (fedWall, fedComm, cenWall, cenComm float64) {
	s := hw.ModelSizeMB(r.cfg)
	b := topo.GbpsToMBps(bandwidthGbps)
	cen := topo.Model{ModelSizeMB: s, BandwidthMBps: b, Throughput: r.nuCen, LocalSteps: 1}
	cenComm = float64(r.stepsCen) * cen.CommTime(topo.RAR, r.k)
	cenWall = float64(r.stepsCen)/r.nuCen + cenComm

	fedM := topo.Model{ModelSizeMB: s, BandwidthMBps: b, Throughput: r.nuFed, LocalSteps: tau}
	rounds := (r.stepsFed + tau - 1) / tau
	fedComm = float64(rounds) * fedM.CommTime(topo.RAR, r.k)
	fedWall = float64(r.stepsFed)/r.nuFed + fedComm
	return fedWall, fedComm, cenWall, cenComm
}

// Table2 reproduces the paper's Table 2: wall/compute/communication time for
// billion-scale models under federated (τ=500, RAR every round) versus
// centralized DDP (RAR every step) over a fixed 10 Gbps slowest link, plus
// GPU utilization and MFU from the hardware model.
func Table2(ctx context.Context, w io.Writer, _ Scale) error {
	const (
		tau           = 500 // local steps per round (Table 6)
		bandwidthGbps = 10  // fixed slowest link (Table 2 caption)
	)
	fprintf(w, "Table 2: system metrics, federated vs centralized (RAR @ %d Gbps, τ=%d)\n", bandwidthGbps, tau)
	headers := []string{"Model", "Wall[h]", "(x)", "Compute[h]", "Comm[h]", "(x)", "Util[%]", "MFU", "PaperWall[h]"}
	var rows [][]string
	for _, r := range table2Rows() {
		fedWall, fedComm, cenWall, cenComm := table2Times(r, tau, bandwidthGbps)
		fedCompute := fedWall - fedComm
		cenCompute := cenWall - cenComm

		toH := func(sec float64) float64 { return sec / 3600 }
		utilCen := 100 * hw.Utilization(r.batchCen/(r.k*r.gpusPerClient))
		utilFed := 100 * hw.Utilization(r.batchFed/r.k/r.gpusPerClient)
		mfuCen := hw.MFU(r.cfg, hw.H100, r.k*r.gpusPerClient, r.nuCen, r.batchCen)
		mfuFed := hw.MFU(r.cfg, hw.H100, r.gpusPerClient, r.nuFed, r.batchFed/r.k)

		rows = append(rows,
			[]string{"Cen-" + r.name, f1(toH(cenWall)), "1x", f1(toH(cenCompute)),
				f1(toH(cenComm)), "1x", f1(utilCen), f3(mfuCen), f1(r.paperWallCen)},
			[]string{"Fed-" + r.name, f1(toH(fedWall)),
				fmt.Sprintf("%.2fx", fedWall/cenWall), f1(toH(fedCompute)),
				f3(toH(fedComm)), fmt.Sprintf("%.4fx", fedComm/cenComm),
				f1(utilFed), f3(mfuFed), f1(r.paperWallFed)},
		)
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	fprintf(w, "\nCommunication-step reduction: federated syncs every τ=%d steps → %dx fewer communications than DDP.\n", 500, 500)
	return nil
}

// Table4 reproduces the paper's Table 4: architecture details per model
// size, with exact parameter counts from the implemented architecture.
func Table4(ctx context.Context, w io.Writer, _ Scale) error {
	fprintf(w, "Table 4: architecture details\n")
	headers := []string{"Size", "#Blocks", "d", "#Heads", "Exp", "(β1,β2)", "|Vocab|", "l", "Params", "Wire[MB]"}
	var rows [][]string
	for _, cfg := range nn.PaperConfigs() {
		rows = append(rows, []string{
			cfg.Name, fmt.Sprintf("%d", cfg.Blocks), fmt.Sprintf("%d", cfg.Dim),
			fmt.Sprintf("%d", cfg.Heads), fmt.Sprintf("%d", cfg.ExpRatio),
			fmt.Sprintf("(%.1f,%.2f)", cfg.Beta1, cfg.Beta2),
			fmt.Sprintf("%d", cfg.VocabSize), fmt.Sprintf("%d", cfg.SeqLen),
			fmt.Sprintf("%d", cfg.ParamCount()), f1(hw.ModelSizeMB(cfg)),
		})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// hyper5 is one Table 5 row.
type hyper5 struct {
	size               string
	etaS               string
	muS                string
	alpha              float64
	etaMax             float64
	tFed, tCen         int
	batchFed, batchCen int
}

func table5Rows() []hyper5 {
	return []hyper5{
		{"125M", "{0,0.1,0.3,0.5,0.7,1.0}", "{0.9,0}", 0.1, 6.0e-4, 40960, 5120, 32, 256},
		{"1.3B", "1.0", "0.0", 0.1, 2e-4, 24800, 24800, 512, 512},
		{"3B", "1.0", "0.0", 0.1, 1.6e-4, 51500, 51500, 512, 512},
		{"7B", "1.0", "0.0", 0.1, 1.2e-4, 63900, 63900, 1024, 1024},
	}
}

// Table5 reproduces the paper's Table 5 hyperparameters and checks the
// Appendix C.1 schedule-extension relationship: for the 125M model the
// federated decay period T equals Tcent·(Bcent/Bl) = 5120·(256/32) = 40960.
func Table5(ctx context.Context, w io.Writer, _ Scale) error {
	fprintf(w, "Table 5: experiment hyperparameters\n")
	headers := []string{"Model", "ηs", "µs", "α", "ηmax", "T", "Tcent", "Batch", "BatchCent"}
	var rows [][]string
	for _, r := range table5Rows() {
		rows = append(rows, []string{r.size, r.etaS, r.muS,
			fmt.Sprintf("%g", r.alpha), fmt.Sprintf("%g", r.etaMax),
			fmt.Sprintf("%d", r.tFed), fmt.Sprintf("%d", r.tCen),
			fmt.Sprintf("%d", r.batchFed), fmt.Sprintf("%d", r.batchCen)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	r125 := table5Rows()[0]
	extended := r125.tCen * r125.batchCen / r125.batchFed
	fprintf(w, "\nSchedule extension check (Appendix C.1): T = Tcent·Bcent/Bl = %d·%d/%d = %d (paper: %d)\n",
		r125.tCen, r125.batchCen, r125.batchFed, extended, r125.tFed)
	return nil
}

// Table6 reproduces the paper's Table 6: federated experiment configuration
// (population P, clients per round K, dataset, local steps τ).
func Table6(ctx context.Context, w io.Writer, _ Scale) error {
	fprintf(w, "Table 6: federated experiment hyperparameters\n")
	headers := []string{"Model", "P", "K", "Dataset", "τ"}
	rows := [][]string{
		{"125M", "{1,2,4,8,16}", "{1,2,4,8,16}", "C4, The Pile", "{64,128,512}"},
		{"1.3B", "8", "8", "C4", "500"},
		{"3B", "4", "4", "C4", "500"},
		{"7B", "4", "4", "C4", "500"},
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}
