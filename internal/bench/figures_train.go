package bench

import (
	"context"
	"fmt"
	"io"

	"photon/internal/data"
	"photon/internal/ddp"
	"photon/internal/fed"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/topo"
)

// photonOuter is the paper's recipe: FedAvg with server learning rate 1.0.
func photonOuter() fed.OuterOpt { return fed.FedAvg{LR: 1.0} }

// runCentralized trains the matched centralized baseline: one worker with
// the federation's effective batch Bg = N·Bl for R·τ steps (identical token
// budget), using the linearly LR-scaled centralized recipe.
func runCentralized(ctx context.Context, cfg nn.Config, steps, globalBatch int, maxLR float64, seed int64) (*metrics.History, error) {
	res, err := ddp.Run(ctx, ddp.Config{
		ModelConfig: cfg,
		Seed:        seed,
		Steps:       steps,
		Workers:     1,
		BatchSize:   globalBatch,
		SeqLen:      cfg.SeqLen,
		Schedule:    opt.PaperCosine(maxLR, steps),
		ClipNorm:    1.0,
		Streams:     []data.Stream{data.NewShard(data.C4Like(cfg.VocabSize), 60, 31)},
		Validation:  validation(cfg),
		EvalEvery:   1,
	})
	if err != nil {
		return nil, err
	}
	return res.History, nil
}

// fedVsCent runs the federated recipe and the token-matched centralized
// baseline for one config, returning both histories.
func fedVsCent(ctx context.Context, cfg nn.Config, n, rounds, tau int, seed int64) (fedH, cenH *metrics.History, err error) {
	clients, err := federation(cfg, n, seed+100)
	if err != nil {
		return nil, nil, err
	}
	fedH, err = runFed(ctx, cfg, clients, photonOuter(), proxySpec(tau, proxyLR), rounds, n, seed, 0)
	if err != nil {
		return nil, nil, err
	}
	// Centralized recipe: same token budget; the safe centralized LR for
	// the N×-larger batch follows linear scaling from the small-batch rate
	// (Appendix C.1), capped at the stability limit observed for the proxy.
	cenLR := opt.LinearLRScale(proxyLR, proxyBatch, proxyBatch)
	cenH, err = runCentralized(ctx, cfg, rounds*tau, n*proxyBatch, cenLR, seed)
	if err != nil {
		return nil, nil, err
	}
	return fedH, cenH, nil
}

// Figure3 reproduces the paper's Figure 3: perplexity convergence of Photon
// versus centralized training for the 3B- and 7B-proxy models (global model
// validation and client train perplexity per federated round; centralized
// validation at the equivalent token budget per round).
func Figure3(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau, n := 21, 16, 4
	if scale == Quick {
		rounds, tau = 8, 8
	}
	for _, cfg := range []nn.Config{sized(nn.ConfigTinyM), sized(nn.ConfigTinyL)} {
		fedH, cenH, err := fedVsCent(ctx, cfg, n, rounds, tau, 3)
		if err != nil {
			return err
		}
		fprintf(w, "Figure 3 (%s): fed vs centralized convergence (N=%d, τ=%d)\n", cfg.Name, n, tau)
		headers := []string{"Round", "FedValPPL", "FedTrainPPL", "CenValPPL", "CenTrainPPL"}
		var rows [][]string
		for i, r := range fedH.Rounds {
			c := cenH.Rounds[min(i*tau+tau-1, len(cenH.Rounds)-1)]
			rows = append(rows, []string{fmt.Sprintf("%d", r.Round),
				f1(r.ValPPL), f1(nn.Perplexity(r.TrainLoss)),
				f1(c.ValPPL), f1(nn.Perplexity(c.TrainLoss))})
		}
		fprintf(w, "%s\n", metrics.Table(headers, rows))
	}
	return nil
}

// sized normalizes a proxy config to the experiment sequence length.
func sized(c nn.Config) nn.Config {
	c.SeqLen = 16
	return c
}

// Figure4 reproduces the paper's Figure 4 table: final federated versus
// centralized perplexity per model size with the relative gain.
func Figure4(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau, n := 24, 16, 4
	if scale == Quick {
		rounds, tau = 8, 8
	}
	fprintf(w, "Figure 4: federated vs centralized perplexity by model size\n")
	headers := []string{"Size", "Params", "Fed PPL", "Cent PPL", "Gain(%)"}
	var rows [][]string
	for _, cfg := range []nn.Config{sized(nn.ConfigTinyS), sized(nn.ConfigTinyM), sized(nn.ConfigTinyL)} {
		fedH, cenH, err := fedVsCent(ctx, cfg, n, rounds, tau, 5)
		if err != nil {
			return err
		}
		fp, cp := fedH.BestPPL(), cenH.BestPPL()
		rows = append(rows, []string{cfg.Name, fmt.Sprintf("%d", cfg.ParamCount()),
			f1(fp), f1(cp), f1(100 * (cp - fp) / cp)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// Figure5 reproduces the paper's Figure 5: the compute-time trade-off —
// wall time to two target perplexities as a function of the global batch
// size Bg = N·Bl for different local-step counts. R(N) is measured on proxy
// runs; wall time charges each round at the paper's 125M cost.
func Figure5(ctx context.Context, w io.Writer, scale Scale) error {
	taus := map[int]int{64: 8, 128: 16, 512: 24} // paper τ → proxy τ
	ns := []int{1, 2, 4, 8, 16}
	targets := []float64{42, 35}
	if scale == Quick {
		taus = map[int]int{64: 8}
		ns = []int{1, 4, 16}
	}
	const bandwidthGbps = 2.5
	fprintf(w, "Figure 5: wall time to target perplexity vs global batch size (Bl=%d)\n", proxyBatch)
	headers := []string{"τ(paper)", "N", "Bg", "Rounds→42", "Wall→42[s]", "Rounds→35", "Wall→35[s]"}
	var rows [][]string
	for _, tauPaper := range sortedIntKeys(taus) {
		tauProxy := taus[tauPaper]
		for _, n := range ns {
			clients, err := federation(proxyCfg(), n, 11)
			if err != nil {
				return err
			}
			maxRounds := 600 / tauProxy * 8
			if scale == Quick {
				maxRounds = 40
			}
			hist, err := runFed(ctx, proxyCfg(), clients, photonOuter(), proxySpec(tauProxy, proxyLR),
				maxRounds, n, 2, targets[len(targets)-1])
			if err != nil {
				return err
			}
			m := paper125MModel(tauPaper, bandwidthGbps)
			row := []string{fmt.Sprintf("%d", tauPaper), fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", n*proxyBatch)}
			for _, target := range targets {
				if r, ok := hist.RoundsToPPL(target); ok {
					row = append(row, fmt.Sprintf("%d", r), f1(float64(r)*m.RoundTime(topo.RAR, n)))
				} else {
					row = append(row, ">budget", "-")
				}
			}
			rows = append(rows, row)
		}
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

func sortedIntKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// Table3 reproduces the paper's Table 3: Photon versus DiLoCo(ηs=0.1)
// wall time to the two target perplexities across client counts.
func Table3(ctx context.Context, w io.Writer, scale Scale) error {
	ns := []int{2, 4, 8}
	tauPaper, tauProxy := 128, 16
	maxRounds := 300
	if scale == Quick {
		ns = []int{2, 4}
		maxRounds = 40
	}
	const bandwidthGbps = 2.5
	fprintf(w, "Table 3: Photon vs DiLoCo(ηs=0.1, µ=0.9) wall time to target perplexity\n")
	headers := []string{"N", "Method", "Wall→42[s]", "(x)", "Wall→35[s]", "(x)"}
	var rows [][]string
	m := paper125MModel(tauPaper, bandwidthGbps)
	for _, n := range ns {
		type method struct {
			name  string
			outer fed.OuterOpt
		}
		walls := map[string][2]float64{}
		for _, meth := range []method{
			{"DiLoCo(0.1)", fed.NewDiLoCo(0.1, 0.9)},
			{"Photon", photonOuter()},
		} {
			clients, err := federation(proxyCfg(), n, 13)
			if err != nil {
				return err
			}
			hist, err := runFed(ctx, proxyCfg(), clients, meth.outer, proxySpec(tauProxy, proxyLR),
				maxRounds, n, 4, 35)
			if err != nil {
				return err
			}
			var w2 [2]float64
			for ti, target := range []float64{42, 35} {
				if r, ok := hist.RoundsToPPL(target); ok {
					w2[ti] = float64(r) * m.RoundTime(topo.RAR, n)
				}
			}
			walls[meth.name] = w2
		}
		d, p := walls["DiLoCo(0.1)"], walls["Photon"]
		ratio := func(a, b float64) string {
			if a == 0 || b == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", b/a)
		}
		fmtWall := func(v float64) string {
			if v == 0 {
				return ">budget"
			}
			return f1(v)
		}
		rows = append(rows,
			[]string{fmt.Sprintf("%d", n), "DiLoCo(0.1)", fmtWall(d[0]), "1x", fmtWall(d[1]), "1x"},
			[]string{fmt.Sprintf("%d", n), "Photon", fmtWall(p[0]), ratio(d[0], p[0]), fmtWall(p[1]), ratio(d[1], p[1])})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// Figure8 reproduces the appendix Figure 8: DiLoCo's server learning-rate
// sweep (ηs ∈ {0.1, 0.3, 0.5, 0.7}, µ=0.9) against Photon at N=4.
func Figure8(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tauProxy, n := 40, 16, 4
	if scale == Quick {
		rounds = 12
	}
	fprintf(w, "Figure 8: perplexity convergence, Photon vs DiLoCo ηs sweep (N=%d)\n", n)
	type curve struct {
		name  string
		outer fed.OuterOpt
	}
	curves := []curve{
		{"DiLoCo(0.1)", fed.NewDiLoCo(0.1, 0.9)},
		{"DiLoCo(0.3)", fed.NewDiLoCo(0.3, 0.9)},
		{"DiLoCo(0.5)", fed.NewDiLoCo(0.5, 0.9)},
		{"DiLoCo(0.7)", fed.NewDiLoCo(0.7, 0.9)},
		{"Photon", photonOuter()},
	}
	series := map[string][]float64{}
	for _, c := range curves {
		clients, err := federation(proxyCfg(), n, 17)
		if err != nil {
			return err
		}
		hist, err := runFed(ctx, proxyCfg(), clients, c.outer, proxySpec(tauProxy, proxyLR),
			rounds, n, 6, 0)
		if err != nil {
			return err
		}
		_, ppls := hist.PPLSeries()
		series[c.name] = ppls
	}
	headers := []string{"Round"}
	for _, c := range curves {
		headers = append(headers, c.name)
	}
	var rows [][]string
	for r := 0; r < rounds; r++ {
		row := []string{fmt.Sprintf("%d", r+1)}
		for _, c := range curves {
			s := series[c.name]
			if r < len(s) {
				row = append(row, f1(s[r]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}

// Figure7 reproduces the paper's Figure 7: robustness to data heterogeneity
// on the Pile-like sources — full participation with 4/8/16 clients versus
// an IID reference, and partial participation sampling 25/50/100% of a
// 16-client federation.
func Figure7(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tauProxy := 30, 8
	fullNs := []int{4, 8, 16}
	partialKs := []int{4, 8, 16} // of 16 clients: 25%, 50%, 100%
	if scale == Quick {
		rounds = 10
		fullNs = []int{4}
		partialKs = []int{4, 16}
	}
	cfg := proxyCfg()
	pile := data.PileLike(cfg.VocabSize)
	pileMix := data.NewMixtureSource("pile", pile, nil)
	val := data.NewValidationSet(pileMix, 16, cfg.SeqLen, 24680)

	runOn := func(part *data.Partition, k int, seed int64) (*metrics.History, error) {
		clients := make([]*fed.Client, part.NumClients())
		for i := range clients {
			clients[i] = fed.NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
				opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
		}
		res, err := fed.Run(ctx, fed.RunConfig{
			ModelConfig: cfg, Seed: seed, Rounds: rounds, ClientsPerRound: k,
			Clients: clients, Outer: photonOuter(), Spec: proxySpec(tauProxy, proxyLR),
			Validation: val, EvalEvery: 1,
		})
		if err != nil {
			return nil, err
		}
		return res.History, nil
	}

	fprintf(w, "Figure 7 (full participation): non-IID vs IID by client count\n")
	var runs []labeledHist
	for _, n := range fullNs {
		nonIID, err := data.BySourcePartition(pile, n, 21)
		if err != nil {
			return err
		}
		h, err := runOn(nonIID, n, 8)
		if err != nil {
			return err
		}
		runs = append(runs, labeledHist{fmt.Sprintf("nonIID-%d", n), h})
		iid, err := data.IIDPartition(pileMix, n, 22)
		if err != nil {
			return err
		}
		h2, err := runOn(iid, n, 8)
		if err != nil {
			return err
		}
		runs = append(runs, labeledHist{fmt.Sprintf("IID-%d", n), h2})
	}
	printCurves(w, runs, rounds)

	fprintf(w, "\nFigure 7 (partial participation): 16 non-IID clients, K sampled per round\n")
	runs = runs[:0]
	for _, k := range partialKs {
		nonIID, err := data.BySourcePartition(pile, 16, 23)
		if err != nil {
			return err
		}
		h, err := runOn(nonIID, k, 9)
		if err != nil {
			return err
		}
		runs = append(runs, labeledHist{fmt.Sprintf("K=%d(%.0f%%)", k, 100*float64(k)/16), h})
	}
	printCurves(w, runs, rounds)
	return nil
}

// labeledHist pairs a curve label with its training history.
type labeledHist struct {
	label string
	hist  *metrics.History
}

func printCurves(w io.Writer, runs []labeledHist, rounds int) {
	headers := []string{"Round"}
	for _, r := range runs {
		headers = append(headers, r.label)
	}
	var rows [][]string
	for i := 0; i < rounds; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, r := range runs {
			_, ppls := r.hist.PPLSeries()
			if i < len(ppls) {
				row = append(row, f1(ppls[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
