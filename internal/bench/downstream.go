package bench

import (
	"context"
	"io"

	"photon/internal/data"
	"photon/internal/eval"
	"photon/internal/fed"
	"photon/internal/metrics"
	"photon/internal/nn"
)

// Table78 reproduces the paper's Tables 7 and 8: downstream in-context
// evaluation of the Photon model family. Three proxy sizes are pre-trained
// federatedly on the same corpus and scored on the 13-task synthetic suite;
// the headline statistic is the pairwise win count of the largest model.
func Table78(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau, n := 20, 16, 4
	instances := 0 // 0 keeps task defaults
	if scale == Quick {
		rounds, tau = 6, 8
		instances = 30
	}
	sizes := []nn.Config{evalSized(nn.ConfigTinyS), evalSized(nn.ConfigTinyM), evalSized(nn.ConfigTinyL)}
	src := data.C4Like(sizes[0].VocabSize)

	reports := make([]eval.Report, 0, len(sizes))
	for _, cfg := range sizes {
		clients, err := federation(cfg, n, 29)
		if err != nil {
			return err
		}
		res, err := runFedResult(ctx, cfg, clients, rounds, tau)
		if err != nil {
			return err
		}
		r := eval.Report{Model: cfg.Name, Acc: map[string]float64{}}
		for _, task := range eval.Suite() {
			if instances > 0 {
				task.Instances = instances
			}
			r.Acc[task.Name] = task.Evaluate(res, src, 31)
		}
		reports = append(reports, r)
	}

	fprintf(w, "Tables 7-8: downstream in-context evaluation (accuracy; chance varies by task)\n")
	headers := []string{"Task", "Chance"}
	for _, r := range reports {
		headers = append(headers, r.Model)
	}
	var rows [][]string
	for _, task := range eval.Suite() {
		row := []string{task.Name, f2(task.Chance())}
		for _, r := range reports {
			row = append(row, f3(r.Acc[task.Name]))
		}
		rows = append(rows, row)
	}
	fprintf(w, "%s", metrics.Table(headers, rows))

	big := reports[len(reports)-1]
	for _, small := range reports[:len(reports)-1] {
		wins, total := eval.Wins(big, small)
		fprintf(w, "\n%s vs %s: wins %.1f of %d comparisons\n", big.Model, small.Model, wins, total)
	}
	return nil
}

func evalSized(c nn.Config) nn.Config {
	c.SeqLen = 40 // long enough for the longest prompt+continuation
	return c
}

// runFedResult trains one proxy federation and returns the final model.
func runFedResult(ctx context.Context, cfg nn.Config, clients []*fed.Client, rounds, tau int) (*nn.Model, error) {
	res, err := fed.Run(ctx, fed.RunConfig{
		ModelConfig:     cfg,
		Seed:            37,
		Rounds:          rounds,
		ClientsPerRound: len(clients),
		Clients:         clients,
		Outer:           photonOuter(),
		Spec: fed.LocalSpec{
			Steps:     tau,
			BatchSize: proxyBatch,
			SeqLen:    cfg.SeqLen, // train at evaluation length
			Schedule:  proxySpec(tau, proxyLR).Schedule,
			ClipNorm:  1.0,
		},
		EvalEvery: rounds, // no intermediate evaluation needed
	})
	if err != nil {
		return nil, err
	}
	return res.FinalModel, nil
}
