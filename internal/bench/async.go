package bench

import (
	"context"
	"io"
	"time"

	"photon/internal/data"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/opt"
)

// delayStream wraps a data stream with a fixed per-batch sleep, modeling a
// member whose accelerator is slower than the rest of the fleet without
// changing how many tokens it consumes.
type delayStream struct {
	inner data.Stream
	delay time.Duration
}

func (d *delayStream) NextBatch(batchSize, seqLen int) nn.Batch {
	time.Sleep(d.delay)
	return d.inner.NextBatch(batchSize, seqLen)
}

// asyncModeResult is one mode's measurement from runAsyncAblationMode.
type asyncModeResult struct {
	hist *metrics.History
	wall time.Duration
}

// runAsyncAblationMode runs a real 2-client TCP-loopback federation — one
// client delayed per batch to model a hardware straggler — in either
// synchronous FedAvg or asynchronous FedBuff mode. The token budget is
// matched across modes: sync aggregates rounds x 2 updates of tau steps,
// async folds one update per version over 2 x rounds versions, so both
// consume the same number of trained updates (the async fleet sources most
// of them from the fast member, which is the FedBuff regime).
func runAsyncAblationMode(ctx context.Context, cfg nn.Config, async bool, rounds, tau int, delay time.Duration, seed int64) (asyncModeResult, error) {
	part, err := data.IIDPartition(data.C4Like(cfg.VocabSize), 2, seed)
	if err != nil {
		return asyncModeResult{}, err
	}
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		return asyncModeResult{}, err
	}
	defer l.Close()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := 0; i < 2; i++ {
		var stream data.Stream = part.ClientStreams[i]
		if i == 1 {
			stream = &delayStream{inner: stream, delay: delay}
		}
		client := fed.NewClient(part.SourceNames[i], cfg, stream,
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
		go func() {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(cctx, conn, client, proxySpec(tau, proxyLR))
		}()
	}
	scfg := fed.ServerConfig{
		ModelConfig:   cfg,
		Seed:          seed,
		Rounds:        rounds,
		ExpectClients: 2,
		MinClients:    2,
		RoundDeadline: 60 * time.Second,
		Outer:         photonOuter(),
		Validation:    validation(cfg),
		EvalEvery:     rounds,
	}
	if async {
		scfg.Async = &fed.AsyncConfig{K: 1, Alpha: 0.5}
		scfg.Rounds = 2 * rounds // K=1: match sync's rounds x 2 updates
		// The async floor only gates starvation detection; one live member
		// keeps the run going while the straggler catches up.
		scfg.MinClients = 1
	}
	start := time.Now()
	res, err := fed.Serve(ctx, l, scfg)
	if err != nil {
		return asyncModeResult{}, err
	}
	return asyncModeResult{hist: res.History, wall: time.Since(start)}, nil
}

// AblationAsync is the convergence A/B behind the asynchronous aggregation
// mode: FedBuff (K=1, alpha=0.5) versus barrier-synchronized FedAvg on the
// same straggling fleet at a matched token budget, reporting final
// perplexity next to wall time, commit rate, and the staleness the async
// buffer absorbed.
func AblationAsync(ctx context.Context, w io.Writer, scale Scale) error {
	rounds, tau := 16, 8
	delay := 20 * time.Millisecond
	if scale == Quick {
		rounds, tau = 6, 4
		delay = 10 * time.Millisecond
	}
	cfg := proxyCfg()
	fprintf(w, "Ablation: async FedBuff vs sync FedAvg (N=2, one delayed member, τ=%d, %d updates each)\n", tau, 2*rounds)
	headers := []string{"Mode", "FinalPPL", "Wall(s)", "Commits/s", "MeanStale"}
	var rows [][]string
	for _, async := range []bool{false, true} {
		res, err := runAsyncAblationMode(ctx, cfg, async, rounds, tau, delay, 67)
		if err != nil {
			return err
		}
		var staleSum float64
		for _, r := range res.hist.Rounds {
			staleSum += r.MeanStaleness
		}
		label := "sync FedAvg"
		if async {
			label = "async FedBuff(K=1,α=0.5)"
		}
		n := float64(res.hist.Len())
		rows = append(rows, []string{label, f2(res.hist.FinalPPL()),
			f2(res.wall.Seconds()), f2(n / res.wall.Seconds()), f2(staleSum / n)})
	}
	fprintf(w, "%s", metrics.Table(headers, rows))
	return nil
}
