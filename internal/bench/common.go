// Package bench regenerates every table and figure of the paper's
// evaluation section. Each experiment is a function writing the paper's
// rows/series to an io.Writer; `photon-bench -exp <id>` runs one and
// bench_test.go at the module root wraps each in a testing.B benchmark.
//
// Training experiments run laptop-scale proxy models (see DESIGN.md for the
// substitution table); the analytic experiments (Table 2, Figures 2/6/9/10)
// use the paper's own Appendix B.1 wall-time model with the paper's measured
// throughputs, so their numbers are directly comparable to the published
// ones. Wall-time units for proxy-backed figures keep the paper's scale by
// charging each proxy round at the 125M-model round cost (τ=512 steps at
// ν=2 batches/s), as documented per experiment.
package bench

import (
	"context"
	"fmt"
	"io"

	"photon/internal/data"
	"photon/internal/fed"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/topo"
)

// Scale selects experiment fidelity.
type Scale int

// Experiment scales.
const (
	// Quick trims sweeps for CI and testing.B benchmarks (seconds).
	Quick Scale = iota
	// Full runs the complete sweeps reported in EXPERIMENTS.md (minutes).
	Full
)

// proxyCfg is the trained stand-in for the paper's 125M workhorse model.
func proxyCfg() nn.Config {
	c := nn.ConfigTiny
	c.SeqLen = 16
	return c
}

// proxySpec mirrors the paper's recipe structure at proxy scale: small
// hardware batch, high learning rate, and a cosine decay stretched far past
// the run length (the Appendix C.1 "extended decay period" — at proxy scale
// a fixed long period with a short warmup, so the effective rate stays high
// for the whole run exactly as the paper's recipe intends).
func proxySpec(tau int, maxLR float64) fed.LocalSpec {
	cfg := proxyCfg()
	return fed.LocalSpec{
		Steps:     tau,
		BatchSize: proxyBatch,
		SeqLen:    cfg.SeqLen,
		Schedule:  opt.PaperCosine(maxLR, proxySchedulePeriod),
		ClipNorm:  1.0,
	}
}

// proxySchedulePeriod is the extended cosine period for proxy runs: long
// enough that short runs sit on the high plateau (warmup is 1%, i.e. 20
// steps), matching the small-batch high-LR recipe.
const proxySchedulePeriod = 2000

const (
	proxyBatch = 4    // Bl at proxy scale (paper: 32)
	proxyLR    = 3e-3 // high-LR recipe at proxy scale
)

// paperRoundSeconds charges one proxy round at the paper's 125M round cost:
// τ local steps at ν = 2 batches/s (Appendix B.1).
func paperRoundSeconds(tau int) float64 { return float64(tau) / 2.0 }

// paper125MModel returns the Appendix B.1 wall-time model for the 125M
// model over the paper's cross-silo bandwidth assumption.
func paper125MModel(tau int, bandwidthGbps float64) topo.Model {
	return topo.Model{
		ModelSizeMB:   250, // 125M params in BF16
		BandwidthMBps: topo.GbpsToMBps(bandwidthGbps),
		Throughput:    2,
		LocalSteps:    tau,
	}
}

// federation builds an N-client IID federation over the C4-like corpus.
func federation(cfg nn.Config, n int, seed int64) ([]*fed.Client, error) {
	part, err := data.IIDPartition(data.C4Like(cfg.VocabSize), n, seed)
	if err != nil {
		return nil, err
	}
	clients := make([]*fed.Client, n)
	for i := range clients {
		clients[i] = fed.NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
	}
	return clients, nil
}

// validation returns the shared C4-like held-out set for a config.
func validation(cfg nn.Config) *data.ValidationSet {
	return data.NewValidationSet(data.C4Like(cfg.VocabSize), 16, cfg.SeqLen, 987654)
}

// runFed executes one federated proxy run and returns its history.
func runFed(ctx context.Context, cfg nn.Config, clients []*fed.Client, outer fed.OuterOpt, spec fed.LocalSpec,
	rounds, k int, seed int64, stopAt float64) (*metrics.History, error) {
	res, err := fed.Run(ctx, fed.RunConfig{
		ModelConfig:     cfg,
		Seed:            seed,
		Rounds:          rounds,
		ClientsPerRound: k,
		Clients:         clients,
		Outer:           outer,
		Spec:            spec,
		Validation:      validation(cfg),
		EvalEvery:       1,
		StopAtPPL:       stopAt,
	})
	if err != nil {
		return nil, err
	}
	return res.History, nil
}

// fprintln writes a line, panicking on writer failure (experiment output
// writers are in-memory buffers or stdout; failure is programmer error).
func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err)
	}
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
