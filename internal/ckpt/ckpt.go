// Package ckpt implements Photon's durable state: the aggregator snapshots
// the global model at every round boundary (Algorithm 1 line 11, "async
// checkpointing"), each LLM client keeps a local checkpoint for fast
// recovery (line 26), the control plane journals round state transitions to
// a write-ahead log (wal.go) so a crashed aggregator can resume the round
// in flight, and committed checkpoints can be published to a
// content-addressed model registry (registry.go). Checkpoint writes are
// atomic (temp file + rename + parent-dir fsync) so a crash can never leave
// a truncated checkpoint in place, and the async writer keeps checkpointing
// off the training critical path with latest-wins semantics.
package ckpt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Checkpoint is one recoverable training state: the flat parameter vector
// plus round/step counters and scalar metadata.
type Checkpoint struct {
	Round  int
	Step   int
	Meta   map[string]float64
	Params []float32
}

const (
	magic   = 0x50434B50 // "PCKP"
	version = 1
)

// encodeCheckpoint renders the checkpoint in its on-disk format: magic,
// version, round/step, sorted meta, params, CRC-32 trailer over everything
// between the header and the trailer. Save and the registry share this
// encoding, so a registry blob's hash is the hash of the exact bytes Save
// would have written.
func encodeCheckpoint(c *Checkpoint) []byte {
	var buf bytes.Buffer
	buf.Grow(8 + 16 + 4 + 4 + 4*len(c.Params) + 4 + 24*len(c.Meta))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	buf.Write(hdr[:])

	var scratch [8]byte
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf.Write(scratch[:4])
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf.Write(scratch[:])
	}
	writeU64(uint64(c.Round))
	writeU64(uint64(c.Step))
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeU32(uint32(len(keys)))
	for _, k := range keys {
		writeU32(uint32(len(k)))
		buf.WriteString(k)
		writeU64(math.Float64bits(c.Meta[k]))
	}
	writeU32(uint32(len(c.Params)))
	for _, v := range c.Params {
		writeU32(math.Float32bits(v))
	}
	raw := buf.Bytes()
	sum := crc32.ChecksumIEEE(raw[8:])
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	buf.Write(scratch[:4])
	return buf.Bytes()
}

// decodeCheckpoint parses and verifies the on-disk format.
func decodeCheckpoint(raw []byte) (*Checkpoint, error) {
	if len(raw) < 8+16+4+4+4 {
		return nil, fmt.Errorf("ckpt: file too short (%d bytes)", len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != version {
		return nil, fmt.Errorf("ckpt: unsupported version %d", v)
	}
	body := raw[8 : len(raw)-4]
	wantCRC := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("ckpt: checksum mismatch")
	}

	off := 0
	need := func(n int) error {
		if off+n > len(body) {
			return fmt.Errorf("ckpt: truncated body")
		}
		return nil
	}
	c := &Checkpoint{}
	if err := need(16); err != nil {
		return nil, err
	}
	c.Round = int(binary.LittleEndian.Uint64(body[off:]))
	c.Step = int(binary.LittleEndian.Uint64(body[off+8:]))
	off += 16
	if err := need(4); err != nil {
		return nil, err
	}
	nMeta := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if nMeta > 0 {
		c.Meta = make(map[string]float64, nMeta)
	}
	for i := 0; i < nMeta; i++ {
		if err := need(4); err != nil {
			return nil, err
		}
		kLen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if err := need(kLen + 8); err != nil {
			return nil, err
		}
		k := string(body[off : off+kLen])
		off += kLen
		c.Meta[k] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	if err := need(4); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if err := need(4 * n); err != nil {
		return nil, err
	}
	if n > 0 {
		c.Params = make([]float32, n)
		for i := range c.Params {
			c.Params[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
	}
	return c, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Without it a checkpoint (or a rotated WAL segment) written and
// renamed moments before power loss can vanish: the data blocks hit disk,
// but the rename lived only in the directory's in-memory metadata.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// writeFileAtomic writes data to path atomically and durably: temp file in
// the same directory, write, fsync, rename over path, fsync the directory.
func writeFileAtomic(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err = w.Write(data); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("ckpt: flush: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("ckpt: sync dir: %w", err)
	}
	return nil
}

// Save writes the checkpoint atomically: the bytes land in a temp file in
// the same directory, are fsynced, are renamed over path, and the parent
// directory is fsynced so the rename itself survives power loss.
func Save(path string, c *Checkpoint) error {
	return writeFileAtomic(path, encodeCheckpoint(c))
}

// Load reads and verifies a checkpoint written by Save.
func Load(path string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read: %w", err)
	}
	return decodeCheckpoint(raw)
}

// AsyncWriter checkpoints in a background goroutine with latest-wins
// semantics: if training produces rounds faster than the disk can absorb,
// intermediate snapshots are skipped rather than queued.
type AsyncWriter struct {
	path string

	mu      sync.Mutex
	pending *Checkpoint
	lastErr error
	kick    chan struct{}
	done    chan struct{}
	closed  bool
}

// NewAsyncWriter starts the background writer for path.
func NewAsyncWriter(path string) *AsyncWriter {
	w := &AsyncWriter{
		path: path,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *AsyncWriter) loop() {
	defer close(w.done)
	for range w.kick {
		for {
			w.mu.Lock()
			c := w.pending
			w.pending = nil
			w.mu.Unlock()
			if c == nil {
				break
			}
			if err := Save(w.path, c); err != nil {
				w.mu.Lock()
				if w.lastErr == nil {
					w.lastErr = err // first error wins: it names the root cause
				}
				w.mu.Unlock()
			}
		}
	}
}

// Submit schedules a checkpoint; a previously queued, unwritten snapshot is
// replaced. The checkpoint must not be mutated after submission.
func (w *AsyncWriter) Submit(c *Checkpoint) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.pending = c
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Err reports the first background write error, without waiting for Close:
// a run that checkpoints for hours should learn its disk is full on the
// round it happened, not at shutdown.
func (w *AsyncWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// Close flushes the final pending checkpoint and returns the first write
// error, if any.
func (w *AsyncWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.kick)
	<-w.done
	// The loop may have exited between draining and close; flush directly.
	w.mu.Lock()
	c, err := w.pending, w.lastErr
	w.pending = nil
	w.mu.Unlock()
	if c != nil {
		if serr := Save(w.path, c); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
