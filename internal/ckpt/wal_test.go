package ckpt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Type: RecRoundOpen, Round: 1, Epoch: 3, IDs: []string{"c1", "c2"}},
		{Type: RecMemberUpdate, Round: 1, Member: "c1", Vec: []float32{0.5, -1.25, 3}},
		{Type: RecMemberUpdate, Round: 1, Member: "c2", Vec: []float32{1, 2, -0.5}},
		{Type: RecOuterStep, Round: 1, Vec: []float32{9, 8, 7}},
		{Type: RecStateSnapshot, Round: 1, Member: "outer", Vec: []float32{0.1, 0.2, 0.3}},
		{Type: RecRoundCommit, Round: 1, Epoch: 3},
	}
}

func writeWAL(t *testing.T, dir string, recs []Record) {
	t.Helper()
	w, rv, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(rv.Records) != 0 || rv.Base != nil {
		t.Fatalf("fresh WAL not empty: %+v", rv)
	}
	for i := range recs {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	writeWAL(t, dir, recs)

	w, rv, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if !reflect.DeepEqual(rv.Records, recs) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", rv.Records, recs)
	}
	if got := rv.LastCommitted(); got != 1 {
		t.Fatalf("LastCommitted = %d, want 1", got)
	}
	// Appending after recovery must extend, not clobber.
	if err := w.Append(&Record{Type: RecRoundOpen, Round: 2}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	w.Close()
	_, rv2, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("re-reopen: %v", err)
	}
	if len(rv2.Records) != len(recs)+1 {
		t.Fatalf("got %d records after append, want %d", len(rv2.Records), len(recs)+1)
	}
}

// TestWALTornTail truncates the log at every possible byte boundary and
// asserts replay always returns a valid prefix of the written records —
// never an error, never a partial record.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	writeWAL(t, dir, recs)
	logPath := filepath.Join(dir, walLogName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, so we know how many records each cut preserves.
	var bounds []int
	off := 0
	for i := range recs {
		off += len(encodeRecord(&recs[i]))
		bounds = append(bounds, off)
	}
	if off != len(full) {
		t.Fatalf("frame bounds sum to %d, file is %d bytes", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		got, validEnd := replayRecords(full[:cut])
		wantN := 0
		for _, b := range bounds {
			if b <= cut {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		if wantN > 0 && !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut %d: prefix mismatch", cut)
		}
		wantEnd := 0
		if wantN > 0 {
			wantEnd = bounds[wantN-1]
		}
		if validEnd != wantEnd {
			t.Fatalf("cut %d: validEnd %d, want %d", cut, validEnd, wantEnd)
		}
	}
}

// TestWALTornTailRepair verifies OpenWAL truncates a torn tail on disk and
// that subsequent appends produce a clean, fully replayable log.
func TestWALTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	writeWAL(t, dir, recs)
	logPath := filepath.Join(dir, walLogName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the final record.
	tear := len(full) - len(encodeRecord(&recs[len(recs)-1]))/2
	if err := os.WriteFile(logPath, full[:tear], 0o644); err != nil {
		t.Fatal(err)
	}

	w, rv, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("OpenWAL on torn log: %v", err)
	}
	if len(rv.Records) != len(recs)-1 {
		t.Fatalf("replayed %d records, want %d", len(rv.Records), len(recs)-1)
	}
	if err := w.Append(&Record{Type: RecRoundCommit, Round: 1}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	w.Close()

	_, rv2, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv2.Records) != len(recs) {
		t.Fatalf("after repair+append: %d records, want %d", len(rv2.Records), len(recs))
	}
	if rv2.Records[len(rv2.Records)-1].Type != RecRoundCommit {
		t.Fatalf("last record is %v, want round_commit", rv2.Records[len(rv2.Records)-1].Type)
	}
}

// TestWALBitFlips flips every byte of the log in turn; replay must stop at
// (or before) the corrupted record and must never return a record that
// differs from what was written.
func TestWALBitFlips(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	writeWAL(t, dir, recs)
	full, err := os.ReadFile(filepath.Join(dir, walLogName))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xA5
		got, _ := replayRecords(mut)
		if len(got) > len(recs) {
			t.Fatalf("flip @%d: replayed %d records from a %d-record log", i, len(got), len(recs))
		}
		for j, rec := range got {
			if !recordEqualOrStopped(rec, recs[j]) {
				t.Fatalf("flip @%d: record %d corrupted silently:\n got %+v\nwant %+v", i, j, rec, recs[j])
			}
		}
	}
}

// recordEqualOrStopped: a replayed record must equal the written one; the
// CRC makes a silently altered record impossible, so any inequality is a
// test failure.
func recordEqualOrStopped(got, want Record) bool {
	return reflect.DeepEqual(got, want)
}

// TestWALGolden pins the frame encoding: a byte-level change to the format
// must be a deliberate, versioned decision, not an accident.
func TestWALGolden(t *testing.T) {
	rec := Record{
		Type:   RecMemberUpdate,
		Round:  7,
		Epoch:  2,
		Member: "c1",
		IDs:    []string{"a", "bc"},
		Vec:    []float32{1, -2},
		Data:   []byte{0xDE, 0xAD},
	}
	frame := encodeRecord(&rec)
	want := []byte{
		0x30, 0x00, 0x00, 0x00, // payload length = 48
		0x02,                      // type member_update
		0x07, 0, 0, 0, 0, 0, 0, 0, // round 7
		0x02, 0, 0, 0, 0, 0, 0, 0, // epoch 2
		0x02, 0x00, 'c', '1', // member "c1"
		0x02, 0x00, // 2 ids
		0x01, 0x00, 'a',
		0x02, 0x00, 'b', 'c',
		0x02, 0x00, 0x00, 0x00, // 2 vec elems
		0x00, 0x00, 0x80, 0x3F, // 1.0
		0x00, 0x00, 0x00, 0xC0, // -2.0
		0x02, 0x00, 0x00, 0x00, // 2 data bytes
		0xDE, 0xAD,
	}
	if !bytes.Equal(frame[:len(frame)-4], want) {
		t.Fatalf("frame drifted:\n got % X\nwant % X", frame[:len(frame)-4], want)
	}
	got, ok := decodeRecord(frame[4 : len(frame)-4])
	if !ok || !reflect.DeepEqual(got, rec) {
		t.Fatalf("golden decode mismatch: ok=%v got %+v", ok, got)
	}
}

// FuzzWALReplay throws arbitrary bytes at the replayer: it must never
// panic, and every record it does return must survive a re-encode/decode
// round trip (i.e. be internally consistent, not garbage).
func FuzzWALReplay(f *testing.F) {
	recs := testRecords()
	var log bytes.Buffer
	for i := range recs {
		log.Write(encodeRecord(&recs[i]))
	}
	f.Add(log.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, validEnd := replayRecords(raw)
		if validEnd < 0 || validEnd > len(raw) {
			t.Fatalf("validEnd %d out of [0,%d]", validEnd, len(raw))
		}
		for i := range got {
			re := encodeRecord(&got[i])
			back, ok := decodeRecord(re[4 : len(re)-4])
			if !ok || !reflect.DeepEqual(back, got[i]) {
				t.Fatalf("record %d not round-trippable: %+v", i, got[i])
			}
			for _, v := range got[i].Vec {
				_ = v // NaN is representable; nothing to assert beyond decode consistency
			}
		}
	})
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	w, _, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	base := &Checkpoint{Round: 1, Step: 4, Params: []float32{9, 8, 7}}
	carry := []Record{{Type: RecStateSnapshot, Round: 1, Member: "outer", Vec: []float32{0.1, 0.2, 0.3}}}
	if err := w.Compact(base, carry); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-compaction appends land in the fresh segment.
	if err := w.Append(&Record{Type: RecRoundOpen, Round: 2, IDs: []string{"c1"}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rv, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Base == nil || rv.Base.Round != 1 || len(rv.Base.Params) != 3 {
		t.Fatalf("base not recovered: %+v", rv.Base)
	}
	if len(rv.Records) != 2 {
		t.Fatalf("rotated log has %d records, want 2 (carry + post-compact append)", len(rv.Records))
	}
	if rv.Records[0].Type != RecStateSnapshot || rv.Records[1].Round != 2 {
		t.Fatalf("rotated log contents wrong: %+v", rv.Records)
	}
	if got := rv.LastCommitted(); got != 1 {
		t.Fatalf("LastCommitted = %d, want 1 (from base)", got)
	}
}

func TestWALFailpoint(t *testing.T) {
	dir := t.TempDir()
	var fp Failpoint
	fp.Arm("wal:round_commit")
	w, _, err := OpenWAL(dir, &fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Type: RecRoundOpen, Round: 1}); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	err = w.Append(&Record{Type: RecRoundCommit, Round: 1})
	if err == nil || !isFailpoint(err) {
		t.Fatalf("armed site did not fire: %v", err)
	}
	if !fp.Fired() {
		t.Fatal("Fired() false after firing")
	}
	w.Close()
	// Crash semantics: the record is on disk even though Append errored.
	_, rv, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Records) != 2 || rv.LastCommitted() != 1 {
		t.Fatalf("post-failpoint recovery wrong: %+v", rv.Records)
	}
	// One crash per arming: re-opened WAL with the same (now disarmed)
	// failpoint appends cleanly.
	w2, _, err := OpenWAL(dir, &fp)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append(&Record{Type: RecRoundCommit, Round: 2}); err != nil {
		t.Fatalf("disarmed failpoint fired: %v", err)
	}
}

func isFailpoint(err error) bool {
	for err != nil {
		if err == ErrFailpoint {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestWALVecSpecials(t *testing.T) {
	dir := t.TempDir()
	vec := []float32{float32(math.Inf(1)), float32(math.Inf(-1)), 0, math.MaxFloat32}
	writeWAL(t, dir, []Record{{Type: RecStateSnapshot, Member: "outer", Vec: vec}})
	_, rv, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Records) != 1 || !reflect.DeepEqual(rv.Records[0].Vec, vec) {
		t.Fatalf("special values mangled: %+v", rv.Records)
	}
}
