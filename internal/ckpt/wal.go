package ckpt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// RecordType identifies what state transition a WAL record journals.
type RecordType uint8

// The round-loop state transitions the aggregator journals. Replay applies
// them in order on top of the compacted base checkpoint.
const (
	// RecRoundOpen opens a round: the round number, the membership epoch,
	// and the sampled cohort's member IDs.
	RecRoundOpen RecordType = iota + 1
	// RecMemberUpdate records one cohort member's decoded update vector as
	// it was accepted into the round.
	RecMemberUpdate
	// RecOuterStep records the outer-optimizer step: Vec carries the
	// post-step global parameters, so replay restores them bit-for-bit
	// without re-running the (order-sensitive) float aggregation.
	RecOuterStep
	// RecRoundCommit seals a round. It is the WAL's fsync point: everything
	// up to and including the commit is durable once Append returns.
	RecRoundCommit
	// RecStateSnapshot records a named auxiliary state vector — "outer" for
	// the server optimizer's momentum, "codec" for a lossy uplink codec's
	// error-feedback residual. Member carries the name.
	RecStateSnapshot
	// RecBufferFold records one update folded into an async aggregator's
	// staleness-weighted buffer: Round carries the dispatch task ID, Epoch
	// the model version the member trained on, Member the member ID, and
	// Vec the decoded update. Replay re-folds the pending (uncommitted)
	// buffer so an async aggregator resumes mid-buffer.
	RecBufferFold
	// RecVersionCommit seals one async model-version commit (the async
	// counterpart of RecRoundCommit, and an fsync point like it): Round
	// carries the new global model version, Epoch the membership epoch.
	RecVersionCommit
)

// String names the record type for failpoint sites and logs.
func (t RecordType) String() string {
	switch t {
	case RecRoundOpen:
		return "round_open"
	case RecMemberUpdate:
		return "member_update"
	case RecOuterStep:
		return "outer_step"
	case RecRoundCommit:
		return "round_commit"
	case RecStateSnapshot:
		return "state_snapshot"
	case RecBufferFold:
		return "buffer_fold"
	case RecVersionCommit:
		return "version_commit"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// Record is one journaled state transition. Which fields are meaningful
// depends on Type; unused fields encode as empty.
type Record struct {
	Type   RecordType
	Round  int
	Epoch  uint64   // membership epoch at round open/commit
	Member string   // member ID (RecMemberUpdate) or state name (RecStateSnapshot)
	IDs    []string // cohort member IDs (RecRoundOpen)
	Vec    []float32
	Data   []byte // opaque payload (e.g. an encoded wire payload to re-send)
}

// Recovery is what OpenWAL reconstructed from disk: the compacted base
// checkpoint (nil when the log has never been compacted) plus every valid
// record appended after it, in append order. A torn tail — a partial
// record from a crash mid-write, a bit-flipped CRC — ends the record list
// early; it is not an error.
type Recovery struct {
	Base    *Checkpoint
	Records []Record
}

// LastCommitted returns the highest committed round visible in the
// recovery: the base checkpoint's round, advanced by any round-commit
// records appended after it.
func (rv *Recovery) LastCommitted() int {
	last := 0
	if rv.Base != nil {
		last = rv.Base.Round
	}
	for _, rec := range rv.Records {
		if rec.Type == RecRoundCommit && rec.Round > last {
			last = rec.Round
		}
	}
	return last
}

// WAL file names inside the directory.
const (
	walBaseName = "base.ckpt"
	walLogName  = "wal.log"
)

// maxRecordBytes bounds one record's encoded payload during replay, so a
// corrupted length prefix can never drive a multi-gigabyte allocation.
const maxRecordBytes = 1 << 30

// WAL is an append-only, CRC-framed record log paired with a compacted
// base checkpoint. One process owns a WAL directory at a time; Photon keys
// the directory off the aggregator's -id, so a restarted aggregator finds
// its own log. Append flushes every record to the OS and fsyncs on
// round-commit records — the durability points of the round protocol.
// Records between commits may be lost to a power cut, which is safe: resume
// re-collects them from the (idempotent) members.
type WAL struct {
	dir  string
	f    *os.File
	w    *bufio.Writer
	fail *Failpoint
}

// OpenWAL opens (creating if needed) the WAL directory, replays the base
// checkpoint and the log's valid prefix, truncates any torn tail, and
// returns the log opened for append. fail, when non-nil, arms crash-point
// injection on every subsequent Append.
func OpenWAL(dir string, fail *Failpoint) (*WAL, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ckpt: wal dir: %w", err)
	}
	rv := &Recovery{}
	base, err := Load(filepath.Join(dir, walBaseName))
	switch {
	case err == nil:
		rv.Base = base
	case os.IsNotExist(unwrapPathErr(err)):
		// Never compacted: cold start or young log.
	default:
		// The base is written atomically, so corruption here is a real
		// storage fault, not a crash artifact — surface it.
		return nil, nil, err
	}

	logPath := filepath.Join(dir, walLogName)
	raw, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("ckpt: wal read: %w", err)
	}
	recs, validEnd := replayRecords(raw)
	rv.Records = recs

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: wal open: %w", err)
	}
	// Torn-tail repair: drop the partial record so the next append starts
	// at a clean frame boundary.
	if int64(validEnd) < int64(len(raw)) {
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ckpt: wal truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(validEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ckpt: wal seek: %w", err)
	}
	return &WAL{dir: dir, f: f, w: bufio.NewWriterSize(f, 1<<16), fail: fail}, rv, nil
}

// unwrapPathErr digs the os-level error out of Load's wrapping so IsNotExist
// works on it.
func unwrapPathErr(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
}

// replayRecords decodes the valid prefix of a log image, returning the
// records and the byte offset where validity ends. Corruption anywhere —
// short frame, absurd length, CRC mismatch, malformed payload — stops the
// replay at the last valid record; it is never an error, because a torn
// tail is the expected shape of a crash.
func replayRecords(raw []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for {
		if off+8 > len(raw) {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		if n <= 0 || n > maxRecordBytes || off+8+n > len(raw) {
			return recs, off
		}
		payload := raw[off+4 : off+4+n]
		want := binary.LittleEndian.Uint32(raw[off+4+n:])
		if crc32.ChecksumIEEE(payload) != want {
			return recs, off
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + n
	}
}

// encodeRecord renders one record's frame: u32 payload length, payload,
// u32 CRC-32 of the payload.
func encodeRecord(rec *Record) []byte {
	var p bytes.Buffer
	p.Grow(64 + 4*len(rec.Vec) + len(rec.Data))
	var scratch [8]byte
	u16 := func(v int) {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(v))
		p.Write(scratch[:2])
	}
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		p.Write(scratch[:4])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		p.Write(scratch[:])
	}
	p.WriteByte(byte(rec.Type))
	u64(uint64(rec.Round))
	u64(rec.Epoch)
	u16(len(rec.Member))
	p.WriteString(rec.Member)
	u16(len(rec.IDs))
	for _, id := range rec.IDs {
		u16(len(id))
		p.WriteString(id)
	}
	u32(uint32(len(rec.Vec)))
	for _, v := range rec.Vec {
		u32(math.Float32bits(v))
	}
	u32(uint32(len(rec.Data)))
	p.Write(rec.Data)

	payload := p.Bytes()
	out := make([]byte, 0, len(payload)+8)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(payload)))
	out = append(out, scratch[:4]...)
	out = append(out, payload...)
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload))
	out = append(out, scratch[:4]...)
	return out
}

// decodeRecord parses one frame payload; ok=false marks it malformed.
func decodeRecord(p []byte) (Record, bool) {
	var rec Record
	off := 0
	need := func(n int) bool { return off+n <= len(p) }
	if !need(1 + 8 + 8 + 2) {
		return rec, false
	}
	rec.Type = RecordType(p[off])
	off++
	rec.Round = int(binary.LittleEndian.Uint64(p[off:]))
	off += 8
	rec.Epoch = binary.LittleEndian.Uint64(p[off:])
	off += 8
	mLen := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if !need(mLen) {
		return rec, false
	}
	rec.Member = string(p[off : off+mLen])
	off += mLen
	if !need(2) {
		return rec, false
	}
	nIDs := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if nIDs > 0 {
		rec.IDs = make([]string, 0, nIDs)
	}
	for i := 0; i < nIDs; i++ {
		if !need(2) {
			return rec, false
		}
		l := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if !need(l) {
			return rec, false
		}
		rec.IDs = append(rec.IDs, string(p[off:off+l]))
		off += l
	}
	if !need(4) {
		return rec, false
	}
	nVec := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	if nVec < 0 || !need(4*nVec) {
		return rec, false
	}
	if nVec > 0 {
		rec.Vec = make([]float32, nVec)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[off:]))
			off += 4
		}
	}
	if !need(4) {
		return rec, false
	}
	nData := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	if nData < 0 || !need(nData) {
		return rec, false
	}
	if nData > 0 {
		rec.Data = append([]byte(nil), p[off:off+nData]...)
		off += nData
	}
	if off != len(p) {
		return rec, false
	}
	return rec, true
}

// Append journals one record: frame it, write it through the buffered
// writer, flush to the OS, and fsync when the record is a round commit (the
// round protocol's durability point). With a failpoint armed at
// "wal:<type>", the record still lands — modeling a crash immediately
// after the write — and Append returns ErrFailpoint for the caller to die
// on.
func (w *WAL) Append(rec *Record) error {
	if _, err := w.w.Write(encodeRecord(rec)); err != nil {
		return fmt.Errorf("ckpt: wal append: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("ckpt: wal flush: %w", err)
	}
	if rec.Type == RecRoundCommit || rec.Type == RecVersionCommit {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("ckpt: wal sync: %w", err)
		}
	}
	if site := "wal:" + rec.Type.String(); w.fail.Fire(site) {
		return failErr(site)
	}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (w *WAL) Sync() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("ckpt: wal flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: wal sync: %w", err)
	}
	return nil
}

// Compact folds the journaled history into the atomic base checkpoint and
// rotates the log: base lands durably first, then a fresh segment seeded
// with the carry-over records (auxiliary state snapshots that are not part
// of the checkpoint) atomically replaces the old log. A crash anywhere in
// between leaves either the old (base, log) pair or the new one — never a
// base without its matching log.
func (w *WAL) Compact(base *Checkpoint, carry []Record) error {
	if err := Save(filepath.Join(w.dir, walBaseName), base); err != nil {
		return fmt.Errorf("ckpt: wal compact: %w", err)
	}
	var seg bytes.Buffer
	for i := range carry {
		seg.Write(encodeRecord(&carry[i]))
	}
	if err := writeFileAtomic(filepath.Join(w.dir, walLogName), seg.Bytes()); err != nil {
		return fmt.Errorf("ckpt: wal rotate: %w", err)
	}
	// Swap the append handle onto the fresh segment.
	f, err := os.OpenFile(filepath.Join(w.dir, walLogName), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: wal reopen: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: wal seek: %w", err)
	}
	old := w.f
	w.f, w.w = f, bufio.NewWriterSize(f, 1<<16)
	old.Close()
	if site := "wal:compact"; w.fail.Fire(site) {
		return failErr(site)
	}
	return nil
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	ferr := w.w.Flush()
	serr := w.f.Sync()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}
