package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Registry is a content-addressed model store: checkpoint blobs keyed by
// the SHA-256 of their encoded bytes, a JSON lineage manifest per blob, and
// mutable tags ("latest", "best", release names) pointing at hashes. The
// blob encoding is exactly Save's on-disk format, so a blob can be copied
// out and loaded as an ordinary checkpoint, and the same (Round, Params,
// Meta) always hashes to the same address — publishing an identical model
// twice stores it once.
//
// Layout under the registry directory:
//
//	blobs/<sha256-hex>            checkpoint bytes
//	manifests/<sha256-hex>.json   lineage manifest
//	tags/<name>                   file containing a hash
//
// All writes are atomic (temp + rename + dir fsync), so a crashed publish
// leaves no partial blob and a tag always points at a complete manifest.
type Registry struct {
	dir string
}

// Manifest is a published checkpoint's lineage: where the model came from,
// pinned at publish time. Lineage keys are free-form ("job", "seed",
// "data", "parent", ...); fed stamps the job configuration, the seed, and
// the data-shard assignment.
type Manifest struct {
	Hash    string            `json:"hash"`
	Round   int               `json:"round"`
	Step    int               `json:"step"`
	Lineage map[string]string `json:"lineage,omitempty"`
}

// OpenRegistry opens (creating if needed) a registry directory.
func OpenRegistry(dir string) (*Registry, error) {
	for _, sub := range []string{"blobs", "manifests", "tags"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("ckpt: registry dir: %w", err)
		}
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// Put publishes a checkpoint: the encoded blob lands under its content
// hash with a manifest carrying the lineage. Returns the hash (the
// checkpoint's permanent address). Re-publishing identical content is a
// cheap no-op that refreshes the manifest.
func (r *Registry) Put(c *Checkpoint, lineage map[string]string) (string, error) {
	blob := encodeCheckpoint(c)
	sum := sha256.Sum256(blob)
	hash := hex.EncodeToString(sum[:])
	blobPath := filepath.Join(r.dir, "blobs", hash)
	if _, err := os.Stat(blobPath); err != nil {
		if err := writeFileAtomic(blobPath, blob); err != nil {
			return "", err
		}
	}
	m := Manifest{Hash: hash, Round: c.Round, Step: c.Step, Lineage: lineage}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("ckpt: registry manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(r.dir, "manifests", hash+".json"), raw); err != nil {
		return "", err
	}
	return hash, nil
}

// Tag points name at hash. Tags are the registry's only mutable state;
// the write is atomic, so a reader never sees a half-updated tag.
func (r *Registry) Tag(name, hash string) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("ckpt: invalid tag name %q", name)
	}
	if _, err := os.Stat(filepath.Join(r.dir, "blobs", hash)); err != nil {
		return fmt.Errorf("ckpt: tag %q: no blob %s: %w", name, hash, err)
	}
	return writeFileAtomic(filepath.Join(r.dir, "tags", name), []byte(hash+"\n"))
}

// Resolve turns a reference into a blob hash. Accepted forms:
//
//	tag:<name>      a tag (e.g. "tag:latest")
//	<hex>           a full hash or an unambiguous hash prefix (≥ 6 chars)
func (r *Registry) Resolve(ref string) (string, error) {
	if name, ok := strings.CutPrefix(ref, "tag:"); ok {
		raw, err := os.ReadFile(filepath.Join(r.dir, "tags", name))
		if err != nil {
			return "", fmt.Errorf("ckpt: tag %q: %w", name, err)
		}
		return strings.TrimSpace(string(raw)), nil
	}
	if len(ref) == sha256.Size*2 {
		return ref, nil
	}
	if len(ref) < 6 {
		return "", fmt.Errorf("ckpt: hash prefix %q too short (need ≥ 6 chars)", ref)
	}
	entries, err := os.ReadDir(filepath.Join(r.dir, "blobs"))
	if err != nil {
		return "", fmt.Errorf("ckpt: registry: %w", err)
	}
	var matches []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ref) {
			matches = append(matches, e.Name())
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("ckpt: no blob matches %q", ref)
	default:
		return "", fmt.Errorf("ckpt: hash prefix %q is ambiguous (%d matches)", ref, len(matches))
	}
}

// Get resolves ref, loads the blob, verifies its content hash, and returns
// the checkpoint with its manifest (nil manifest if none was written). A
// blob whose bytes no longer hash to its address is corrupt and rejected.
func (r *Registry) Get(ref string) (*Checkpoint, *Manifest, error) {
	hash, err := r.Resolve(ref)
	if err != nil {
		return nil, nil, err
	}
	raw, err := os.ReadFile(filepath.Join(r.dir, "blobs", hash))
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: registry blob: %w", err)
	}
	sum := sha256.Sum256(raw)
	if hex.EncodeToString(sum[:]) != hash {
		return nil, nil, fmt.Errorf("ckpt: registry blob %s fails content verification", hash)
	}
	c, err := decodeCheckpoint(raw)
	if err != nil {
		return nil, nil, err
	}
	var m *Manifest
	if mraw, err := os.ReadFile(filepath.Join(r.dir, "manifests", hash+".json")); err == nil {
		m = &Manifest{}
		if jerr := json.Unmarshal(mraw, m); jerr != nil {
			m = nil
		}
	}
	return c, m, nil
}

// Tags lists the registry's tags with their targets, sorted by name.
func (r *Registry) Tags() (map[string]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.dir, "tags"))
	if err != nil {
		return nil, fmt.Errorf("ckpt: registry: %w", err)
	}
	out := make(map[string]string, len(entries))
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(r.dir, "tags", name))
		if err != nil {
			continue // tag racing a writer; skip
		}
		out[name] = strings.TrimSpace(string(raw))
	}
	return out, nil
}

// IsRegistryRef reports whether a -ckpt style argument names a registry
// entry ("tag:<name>") rather than a filesystem path.
func IsRegistryRef(ref string) bool { return strings.HasPrefix(ref, "tag:") }
