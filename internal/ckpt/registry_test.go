package ckpt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testCkpt(round int) *Checkpoint {
	return &Checkpoint{
		Round:  round,
		Step:   round * 4,
		Meta:   map[string]float64{"loss": 1.5},
		Params: []float32{1, 2, 3, float32(round)},
	}
}

func TestRegistryPutGetTag(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := testCkpt(3)
	lineage := map[string]string{"job": "agg seed=1 model=tiny", "data": "shards 0-3"}
	hash, err := reg.Put(c, lineage)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if len(hash) != 64 {
		t.Fatalf("hash %q is not sha256 hex", hash)
	}
	if err := reg.Tag("latest", hash); err != nil {
		t.Fatalf("Tag: %v", err)
	}

	for _, ref := range []string{hash, hash[:12], "tag:latest"} {
		got, m, err := reg.Get(ref)
		if err != nil {
			t.Fatalf("Get(%q): %v", ref, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("Get(%q) mismatch: %+v", ref, got)
		}
		if m == nil || m.Round != 3 || m.Lineage["job"] == "" {
			t.Fatalf("Get(%q) manifest: %+v", ref, m)
		}
	}

	// Content addressing: identical content re-publishes to the same hash.
	hash2, err := reg.Put(testCkpt(3), lineage)
	if err != nil || hash2 != hash {
		t.Fatalf("re-publish: hash %q err %v, want %q", hash2, err, hash)
	}
	// Different content gets a different address, and retagging moves the tag.
	hash3, err := reg.Put(testCkpt(4), nil)
	if err != nil || hash3 == hash {
		t.Fatalf("distinct content collided: %v %v", hash3, err)
	}
	if err := reg.Tag("latest", hash3); err != nil {
		t.Fatal(err)
	}
	got, _, err := reg.Get("tag:latest")
	if err != nil || got.Round != 4 {
		t.Fatalf("tag did not move: %+v %v", got, err)
	}
	tags, err := reg.Tags()
	if err != nil || tags["latest"] != hash3 {
		t.Fatalf("Tags(): %v %v", tags, err)
	}
}

func TestRegistryRejectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := reg.Put(testCkpt(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	blobPath := filepath.Join(dir, "blobs", hash)
	raw, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Get(hash); err == nil || !strings.Contains(err.Error(), "content verification") {
		t.Fatalf("corrupt blob accepted: %v", err)
	}
}

func TestRegistryResolveErrors(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := reg.Put(testCkpt(1), nil)
	if _, err := reg.Resolve("tag:missing"); err == nil {
		t.Fatal("missing tag resolved")
	}
	if _, err := reg.Resolve("ab"); err == nil {
		t.Fatal("too-short prefix resolved")
	}
	if _, err := reg.Resolve("abcdef0123"); err == nil {
		t.Fatal("unknown prefix resolved")
	}
	if err := reg.Tag("bad/name", h1); err == nil {
		t.Fatal("slash in tag name accepted")
	}
	if err := reg.Tag("dangling", strings.Repeat("0", 64)); err == nil {
		t.Fatal("tag at missing blob accepted")
	}
	if !IsRegistryRef("tag:latest") || IsRegistryRef("/tmp/x.ckpt") {
		t.Fatal("IsRegistryRef misclassifies")
	}
}
