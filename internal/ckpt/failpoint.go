package ckpt

import (
	"errors"
	"fmt"
	"sync"
)

// ErrFailpoint is returned by an operation whose armed failpoint fired. It
// models a process crash at an exact point in the durability protocol: the
// bytes written before the failpoint are on disk (or in the OS cache,
// matching a real kill), everything after never happens. Recovery code
// treats it like any other fatal error; tests arm one site per run and
// assert the restarted process reconstructs a consistent state.
var ErrFailpoint = errors.New("ckpt: armed failpoint fired")

// Failpoint is an armable crash hook. Sites are free-form strings; the WAL
// checks "wal:<record-type>" after appending each record, and
// testutil.FlakyConn checks "conn:send"/"conn:recv" around transport I/O.
// A nil *Failpoint is inert, so production paths pass it through unchecked.
type Failpoint struct {
	mu    sync.Mutex
	site  string
	fired bool
}

// Arm sets the site the failpoint fires at. Arming replaces any previous
// site and clears the fired latch, so one Failpoint can drive a sweep.
func (f *Failpoint) Arm(site string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.site, f.fired = site, false
	f.mu.Unlock()
}

// Fire reports whether the failpoint is armed at site. The first match
// disarms it (one crash per arming) and sets the fired latch.
func (f *Failpoint) Fire(site string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.site == "" || f.site != site {
		return false
	}
	f.site, f.fired = "", true
	return true
}

// Fired reports whether the failpoint has fired since it was last armed —
// how a sweep distinguishes "crashed where I asked" from "the run never
// reached that site".
func (f *Failpoint) Fired() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// failErr wraps ErrFailpoint with the site for log lines and test output.
func failErr(site string) error {
	return fmt.Errorf("%w at %s", ErrFailpoint, site)
}
