package ckpt

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Round:  12,
		Step:   6144,
		Meta:   map[string]float64{"ppl": 34.5, "lr": 6e-4},
		Params: []float32{1, -2.5, 3.25, 0},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	want := sampleCheckpoint()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\n  want %+v\n  got  %+v", want, got)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := Save(path, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	c2 := sampleCheckpoint()
	c2.Round = 99
	if err := Save(path, c2); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 99 {
		t.Fatalf("overwrite lost: round %d", got.Round)
	}
	// No stray temp files.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("leftover temp files: %d entries", len(entries))
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := Save(path, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	cases := map[string][]byte{
		"bitflip":   append([]byte{}, raw...),
		"truncated": raw[:len(raw)-5],
		"badmagic":  append([]byte{}, raw...),
		"short":     {1, 2, 3},
	}
	cases["bitflip"][len(raw)/2] ^= 0x01
	cases["badmagic"][0] ^= 0xFF
	for name, data := range cases {
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEmptyCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ckpt")
	if err := Save(path, &Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 0 || got.Params != nil || got.Meta != nil {
		t.Fatalf("empty checkpoint mangled: %+v", got)
	}
}

func TestAsyncWriterFlushesOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "async.ckpt")
	w := NewAsyncWriter(path)
	for r := 1; r <= 20; r++ {
		c := sampleCheckpoint()
		c.Round = r
		w.Submit(c)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Latest-wins: the final state must be round 20 (intermediates may be
	// skipped, but the last submission must survive Close).
	if got.Round != 20 {
		t.Fatalf("final round: got %d want 20", got.Round)
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Submissions after Close are ignored without panicking.
	w.Submit(sampleCheckpoint())
}

func TestAsyncWriterReportsErrors(t *testing.T) {
	w := NewAsyncWriter(filepath.Join(t.TempDir(), "no-such-dir", "x.ckpt"))
	w.Submit(sampleCheckpoint())
	if err := w.Close(); err == nil {
		t.Fatal("write into missing directory should error")
	}
}

// Property: save/load is lossless for arbitrary parameter vectors.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &Checkpoint{
			Round:  rng.Intn(1000),
			Step:   rng.Intn(100000),
			Params: make([]float32, rng.Intn(300)),
		}
		for i := range c.Params {
			c.Params[i] = float32(rng.NormFloat64())
		}
		path := filepath.Join(dir, "p.ckpt")
		if err := Save(path, c); err != nil {
			return false
		}
		got, err := Load(path)
		if err != nil {
			return false
		}
		if got.Round != c.Round || got.Step != c.Step || len(got.Params) != len(c.Params) {
			return false
		}
		for i := range c.Params {
			if got.Params[i] != c.Params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
