package obsv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Health is the /healthz payload: which tier this process is, how far it
// has gotten, and how stale its last round is.
type Health struct {
	Component string  `json:"component"`
	Tier      int     `json:"tier"`
	Round     int     `json:"round"`
	Cohort    int     `json:"cohort"`
	LastAgeS  float64 `json:"last_round_age_s"` // -1 until the first round lands
}

// HealthTracker is a concurrency-safe Health source a binary updates from
// its round-event loop and hands to Server.SetHealth.
type HealthTracker struct {
	mu     sync.Mutex
	h      Health
	lastAt time.Time
}

// NewHealthTracker names the component and tier for /healthz.
func NewHealthTracker(component string, tier int) *HealthTracker {
	return &HealthTracker{h: Health{Component: component, Tier: tier, LastAgeS: -1}}
}

// Observe records a completed round and its cohort size.
func (t *HealthTracker) Observe(round, cohort int) {
	t.mu.Lock()
	t.h.Round = round
	t.h.Cohort = cohort
	t.lastAt = time.Now()
	t.mu.Unlock()
}

// Get snapshots the health, computing the last-round age.
func (t *HealthTracker) Get() Health {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.h
	if !t.lastAt.IsZero() {
		h.LastAgeS = time.Since(t.lastAt).Seconds()
	}
	return h
}

// Server is the scrape listener: /metrics (Prometheus text), /healthz
// (JSON), and /debug/pprof/*.
type Server struct {
	reg    *Registry
	ln     net.Listener
	srv    *http.Server
	mu     sync.Mutex
	health func() Health
}

// Serve starts the scrape listener on addr (e.g. ":9090" or
// "127.0.0.1:0"). reg nil means the Default registry. The listener runs
// until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.health
		s.mu.Unlock()
		h := Health{LastAgeS: -1}
		if fn != nil {
			h = fn()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// SetHealth installs the /healthz source (e.g. HealthTracker.Get).
func (s *Server) SetHealth(fn func() Health) {
	s.mu.Lock()
	s.health = fn
	s.mu.Unlock()
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
