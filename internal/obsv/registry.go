package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing instrument.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//photon:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
//
//photon:hotpath
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
//
//photon:hotpath
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instrument.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//photon:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
//
//photon:hotpath
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: bucket counts are atomic adds and the sum is a CAS loop on
// float bits.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefBuckets is a latency-shaped default (seconds): 1ms .. ~100s.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 25, 50, 100}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
}

// Observe records one sample.
//
//photon:hotpath
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
//
//photon:hotpath
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
//
//photon:hotpath
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

type instrument struct {
	name, help, kind string
	counter          *Counter
	gauge            *Gauge
	gaugeFn          func() float64
	hist             *Histogram
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Registration is idempotent per (name, kind): asking
// for an existing instrument returns it, while re-registering a name under
// a different kind panics (a programming error, like an import cycle).
type Registry struct {
	mu    sync.Mutex
	insts map[string]*instrument
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{insts: make(map[string]*instrument)} }

// Default is the process-wide registry every binary exposes on
// -metrics-addr. Package-level Counter/Gauge/Histogram helpers register
// here.
var Default = NewRegistry()

// get fetches or creates the named instrument slot. Callers hold r.mu, so
// the kind check, the slot creation, and the caller's lazy instrument init
// are one atomic registration.
func (r *Registry) get(name, help, kind string) *instrument {
	if in, ok := r.insts[name]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obsv: %q registered as %s, requested as %s", name, in.kind, kind))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: kind}
	r.insts[name] = in
	return in
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.get(name, help, "counter")
	if in.counter == nil {
		in.counter = &Counter{}
	}
	return in.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.get(name, help, "gauge")
	if in.gauge == nil {
		in.gauge = &Gauge{}
	}
	return in.gauge
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.get(name, help, "gauge")
	in.gaugeFn = fn
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.get(name, help, "histogram")
	if in.hist == nil {
		in.hist = newHistogram(bounds)
	}
	return in.hist
}

// WritePrometheus renders every instrument in text exposition format,
// sorted by name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.insts))
	for n := range r.insts {
		names = append(names, n)
	}
	insts := make([]*instrument, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		insts = append(insts, r.insts[n])
	}
	r.mu.Unlock()

	for _, in := range insts {
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind); err != nil {
			return err
		}
		switch {
		case in.counter != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", in.name, in.counter.Value()); err != nil {
				return err
			}
		case in.gaugeFn != nil:
			if _, err := fmt.Fprintf(w, "%s %s\n", in.name, fmtFloat(in.gaugeFn())); err != nil {
				return err
			}
		case in.gauge != nil:
			if _, err := fmt.Fprintf(w, "%s %s\n", in.name, fmtFloat(in.gauge.Value())); err != nil {
				return err
			}
		case in.hist != nil:
			var cum int64
			for i, ub := range in.hist.bounds {
				cum += in.hist.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", in.name, fmtFloat(ub), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", in.name, in.hist.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", in.name, fmtFloat(in.hist.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", in.name, in.hist.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
