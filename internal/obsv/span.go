// Package obsv is Photon's observability layer: zero-allocation phase-span
// primitives for attributing round time across tiers, a process-wide
// counter/gauge/histogram registry exported in Prometheus text format, and
// the HTTP listener (/metrics, /healthz, /debug/pprof) every binary mounts
// behind its -metrics-addr flag.
//
// The package depends only on the standard library and sits below every
// other internal package: internal/metrics embeds its Breakdown on round
// records, internal/fed drives its Tracer along the round critical path,
// and internal/serve feeds its engine instruments into the default
// registry.
package obsv

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one segment of the federated round critical path.
type Phase uint8

// Round phases, in critical-path order: the aggregator encodes and
// broadcasts the global model, the member decodes it, trains, encodes its
// update, the wire moves both payloads, and the aggregator decodes,
// aggregates, and (on eval rounds) evaluates.
const (
	PhaseBroadcast Phase = iota // model send to the member
	PhaseTrain                  // member local compute (a relay's cohort exchange)
	PhaseEncode                 // codec encode, both sides
	PhaseWire                   // wire transfer residual (latency minus accounted work)
	PhaseDecode                 // codec decode, both sides
	PhaseAggregate              // MeanDelta + outer-optimizer step
	PhaseEval                   // validation perplexity
	NumPhases                   // number of phases (array sizing)
)

var phaseNames = [NumPhases]string{
	"broadcast", "train", "encode", "wire", "decode", "aggregate", "eval",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// PhaseNanos accumulates per-phase wall time in nanoseconds. It is a plain
// value type — accumulating into it never allocates, which is what lets the
// round loop carry one per round without disturbing the zero-alloc training
// step.
type PhaseNanos [NumPhases]int64

// Add charges ns nanoseconds to phase p.
//
//photon:hotpath
func (n *PhaseNanos) Add(p Phase, ns int64) {
	if p < NumPhases && ns > 0 {
		n[p] += ns
	}
}

// SumNs returns the total across all phases.
//
//photon:hotpath
func (n PhaseNanos) SumNs() int64 {
	var s int64
	for _, v := range n {
		s += v
	}
	return s
}

// Slowest returns the phase holding the most accumulated time.
//
//photon:hotpath
func (n PhaseNanos) Slowest() Phase {
	best := Phase(0)
	for p := Phase(1); p < NumPhases; p++ {
		if n[p] > n[best] {
			best = p
		}
	}
	return best
}

// Breakdown converts the accumulator to the millisecond export form.
func (n PhaseNanos) Breakdown() Breakdown {
	const ms = 1e6
	return Breakdown{
		BroadcastMs: float64(n[PhaseBroadcast]) / ms,
		TrainMs:     float64(n[PhaseTrain]) / ms,
		EncodeMs:    float64(n[PhaseEncode]) / ms,
		WireMs:      float64(n[PhaseWire]) / ms,
		DecodeMs:    float64(n[PhaseDecode]) / ms,
		AggregateMs: float64(n[PhaseAggregate]) / ms,
		EvalMs:      float64(n[PhaseEval]) / ms,
	}
}

// Breakdown is one round's per-phase wall time in milliseconds — the form
// that rides round records, RoundEvents, and the observe stream. The
// breakdown follows the round's critical path (the slowest member's
// timings, not per-member sums), so its sum approximates the round's
// measured wall time.
type Breakdown struct {
	BroadcastMs float64
	TrainMs     float64
	EncodeMs    float64
	WireMs      float64
	DecodeMs    float64
	AggregateMs float64
	EvalMs      float64
}

// SumMs returns the total across all phases.
func (b Breakdown) SumMs() float64 {
	return b.BroadcastMs + b.TrainMs + b.EncodeMs + b.WireMs + b.DecodeMs + b.AggregateMs + b.EvalMs
}

// Span is one completed phase span in a Tracer's ring.
type Span struct {
	Phase   Phase
	TraceID uint64
	Start   time.Time
	Dur     time.Duration
}

// Tracer ring-buffers completed phase spans. Recording is gated on a
// subscriber count: with no subscriber attached, Begin/End reduce to two
// monotonic clock reads and never touch the ring (and never allocate), so
// instrumentation compiled into the round path is free until someone — an
// observe stream, a test — actually subscribes.
//
// A nil *Tracer is valid: Begin/End still measure, nothing records.
type Tracer struct {
	subs atomic.Int32

	mu   sync.Mutex
	ring []Span
	pos  int
	n    int // spans recorded, saturating at len(ring)
}

// NewTracer builds a tracer whose ring holds capacity spans (default 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Subscribe enables span recording until the matching Unsubscribe.
//
//photon:hotpath
func (t *Tracer) Subscribe() {
	if t != nil {
		t.subs.Add(1)
	}
}

// Unsubscribe drops one subscription.
//
//photon:hotpath
func (t *Tracer) Unsubscribe() {
	if t != nil {
		t.subs.Add(-1)
	}
}

// Active reports whether any subscriber is attached.
//
//photon:hotpath
func (t *Tracer) Active() bool { return t != nil && t.subs.Load() > 0 }

// SpanMark is an in-flight span: a value type carrying the tracer, phase,
// and monotonic start time. End completes it.
type SpanMark struct {
	t     *Tracer
	start time.Time
	phase Phase
}

// Begin starts a span. It always captures the monotonic clock (so End can
// return the measurement for phase accounting) but records into the ring
// only when a subscriber is attached at End time.
//
//photon:hotpath
func (t *Tracer) Begin(p Phase) SpanMark {
	return SpanMark{t: t, start: time.Now(), phase: p}
}

// End completes the span, returning its duration in nanoseconds. traceID
// stamps the ring entry so relay-tier spans attribute to the root round
// that caused them.
//
//photon:hotpath
func (m SpanMark) End(traceID uint64) int64 {
	d := time.Since(m.start)
	if m.t.Active() {
		m.t.record(Span{Phase: m.phase, TraceID: traceID, Start: m.start, Dur: d})
	}
	return d.Nanoseconds()
}

//photon:hotpath
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.ring[t.pos] = s
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Snapshot copies the recorded spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.pos - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}
