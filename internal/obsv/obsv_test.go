package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"photon/internal/testutil"
)

func TestPhaseNanos(t *testing.T) {
	var pn PhaseNanos
	pn.Add(PhaseTrain, 3e6)
	pn.Add(PhaseEncode, 1e6)
	pn.Add(PhaseTrain, 2e6)
	pn.Add(PhaseWire, -5) // negative charges ignored
	if got := pn.SumNs(); got != 6e6 {
		t.Fatalf("SumNs = %d, want 6e6", got)
	}
	if pn.Slowest() != PhaseTrain {
		t.Fatalf("Slowest = %v, want train", pn.Slowest())
	}
	b := pn.Breakdown()
	if b.TrainMs != 5 || b.EncodeMs != 1 {
		t.Fatalf("Breakdown = %+v", b)
	}
	if got := b.SumMs(); got != 6 {
		t.Fatalf("SumMs = %v, want 6", got)
	}
	if PhaseEval.String() != "eval" || Phase(200).String() != "phase(?)" {
		t.Fatal("Phase.String broken")
	}
}

func TestTracerRecordsOnlyWhenSubscribed(t *testing.T) {
	tr := NewTracer(4)
	tr.Begin(PhaseTrain).End(1)
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("recorded %d spans with no subscriber", n)
	}
	tr.Subscribe()
	for i := 0; i < 6; i++ { // overflow the ring of 4
		tr.Begin(PhaseEncode).End(uint64(i + 1))
	}
	tr.Unsubscribe()
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring cap 4", len(spans))
	}
	// Oldest-first: overflow dropped trace IDs 1 and 2.
	if spans[0].TraceID != 3 || spans[3].TraceID != 6 {
		t.Fatalf("ring order wrong: %v .. %v", spans[0].TraceID, spans[3].TraceID)
	}
	tr.Begin(PhaseWire).End(7)
	if len(tr.Snapshot()) != 4 {
		t.Fatal("recorded after Unsubscribe")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if ns := tr.Begin(PhaseTrain).End(0); ns < 0 {
		t.Fatalf("negative duration %d", ns)
	}
	if tr.Active() || tr.Snapshot() != nil {
		t.Fatal("nil tracer should be inert")
	}
	tr.Subscribe()
	tr.Unsubscribe()
}

// TestSpanZeroAlloc proves the gating promise in the acceptance criteria:
// Begin/End allocate nothing whether or not a subscriber is attached, so
// instrumentation on the round critical path is free.
func TestSpanZeroAlloc(t *testing.T) {
	tr := NewTracer(64)
	sink := int64(0)
	if n := testing.AllocsPerRun(100, func() {
		sink += tr.Begin(PhaseTrain).End(42)
	}); n != 0 {
		t.Fatalf("ungated Begin/End allocates %v/op", n)
	}
	tr.Subscribe()
	defer tr.Unsubscribe()
	if n := testing.AllocsPerRun(100, func() {
		sink += tr.Begin(PhaseDecode).End(42)
	}); n != 0 {
		t.Fatalf("subscribed Begin/End allocates %v/op", n)
	}
	_ = sink
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("photon_rounds_total", "rounds completed")
	c.Add(3)
	c.Inc()
	c.Add(-9) // ignored
	if c.Value() != 4 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("photon_round", "current round")
	g.Set(7)
	r.GaugeFunc("photon_up", "always one", func() float64 { return 1 })
	h := r.Histogram("photon_req_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50) // beyond last bound: only +Inf
	if h.Count() != 3 || h.Sum() != 50.55 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE photon_rounds_total counter",
		"photon_rounds_total 4",
		"photon_round 7",
		"photon_up 1",
		`photon_req_seconds_bucket{le="0.1"} 1`,
		`photon_req_seconds_bucket{le="1"} 2`,
		`photon_req_seconds_bucket{le="+Inf"} 3`,
		"photon_req_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Idempotent re-registration returns the same instrument.
	if r.Counter("photon_rounds_total", "") != c {
		t.Fatal("re-registration returned a new counter")
	}
	// Kind mismatch is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("photon_rounds_total", "")
}

func TestServeEndpoints(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := NewRegistry()
	reg.Counter("photon_rounds_total", "rounds").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ht := NewHealthTracker("agg", 0)
	ht.Observe(5, 8)
	srv.SetHealth(ht.Get)

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "photon_rounds_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	var h Health
	if err := json.Unmarshal([]byte(get("/healthz")), &h); err != nil {
		t.Fatal(err)
	}
	if h.Component != "agg" || h.Round != 5 || h.Cohort != 8 || h.LastAgeS < 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof cmdline empty")
	}
}

func TestHealthTrackerAge(t *testing.T) {
	ht := NewHealthTracker("client", 2)
	if h := ht.Get(); h.LastAgeS != -1 {
		t.Fatalf("pre-round age = %v, want -1", h.LastAgeS)
	}
	ht.Observe(1, 4)
	time.Sleep(5 * time.Millisecond)
	if h := ht.Get(); h.LastAgeS <= 0 {
		t.Fatalf("age = %v, want > 0", h.LastAgeS)
	}
}
