package link

import (
	"fmt"
	"math"
	"math/rand"
)

// PostProcessor transforms a client's update vector before transmission —
// the extensible pipeline of Algorithm 1 line 27 (PostProcess).
type PostProcessor interface {
	// Apply transforms the update in place (it may also return a replacement
	// slice) and returns an error if the update is unusable.
	Apply(update []float32) ([]float32, error)
	// Name identifies the stage for logging.
	Name() string
}

// Pipeline chains post-processors in order.
type Pipeline []PostProcessor

// Apply runs all stages.
func (p Pipeline) Apply(update []float32) ([]float32, error) {
	var err error
	for _, stage := range p {
		update, err = stage.Apply(update)
		if err != nil {
			return nil, fmt.Errorf("link: post-process stage %s: %w", stage.Name(), err)
		}
	}
	return update, nil
}

// ClipL2 rescales the update to a maximum L2 norm (gradient clipping at the
// update level).
type ClipL2 struct{ MaxNorm float64 }

// Name implements PostProcessor.
func (ClipL2) Name() string { return "clip-l2" }

// Apply implements PostProcessor.
func (c ClipL2) Apply(update []float32) ([]float32, error) {
	if c.MaxNorm <= 0 {
		return update, nil
	}
	var s float64
	for _, v := range update {
		s += float64(v) * float64(v)
	}
	norm := math.Sqrt(s)
	if norm <= c.MaxNorm || norm == 0 {
		return update, nil
	}
	scale := float32(c.MaxNorm / norm)
	for i := range update {
		update[i] *= scale
	}
	return update, nil
}

// DPNoise adds Gaussian noise of the given standard deviation to every
// coordinate (local differential-privacy mechanism; calibrating σ to an
// (ε,δ) budget is the caller's responsibility).
type DPNoise struct {
	Sigma float64
	Rng   *rand.Rand
}

// Name implements PostProcessor.
func (DPNoise) Name() string { return "dp-noise" }

// Apply implements PostProcessor.
func (d DPNoise) Apply(update []float32) ([]float32, error) {
	if d.Sigma < 0 {
		return nil, fmt.Errorf("negative sigma %v", d.Sigma)
	}
	if d.Sigma == 0 {
		return update, nil
	}
	rng := d.Rng
	if rng == nil {
		return nil, fmt.Errorf("DPNoise requires an explicit Rng")
	}
	for i := range update {
		update[i] += float32(rng.NormFloat64() * d.Sigma)
	}
	return update, nil
}

// NaNGuard rejects updates containing NaN or Inf values, protecting the
// aggregator from divergent clients.
type NaNGuard struct{}

// Name implements PostProcessor.
func (NaNGuard) Name() string { return "nan-guard" }

// Apply implements PostProcessor.
func (NaNGuard) Apply(update []float32) ([]float32, error) {
	for i, v := range update {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("non-finite value at index %d", i)
		}
	}
	return update, nil
}

// SecureAggregator implements pairwise additive-mask secure aggregation
// (Bonawitz et al.): each client pair (i, j) shares a seed; client i adds
// PRG(seed) when i < j and subtracts it when i > j, so individual updates
// are hidden but the sum over all clients is exact. Seeds are derived from a
// session secret here; a production deployment would agree on them with a
// key exchange, which does not change the masking arithmetic.
type SecureAggregator struct {
	SessionSeed int64
	NumClients  int
}

// Mask applies client clientIdx's masks in place.
func (s SecureAggregator) Mask(clientIdx int, update []float32) error {
	if clientIdx < 0 || clientIdx >= s.NumClients {
		return fmt.Errorf("link: client index %d out of range [0,%d)", clientIdx, s.NumClients)
	}
	for j := 0; j < s.NumClients; j++ {
		if j == clientIdx {
			continue
		}
		sign := float32(1)
		lo, hi := clientIdx, j
		if lo > hi {
			lo, hi = hi, lo
			sign = -1
		}
		rng := rand.New(rand.NewSource(s.pairSeed(lo, hi)))
		for k := range update {
			update[k] += sign * float32(rng.NormFloat64())
		}
	}
	return nil
}

func (s SecureAggregator) pairSeed(lo, hi int) int64 {
	return s.SessionSeed ^ (int64(lo)*1_000_003 + int64(hi)*7919 + 13)
}

// SumMasked aggregates masked updates; with all clients present the masks
// cancel exactly (up to float32 rounding) and the result equals the sum of
// the unmasked updates.
func SumMasked(updates [][]float32) ([]float32, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("link: no updates to aggregate")
	}
	n := len(updates[0])
	out := make([]float32, n)
	for i, u := range updates {
		if len(u) != n {
			return nil, fmt.Errorf("link: update %d has %d elems, want %d", i, len(u), n)
		}
		for k, v := range u {
			out[k] += v
		}
	}
	return out, nil
}
