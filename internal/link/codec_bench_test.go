package link

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// benchPayload is a realistic update vector: zero-mean gaussian, the shape
// flate barely compresses and the lossy codecs are designed for.
func benchPayload(n int) []float32 {
	rng := rand.New(rand.NewSource(17))
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64()) * 0.01
	}
	return v
}

var benchCodecs = []string{"dense", "flate", "q8", "topk:0.1"}

// BenchmarkCodecEncode measures per-codec encode throughput and reports the
// achieved wire cost (bytes/elem, ratio vs dense) as benchmark metrics.
func BenchmarkCodecEncode(b *testing.B) {
	const n = 100_000
	for _, name := range benchCodecs {
		b.Run(name, func(b *testing.B) {
			v := benchPayload(n)
			codec, err := NewCodec(name)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n) * 4)
			b.ResetTimer()
			var wireBytes int
			for i := 0; i < b.N; i++ {
				enc, err := EncodeVector(codec, v)
				if err != nil {
					b.Fatal(err)
				}
				wireBytes = enc.WireBytes()
			}
			b.ReportMetric(float64(wireBytes)/float64(n), "wireB/elem")
			b.ReportMetric(float64(wireBytes)/float64(4*n), "ratio")
		})
	}
}

// BenchmarkCodecDecode measures per-codec decode throughput.
func BenchmarkCodecDecode(b *testing.B) {
	const n = 100_000
	for _, name := range benchCodecs {
		b.Run(name, func(b *testing.B) {
			v := benchPayload(n)
			codec, err := NewCodec(name)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := EncodeVector(codec, v)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodePayload(codec, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWriteCodecBenchJSON emits the codec throughput/ratio trajectory as
// machine-readable JSON when BENCH_CODEC_JSON names an output path — the CI
// hook behind BENCH_codec.json. It runs the same measurements as the Codec
// benchmarks through testing.Benchmark, so `go test -bench=Codec` and the
// JSON artifact can never drift apart.
func TestWriteCodecBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_CODEC_JSON")
	if path == "" {
		t.Skip("BENCH_CODEC_JSON not set")
	}
	const n = 100_000
	type entry struct {
		Codec        string  `json:"codec"`
		WireBytes    int     `json:"wire_bytes"`
		BytesPerElem float64 `json:"bytes_per_elem"`
		Ratio        float64 `json:"ratio_vs_dense"`
		EncodeMBps   float64 `json:"encode_mb_per_s"`
		DecodeMBps   float64 `json:"decode_mb_per_s"`
	}
	report := struct {
		Elems   int     `json:"payload_elems"`
		Codecs  []entry `json:"codecs"`
		Comment string  `json:"comment"`
	}{
		Elems:   n,
		Comment: "gaussian update payload; throughput in dense-equivalent MB/s",
	}
	for _, name := range benchCodecs {
		v := benchPayload(n)
		codec, err := NewCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeVector(codec, v)
		if err != nil {
			t.Fatal(err)
		}
		mbps := func(r testing.BenchmarkResult) float64 {
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			return float64(4*n) / nsPerOp * 1e9 / 1e6
		}
		encRes := testing.Benchmark(func(b *testing.B) {
			c, _ := NewCodec(name)
			for i := 0; i < b.N; i++ {
				if _, err := EncodeVector(c, v); err != nil {
					b.Fatal(err)
				}
			}
		})
		decRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DecodePayload(codec, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Codecs = append(report.Codecs, entry{
			Codec:        name,
			WireBytes:    enc.WireBytes(),
			BytesPerElem: float64(enc.WireBytes()) / float64(n),
			Ratio:        float64(enc.WireBytes()) / float64(4*n),
			EncodeMBps:   mbps(encRes),
			DecodeMBps:   mbps(decRes),
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (%d codecs)\n", path, len(report.Codecs))
}
