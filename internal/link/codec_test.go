package link

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// randVec draws a random-length vector, deliberately covering length 0 and
// lengths that are not multiples of the q8 block size.
func randVec(rng *rand.Rand) []float32 {
	lengths := []int{0, 1, 2, 7, 255, 256, 257, 1000, 4096 + 3}
	n := lengths[rng.Intn(len(lengths))]
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// Property: the lossless codecs round-trip any vector exactly.
func TestLosslessCodecRoundTripProperty(t *testing.T) {
	for _, name := range []string{"dense", "flate"} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			v := randVec(rng)
			codec, err := NewCodec(name)
			if err != nil {
				return false
			}
			enc, err := EncodeVector(codec, v)
			if err != nil {
				return false
			}
			got, err := codec.Decode(enc)
			if err != nil || len(got) != len(v) {
				return false
			}
			for i := range v {
				if got[i] != v[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: q8 round-trips the element count exactly for any length
// (including non-multiples of the block size) and every coordinate within
// half a quantization step of its block's absmax scale.
func TestQ8RoundTripProperty(t *testing.T) {
	f := func(seed int64, bsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng)
		bs := 1 + int(bsRaw)%300
		codec := &Q8Codec{BlockSize: bs}
		enc, err := EncodeVector(codec, v)
		if err != nil {
			return false
		}
		got, err := codec.Decode(enc)
		if err != nil || len(got) != len(v) {
			return false
		}
		for b := 0; b*bs < len(v); b++ {
			lo, hi := b*bs, (b+1)*bs
			if hi > len(v) {
				hi = len(v)
			}
			var maxAbs float64
			for _, x := range v[lo:hi] {
				if a := math.Abs(float64(x)); a > maxAbs {
					maxAbs = a
				}
			}
			step := maxAbs / 127
			for i := lo; i < hi; i++ {
				if math.Abs(float64(got[i]-v[i])) > step/2+1e-7 {
					return false
				}
			}
		}
		// ~1 byte per element plus one scale per block.
		if len(v) > 0 {
			nBlocks := (len(v) + bs - 1) / bs
			if enc.WireBytes() != 4+4*nBlocks+len(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: topk round-trips the element count, transmits at most
// ceil(keep*n) pairs, and every transmitted coordinate is exact.
func TestTopKRoundTripProperty(t *testing.T) {
	f := func(seed int64, keepRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng)
		keep := 0.05 + 0.9*float64(keepRaw)/255
		codec := &TopKCodec{Keep: keep}
		enc, err := EncodeVector(codec, v)
		if err != nil {
			return false
		}
		got, err := codec.Decode(enc)
		if err != nil || len(got) != len(v) {
			return false
		}
		if len(v) == 0 {
			return enc.IsZero()
		}
		k := int(math.Ceil(keep * float64(len(v))))
		if enc.WireBytes() > 8*k {
			return false
		}
		// A fresh codec has a zero residual, so every transmitted value
		// equals its input coordinate and the rest decode to zero.
		for i := range v {
			if got[i] != 0 && got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKErrorFeedback: coordinates dropped in round r are carried into
// round r+1 via the residual, so a constant input is fully delivered over
// 1/keep rounds — nothing is permanently lost, only delayed.
func TestTopKCodecErrorFeedback(t *testing.T) {
	const n = 100
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(i + 1) // distinct magnitudes, all nonzero
	}
	codec := &TopKCodec{Keep: 0.25}
	delivered := make([]float32, n)
	zero := make([]float32, n)
	// Round 1 sends v; later rounds send zero updates, so everything that
	// arrives is residual drainage.
	for round := 0; round < 5; round++ {
		in := zero
		if round == 0 {
			in = v
		}
		enc, err := EncodeVector(codec, in)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			delivered[i] += dec[i]
		}
	}
	for i := range v {
		if math.Abs(float64(delivered[i]-v[i])) > 1e-5 {
			t.Fatalf("coordinate %d: delivered %v of %v after residual drain", i, delivered[i], v[i])
		}
	}
}

func TestTopKSizeChangeRejected(t *testing.T) {
	codec := &TopKCodec{Keep: 0.5}
	if _, err := codec.Encode(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Encode(make([]float32, 9)); err == nil {
		t.Fatal("size change accepted despite pending residual")
	}
}

func TestParameterizedCodecNames(t *testing.T) {
	c, err := NewCodec("topk:0.05")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.(*TopKCodec).Keep; got != 0.05 {
		t.Fatalf("keep = %v", got)
	}
	c, err = NewCodec("q8:128")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.(*Q8Codec).BlockSize; got != 128 {
		t.Fatalf("block size = %v", got)
	}
	for _, bad := range []string{"topk:1.5", "topk:zero", "q8:0", "dense:1", "nope"} {
		if _, err := NewCodec(bad); err == nil {
			t.Fatalf("NewCodec(%q) accepted", bad)
		}
	}
	// Parameterized names resolve to their base codec's wire ID.
	if CodecWireID("topk:0.05") != CodecTopK || CodecWireID("q8:128") != CodecQ8 {
		t.Fatal("parameterized names must share the base wire ID")
	}
}

func TestRegisterCodecCustom(t *testing.T) {
	RegisterCodec("test-negate", func() Codec { return negateCodec{} })
	id := CodecWireID("test-negate")
	if id < customIDBase {
		t.Fatalf("custom codec id %d below the custom range", id)
	}
	if CodecNameByID(id) != "test-negate" {
		t.Fatal("id does not resolve back to the name")
	}
	c, err := NewCodec("test-negate")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeVector(c, []float32{1, -2})
	if err != nil {
		t.Fatal(err)
	}
	if enc.CodecID != id {
		t.Fatalf("EncodeVector did not stamp the registered id: %d vs %d", enc.CodecID, id)
	}
	dec, err := c.Decode(enc)
	if err != nil || dec[0] != 1 || dec[1] != -2 {
		t.Fatalf("custom codec round trip: %v (%v)", dec, err)
	}
}

// negateCodec flips signs on the wire — a minimal custom codec that leaves
// CodecID stamping to EncodeVector.
type negateCodec struct{}

func (negateCodec) Name() string { return "test-negate" }
func (negateCodec) Encode(v []float32) (EncodedPayload, error) {
	neg := make([]float32, len(v))
	for i, x := range v {
		neg[i] = -x
	}
	return EncodedPayload{Elems: len(v), Data: payloadBytes(neg)}, nil
}
func (negateCodec) Decode(p EncodedPayload) ([]float32, error) {
	out := floatsFromBytes(p.Data)
	for i := range out {
		out[i] = -out[i]
	}
	return out, nil
}

func TestDecodePayloadMismatchFailsFast(t *testing.T) {
	q8, _ := NewCodec("q8")
	topk, _ := NewCodec("topk")
	enc, err := EncodeVector(q8, []float32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(topk, enc); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("q8 frame accepted by a topk session: %v", err)
	}
	// The lossless built-ins are always accepted (model-broadcast fallback
	// and legacy frames).
	dense := Dense([]float32{4, 5})
	if vec, err := DecodePayload(topk, dense); err != nil || len(vec) != 2 {
		t.Fatalf("dense fallback rejected: %v", err)
	}
}

// TestCorruptedPayloadRejected flips/truncates codec payloads and expects
// every codec to reject them with an error instead of panicking or
// returning garbage lengths.
func TestCorruptedPayloadRejected(t *testing.T) {
	v := make([]float32, 300)
	rng := rand.New(rand.NewSource(5))
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	for _, name := range []string{"dense", "flate", "q8", "topk"} {
		codec, err := NewCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeVector(codec, v)
		if err != nil {
			t.Fatal(err)
		}
		// Truncated data.
		trunc := enc
		trunc.Data = enc.Data[:len(enc.Data)-3]
		if dec, err := codec.Decode(trunc); err == nil && len(dec) == len(v) {
			t.Errorf("%s: truncated payload decoded to full length", name)
		}
		// Element-count lie.
		lie := enc
		lie.Elems = enc.Elems + 7
		if dec, err := codec.Decode(lie); err == nil && len(dec) == len(v) {
			t.Errorf("%s: elems mismatch not detected", name)
		}
	}

	// topk with an out-of-range index must be rejected.
	topk, _ := NewCodec("topk")
	enc, err := EncodeVector(topk, v)
	if err != nil {
		t.Fatal(err)
	}
	bad := enc
	bad.Data = append([]byte(nil), enc.Data...)
	binary.LittleEndian.PutUint32(bad.Data[0:], uint32(len(v)+10))
	if _, err := topk.Decode(bad); err == nil {
		t.Error("topk: out-of-range index accepted")
	}

	// An unknown codec ID on a frame must fail Floats() with a clear error.
	unknown := EncodedPayload{CodecID: 250, Elems: 3, Data: []byte{1, 2, 3}}
	if _, err := unknown.Floats(); err == nil {
		t.Error("unknown codec id decoded")
	}
}

// TestCorruptedFrameRejected covers frame-level rejection for the new
// payload section: a flipped codec-ID byte fails the CRC, and a
// CRC-consistent frame whose payload bytes disagree with its codec is
// rejected at decode time.
func TestCorruptedFrameRejected(t *testing.T) {
	q8, _ := NewCodec("q8")
	enc, err := EncodeVector(q8, make([]float32, 300))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &Message{Type: MsgUpdate, Payload: enc}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Any single-byte flip in the body (including the codec ID) fails CRC.
	flip := append([]byte(nil), raw...)
	flip[len(flip)-enc.WireBytes()-9] ^= 0xFF // the codec-ID byte
	if _, err := Decode(bytes.NewReader(flip)); err == nil {
		t.Fatal("flipped codec id accepted")
	}

	// A "valid" frame whose payload length disagrees with the codec's own
	// layout is caught by the codec, not trusted.
	short := enc
	short.Data = enc.Data[:len(enc.Data)-5]
	var buf2 bytes.Buffer
	if err := Encode(&buf2, &Message{Type: MsgUpdate, Payload: short}); err != nil {
		t.Fatal(err)
	}
	m, err := Decode(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Payload.Floats(); err == nil {
		t.Fatal("inconsistent q8 payload decoded")
	}
}

// encodeLegacyFrame emits a pre-codec wire frame (no codec-ID byte,
// optionally flate-compressed dense floats) exactly as the previous
// protocol release did.
func encodeLegacyFrame(t *testing.T, v []float32, compress bool) []byte {
	t.Helper()
	payload := payloadBytes(v)
	flags := byte(0)
	if compress {
		var fbuf bytes.Buffer
		fw, _ := flate.NewWriter(&fbuf, flate.BestSpeed)
		fw.Write(payload)
		fw.Close()
		if fbuf.Len() < len(payload) {
			payload = append([]byte(nil), fbuf.Bytes()...)
			flags = flagFlate
		}
	}
	var body bytes.Buffer
	body.WriteByte(byte(MsgModel))
	body.WriteByte(flags)
	writeU32(&body, 7) // round
	writeU32(&body, 0) // id len
	writeU32(&body, 0) // meta count
	writeU32(&body, uint32(len(v)))
	writeU32(&body, uint32(len(payload)))
	body.Write(payload)
	var out bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(body.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(body.Bytes()))
	out.Write(hdr[:])
	out.Write(body.Bytes())
	return out.Bytes()
}

// TestLegacyFrameStillDecodable: frames from the pre-codec wire format
// (dense and flate flavors) decode into the matching built-in codec's
// payload for one release of backward compatibility.
func TestLegacyFrameStillDecodable(t *testing.T) {
	v := []float32{1, 0, 0, 0, -2.5, 0, 0, 0, 3}
	for _, compress := range []bool{false, true} {
		m, err := Decode(bytes.NewReader(encodeLegacyFrame(t, v, compress)))
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if m.Type != MsgModel || m.Round != 7 {
			t.Fatalf("legacy header mangled: %+v", m)
		}
		got, err := m.Payload.Floats()
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if len(got) != len(v) {
			t.Fatalf("legacy payload length %d", len(got))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("compress=%v: coordinate %d mangled", compress, i)
			}
		}
	}
}

// Property: quickselect agrees with a full sort for the k-th largest.
func TestKthLargestMatchesSort(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		v := make([]float32, n)
		for i := range v {
			switch rng.Intn(3) {
			case 0:
				v[i] = float32(rng.NormFloat64())
			case 1:
				v[i] = float32(rng.Intn(4)) // heavy ties
			default:
				v[i] = 1
			}
		}
		k := 1 + int(kRaw)%n
		want := append([]float32(nil), v...)
		sort.Slice(want, func(a, b int) bool { return want[a] > want[b] })
		return kthLargest(v, k) == want[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKPrefersLargerOverEarlierTies: a coordinate strictly above the
// threshold must always be transmitted, even when enough threshold ties
// precede it to fill the density budget.
func TestTopKPrefersLargerOverEarlierTies(t *testing.T) {
	codec := &TopKCodec{Keep: 0.5}
	enc, err := EncodeVector(codec, []float32{1, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[3] != 2 {
		t.Fatalf("largest coordinate dropped in favor of earlier ties: %v", dec)
	}
	if enc.WireBytes() != 8*2 {
		t.Fatalf("density budget not exact: %d bytes", enc.WireBytes())
	}
}

// TestDecodeRejectsOversizedLengthPrefix: a frame whose payload length
// prefix exceeds the bytes actually present must be rejected before any
// allocation, not after a gigabyte make().
func TestDecodeRejectsOversizedLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleMessage()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The payload byte-count field sits 4 bytes before the payload data.
	payloadLen := sampleMessage().Payload.WireBytes()
	off := len(raw) - payloadLen - 4
	binary.LittleEndian.PutUint32(raw[off:], 1<<31)
	// Refresh the CRC so only the length lie is on trial.
	binary.LittleEndian.PutUint32(raw[8:], crc32.ChecksumIEEE(raw[12:]))
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized payload length prefix accepted")
	}
}
