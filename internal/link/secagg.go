package link

import (
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
)

// SecAggParty is one participant in ECDH-based secure aggregation (the
// Bonawitz et al. construction the paper cites): each pair of parties
// derives a shared seed via an X25519 key agreement and uses it to generate
// cancelling additive masks, so the server learns only the sum of updates.
type SecAggParty struct {
	Index int
	priv  *ecdh.PrivateKey

	// seeds[j] is the PRG seed shared with party j (absent for self).
	seeds map[int]int64
}

// NewSecAggParty generates a fresh X25519 keypair for party index.
func NewSecAggParty(index int) (*SecAggParty, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("link: secagg keygen: %w", err)
	}
	return &SecAggParty{Index: index, priv: priv, seeds: map[int]int64{}}, nil
}

// PublicKey returns the party's public key bytes for distribution.
func (p *SecAggParty) PublicKey() []byte { return p.priv.PublicKey().Bytes() }

// AgreeWith derives the pairwise mask seed from the peer's public key. Both
// parties of a pair derive the same seed (ECDH shared secret hashed with
// SHA-256).
func (p *SecAggParty) AgreeWith(peerIndex int, peerPublic []byte) error {
	if peerIndex == p.Index {
		return fmt.Errorf("link: secagg: cannot agree with self")
	}
	pub, err := ecdh.X25519().NewPublicKey(peerPublic)
	if err != nil {
		return fmt.Errorf("link: secagg: bad peer key: %w", err)
	}
	secret, err := p.priv.ECDH(pub)
	if err != nil {
		return fmt.Errorf("link: secagg: ECDH: %w", err)
	}
	sum := sha256.Sum256(secret)
	p.seeds[peerIndex] = int64(binary.LittleEndian.Uint64(sum[:8]))
	return nil
}

// Mask applies the party's pairwise masks to the update in place: +PRG(seed)
// toward higher-indexed peers and −PRG(seed) toward lower-indexed ones, so
// the masks cancel in the sum across all parties.
func (p *SecAggParty) Mask(update []float32) error {
	if len(p.seeds) == 0 {
		return fmt.Errorf("link: secagg: no agreed peers")
	}
	for peer, seed := range p.seeds {
		sign := float32(1)
		if peer < p.Index {
			sign = -1
		}
		prg := mrand.New(mrand.NewSource(seed))
		for i := range update {
			update[i] += sign * float32(prg.NormFloat64())
		}
	}
	return nil
}

// RunSecAggSession wires up a full n-party session in process (each party
// generates a key, exchanges public keys, and agrees pairwise), returning
// the parties ready to Mask. Production deployments exchange the public
// keys through the aggregator; only transport differs. The context bounds
// the O(n²) pairwise agreement, which is minutes of scalar multiplications
// at cross-device fleet sizes.
func RunSecAggSession(ctx context.Context, n int) ([]*SecAggParty, error) {
	if n < 2 {
		return nil, fmt.Errorf("link: secagg needs at least 2 parties, got %d", n)
	}
	parties := make([]*SecAggParty, n)
	for i := range parties {
		p, err := NewSecAggParty(i)
		if err != nil {
			return nil, err
		}
		parties[i] = p
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := parties[i].AgreeWith(j, parties[j].PublicKey()); err != nil {
				return nil, err
			}
		}
	}
	return parties, nil
}
