package link

import (
	"bytes"
	"crypto/x509"
	"errors"
	"math"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleMessage() *Message {
	return &Message{
		Type:     MsgUpdate,
		Round:    42,
		ClientID: "client-07",
		Meta:     map[string]float64{"loss": 3.14, "steps": 512, "lr": 6e-4},
		Payload:  Dense([]float32{1.5, -2.25, 0, 3.375, float32(math.Pi)}),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := sampleMessage()
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n  sent %+v\n  got  %+v", m, got)
	}
	vec, err := got.Payload.Floats()
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 5 || vec[1] != -2.25 {
		t.Fatalf("decoded payload %v", vec)
	}
}

func TestEncodeDecodeEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{Type: MsgShutdown}
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgShutdown || got.ClientID != "" || !got.Payload.IsZero() || got.Meta != nil {
		t.Fatalf("empty message mangled: %+v", got)
	}
}

func TestFlateCodecShrinksRedundantPayload(t *testing.T) {
	payload := make([]float32, 50000) // all zeros: maximally compressible
	plain, err := EncodeVector(DenseCodec{}, payload)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := EncodeVector(FlateCodec{}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if comp.WireBytes() >= plain.WireBytes()/10 {
		t.Fatalf("compression ineffective: %d vs %d bytes", comp.WireBytes(), plain.WireBytes())
	}
	got, err := FlateCodec{}.Decode(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatal("compressed payload length mismatch after decode")
	}
}

func TestIncompressiblePayloadFallsBackToDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := make([]float32, 10000)
	for i := range payload {
		payload[i] = float32(rng.NormFloat64())
	}
	// Random float payloads barely compress; the flate codec must never
	// grow the wire beyond the dense form.
	comp, err := EncodeVector(FlateCodec{}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if comp.WireBytes() > 4*len(payload) {
		t.Fatalf("flate codec grew the payload: %d vs %d", comp.WireBytes(), 4*len(payload))
	}
	got, err := FlateCodec{}.Decode(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("payload corrupted")
		}
	}

	// Fully random bit patterns are genuinely incompressible: the codec
	// must fall back to the dense representation (and mark it as such).
	noise := make([]float32, 10000)
	for i := range noise {
		noise[i] = math.Float32frombits(rng.Uint32())
	}
	comp, err = EncodeVector(FlateCodec{}, noise)
	if err != nil {
		t.Fatal(err)
	}
	if comp.CodecID != CodecDense || comp.WireBytes() != 4*len(noise) {
		t.Fatalf("incompressible payload not dense: codec %d, %d bytes", comp.CodecID, comp.WireBytes())
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleMessage()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a body byte: CRC must catch it.
	bad := append([]byte{}, raw...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted body accepted")
	}
	// Bad magic.
	bad2 := append([]byte{}, raw...)
	bad2[0] ^= 0xFF
	if _, err := Decode(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream.
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	long := make([]byte, maxIDLen+1)
	m := &Message{Type: MsgJoin, ClientID: string(long)}
	if err := Encode(&bytes.Buffer{}, m); err == nil {
		t.Fatal("oversized client id accepted")
	}
}

func TestPipeTransport(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	want := sampleMessage()
	errc := make(chan error, 1)
	go func() { errc <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("pipe transport mangled message")
	}
	st := a.Stats()
	if st.SentMsgs != 1 || st.SentElems != int64(want.Payload.Elems) {
		t.Fatalf("stats: sent=%d elems=%d", st.SentMsgs, st.SentElems)
	}
	if st.SentBytes <= int64(want.Payload.WireBytes()) {
		t.Fatalf("sent bytes %d do not cover the frame", st.SentBytes)
	}
	rst := b.Stats()
	if rst.RecvMsgs != 1 || rst.RecvElems != st.SentElems || rst.RecvBytes != st.SentBytes {
		t.Fatalf("receive stats not symmetric with send: %+v vs %+v", rst, st)
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan *Message, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer c.Close()
		m, _ := c.Recv()
		done <- m
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := sampleMessage()
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil || !reflect.DeepEqual(want, got) {
		t.Fatal("TCP transport failed")
	}
}

func TestTLSTransport(t *testing.T) {
	cert, certPEM, err := SelfSignedCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	l, err := ListenTLS("127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan *Message, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer c.Close()
		m, _ := c.Recv()
		done <- m
	}()
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("bad PEM")
	}
	c, err := DialTLS(l.Addr(), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := sampleMessage()
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil || !reflect.DeepEqual(want, got) {
		t.Fatal("TLS transport failed")
	}
}

// tcpPair returns two ends of a real TCP connection wrapped in the wire
// protocol.
func tcpPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	dialed, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		dialed.Close()
		t.Fatal(a.err)
	}
	t.Cleanup(func() { dialed.Close(); a.c.Close() })
	return NewConn(dialed), NewConn(a.c)
}

// TestSetDeadlineMidRecvReturnsPromptly covers the elastic aggregator's
// cancellation path: an already-blocked Recv must be interrupted by
// SetDeadline within a bounded time, and — because no frame bytes were
// consumed by the idle expiry — the connection must be fully reusable once
// the deadline is cleared.
func TestSetDeadlineMidRecvReturnsPromptly(t *testing.T) {
	a, b := tcpPair(t)

	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errc <- err
	}()
	// Let the receiver block, then expire its deadline mid-Recv.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	a.SetDeadline(time.Now())
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("expired Recv returned a message")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("want timeout error, got %v", err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("Recv took %v to observe the deadline", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not return after SetDeadline")
	}

	// Clear the deadline: the stream consumed no bytes, so the connection
	// must work again end to end.
	a.SetDeadline(time.Time{})
	want := sampleMessage()
	if err := b.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatalf("Recv after cleared deadline: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("message mangled after deadline cycle")
	}
}

// TestRecvTimeoutIdleExpiryReusable covers the helper the round loop uses:
// an idle RecvTimeout times out, clears its own deadline, and leaves the
// connection reusable for the next exchange.
func TestRecvTimeoutIdleExpiryReusable(t *testing.T) {
	a, b := tcpPair(t)
	if _, err := a.RecvTimeout(30 * time.Millisecond); err == nil {
		t.Fatal("idle RecvTimeout returned a message")
	}
	want := sampleMessage()
	if err := b.SendTimeout(want, time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := a.RecvTimeout(time.Second)
	if err != nil {
		t.Fatalf("Recv after idle timeout: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("message mangled after RecvTimeout expiry")
	}
	// d <= 0 falls back to a plain blocking Recv/Send.
	go func() { b.SendTimeout(want, 0) }()
	if _, err := a.RecvTimeout(0); err != nil {
		t.Fatal(err)
	}
}

func TestClipL2(t *testing.T) {
	u := []float32{3, 4}
	out, err := ClipL2{MaxNorm: 1}.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, v := range out {
		norm += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-5 {
		t.Fatalf("post-clip norm %v", math.Sqrt(norm))
	}
	// Below the cap: untouched.
	u2 := []float32{0.1, 0.1}
	out2, _ := ClipL2{MaxNorm: 1}.Apply(u2)
	if out2[0] != 0.1 {
		t.Fatal("clip modified an in-budget update")
	}
	// Disabled.
	u3 := []float32{30, 40}
	out3, _ := ClipL2{}.Apply(u3)
	if out3[0] != 30 {
		t.Fatal("MaxNorm=0 must disable clipping")
	}
}

func TestDPNoise(t *testing.T) {
	u := make([]float32, 10000)
	out, err := DPNoise{Sigma: 0.5, Rng: rand.New(rand.NewSource(1))}.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	var mean, varr float64
	for _, v := range out {
		mean += float64(v)
	}
	mean /= float64(len(out))
	for _, v := range out {
		d := float64(v) - mean
		varr += d * d
	}
	varr /= float64(len(out))
	if math.Abs(mean) > 0.05 || math.Abs(math.Sqrt(varr)-0.5) > 0.05 {
		t.Fatalf("noise moments off: mean=%v std=%v", mean, math.Sqrt(varr))
	}
	if _, err := (DPNoise{Sigma: -1}).Apply(u); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := (DPNoise{Sigma: 1}).Apply(u); err == nil {
		t.Fatal("missing rng accepted")
	}
	// Sigma 0 is a no-op without an RNG.
	if _, err := (DPNoise{}).Apply(u); err != nil {
		t.Fatal(err)
	}
}

func TestNaNGuard(t *testing.T) {
	if _, err := (NaNGuard{}).Apply([]float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := (NaNGuard{}).Apply([]float32{1, float32(math.NaN())}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := (NaNGuard{}).Apply([]float32{float32(math.Inf(1))}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestPipelineOrderAndErrors(t *testing.T) {
	p := Pipeline{ClipL2{MaxNorm: 1}, NaNGuard{}}
	out, err := p.Apply([]float32{30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] > 1 {
		t.Fatal("pipeline did not clip")
	}
	p2 := Pipeline{NaNGuard{}}
	if _, err := p2.Apply([]float32{float32(math.NaN())}); err == nil {
		t.Fatal("pipeline swallowed error")
	}
}

// Property: secure-aggregation masks cancel — the sum of masked updates
// equals the sum of the plain updates within float tolerance, for any client
// count and session seed.
func TestSecureAggregationCancellation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%6
		dim := 32
		rng := rand.New(rand.NewSource(seed))
		sa := SecureAggregator{SessionSeed: seed, NumClients: n}

		plain := make([][]float32, n)
		masked := make([][]float32, n)
		for i := range plain {
			plain[i] = make([]float32, dim)
			masked[i] = make([]float32, dim)
			for k := range plain[i] {
				plain[i][k] = float32(rng.NormFloat64())
				masked[i][k] = plain[i][k]
			}
			if err := sa.Mask(i, masked[i]); err != nil {
				return false
			}
		}
		wantSum, err := SumMasked(plain)
		if err != nil {
			return false
		}
		gotSum, err := SumMasked(masked)
		if err != nil {
			return false
		}
		for k := range wantSum {
			if math.Abs(float64(wantSum[k]-gotSum[k])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSecureAggregationHidesIndividual(t *testing.T) {
	sa := SecureAggregator{SessionSeed: 7, NumClients: 4}
	u := make([]float32, 16) // all zeros
	masked := make([]float32, 16)
	if err := sa.Mask(0, masked); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range u {
		if masked[i] != u[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mask left the update unchanged — no privacy")
	}
	if err := sa.Mask(9, masked); err == nil {
		t.Fatal("out-of-range client accepted")
	}
}

func TestSumMaskedErrors(t *testing.T) {
	if _, err := SumMasked(nil); err == nil {
		t.Fatal("empty aggregation accepted")
	}
	if _, err := SumMasked([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged aggregation accepted")
	}
}

// Property: frame round trip is exact for arbitrary payloads under both
// lossless codecs.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64, useFlate bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		vec := make([]float32, n)
		for i := range vec {
			vec[i] = float32(rng.NormFloat64())
		}
		var codec Codec = DenseCodec{}
		if useFlate {
			codec = FlateCodec{}
		}
		enc, err := EncodeVector(codec, vec)
		if err != nil {
			return false
		}
		m := &Message{
			Type:     MsgType(1 + rng.Intn(6)),
			Round:    int32(rng.Intn(10000)),
			ClientID: "c",
			Payload:  enc,
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.Type != m.Type || got.Round != m.Round || got.Payload.Elems != n {
			return false
		}
		dec, err := got.Payload.Floats()
		if err != nil {
			return false
		}
		for i := range vec {
			if dec[i] != vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
