package link

import (
	"fmt"
	"math"
	"sort"
)

// TopK is the sparsifying post-processor Section 4 alludes to under
// "compression and pruning techniques": only the Keep-fraction of
// largest-magnitude update coordinates are transmitted (the rest become
// zero, which the flate layer then compresses away). Residuals are
// accumulated locally and added to the next update (error feedback), so
// sparsification delays rather than discards small coordinates.
//
// Deprecated: the TopKCodec wire codec ("topk") carries the same
// error-feedback sparsification in a sparse index/value wire format that
// actually shrinks transmission; the post-processor only simulates it on
// dense floats. It remains for dense-pipeline experiments.
type TopK struct {
	Keep float64 // fraction of coordinates kept (0 < Keep ≤ 1)

	residual []float32
}

// Name implements PostProcessor.
func (t *TopK) Name() string { return "topk" }

// Apply implements PostProcessor.
func (t *TopK) Apply(update []float32) ([]float32, error) {
	if t.Keep <= 0 || t.Keep > 1 {
		return nil, fmt.Errorf("keep fraction %v out of (0,1]", t.Keep)
	}
	if t.residual == nil {
		t.residual = make([]float32, len(update))
	}
	if len(t.residual) != len(update) {
		return nil, fmt.Errorf("update size changed: %d vs %d", len(update), len(t.residual))
	}
	// Error feedback: compensate with what previous rounds dropped.
	for i := range update {
		update[i] += t.residual[i]
	}
	k := int(math.Ceil(t.Keep * float64(len(update))))
	if k >= len(update) {
		for i := range t.residual {
			t.residual[i] = 0
		}
		return update, nil
	}
	mags := make([]float32, len(update))
	for i, v := range update {
		mags[i] = float32(math.Abs(float64(v)))
	}
	sorted := append([]float32(nil), mags...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	thresh := sorted[k-1]
	for i, v := range update {
		if mags[i] >= thresh {
			t.residual[i] = 0
		} else {
			t.residual[i] = v
			update[i] = 0
		}
	}
	return update, nil
}

// Sparsity returns the fraction of zero coordinates in v.
func Sparsity(v []float32) float64 {
	if len(v) == 0 {
		return 0
	}
	z := 0
	for _, x := range v {
		if x == 0 {
			z++
		}
	}
	return float64(z) / float64(len(v))
}

// QuantizeInt8 quantizes v into int8 codes with one float32 scale per block
// of blockSize elements (absmax scaling), the lossy wire format the
// cross-device extension of Section 6 calls for. It returns the codes and
// per-block scales. Validation and output allocation live here; the
// per-element sweep is the hotpath kernel quantizeBlocks.
//
//photon:allocok
func QuantizeInt8(v []float32, blockSize int) (codes []int8, scales []float32, err error) {
	if blockSize < 1 {
		return nil, nil, fmt.Errorf("link: blockSize must be positive, got %d", blockSize)
	}
	codes = make([]int8, len(v))
	scales = make([]float32, (len(v)+blockSize-1)/blockSize)
	quantizeBlocks(codes, scales, v, blockSize)
	return codes, scales, nil
}

// quantizeBlocks is the absmax int8 quantization sweep over preallocated
// code/scale buffers — the tight loop every lossy encode pays per element.
//
//photon:hotpath
func quantizeBlocks(codes []int8, scales []float32, v []float32, blockSize int) {
	for b := range scales {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > len(v) {
			hi = len(v)
		}
		var maxAbs float32
		for _, x := range v[lo:hi] {
			a := x
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		scales[b] = scale
		if scale == 0 {
			continue
		}
		for i := lo; i < hi; i++ {
			q := math.Round(float64(v[i] / scale))
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			codes[i] = int8(q)
		}
	}
}

// DequantizeInt8 reverses QuantizeInt8.
//
//photon:allocok
func DequantizeInt8(codes []int8, scales []float32, blockSize int) ([]float32, error) {
	if blockSize < 1 {
		return nil, fmt.Errorf("link: blockSize must be positive, got %d", blockSize)
	}
	want := (len(codes) + blockSize - 1) / blockSize
	if len(scales) != want {
		return nil, fmt.Errorf("link: %d scales for %d codes at block %d (want %d)",
			len(scales), len(codes), blockSize, want)
	}
	out := make([]float32, len(codes))
	dequantizeInto(out, codes, scales, blockSize)
	return out, nil
}

// dequantizeInto is DequantizeInt8's per-element sweep over a preallocated
// output.
//
//photon:hotpath
func dequantizeInto(out []float32, codes []int8, scales []float32, blockSize int) {
	for i, c := range codes {
		out[i] = float32(c) * scales[i/blockSize]
	}
}

// Quantize8 is a PostProcessor applying an int8 quantize→dequantize round
// trip, simulating the 4x-smaller lossy wire format while keeping the
// aggregation pipeline in float32. The introduced error is bounded by half
// a quantization step per coordinate.
//
// Deprecated: the Q8Codec wire codec ("q8") transmits the int8 codes and
// block scales themselves, so the 4x reduction reaches the wire instead of
// being simulated. It remains for dense-pipeline experiments.
type Quantize8 struct {
	BlockSize int // 0 → 256
}

// Name implements PostProcessor.
func (Quantize8) Name() string { return "quantize8" }

// Apply implements PostProcessor.
func (q Quantize8) Apply(update []float32) ([]float32, error) {
	bs := q.BlockSize
	if bs == 0 {
		bs = 256
	}
	codes, scales, err := QuantizeInt8(update, bs)
	if err != nil {
		return nil, err
	}
	return DequantizeInt8(codes, scales, bs)
}
