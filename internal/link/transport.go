package link

import (
	"bufio"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnStats is a connection's cumulative wire accounting, symmetric in both
// directions: message counts, logical payload elements, and real frame
// bytes (headers included) as they crossed the wire.
type ConnStats struct {
	SentMsgs  int
	RecvMsgs  int
	SentElems int64
	RecvElems int64
	SentBytes int64
	RecvBytes int64
}

// Meter accumulates wire-byte totals across a set of connections — the
// aggregator attaches one to every member connection so per-round
// communication cost is grounded in measured bytes rather than
// element-count estimates.
type Meter struct {
	sentBytes atomic.Int64
	recvBytes atomic.Int64
}

// Totals returns the bytes sent and received across all attached
// connections so far.
func (m *Meter) Totals() (sent, recv int64) {
	return m.sentBytes.Load(), m.recvBytes.Load()
}

// countingWriter counts bytes as Encode emits them, before buffering.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countingReader counts bytes as Decode consumes them, after buffering, so
// the count reflects exactly the frames delivered (not read-ahead).
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// Conn is a message-oriented connection between Agg and LLM-C. It is safe
// for one concurrent sender and one concurrent receiver. Payloads travel in
// their codec-encoded form; the negotiated codec is session state owned by
// the fed layer, not the transport.
type Conn struct {
	raw net.Conn
	bw  *bufio.Writer
	cw  *countingWriter
	cr  *countingReader

	sendMu sync.Mutex
	recvMu sync.Mutex

	statMu sync.Mutex
	stats  ConnStats
	meter  *Meter
}

// NewConn wraps a net.Conn in the Photon wire protocol.
func NewConn(raw net.Conn) *Conn {
	bw := bufio.NewWriterSize(raw, 1<<16)
	return &Conn{
		raw: raw,
		bw:  bw,
		cw:  &countingWriter{w: bw},
		cr:  &countingReader{r: bufio.NewReaderSize(raw, 1<<16)},
	}
}

// SetMeter attaches a shared byte meter; subsequent sends and receives add
// their frame bytes to it. Attach before concurrent use.
func (c *Conn) SetMeter(m *Meter) {
	c.statMu.Lock()
	c.meter = m
	c.statMu.Unlock()
}

// Send encodes and flushes one message.
func (c *Conn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.sendLocked(m)
}

func (c *Conn) sendLocked(m *Message) error {
	before := c.cw.n
	if err := Encode(c.cw, m); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("link: flush: %w", err)
	}
	frameBytes := c.cw.n - before
	c.statMu.Lock()
	c.stats.SentMsgs++
	c.stats.SentElems += int64(m.Payload.Elems)
	c.stats.SentBytes += frameBytes
	meter := c.meter
	c.statMu.Unlock()
	if meter != nil {
		meter.sentBytes.Add(frameBytes)
	}
	return nil
}

// Recv blocks for the next message.
func (c *Conn) Recv() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return c.recvLocked()
}

func (c *Conn) recvLocked() (*Message, error) {
	before := c.cr.n
	m, err := Decode(c.cr)
	if err != nil {
		return nil, err
	}
	frameBytes := c.cr.n - before
	c.statMu.Lock()
	c.stats.RecvMsgs++
	c.stats.RecvElems += int64(m.Payload.Elems)
	c.stats.RecvBytes += frameBytes
	meter := c.meter
	c.statMu.Unlock()
	if meter != nil {
		meter.recvBytes.Add(frameBytes)
	}
	return m, nil
}

// Close shuts the underlying connection down.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline bounds pending and future I/O.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline bounds pending and future receives only.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline bounds pending and future sends only.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// SendTimeout sends one message with a write deadline of d (d <= 0 means no
// deadline). The deadline is cleared after the send so the connection stays
// usable — the deadline-bounded round I/O the elastic aggregator relies on
// to never block forever on a stalled member.
func (c *Conn) SendTimeout(m *Message, d time.Duration) error {
	if d <= 0 {
		return c.Send(m)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.raw.SetWriteDeadline(time.Now().Add(d))
	defer c.raw.SetWriteDeadline(time.Time{})
	return c.sendLocked(m)
}

// RecvTimeout receives one message with a read deadline of d (d <= 0 means
// block indefinitely), clearing the deadline afterwards. A deadline expiry
// that interrupted a partially read frame leaves the stream unframed, so
// the caller must treat a timeout mid-payload as fatal for the connection;
// a timeout with no bytes read (idle expiry) leaves the stream reusable.
func (c *Conn) RecvTimeout(d time.Duration) (*Message, error) {
	if d <= 0 {
		return c.Recv()
	}
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	c.raw.SetReadDeadline(time.Now().Add(d))
	defer c.raw.SetReadDeadline(time.Time{})
	return c.recvLocked()
}

// Stats returns the connection's cumulative wire accounting.
func (c *Conn) Stats() ConnStats {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.stats
}

// Pipe returns a connected in-process Conn pair running the full wire
// protocol over net.Pipe, used by the single-process simulator and tests.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// Listener accepts Photon connections over TCP or TLS.
type Listener struct {
	l net.Listener
}

// Listen starts a plain-TCP listener on addr ("host:port", empty host OK).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("link: listen: %w", err)
	}
	return &Listener{l: l}, nil
}

// ListenTLS starts a TLS listener with the given certificate.
func ListenTLS(addr string, cert tls.Certificate) (*Listener, error) {
	l, err := tls.Listen("tcp", addr, &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		return nil, fmt.Errorf("link: tls listen: %w", err)
	}
	return &Listener{l: l}, nil
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// AcceptContext blocks for the next inbound connection or until ctx is
// cancelled. Cancellation closes the listener (the only portable way to
// unblock a pending accept), so a cancelled AcceptContext ends the
// listener's life — the intended use is server shutdown.
func (l *Listener) AcceptContext(ctx context.Context) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type result struct {
		conn *Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		ch <- result{c, err}
	}()
	select {
	case <-ctx.Done():
		l.Close()
		if r := <-ch; r.conn != nil {
			r.conn.Close()
		}
		return nil, ctx.Err()
	case r := <-ch:
		return r.conn, r.err
	}
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }

// Dial connects to a plain-TCP aggregator.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a plain-TCP aggregator, honoring ctx cancellation
// and deadline during connection establishment (a 10s fallback timeout
// applies when ctx carries no deadline).
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("link: dial: %w", err)
	}
	return NewConn(c), nil
}

// DialTLS connects over TLS. rootCAs nil skips verification (self-signed
// development certificates); production deployments pass a pinned pool.
func DialTLS(addr string, rootCAs *x509.CertPool) (*Conn, error) {
	return DialTLSContext(context.Background(), addr, rootCAs)
}

// DialTLSContext connects over TLS honoring ctx during dial and handshake.
// rootCAs nil skips verification (self-signed development certificates);
// production deployments pass a pinned pool.
func DialTLSContext(ctx context.Context, addr string, rootCAs *x509.CertPool) (*Conn, error) {
	cfg := &tls.Config{RootCAs: rootCAs}
	if rootCAs == nil {
		cfg.InsecureSkipVerify = true
	}
	d := tls.Dialer{NetDialer: &net.Dialer{Timeout: 10 * time.Second}, Config: cfg}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("link: tls dial: %w", err)
	}
	return NewConn(c), nil
}

// SelfSignedCert generates an ephemeral ECDSA P-256 certificate for the
// given hosts, valid for 24 hours — enough for a federated training run in
// the cross-silo setting where silos exchange certificates out of band.
// It returns the tls.Certificate and the PEM-encoded certificate for pinning.
func SelfSignedCert(hosts ...string) (tls.Certificate, []byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("link: keygen: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{Organization: []string{"photon"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:         true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("link: create cert: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("link: marshal key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("link: keypair: %w", err)
	}
	return cert, certPEM, nil
}
