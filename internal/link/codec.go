package link

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// EncodedPayload is a wire codec's native representation of a parameter
// vector: the codec that produced it, the logical element count of the
// decoded vector, and the codec-native bytes that actually cross the wire.
// The zero value is the canonical empty payload (control messages carry it).
type EncodedPayload struct {
	// CodecID identifies the producing codec on the wire (CodecDense,
	// CodecFlate, ... or a registered custom codec's derived ID).
	CodecID uint8
	// Elems is the decoded vector's length.
	Elems int
	// Data is the codec-native byte representation.
	Data []byte
}

// IsZero reports whether the payload is empty (no parameters carried).
func (p EncodedPayload) IsZero() bool { return p.Elems == 0 && len(p.Data) == 0 }

// WireBytes returns the number of payload bytes that cross the wire.
func (p EncodedPayload) WireBytes() int { return len(p.Data) }

// Floats decodes the payload with a fresh instance of the codec named by
// its CodecID — the convenience path for consumers outside a negotiated
// session (tools, tests). Session code should decode through its negotiated
// codec instance (DecodePayload) so stateful custom codecs keep their state.
//
// Decoding allocates the declared Elems-sized vector, so a payload from an
// untrusted peer must have its Elems checked against the expected vector
// length first — a sparse frame of a few bytes may legitimately declare a
// model-sized vector. The fed layer performs this check on every network
// path before decoding.
func (p EncodedPayload) Floats() ([]float32, error) {
	if p.IsZero() {
		return nil, nil
	}
	name := CodecNameByID(p.CodecID)
	if name == "" {
		return nil, fmt.Errorf("link: unknown codec id %d in payload", p.CodecID)
	}
	c, err := NewCodec(name)
	if err != nil {
		return nil, err
	}
	return c.Decode(p)
}

// Codec converts between float32 parameter vectors and their wire-native
// encoded form. Encode and Decode must round-trip the element count exactly;
// lossy codecs (q8, topk) may perturb values. A codec instance may carry
// per-session state (the topk codec accumulates an error-feedback residual
// across Encode calls), so every connection/session uses its own instance.
type Codec interface {
	// Encode converts v to its wire representation. Implementations may
	// leave CodecID zero; EncodeVector stamps the registered ID.
	Encode(v []float32) (EncodedPayload, error)
	// Decode reverses Encode. It must validate the payload's internal
	// consistency and reject malformed data with an error rather than
	// panicking; it allocates the Elems-sized output, so callers handling
	// untrusted input validate Elems against the expected vector length
	// before invoking it (the fed layer does on every network path).
	// Decode must be stateless with respect to the instance and safe for
	// concurrent use; per-session encode state (error-feedback residuals)
	// is fine.
	Decode(p EncodedPayload) ([]float32, error)
	// Name identifies the codec family ("dense", "q8", ...).
	Name() string
}

// Parameterized is implemented by codecs that accept a configuration
// argument in their wire name ("topk:0.05", "q8:128"). NewCodec calls
// Configure with the text after the colon.
type Parameterized interface {
	Configure(param string) error
}

// StatefulCodec is implemented by codecs whose encoder carries per-session
// state worth persisting — the topk codec's error-feedback residual. The
// durable control plane snapshots this state into its WAL so a restarted
// relay's uplink resumes with the residual it crashed with: coordinates
// dropped before the crash are still delivered in later rounds instead of
// being silently lost.
type StatefulCodec interface {
	// StateSnapshot returns a copy of the encoder state (nil when the
	// codec has not encoded yet).
	StateSnapshot() []float32
	// StateRestore replaces the encoder state with a copy of s. A nil or
	// empty s resets to the fresh-codec state.
	StateRestore(s []float32) error
}

// CodecState snapshots c's encoder state, or nil for stateless codecs.
func CodecState(c Codec) []float32 {
	if sc, ok := c.(StatefulCodec); ok {
		return sc.StateSnapshot()
	}
	return nil
}

// RestoreCodecState restores a snapshot taken by CodecState; a no-op (and
// nil error) for stateless codecs.
func RestoreCodecState(c Codec, s []float32) error {
	if sc, ok := c.(StatefulCodec); ok && len(s) > 0 {
		return sc.StateRestore(s)
	}
	return nil
}

// updateOnly is implemented by codecs that are only meaningful for sparse
// or residual-corrected update vectors, never for full model broadcasts.
type updateOnly interface {
	UpdateOnly() bool
}

// IsUpdateOnly reports whether c refuses full-model broadcasts (topk: a
// model with 90% of its weights dropped is not a model). Model frames for
// such codecs fall back to the lossless flate codec — see ModelCodec.
func IsUpdateOnly(c Codec) bool {
	u, ok := c.(updateOnly)
	return ok && u.UpdateOnly()
}

// ModelCodec returns the codec to use for full-model broadcasts under a
// negotiated session codec: c itself, unless c is update-only, in which
// case the lossless flate codec stands in.
func ModelCodec(c Codec) Codec {
	if IsUpdateOnly(c) {
		return FlateCodec{}
	}
	return c
}

// Built-in codec wire IDs. ID 0 is reserved for the empty payload; custom
// codecs registered via RegisterCodec get a stable name-derived ID in
// [customIDBase, 255].
const (
	CodecDense uint8 = 1
	CodecFlate uint8 = 2
	CodecQ8    uint8 = 3
	CodecTopK  uint8 = 4

	customIDBase = 16
)

// ---- registry ----

var (
	codecMu        sync.RWMutex
	codecFactories = map[string]func() Codec{}
	codecIDByName  = map[string]uint8{}
	codecNameByID  = map[uint8]string{}
)

func init() {
	registerCodecWithID("dense", CodecDense, func() Codec { return DenseCodec{} })
	registerCodecWithID("flate", CodecFlate, func() Codec { return FlateCodec{} })
	registerCodecWithID("q8", CodecQ8, func() Codec { return &Q8Codec{} })
	registerCodecWithID("topk", CodecTopK, func() Codec { return &TopKCodec{} })
}

func registerCodecWithID(name string, id uint8, factory func() Codec) {
	codecFactories[name] = factory
	codecIDByName[name] = id
	codecNameByID[id] = name
}

// RegisterCodec makes a wire codec available under name (negotiated at join
// time, selected via the Job API's WithCodec). The factory is invoked once
// per connection/session so stateful codecs (error feedback) stay
// per-client. The codec's wire ID is derived deterministically from the
// name, so independently started aggregators and clients agree on it; a
// hash collision with a previously registered codec panics with instructions
// to rename. Registering an existing name replaces its factory (the wire ID
// is kept). The built-ins "dense", "flate", "q8", and "topk" are
// pre-registered on fixed IDs.
func RegisterCodec(name string, factory func() Codec) {
	if name == "" || factory == nil {
		panic("link: RegisterCodec requires a name and a factory")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, ok := codecIDByName[name]; ok {
		codecFactories[name] = factory // re-registration keeps the wire ID
		return
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	id := customIDBase + uint8(h.Sum32()%(256-customIDBase))
	if holder, taken := codecNameByID[id]; taken {
		panic(fmt.Sprintf("link: codec %q wire id %d collides with %q; rename one of them", name, id, holder))
	}
	registerCodecWithID(name, id, factory)
}

// Codecs lists the registered codec names, sorted.
func Codecs() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecFactories))
	for n := range codecFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// baseCodecName strips an optional ":param" suffix from a codec name.
func baseCodecName(name string) (base, param string, hasParam bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[:i], name[i+1:], true
		}
	}
	return name, "", false
}

// NewCodec instantiates a fresh codec by name. Names may carry a
// configuration parameter after a colon — "topk:0.05" keeps 5% of
// coordinates, "q8:128" quantizes in blocks of 128 — when the codec
// implements Parameterized.
func NewCodec(name string) (Codec, error) {
	base, param, hasParam := baseCodecName(name)
	codecMu.RLock()
	factory, ok := codecFactories[base]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("link: unknown codec %q (registered: %v)", name, Codecs())
	}
	c := factory()
	if hasParam {
		p, ok := c.(Parameterized)
		if !ok {
			return nil, fmt.Errorf("link: codec %q takes no parameter (got %q)", base, name)
		}
		if err := p.Configure(param); err != nil {
			return nil, fmt.Errorf("link: codec %q: %w", name, err)
		}
	}
	return c, nil
}

// CodecWireID resolves a (possibly parameterized) codec name to its wire ID,
// or 0 when the name is unknown.
func CodecWireID(name string) uint8 {
	base, _, _ := baseCodecName(name)
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecIDByName[base]
}

// CodecNameByID resolves a wire ID to its registered codec name, or "".
func CodecNameByID(id uint8) string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecNameByID[id]
}

// EncodeVector encodes v with c and stamps the codec's registered wire ID
// when the codec left it unset. Every producer of Message.Payload goes
// through here so frames always carry a resolvable codec ID.
func EncodeVector(c Codec, v []float32) (EncodedPayload, error) {
	p, err := c.Encode(v)
	if err != nil {
		return EncodedPayload{}, fmt.Errorf("link: codec %s encode: %w", c.Name(), err)
	}
	if p.CodecID == 0 && !p.IsZero() {
		if p.CodecID = CodecWireID(c.Name()); p.CodecID == 0 {
			return EncodedPayload{}, fmt.Errorf("link: codec %q is not registered; RegisterCodec it before use", c.Name())
		}
	}
	return p, nil
}

// DecodePayload decodes a received payload inside a negotiated session:
// frames produced by the session codec decode through the (possibly
// stateful) session instance, the lossless built-ins dense and flate are
// always accepted (model-broadcast fallback for update-only codecs, and
// legacy pre-codec frames), and anything else is a codec mismatch — the
// fail-fast half of the join-time negotiation, catching a peer that changed
// codecs mid-stream.
func DecodePayload(session Codec, p EncodedPayload) ([]float32, error) {
	if p.IsZero() {
		return nil, nil
	}
	if session != nil && p.CodecID == CodecWireID(session.Name()) {
		return session.Decode(p)
	}
	switch p.CodecID {
	case CodecDense:
		return DenseCodec{}.Decode(p)
	case CodecFlate:
		return FlateCodec{}.Decode(p)
	}
	got := CodecNameByID(p.CodecID)
	if got == "" {
		got = fmt.Sprintf("id %d", p.CodecID)
	}
	want := "dense"
	if session != nil {
		want = session.Name()
	}
	return nil, fmt.Errorf("link: payload codec mismatch: frame carries %s, session negotiated %s", got, want)
}

// Dense wraps v in the dense codec's encoding. It never fails and is the
// natural way to build payloads outside a negotiated session (tests,
// hand-rolled protocol drivers).
func Dense(v []float32) EncodedPayload {
	p, _ := DenseCodec{}.Encode(v)
	return p
}

// ---- dense ----

// DenseCodec is the identity codec: 4 bytes per element, lossless.
type DenseCodec struct{}

// Name implements Codec.
func (DenseCodec) Name() string { return "dense" }

// Encode implements Codec. Codec entry points are per-round wire
// boundaries: payload buffers escape to the transport, so they allocate by
// design and the tight per-element loops underneath them are the hotpath.
//
//photon:allocok
func (DenseCodec) Encode(v []float32) (EncodedPayload, error) {
	if len(v) == 0 {
		return EncodedPayload{}, nil
	}
	return EncodedPayload{CodecID: CodecDense, Elems: len(v), Data: payloadBytes(v)}, nil
}

// Decode implements Codec.
//
//photon:allocok
func (DenseCodec) Decode(p EncodedPayload) ([]float32, error) {
	if p.IsZero() {
		return nil, nil
	}
	if len(p.Data) != p.Elems*4 {
		return nil, fmt.Errorf("link: dense payload %d bytes for %d elems", len(p.Data), p.Elems)
	}
	return floatsFromBytes(p.Data), nil
}

// ---- flate ----

// FlateCodec flate-compresses the dense representation, keeping whichever
// form is smaller — incompressible payloads fall back to a dense encoding,
// so the codec never grows the wire. Lossless.
type FlateCodec struct{}

// Name implements Codec.
func (FlateCodec) Name() string { return "flate" }

// Encode implements Codec.
func (FlateCodec) Encode(v []float32) (EncodedPayload, error) {
	if len(v) == 0 {
		return EncodedPayload{}, nil
	}
	raw := payloadBytes(v)
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return EncodedPayload{}, fmt.Errorf("flate init: %w", err)
	}
	if _, err := fw.Write(raw); err != nil {
		return EncodedPayload{}, fmt.Errorf("flate write: %w", err)
	}
	if err := fw.Close(); err != nil {
		return EncodedPayload{}, fmt.Errorf("flate close: %w", err)
	}
	if buf.Len() >= len(raw) {
		return EncodedPayload{CodecID: CodecDense, Elems: len(v), Data: raw}, nil
	}
	return EncodedPayload{CodecID: CodecFlate, Elems: len(v), Data: buf.Bytes()}, nil
}

// Decode implements Codec.
func (FlateCodec) Decode(p EncodedPayload) ([]float32, error) {
	if p.IsZero() {
		return nil, nil
	}
	if p.CodecID == CodecDense {
		return DenseCodec{}.Decode(p)
	}
	fr := flate.NewReader(bytes.NewReader(p.Data))
	raw, err := io.ReadAll(io.LimitReader(fr, int64(p.Elems)*4+1))
	if err != nil {
		return nil, fmt.Errorf("link: flate payload: %w", err)
	}
	if len(raw) != p.Elems*4 {
		return nil, fmt.Errorf("link: flate payload inflates to %d bytes for %d elems", len(raw), p.Elems)
	}
	return floatsFromBytes(raw), nil
}

// ---- q8 ----

// Q8Codec transmits int8 block-quantized values: one signed byte per
// element plus one float32 absmax scale per block — ~1.016 bytes/element at
// the default block size of 256, a 3.9x wire reduction. Lossy: the
// per-coordinate error is bounded by half a quantization step
// (blockAbsMax/254). Safe for both update and full-model payloads.
type Q8Codec struct {
	BlockSize int // 0 → 256
}

// Name implements Codec.
func (*Q8Codec) Name() string { return "q8" }

// Configure implements Parameterized: "q8:<blockSize>".
func (q *Q8Codec) Configure(param string) error {
	bs, err := strconv.Atoi(param)
	if err != nil || bs < 1 {
		return fmt.Errorf("block size %q must be a positive integer", param)
	}
	q.BlockSize = bs
	return nil
}

func (q *Q8Codec) blockSize() int {
	if q.BlockSize <= 0 {
		return 256
	}
	return q.BlockSize
}

// Encode implements Codec. Layout: u32 blockSize | nBlocks×f32 scales |
// elems×int8 codes.
//
//photon:allocok
func (q *Q8Codec) Encode(v []float32) (EncodedPayload, error) {
	if len(v) == 0 {
		return EncodedPayload{}, nil
	}
	bs := q.blockSize()
	codes, scales, err := QuantizeInt8(v, bs)
	if err != nil {
		return EncodedPayload{}, err
	}
	data := make([]byte, 4+4*len(scales)+len(codes))
	binary.LittleEndian.PutUint32(data, uint32(bs))
	packQ8(data[4:], scales, codes)
	return EncodedPayload{CodecID: CodecQ8, Elems: len(v), Data: data}, nil
}

// Decode implements Codec.
//
//photon:allocok
func (q *Q8Codec) Decode(p EncodedPayload) ([]float32, error) {
	if p.IsZero() {
		return nil, nil
	}
	if len(p.Data) < 4 {
		return nil, fmt.Errorf("link: q8 payload truncated (%d bytes)", len(p.Data))
	}
	bs := int(binary.LittleEndian.Uint32(p.Data))
	if bs < 1 || bs > MaxPayloadElems {
		return nil, fmt.Errorf("link: q8 block size %d out of range", bs)
	}
	nBlocks := (p.Elems + bs - 1) / bs
	want := 4 + 4*nBlocks + p.Elems
	if len(p.Data) != want {
		return nil, fmt.Errorf("link: q8 payload %d bytes for %d elems at block %d (want %d)", len(p.Data), p.Elems, bs, want)
	}
	scales := make([]float32, nBlocks)
	codes := make([]int8, p.Elems)
	unpackQ8(p.Data[4:], scales, codes)
	return DequantizeInt8(codes, scales, bs)
}

// ---- topk ----

// TopKCodec transmits only the Keep-fraction of largest-magnitude
// coordinates as (index, value) pairs — 8 bytes per kept element, so 10%
// density costs ~0.8 bytes/element, a 5x wire reduction. Dropped
// coordinates accumulate in a client-side error-feedback residual that is
// added to the next Encode, so sparsification delays rather than discards
// small updates. The residual lives in the codec instance: one instance per
// client session, reused across reconnects. Update-only — model broadcasts
// under a topk session use the flate fallback (see ModelCodec).
type TopKCodec struct {
	Keep float64 // fraction of coordinates kept; 0 → 0.1

	residual []float32
}

// Name implements Codec.
func (*TopKCodec) Name() string { return "topk" }

// UpdateOnly marks the codec unusable for full-model broadcasts.
func (*TopKCodec) UpdateOnly() bool { return true }

// Configure implements Parameterized: "topk:<keepFraction>".
func (t *TopKCodec) Configure(param string) error {
	keep, err := strconv.ParseFloat(param, 64)
	if err != nil || keep <= 0 || keep > 1 {
		return fmt.Errorf("keep fraction %q must be in (0,1]", param)
	}
	t.Keep = keep
	return nil
}

// StateSnapshot implements StatefulCodec: a copy of the error-feedback
// residual accumulated so far.
func (t *TopKCodec) StateSnapshot() []float32 {
	if t.residual == nil {
		return nil
	}
	return append([]float32(nil), t.residual...)
}

// StateRestore implements StatefulCodec.
func (t *TopKCodec) StateRestore(s []float32) error {
	if len(s) == 0 {
		t.residual = nil
		return nil
	}
	if t.residual != nil && len(t.residual) != len(s) {
		return fmt.Errorf("residual size changed: %d vs snapshot %d", len(t.residual), len(s))
	}
	t.residual = append([]float32(nil), s...)
	return nil
}

func (t *TopKCodec) keep() float64 {
	if t.Keep == 0 {
		return 0.1
	}
	return t.Keep
}

// Encode implements Codec. Layout: kept-count×(u32 index | f32 value).
//
//photon:allocok
func (t *TopKCodec) Encode(v []float32) (EncodedPayload, error) {
	keep := t.keep()
	if keep <= 0 || keep > 1 {
		return EncodedPayload{}, fmt.Errorf("keep fraction %v out of (0,1]", keep)
	}
	if len(v) == 0 {
		return EncodedPayload{}, nil
	}
	if t.residual == nil {
		t.residual = make([]float32, len(v))
	}
	if len(t.residual) != len(v) {
		return EncodedPayload{}, fmt.Errorf("update size changed: %d vs residual %d", len(v), len(t.residual))
	}
	// Error feedback: compensate with what previous rounds dropped.
	work := make([]float32, len(v))
	for i := range v {
		work[i] = v[i] + t.residual[i]
	}
	k := int(math.Ceil(keep * float64(len(work))))
	if k > len(work) {
		k = len(work)
	}
	mags := make([]float32, len(work))
	for i, x := range work {
		mags[i] = float32(math.Abs(float64(x)))
	}
	thresh := kthLargest(mags, k)
	// Everything strictly above the threshold is always transmitted; only
	// ties at exactly the threshold compete for the remaining slots, so
	// density stays exact even for heavily quantized magnitude
	// distributions without ever dropping a larger coordinate in favor of
	// an earlier tie.
	tieBudget := k
	for _, m := range mags {
		if m > thresh {
			tieBudget--
		}
	}

	data := make([]byte, 0, 8*k)
	var idx [8]byte
	for i, x := range work {
		keepIt := mags[i] > thresh
		if !keepIt && mags[i] == thresh && tieBudget > 0 {
			keepIt = true
			tieBudget--
		}
		if keepIt {
			binary.LittleEndian.PutUint32(idx[0:], uint32(i))
			binary.LittleEndian.PutUint32(idx[4:], math.Float32bits(x))
			data = append(data, idx[:]...)
			t.residual[i] = 0
		} else {
			t.residual[i] = x
		}
	}
	return EncodedPayload{CodecID: CodecTopK, Elems: len(v), Data: data}, nil
}

// kthLargest returns the k-th largest element of v (1-based, k in
// [1,len(v)]) by quickselect over a scratch copy — expected O(n), versus
// the O(n log n) full sort that would otherwise dominate every topk encode.
//
//photon:allocok
func kthLargest(v []float32, k int) float32 {
	s := append([]float32(nil), v...)
	return quickselect(s, k-1)
}

// quickselect returns the element that would sit at descending-order index
// target, partitioning s in place (expected O(n), no allocation).
//
//photon:hotpath
func quickselect(s []float32, target int) float32 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted and constant inputs.
		mid := lo + (hi-lo)/2
		p := medianOf3(s[lo], s[mid], s[hi])
		i, j := lo, hi
		for i <= j {
			for s[i] > p {
				i++
			}
			for s[j] < p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return s[target]
		}
	}
	return s[target]
}

//photon:hotpath
func medianOf3(a, b, c float32) float32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Decode implements Codec: scatter the pairs into a zero vector.
//
//photon:allocok
func (t *TopKCodec) Decode(p EncodedPayload) ([]float32, error) {
	if p.IsZero() {
		return nil, nil
	}
	if len(p.Data)%8 != 0 {
		return nil, fmt.Errorf("link: topk payload %d bytes is not a pair multiple", len(p.Data))
	}
	pairs := len(p.Data) / 8
	if pairs > p.Elems {
		return nil, fmt.Errorf("link: topk payload carries %d pairs for %d elems", pairs, p.Elems)
	}
	out := make([]float32, p.Elems)
	for i := 0; i < pairs; i++ {
		idx := binary.LittleEndian.Uint32(p.Data[8*i:])
		if int(idx) >= p.Elems {
			return nil, fmt.Errorf("link: topk index %d out of range [0,%d)", idx, p.Elems)
		}
		out[idx] = math.Float32frombits(binary.LittleEndian.Uint32(p.Data[8*i+4:]))
	}
	return out, nil
}

// floatsFromBytes converts little-endian float32 bytes back to a vector.
//
//photon:allocok
func floatsFromBytes(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	fillFloats(out, raw)
	return out
}

// fillFloats deserializes little-endian float32 bytes into a preallocated
// vector — the per-element half of floatsFromBytes.
//
//photon:hotpath
func fillFloats(out []float32, raw []byte) {
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
}

// packQ8 writes the q8 wire body (scales then codes) into a preallocated
// buffer starting at the scale section; unpackQ8 is its inverse.
//
//photon:hotpath
func packQ8(body []byte, scales []float32, codes []int8) {
	for i, s := range scales {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(s))
	}
	off := 4 * len(scales)
	for i, c := range codes {
		body[off+i] = byte(c)
	}
}

//photon:hotpath
func unpackQ8(body []byte, scales []float32, codes []int8) {
	for i := range scales {
		scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	off := 4 * len(scales)
	for i := range codes {
		codes[i] = int8(body[off+i])
	}
}
