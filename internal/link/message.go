// Package link is Photon's communication module: the gateway between the
// aggregator (Agg) and LLM clients (LLM-C).
//
// It provides a compact binary wire format with CRC-32 integrity checking
// whose parameter payloads are produced by pluggable wire codecs — dense
// float32, lossless flate, int8 block quantization, and error-feedback
// top-k sparsification ship built in, and RegisterCodec adds more — stream
// transports over any net.Conn (in-process pipes, TCP, and TLS with
// self-signed certificate generation for the cross-silo setting), and the
// extensible post-processing pipeline of Section 4 — gradient clipping,
// differential-privacy noise, and additive-mask secure aggregation. Frames
// carry the producing codec's ID next to the codec-native bytes, so lossy
// compression actually shrinks the wire instead of being simulated on dense
// floats.
package link

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// MsgType identifies the purpose of a message.
type MsgType uint8

// Message types exchanged between Agg and LLM-C.
const (
	// MsgJoin announces a client to the aggregator. Under codec
	// negotiation it acks the aggregator's MsgCodecAnnounce by echoing the
	// announced wire ID in Meta[CodecIDKey].
	MsgJoin MsgType = iota + 1
	// MsgRoundStart carries round information and training instructions.
	MsgRoundStart
	// MsgModel carries global model parameters to a client.
	MsgModel
	// MsgUpdate carries a client's model update back to the aggregator.
	MsgUpdate
	// MsgMetrics carries training metadata without parameters.
	MsgMetrics
	// MsgShutdown ends a session.
	MsgShutdown
	// MsgHeartbeat is a liveness probe. The aggregator pings each member on
	// its heartbeat interval with a send-timestamp in Meta; the client
	// echoes the message back unchanged so the aggregator can record both
	// liveness and round-trip time. Heartbeats never carry parameters.
	MsgHeartbeat
	// MsgCodecAnnounce opens codec negotiation: the aggregator sends it
	// first on every fresh connection, carrying its configured codec name
	// in ClientID (the frame's only string field) and the codec's wire ID
	// in Meta[CodecIDKey]. The client verifies it can instantiate that
	// codec and acks by echoing the ID in its MsgJoin; any mismatch fails
	// the join fast with a clear error on the client side.
	MsgCodecAnnounce
	// MsgGenerate asks a photon-serve instance to continue a prompt. The
	// payload carries the prompt token ids as dense float32; sampling
	// options, the request id, and the deadline travel in Meta (key names
	// are owned by internal/serve).
	MsgGenerate
	// MsgScore asks a photon-serve instance for a continuation
	// log-probability. The payload carries prompt‖continuation token ids;
	// Meta carries the prompt length and request id.
	MsgScore
	// MsgServeResult answers a MsgGenerate (payload: sampled token ids) or
	// MsgScore (Meta: log-probability). Failures set an error string in
	// ClientID and a zero ok flag in Meta.
	MsgServeResult
	// MsgObserve subscribes a read-only observer (photon-top, dashboards)
	// to an aggregator's round event stream. An observer answers the
	// MsgCodecAnnounce handshake with MsgObserve instead of MsgJoin; it
	// never joins membership, receives no heartbeats, and is fed Meta-only
	// MsgMetrics frames after each round — codec-free, so any observer can
	// attach regardless of the fleet's wire codec.
	MsgObserve
)

// HeartbeatSentKey is the Meta key carrying the ping's send time in
// nanoseconds since the Unix epoch, echoed back by the receiver.
const HeartbeatSentKey = "hb_sent_ns"

// CodecIDKey is the Meta key carrying a codec wire ID during the join
// handshake (MsgCodecAnnounce announces it, MsgJoin echoes it back).
const CodecIDKey = "codec_id"

// CohortKey is the Meta key a relay stamps on its upstream MsgUpdate with
// the number of cohort updates folded into the payload. Its presence tells
// the parent aggregator that the member is itself an aggregation tier, so
// round records report Depth 2 instead of a flat cohort.
const CohortKey = "cohort"

// TraceKey is the Meta key carrying the round-scoped trace ID. The root
// aggregator mints one per round and stamps it on every MsgModel; members
// (and relays, downward to their own cohorts) propagate it and echo it on
// their MsgUpdate, so phase spans recorded anywhere in the tree attribute
// to the root round that caused them. Meta values are float64, so trace
// IDs are confined to 52 bits — they survive the float round-trip exactly.
const TraceKey = "trace_id"

// ResumeKey is the Meta key a WAL-resuming aggregator stamps (value 1) on
// the re-broadcast of a round that was in flight when it crashed. A member
// that already trained that round recognizes the marker plus the matching
// round number and re-sends its cached update instead of training again —
// re-training would double-advance its data stream and, under a lossy
// codec, re-apply the error-feedback residual. Fresh broadcasts never carry
// the key, so a genuinely new run that happens to reuse a round number is
// served normally.
const ResumeKey = "resume"

// VersionKey is the Meta key carrying a global-model version stamp. An
// async (FedBuff-mode) aggregator stamps the current model version on every
// MsgModel broadcast; the member echoes it on its MsgUpdate, so the
// aggregator can compute the update's staleness (current version minus
// trained version) and down-weight late arrivals instead of dropping them.
// Relays propagate the stamp upstream on their pseudo-gradients so two-tier
// async composes. Meta values are float64, so versions — like trace IDs —
// are confined to 52 bits and survive the float round-trip exactly.
const VersionKey = "model_version"

// Per-phase self-report keys members stamp on MsgUpdate Meta, letting the
// aggregator split each member's round latency into local compute, codec
// work, and wire residual.
const (
	// PhaseTrainNsKey is the member's local-train wall time (for a relay:
	// its cohort-exchange wall time) in nanoseconds.
	PhaseTrainNsKey = "ph_train_ns"
	// PhaseEncNsKey is the member's update-encode wall time in nanoseconds.
	PhaseEncNsKey = "ph_enc_ns"
	// PhaseDecNsKey is the member's model-decode wall time in nanoseconds.
	PhaseDecNsKey = "ph_dec_ns"
)

// Message is the unit of communication. Payload carries model parameters or
// pseudo-gradients in their codec-encoded wire form; Meta carries scalar
// metadata (losses, step counts, instructions) keyed by name.
type Message struct {
	Type     MsgType
	Round    int32
	ClientID string
	Meta     map[string]float64
	Payload  EncodedPayload
}

const (
	magic = 0x50484F54 // "PHOT"
	// flagFlate marks a legacy (pre-codec) frame whose payload bytes are
	// flate-compressed dense floats. Decode-only: current frames always
	// set flagCodec instead.
	flagFlate = 1 << 0
	// flagCodec marks the current payload section: codec ID + element
	// count + codec-native bytes.
	flagCodec   = 1 << 1
	maxIDLen    = 1 << 10
	maxMetaKeys = 1 << 12
	// MaxPayloadElems bounds a single message's parameter payload (1B
	// float32s ≈ 4 GB), protecting against corrupted length prefixes.
	MaxPayloadElems = 1 << 30
)

// Encode serializes the message to the wire format. The payload is written
// verbatim in its codec-encoded form; producers choose the codec via
// EncodeVector before building the message.
func Encode(w io.Writer, m *Message) error {
	if len(m.ClientID) > maxIDLen {
		return fmt.Errorf("link: client id too long (%d bytes)", len(m.ClientID))
	}
	if len(m.Meta) > maxMetaKeys {
		return fmt.Errorf("link: too many meta keys (%d)", len(m.Meta))
	}
	if m.Payload.Elems > MaxPayloadElems {
		return fmt.Errorf("link: payload too large (%d elems)", m.Payload.Elems)
	}
	if len(m.Payload.Data) > math.MaxUint32 {
		return fmt.Errorf("link: payload too large (%d bytes)", len(m.Payload.Data))
	}

	var body bytes.Buffer
	body.WriteByte(byte(m.Type))
	body.WriteByte(flagCodec)
	writeU32(&body, uint32(m.Round))
	writeU32(&body, uint32(len(m.ClientID)))
	body.WriteString(m.ClientID)
	writeU32(&body, uint32(len(m.Meta)))
	for _, k := range sortedKeys(m.Meta) {
		writeU32(&body, uint32(len(k)))
		body.WriteString(k)
		writeU64(&body, math.Float64bits(m.Meta[k]))
	}
	body.WriteByte(m.Payload.CodecID)
	writeU32(&body, uint32(m.Payload.Elems))
	writeU32(&body, uint32(len(m.Payload.Data)))
	body.Write(m.Payload.Data)

	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(body.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(body.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("link: write header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("link: write body: %w", err)
	}
	return nil
}

// ErrBadFrame reports a corrupted or foreign frame on the wire.
var ErrBadFrame = errors.New("link: bad frame")

// Decode reads one message from the wire. Both current (codec-tagged) and
// legacy (dense/flate) payload sections are accepted; legacy payloads map
// onto the dense and flate codec IDs, so one release of old peers and old
// checkpoint streams stays readable.
func Decode(r io.Reader) (*Message, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[4:])
	wantCRC := binary.LittleEndian.Uint32(hdr[8:])
	const maxBody = uint64(21 + maxIDLen + 24*maxMetaKeys + 8*MaxPayloadElems)
	if uint64(bodyLen) > maxBody {
		return nil, fmt.Errorf("%w: body length %d", ErrBadFrame, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}

	b := bytes.NewReader(body)
	m := &Message{}
	t, err := b.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadFrame)
	}
	m.Type = MsgType(t)
	flags, err := b.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadFrame)
	}
	round, err := readU32(b)
	if err != nil {
		return nil, err
	}
	m.Round = int32(round)
	idLen, err := readU32(b)
	if err != nil {
		return nil, err
	}
	if idLen > maxIDLen {
		return nil, fmt.Errorf("%w: id length %d", ErrBadFrame, idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(b, id); err != nil {
		return nil, fmt.Errorf("%w: truncated id", ErrBadFrame)
	}
	m.ClientID = string(id)
	nMeta, err := readU32(b)
	if err != nil {
		return nil, err
	}
	if nMeta > maxMetaKeys {
		return nil, fmt.Errorf("%w: meta count %d", ErrBadFrame, nMeta)
	}
	if nMeta > 0 {
		m.Meta = make(map[string]float64, nMeta)
	}
	for i := uint32(0); i < nMeta; i++ {
		kLen, err := readU32(b)
		if err != nil {
			return nil, err
		}
		if kLen > maxIDLen {
			return nil, fmt.Errorf("%w: meta key length %d", ErrBadFrame, kLen)
		}
		k := make([]byte, kLen)
		if _, err := io.ReadFull(b, k); err != nil {
			return nil, fmt.Errorf("%w: truncated meta", ErrBadFrame)
		}
		v, err := readU64(b)
		if err != nil {
			return nil, err
		}
		m.Meta[string(k)] = math.Float64frombits(v)
	}

	codecID := uint8(0)
	if flags&flagCodec != 0 {
		cid, err := b.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated codec id", ErrBadFrame)
		}
		codecID = cid
	}
	nElems, err := readU32(b)
	if err != nil {
		return nil, err
	}
	if nElems > MaxPayloadElems {
		return nil, fmt.Errorf("%w: payload elems %d", ErrBadFrame, nElems)
	}
	nBytes, err := readU32(b)
	if err != nil {
		return nil, err
	}
	// Bound the allocation by the bytes actually present in the frame — a
	// corrupted length prefix must not allocate gigabytes before ReadFull
	// can fail.
	if int64(nBytes) > int64(b.Len()) {
		return nil, fmt.Errorf("%w: payload length %d exceeds frame", ErrBadFrame, nBytes)
	}
	raw := make([]byte, nBytes)
	if _, err := io.ReadFull(b, raw); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrBadFrame)
	}
	if nElems == 0 && nBytes == 0 {
		return m, nil // canonical empty payload
	}
	if flags&flagCodec == 0 {
		// Legacy pre-codec frame: raw dense floats, optionally
		// flate-compressed. Map onto the matching built-in codec.
		codecID = CodecDense
		if flags&flagFlate != 0 {
			codecID = CodecFlate
		} else if uint32(len(raw)) != nElems*4 {
			return nil, fmt.Errorf("%w: payload size %d for %d elems", ErrBadFrame, len(raw), nElems)
		}
	}
	m.Payload = EncodedPayload{CodecID: codecID, Elems: int(nElems), Data: raw}
	return m, nil
}

//photon:allocok
func payloadBytes(p []float32) []byte {
	out := make([]byte, len(p)*4)
	packFloats(out, p)
	return out
}

// packFloats serializes float32s little-endian into a preallocated buffer —
// the per-element half of payloadBytes, kept allocation-free so encode
// throughput scales with the model size alone.
//
//photon:hotpath
func packFloats(out []byte, p []float32) {
	for i, v := range p {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated u32", ErrBadFrame)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated u64", ErrBadFrame)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}
