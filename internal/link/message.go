// Package link is Photon's communication module: the gateway between the
// aggregator (Agg) and LLM clients (LLM-C).
//
// It provides a compact binary wire codec with CRC-32 integrity checking and
// optional lossless flate compression of parameter payloads (the paper's
// default post-processing), stream transports over any net.Conn (in-process
// pipes, TCP, and TLS with self-signed certificate generation for the
// cross-silo setting), and the extensible post-processing pipeline of
// Section 4 — gradient clipping, compression, differential-privacy noise,
// and additive-mask secure aggregation.
package link

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// MsgType identifies the purpose of a message.
type MsgType uint8

// Message types exchanged between Agg and LLM-C.
const (
	// MsgJoin announces a client to the aggregator.
	MsgJoin MsgType = iota + 1
	// MsgRoundStart carries round information and training instructions.
	MsgRoundStart
	// MsgModel carries global model parameters to a client.
	MsgModel
	// MsgUpdate carries a client's model update back to the aggregator.
	MsgUpdate
	// MsgMetrics carries training metadata without parameters.
	MsgMetrics
	// MsgShutdown ends a session.
	MsgShutdown
	// MsgHeartbeat is a liveness probe. The aggregator pings each member on
	// its heartbeat interval with a send-timestamp in Meta; the client
	// echoes the message back unchanged so the aggregator can record both
	// liveness and round-trip time. Heartbeats never carry parameters.
	MsgHeartbeat
)

// HeartbeatSentKey is the Meta key carrying the ping's send time in
// nanoseconds since the Unix epoch, echoed back by the receiver.
const HeartbeatSentKey = "hb_sent_ns"

// Message is the unit of communication. Payload carries model parameters or
// pseudo-gradients; Meta carries scalar metadata (losses, step counts,
// instructions) keyed by name.
type Message struct {
	Type     MsgType
	Round    int32
	ClientID string
	Meta     map[string]float64
	Payload  []float32
}

const (
	magic       = 0x50484F54 // "PHOT"
	flagFlate   = 1 << 0
	maxIDLen    = 1 << 10
	maxMetaKeys = 1 << 12
	// MaxPayloadElems bounds a single message's parameter payload (1B
	// float32s ≈ 4 GB), protecting against corrupted length prefixes.
	MaxPayloadElems = 1 << 30
)

// Encode serializes the message to the wire format. When compress is true
// the payload bytes are flate-compressed; the smaller encoding wins, so
// incompressible payloads carry no overhead beyond the flag byte.
func Encode(w io.Writer, m *Message, compress bool) error {
	if len(m.ClientID) > maxIDLen {
		return fmt.Errorf("link: client id too long (%d bytes)", len(m.ClientID))
	}
	if len(m.Meta) > maxMetaKeys {
		return fmt.Errorf("link: too many meta keys (%d)", len(m.Meta))
	}
	if len(m.Payload) > MaxPayloadElems {
		return fmt.Errorf("link: payload too large (%d elems)", len(m.Payload))
	}

	payload := payloadBytes(m.Payload)
	flags := byte(0)
	if compress && len(payload) > 0 {
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return fmt.Errorf("link: flate init: %w", err)
		}
		if _, err := fw.Write(payload); err != nil {
			return fmt.Errorf("link: flate write: %w", err)
		}
		if err := fw.Close(); err != nil {
			return fmt.Errorf("link: flate close: %w", err)
		}
		if buf.Len() < len(payload) {
			payload = buf.Bytes()
			flags |= flagFlate
		}
	}

	var body bytes.Buffer
	body.WriteByte(byte(m.Type))
	body.WriteByte(flags)
	writeU32(&body, uint32(m.Round))
	writeU32(&body, uint32(len(m.ClientID)))
	body.WriteString(m.ClientID)
	writeU32(&body, uint32(len(m.Meta)))
	for _, k := range sortedKeys(m.Meta) {
		writeU32(&body, uint32(len(k)))
		body.WriteString(k)
		writeU64(&body, math.Float64bits(m.Meta[k]))
	}
	writeU32(&body, uint32(len(m.Payload))) // element count (pre-compression)
	writeU32(&body, uint32(len(payload)))   // byte count (post-compression)
	body.Write(payload)

	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(body.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(body.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("link: write header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("link: write body: %w", err)
	}
	return nil
}

// ErrBadFrame reports a corrupted or foreign frame on the wire.
var ErrBadFrame = errors.New("link: bad frame")

// Decode reads one message from the wire.
func Decode(r io.Reader) (*Message, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[4:])
	wantCRC := binary.LittleEndian.Uint32(hdr[8:])
	const maxBody = uint64(16 + maxIDLen + 24*maxMetaKeys + 4*MaxPayloadElems)
	if uint64(bodyLen) > maxBody {
		return nil, fmt.Errorf("%w: body length %d", ErrBadFrame, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}

	b := bytes.NewReader(body)
	m := &Message{}
	t, err := b.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadFrame)
	}
	m.Type = MsgType(t)
	flags, err := b.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadFrame)
	}
	round, err := readU32(b)
	if err != nil {
		return nil, err
	}
	m.Round = int32(round)
	idLen, err := readU32(b)
	if err != nil {
		return nil, err
	}
	if idLen > maxIDLen {
		return nil, fmt.Errorf("%w: id length %d", ErrBadFrame, idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(b, id); err != nil {
		return nil, fmt.Errorf("%w: truncated id", ErrBadFrame)
	}
	m.ClientID = string(id)
	nMeta, err := readU32(b)
	if err != nil {
		return nil, err
	}
	if nMeta > maxMetaKeys {
		return nil, fmt.Errorf("%w: meta count %d", ErrBadFrame, nMeta)
	}
	if nMeta > 0 {
		m.Meta = make(map[string]float64, nMeta)
	}
	for i := uint32(0); i < nMeta; i++ {
		kLen, err := readU32(b)
		if err != nil {
			return nil, err
		}
		if kLen > maxIDLen {
			return nil, fmt.Errorf("%w: meta key length %d", ErrBadFrame, kLen)
		}
		k := make([]byte, kLen)
		if _, err := io.ReadFull(b, k); err != nil {
			return nil, fmt.Errorf("%w: truncated meta", ErrBadFrame)
		}
		v, err := readU64(b)
		if err != nil {
			return nil, err
		}
		m.Meta[string(k)] = math.Float64frombits(v)
	}
	nElems, err := readU32(b)
	if err != nil {
		return nil, err
	}
	if nElems > MaxPayloadElems {
		return nil, fmt.Errorf("%w: payload elems %d", ErrBadFrame, nElems)
	}
	nBytes, err := readU32(b)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, nBytes)
	if _, err := io.ReadFull(b, raw); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrBadFrame)
	}
	if flags&flagFlate != 0 {
		fr := flate.NewReader(bytes.NewReader(raw))
		raw, err = io.ReadAll(io.LimitReader(fr, int64(nElems)*4+1))
		if err != nil {
			return nil, fmt.Errorf("%w: flate: %v", ErrBadFrame, err)
		}
	}
	if uint32(len(raw)) != nElems*4 {
		return nil, fmt.Errorf("%w: payload size %d for %d elems", ErrBadFrame, len(raw), nElems)
	}
	if nElems > 0 {
		m.Payload = make([]float32, nElems)
		for i := range m.Payload {
			m.Payload[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
		}
	}
	return m, nil
}

func payloadBytes(p []float32) []byte {
	out := make([]byte, len(p)*4)
	for i, v := range p {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated u32", ErrBadFrame)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated u64", ErrBadFrame)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}
