package link

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopKSparsifies(t *testing.T) {
	tk := &TopK{Keep: 0.1}
	u := make([]float32, 100)
	for i := range u {
		u[i] = float32(i + 1) // magnitudes 1..100
	}
	out, err := tk.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	if s := Sparsity(out); s < 0.89 || s > 0.91 {
		t.Fatalf("sparsity: got %v want ~0.9", s)
	}
	// The largest coordinates must survive.
	for i := 90; i < 100; i++ {
		if out[i] == 0 {
			t.Fatalf("top coordinate %d was dropped", i)
		}
	}
}

func TestTopKErrorFeedback(t *testing.T) {
	// A coordinate repeatedly below the threshold must eventually be sent
	// once its residual accumulates.
	tk := &TopK{Keep: 0.5}
	sent := float32(0)
	for round := 0; round < 10; round++ {
		u := []float32{0.1, 1.0} // index 0 always loses the top-k race
		out, err := tk.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		sent += out[0]
	}
	// With error feedback, when index 0 is finally transmitted it carries
	// the accumulated residual; over 10 rounds total mass ≈ 10·0.1 − final
	// residual. Without feedback sent would be exactly 0.
	if sent == 0 {
		t.Fatal("error feedback never flushed the small coordinate")
	}
}

func TestTopKValidation(t *testing.T) {
	if _, err := (&TopK{Keep: 0}).Apply([]float32{1}); err == nil {
		t.Fatal("keep=0 accepted")
	}
	if _, err := (&TopK{Keep: 1.5}).Apply([]float32{1}); err == nil {
		t.Fatal("keep>1 accepted")
	}
	tk := &TopK{Keep: 0.5}
	if _, err := tk.Apply(make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Apply(make([]float32, 5)); err == nil {
		t.Fatal("size change accepted")
	}
	// Keep=1 passes everything through.
	tk1 := &TopK{Keep: 1}
	u := []float32{1, -2, 3}
	out, err := tk1.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	if Sparsity(out) != 0 {
		t.Fatal("keep=1 must not sparsify")
	}
}

func TestQuantizeInt8RoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 1000)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	codes, scales, err := QuantizeInt8(v, 64)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DequantizeInt8(codes, scales, 64)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < len(scales); b++ {
		bound := float64(scales[b]) * 0.5001
		lo, hi := b*64, (b+1)*64
		if hi > len(v) {
			hi = len(v)
		}
		for i := lo; i < hi; i++ {
			if math.Abs(float64(back[i]-v[i])) > bound {
				t.Fatalf("elem %d: error %v exceeds half-step %v", i, back[i]-v[i], bound)
			}
		}
	}
}

func TestQuantizeInt8Degenerate(t *testing.T) {
	// All-zero block has scale 0 and reconstructs exactly.
	codes, scales, err := QuantizeInt8(make([]float32, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DequantizeInt8(codes, scales, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range back {
		if v != 0 {
			t.Fatal("zero vector not preserved")
		}
	}
	if _, _, err := QuantizeInt8([]float32{1}, 0); err == nil {
		t.Fatal("blockSize 0 accepted")
	}
	if _, err := DequantizeInt8(make([]int8, 10), []float32{1}, 4); err == nil {
		t.Fatal("mismatched scales accepted")
	}
}

func TestQuantize8PostProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := make([]float32, 500)
	for i := range u {
		u[i] = float32(rng.NormFloat64() * 0.01)
	}
	orig := append([]float32(nil), u...)
	out, err := Quantize8{}.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range out {
		if e := math.Abs(float64(out[i] - orig[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxErr == 0 {
		t.Fatal("quantization suspiciously lossless for random floats")
	}
	if maxErr > 0.001 { // generous: absmax/127/2 for 0.01-scale values
		t.Fatalf("quantization error too large: %v", maxErr)
	}
}

// Property: quantization error is always within half a step for arbitrary
// inputs and block sizes.
func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed int64, bsRaw uint8) bool {
		bs := 1 + int(bsRaw)%100
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2)))
		}
		codes, scales, err := QuantizeInt8(v, bs)
		if err != nil {
			return false
		}
		back, err := DequantizeInt8(codes, scales, bs)
		if err != nil {
			return false
		}
		for i := range v {
			if math.Abs(float64(back[i]-v[i])) > float64(scales[i/bs])*0.5001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestECDHSecAggCancellation(t *testing.T) {
	const n, dim = 4, 64
	parties, err := RunSecAggSession(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	plain := make([][]float32, n)
	masked := make([][]float32, n)
	for i := range plain {
		plain[i] = make([]float32, dim)
		masked[i] = make([]float32, dim)
		for k := range plain[i] {
			plain[i][k] = float32(rng.NormFloat64())
			masked[i][k] = plain[i][k]
		}
		if err := parties[i].Mask(masked[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Individual updates are hidden...
	hidden := false
	for k := range plain[0] {
		if plain[0][k] != masked[0][k] {
			hidden = true
			break
		}
	}
	if !hidden {
		t.Fatal("mask left update unchanged")
	}
	// ...but the sums agree.
	wantSum, err := SumMasked(plain)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := SumMasked(masked)
	if err != nil {
		t.Fatal(err)
	}
	for k := range wantSum {
		if math.Abs(float64(wantSum[k]-gotSum[k])) > 1e-3 {
			t.Fatalf("masks did not cancel at %d: %v vs %v", k, wantSum[k], gotSum[k])
		}
	}
}

func TestECDHSecAggPairwiseSeedsMatch(t *testing.T) {
	a, err := NewSecAggParty(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecAggParty(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AgreeWith(1, b.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.AgreeWith(0, a.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if a.seeds[1] != b.seeds[0] {
		t.Fatal("ECDH-derived pairwise seeds disagree")
	}
	if err := a.AgreeWith(0, a.PublicKey()); err == nil {
		t.Fatal("self-agreement accepted")
	}
	if err := a.AgreeWith(2, []byte{1, 2}); err == nil {
		t.Fatal("malformed peer key accepted")
	}
}

func TestRunSecAggSessionValidation(t *testing.T) {
	if _, err := RunSecAggSession(context.Background(), 1); err == nil {
		t.Fatal("single-party session accepted")
	}
	if p, err := NewSecAggParty(0); err != nil || p.Mask([]float32{1}) == nil {
		t.Fatal("masking without agreed peers should error")
	}
}
