package data

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMarkovSourceDeterministicStructure(t *testing.T) {
	s := NewMarkovSource("t", 64, 4, 1.5, 1)
	// Same context must always yield the same candidate set.
	for rank := 0; rank < 4; rank++ {
		a := s.candidate(3, rank)
		b := s.candidate(3, rank)
		if a != b {
			t.Fatal("candidate not deterministic")
		}
	}
	// Different contexts should (almost always) differ somewhere.
	same := true
	for rank := 0; rank < 4; rank++ {
		if s.candidate(3, rank) != s.candidate(8, rank) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct contexts produced identical candidate sets")
	}
}

func TestMarkovSampleInVocab(t *testing.T) {
	s := NewMarkovSource("t", 32, 5, 1.2, 2)
	rng := rand.New(rand.NewSource(1))
	out := make([]int, 1000)
	s.Sample(rng, out)
	for _, v := range out {
		if v < 0 || v >= 32 {
			t.Fatalf("token %d out of vocab", v)
		}
	}
}

func TestMarkovSampleReproducible(t *testing.T) {
	s := NewMarkovSource("t", 32, 5, 1.2, 2)
	a := make([]int, 100)
	b := make([]int, 100)
	s.Sample(rand.New(rand.NewSource(9)), a)
	s.Sample(rand.New(rand.NewSource(9)), b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same sequence")
		}
	}
}

func TestMarkovEntropyOrdering(t *testing.T) {
	lowH := NewMarkovSource("predictable", 64, 3, 2.5, 1)
	highH := NewMarkovSource("noisy", 64, 12, 0.8, 2)
	if lowH.Entropy() >= highH.Entropy() {
		t.Fatalf("entropy ordering wrong: %v vs %v", lowH.Entropy(), highH.Entropy())
	}
	if lowH.Entropy() <= 0 {
		t.Fatal("entropy must be positive for branch > 1")
	}
}

func TestSourcesAreStatisticallyDistinct(t *testing.T) {
	// Bigram distributions of two Pile-like sources must differ measurably —
	// this is the property the heterogeneity experiments rely on.
	srcs := PileLike(32)
	counts := make([]map[[2]int]float64, len(srcs))
	for i, s := range srcs {
		counts[i] = map[[2]int]float64{}
		rng := rand.New(rand.NewSource(5))
		out := make([]int, 20000)
		s.Sample(rng, out)
		for j := 1; j < len(out); j++ {
			counts[i][[2]int{out[j-1], out[j]}]++
		}
		for k := range counts[i] {
			counts[i][k] /= float64(len(out) - 1)
		}
	}
	l1 := func(a, b map[[2]int]float64) float64 {
		seen := map[[2]int]bool{}
		var d float64
		for k, v := range a {
			d += math.Abs(v - b[k])
			seen[k] = true
		}
		for k, v := range b {
			if !seen[k] {
				d += v
			}
		}
		return d
	}
	for i := 0; i < len(srcs); i++ {
		for j := i + 1; j < len(srcs); j++ {
			if d := l1(counts[i], counts[j]); d < 0.5 {
				t.Errorf("sources %s and %s too similar: L1=%v", srcs[i].Name(), srcs[j].Name(), d)
			}
		}
	}
}

func TestMixtureWeightsNormalized(t *testing.T) {
	parts := PileLike(16)
	m := NewMixtureSource("mix", parts, []float64{1, 2, 3, 4})
	var sum float64
	for _, w := range m.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights not normalized: sum %v", sum)
	}
	if m.Vocab() != 16 {
		t.Fatalf("mixture vocab: got %d", m.Vocab())
	}
}

func TestMixturePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { NewMixtureSource("m", nil, nil) },
		"mismatch":  func() { NewMixtureSource("m", PileLike(8), []float64{1}) },
		"negative":  func() { NewMixtureSource("m", PileLike(8), []float64{1, -1, 1, 1}) },
		"degenSrc":  func() { NewMarkovSource("s", 1, 1, 1, 0) },
		"zeroSkew":  func() { NewMarkovSource("s", 8, 2, 0, 0) },
		"zeroBrnch": func() { NewMarkovSource("s", 8, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSourceStreamBatchShape(t *testing.T) {
	st := NewSourceStream(C4Like(32), 1)
	b := st.NextBatch(3, 16)
	if len(b.Inputs) != 3 || len(b.Targets) != 3 {
		t.Fatalf("batch size: got %d/%d", len(b.Inputs), len(b.Targets))
	}
	for i := range b.Inputs {
		if len(b.Inputs[i]) != 16 || len(b.Targets[i]) != 16 {
			t.Fatal("sequence length wrong")
		}
		// Next-token alignment: target[t] == input[t+1].
		for j := 0; j < 15; j++ {
			if b.Targets[i][j] != b.Inputs[i][j+1] {
				t.Fatal("targets are not shifted inputs")
			}
		}
	}
}

func TestShardsDisjointStreams(t *testing.T) {
	src := C4Like(64)
	s0 := NewShard(src, 0, 100)
	s1 := NewShard(src, 1, 100)
	b0 := s0.NextBatch(1, 32)
	b1 := s1.NextBatch(1, 32)
	same := true
	for i := range b0.Inputs[0] {
		if b0.Inputs[0][i] != b1.Inputs[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different shards produced identical sequences")
	}
}

// TestShardSeedNoAffineCollision is the regression for the old
// baseSeed + shardID·1_000_003 shard seeding: corpora whose base seeds
// differ by a multiple of 1,000,003 landed on byte-identical shard streams
// at offset shard IDs. With mixed seeds, every (baseSeed, shardID) pair in
// the old collision family must produce a distinct stream.
func TestShardSeedNoAffineCollision(t *testing.T) {
	src := C4Like(64)
	draw := func(shardID int, baseSeed int64) []int {
		return NewShard(src, shardID, baseSeed).NextBatch(1, 64).Inputs[0]
	}
	for _, tc := range []struct {
		aShard int
		aBase  int64
		bShard int
		bBase  int64
	}{
		{1, 5, 0, 5 + 1_000_003},
		{3, 100, 1, 100 + 2*1_000_003},
		{2, -1_000_003, 3, -2 * 1_000_003},
	} {
		a := draw(tc.aShard, tc.aBase)
		b := draw(tc.bShard, tc.bBase)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("shard(%d,%d) and shard(%d,%d) produced identical streams",
				tc.aShard, tc.aBase, tc.bShard, tc.bBase)
		}
	}
	// Determinism: the same pair still yields the same stream.
	a, b := draw(1, 5), draw(1, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shard stream no longer deterministic for a fixed (baseSeed, shardID)")
		}
	}
}

func TestShardOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewShard(C4Like(8), NumShards, 0)
}

func TestMixStreamRespectsWeights(t *testing.T) {
	// A 0/1-weighted mix must only ever sample from the second stream.
	a := NewSourceStream(NewMarkovSource("a", 8, 2, 2, 1), 1)
	b := NewSourceStream(NewMarkovSource("b", 8, 2, 2, 2), 2)
	ref := NewSourceStream(NewMarkovSource("b", 8, 2, 2, 2), 2)
	m := NewMixStream([]Stream{a, b}, []float64{0, 1}, 3)
	got := m.NextBatch(4, 8)
	want := ref.NextBatch(4, 8)
	for i := range got.Inputs {
		for j := range got.Inputs[i] {
			if got.Inputs[i][j] != want.Inputs[i][j] {
				t.Fatal("zero-weighted stream was sampled")
			}
		}
	}
}

func TestCachingStreamReuse(t *testing.T) {
	inner := NewSourceStream(C4Like(32), 7)
	c := NewCachingStream(inner, 8, 1.0, 11) // always reuse once warm
	c.NextBatch(1, 16)                       // first miss fills the pool
	c.NextBatch(4, 16)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("cache stats: %+v", st)
	}
}

func TestCachingStreamNoReuse(t *testing.T) {
	inner := NewSourceStream(C4Like(32), 7)
	c := NewCachingStream(inner, 8, 0, 11)
	c.NextBatch(5, 16)
	if st := c.Stats(); st.Hits != 0 || st.Misses != 5 {
		t.Fatalf("cache stats with reuse=0: %+v", st)
	}
}

func TestCachingStreamConcurrentSafety(t *testing.T) {
	inner := NewSourceStream(C4Like(32), 7)
	c := NewCachingStream(inner, 16, 0.5, 11)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := c.NextBatch(2, 8)
				if len(b.Inputs) != 2 {
					t.Error("bad batch under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*20*2 {
		t.Fatalf("lost samples under concurrency: %+v", st)
	}
}

func TestIIDPartition(t *testing.T) {
	p, err := IIDPartition(C4Like(32), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClients() != 8 {
		t.Fatalf("clients: got %d", p.NumClients())
	}
	if h := p.HeterogeneityIndex(); h != 0 {
		t.Fatalf("IID partition should have heterogeneity 0, got %v", h)
	}
	if _, err := IIDPartition(C4Like(32), 0, 1); err == nil {
		t.Fatal("expected error for 0 clients")
	}
	if _, err := IIDPartition(C4Like(32), NumShards+1, 1); err == nil {
		t.Fatal("expected error for too many clients")
	}
}

func TestBySourcePartitionConfigs(t *testing.T) {
	srcs := PileLike(32)
	for _, n := range []int{4, 8, 16} { // the paper's three configurations
		p, err := BySourcePartition(srcs, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumClients() != n {
			t.Fatalf("n=%d: got %d clients", n, p.NumClients())
		}
		if h := p.HeterogeneityIndex(); h <= 0.5 {
			t.Fatalf("n=%d: heterogeneity too low: %v", n, h)
		}
	}
	if _, err := BySourcePartition(srcs, 6, 1); err == nil {
		t.Fatal("expected error for n not multiple of sources")
	}
	if _, err := BySourcePartition(nil, 4, 1); err == nil {
		t.Fatal("expected error for no sources")
	}
}

func TestValidationSetStable(t *testing.T) {
	v1 := NewValidationSet(C4Like(32), 4, 16, 99)
	v2 := NewValidationSet(C4Like(32), 4, 16, 99)
	for i := range v1.Batch.Inputs {
		for j := range v1.Batch.Inputs[i] {
			if v1.Batch.Inputs[i][j] != v2.Batch.Inputs[i][j] {
				t.Fatal("validation set not reproducible")
			}
		}
	}
}

// Property: any shard of any seed yields only in-vocab tokens with correct
// next-token alignment.
func TestShardBatchProperty(t *testing.T) {
	src := C4Like(48)
	f := func(seedRaw int64, shardRaw uint8) bool {
		shard := int(shardRaw) % NumShards
		s := NewShard(src, shard, seedRaw)
		b := s.NextBatch(2, 12)
		for i := range b.Inputs {
			for j := range b.Inputs[i] {
				if b.Inputs[i][j] < 0 || b.Inputs[i][j] >= 48 {
					return false
				}
				if j+1 < len(b.Inputs[i]) && b.Targets[i][j] != b.Inputs[i][j+1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a model can distinguish sources — cross-entropy of source A's
// bigram stats on source B's stream exceeds on its own stream. We proxy this
// by checking the empirical unigram distributions differ.
func TestHeterogeneityIndexBounds(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 4 * (1 + int(nRaw)%4) // 4, 8, 12, 16
		p, err := BySourcePartition(PileLike(16), n, 3)
		if err != nil {
			return false
		}
		h := p.HeterogeneityIndex()
		return h >= 0 && h <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
