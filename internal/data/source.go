// Package data implements Photon's Data Source (DS) substrate with synthetic
// corpora that stand in for C4 and The Pile.
//
// Real pre-training text is unavailable offline, so each source is an
// order-2 Markov process over the model vocabulary whose transition table is
// derived deterministically from a seed via hashing (no large tables are
// materialized). A language model trained on such a stream has a meaningful
// perplexity floor and a real learning curve, which is what the federated
// optimization experiments need. Distinct sources (different seeds, branch
// factors, and skews) produce statistically different streams, reproducing
// the between-client heterogeneity of The Pile's ArXiv / C4 / Wikipedia /
// Gutenberg split.
//
// The package also implements the DS mechanics from the paper: uniform
// sharding of a corpus into 64 shards, IID and by-source partitioning across
// clients, stream mixing with explicit sampling weights, and a caching,
// pre-tokenizing stream wrapper.
package data

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
)

// Source produces an endless token stream with a characteristic
// distribution.
type Source interface {
	// Name identifies the source ("arxiv", "c4", ...).
	Name() string
	// Vocab returns the vocabulary size tokens are drawn from.
	Vocab() int
	// Sample writes a sequence of tokens drawn from the source into out,
	// using rng for all randomness.
	Sample(rng *rand.Rand, out []int)
}

// MarkovSource is a first-order Markov chain over [0, Vocab) with an
// additional skewed "function word" component, mimicking natural-language
// statistics: with probability commonProb the next token is drawn from a
// small Zipf-distributed set of common tokens shared across all contexts;
// otherwise it is one of Branch context-specific candidates (derived from
// Seed by hashing) with probabilities proportional to (rank+1)^-Skew.
// Larger Skew means a more predictable (lower-entropy) source, and distinct
// Seeds give statistically distinct transition structure. The result is
// learnable by a small LM in two phases — unigram statistics first, then
// context-conditional structure — the same shape real LM loss curves have.
type MarkovSource struct {
	SourceName string
	VocabSize  int
	Branch     int     // candidate continuations per context (≥1)
	Skew       float64 // Zipf exponent over candidates (>0)
	Seed       uint64

	cdf       []float64 // cumulative distribution over candidate ranks
	commonCDF []float64 // cumulative distribution over common tokens
}

// commonProb is the probability mass given to the shared common-token
// component, and numCommon the size of that set.
const (
	commonProb = 0.35
	numCommon  = 8
)

// NewMarkovSource constructs a source; it panics on degenerate parameters
// (construction happens at experiment-definition time, not at runtime).
func NewMarkovSource(name string, vocab, branch int, skew float64, seed uint64) *MarkovSource {
	if vocab < 2 || branch < 1 || skew <= 0 {
		panic("data: degenerate MarkovSource parameters")
	}
	if branch > vocab {
		branch = vocab
	}
	s := &MarkovSource{SourceName: name, VocabSize: vocab, Branch: branch, Skew: skew, Seed: seed}
	s.cdf = zipfCDF(branch, skew)
	nc := numCommon
	if nc > vocab {
		nc = vocab
	}
	s.commonCDF = zipfCDF(nc, 1.2)
	return s
}

func zipfCDF(n int, skew float64) []float64 {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -skew)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

func sampleCDF(rng *rand.Rand, cdf []float64) int {
	r := rng.Float64()
	for i, c := range cdf {
		if r <= c {
			return i
		}
	}
	return len(cdf) - 1
}

// Name implements Source.
func (s *MarkovSource) Name() string { return s.SourceName }

// Vocab implements Source.
func (s *MarkovSource) Vocab() int { return s.VocabSize }

// candidate returns the rank-th context-specific candidate next-token for
// the single-token context a.
func (s *MarkovSource) candidate(a, rank int) int {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.Seed)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(a)*1_000_003)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(rank))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(s.VocabSize))
}

// Sample implements Source.
func (s *MarkovSource) Sample(rng *rand.Rand, out []int) {
	if len(out) == 0 {
		return
	}
	a := rng.Intn(s.VocabSize)
	for i := range out {
		var next int
		if rng.Float64() < commonProb {
			next = sampleCDF(rng, s.commonCDF)
		} else {
			next = s.candidate(a, sampleCDF(rng, s.cdf))
		}
		out[i] = next
		a = next
	}
}

// Entropy estimates the per-token entropy (nats) of the source's transition
// distribution — an upper bound on what an ideal model converges to (the
// perplexity floor is ≈ exp(H); candidate collisions make the true entropy
// slightly lower).
func (s *MarkovSource) Entropy() float64 {
	hRank := cdfEntropy(s.cdf)
	hCommon := cdfEntropy(s.commonCDF)
	p := commonProb
	hMix := -p*math.Log(p) - (1-p)*math.Log(1-p)
	return p*hCommon + (1-p)*hRank + hMix
}

func cdfEntropy(cdf []float64) float64 {
	var h, prev float64
	for _, c := range cdf {
		p := c - prev
		prev = c
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// MixtureSource samples each sequence from one of several sources chosen by
// weight, modeling a blended corpus such as C4's web crawl mix.
type MixtureSource struct {
	MixName string
	Parts   []Source
	Weights []float64 // normalized at construction

	cdf []float64
}

// NewMixtureSource builds a weighted mixture. Weights nil means uniform.
func NewMixtureSource(name string, parts []Source, weights []float64) *MixtureSource {
	if len(parts) == 0 {
		panic("data: empty mixture")
	}
	if weights == nil {
		weights = make([]float64, len(parts))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(parts) {
		panic("data: mixture weights length mismatch")
	}
	m := &MixtureSource{MixName: name, Parts: parts, Weights: make([]float64, len(weights))}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("data: negative mixture weight")
		}
		total += w
	}
	m.cdf = make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		m.Weights[i] = w / total
		acc += w / total
		m.cdf[i] = acc
	}
	return m
}

// Name implements Source.
func (m *MixtureSource) Name() string { return m.MixName }

// Vocab implements Source.
func (m *MixtureSource) Vocab() int { return m.Parts[0].Vocab() }

// Sample implements Source.
func (m *MixtureSource) Sample(rng *rand.Rand, out []int) {
	r := rng.Float64()
	for i, c := range m.cdf {
		if r <= c || i == len(m.cdf)-1 {
			m.Parts[i].Sample(rng, out)
			return
		}
	}
}

// C4Like builds the single blended corpus standing in for C4: a uniform mix
// of four web-style sub-distributions under one seed family.
func C4Like(vocab int) *MixtureSource {
	parts := []Source{
		NewMarkovSource("c4.news", vocab, 6, 1.3, 0xC401),
		NewMarkovSource("c4.blogs", vocab, 8, 1.1, 0xC402),
		NewMarkovSource("c4.forums", vocab, 10, 1.0, 0xC403),
		NewMarkovSource("c4.docs", vocab, 5, 1.5, 0xC404),
	}
	return NewMixtureSource("c4", parts, nil)
}

// PileLike builds the four statistically distinct sources standing in for
// the paper's Pile subset: ArXiv (academic), C4 (internet), Wikipedia
// (internet), and Gutenberg (prose). They differ in branch factor and skew,
// so clients holding different sources see genuinely different distributions.
func PileLike(vocab int) []Source {
	return []Source{
		NewMarkovSource("arxiv", vocab, 4, 1.8, 0x9117E1),
		NewMarkovSource("c4", vocab, 10, 1.0, 0x9117E2),
		NewMarkovSource("wikipedia", vocab, 7, 1.2, 0x9117E3),
		NewMarkovSource("gutenberg", vocab, 5, 1.5, 0x9117E4),
	}
}
