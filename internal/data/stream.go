package data

import (
	"math/rand"
	"sync"

	"photon/internal/nn"
)

// Stream yields training batches, the interface between a Photon Data Source
// and an LLM client's training pipeline (BindStream in Algorithm 1).
type Stream interface {
	// NextBatch returns batchSize sequences of length seqLen with next-token
	// targets.
	NextBatch(batchSize, seqLen int) nn.Batch
}

// SourceStream draws every sequence from a single Source using an owned RNG,
// so concurrent clients never contend on shared randomness.
type SourceStream struct {
	Src Source
	rng *rand.Rand
}

// NewSourceStream creates a deterministic stream over src.
func NewSourceStream(src Source, seed int64) *SourceStream {
	return &SourceStream{Src: src, rng: rand.New(rand.NewSource(seed))}
}

// NextBatch implements Stream.
func (s *SourceStream) NextBatch(batchSize, seqLen int) nn.Batch {
	return sampleBatch(s.rng, s.Src, batchSize, seqLen)
}

func sampleBatch(rng *rand.Rand, src Source, batchSize, seqLen int) nn.Batch {
	b := nn.Batch{
		Inputs:  make([][]int, batchSize),
		Targets: make([][]int, batchSize),
	}
	buf := make([]int, seqLen+1)
	for i := 0; i < batchSize; i++ {
		src.Sample(rng, buf)
		in := make([]int, seqLen)
		tg := make([]int, seqLen)
		copy(in, buf[:seqLen])
		copy(tg, buf[1:])
		b.Inputs[i] = in
		b.Targets[i] = tg
	}
	return b
}

// NumShards is the paper's C4 partitioning granularity: the dataset is split
// uniformly into 64 equally sized shards, and "N clients" means N of these.
const NumShards = 64

// Shard is one of the NumShards uniform slices of a corpus. Shards of the
// same corpus share the distribution but have disjoint RNG streams, modeling
// disjoint document subsets.
type Shard struct {
	Src     Source
	ShardID int
	rng     *rand.Rand
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix in which
// every input bit affects every output bit.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shardSeed mixes (baseSeed, shardID) into a stream seed. The previous
// affine form baseSeed + shardID·1_000_003 collided: two corpora whose base
// seeds differ by a multiple of 1,000,003 produced byte-identical shard
// streams at offset shard IDs. Mixing the base seed through splitmix64
// before folding in the shard ID (and mixing again) leaves no affine
// relation between inputs and outputs.
func shardSeed(baseSeed int64, shardID int) int64 {
	return int64(mix64(mix64(uint64(baseSeed)) + 0x9E3779B97F4A7C15*uint64(shardID)))
}

// NewShard creates shard shardID of the corpus identified by baseSeed.
func NewShard(src Source, shardID int, baseSeed int64) *Shard {
	if shardID < 0 || shardID >= NumShards {
		panic("data: shard id out of range")
	}
	return &Shard{Src: src, ShardID: shardID,
		rng: rand.New(rand.NewSource(shardSeed(baseSeed, shardID)))}
}

// NextBatch implements Stream.
func (s *Shard) NextBatch(batchSize, seqLen int) nn.Batch {
	return sampleBatch(s.rng, s.Src, batchSize, seqLen)
}

// MixStream interleaves several streams with explicit sampling weights,
// implementing the paper's "mixing arbitrary data streams with precise
// control over sampling across such streams".
type MixStream struct {
	Streams []Stream
	cdf     []float64
	rng     *rand.Rand
}

// NewMixStream mixes streams with the given weights (nil = uniform).
func NewMixStream(streams []Stream, weights []float64, seed int64) *MixStream {
	if len(streams) == 0 {
		panic("data: empty MixStream")
	}
	if weights == nil {
		weights = make([]float64, len(streams))
		for i := range weights {
			weights[i] = 1
		}
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	m := &MixStream{Streams: streams, rng: rand.New(rand.NewSource(seed))}
	acc := 0.0
	for _, w := range weights {
		acc += w / total
		m.cdf = append(m.cdf, acc)
	}
	return m
}

// NextBatch implements Stream: each sequence in the batch is drawn from a
// weighted-random component stream.
func (m *MixStream) NextBatch(batchSize, seqLen int) nn.Batch {
	out := nn.Batch{}
	for i := 0; i < batchSize; i++ {
		r := m.rng.Float64()
		k := len(m.cdf) - 1
		for j, c := range m.cdf {
			if r <= c {
				k = j
				break
			}
		}
		one := m.Streams[k].NextBatch(1, seqLen)
		out.Inputs = append(out.Inputs, one.Inputs[0])
		out.Targets = append(out.Targets, one.Targets[0])
	}
	return out
}

// CacheStats reports the effectiveness of a CachingStream.
type CacheStats struct {
	Hits, Misses int
}

// CachingStream models the DS optimization of caching pre-tokenized
// sequences: it keeps a bounded pool of previously produced sequences and
// replays them with probability ReuseProb, trading a small amount of sample
// freshness for large savings in tokenization/transfer cost. It is safe for
// concurrent use.
type CachingStream struct {
	Inner     Stream
	Capacity  int
	ReuseProb float64

	mu    sync.Mutex
	rng   *rand.Rand
	pool  []cachedSeq
	stats CacheStats
}

type cachedSeq struct{ in, tg []int }

// NewCachingStream wraps inner with a cache of at most capacity sequences.
func NewCachingStream(inner Stream, capacity int, reuseProb float64, seed int64) *CachingStream {
	if capacity < 1 {
		capacity = 1
	}
	return &CachingStream{Inner: inner, Capacity: capacity, ReuseProb: reuseProb,
		rng: rand.New(rand.NewSource(seed))}
}

// NextBatch implements Stream.
func (c *CachingStream) NextBatch(batchSize, seqLen int) nn.Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := nn.Batch{}
	for i := 0; i < batchSize; i++ {
		if len(c.pool) > 0 && c.rng.Float64() < c.ReuseProb {
			s := c.pool[c.rng.Intn(len(c.pool))]
			if len(s.in) == seqLen {
				out.Inputs = append(out.Inputs, s.in)
				out.Targets = append(out.Targets, s.tg)
				c.stats.Hits++
				continue
			}
		}
		one := c.Inner.NextBatch(1, seqLen)
		c.stats.Misses++
		out.Inputs = append(out.Inputs, one.Inputs[0])
		out.Targets = append(out.Targets, one.Targets[0])
		if len(c.pool) < c.Capacity {
			c.pool = append(c.pool, cachedSeq{one.Inputs[0], one.Targets[0]})
		} else {
			c.pool[c.rng.Intn(len(c.pool))] = cachedSeq{one.Inputs[0], one.Targets[0]}
		}
	}
	return out
}

// Stats returns a snapshot of cache effectiveness counters.
func (c *CachingStream) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ValidationSet is a fixed batch of held-out sequences used to compute
// comparable perplexities across training methods.
type ValidationSet struct {
	Batch nn.Batch
}

// NewValidationSet draws n held-out sequences from src with a dedicated seed
// disjoint from all shard seeds.
func NewValidationSet(src Source, n, seqLen int, seed int64) *ValidationSet {
	rng := rand.New(rand.NewSource(seed))
	return &ValidationSet{Batch: sampleBatch(rng, src, n, seqLen)}
}

// Evaluate returns validation perplexity of the model.
func (v *ValidationSet) Evaluate(m *nn.Model) float64 {
	return nn.Perplexity(m.Loss(v.Batch))
}
