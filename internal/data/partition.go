package data

import "fmt"

// Partition assigns a data stream to each federated client.
type Partition struct {
	// ClientStreams[i] is the stream bound to client i (BindStream in
	// Algorithm 1).
	ClientStreams []Stream
	// SourceNames[i] describes client i's data for reporting.
	SourceNames []string
}

// NumClients returns the partition's client count.
func (p *Partition) NumClients() int { return len(p.ClientStreams) }

// IIDPartition models the paper's C4 setup: a single corpus is split into
// NumShards uniform shards and each of n clients receives one shard.
// All clients therefore share the data distribution (IID) while holding
// disjoint data.
func IIDPartition(src Source, n int, baseSeed int64) (*Partition, error) {
	if n < 1 || n > NumShards {
		return nil, fmt.Errorf("data: IID partition supports 1..%d clients, got %d", NumShards, n)
	}
	p := &Partition{}
	for i := 0; i < n; i++ {
		p.ClientStreams = append(p.ClientStreams, NewShard(src, i, baseSeed))
		p.SourceNames = append(p.SourceNames, fmt.Sprintf("%s/shard%02d", src.Name(), i))
	}
	return p, nil
}

// BySourcePartition models the paper's Pile heterogeneity setup (§5.1):
// with S underlying sources and n = S·k clients, each source is split into k
// clients, so every client holds data from exactly one source. The paper's
// configurations are 4 clients (one source each), 8 (each source split in
// two), and 16 (each split in four).
func BySourcePartition(sources []Source, n int, baseSeed int64) (*Partition, error) {
	s := len(sources)
	if s == 0 {
		return nil, fmt.Errorf("data: no sources")
	}
	if n%s != 0 {
		return nil, fmt.Errorf("data: client count %d must be a multiple of source count %d", n, s)
	}
	k := n / s
	p := &Partition{}
	for si, src := range sources {
		for j := 0; j < k; j++ {
			shardID := (si*k + j) % NumShards
			p.ClientStreams = append(p.ClientStreams, NewShard(src, shardID, baseSeed+int64(si)*7919))
			p.SourceNames = append(p.SourceNames, fmt.Sprintf("%s/part%d", src.Name(), j))
		}
	}
	return p, nil
}

// HeterogeneityIndex quantifies how non-IID a partition is as the fraction
// of client pairs whose streams come from different underlying sources
// (0 = fully IID, approaching 1 = every client distinct).
func (p *Partition) HeterogeneityIndex() float64 {
	n := len(p.SourceNames)
	if n < 2 {
		return 0
	}
	root := func(s string) string {
		for i := 0; i < len(s); i++ {
			if s[i] == '/' {
				return s[:i]
			}
		}
		return s
	}
	diff, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if root(p.SourceNames[i]) != root(p.SourceNames[j]) {
				diff++
			}
		}
	}
	return float64(diff) / float64(pairs)
}
