// Package metrics collects and renders training measurements: per-round
// histories with perplexity/loss series, the AggMetrics reduction from
// Algorithm 1, time-to-target queries used by the wall-time experiments, and
// plain-text table/series renderers for the benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"photon/internal/obsv"
)

// Round is one federated round's (or centralized eval interval's) record.
type Round struct {
	Round      int
	TrainLoss  float64 // mean client training loss (nats/token)
	ValPPL     float64 // global model validation perplexity (0 = not evaluated)
	UpdateNorm float64 // L2 norm of the aggregated pseudo-gradient
	SimSeconds float64 // simulated wall-clock time consumed up to this round
	Clients    int     // participating clients
	CommBytes  int64   // model/update bytes exchanged this round (down + up)

	// Wire-codec accounting. For the networked backends the byte counts
	// are measured on the wire (frame headers and heartbeats included);
	// the in-process simulator counts encoded payload bytes. Zero when the
	// backend predates codec accounting.
	WireSentBytes    int64   // bytes sent during the round's window
	WireRecvBytes    int64   // bytes received during the round's window
	CompressionRatio float64 // encoded payload bytes / dense float32 bytes (1 = dense, 0 = unknown)
	EncodeMs         float64 // payload encode wall time this round, milliseconds
	DecodeMs         float64 // payload decode wall time this round, milliseconds

	// Hierarchical-aggregation position. Tier is the emitting node's
	// distance from the global aggregator (0 = root, 1 = a relay's own
	// records). Depth is the number of aggregation tiers at or below the
	// emitting node: 1 for a flat aggregation, 2 when the node's children
	// are themselves relays; 0 means the backend predates tier accounting
	// (or it does not apply, e.g. centralized training).
	Tier  int
	Depth int

	// Elastic-membership churn attributed to this round (networked
	// aggregator only; zero for the in-process backends). Churn is
	// windowed between recorded rounds, so the initial cohort's joins
	// land on round 1 by design.
	Joins             int     // members that joined (first time or rejoin)
	Evictions         int     // members evicted on failure or missed heartbeats
	Stragglers        int     // cohort slots dropped at the round deadline
	HeartbeatRTTMs    float64 // mean heartbeat round-trip observed, milliseconds
	HeartbeatRTTP99Ms float64 // p99 heartbeat round-trip (recent-window sketch)

	// Observability. TraceID is the round-scoped trace identifier the root
	// aggregator mints and propagates down the tree, so a relay's records
	// attribute to the root round that caused them (zero when the backend
	// predates tracing). Phases is the per-phase critical-path breakdown;
	// WallMs the measured round wall time it approximates. SlowestID and
	// SlowestPhase attribute the straggler: which member finished last and
	// in which phase it spent the most time.
	TraceID      uint64
	WallMs       float64
	Phases       obsv.Breakdown
	SlowestID    string
	SlowestPhase string

	// Asynchronous (FedBuff-mode) aggregation. ModelVersion is the global
	// model version after this record's commit (0 when the aggregator runs
	// the synchronous round loop). BufferFill is the number of updates
	// folded into the commit's staleness-weighted buffer, and MeanStaleness
	// their mean staleness in versions (0 = every update trained on the
	// freshest model).
	ModelVersion  int
	BufferFill    int
	MeanStaleness float64
}

// History is an append-only sequence of round records.
type History struct {
	Rounds []Round
}

// Append adds a record.
func (h *History) Append(r Round) { h.Rounds = append(h.Rounds, r) }

// Len returns the number of records.
func (h *History) Len() int { return len(h.Rounds) }

// FinalPPL returns the last evaluated validation perplexity, or +Inf when
// nothing was evaluated.
func (h *History) FinalPPL() float64 {
	for i := len(h.Rounds) - 1; i >= 0; i-- {
		if h.Rounds[i].ValPPL > 0 {
			return h.Rounds[i].ValPPL
		}
	}
	return math.Inf(1)
}

// BestPPL returns the minimum evaluated perplexity, or +Inf.
func (h *History) BestPPL() float64 {
	best := math.Inf(1)
	for _, r := range h.Rounds {
		if r.ValPPL > 0 && r.ValPPL < best {
			best = r.ValPPL
		}
	}
	return best
}

// TimeToPPL returns the simulated seconds at which validation perplexity
// first reached target (linearly interpolated between evaluations), and
// false when the run never reached it.
func (h *History) TimeToPPL(target float64) (float64, bool) {
	prevT, prevP := 0.0, math.Inf(1)
	for _, r := range h.Rounds {
		if r.ValPPL <= 0 {
			continue
		}
		if r.ValPPL <= target {
			if math.IsInf(prevP, 1) || prevP <= target {
				return r.SimSeconds, true
			}
			// Interpolate crossing between (prevT, prevP) and (r.SimSeconds, r.ValPPL).
			frac := (prevP - target) / (prevP - r.ValPPL)
			return prevT + frac*(r.SimSeconds-prevT), true
		}
		prevT, prevP = r.SimSeconds, r.ValPPL
	}
	return 0, false
}

// RoundsToPPL returns the first round index whose evaluation hit the target.
func (h *History) RoundsToPPL(target float64) (int, bool) {
	for _, r := range h.Rounds {
		if r.ValPPL > 0 && r.ValPPL <= target {
			return r.Round, true
		}
	}
	return 0, false
}

// PPLSeries returns (round, perplexity) pairs for evaluated rounds.
func (h *History) PPLSeries() (rounds []int, ppls []float64) {
	for _, r := range h.Rounds {
		if r.ValPPL > 0 {
			rounds = append(rounds, r.Round)
			ppls = append(ppls, r.ValPPL)
		}
	}
	return rounds, ppls
}

// AggMetrics averages scalar client metrics key-by-key (Algorithm 1 line 10).
// Keys missing from some clients are averaged over the clients that report
// them.
func AggMetrics(clients []map[string]float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, m := range clients {
		for k, v := range m {
			sums[k] += v
			counts[k]++
		}
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// Table renders an aligned plain-text table. Ragged rows are handled on
// both sides: rows wider than the header grow extra (unlabeled) columns
// rather than panicking, and shorter rows are padded with empty cells.
func Table(headers []string, rows [][]string) string {
	cols := len(headers)
	for _, row := range rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series renders (x, y) pairs as "x<TAB>y" lines with a header, the format
// the figure benches print so curves can be plotted or diffed directly.
func Series(name, xLabel, yLabel string, xs []int, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n%s\t%s\n", name, xLabel, yLabel)
	for i := range xs {
		fmt.Fprintf(&b, "%d\t%.4f\n", xs[i], ys[i])
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order for deterministic rendering.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
