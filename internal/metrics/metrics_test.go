package metrics

import (
	"math"
	"strings"
	"testing"
)

func historyWithPPLs(ppls []float64) *History {
	h := &History{}
	for i, p := range ppls {
		h.Append(Round{Round: i + 1, ValPPL: p, SimSeconds: float64(i+1) * 100})
	}
	return h
}

func TestFinalAndBestPPL(t *testing.T) {
	h := historyWithPPLs([]float64{50, 40, 35, 38})
	if got := h.FinalPPL(); got != 38 {
		t.Fatalf("FinalPPL: got %v", got)
	}
	if got := h.BestPPL(); got != 35 {
		t.Fatalf("BestPPL: got %v", got)
	}
	empty := &History{}
	if !math.IsInf(empty.FinalPPL(), 1) || !math.IsInf(empty.BestPPL(), 1) {
		t.Fatal("empty history should report +Inf")
	}
}

func TestFinalPPLSkipsUnevaluatedRounds(t *testing.T) {
	h := &History{}
	h.Append(Round{Round: 1, ValPPL: 42})
	h.Append(Round{Round: 2}) // not evaluated
	if got := h.FinalPPL(); got != 42 {
		t.Fatalf("FinalPPL should skip ValPPL=0 rounds: got %v", got)
	}
}

func TestTimeToPPL(t *testing.T) {
	h := historyWithPPLs([]float64{50, 40, 30})
	// Exact hit at the third eval (t=300).
	if got, ok := h.TimeToPPL(30); !ok || got != 300 {
		t.Fatalf("TimeToPPL(30): got %v, %v", got, ok)
	}
	// Interpolated: target 35 is halfway between 40 (t=200) and 30 (t=300).
	got, ok := h.TimeToPPL(35)
	if !ok || math.Abs(got-250) > 1e-9 {
		t.Fatalf("TimeToPPL(35): got %v, %v", got, ok)
	}
	// Unreachable target.
	if _, ok := h.TimeToPPL(10); ok {
		t.Fatal("unreached target reported as hit")
	}
	// First evaluation already below target.
	if got, ok := h.TimeToPPL(60); !ok || got != 100 {
		t.Fatalf("first-eval hit: got %v, %v", got, ok)
	}
}

func TestTimeToPPLEdges(t *testing.T) {
	// Target hit exactly on the very first evaluation: no interpolation
	// from the implicit (0, +Inf) start, the first eval's time is returned.
	h := historyWithPPLs([]float64{40})
	if got, ok := h.TimeToPPL(40); !ok || got != 100 {
		t.Fatalf("exact first-eval hit: got %v, %v", got, ok)
	}

	// Non-monotone series: PPL rises back above the target after dipping.
	// The first crossing wins and later rebounds don't disturb it.
	h = historyWithPPLs([]float64{50, 30, 45, 28})
	got, ok := h.TimeToPPL(35)
	if !ok {
		t.Fatal("non-monotone series never reported the crossing")
	}
	// Crossing interpolates between (100, 50) and (200, 30): 35 is 3/4 of
	// the way down, so t = 100 + 0.75*100 = 175.
	if math.Abs(got-175) > 1e-9 {
		t.Fatalf("non-monotone first crossing: got %v, want 175", got)
	}

	// A series whose first evaluated round already beats the target must
	// return that round's time without interpolating back toward t=0.
	h = historyWithPPLs([]float64{20, 18, 15})
	if got, ok := h.TimeToPPL(35); !ok || got != 100 {
		t.Fatalf("first-eval-beats-target: got %v, %v", got, ok)
	}
	// Same, but with unevaluated rounds before the first evaluation.
	h = &History{}
	h.Append(Round{Round: 1, SimSeconds: 50}) // not evaluated
	h.Append(Round{Round: 2, ValPPL: 20, SimSeconds: 120})
	if got, ok := h.TimeToPPL(35); !ok || got != 120 {
		t.Fatalf("skip-unevaluated first hit: got %v, %v", got, ok)
	}
}

func TestRoundsToPPL(t *testing.T) {
	h := historyWithPPLs([]float64{50, 40, 30})
	if r, ok := h.RoundsToPPL(40); !ok || r != 2 {
		t.Fatalf("RoundsToPPL: got %d, %v", r, ok)
	}
	if _, ok := h.RoundsToPPL(1); ok {
		t.Fatal("unreached round target reported")
	}
}

func TestPPLSeries(t *testing.T) {
	h := &History{}
	h.Append(Round{Round: 1, ValPPL: 50})
	h.Append(Round{Round: 2})
	h.Append(Round{Round: 3, ValPPL: 40})
	rounds, ppls := h.PPLSeries()
	if len(rounds) != 2 || rounds[1] != 3 || ppls[1] != 40 {
		t.Fatalf("series: %v %v", rounds, ppls)
	}
}

func TestAggMetrics(t *testing.T) {
	got := AggMetrics([]map[string]float64{
		{"loss": 2, "steps": 10},
		{"loss": 4, "steps": 10, "extra": 7},
	})
	if got["loss"] != 3 {
		t.Fatalf("loss: got %v", got["loss"])
	}
	if got["steps"] != 10 {
		t.Fatalf("steps: got %v", got["steps"])
	}
	// Keys present in only one client average over reporters.
	if got["extra"] != 7 {
		t.Fatalf("extra: got %v", got["extra"])
	}
	if len(AggMetrics(nil)) != 0 {
		t.Fatal("empty aggregation should be empty")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"a", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("bad header: %q", lines[0])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned: %q vs %q", lines[0], lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	// A row wider than the header must not panic and must render every cell.
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1", "surplus"},
		{"b"}, // narrower than the header
		{"c", "3"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "surplus") {
		t.Fatalf("extra cell dropped: %q", lines[2])
	}
	// Every line pads to the same full width, including the short row.
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[0]) {
			t.Fatalf("line %d width %d != header width %d:\n%s", i, len(lines[i]), len(lines[0]), out)
		}
	}
	// Extra columns align: the separator covers the surplus column too.
	if !strings.HasSuffix(lines[1], strings.Repeat("-", len("surplus"))) {
		t.Fatalf("separator missing surplus column: %q", lines[1])
	}
}

func TestSeriesFormat(t *testing.T) {
	out := Series("fig", "round", "ppl", []int{1, 2}, []float64{50, 40.5})
	if !strings.Contains(out, "# fig") || !strings.Contains(out, "2\t40.5000") {
		t.Fatalf("bad series output:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if strings.Join(keys, "") != "abc" {
		t.Fatalf("keys not sorted: %v", keys)
	}
}
