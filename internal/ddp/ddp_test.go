package ddp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"photon/internal/data"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/topo"
)

func tinyCfg() nn.Config {
	c := nn.ConfigTiny
	c.SeqLen = 16
	return c
}

func makeStreams(n int) []data.Stream {
	src := data.C4Like(tinyCfg().VocabSize)
	streams := make([]data.Stream, n)
	for i := range streams {
		streams[i] = data.NewShard(src, i, 7)
	}
	return streams
}

func baseConfig(workers int) Config {
	cfg := tinyCfg()
	return Config{
		ModelConfig: cfg,
		Seed:        1,
		Steps:       30,
		Workers:     workers,
		BatchSize:   4,
		SeqLen:      16,
		Schedule:    opt.Constant(3e-3),
		ClipNorm:    1,
		Streams:     makeStreams(workers),
		Validation:  data.NewValidationSet(data.C4Like(cfg.VocabSize), 8, 16, 999),
		EvalEvery:   10,
	}
}

func TestRingAllReduceSums(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		length := 13 // deliberately not divisible by n
		buffers := make([][]float32, n)
		want := make([]float32, length)
		rng := rand.New(rand.NewSource(int64(n)))
		for w := range buffers {
			buffers[w] = make([]float32, length)
			for i := range buffers[w] {
				buffers[w][i] = float32(rng.NormFloat64())
				want[i] += buffers[w][i]
			}
		}
		if err := RingAllReduce(buffers); err != nil {
			t.Fatal(err)
		}
		for w := range buffers {
			for i := range want {
				if math.Abs(float64(buffers[w][i]-want[i])) > 1e-4 {
					t.Fatalf("n=%d worker %d elem %d: got %v want %v", n, w, i, buffers[w][i], want[i])
				}
			}
		}
	}
}

func TestRingAllReduceEdgeCases(t *testing.T) {
	if err := RingAllReduce(nil); err == nil {
		t.Fatal("empty buffer set accepted")
	}
	one := [][]float32{{1, 2, 3}}
	if err := RingAllReduce(one); err != nil {
		t.Fatal(err)
	}
	if one[0][0] != 1 {
		t.Fatal("single worker should be a no-op")
	}
	if err := RingAllReduce([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged buffers accepted")
	}
	empty := [][]float32{{}, {}}
	if err := RingAllReduce(empty); err != nil {
		t.Fatal("zero-length buffers should be a no-op")
	}
}

// Property: RingAllReduce matches a direct sum for arbitrary sizes.
func TestRingAllReduceProperty(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		n := 2 + int(nRaw)%6
		length := 1 + int(lRaw)%40
		rng := rand.New(rand.NewSource(seed))
		buffers := make([][]float32, n)
		want := make([]float32, length)
		for w := range buffers {
			buffers[w] = make([]float32, length)
			for i := range buffers[w] {
				buffers[w][i] = float32(rng.NormFloat64())
				want[i] += buffers[w][i]
			}
		}
		if err := RingAllReduce(buffers); err != nil {
			return false
		}
		for w := range buffers {
			for i := range want {
				if math.Abs(float64(buffers[w][i]-want[i])) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCentralizedSingleWorkerConverges(t *testing.T) {
	cfg := baseConfig(1)
	cfg.Steps = 120
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.History.FinalPPL(); got > 40 {
		t.Fatalf("centralized run did not converge: ppl %v", got)
	}
}

func TestDDPWorkersStayInSync(t *testing.T) {
	cfg := baseConfig(3)
	cfg.Steps = 10
	// Run manually to access all worker replicas: reuse Run but verify via
	// a second run with a different worker count producing the same global
	// dynamics is too loose — instead check the invariant directly through
	// a custom small harness.
	res1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the same config must be deterministic.
	cfg2 := baseConfig(3)
	cfg2.Steps = 10
	res2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !ParamsEqual(res1.FinalModel, res2.FinalModel) {
		t.Fatal("DDP run not deterministic")
	}
}

func TestDDPMatchesLargeBatchSingleWorker(t *testing.T) {
	// 2 workers with batch B must follow the same trajectory as 1 worker
	// with the two micro-batches concatenated (gradient averaging
	// equivalence). We verify loosely via final validation perplexity.
	two := baseConfig(2)
	two.Steps = 60
	resTwo, err := Run(context.Background(), two)
	if err != nil {
		t.Fatal(err)
	}
	one := baseConfig(1)
	one.Steps = 60
	one.BatchSize = 8 // = 2 workers × 4
	resOne, err := Run(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := resOne.History.FinalPPL(), resTwo.History.FinalPPL()
	if math.Abs(p1-p2)/p1 > 0.25 {
		t.Fatalf("DDP and large-batch trajectories diverged: %v vs %v", p1, p2)
	}
}

func TestRunValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.SeqLen = 0 },
		func(c *Config) { c.Schedule = nil },
		func(c *Config) { c.Streams = c.Streams[:1] },
	} {
		cfg := baseConfig(2)
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunSimulatedTimeChargesPerStep(t *testing.T) {
	cfg := baseConfig(2)
	cfg.Steps = 4
	cfg.EvalEvery = 1
	cfg.TimeModel = &topo.Model{ModelSizeMB: 10, BandwidthMBps: 100, Throughput: 2, LocalSteps: 999}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	perStep := 1/2.0 + 2*10.0*(2-1)/(2*100.0) // compute + RAR comm per step
	last := res.History.Rounds[len(res.History.Rounds)-1]
	if math.Abs(last.SimSeconds-4*perStep) > 1e-9 {
		t.Fatalf("sim time: got %v want %v", last.SimSeconds, 4*perStep)
	}
}

func TestRunStopAtPPL(t *testing.T) {
	cfg := baseConfig(1)
	cfg.Steps = 500
	cfg.EvalEvery = 5
	cfg.StopAtPPL = 60
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History.Rounds[len(res.History.Rounds)-1]
	if last.Round >= 500 {
		t.Fatal("early stop did not trigger")
	}
	if last.ValPPL > 60 {
		t.Fatalf("stopped above target: %v", last.ValPPL)
	}
}
