package ddp

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"photon/internal/data"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/opt"
	"photon/internal/topo"
)

// Config describes a centralized training run (Algorithm 2). Workers = 1 is
// plain single-worker training; Workers > 1 is synchronous DDP with a
// Ring-AllReduce gradient average every step.
type Config struct {
	ModelConfig nn.Config
	Seed        int64

	Steps     int
	Workers   int
	BatchSize int // per-worker micro-batch; global batch = Workers·BatchSize
	SeqLen    int
	Schedule  opt.Schedule
	ClipNorm  float64
	// NewOptimizer builds one optimizer per worker (identical construction
	// keeps replicas in lockstep). Nil defaults to AdamW with the model
	// config's betas and 0.01 weight decay.
	NewOptimizer func() opt.Optimizer

	// Streams provides each worker's data; length must equal Workers.
	Streams []data.Stream

	Validation *data.ValidationSet
	EvalEvery  int // evaluate every this many steps (0 → every 50)
	StopAtPPL  float64

	// TimeModel, when set, accrues simulated wall time with the DDP cost
	// structure: local compute per step plus a per-step RAR gradient
	// exchange among Workers.
	TimeModel *topo.Model

	// OnRound, when non-nil, is called synchronously with each evaluation
	// record right after it is appended to the history.
	OnRound func(metrics.Round)
}

func (c *Config) validate() error {
	if err := c.ModelConfig.Validate(); err != nil {
		return err
	}
	switch {
	case c.Steps <= 0:
		return fmt.Errorf("ddp: Steps must be positive, got %d", c.Steps)
	case c.Workers <= 0:
		return fmt.Errorf("ddp: Workers must be positive, got %d", c.Workers)
	case c.BatchSize <= 0:
		return fmt.Errorf("ddp: BatchSize must be positive, got %d", c.BatchSize)
	case c.SeqLen <= 0:
		return fmt.Errorf("ddp: SeqLen must be positive, got %d", c.SeqLen)
	case c.Schedule == nil:
		return fmt.Errorf("ddp: Schedule must be set")
	case len(c.Streams) != c.Workers:
		return fmt.Errorf("ddp: %d streams for %d workers", len(c.Streams), c.Workers)
	}
	return nil
}

// Result is a finished centralized run.
type Result struct {
	History    *metrics.History
	FinalModel *nn.Model
}

// Run executes Algorithm 2: all workers start from the same initialization,
// and every step computes local gradients, averages them with a real
// concurrent Ring-AllReduce, and applies identical optimizer updates, so the
// replicas remain bit-identical throughout (verified in tests).
//
// Cancelling ctx stops the run between steps; Run then returns the partial
// Result accumulated so far together with ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	initRng := rand.New(rand.NewSource(cfg.Seed))
	master := nn.NewModel(cfg.ModelConfig, initRng)
	init := master.Params().Flatten(nil)

	workers := make([]*nn.Model, cfg.Workers)
	opts := make([]opt.Optimizer, cfg.Workers)
	newOpt := cfg.NewOptimizer
	if newOpt == nil {
		mc := cfg.ModelConfig
		newOpt = func() opt.Optimizer { return opt.NewAdamW(mc.Beta1, mc.Beta2, 0.01) }
	}
	for w := range workers {
		workers[w] = nn.NewModel(cfg.ModelConfig, rand.New(rand.NewSource(1)))
		if err := workers[w].Params().LoadFlat(init); err != nil {
			return nil, err
		}
		opts[w] = newOpt()
	}

	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 50
	}
	hist := &metrics.History{}
	simTime := 0.0
	// Per-step scratch is hoisted out of the loop and every model owns a
	// scratch workspace, so the steady-state step loop below performs no
	// heap allocations: with many in-process workers the GC would otherwise
	// dominate the simulation.
	losses := make([]float64, cfg.Workers)
	grads := make([][]float32, cfg.Workers)

	var runErr error
	commBytes := int64(0)
	for step := 1; step <= cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				batch := cfg.Streams[w].NextBatch(cfg.BatchSize, cfg.SeqLen)
				workers[w].Params().ZeroGrads()
				losses[w] = workers[w].ForwardBackward(batch)
				grads[w] = flattenGrads(workers[w].Params(), grads[w])
			}(w)
		}
		wg.Wait()

		if err := RingAllReduce(grads); err != nil {
			return nil, err
		}
		invN := 1 / float32(cfg.Workers)
		lr := cfg.Schedule.LR(step - 1)
		var meanLoss float64
		for _, l := range losses {
			meanLoss += l / float64(cfg.Workers)
		}
		for w := 0; w < cfg.Workers; w++ {
			loadGrads(workers[w].Params(), grads[w], invN)
			if cfg.ClipNorm > 0 {
				workers[w].Params().ClipGradNorm(cfg.ClipNorm)
			}
			opts[w].Step(workers[w].Params(), lr)
		}

		if cfg.TimeModel != nil {
			tm := *cfg.TimeModel
			tm.LocalSteps = 1
			simTime += tm.LocalComputeTime() + tm.CommTime(topo.RAR, cfg.Workers)
		}
		if cfg.Workers > 1 {
			// Ring-AllReduce moves ~2·(N−1)/N of the gradient vector per
			// worker each step.
			n := int64(cfg.Workers)
			commBytes += 2 * (n - 1) * int64(len(grads[0])) * 4
		}

		if step%evalEvery == 0 || step == cfg.Steps {
			rec := metrics.Round{
				Round: step, TrainLoss: meanLoss, SimSeconds: simTime,
				Clients: cfg.Workers, CommBytes: commBytes,
			}
			commBytes = 0
			if cfg.Validation != nil {
				rec.ValPPL = cfg.Validation.Evaluate(workers[0])
			}
			hist.Append(rec)
			if cfg.OnRound != nil {
				cfg.OnRound(rec)
			}
			if cfg.StopAtPPL > 0 && rec.ValPPL > 0 && rec.ValPPL <= cfg.StopAtPPL {
				break
			}
		}
	}
	return &Result{History: hist, FinalModel: workers[0]}, runErr
}

func flattenGrads(ps nn.ParamSet, dst []float32) []float32 {
	n := ps.NumElements()
	if len(dst) != n {
		dst = make([]float32, n)
	}
	off := 0
	for _, p := range ps {
		copy(dst[off:], p.Grad)
		off += len(p.Grad)
	}
	return dst
}

func loadGrads(ps nn.ParamSet, src []float32, scale float32) {
	off := 0
	for _, p := range ps {
		for i := range p.Grad {
			p.Grad[i] = src[off+i] * scale
		}
		off += len(p.Grad)
	}
}

// ParamsEqual reports whether two models hold bit-identical parameters —
// the DDP synchronization invariant.
func ParamsEqual(a, b *nn.Model) bool {
	fa := a.Params().Flatten(nil)
	fb := b.Params().Flatten(nil)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}
