// Package ddp implements the centralized baseline Photon is compared
// against: synchronous distributed data parallelism (Algorithm 2). Each
// worker holds a model replica, computes gradients on its own micro-batch,
// and participates in a Ring-AllReduce gradient average at every step — the
// per-step communication pattern whose cost the federated approach amortizes
// over τ local steps.
//
// The Ring-AllReduce here is the real algorithm (reduce-scatter followed by
// all-gather over a ring of goroutines connected by channels), not a
// sequential stand-in, so worker-synchronization bugs would surface in tests.
package ddp

import (
	"fmt"
	"sync"
)

// RingAllReduce sums the workers' equal-length vectors in place using the
// bandwidth-optimal ring algorithm: N−1 reduce-scatter steps followed by
// N−1 all-gather steps, each worker exchanging one chunk per step with its
// ring neighbors. After it returns, every buffer holds the element-wise sum.
func RingAllReduce(buffers [][]float32) error {
	n := len(buffers)
	if n == 0 {
		return fmt.Errorf("ddp: no buffers")
	}
	if n == 1 {
		return nil
	}
	length := len(buffers[0])
	for i, b := range buffers {
		if len(b) != length {
			return fmt.Errorf("ddp: buffer %d has %d elems, want %d", i, len(b), length)
		}
	}
	if length == 0 {
		return nil
	}

	// Chunk c of worker w's buffer.
	bounds := make([][2]int, n)
	for c := 0; c < n; c++ {
		lo := c * length / n
		hi := (c + 1) * length / n
		bounds[c] = [2]int{lo, hi}
	}
	chunk := func(w, c int) []float32 {
		b := bounds[c]
		return buffers[w][b[0]:b[1]]
	}

	// Each worker sends to its successor over a dedicated channel.
	toNext := make([]chan []float32, n)
	for i := range toNext {
		toNext[i] = make(chan []float32, 1)
	}

	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prev := (w - 1 + n) % n
			// Reduce-scatter: after step s, worker w has accumulated chunk
			// (w−s) mod n from s+1 workers.
			for s := 0; s < n-1; s++ {
				sendChunk := (w - s + n) % n
				out := make([]float32, len(chunk(w, sendChunk)))
				copy(out, chunk(w, sendChunk))
				toNext[w] <- out
				in := <-toNext[prev]
				recvChunk := (w - s - 1 + n) % n
				dst := chunk(w, recvChunk)
				for i, v := range in {
					dst[i] += v
				}
			}
			// All-gather: circulate the fully reduced chunks.
			for s := 0; s < n-1; s++ {
				sendChunk := (w + 1 - s + n) % n
				out := make([]float32, len(chunk(w, sendChunk)))
				copy(out, chunk(w, sendChunk))
				toNext[w] <- out
				in := <-toNext[prev]
				recvChunk := (w - s + n) % n
				copy(chunk(w, recvChunk), in)
			}
		}(w)
	}
	wg.Wait()
	return nil
}
