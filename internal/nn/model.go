package nn

import (
	"math"
	"math/rand"

	"photon/internal/tensor"
)

// Block is one pre-LayerNorm transformer block:
//
//	x = x + Attn(LN1(x)) ; x = x + MLP(LN2(x))
type Block struct {
	LN1  *LayerNorm
	Attn *Attention
	LN2  *LayerNorm
	FC1  *Linear
	Act  *GELU
	FC2  *Linear
}

// NewBlock constructs one transformer block.
func NewBlock(name string, cfg Config, rng *rand.Rand) *Block {
	std := cfg.InitStd
	if std == 0 {
		std = 0.02
	}
	// Residual-branch output projections get the GPT-2 style depth-scaled
	// init to keep the residual stream variance bounded.
	resStd := std / math.Sqrt(float64(2*cfg.Blocks))
	b := &Block{
		LN1:  NewLayerNorm(name+".ln1", cfg.Dim),
		Attn: NewAttention(name+".attn", cfg.Dim, cfg.Heads, std, rng),
		LN2:  NewLayerNorm(name+".ln2", cfg.Dim),
		FC1:  NewLinear(name+".mlp.fc1", cfg.Dim, cfg.ExpRatio*cfg.Dim, false, std, rng),
		Act:  &GELU{},
		FC2:  NewLinear(name+".mlp.fc2", cfg.ExpRatio*cfg.Dim, cfg.Dim, false, resStd, rng),
	}
	tensor.RandNormal(rng, b.Attn.Out.W.Data, 0, resStd)
	return b
}

// Params returns the block's parameters in a stable order.
func (b *Block) Params() ParamSet {
	ps := b.LN1.Params()
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.FC1.Params()...)
	ps = append(ps, b.FC2.Params()...)
	return ps
}

// Forward runs the block over x ([B·T, D]).
func (b *Block) Forward(x *tensor.Matrix, batch, seq int) *tensor.Matrix {
	h := b.Attn.Forward(b.LN1.Forward(x), batch, seq)
	tensor.Add(h.Data, x.Data) // residual 1; h = x + attn
	m := b.FC2.Forward(b.Act.Forward(b.FC1.Forward(b.LN2.Forward(h))))
	tensor.Add(m.Data, h.Data) // residual 2
	return m
}

// Backward propagates dY through the block and returns dX.
func (b *Block) Backward(dy *tensor.Matrix) *tensor.Matrix {
	// Residual 2: gradient flows both into the MLP branch and straight through.
	dh := b.LN2.Backward(b.FC1.Backward(b.Act.Backward(b.FC2.Backward(dy))))
	tensor.Add(dh.Data, dy.Data)
	// Residual 1.
	dx := b.LN1.Backward(b.Attn.Backward(dh))
	tensor.Add(dx.Data, dh.Data)
	return dx
}

// Model is the MPT-style decoder-only language model: tied token embedding,
// N pre-LN blocks with ALiBi attention, final LayerNorm, and a tied output
// projection producing next-token logits.
type Model struct {
	Cfg    Config
	Embed  *Embedding
	Blocks []*Block
	LNF    *LayerNorm

	params ParamSet
}

// NewModel builds and initializes a model from cfg using rng. It panics on
// an invalid configuration (programmer error, validated in tests).
func NewModel(cfg Config, rng *rand.Rand) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	std := cfg.InitStd
	if std == 0 {
		std = 0.02
	}
	m := &Model{
		Cfg:   cfg,
		Embed: NewEmbedding("embed", cfg.VocabSize, cfg.Dim, std, rng),
		LNF:   NewLayerNorm("lnf", cfg.Dim),
	}
	for i := 0; i < cfg.Blocks; i++ {
		m.Blocks = append(m.Blocks, NewBlock(blockName(i), cfg, rng))
	}
	m.params = m.Embed.Params()
	for _, b := range m.Blocks {
		m.params = append(m.params, b.Params()...)
	}
	m.params = append(m.params, m.LNF.Params()...)
	return m
}

func blockName(i int) string {
	return "block" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Params returns all trainable parameters in deterministic order.
func (m *Model) Params() ParamSet { return m.params }

// NumParams returns the total trainable parameter count.
func (m *Model) NumParams() int { return m.params.NumElements() }

// Batch is one training micro-batch of token sequences. Targets[i][t] is the
// next-token label for Inputs[i][t]; a negative target is ignored (padding).
type Batch struct {
	Inputs  [][]int
	Targets [][]int
}

// Size returns the number of sequences in the batch.
func (b Batch) Size() int { return len(b.Inputs) }

// Tokens returns the number of (non-ignored) target tokens.
func (b Batch) Tokens() int {
	n := 0
	for _, row := range b.Targets {
		for _, t := range row {
			if t >= 0 {
				n++
			}
		}
	}
	return n
}

// forward runs the model to final hidden states [B·T, D].
func (m *Model) forward(inputs [][]int) (*tensor.Matrix, int, int) {
	batch := len(inputs)
	seq := len(inputs[0])
	flat := make([]int, 0, batch*seq)
	for _, row := range inputs {
		if len(row) != seq {
			panic("nn: ragged batch")
		}
		flat = append(flat, row...)
	}
	x := m.Embed.Forward(flat)
	for _, b := range m.Blocks {
		x = b.Forward(x, batch, seq)
	}
	return m.LNF.Forward(x), batch, seq
}

// Logits computes next-token logits [B·T, V] for the batch inputs.
func (m *Model) Logits(inputs [][]int) *tensor.Matrix {
	h, _, _ := m.forward(inputs)
	logits := tensor.NewMatrix(h.Rows, m.Cfg.VocabSize)
	emb := tensor.FromSlice(m.Cfg.VocabSize, m.Cfg.Dim, m.Embed.W.Data)
	tensor.MatMulTransB(logits, h, emb) // logits = H·Embᵀ (tied head)
	return logits
}

// Loss computes the mean cross-entropy (nats/token) of the batch without
// touching gradients.
func (m *Model) Loss(b Batch) float64 {
	logits := m.Logits(b.Inputs)
	return crossEntropy(logits, b.Targets, nil)
}

// ForwardBackward computes the batch loss and accumulates parameter
// gradients (it does not zero them first, enabling gradient accumulation).
func (m *Model) ForwardBackward(b Batch) float64 {
	h, batch, seq := m.forward(b.Inputs)
	logits := tensor.NewMatrix(h.Rows, m.Cfg.VocabSize)
	emb := tensor.FromSlice(m.Cfg.VocabSize, m.Cfg.Dim, m.Embed.W.Data)
	tensor.MatMulTransB(logits, h, emb)

	dlogits := tensor.NewMatrix(logits.Rows, logits.Cols)
	loss := crossEntropy(logits, b.Targets, dlogits)

	// Tied head backward: dH = dLogits·Emb ; dEmb += dLogitsᵀ·H.
	dh := tensor.NewMatrix(h.Rows, m.Cfg.Dim)
	tensor.MatMul(dh, dlogits, emb)
	dEmb := tensor.FromSlice(m.Cfg.VocabSize, m.Cfg.Dim, m.Embed.W.Grad)
	tensor.MatMulTransAAccum(dEmb, dlogits, h)

	dx := m.LNF.Backward(dh)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx)
	}
	_ = batch
	_ = seq
	m.Embed.Backward(dx)
	return loss
}

// crossEntropy returns mean NLL over non-negative targets; if dlogits is
// non-nil it is filled with the gradient (softmax − onehot)/count.
func crossEntropy(logits *tensor.Matrix, targets [][]int, dlogits *tensor.Matrix) float64 {
	count := 0
	for _, row := range targets {
		for _, t := range row {
			if t >= 0 {
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	var loss float64
	seq := len(targets[0])
	inv := float32(1 / float64(count))
	for bi, row := range targets {
		for t, tgt := range row {
			r := bi*seq + t
			lrow := logits.Row(r)
			if tgt < 0 {
				continue // padding: zero gradient row
			}
			lse := tensor.LogSumExpRow(lrow)
			loss += lse - float64(lrow[tgt])
			if dlogits != nil {
				drow := dlogits.Row(r)
				for j, v := range lrow {
					drow[j] = float32(math.Exp(float64(v)-lse)) * inv
				}
				drow[tgt] -= inv
			}
		}
	}
	return loss / float64(count)
}

// Perplexity converts a mean NLL (nats/token) to perplexity.
func Perplexity(meanNLL float64) float64 { return math.Exp(meanNLL) }
