package nn

import (
	"math"
	"math/rand"

	"photon/internal/tensor"
)

// Block is one pre-LayerNorm transformer block:
//
//	x = x + Attn(LN1(x)) ; x = x + MLP(LN2(x))
type Block struct {
	LN1  *LayerNorm
	Attn *Attention
	LN2  *LayerNorm
	FC1  *Linear
	Act  *GELU
	FC2  *Linear
}

// NewBlock constructs one transformer block.
func NewBlock(name string, cfg Config, rng *rand.Rand) *Block {
	std := cfg.InitStd
	if std == 0 {
		std = 0.02
	}
	// Residual-branch output projections get the GPT-2 style depth-scaled
	// init to keep the residual stream variance bounded.
	resStd := std / math.Sqrt(float64(2*cfg.Blocks))
	b := &Block{
		LN1:  NewLayerNorm(name+".ln1", cfg.Dim),
		Attn: NewAttention(name+".attn", cfg.Dim, cfg.Heads, std, rng),
		LN2:  NewLayerNorm(name+".ln2", cfg.Dim),
		FC1:  NewLinear(name+".mlp.fc1", cfg.Dim, cfg.ExpRatio*cfg.Dim, false, std, rng),
		Act:  &GELU{},
		FC2:  NewLinear(name+".mlp.fc2", cfg.ExpRatio*cfg.Dim, cfg.Dim, false, resStd, rng),
	}
	tensor.RandNormal(rng, b.Attn.Out.W.Data, 0, resStd)
	return b
}

// Params returns the block's parameters in a stable order.
func (b *Block) Params() ParamSet {
	ps := b.LN1.Params()
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.FC1.Params()...)
	ps = append(ps, b.FC2.Params()...)
	return ps
}

// Forward runs the block over x ([B·T, D]).
//
//photon:hotpath
func (b *Block) Forward(ws *Workspace, x *tensor.Matrix, batch, seq int) *tensor.Matrix {
	h := b.Attn.Forward(ws, b.LN1.Forward(ws, x), batch, seq)
	tensor.Add(h.Data, x.Data) // residual 1; h = x + attn
	m := b.FC2.Forward(ws, b.Act.Forward(ws, b.FC1.Forward(ws, b.LN2.Forward(ws, h))))
	tensor.Add(m.Data, h.Data) // residual 2
	return m
}

// Backward propagates dY through the block and returns dX.
//
//photon:hotpath
func (b *Block) Backward(ws *Workspace, dy *tensor.Matrix) *tensor.Matrix {
	// Residual 2: gradient flows both into the MLP branch and straight through.
	dh := b.LN2.Backward(ws, b.FC1.Backward(ws, b.Act.Backward(ws, b.FC2.Backward(ws, dy))))
	tensor.Add(dh.Data, dy.Data)
	// Residual 1.
	dx := b.LN1.Backward(ws, b.Attn.Backward(ws, dh))
	tensor.Add(dx.Data, dh.Data)
	return dx
}

// Model is the MPT-style decoder-only language model: tied token embedding,
// N pre-LN blocks with ALiBi attention, final LayerNorm, and a tied output
// projection producing next-token logits.
type Model struct {
	Cfg    Config
	Embed  *Embedding
	Blocks []*Block
	LNF    *LayerNorm

	params ParamSet

	// Reusable training-step scratch. ws is the activation arena (reset at
	// the top of every Loss/ForwardBackward); the remaining fields are
	// cap-grow buffers for the loss kernel and token flattening.
	ws       *Workspace
	embMat   tensor.Matrix // persistent header over Embed.W.Data (tied head)
	dEmbMat  tensor.Matrix // persistent header over Embed.W.Grad
	flat     []int         // flattened batch token ids
	ceTgt    []int         // flattened targets
	ceNLL    []float64
	ceLogits *tensor.Matrix
	ceDlog   *tensor.Matrix
	ceInv    float32
	ceFn     func(lo, hi int) // persistent closure for the parallel loss bands

	// KV-cached decode scratch (see kvcache.go). decWS is a separate arena
	// under the size-class retention policy so the shape churn of growing
	// caches never disturbs training's exact-size reuse.
	decWS     *Workspace
	decFlat   []int // flattened new tokens across the decode batch
	decLens   []int // per-sequence cached length before the step
	decCounts []int // per-sequence new-token count

	// Generation scratch: a recycled single-sequence cache plus the fixed
	// one-element slices the per-token decode loop feeds to Decode.
	genState   *DecodeState
	genStates  [1]*DecodeState
	genToks    [1][]int
	genTok     [1]int
	genRowIdx  [1]int
	genSampler Sampler
}

// NewModel builds and initializes a model from cfg using rng. It panics on
// an invalid configuration (programmer error, validated in tests).
func NewModel(cfg Config, rng *rand.Rand) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	std := cfg.InitStd
	if std == 0 {
		std = 0.02
	}
	m := &Model{
		Cfg:   cfg,
		Embed: NewEmbedding("embed", cfg.VocabSize, cfg.Dim, std, rng),
		LNF:   NewLayerNorm("lnf", cfg.Dim),
	}
	for i := 0; i < cfg.Blocks; i++ {
		m.Blocks = append(m.Blocks, NewBlock(blockName(i), cfg, rng))
	}
	m.params = m.Embed.Params()
	for _, b := range m.Blocks {
		m.params = append(m.params, b.Params()...)
	}
	m.params = append(m.params, m.LNF.Params()...)
	m.ws = NewWorkspace()
	m.embMat = tensor.Matrix{Rows: cfg.VocabSize, Cols: cfg.Dim, Data: m.Embed.W.Data}
	m.dEmbMat = tensor.Matrix{Rows: cfg.VocabSize, Cols: cfg.Dim, Data: m.Embed.W.Grad}
	m.ceFn = m.ceBand
	return m
}

func blockName(i int) string {
	return "block" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Params returns all trainable parameters in deterministic order.
func (m *Model) Params() ParamSet { return m.params }

// NumParams returns the total trainable parameter count.
func (m *Model) NumParams() int { return m.params.NumElements() }

// Workspace returns the model's scratch arena (created lazily), so callers
// embedding a Model in their own step loop can reuse it for their scratch.
//
//photon:allocok
func (m *Model) Workspace() *Workspace {
	if m.ws == nil {
		m.ws = NewWorkspace()
	}
	return m.ws
}

// Batch is one training micro-batch of token sequences. Targets[i][t] is the
// next-token label for Inputs[i][t]; a negative target is ignored (padding).
type Batch struct {
	Inputs  [][]int
	Targets [][]int
}

// Size returns the number of sequences in the batch.
func (b Batch) Size() int { return len(b.Inputs) }

// Tokens returns the number of (non-ignored) target tokens.
func (b Batch) Tokens() int {
	n := 0
	for _, row := range b.Targets {
		for _, t := range row {
			if t >= 0 {
				n++
			}
		}
	}
	return n
}

// forward runs the model to final hidden states [B·T, D].
//
//photon:hotpath
func (m *Model) forward(inputs [][]int) (*tensor.Matrix, int, int) {
	batch := len(inputs)
	seq := len(inputs[0])
	ws := m.Workspace()
	m.flat = growInt(m.flat, batch*seq)
	for i, row := range inputs {
		if len(row) != seq {
			panic("nn: ragged batch")
		}
		copy(m.flat[i*seq:], row)
	}
	x := m.Embed.Forward(ws, m.flat)
	for _, b := range m.Blocks {
		x = b.Forward(ws, x, batch, seq)
	}
	return m.LNF.Forward(ws, x), batch, seq
}

// Logits computes next-token logits [B·T, V] for the batch inputs. The
// caller owns the returned matrix.
//
//photon:allocok
func (m *Model) Logits(inputs [][]int) *tensor.Matrix {
	return m.logitsScratch(inputs).Clone()
}

// logitsScratch is the allocation-free logits path: the returned matrix
// lives in the model's workspace and is valid until the next
// Loss/Logits/ForwardBackward call on this model.
//
//photon:hotpath
func (m *Model) logitsScratch(inputs [][]int) *tensor.Matrix {
	ws := m.Workspace()
	ws.Reset()
	h, _, _ := m.forward(inputs)
	logits := ws.Take(h.Rows, m.Cfg.VocabSize)
	tensor.MatMulTransB(logits, h, &m.embMat) // logits = H·Embᵀ (tied head)
	return logits
}

// Loss computes the mean cross-entropy (nats/token) of the batch without
// touching gradients.
//
//photon:hotpath
func (m *Model) Loss(b Batch) float64 {
	logits := m.logitsScratch(b.Inputs)
	return m.crossEntropy(logits, b.Targets, nil)
}

// ForwardBackward computes the batch loss and accumulates parameter
// gradients (it does not zero them first, enabling gradient accumulation).
//
//photon:hotpath
func (m *Model) ForwardBackward(b Batch) float64 {
	ws := m.Workspace()
	ws.Reset()
	h, _, _ := m.forward(b.Inputs)
	logits := ws.Take(h.Rows, m.Cfg.VocabSize)
	tensor.MatMulTransB(logits, h, &m.embMat)

	dlogits := ws.Take(logits.Rows, logits.Cols)
	loss := m.crossEntropy(logits, b.Targets, dlogits)

	// Tied head backward: dH = dLogits·Emb ; dEmb += dLogitsᵀ·H.
	dh := ws.Take(h.Rows, m.Cfg.Dim)
	tensor.MatMul(dh, dlogits, &m.embMat)
	tensor.MatMulTransAAccum(&m.dEmbMat, dlogits, h)

	dx := m.LNF.Backward(ws, dh)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(ws, dx)
	}
	m.Embed.Backward(dx)
	return loss
}

// ceBand computes per-row NLL (and, when training, the dLogits rows) for
// logit rows [lo, hi). It is the band body dispatched across the tensor
// worker pool; all state rides in the model's ce* fields so the closure is
// allocated once.
//
//photon:hotpath
func (m *Model) ceBand(lo, hi int) {
	logits, dlogits := m.ceLogits, m.ceDlog
	inv := m.ceInv
	for r := lo; r < hi; r++ {
		tgt := m.ceTgt[r]
		if tgt < 0 {
			m.ceNLL[r] = 0
			if dlogits != nil {
				drow := dlogits.Row(r)
				for j := range drow {
					drow[j] = 0
				}
			}
			continue
		}
		lrow := logits.Row(r)
		if dlogits == nil {
			lse := tensor.LogSumExpRow(lrow)
			m.ceNLL[r] = lse - float64(lrow[tgt])
			continue
		}
		// Training path: one fused exp pass produces both the softmax
		// gradient row and the log-sum-exp for the loss.
		drow := dlogits.Row(r)
		maxV := lrow[0]
		for _, v := range lrow[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range lrow {
			e := math.Exp(float64(v - maxV))
			drow[j] = float32(e)
			sum += e
		}
		m.ceNLL[r] = float64(maxV) + math.Log(sum) - float64(lrow[tgt])
		scale := inv / float32(sum)
		for j := range drow {
			drow[j] *= scale
		}
		drow[tgt] -= inv
	}
}

// crossEntropy returns mean NLL over non-negative targets; if dlogits is
// non-nil it is filled with the gradient (softmax − onehot)/count. Rows are
// processed in parallel bands on the worker pool.
//
//photon:hotpath
func (m *Model) crossEntropy(logits *tensor.Matrix, targets [][]int, dlogits *tensor.Matrix) float64 {
	rows := logits.Rows
	m.ceTgt = growInt(m.ceTgt, rows)
	m.ceNLL = growF64(m.ceNLL, rows)
	// Default every row to padding first: a Targets that covers fewer rows
	// than the logits (or none at all) must contribute zero loss and zero
	// gradient for the uncovered rows, not whatever ids a previous batch
	// left in the recycled buffer.
	for i := range m.ceTgt {
		m.ceTgt[i] = -1
	}
	count := 0
	if len(targets) > 0 {
		seq := len(targets[0])
		for bi, row := range targets {
			for t, tgt := range row {
				m.ceTgt[bi*seq+t] = tgt
				if tgt >= 0 {
					count++
				}
			}
		}
	}
	if count == 0 {
		if dlogits != nil {
			dlogits.Zero()
		}
		return 0
	}
	m.ceLogits, m.ceDlog = logits, dlogits
	m.ceInv = float32(1 / float64(count))
	// ~32 flop-equivalents per logit column (exp + log dominate).
	tensor.Parallel(rows, logits.Cols*32, m.ceFn)
	m.ceLogits, m.ceDlog = nil, nil
	var loss float64
	for _, v := range m.ceNLL {
		loss += v
	}
	return loss / float64(count)
}

// Perplexity converts a mean NLL (nats/token) to perplexity.
//
//photon:hotpath
func Perplexity(meanNLL float64) float64 { return math.Exp(meanNLL) }
