package nn

import (
	"fmt"

	"photon/internal/tensor"
)

// DecodeState is one sequence's per-layer KV cache for incremental decoding.
// Each layer stores keys and values as Heads contiguous [maxSeq, headDim]
// panels so the decode kernel streams unit-stride rows; Decode appends one
// panel row per new token per layer and attends over the cached prefix,
// turning the O(T²)-forwards generation loop into O(T) incremental steps.
//
// A DecodeState belongs to a single Model (the cache layout is derived from
// its configuration) and, like the model itself, is not safe for concurrent
// use. The buffers are allocated once at construction; steady-state decoding
// never grows them.
type DecodeState struct {
	k, v    [][]float32 // per layer: Heads panels of maxSeq·headDim
	n       int         // cached positions
	maxSeq  int
	headDim int
}

// NewDecodeState allocates a KV cache able to hold maxSeq positions per
// layer for decoding with this model.
//
//photon:allocok
func (m *Model) NewDecodeState(maxSeq int) *DecodeState {
	if maxSeq <= 0 {
		panic(fmt.Sprintf("nn: NewDecodeState: maxSeq must be positive, got %d", maxSeq))
	}
	s := &DecodeState{
		k:       make([][]float32, len(m.Blocks)),
		v:       make([][]float32, len(m.Blocks)),
		maxSeq:  maxSeq,
		headDim: m.Cfg.HeadDim(),
	}
	per := m.Cfg.Heads * maxSeq * s.headDim
	for i := range s.k {
		s.k[i] = make([]float32, per)
		s.v[i] = make([]float32, per)
	}
	return s
}

// Len returns the number of cached positions.
//
//photon:hotpath
func (s *DecodeState) Len() int { return s.n }

// Cap returns the cache capacity in positions.
//
//photon:hotpath
func (s *DecodeState) Cap() int { return s.maxSeq }

// Reset empties the cache so the state can be reused for a new sequence
// without reallocating — continuous-batching servers recycle retired slots
// this way.
//
//photon:hotpath
func (s *DecodeState) Reset() { s.n = 0 }

// Truncate drops cached positions beyond n (n must not exceed Len). The
// retained prefix stays valid: decoding continues from position n.
//
//photon:hotpath
func (s *DecodeState) Truncate(n int) {
	if n < 0 || n > s.n {
		panic(fmt.Sprintf("nn: Truncate(%d) outside cached length %d", n, s.n))
	}
	s.n = n
}

// decodeWorkspace returns the model's dedicated decode arena, created lazily
// with the size-class retention policy: decode scratch shapes grow with the
// cache length, and power-of-two buckets keep the steady state allocation-
// free where exact-size buckets would miss on every step.
//
//photon:allocok
func (m *Model) decodeWorkspace() *Workspace {
	if m.decWS == nil {
		m.decWS = NewWorkspace()
		m.decWS.SetSizeClasses(true)
	}
	return m.decWS
}

// Decode runs one incremental forward over a batch of sequences: tokens[i]
// are the new tokens for states[i] — one token for a sequence in steady-state
// decode, a whole prompt (or prompt chunk) for a sequence being prefilled.
// Mixed batches are the point: a continuous-batching server prefills newly
// admitted sequences in the same forward that decodes the running ones.
//
// Each layer appends tokens[i]'s K/V rows to states[i] and attends over the
// cached prefix plus the new rows (causally within the new rows). On return
// every state's Len has advanced by len(tokens[i]).
//
// The result holds the final hidden states for all new rows — the rows of
// sequence i start at offset Σ_{j<i} len(tokens[j]) — and lives in the
// model's decode workspace: it is valid until the next Decode call. Use
// DecodeLogits to turn selected rows into next-token logits.
//
//photon:hotpath
func (m *Model) Decode(states []*DecodeState, tokens [][]int) *tensor.Matrix {
	if len(states) == 0 || len(states) != len(tokens) {
		panic(fmt.Sprintf("nn: Decode: %d states, %d token slices", len(states), len(tokens)))
	}
	total := 0
	for i, tk := range tokens {
		if len(tk) == 0 {
			panic("nn: Decode: empty token slice")
		}
		if states[i].n+len(tk) > states[i].maxSeq {
			panic(fmt.Sprintf("nn: Decode: sequence %d overflows cache (%d+%d > %d)",
				i, states[i].n, len(tk), states[i].maxSeq))
		}
		total += len(tk)
	}
	ws := m.decodeWorkspace()
	ws.Reset()

	m.decFlat = growInt(m.decFlat, total)
	m.decLens = growInt(m.decLens, len(states))
	m.decCounts = growInt(m.decCounts, len(states))
	off := 0
	for i, tk := range tokens {
		copy(m.decFlat[off:], tk)
		off += len(tk)
		m.decLens[i] = states[i].n
		m.decCounts[i] = len(tk)
	}

	x := m.Embed.Forward(ws, m.decFlat[:total])
	for li, b := range m.Blocks {
		x = b.decodeForward(ws, x, li, states, m.decLens[:len(states)], m.decCounts[:len(states)])
	}
	h := m.LNF.Forward(ws, x)
	for i, tk := range tokens {
		states[i].n += len(tk)
	}
	return h
}

// DecodeLogits computes next-token logits for the selected rows of a hidden
// matrix returned by Decode. Generation needs only each sequence's last row;
// continuation scoring needs every continuation row — gathering first keeps
// the [rows, Vocab] product as small as the caller's actual need. The result
// lives in the decode workspace and is valid until the next Decode call.
//
//photon:hotpath
func (m *Model) DecodeLogits(h *tensor.Matrix, rows []int) *tensor.Matrix {
	ws := m.decodeWorkspace()
	g := ws.Take(len(rows), m.Cfg.Dim)
	for i, r := range rows {
		copy(g.Row(i), h.Row(r))
	}
	logits := ws.Take(len(rows), m.Cfg.VocabSize)
	tensor.MatMulTransB(logits, g, &m.embMat)
	return logits
}

// decodeForward is Block.Forward for the incremental path: same residual
// structure, attention replaced by the KV-cached variant.
//
//photon:hotpath
func (b *Block) decodeForward(ws *Workspace, x *tensor.Matrix, layer int, states []*DecodeState, lens, counts []int) *tensor.Matrix {
	h := b.Attn.decodeForward(ws, b.LN1.Forward(ws, x), layer, states, lens, counts)
	tensor.Add(h.Data, x.Data) // residual 1
	mo := b.FC2.Forward(ws, b.Act.Forward(ws, b.FC1.Forward(ws, b.LN2.Forward(ws, h))))
	tensor.Add(mo.Data, h.Data) // residual 2
	return mo
}
