package nn_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"photon/internal/bench"
	"photon/internal/nn"
	"photon/internal/opt"
)

// TestObservabilityBenchGuard is the CI regression gate for the
// observability layer: with phase spans and scrape instruments compiled
// into every hot path, the warm train step must still allocate nothing and
// its throughput must stay within noise of the committed BENCH_train.json
// measurement. It runs when BENCH_OBSV_GUARD names the committed artifact
// (the reference tokens/s comes from there, so the gate tightens
// automatically when the artifact is re-measured).
//
// The allocation bound is exact — instrumentation is gated on atomic loads
// and value-type span marks, so any alloc is a real regression. The
// throughput bound is deliberately loose (reference/4): the CI host has
// variable hypervisor CPU steal, so only an order-of-magnitude collapse
// (e.g. a lock or syscall landing on the step path) should trip it.
func TestObservabilityBenchGuard(t *testing.T) {
	path := os.Getenv("BENCH_OBSV_GUARD")
	if path == "" {
		t.Skip("BENCH_OBSV_GUARD not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read reference artifact: %v", err)
	}
	var ref struct {
		Current struct {
			TokensPerSec float64 `json:"tokens_per_sec"`
		} `json:"current"`
	}
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatalf("parse reference artifact: %v", err)
	}
	if ref.Current.TokensPerSec <= 0 {
		t.Fatalf("reference artifact has no tokens_per_sec: %s", path)
	}

	cfg := benchConfig()
	rng := rand.New(rand.NewSource(1))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	optimizer := opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01)
	tokens := batch.Tokens()

	bench.TrainStep(m, batch, optimizer, 1e-4)

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bench.TrainStep(m, batch, optimizer, 1e-4)
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("train step allocates %d allocs/step with observability compiled in, want 0", allocs)
	}
	nsPerStep := float64(res.T.Nanoseconds()) / float64(res.N)
	tokensPerSec := float64(tokens) / (nsPerStep / 1e9)
	if floor := ref.Current.TokensPerSec / 4; tokensPerSec < floor {
		t.Fatalf("train step throughput %.0f tokens/s, want >= %.0f (reference %.0f / 4)",
			tokensPerSec, floor, ref.Current.TokensPerSec)
	}
	t.Logf("guard: %.0f tokens/s (reference %.0f), 0 allocs/step", tokensPerSec, ref.Current.TokensPerSec)
}
