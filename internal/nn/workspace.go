package nn

import "photon/internal/tensor"

// Workspace is an arena of size-keyed scratch matrices that makes the
// steady-state training step allocation-free. Every intermediate a forward or
// backward pass needs — activations, gradients, per-head attention panels —
// is taken from the workspace instead of the heap; Reset (called at the top
// of each Loss / ForwardBackward) returns everything taken since the last
// Reset to the free lists for reuse.
//
// Lifetime contract: a matrix obtained from Take is valid until the next
// Reset of the same workspace. That is exactly the window a training step
// needs — layers cache forward activations in workspace matrices and read
// them during backward, and the next step's Reset recycles the lot. After
// the first step every Take is served from a free list, so a warm step
// performs zero heap allocations (asserted by TestTrainStepZeroAlloc).
//
// A Workspace is owned by a single Model and is not safe for concurrent use;
// concurrent replicas (DDP workers, federated clients) each own their model
// and therefore their workspace.
type Workspace struct {
	free map[int][]*tensor.Matrix // element count -> recycled matrices
	used []*tensor.Matrix         // taken since the last Reset

	// Retention bound. Fixed-shape training reuses the same size buckets
	// every step, but variable-shape callers (Generate's per-token growing
	// context) would otherwise strand a full activation set under every
	// distinct sequence length forever. retained counts elements parked in
	// free lists; when it exceeds evictFactor× the largest single step seen,
	// the free lists are dropped wholesale and the GC reclaims them.
	retained  int
	stepElems int // elements returned by the current Reset
	maxStep   int // largest step observed

	// sizeClasses switches Take to power-of-two bucket rounding — the
	// cache-aware retention policy for KV-cached decoding, whose attention
	// scratch grows by one column per generated token. Under exact-size
	// buckets every decode step would miss the free lists (no two steps
	// share a probs size) and allocate; under size classes at most
	// log2(maxSeq) distinct buckets exist per shape, so once they are warm
	// a steady-state decode step allocates nothing.
	sizeClasses bool
}

// evictFactor bounds free-list retention at this multiple of the largest
// single-step working set. Steady-state training retains exactly 1× and
// never evicts (keeping the zero-allocation guarantee); shape-churning
// callers are bounded instead of monotonic.
const evictFactor = 3

// NewWorkspace creates an empty workspace.
//
//photon:allocok
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[int][]*tensor.Matrix)}
}

// Reset returns every matrix taken since the last Reset to the free lists,
// invalidating all outstanding references from this workspace.
//
//photon:allocok
func (w *Workspace) Reset() {
	w.stepElems = 0
	for i, m := range w.used {
		n := cap(m.Data)
		w.stepElems += n
		w.free[n] = append(w.free[n], m)
		w.used[i] = nil
	}
	w.used = w.used[:0]
	w.retained += w.stepElems
	if w.stepElems > w.maxStep {
		w.maxStep = w.stepElems
	}
	if w.retained > evictFactor*w.maxStep {
		clear(w.free)
		w.retained = 0
	}
}

// SetSizeClasses selects the workspace retention policy. Off (the default,
// used by training) buckets recycled buffers by exact element count — every
// step reuses identical shapes, so exact matching wastes nothing. On (used by
// the KV-cached decode paths) Take rounds requests up to the next power of
// two, so the per-token growth of decode-shaped scratch reuses a bounded set
// of buckets instead of stranding one buffer per sequence length. Switch only
// while the workspace is empty (right after Reset).
func (w *Workspace) SetSizeClasses(on bool) { w.sizeClasses = on }

// sizeClass rounds n up to the next power of two.
func sizeClass(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Take returns a rows×cols matrix with unspecified contents, recycling a
// buffer of the same bucket (exact element count, or the covering power-of-
// two size class under the decode retention policy) when one is free.
//
//photon:allocok
func (w *Workspace) Take(rows, cols int) *tensor.Matrix {
	n := rows * cols
	alloc := n
	if w.sizeClasses && n > 0 {
		alloc = sizeClass(n)
	}
	var m *tensor.Matrix
	if bucket := w.free[alloc]; len(bucket) > 0 {
		m = bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		w.free[alloc] = bucket[:len(bucket)-1]
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		w.retained -= alloc
	} else if alloc == n {
		m = tensor.NewMatrix(rows, cols)
	} else {
		m = &tensor.Matrix{Rows: rows, Cols: cols, Data: make([]float32, alloc)[:n]}
	}
	w.used = append(w.used, m)
	return m
}

// TakeZero is Take with the contents cleared.
//
//photon:allocok
func (w *Workspace) TakeZero(rows, cols int) *tensor.Matrix {
	m := w.Take(rows, cols)
	m.Zero()
	return m
}

// growF32 is the cap-grow pattern for flat scratch vectors: reuse the backing
// array when it is large enough, reallocate with 50% slack when it is not so
// monotonically growing callers (Generate's per-token context) amortize
// instead of reallocating every call.
//
//photon:allocok
func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n, n+n/2)
	}
	return buf[:n]
}

// growF64 is growF32 for float64 slices.
//
//photon:allocok
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/2)
	}
	return buf[:n]
}

// growInt is growF32 for int slices.
//
//photon:allocok
func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, n+n/2)
	}
	return buf[:n]
}

// retainedElems reports the elements currently parked in free lists
// (test hook for the retention bound).
func (w *Workspace) retainedElems() int { return w.retained }
