package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateLengthAndRange(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	out := m.Generate(rng, []int{1, 2, 3}, 10, 0.8)
	if len(out) != 10 {
		t.Fatalf("generated %d tokens, want 10", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= cfg.VocabSize {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(3)))
	a := m.Generate(rand.New(rand.NewSource(4)), []int{5}, 6, 0)
	b := m.Generate(rand.New(rand.NewSource(99)), []int{5}, 6, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy decoding must ignore the RNG")
		}
	}
}

func TestGenerateEmptyPrompt(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(5)))
	out := m.Generate(rand.New(rand.NewSource(6)), nil, 3, 1)
	if len(out) != 3 {
		t.Fatalf("empty prompt: got %d tokens", len(out))
	}
}

func TestGenerateContextTruncation(t *testing.T) {
	cfg := testConfig() // SeqLen 6
	m := NewModel(cfg, rand.New(rand.NewSource(7)))
	long := make([]int, 20)
	out := m.Generate(rand.New(rand.NewSource(8)), long, 4, 0.5)
	if len(out) != 4 {
		t.Fatalf("long prompt: got %d tokens", len(out))
	}
}

func TestSequenceLogProb(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(9)))
	seq := []int{1, 2, 3, 4}
	lp := m.SequenceLogProb(seq)
	if lp >= 0 {
		t.Fatalf("log-prob must be negative, got %v", lp)
	}
	// Per-token logprob of a random model ≈ -log V.
	perTok := lp / 3
	if math.Abs(perTok+math.Log(float64(cfg.VocabSize))) > 1 {
		t.Fatalf("per-token logprob implausible: %v", perTok)
	}
	if m.SequenceLogProb([]int{1}) != 0 {
		t.Fatal("single-token sequence has no transitions")
	}
}
