package nn

import (
	"math"
	"math/rand"

	"photon/internal/tensor"
)

// Linear is a dense projection Y = X·W (optionally + b). W has shape
// [In, Out] so rows of X are multiplied from the right, matching the
// row-major activation layout used throughout the model.
type Linear struct {
	In, Out int
	W       *Param
	B       *Param // nil when the layer has no bias (MPT style)

	x *tensor.Matrix // cached input for backward (workspace lifetime)
	// Persistent matrix headers over W.Data/W.Grad: wrapping them per call
	// would heap-allocate a header on every forward/backward.
	wMat, dwMat tensor.Matrix
}

// NewLinear creates a Linear layer with N(0, std²) weight init.
func NewLinear(name string, in, out int, bias bool, std float64, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: newParam(name+".w", in*out)}
	tensor.RandNormal(rng, l.W.Data, 0, std)
	if bias {
		l.B = newParam(name+".b", out)
	}
	l.wMat = tensor.Matrix{Rows: in, Cols: out, Data: l.W.Data}
	l.dwMat = tensor.Matrix{Rows: in, Cols: out, Data: l.W.Grad}
	return l
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() ParamSet {
	if l.B != nil {
		return ParamSet{l.W, l.B}
	}
	return ParamSet{l.W}
}

// Forward computes Y = X·W (+ b) into a workspace matrix, caching X for
// backward.
//
//photon:hotpath
func (l *Linear) Forward(ws *Workspace, x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	y := ws.Take(x.Rows, l.Out)
	tensor.MatMul(y, x, &l.wMat)
	if l.B != nil {
		for i := 0; i < y.Rows; i++ {
			tensor.Add(y.Row(i), l.B.Data)
		}
	}
	return y
}

// Backward accumulates dW (and db) and returns dX.
//
//photon:hotpath
func (l *Linear) Backward(ws *Workspace, dy *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulTransAAccum(&l.dwMat, l.x, dy) // dW += Xᵀ·dY
	if l.B != nil {
		for i := 0; i < dy.Rows; i++ {
			tensor.Add(l.B.Grad, dy.Row(i))
		}
	}
	dx := ws.Take(l.x.Rows, l.In)
	tensor.MatMulTransB(dx, dy, &l.wMat) // dX = dY·Wᵀ
	return dx
}

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned affine transform.
type LayerNorm struct {
	Dim  int
	G, B *Param

	xhat *tensor.Matrix // cached normalized input (workspace lifetime)
	rstd []float32      // cached reciprocal std per row (cap-grow)
}

// NewLayerNorm creates a LayerNorm with gain 1 and bias 0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{Dim: dim, G: newParam(name+".g", dim), B: newParam(name+".b", dim)}
	tensor.Fill(ln.G.Data, 1)
	return ln
}

// Params returns the layer's trainable parameters.
func (ln *LayerNorm) Params() ParamSet { return ParamSet{ln.G, ln.B} }

const lnEps = 1e-5

// Forward normalizes each row of x.
//
//photon:hotpath
func (ln *LayerNorm) Forward(ws *Workspace, x *tensor.Matrix) *tensor.Matrix {
	y := ws.Take(x.Rows, x.Cols)
	ln.xhat = ws.Take(x.Rows, x.Cols)
	ln.rstd = growF32(ln.rstd, x.Rows)
	d := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= d
		var varr float64
		for _, v := range row {
			dv := float64(v) - mean
			varr += dv * dv
		}
		varr /= d
		rstd := float32(1 / math.Sqrt(varr+lnEps))
		ln.rstd[i] = rstd
		xh := ln.xhat.Row(i)
		yr := y.Row(i)
		for j, v := range row {
			h := (v - float32(mean)) * rstd
			xh[j] = h
			yr[j] = ln.G.Data[j]*h + ln.B.Data[j]
		}
	}
	return y
}

// Backward accumulates dG, dB and returns dX.
//
//photon:hotpath
func (ln *LayerNorm) Backward(ws *Workspace, dy *tensor.Matrix) *tensor.Matrix {
	dx := ws.Take(dy.Rows, dy.Cols)
	d := float32(dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := ln.xhat.Row(i)
		// Parameter gradients.
		for j, g := range dyr {
			ln.G.Grad[j] += g * xh[j]
			ln.B.Grad[j] += g
		}
		// Input gradient: dx = rstd*(dxhat - mean(dxhat) - xhat*mean(dxhat⊙xhat)).
		var sum1, sum2 float32
		for j, g := range dyr {
			dxh := g * ln.G.Data[j]
			sum1 += dxh
			sum2 += dxh * xh[j]
		}
		m1, m2 := sum1/d, sum2/d
		dxr := dx.Row(i)
		rstd := ln.rstd[i]
		for j, g := range dyr {
			dxh := g * ln.G.Data[j]
			dxr[j] = rstd * (dxh - m1 - xh[j]*m2)
		}
	}
	return dx
}

// geluCoef is √(2/π) for the tanh GELU approximation.
const geluCoef = 0.7978845608028654

// GELU applies the tanh-approximated Gaussian error linear unit into a
// workspace matrix and caches the input for backward.
type GELU struct {
	x *tensor.Matrix
}

// Forward applies GELU element-wise.
//
//photon:hotpath
func (g *GELU) Forward(ws *Workspace, x *tensor.Matrix) *tensor.Matrix {
	g.x = x
	y := ws.Take(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = geluScalar(v)
	}
	return y
}

// Backward returns dX given dY.
//
//photon:hotpath
func (g *GELU) Backward(ws *Workspace, dy *tensor.Matrix) *tensor.Matrix {
	dx := ws.Take(dy.Rows, dy.Cols)
	for i, v := range g.x.Data {
		dx.Data[i] = dy.Data[i] * geluGradScalar(v)
	}
	return dx
}

//photon:hotpath
func geluScalar(x float32) float32 {
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(geluCoef*(xf+0.044715*xf*xf*xf))))
}

//photon:hotpath
func geluGradScalar(x float32) float32 {
	xf := float64(x)
	inner := geluCoef * (xf + 0.044715*xf*xf*xf)
	t := math.Tanh(inner)
	dInner := geluCoef * (1 + 3*0.044715*xf*xf)
	return float32(0.5*(1+t) + 0.5*xf*(1-t*t)*dInner)
}

// Embedding maps token ids to dense vectors. The same table is used as the
// (tied) output projection by the model.
type Embedding struct {
	Vocab, Dim int
	W          *Param

	tokens []int // cached ids for backward scatter
}

// NewEmbedding creates an embedding table with N(0, std²) init.
func NewEmbedding(name string, vocab, dim int, std float64, rng *rand.Rand) *Embedding {
	e := &Embedding{Vocab: vocab, Dim: dim, W: newParam(name, vocab*dim)}
	tensor.RandNormal(rng, e.W.Data, 0, std)
	return e
}

// Params returns the embedding table.
func (e *Embedding) Params() ParamSet { return ParamSet{e.W} }

// Forward gathers rows for the given token ids. Panics on out-of-range ids —
// that is a data-pipeline bug, not a recoverable condition. tokens is
// retained until the next Backward.
//
//photon:hotpath
func (e *Embedding) Forward(ws *Workspace, tokens []int) *tensor.Matrix {
	e.tokens = tokens
	y := ws.Take(len(tokens), e.Dim)
	for i, id := range tokens {
		if id < 0 || id >= e.Vocab {
			panic("nn: token id out of vocabulary range")
		}
		copy(y.Row(i), e.W.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return y
}

// Backward scatter-adds dY rows into the embedding gradient.
//
//photon:hotpath
func (e *Embedding) Backward(dy *tensor.Matrix) {
	for i, id := range e.tokens {
		tensor.Add(e.W.Grad[id*e.Dim:(id+1)*e.Dim], dy.Row(i))
	}
}

// AlibiSlopes returns the per-head ALiBi slopes using the geometric sequence
// from the ALiBi paper: for h heads, slope_i = 2^(-8(i+1)/h).
//
//photon:allocok
func AlibiSlopes(heads int) []float32 {
	slopes := make([]float32, heads)
	for i := range slopes {
		slopes[i] = float32(math.Pow(2, -8*float64(i+1)/float64(heads)))
	}
	return slopes
}
