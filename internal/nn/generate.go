package nn

import (
	"math/rand"

	"photon/internal/tensor"
)

// Generate autoregressively samples n tokens continuing prompt. Temperature
// 0 is greedy decoding; higher temperatures flatten the distribution. It is
// GenerateOpts with only the temperature set.
func (m *Model) Generate(rng *rand.Rand, prompt []int, n int, temperature float64) []int {
	return m.GenerateOpts(rng, prompt, n, SampleOpts{Temperature: temperature})
}

// GenerateOpts autoregressively samples n tokens continuing prompt under the
// given sampling options. The prompt is truncated to the model's configured
// sequence length, prefilled once through the KV-cached decode path, and each
// subsequent token costs a single-row incremental step — O(T) total forwards
// instead of the O(T²) recompute of a cache-less loop. Generated context may
// extend past SeqLen: ALiBi attention extrapolates to longer sequences than
// trained on, which is the point of the positional scheme.
func (m *Model) GenerateOpts(rng *rand.Rand, prompt []int, n int, o SampleOpts) []int {
	out := make([]int, 0, n)
	if n <= 0 {
		return out
	}
	ctx := prompt
	if len(ctx) > m.Cfg.SeqLen {
		ctx = ctx[len(ctx)-m.Cfg.SeqLen:]
	}
	if len(ctx) == 0 {
		// Seed an empty prompt with token 0; it is not part of the output.
		m.genTok[0] = 0
		ctx = m.genTok[:]
	}

	need := len(ctx) + n
	if m.genState == nil || m.genState.Cap() < need {
		m.genState = m.NewDecodeState(need)
	}
	st := m.genState
	st.Reset()
	m.genStates[0] = st

	m.genToks[0] = ctx
	h := m.Decode(m.genStates[:], m.genToks[:])
	row := m.DecodeLogits(h, m.genRow(h.Rows-1)).Row(0)
	for {
		next := m.genSampler.Sample(rng, row, o)
		out = append(out, next)
		if len(out) == n {
			return out
		}
		m.genTok[0] = next
		m.genToks[0] = m.genTok[:]
		h = m.Decode(m.genStates[:], m.genToks[:])
		row = m.DecodeLogits(h, m.genRow(0)).Row(0)
	}
}

// genRow returns the single-element row-index slice for DecodeLogits without
// allocating.
func (m *Model) genRow(r int) []int {
	m.genRowIdx[0] = r
	return m.genRowIdx[:]
}

// SequenceLogProb returns the model's total log-probability (nats) of seq
// under teacher forcing, conditioned position by position.
func (m *Model) SequenceLogProb(seq []int) float64 {
	if len(seq) < 2 {
		return 0
	}
	logits := m.logitsScratch([][]int{seq[:len(seq)-1]})
	var lp float64
	for t := 0; t < len(seq)-1; t++ {
		row := logits.Row(t)
		lp += float64(row[seq[t+1]]) - tensor.LogSumExpRow(row)
	}
	return lp
}
