package nn

import (
	"math/rand"

	"photon/internal/tensor"
)

// Generate autoregressively samples n tokens continuing prompt. Temperature
// 0 is greedy decoding; higher temperatures flatten the distribution. The
// context is truncated to the model's configured sequence length.
func (m *Model) Generate(rng *rand.Rand, prompt []int, n int, temperature float64) []int {
	seq := append([]int(nil), prompt...)
	start := len(prompt)
	if len(seq) == 0 {
		// Seed an empty prompt with token 0; it is not part of the output.
		seq = []int{0}
		start = 1
	}
	for i := 0; i < n; i++ {
		ctx := seq
		if len(ctx) > m.Cfg.SeqLen {
			ctx = ctx[len(ctx)-m.Cfg.SeqLen:]
		}
		logits := m.logitsScratch([][]int{ctx})
		row := logits.Row(len(ctx) - 1)
		var next int
		if temperature <= 0 {
			next = tensor.ArgMax(row)
		} else {
			// Reuse the sampling buffer across tokens (cap-grow pattern):
			// the per-token allocation dominated long generations.
			m.genProbs = growF32(m.genProbs, len(row))
			probs := m.genProbs
			for j, v := range row {
				probs[j] = float32(float64(v) / temperature)
			}
			tensor.SoftmaxRow(probs)
			r := rng.Float64()
			acc := 0.0
			next = len(probs) - 1
			for j, p := range probs {
				acc += float64(p)
				if r <= acc {
					next = j
					break
				}
			}
		}
		seq = append(seq, next)
	}
	return seq[start:]
}

// SequenceLogProb returns the model's total log-probability (nats) of seq
// under teacher forcing, conditioned position by position.
func (m *Model) SequenceLogProb(seq []int) float64 {
	if len(seq) < 2 {
		return 0
	}
	logits := m.logitsScratch([][]int{seq[:len(seq)-1]})
	var lp float64
	for t := 0; t < len(seq)-1; t++ {
		row := logits.Row(t)
		lp += float64(row[seq[t+1]]) - tensor.LogSumExpRow(row)
	}
	return lp
}
