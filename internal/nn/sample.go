package nn

import (
	"math"
	"math/rand"
	"sort"

	"photon/internal/tensor"
)

// SampleOpts selects the next-token decoding strategy. The zero value is
// greedy argmax decoding. The same options travel with serving requests
// (internal/serve) and local generation (Model.GenerateOpts), so a request
// replayed in-process reproduces the server's tokens bit for bit given the
// same random stream.
type SampleOpts struct {
	// Temperature flattens (>1) or sharpens (<1) the distribution before
	// sampling; <= 0 selects greedy decoding and ignores the random source.
	Temperature float64
	// TopK, when positive, restricts sampling to the K highest-probability
	// tokens.
	TopK int
	// TopP, when in (0, 1), restricts sampling to the smallest set of
	// highest-probability tokens whose cumulative probability reaches P
	// (nucleus sampling). Combined with TopK, both filters apply.
	TopP float64
}

// Greedy reports whether the options select deterministic argmax decoding.
func (o SampleOpts) Greedy() bool { return o.Temperature <= 0 }

// Sampler draws next tokens from logit rows under SampleOpts. It owns
// reusable scratch (cap-grow pattern), so one Sampler per decoding loop keeps
// long generations from allocating per token. Determinism contract: the same
// logits, options, and *rand.Rand state always yield the same token — ties in
// the probability ordering break toward the lower token id.
type Sampler struct {
	probs []float32
	idx   []int
}

// Sample draws one token from logits. It is the sanctioned amortized-
// allocation boundary of the decode loop: scratch follows the cap-grow
// pattern and the candidate sort runs in place, so a warm sampler allocates
// nothing per token (pinned by the serve steady-state allocation test).
//
//photon:allocok
func (s *Sampler) Sample(rng *rand.Rand, logits []float32, o SampleOpts) int {
	if o.Greedy() {
		return tensor.ArgMax(logits)
	}
	n := len(logits)
	inv := 1 / o.Temperature

	// Unnormalized softmax with max subtraction; sum carries the normalizer.
	s.probs = growF32(s.probs, n)
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for j, v := range logits {
		e := math.Exp(float64(v-maxV) * inv)
		s.probs[j] = float32(e)
		sum += e
	}

	// Candidate set: all tokens, optionally cut down by top-k then top-p.
	s.idx = growInt(s.idx, n)
	for j := range s.idx {
		s.idx[j] = j
	}
	m := n
	if (o.TopK > 0 && o.TopK < n) || (o.TopP > 0 && o.TopP < 1) {
		sort.Sort(&byProb{p: s.probs, idx: s.idx})
		if o.TopK > 0 && o.TopK < m {
			m = o.TopK
		}
		if o.TopP > 0 && o.TopP < 1 {
			target := o.TopP * sum
			var acc float64
			for j := 0; j < m; j++ {
				acc += float64(s.probs[s.idx[j]])
				if acc >= target {
					m = j + 1
					break
				}
			}
		}
	}

	// Renormalize over the candidates and invert the CDF.
	var csum float64
	for j := 0; j < m; j++ {
		csum += float64(s.probs[s.idx[j]])
	}
	r := rng.Float64() * csum
	var acc float64
	for j := 0; j < m-1; j++ {
		acc += float64(s.probs[s.idx[j]])
		if r <= acc {
			return s.idx[j]
		}
	}
	return s.idx[m-1]
}

// byProb orders token indices by descending probability, lower id first on
// ties (the determinism contract). A pointer receiver keeps sort.Sort from
// allocating.
type byProb struct {
	p   []float32
	idx []int
}

func (b *byProb) Len() int { return len(b.idx) }
func (b *byProb) Less(i, j int) bool {
	pi, pj := b.p[b.idx[i]], b.p[b.idx[j]]
	if pi != pj {
		return pi > pj
	}
	return b.idx[i] < b.idx[j]
}
func (b *byProb) Swap(i, j int) { b.idx[i], b.idx[j] = b.idx[j], b.idx[i] }
