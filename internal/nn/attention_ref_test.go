package nn

import (
	"math"
	"math/rand"
	"testing"

	"photon/internal/tensor"
)

// This file pins the batched attention kernels to the original scalar
// implementation: refAttentionForward/Backward are near-verbatim copies of
// the pre-kernel triple-loop code, and the tests require the rewritten
// Forward/Backward to match their outputs and every parameter gradient to
// 1e-4 across shapes that exercise the register-tile remainders.

type refCache struct {
	qkv   *tensor.Matrix
	probs []float32
}

func refQOff(a *Attention, h, j int) int { return h*a.HeadDim + j }
func refKOff(a *Attention, h, j int) int { return a.Dim + h*a.HeadDim + j }
func refVOff(a *Attention, h, j int) int { return 2*a.Dim + h*a.HeadDim + j }

func refAttentionForward(a *Attention, ws *Workspace, x *tensor.Matrix, batch, seq int) (*tensor.Matrix, *refCache) {
	qkv := a.QKV.Forward(ws, x)
	cache := &refCache{qkv: qkv, probs: make([]float32, batch*a.Heads*seq*seq)}
	n := batch * seq
	ctx := tensor.NewMatrix(n, a.Dim)
	scale := float32(1 / math.Sqrt(float64(a.HeadDim)))
	hd := a.HeadDim
	negInf := float32(math.Inf(-1))
	row := func(b, t int) []float32 { return qkv.Row(b*seq + t) }

	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			slope := a.sl[h]
			base := ((b * a.Heads) + h) * seq * seq
			for i := 0; i < seq; i++ {
				qi := row(b, i)
				p := cache.probs[base+i*seq : base+(i+1)*seq]
				for j := 0; j <= i; j++ {
					kj := row(b, j)
					var s float32
					for c := 0; c < hd; c++ {
						s += qi[refQOff(a, h, c)] * kj[refKOff(a, h, c)]
					}
					p[j] = s*scale + slope*float32(j-i)
				}
				for j := i + 1; j < seq; j++ {
					p[j] = negInf
				}
				tensor.SoftmaxRow(p[:i+1])
				for j := i + 1; j < seq; j++ {
					p[j] = 0
				}
				out := ctx.Row(b*seq + i)[h*hd : (h+1)*hd]
				for j := 0; j <= i; j++ {
					pj := p[j]
					if pj == 0 {
						continue
					}
					vj := row(b, j)
					for c := 0; c < hd; c++ {
						out[c] += pj * vj[refVOff(a, h, c)]
					}
				}
			}
		}
	}
	return a.Out.Forward(ws, ctx), cache
}

func refAttentionBackward(a *Attention, ws *Workspace, cache *refCache, dy *tensor.Matrix, batch, seq int) *tensor.Matrix {
	hd := a.HeadDim
	dctx := a.Out.Backward(ws, dy)
	dqkv := tensor.NewMatrix(batch*seq, 3*a.Dim)
	scale := float32(1 / math.Sqrt(float64(hd)))
	row := func(b, t int) []float32 { return cache.qkv.Row(b*seq + t) }
	drow := func(b, t int) []float32 { return dqkv.Row(b*seq + t) }

	ds := make([]float32, seq)
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			base := ((b * a.Heads) + h) * seq * seq
			for i := 0; i < seq; i++ {
				p := cache.probs[base+i*seq : base+(i+1)*seq]
				dOut := dctx.Row(b*seq + i)[h*hd : (h+1)*hd]
				var dot float32
				for j := 0; j <= i; j++ {
					vj := row(b, j)
					dvj := drow(b, j)
					var dp float32
					for c := 0; c < hd; c++ {
						dp += dOut[c] * vj[refVOff(a, h, c)]
					}
					pj := p[j]
					for c := 0; c < hd; c++ {
						dvj[refVOff(a, h, c)] += pj * dOut[c]
					}
					ds[j] = dp
					dot += pj * dp
				}
				for j := 0; j <= i; j++ {
					ds[j] = p[j] * (ds[j] - dot)
				}
				qi := row(b, i)
				dqi := drow(b, i)
				for j := 0; j <= i; j++ {
					g := ds[j] * scale
					if g == 0 {
						continue
					}
					kj := row(b, j)
					dkj := drow(b, j)
					for c := 0; c < hd; c++ {
						dqi[refQOff(a, h, c)] += g * kj[refKOff(a, h, c)]
						dkj[refKOff(a, h, c)] += g * qi[refQOff(a, h, c)]
					}
				}
			}
		}
	}
	return a.QKV.Backward(ws, dqkv)
}

// attnShapes exercises non-multiple-of-tile sequence lengths, head counts,
// and batch sizes.
var attnShapes = []struct{ batch, seq, dim, heads int }{
	{1, 1, 8, 1},
	{1, 3, 8, 2},
	{2, 5, 12, 3},
	{2, 7, 16, 4},
	{3, 13, 16, 2},
	{1, 33, 24, 4},
}

func TestAttentionMatchesScalarReference(t *testing.T) {
	for _, sh := range attnShapes {
		rng1 := rand.New(rand.NewSource(77))
		rng2 := rand.New(rand.NewSource(77))
		aNew := NewAttention("attn", sh.dim, sh.heads, 0.05, rng1)
		aRef := NewAttention("attn", sh.dim, sh.heads, 0.05, rng2)

		xr := rand.New(rand.NewSource(int64(sh.batch*1000 + sh.seq)))
		n := sh.batch * sh.seq
		x := tensor.NewMatrix(n, sh.dim)
		tensor.RandNormal(xr, x.Data, 0, 1)
		dy := tensor.NewMatrix(n, sh.dim)
		tensor.RandNormal(xr, dy.Data, 0, 1)

		wsNew, wsRef := NewWorkspace(), NewWorkspace()
		yNew := aNew.Forward(wsNew, x, sh.batch, sh.seq)
		yRef, cache := refAttentionForward(aRef, wsRef, x, sh.batch, sh.seq)
		for i := range yNew.Data {
			if d := math.Abs(float64(yNew.Data[i] - yRef.Data[i])); d > 1e-4 {
				t.Fatalf("shape %+v: forward output[%d] differs by %g (new %g ref %g)",
					sh, i, d, yNew.Data[i], yRef.Data[i])
			}
		}

		dxNew := aNew.Backward(wsNew, dy)
		dxRef := refAttentionBackward(aRef, wsRef, cache, dy, sh.batch, sh.seq)
		for i := range dxNew.Data {
			if d := math.Abs(float64(dxNew.Data[i] - dxRef.Data[i])); d > 1e-4 {
				t.Fatalf("shape %+v: dX[%d] differs by %g", sh, i, d)
			}
		}
		pNew, pRef := aNew.Params(), aRef.Params()
		for pi := range pNew {
			for i := range pNew[pi].Grad {
				if d := math.Abs(float64(pNew[pi].Grad[i] - pRef[pi].Grad[i])); d > 1e-4 {
					t.Fatalf("shape %+v: %s grad[%d] differs by %g",
						sh, pNew[pi].Name, i, d)
				}
			}
		}
	}
}
