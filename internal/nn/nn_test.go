package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"photon/internal/tensor"
)

func testConfig() Config {
	return Config{Name: "test", Blocks: 2, Dim: 16, Heads: 2, ExpRatio: 4,
		VocabSize: 13, SeqLen: 6, Beta1: 0.9, Beta2: 0.95}
}

func testBatch(rng *rand.Rand, cfg Config, b int) Batch {
	batch := Batch{}
	for i := 0; i < b; i++ {
		in := make([]int, cfg.SeqLen)
		tg := make([]int, cfg.SeqLen)
		for t := range in {
			in[t] = rng.Intn(cfg.VocabSize)
			tg[t] = rng.Intn(cfg.VocabSize)
		}
		batch.Inputs = append(batch.Inputs, in)
		batch.Targets = append(batch.Targets, tg)
	}
	return batch
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Blocks = 0 },
		func(c *Config) { c.Dim = -1 },
		func(c *Config) { c.Heads = 0 },
		func(c *Config) { c.Heads = 3 }, // does not divide Dim=16
		func(c *Config) { c.ExpRatio = 0 },
		func(c *Config) { c.VocabSize = 1 },
		func(c *Config) { c.SeqLen = 0 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestParamCountMatchesModel(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(1)))
	if got, want := int64(m.NumParams()), cfg.ParamCount(); got != want {
		t.Fatalf("analytic ParamCount %d != actual %d", want, got)
	}
}

func TestPaperConfigParamCounts(t *testing.T) {
	// The presets must land near their nominal size labels (Table 4).
	want := map[string][2]float64{ // name -> [min, max] in billions
		"75M":  {0.05, 0.12},
		"125M": {0.10, 0.16},
		"350M": {0.28, 0.42},
		"1.3B": {1.1, 1.5},
		"3B":   {2.4, 3.3},
		"7B":   {6.0, 7.5},
	}
	for _, cfg := range PaperConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", cfg.Name, err)
		}
		b := float64(cfg.ParamCount()) / 1e9
		r := want[cfg.Name]
		if b < r[0] || b > r[1] {
			t.Errorf("%s: %0.3fB params outside [%g, %g]B", cfg.Name, b, r[0], r[1])
		}
	}
}

func TestNumericalGradients(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(42))
	m := NewModel(cfg, rng)
	batch := testBatch(rng, cfg, 2)

	m.Params().ZeroGrads()
	m.ForwardBackward(batch)

	const eps = 1e-2
	checked, failures := 0, 0
	for _, p := range m.Params() {
		stride := len(p.Data)/5 + 1
		for i := 0; i < len(p.Data); i += stride {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := m.Loss(batch)
			p.Data[i] = orig - eps
			lm := m.Loss(batch)
			p.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(p.Grad[i])
			diff := math.Abs(num - ana)
			tol := 2e-3 + 0.05*math.Max(math.Abs(num), math.Abs(ana))
			if diff > tol {
				failures++
				if failures <= 5 {
					t.Errorf("%s[%d]: numeric %.6f analytic %.6f (diff %.2g)", p.Name, i, num, ana, diff)
				}
			}
			checked++
		}
	}
	if checked < 40 {
		t.Fatalf("gradient check covered only %d elements", checked)
	}
	if failures > 0 {
		t.Fatalf("%d/%d gradient checks failed", failures, checked)
	}
}

func TestForwardDeterminism(t *testing.T) {
	cfg := testConfig()
	m1 := NewModel(cfg, rand.New(rand.NewSource(7)))
	m2 := NewModel(cfg, rand.New(rand.NewSource(7)))
	batch := testBatch(rand.New(rand.NewSource(9)), cfg, 3)
	l1, l2 := m1.Loss(batch), m2.Loss(batch)
	if l1 != l2 {
		t.Fatalf("same seed, different loss: %v vs %v", l1, l2)
	}
}

func TestInitialLossNearUniform(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(3)))
	batch := testBatch(rand.New(rand.NewSource(4)), cfg, 4)
	loss := m.Loss(batch)
	uniform := math.Log(float64(cfg.VocabSize))
	if math.Abs(loss-uniform) > 0.5 {
		t.Fatalf("initial loss %.3f far from uniform %.3f", loss, uniform)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(5))
	m := NewModel(cfg, rng)
	batch := testBatch(rng, cfg, 4)
	initial := m.Loss(batch)
	// Plain SGD on a fixed batch must overfit it.
	for step := 0; step < 60; step++ {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
		for _, p := range m.Params() {
			tensor.Axpy(-0.5, p.Grad, p.Data)
		}
	}
	final := m.Loss(batch)
	if final >= initial*0.7 {
		t.Fatalf("loss did not drop enough: %.4f -> %.4f", initial, final)
	}
}

func TestCausalityNoFutureLeak(t *testing.T) {
	// Changing a future token must not change logits at earlier positions.
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(6)))
	in1 := [][]int{{1, 2, 3, 4, 5, 6}}
	in2 := [][]int{{1, 2, 3, 4, 5, 9}} // differs only at the last position
	l1 := m.Logits(in1)
	l2 := m.Logits(in2)
	for pos := 0; pos < 5; pos++ {
		for j := 0; j < cfg.VocabSize; j++ {
			if l1.At(pos, j) != l2.At(pos, j) {
				t.Fatalf("logits at position %d changed when future token changed", pos)
			}
		}
	}
	// And the last position must change (sanity that the test has power).
	same := true
	for j := 0; j < cfg.VocabSize; j++ {
		if l1.At(5, j) != l2.At(5, j) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("last-position logits identical despite input change")
	}
}

func TestPaddingTargetsIgnored(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(8)))
	in := [][]int{{1, 2, 3, 4, 5, 6}}
	full := Batch{Inputs: in, Targets: [][]int{{2, 3, 4, 5, 6, 7}}}
	masked := Batch{Inputs: in, Targets: [][]int{{2, 3, 4, -1, -1, -1}}}
	if full.Tokens() != 6 || masked.Tokens() != 3 {
		t.Fatalf("Tokens(): got %d and %d", full.Tokens(), masked.Tokens())
	}
	lf, lm := m.Loss(full), m.Loss(masked)
	if lf == lm {
		t.Fatal("masking targets should change the mean loss")
	}
	// Gradients for a fully masked batch must be zero.
	m.Params().ZeroGrads()
	m.ForwardBackward(Batch{Inputs: in, Targets: [][]int{{-1, -1, -1, -1, -1, -1}}})
	if n := m.Params().GradNorm(); n != 0 {
		t.Fatalf("fully masked batch produced nonzero grad norm %v", n)
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	m1 := NewModel(cfg, rand.New(rand.NewSource(10)))
	m2 := NewModel(cfg, rand.New(rand.NewSource(11)))
	flat := m1.Params().Flatten(nil)
	if err := m2.Params().LoadFlat(flat); err != nil {
		t.Fatal(err)
	}
	batch := testBatch(rand.New(rand.NewSource(12)), cfg, 2)
	if l1, l2 := m1.Loss(batch), m2.Loss(batch); l1 != l2 {
		t.Fatalf("loaded model differs: %v vs %v", l1, l2)
	}
	if err := m2.Params().LoadFlat(flat[:len(flat)-1]); err == nil {
		t.Fatal("LoadFlat accepted wrong length")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := &Param{Name: "p", Data: make([]float32, 2), Grad: []float32{3, 4}}
	ps := ParamSet{p}
	pre := ps.ClipGradNorm(1.0)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm: got %v want 5", pre)
	}
	if post := ps.GradNorm(); math.Abs(post-1) > 1e-5 {
		t.Fatalf("post-clip norm: got %v want 1", post)
	}
	// No-op cases.
	p.Grad = []float32{0.1, 0}
	if got := ps.ClipGradNorm(0); math.Abs(got-0.1) > 1e-6 {
		t.Fatalf("maxNorm<=0 should only report the norm, got %v", got)
	}
	if p.Grad[0] != 0.1 {
		t.Fatal("maxNorm<=0 must not modify gradients")
	}
}

func TestAlibiSlopes(t *testing.T) {
	s := AlibiSlopes(8)
	if len(s) != 8 {
		t.Fatalf("want 8 slopes, got %d", len(s))
	}
	if math.Abs(float64(s[0])-0.5) > 1e-6 {
		t.Fatalf("first slope for 8 heads should be 2^-1: got %v", s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] || s[i] <= 0 {
			t.Fatal("slopes must be positive and strictly decreasing")
		}
	}
}

func TestPerplexity(t *testing.T) {
	if got := Perplexity(0); got != 1 {
		t.Fatalf("Perplexity(0): got %v want 1", got)
	}
	if got := Perplexity(math.Log(42)); math.Abs(got-42) > 1e-9 {
		t.Fatalf("Perplexity(ln 42): got %v want 42", got)
	}
}

// Property: loss is permutation-equivariant across batch rows — shuffling
// the sequences in a batch must not change the mean loss.
func TestBatchPermutationInvarianceProperty(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(13)))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := testBatch(r, cfg, 3)
		l1 := m.Loss(b)
		perm := Batch{
			Inputs:  [][]int{b.Inputs[2], b.Inputs[0], b.Inputs[1]},
			Targets: [][]int{b.Targets[2], b.Targets[0], b.Targets[1]},
		}
		l2 := m.Loss(perm)
		return math.Abs(l1-l2) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradient accumulation over two calls equals one call on the
// concatenated batch scaled appropriately (same per-token normalization when
// batches have equal token counts).
func TestGradAccumulationProperty(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(14))
	m := NewModel(cfg, rng)
	b1 := testBatch(rng, cfg, 2)
	b2 := testBatch(rng, cfg, 2)

	m.Params().ZeroGrads()
	m.ForwardBackward(b1)
	m.ForwardBackward(b2)
	accum := make([]float32, 0, m.NumParams())
	for _, p := range m.Params() {
		accum = append(accum, p.Grad...)
	}

	joint := Batch{Inputs: append(append([][]int{}, b1.Inputs...), b2.Inputs...),
		Targets: append(append([][]int{}, b1.Targets...), b2.Targets...)}
	m.Params().ZeroGrads()
	m.ForwardBackward(joint)
	i := 0
	for _, p := range m.Params() {
		for _, g := range p.Grad {
			// Joint batch normalizes by 2x tokens, so accumulated grads are 2x.
			if math.Abs(float64(accum[i])-2*float64(g)) > 1e-3+0.02*math.Abs(float64(g)) {
				t.Fatalf("accumulated grad mismatch at %d: %v vs 2*%v", i, accum[i], g)
			}
			i++
		}
	}
}

func TestGELUGradNumerical(t *testing.T) {
	for _, x := range []float32{-3, -1, -0.1, 0, 0.1, 1, 3} {
		const eps = 1e-3
		num := (float64(geluScalar(x+eps)) - float64(geluScalar(x-eps))) / (2 * eps)
		ana := float64(geluGradScalar(x))
		if math.Abs(num-ana) > 1e-3 {
			t.Fatalf("GELU grad at %v: numeric %v analytic %v", x, num, ana)
		}
	}
}

func TestRaggedBatchPanics(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(15)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged batch")
		}
	}()
	m.Logits([][]int{{1, 2, 3}, {1, 2}})
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(16)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-vocab token")
		}
	}()
	m.Logits([][]int{{cfg.VocabSize}})
}

// Regression: a Targets that covers fewer rows than Inputs (or none at all)
// must behave as all-padding for the uncovered rows — zero loss, zero
// gradient — and must not read stale target ids from the recycled scratch.
func TestPartialTargetsTreatedAsPadding(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, rand.New(rand.NewSource(20)))
	in := [][]int{{1, 2, 3, 4, 5, 6}, {2, 3, 4, 5, 6, 7}}
	// Warm the scratch with a fully labeled batch first.
	full := Batch{Inputs: in, Targets: [][]int{{2, 3, 4, 5, 6, 7}, {3, 4, 5, 6, 7, 8}}}
	m.Loss(full)
	// Empty targets: no labeled tokens anywhere.
	if got := m.Loss(Batch{Inputs: in, Targets: [][]int{}}); got != 0 {
		t.Fatalf("empty Targets: loss %v, want 0", got)
	}
	// One row of targets for two input rows: must equal a batch where the
	// second row is explicitly padded.
	partial := Batch{Inputs: in, Targets: [][]int{{2, 3, 4, 5, 6, 7}}}
	padded := Batch{Inputs: in, Targets: [][]int{{2, 3, 4, 5, 6, 7}, {-1, -1, -1, -1, -1, -1}}}
	if lp, lw := m.Loss(partial), m.Loss(padded); lp != lw {
		t.Fatalf("partial Targets: loss %v, explicit padding %v", lp, lw)
	}
	m.Params().ZeroGrads()
	m.ForwardBackward(Batch{Inputs: in, Targets: [][]int{}})
	if n := m.Params().GradNorm(); n != 0 {
		t.Fatalf("empty Targets produced nonzero grad norm %v", n)
	}
}
