package nn_test

import (
	"math/rand"
	"testing"

	"photon/internal/nn"
	"photon/internal/opt"
)

// TestTrainStepZeroAlloc asserts the headline workspace guarantee: after
// warm-up, a full training step — zero grads, forward, backward, clip, AdamW
// update — performs zero heap allocations. Every activation lives in the
// model's workspace, every optimizer/state buffer is reused in place, and
// the kernel dispatcher degrades to inline execution without allocating.
// (testing.AllocsPerRun pins GOMAXPROCS to 1, so this measures the serial
// path; the parallel dispatcher is allocation-free by construction — tasks
// travel by value and completion groups are recycled — but goroutine
// scheduling noise makes that impractical to assert directly.)
func TestTrainStepZeroAlloc(t *testing.T) {
	cfg := nn.Config{Name: "alloc", Blocks: 2, Dim: 32, Heads: 4, ExpRatio: 4,
		VocabSize: 64, SeqLen: 32, Beta1: 0.9, Beta2: 0.95}
	rng := rand.New(rand.NewSource(1))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	optimizer := opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01)

	step := func() {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
		m.Params().ClipGradNorm(1.0)
		optimizer.Step(m.Params(), 1e-3)
	}
	// Warm up: first steps grow the workspace, optimizer state, and scratch.
	step()
	step()
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Fatalf("steady-state train step allocates: %v allocs/step, want 0", allocs)
	}
}

// TestLossZeroAlloc asserts the evaluation path (Loss without gradients) is
// also allocation-free after warm-up — validation sweeps inside training
// loops run at full model size every few steps.
func TestLossZeroAlloc(t *testing.T) {
	cfg := nn.Config{Name: "alloc", Blocks: 2, Dim: 32, Heads: 2, ExpRatio: 4,
		VocabSize: 64, SeqLen: 16, Beta1: 0.9, Beta2: 0.95}
	rng := rand.New(rand.NewSource(2))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	m.Loss(batch)
	m.Loss(batch)
	if allocs := testing.AllocsPerRun(10, func() { m.Loss(batch) }); allocs != 0 {
		t.Fatalf("steady-state Loss allocates: %v allocs/run, want 0", allocs)
	}
}

// TestOptimizerResetKeepsCapacity asserts Reset zeroes state in place
// instead of dropping it: the step after a Reset must not reallocate.
func TestOptimizerResetKeepsCapacity(t *testing.T) {
	cfg := nn.Config{Name: "alloc", Blocks: 1, Dim: 16, Heads: 2, ExpRatio: 4,
		VocabSize: 32, SeqLen: 8, Beta1: 0.9, Beta2: 0.95}
	rng := rand.New(rand.NewSource(3))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 1)
	for _, optimizer := range []opt.Optimizer{
		opt.NewAdamW(0.9, 0.95, 0.01),
		&opt.Momentum{Mu: 0.9},
	} {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
		optimizer.Step(m.Params(), 1e-3)
		allocs := testing.AllocsPerRun(5, func() {
			optimizer.Reset()
			optimizer.Step(m.Params(), 1e-3)
		})
		if allocs != 0 {
			t.Fatalf("%s: Reset+Step allocates %v allocs, want 0 (state should be zeroed in place)",
				optimizer.Name(), allocs)
		}
	}
}
