package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// decodeCfg is a multi-layer configuration so the equivalence tests cover
// cross-layer cache propagation, not just a single attention.
func decodeCfg() Config {
	return Config{
		VocabSize: 61,
		Dim:       24,
		Heads:     3,
		Blocks:    3,
		ExpRatio:  2,
		SeqLen:    16,
	}
}

// maxAbsDiff returns the largest elementwise |a-b|.
func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

// TestDecodeMatchesFullRecompute is the tentpole equivalence: KV-cached
// token-by-token decoding must produce (within float tolerance — the decode
// and training kernels sum in different orders) the same next-token logits as
// a full recompute of the growing prefix through Logits at every step.
func TestDecodeMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := NewModel(decodeCfg(), rng)

	seq := make([]int, 12)
	for i := range seq {
		seq[i] = rng.Intn(m.Cfg.VocabSize)
	}

	st := m.NewDecodeState(len(seq))
	for n := 1; n <= len(seq); n++ {
		// Cached path: feed one new token, read the last row's logits.
		h := m.Decode([]*DecodeState{st}, [][]int{seq[n-1 : n]})
		got := m.DecodeLogits(h, []int{h.Rows - 1})

		// Reference: full recompute of the whole prefix.
		want := m.Logits([][]int{seq[:n]})
		wrow := want.Row(n - 1)

		if d := maxAbsDiff(got.Row(0), wrow); d > 1e-4 {
			t.Fatalf("step %d: cached logits diverge from recompute by %g", n, d)
		}
	}
	if st.Len() != len(seq) {
		t.Fatalf("cache length %d after %d tokens", st.Len(), len(seq))
	}
}

// TestDecodePrefillMatchesFullForward checks that a one-shot multi-token
// prefill produces the same hidden rows as the training forward, for every
// position at once.
func TestDecodePrefillMatchesFullForward(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := NewModel(decodeCfg(), rng)

	seq := make([]int, 10)
	for i := range seq {
		seq[i] = rng.Intn(m.Cfg.VocabSize)
	}
	st := m.NewDecodeState(len(seq))
	h := m.Decode([]*DecodeState{st}, [][]int{seq})
	rows := make([]int, len(seq))
	for i := range rows {
		rows[i] = i
	}
	got := m.DecodeLogits(h, rows)
	want := m.Logits([][]int{seq})
	if d := maxAbsDiff(got.Data, want.Data); d > 1e-4 {
		t.Fatalf("prefill logits diverge from full forward by %g", d)
	}
}

// TestDecodeMixedBatch runs a continuous-batching-shaped step — one sequence
// prefilling its whole prompt while another decodes a single token over an
// existing cache — and checks both against independent single-sequence
// recomputes. This pins the row-offset bookkeeping across ragged batches.
func TestDecodeMixedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := NewModel(decodeCfg(), rng)
	V := m.Cfg.VocabSize

	seqA := []int{3, 17, 42, 8, 55, 21, 9}
	seqB := []int{50, 2, 33, 14}

	// Warm sequence A's cache over all but its last token.
	stA := m.NewDecodeState(16)
	m.Decode([]*DecodeState{stA}, [][]int{seqA[:len(seqA)-1]})
	stB := m.NewDecodeState(16)

	// Mixed step: A decodes one token, B prefills its whole prompt.
	h := m.Decode([]*DecodeState{stA, stB}, [][]int{seqA[len(seqA)-1:], seqB})
	logits := m.DecodeLogits(h, []int{0, h.Rows - 1})

	wantA := m.Logits([][]int{seqA})
	wantB := m.Logits([][]int{seqB})
	if d := maxAbsDiff(logits.Row(0), wantA.Row(len(seqA)-1)); d > 1e-4 {
		t.Fatalf("decoding sequence diverges by %g in mixed batch", d)
	}
	if d := maxAbsDiff(logits.Row(1), wantB.Row(len(seqB)-1)); d > 1e-4 {
		t.Fatalf("prefilling sequence diverges by %g in mixed batch", d)
	}
	if stA.Len() != len(seqA) || stB.Len() != len(seqB) {
		t.Fatalf("cache lengths %d/%d, want %d/%d", stA.Len(), stB.Len(), len(seqA), len(seqB))
	}
	_ = V
}

// TestDecodeStateReuse pins Reset/Truncate: a reset state re-decodes a new
// sequence from scratch, and a truncated state continues identically to a
// fresh cache fed the retained prefix.
func TestDecodeStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := NewModel(decodeCfg(), rng)

	seq := []int{5, 9, 13, 2, 44, 7}
	st := m.NewDecodeState(16)
	m.Decode([]*DecodeState{st}, [][]int{{11, 23, 31}})
	st.Reset()
	h := m.Decode([]*DecodeState{st}, [][]int{seq})
	got := m.DecodeLogits(h, []int{h.Rows - 1}).Clone()

	fresh := m.NewDecodeState(16)
	h2 := m.Decode([]*DecodeState{fresh}, [][]int{seq})
	// Clone: the workspace-resident logits are invalidated by the next Decode.
	want := m.DecodeLogits(h2, []int{h2.Rows - 1}).Clone()
	if d := maxAbsDiff(got.Data, want.Data); d != 0 {
		t.Fatalf("reset state diverges from fresh state by %g", d)
	}

	// Truncate back to a prefix and re-decode the suffix. Row counts differ
	// from the fresh path (3 vs 6), so the row-paired matmul micro-kernels
	// sum in a different order — tight tolerance, not bitwise equality.
	st.Truncate(3)
	h3 := m.Decode([]*DecodeState{st}, [][]int{seq[3:]})
	got3 := m.DecodeLogits(h3, []int{h3.Rows - 1})
	if d := maxAbsDiff(got3.Data, want.Data); d > 1e-6 {
		t.Fatalf("truncated state diverges by %g", d)
	}
}

// TestDecodeOverflowPanics pins the cache-capacity check.
func TestDecodeOverflowPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := NewModel(decodeCfg(), rng)
	st := m.NewDecodeState(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cache overflow")
		}
	}()
	m.Decode([]*DecodeState{st}, [][]int{{1, 2, 3, 4, 5}})
}

// TestDecodeStepZeroAlloc is the acceptance criterion for the workspace
// size-class retention policy: after warming the power-of-two buckets by
// decoding a sequence to the cache capacity once, a steady-state
// single-sequence decode step performs zero heap allocations even though its
// scratch shapes keep growing.
func TestDecodeStepZeroAlloc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	rng := rand.New(rand.NewSource(61))
	m := NewModel(decodeCfg(), rng)
	const maxSeq = 64

	st := m.NewDecodeState(maxSeq)
	tok := []int{1}
	states := []*DecodeState{st}
	tokens := [][]int{tok}

	// Warm every size-class bucket: decode to capacity once.
	for i := 0; i < maxSeq; i++ {
		tok[0] = i % m.Cfg.VocabSize
		h := m.Decode(states, tokens)
		m.DecodeLogits(h, []int{0})
	}
	st.Reset()
	pos := 0
	step := func() {
		tok[0] = pos % m.Cfg.VocabSize
		h := m.Decode(states, tokens)
		m.DecodeLogits(h, []int{0})
		pos++
		if pos == maxSeq {
			st.Reset()
			pos = 0
		}
	}
	step()
	step()
	if allocs := testing.AllocsPerRun(2*maxSeq, step); allocs != 0 {
		t.Fatalf("steady-state decode step allocates %.1f times", allocs)
	}
}
