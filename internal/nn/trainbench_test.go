package nn_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"photon/internal/bench"
	"photon/internal/nn"
	"photon/internal/opt"
)

// benchConfig is the Quick-scale throughput shape, shared with the
// train-throughput experiment (bench.TrainBenchShape) so the committed
// BENCH_train.json and `photon-bench -exp train-throughput` measure the
// same workload.
func benchConfig() nn.Config {
	cfg, _ := bench.TrainBenchShape()
	return cfg
}

func benchBatch(rng *rand.Rand, cfg nn.Config, b int) nn.Batch {
	batch := nn.Batch{}
	for i := 0; i < b; i++ {
		in := make([]int, cfg.SeqLen)
		tg := make([]int, cfg.SeqLen)
		for t := range in {
			in[t] = rng.Intn(cfg.VocabSize)
			tg[t] = rng.Intn(cfg.VocabSize)
		}
		batch.Inputs = append(batch.Inputs, in)
		batch.Targets = append(batch.Targets, tg)
	}
	return batch
}

// BenchmarkTrainStep measures one full training step — zero grads, forward,
// backward, clip, AdamW update — and reports tokens/sec, the headline
// local-compute throughput number for the federated simulation.
func BenchmarkTrainStep(b *testing.B) {
	cfg := benchConfig()
	rng := rand.New(rand.NewSource(1))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	optimizer := opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01)
	tokens := batch.Tokens()

	// Warm up optimizer state and scratch buffers outside the timed region.
	bench.TrainStep(m, batch, optimizer, 1e-4)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.TrainStep(m, batch, optimizer, 1e-4)
	}
	b.StopTimer()
	nsPerStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(tokens)/(nsPerStep/1e9), "tokens/s")
}

// BenchmarkForwardBackward isolates loss+gradient compute (no optimizer).
func BenchmarkForwardBackward(b *testing.B) {
	cfg := benchConfig()
	rng := rand.New(rand.NewSource(2))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	tokens := batch.Tokens()
	m.Params().ZeroGrads()
	m.ForwardBackward(batch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
	}
	b.StopTimer()
	nsPerStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(tokens)/(nsPerStep/1e9), "tokens/s")
}

// BenchmarkAttentionForwardBackward isolates the attention sublayer — the
// O(B·H·T²·d) term the batched kernels rewrote — via a 1-block model with a
// long sequence.
func BenchmarkAttentionForwardBackward(b *testing.B) {
	cfg := benchConfig()
	cfg.Blocks = 1
	rng := rand.New(rand.NewSource(3))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	tokens := batch.Tokens()
	m.Params().ZeroGrads()
	m.ForwardBackward(batch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
	}
	b.StopTimer()
	nsPerStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(tokens)/(nsPerStep/1e9), "tokens/s")
}

// prePRBaseline is the pre-kernel/pre-workspace BenchmarkTrainStep result
// (commit 4de1506, this benchmark shape), recorded so the committed
// BENCH_train.json carries the first two points of the training-throughput
// trajectory. The timing was taken in the same machine window as the
// committed "current" measurement (interleaved runs of the two test
// binaries — the build host has variable hypervisor CPU steal, so only
// same-window comparisons are meaningful; repeated A/B rounds measured
// 2.0–2.8×, min-vs-min 2.3×). The allocation figures are deterministic.
var prePRBaseline = struct {
	NsPerStep     float64
	TokensPerSec  float64
	BytesPerStep  int64
	AllocsPerStep int64
}{200464446, 2554, 10627440, 142}

// TestWriteTrainBenchJSON emits the training-throughput trajectory as
// machine-readable JSON when BENCH_TRAIN_JSON names an output path — the CI
// hook behind BENCH_train.json. It runs the same measurement as
// BenchmarkTrainStep through testing.Benchmark so the committed artifact and
// `go test -bench=Step` can never drift apart.
func TestWriteTrainBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_TRAIN_JSON")
	if path == "" {
		t.Skip("BENCH_TRAIN_JSON not set")
	}
	cfg := benchConfig()
	rng := rand.New(rand.NewSource(1))
	m := nn.NewModel(cfg, rng)
	batch := benchBatch(rng, cfg, 2)
	optimizer := opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01)
	tokens := batch.Tokens()

	bench.TrainStep(m, batch, optimizer, 1e-4)

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bench.TrainStep(m, batch, optimizer, 1e-4)
		}
	})
	nsPerStep := float64(res.T.Nanoseconds()) / float64(res.N)
	type point struct {
		NsPerStep     float64 `json:"ns_per_step"`
		TokensPerSec  float64 `json:"tokens_per_sec"`
		BytesPerStep  int64   `json:"bytes_per_step"`
		AllocsPerStep int64   `json:"allocs_per_step"`
	}
	report := struct {
		Config          string  `json:"config"`
		BatchSize       int     `json:"batch_size"`
		SeqLen          int     `json:"seq_len"`
		TokensPerStep   int     `json:"tokens_per_step"`
		Current         point   `json:"current"`
		Baseline        point   `json:"baseline_pre_kernels"`
		SpeedupVsBase   float64 `json:"speedup_vs_baseline"`
		PairedSpeedup   string  `json:"paired_speedup"`
		BaselineComment string  `json:"baseline_comment"`
		Comment         string  `json:"comment"`
	}{
		Config:        cfg.Name,
		BatchSize:     batch.Size(),
		SeqLen:        cfg.SeqLen,
		TokensPerStep: tokens,
		Current: point{
			NsPerStep:     nsPerStep,
			TokensPerSec:  float64(tokens) / (nsPerStep / 1e9),
			BytesPerStep:  res.AllocedBytesPerOp(),
			AllocsPerStep: res.AllocsPerOp(),
		},
		Baseline: point{
			NsPerStep:     prePRBaseline.NsPerStep,
			TokensPerSec:  prePRBaseline.TokensPerSec,
			BytesPerStep:  prePRBaseline.BytesPerStep,
			AllocsPerStep: prePRBaseline.AllocsPerStep,
		},
		SpeedupVsBase:   prePRBaseline.NsPerStep / nsPerStep,
		PairedSpeedup:   "interleaved same-window A/B vs commit 4de1506: 2.0-2.8x (min-vs-min 2.3x)",
		BaselineComment: "scalar-loop attention + per-step allocations, commit 4de1506",
		Comment:         "full train step (zero grads + fwd + bwd + clip + AdamW) at Quick scale",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (%.0f tokens/s, %.2fx vs baseline)\n", path, report.Current.TokensPerSec, report.SpeedupVsBase)
}
