package nn

import "fmt"

// Config describes a decoder-only transformer in the MPT style used by the
// paper (Table 4): pre-LN blocks, ALiBi attention, 4x MLP expansion, tied
// input/output embeddings, no projection biases.
type Config struct {
	Name      string  // human-readable size label, e.g. "125M"
	Blocks    int     // number of transformer blocks
	Dim       int     // hidden model dimension d
	Heads     int     // attention heads (must divide Dim)
	ExpRatio  int     // MLP expansion ratio (4 throughout the paper)
	VocabSize int     // tokenizer vocabulary size
	SeqLen    int     // training sequence length l
	Beta1     float64 // AdamW β1 (Table 4)
	Beta2     float64 // AdamW β2 (Table 4)
	InitStd   float64 // weight init standard deviation (0 → 0.02 default)
}

// Validate reports whether the configuration is trainable.
func (c Config) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("nn: config %q: Blocks must be positive, got %d", c.Name, c.Blocks)
	case c.Dim <= 0:
		return fmt.Errorf("nn: config %q: Dim must be positive, got %d", c.Name, c.Dim)
	case c.Heads <= 0:
		return fmt.Errorf("nn: config %q: Heads must be positive, got %d", c.Name, c.Heads)
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("nn: config %q: Heads %d must divide Dim %d", c.Name, c.Heads, c.Dim)
	case c.ExpRatio <= 0:
		return fmt.Errorf("nn: config %q: ExpRatio must be positive, got %d", c.Name, c.ExpRatio)
	case c.VocabSize <= 1:
		return fmt.Errorf("nn: config %q: VocabSize must be > 1, got %d", c.Name, c.VocabSize)
	case c.SeqLen <= 0:
		return fmt.Errorf("nn: config %q: SeqLen must be positive, got %d", c.Name, c.SeqLen)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Dim / c.Heads }

// ParamCount returns the exact number of trainable scalars for the
// configuration: tied token embedding (V·d), per block the fused QKV
// projection (d·3d), output projection (d·d), two LayerNorms (2·2d), and the
// MLP (d·rd + rd·d), plus the final LayerNorm (2d).
func (c Config) ParamCount() int64 {
	d := int64(c.Dim)
	v := int64(c.VocabSize)
	r := int64(c.ExpRatio)
	perBlock := d*3*d + d*d + 4*d + d*r*d + r*d*d
	return v*d + int64(c.Blocks)*perBlock + 2*d
}

// FLOPsPerToken estimates the forward-pass FLOPs per token using the
// standard 2·params approximation plus the attention score term, which the
// hardware model uses for MFU accounting.
func (c Config) FLOPsPerToken() float64 {
	base := 2 * float64(c.ParamCount())
	attn := 2 * 2 * float64(c.Blocks) * float64(c.SeqLen) * float64(c.Dim)
	return base + attn
}

// The paper's tokenizer (GPT-NeoX-20B) vocabulary size.
const paperVocab = 50368

// Paper-scale configurations from Table 4. These presets are used for
// parameter-count, FLOPs, VRAM, and wall-time analytics; they are far too
// large to train inside the test suite.
var (
	Config75M = Config{Name: "75M", Blocks: 3, Dim: 896, Heads: 16, ExpRatio: 4,
		VocabSize: paperVocab, SeqLen: 1024, Beta1: 0.9, Beta2: 0.95}
	Config125M = Config{Name: "125M", Blocks: 12, Dim: 768, Heads: 12, ExpRatio: 4,
		VocabSize: paperVocab, SeqLen: 2048, Beta1: 0.9, Beta2: 0.95}
	Config350M = Config{Name: "350M", Blocks: 24, Dim: 1024, Heads: 16, ExpRatio: 4,
		VocabSize: paperVocab, SeqLen: 2048, Beta1: 0.9, Beta2: 0.95}
	Config1B = Config{Name: "1.3B", Blocks: 24, Dim: 2048, Heads: 16, ExpRatio: 4,
		VocabSize: paperVocab, SeqLen: 2048, Beta1: 0.9, Beta2: 0.95}
	Config3B = Config{Name: "3B", Blocks: 32, Dim: 2560, Heads: 20, ExpRatio: 4,
		VocabSize: paperVocab, SeqLen: 2048, Beta1: 0.9, Beta2: 0.95}
	Config7B = Config{Name: "7B", Blocks: 32, Dim: 4096, Heads: 32, ExpRatio: 4,
		VocabSize: paperVocab, SeqLen: 2048, Beta1: 0.9, Beta2: 0.95}
)

// PaperConfigs lists the Table 4 presets in size order.
func PaperConfigs() []Config {
	return []Config{Config75M, Config125M, Config350M, Config1B, Config3B, Config7B}
}

// Laptop-scale proxy configurations actually trained by the experiment
// harness. They keep the architecture family (same code path, same
// hyperparameter structure) at sizes where hundreds of federated rounds run
// in seconds. The three sizes stand in for the paper's 1.3B/3B/7B scaling
// study: monotonically increasing capacity over the same synthetic corpus.
var (
	ConfigTiny = Config{Name: "tiny", Blocks: 2, Dim: 32, Heads: 2, ExpRatio: 4,
		VocabSize: 64, SeqLen: 32, Beta1: 0.9, Beta2: 0.95}
	ConfigTinyS = Config{Name: "tiny-1B-proxy", Blocks: 2, Dim: 32, Heads: 4, ExpRatio: 4,
		VocabSize: 64, SeqLen: 32, Beta1: 0.9, Beta2: 0.95}
	ConfigTinyM = Config{Name: "tiny-3B-proxy", Blocks: 3, Dim: 48, Heads: 4, ExpRatio: 4,
		VocabSize: 64, SeqLen: 32, Beta1: 0.9, Beta2: 0.95}
	ConfigTinyL = Config{Name: "tiny-7B-proxy", Blocks: 4, Dim: 64, Heads: 4, ExpRatio: 4,
		VocabSize: 64, SeqLen: 32, Beta1: 0.9, Beta2: 0.95}
)
