package nn

import (
	"math"
	"math/rand"
	"testing"

	"photon/internal/tensor"
)

// TestSamplerGreedy pins that the zero value of SampleOpts is argmax and
// ignores the random source entirely.
func TestSamplerGreedy(t *testing.T) {
	logits := []float32{0.1, 2.5, -1, 2.4}
	var s Sampler
	if got := s.Sample(nil, logits, SampleOpts{}); got != 1 {
		t.Fatalf("greedy picked %d, want 1", got)
	}
	if got := s.Sample(nil, logits, SampleOpts{Temperature: -1}); got != 1 {
		t.Fatalf("negative temperature picked %d, want 1", got)
	}
}

// TestSamplerTopK checks that sampling never escapes the top-K set, and that
// K=1 degenerates to greedy regardless of temperature.
func TestSamplerTopK(t *testing.T) {
	logits := []float32{3, 1, 2.5, -4, 2.8}
	topSet := map[int]bool{0: true, 4: true, 2: true} // three largest
	var s Sampler
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		got := s.Sample(rng, logits, SampleOpts{Temperature: 2, TopK: 3})
		if !topSet[got] {
			t.Fatalf("top-3 sampling escaped the set: token %d", got)
		}
	}
	for i := 0; i < 20; i++ {
		if got := s.Sample(rng, logits, SampleOpts{Temperature: 5, TopK: 1}); got != 0 {
			t.Fatalf("top-1 sampling picked %d, want 0", got)
		}
	}
}

// TestSamplerTopP checks nucleus sampling: with one dominant token holding
// more than P of the mass, the nucleus is exactly that token.
func TestSamplerTopP(t *testing.T) {
	// softmax(10, 0, 0, 0) puts ~0.99986 on token 0.
	logits := []float32{10, 0, 0, 0}
	var s Sampler
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if got := s.Sample(rng, logits, SampleOpts{Temperature: 1, TopP: 0.9}); got != 0 {
			t.Fatalf("nucleus escaped the dominant token: %d", got)
		}
	}
	// With uniform logits, top-p=0.5 keeps exactly half the tokens: ids 0,1.
	uniform := []float32{1, 1, 1, 1}
	for i := 0; i < 200; i++ {
		got := s.Sample(rng, uniform, SampleOpts{Temperature: 1, TopP: 0.5})
		if got > 1 {
			t.Fatalf("uniform top-p=0.5 should keep tokens {0,1}, got %d", got)
		}
	}
}

// TestSamplerDeterministic pins the determinism contract: the same logits,
// options, and RNG state reproduce the same token stream.
func TestSamplerDeterministic(t *testing.T) {
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	logits := []float32{0.3, 1.2, -0.5, 0.9, 0.1}
	var sa, sb Sampler
	o := SampleOpts{Temperature: 1.3, TopK: 4, TopP: 0.95}
	for i := 0; i < 50; i++ {
		a := sa.Sample(rngA, logits, o)
		b := sb.Sample(rngB, logits, o)
		if a != b {
			t.Fatalf("step %d: samplers diverged (%d vs %d)", i, a, b)
		}
	}
}

// TestSamplerMatchesDistribution draws many samples at temperature 1 with no
// filters and checks the empirical frequencies against the softmax within a
// loose statistical tolerance.
func TestSamplerMatchesDistribution(t *testing.T) {
	logits := []float32{1, 0, -1}
	want := make([]float64, len(logits))
	var z float64
	for _, v := range logits {
		z += math.Exp(float64(v))
	}
	for i, v := range logits {
		want[i] = math.Exp(float64(v)) / z
	}
	var s Sampler
	rng := rand.New(rand.NewSource(3))
	const trials = 20000
	counts := make([]int, len(logits))
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng, logits, SampleOpts{Temperature: 1})]++
	}
	for i := range counts {
		got := float64(counts[i]) / trials
		if math.Abs(got-want[i]) > 0.02 {
			t.Fatalf("token %d frequency %.3f, want %.3f", i, got, want[i])
		}
	}
}

// TestGenerateOptsMatchesRecompute is the satellite equivalence: greedy
// generation through the KV-cached path must pick the same tokens as a manual
// argmax loop that recomputes the full (growing) context each step.
func TestGenerateOptsMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := NewModel(decodeCfg(), rng)
	prompt := []int{4, 9, 2}
	const n = 8

	got := m.Generate(nil, prompt, n, 0)

	ctx := append([]int(nil), prompt...)
	for i := 0; i < n; i++ {
		logits := m.Logits([][]int{ctx})
		next := tensor.ArgMax(logits.Row(len(ctx) - 1))
		if got[i] != next {
			t.Fatalf("token %d: cached path picked %d, recompute picked %d", i, got[i], next)
		}
		ctx = append(ctx, next)
	}
}

// TestGenerateOptsSampledDeterministic checks that sampled generation with the
// same seed reproduces itself, and that top-k constrained generation emits
// valid vocabulary ids.
func TestGenerateOptsSampledDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := NewModel(decodeCfg(), rng)
	o := SampleOpts{Temperature: 0.9, TopK: 10, TopP: 0.95}

	a := m.GenerateOpts(rand.New(rand.NewSource(5)), []int{1, 2}, 12, o)
	b := m.GenerateOpts(rand.New(rand.NewSource(5)), []int{1, 2}, 12, o)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at token %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= m.Cfg.VocabSize {
			t.Fatalf("token %d out of vocabulary: %d", i, a[i])
		}
	}
}
