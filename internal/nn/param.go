// Package nn implements the decoder-only transformer language model trained
// by Photon, in the style of the MPT family the paper uses: pre-LayerNorm
// blocks, multi-head causal self-attention with ALiBi positional biases, a
// 4x GELU MLP, no biases on projections, and a token embedding tied to the
// output projection.
//
// Forward and backward passes are written by hand (no autograd): each layer
// caches the activations its backward pass needs. The model exposes its
// parameters as a flat list of named tensors so optimizers and the federated
// aggregation layer can treat the model as a single parameter vector.
package nn

import (
	"fmt"
	"math"

	"photon/internal/tensor"
)

// Param is a named trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	Data []float32
	Grad []float32
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float32, n), Grad: make([]float32, n)}
}

// ZeroGrad clears the gradient accumulator.
//
//photon:hotpath
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// ParamSet is an ordered collection of parameters, the unit exchanged
// between Photon clients and the aggregator.
type ParamSet []*Param

// NumElements returns the total number of scalar parameters.
//
//photon:hotpath
func (ps ParamSet) NumElements() int {
	n := 0
	for _, p := range ps {
		n += len(p.Data)
	}
	return n
}

// Flatten copies all parameter values into a single vector, allocating it if
// dst is nil or mis-sized. The layout is the concatenation of parameters in
// set order, which is deterministic for a given model configuration.
//
//photon:allocok
func (ps ParamSet) Flatten(dst []float32) []float32 {
	n := ps.NumElements()
	if len(dst) != n {
		dst = make([]float32, n)
	}
	off := 0
	for _, p := range ps {
		copy(dst[off:], p.Data)
		off += len(p.Data)
	}
	return dst
}

// LoadFlat copies a flat vector produced by Flatten back into the
// parameters. It returns an error if the vector length does not match.
//
//photon:hotpath
func (ps ParamSet) LoadFlat(src []float32) error {
	if len(src) != ps.NumElements() {
		return flatLenError(len(src), ps.NumElements())
	}
	off := 0
	for _, p := range ps {
		copy(p.Data, src[off:off+len(p.Data)])
		off += len(p.Data)
	}
	return nil
}

// ZeroGrads clears every gradient in the set.
//
//photon:hotpath
func (ps ParamSet) ZeroGrads() {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm across all gradients.
//
//photon:hotpath
func (ps ParamSet) GradNorm() float64 {
	var s float64
	for _, p := range ps {
		for _, g := range p.Grad {
			s += float64(g) * float64(g)
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm scales all gradients so the global norm does not exceed
// maxNorm, and returns the pre-clip norm. A maxNorm <= 0 disables clipping.
//
//photon:hotpath
func (ps ParamSet) ClipGradNorm(maxNorm float64) float64 {
	norm := ps.GradNorm()
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, p := range ps {
		tensor.Scale(scale, p.Grad)
	}
	return norm
}

// flatLenError builds LoadFlat's mismatch error off the hot path, so the
// matching-length case stays allocation-free.
//
//photon:allocok
func flatLenError(got, want int) error {
	return fmt.Errorf("nn: flat vector has %d elements, model has %d", got, want)
}
