package nn

import (
	"math"
	"math/rand"

	"photon/internal/tensor"
)

// Attention implements multi-head causal self-attention with ALiBi
// positional biases (the MPT positional scheme): score(i,j) gets an additive
// bias slope_h·(j−i) for j ≤ i, and −∞ for j > i.
//
// The hot path is expressed entirely in batched, cache-blocked kernels: the
// fused QKV activation is re-materialized into contiguous per-head [T, d]
// panels, and scores / softmax / context become three batched matrix products
// per (batch × head) work item dispatched across the tensor worker pool —
// instead of the former triple scalar loops on one goroutine. Every
// intermediate lives in the model's workspace, so a warm step allocates
// nothing.
type Attention struct {
	Dim, Heads, HeadDim int

	QKV *Linear // fused projection Dim -> 3·Dim
	Out *Linear // output projection Dim -> Dim
	sl  []float32

	// caches for backward (workspace lifetime: valid until the next Reset)
	q, k, v    *tensor.Matrix // per-head panels [B·H·T, d]
	probs      *tensor.Matrix // attention probabilities [B·H·T, T]
	batch, seq int

	// decItems is the ragged work-item scratch for the KV-cached decode
	// path; kept on the layer so a steady-state decode step reuses it.
	decItems []tensor.DecodeItem
}

// NewAttention creates the attention sublayer.
func NewAttention(name string, dim, heads int, std float64, rng *rand.Rand) *Attention {
	return &Attention{
		Dim: dim, Heads: heads, HeadDim: dim / heads,
		QKV: NewLinear(name+".qkv", dim, 3*dim, false, std, rng),
		Out: NewLinear(name+".out", dim, dim, false, std, rng),
		sl:  AlibiSlopes(heads),
	}
}

// Params returns all attention parameters.
func (a *Attention) Params() ParamSet {
	return append(a.QKV.Params(), a.Out.Params()...)
}

// gatherPanels re-materializes the fused QKV activation [B·T, 3D] into three
// contiguous per-head panels [B·H·T, d] so the batched kernels stream unit-
// stride rows instead of striding across the fused layout.
//
//photon:hotpath
func (a *Attention) gatherPanels(qkv, q, k, v *tensor.Matrix, batch, seq int) {
	hd := a.HeadDim
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			base := (b*a.Heads + h) * seq
			qo, ko, vo := h*hd, a.Dim+h*hd, 2*a.Dim+h*hd
			for t := 0; t < seq; t++ {
				src := qkv.Row(b*seq + t)
				copy(q.Row(base+t), src[qo:qo+hd])
				copy(k.Row(base+t), src[ko:ko+hd])
				copy(v.Row(base+t), src[vo:vo+hd])
			}
		}
	}
}

// scatterPanels is the inverse of gatherPanels for the gradient side: it
// writes per-head dQ/dK/dV panels back into the fused dQKV layout.
//
//photon:hotpath
func (a *Attention) scatterPanels(dqkv, dq, dk, dv *tensor.Matrix, batch, seq int) {
	hd := a.HeadDim
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			base := (b*a.Heads + h) * seq
			qo, ko, vo := h*hd, a.Dim+h*hd, 2*a.Dim+h*hd
			for t := 0; t < seq; t++ {
				dst := dqkv.Row(b*seq + t)
				copy(dst[qo:qo+hd], dq.Row(base+t))
				copy(dst[ko:ko+hd], dk.Row(base+t))
				copy(dst[vo:vo+hd], dv.Row(base+t))
			}
		}
	}
}

// gatherCtx copies the interleaved-head matrix [B·T, D] into per-head panels
// [B·H·T, d]; scatterCtx is its inverse.
//
//photon:hotpath
func (a *Attention) gatherCtx(panels, x *tensor.Matrix, batch, seq int) {
	hd := a.HeadDim
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			base := (b*a.Heads + h) * seq
			off := h * hd
			for t := 0; t < seq; t++ {
				copy(panels.Row(base+t), x.Row(b*seq + t)[off:off+hd])
			}
		}
	}
}

//photon:hotpath
func (a *Attention) scatterCtx(x, panels *tensor.Matrix, batch, seq int) {
	hd := a.HeadDim
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			base := (b*a.Heads + h) * seq
			off := h * hd
			for t := 0; t < seq; t++ {
				copy(x.Row(b*seq + t)[off:off+hd], panels.Row(base+t))
			}
		}
	}
}

// Forward runs attention over x laid out as [B·T, D] with the given batch
// and sequence dimensions.
//
//photon:hotpath
func (a *Attention) Forward(ws *Workspace, x *tensor.Matrix, batch, seq int) *tensor.Matrix {
	a.batch, a.seq = batch, seq
	items := batch * a.Heads
	n, hd := batch*seq, a.HeadDim
	scale := float32(1 / math.Sqrt(float64(hd)))

	qkv := a.QKV.Forward(ws, x) // [N, 3D]
	a.q, a.k, a.v = ws.Take(items*seq, hd), ws.Take(items*seq, hd), ws.Take(items*seq, hd)
	a.gatherPanels(qkv, a.q, a.k, a.v, batch, seq)

	// Scores, mask+softmax, context: three batched kernels per head item.
	a.probs = ws.Take(items*seq, seq)
	tensor.BatchMatMulTransBCausal(a.probs, a.q, a.k, items)
	tensor.CausalSoftmaxRows(a.probs, batch, a.Heads, a.sl, scale)
	ctxP := ws.Take(items*seq, hd)
	tensor.BatchMatMulCausal(ctxP, a.probs, a.v, items)

	ctx := ws.Take(n, a.Dim) // concatenated head outputs
	a.scatterCtx(ctx, ctxP, batch, seq)
	return a.Out.Forward(ws, ctx)
}

// decodeForward is the KV-cached attention step for a mixed prefill/decode
// batch. x holds the ΣTi new rows of all sequences concatenated; lens[i] is
// states[i]'s cached length before this call and counts[i] its new-row count.
// Each head's new K/V rows are written straight into the sequence's layer
// cache, and attention runs as one ragged AttendDecode dispatch over
// (sequence × head) items — steady-state decode touches each cached row once
// instead of recomputing the whole prefix.
//
//photon:hotpath
func (a *Attention) decodeForward(ws *Workspace, x *tensor.Matrix, layer int, states []*DecodeState, lens, counts []int) *tensor.Matrix {
	hd := a.HeadDim
	scale := float32(1 / math.Sqrt(float64(hd)))
	total := x.Rows

	qkv := a.QKV.Forward(ws, x) // [ΣTi, 3D]

	// Per-(sequence × head) query and context panels. Sequence i's block
	// starts at row rowOff·Heads and holds Heads consecutive panels of
	// counts[i] rows each.
	qP := ws.Take(total*a.Heads, hd)
	ctxP := ws.Take(total*a.Heads, hd)
	probTotal := 0
	for i := range states {
		probTotal += counts[i] * (lens[i] + counts[i]) * a.Heads
	}
	probs := ws.Take(probTotal, 1)

	ni := len(states) * a.Heads
	a.decItems = growDecodeItems(a.decItems, ni)

	rowOff, probOff, it := 0, 0, 0
	for i, s := range states {
		qn, kn := counts[i], lens[i]+counts[i]
		stride := s.maxSeq * hd
		for h := 0; h < a.Heads; h++ {
			base := rowOff*a.Heads + h*qn
			qo, ko, vo := h*hd, a.Dim+h*hd, 2*a.Dim+h*hd
			kc := s.k[layer][h*stride : h*stride+kn*hd]
			vc := s.v[layer][h*stride : h*stride+kn*hd]
			for t := 0; t < qn; t++ {
				src := qkv.Row(rowOff + t)
				copy(qP.Row(base+t), src[qo:qo+hd])
				copy(kc[(lens[i]+t)*hd:(lens[i]+t+1)*hd], src[ko:ko+hd])
				copy(vc[(lens[i]+t)*hd:(lens[i]+t+1)*hd], src[vo:vo+hd])
			}
			a.decItems[it] = tensor.DecodeItem{
				Q:     qP.Data[base*hd : (base+qn)*hd],
				K:     kc,
				V:     vc,
				Probs: probs.Data[probOff : probOff+qn*kn],
				Ctx:   ctxP.Data[base*hd : (base+qn)*hd],
				QRows: qn,
				KRows: kn,
				Slope: a.sl[h],
			}
			probOff += qn * kn
			it++
		}
		rowOff += qn
	}
	tensor.AttendDecode(a.decItems, scale)

	ctx := ws.Take(total, a.Dim) // concatenated head outputs
	rowOff = 0
	for i := range states {
		qn := counts[i]
		for h := 0; h < a.Heads; h++ {
			base := rowOff*a.Heads + h*qn
			off := h * hd
			for t := 0; t < qn; t++ {
				copy(ctx.Row(rowOff + t)[off:off+hd], ctxP.Row(base+t))
			}
		}
		rowOff += qn
	}
	return a.Out.Forward(ws, ctx)
}

// Backward propagates gradients through the attention sublayer and returns
// dX. Parameter gradients accumulate into the projection layers.
//
//photon:hotpath
func (a *Attention) Backward(ws *Workspace, dy *tensor.Matrix) *tensor.Matrix {
	batch, seq, hd := a.batch, a.seq, a.HeadDim
	items := batch * a.Heads
	scale := float32(1 / math.Sqrt(float64(hd)))

	dctx := a.Out.Backward(ws, dy) // [N, D]
	dctxP := ws.Take(items*seq, hd)
	a.gatherCtx(dctxP, dctx, batch, seq)

	// dP = dCtx·Vᵀ on the causal support; dV = Pᵀ·dCtx.
	dp := ws.Take(items*seq, seq)
	tensor.BatchMatMulTransBCausal(dp, dctxP, a.v, items)
	dv := ws.Take(items*seq, hd)
	tensor.BatchMatMulTransA(dv, a.probs, dctxP, items)

	// Softmax backward (score scale folded in): dp becomes dS.
	tensor.CausalSoftmaxGradRows(dp, a.probs, batch, a.Heads, scale)

	// dQ = dS·K ; dK = dSᵀ·Q.
	dq := ws.Take(items*seq, hd)
	tensor.BatchMatMulCausal(dq, dp, a.k, items)
	dk := ws.Take(items*seq, hd)
	tensor.BatchMatMulTransA(dk, dp, a.q, items)

	dqkv := ws.Take(batch*seq, 3*a.Dim)
	a.scatterPanels(dqkv, dq, dk, dv, batch, seq)
	return a.QKV.Backward(ws, dqkv)
}

// growDecodeItems is the cap-grow pattern for the ragged decode work-item
// scratch: amortized reallocation off the hot path.
//
//photon:allocok
func growDecodeItems(buf []tensor.DecodeItem, n int) []tensor.DecodeItem {
	if cap(buf) < n {
		return make([]tensor.DecodeItem, n, n+n/2)
	}
	return buf[:n]
}
