package nn

import (
	"math"
	"math/rand"

	"photon/internal/tensor"
)

// Attention implements multi-head causal self-attention with ALiBi
// positional biases (the MPT positional scheme): score(i,j) gets an additive
// bias slope_h·(j−i) for j ≤ i, and −∞ for j > i.
type Attention struct {
	Dim, Heads, HeadDim int

	QKV    *Linear // fused projection Dim -> 3·Dim
	Out    *Linear // output projection Dim -> Dim
	sl     []float32
	negInf float32

	// caches for backward
	qkv        *tensor.Matrix // [N, 3D]
	probs      []float32      // [B, H, T, T] attention probabilities
	batch, seq int
}

// NewAttention creates the attention sublayer.
func NewAttention(name string, dim, heads int, std float64, rng *rand.Rand) *Attention {
	return &Attention{
		Dim: dim, Heads: heads, HeadDim: dim / heads,
		QKV:    NewLinear(name+".qkv", dim, 3*dim, false, std, rng),
		Out:    NewLinear(name+".out", dim, dim, false, std, rng),
		sl:     AlibiSlopes(heads),
		negInf: float32(math.Inf(-1)),
	}
}

// Params returns all attention parameters.
func (a *Attention) Params() ParamSet {
	return append(a.QKV.Params(), a.Out.Params()...)
}

// qOff/kOff/vOff index into a fused QKV row for head h, channel j.
func (a *Attention) qOff(h, j int) int { return h*a.HeadDim + j }
func (a *Attention) kOff(h, j int) int { return a.Dim + h*a.HeadDim + j }
func (a *Attention) vOff(h, j int) int { return 2*a.Dim + h*a.HeadDim + j }

// Forward runs attention over x laid out as [B·T, D] with the given batch
// and sequence dimensions.
func (a *Attention) Forward(x *tensor.Matrix, batch, seq int) *tensor.Matrix {
	a.batch, a.seq = batch, seq
	a.qkv = a.QKV.Forward(x)
	n := batch * seq
	need := batch * a.Heads * seq * seq
	if cap(a.probs) < need {
		a.probs = make([]float32, need)
	}
	a.probs = a.probs[:need]

	ctx := tensor.NewMatrix(n, a.Dim) // concatenated head outputs
	scale := float32(1 / math.Sqrt(float64(a.HeadDim)))
	hd := a.HeadDim
	row := func(b, t int) []float32 { return a.qkv.Row(b*seq + t) }

	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			slope := a.sl[h]
			base := ((b * a.Heads) + h) * seq * seq
			for i := 0; i < seq; i++ {
				qi := row(b, i)
				p := a.probs[base+i*seq : base+(i+1)*seq]
				for j := 0; j <= i; j++ {
					kj := row(b, j)
					var s float32
					for c := 0; c < hd; c++ {
						s += qi[a.qOff(h, c)] * kj[a.kOff(h, c)]
					}
					p[j] = s*scale + slope*float32(j-i)
				}
				for j := i + 1; j < seq; j++ {
					p[j] = a.negInf
				}
				tensor.SoftmaxRow(p[:i+1])
				for j := i + 1; j < seq; j++ {
					p[j] = 0
				}
				// Context: ctx_i[h] = Σ_j p_j · V_j[h].
				out := ctx.Row(b*seq + i)[h*hd : (h+1)*hd]
				for j := 0; j <= i; j++ {
					pj := p[j]
					if pj == 0 {
						continue
					}
					vj := row(b, j)
					for c := 0; c < hd; c++ {
						out[c] += pj * vj[a.vOff(h, c)]
					}
				}
			}
		}
	}
	return a.Out.Forward(ctx)
}

// Backward propagates gradients through the attention sublayer and returns
// dX. Parameter gradients accumulate into the projection layers.
func (a *Attention) Backward(dy *tensor.Matrix) *tensor.Matrix {
	batch, seq, hd := a.batch, a.seq, a.HeadDim
	dctx := a.Out.Backward(dy) // [N, D]
	dqkv := tensor.NewMatrix(batch*seq, 3*a.Dim)
	scale := float32(1 / math.Sqrt(float64(hd)))
	row := func(b, t int) []float32 { return a.qkv.Row(b*seq + t) }
	drow := func(b, t int) []float32 { return dqkv.Row(b*seq + t) }

	// Scratch for per-row score gradients.
	ds := make([]float32, seq)
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			base := ((b * a.Heads) + h) * seq * seq
			for i := 0; i < seq; i++ {
				p := a.probs[base+i*seq : base+(i+1)*seq]
				dOut := dctx.Row(b*seq + i)[h*hd : (h+1)*hd]
				// dP_ij = dOut·V_j ; dV_j += P_ij·dOut.
				var dot float32 // Σ_j P_ij·dP_ij for the softmax Jacobian
				for j := 0; j <= i; j++ {
					vj := row(b, j)
					dvj := drow(b, j)
					var dp float32
					for c := 0; c < hd; c++ {
						dp += dOut[c] * vj[a.vOff(h, c)]
					}
					pj := p[j]
					for c := 0; c < hd; c++ {
						dvj[a.vOff(h, c)] += pj * dOut[c]
					}
					ds[j] = dp
					dot += pj * dp
				}
				// Softmax backward: dS_ij = P_ij·(dP_ij − Σ_k P_ik·dP_ik).
				for j := 0; j <= i; j++ {
					ds[j] = p[j] * (ds[j] - dot)
				}
				// dQ_i += Σ_j dS_ij·K_j·scale ; dK_j += dS_ij·Q_i·scale.
				qi := row(b, i)
				dqi := drow(b, i)
				for j := 0; j <= i; j++ {
					g := ds[j] * scale
					if g == 0 {
						continue
					}
					kj := row(b, j)
					dkj := drow(b, j)
					for c := 0; c < hd; c++ {
						dqi[a.qOff(h, c)] += g * kj[a.kOff(h, c)]
						dkj[a.kOff(h, c)] += g * qi[a.qOff(h, c)]
					}
				}
			}
		}
	}
	return a.QKV.Backward(dqkv)
}
