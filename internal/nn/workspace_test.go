package nn

import (
	"math/rand"
	"testing"
)

// The workspace must bound what it retains across variable shapes: Generate
// runs a forward per token with a growing context, and an unbounded
// size-keyed arena would strand a full activation set under every distinct
// sequence length (O(T³) floats) for the model's lifetime.
func TestWorkspaceBoundedRetention(t *testing.T) {
	ws := NewWorkspace()
	for tLen := 1; tLen <= 300; tLen++ {
		ws.Take(tLen, 64)
		ws.Take(tLen, tLen) // probs-like quadratic buffer
		ws.Reset()
		if ws.retainedElems() > evictFactor*ws.maxStep {
			t.Fatalf("len %d: retained %d exceeds %d×maxStep %d",
				tLen, ws.retainedElems(), evictFactor, ws.maxStep)
		}
	}
	if ws.retainedElems() > evictFactor*300*(64+300) {
		t.Fatalf("final retention %d not bounded by working-set multiple", ws.retainedElems())
	}
}

// Generation must not grow the model's footprint monotonically, and training
// after generation must return to the allocation-free steady state.
func TestGenerateThenTrainStillZeroAlloc(t *testing.T) {
	cfg := Config{Name: "gen", Blocks: 2, Dim: 32, Heads: 2, ExpRatio: 4,
		VocabSize: 64, SeqLen: 48, Beta1: 0.9, Beta2: 0.95}
	rng := rand.New(rand.NewSource(9))
	m := NewModel(cfg, rng)
	m.Generate(rng, []int{1, 2, 3}, 60, 0.8) // shape churn: contexts 3..48
	batch := testBatch(rng, cfg, 2)
	m.Params().ZeroGrads()
	m.ForwardBackward(batch)
	m.ForwardBackward(batch)
	if allocs := testing.AllocsPerRun(10, func() {
		m.Params().ZeroGrads()
		m.ForwardBackward(batch)
	}); allocs != 0 {
		t.Fatalf("post-generate train step allocates %v, want 0", allocs)
	}
}
