package hw

import (
	"sort"

	"photon/internal/nn"
)

// RegionSilo is one row cell of the paper's Table 1: a region hosting some
// number of clients, each holding a fixed number of GPUs.
type RegionSilo struct {
	Region        string
	Clients       int
	GPUsPerClient int
}

// Deployment describes the globally distributed setup used to train one
// model size (Table 1): the aggregator region plus the client silos.
type Deployment struct {
	ModelName string
	AggRegion string
	Silos     []RegionSilo
}

// TotalClients returns the number of LLM-C instances in the deployment.
func (d Deployment) TotalClients() int {
	n := 0
	for _, s := range d.Silos {
		n += s.Clients
	}
	return n
}

// TotalGPUs returns the number of accelerators in the deployment.
func (d Deployment) TotalGPUs() int {
	n := 0
	for _, s := range d.Silos {
		n += s.Clients * s.GPUsPerClient
	}
	return n
}

// RegionClients returns the number of clients hosted per region, merging
// duplicate region rows. Regions with zero clients are omitted.
func (d Deployment) RegionClients() map[string]int {
	out := map[string]int{}
	for _, s := range d.Silos {
		if s.Clients > 0 {
			out[s.Region] += s.Clients
		}
	}
	return out
}

// Regions returns the sorted set of regions hosting at least one client.
func (d Deployment) Regions() []string {
	rc := d.RegionClients()
	out := make([]string, 0, len(rc))
	for r := range rc {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Table1Deployments reproduces the paper's Table 1 exactly: for each model
// size, "num. of clients x num. of GPUs held by each client" per region,
// with the aggregator in England.
func Table1Deployments() []Deployment {
	return []Deployment{
		{ModelName: "7B", AggRegion: "England", Silos: []RegionSilo{
			{Region: "Utah", Clients: 1, GPUsPerClient: 8},
			{Region: "Texas", Clients: 1, GPUsPerClient: 8},
			{Region: "Quebec", Clients: 1, GPUsPerClient: 8},
			{Region: "Maharashtra", Clients: 1, GPUsPerClient: 8},
		}},
		{ModelName: "3B", AggRegion: "England", Silos: []RegionSilo{
			{Region: "Utah", Clients: 1, GPUsPerClient: 4},
			{Region: "Texas", Clients: 1, GPUsPerClient: 4},
			{Region: "Quebec", Clients: 1, GPUsPerClient: 4},
			{Region: "Maharashtra", Clients: 1, GPUsPerClient: 4},
		}},
		{ModelName: "1.3B", AggRegion: "England", Silos: []RegionSilo{
			{Region: "England", Clients: 1, GPUsPerClient: 2},
			{Region: "Utah", Clients: 2, GPUsPerClient: 2},
			{Region: "Texas", Clients: 2, GPUsPerClient: 2},
			{Region: "Quebec", Clients: 2, GPUsPerClient: 4},
			{Region: "Maharashtra", Clients: 1, GPUsPerClient: 4},
		}},
		{ModelName: "125M", AggRegion: "England", Silos: []RegionSilo{
			{Region: "England", Clients: 2, GPUsPerClient: 1},
			{Region: "Utah", Clients: 2, GPUsPerClient: 1},
			{Region: "Texas", Clients: 2, GPUsPerClient: 1},
			{Region: "Quebec", Clients: 2, GPUsPerClient: 1},
			{Region: "Maharashtra", Clients: 2, GPUsPerClient: 1},
		}},
	}
}

// DeploymentFor returns the Table 1 deployment for a model config, or false
// when the size was not part of the paper's study.
func DeploymentFor(cfg nn.Config) (Deployment, bool) {
	for _, d := range Table1Deployments() {
		if d.ModelName == cfg.Name {
			return d, true
		}
	}
	return Deployment{}, false
}

// SiloForRegion builds a concrete H100 Silo for one Table 1 cell, assuming
// NVLink inside nodes and Ethernet WAN between silos (the paper's setting).
func SiloForRegion(rs RegionSilo, wanGbps float64) Silo {
	gpus := make([]GPU, rs.GPUsPerClient)
	for i := range gpus {
		gpus[i] = H100
	}
	return Silo{
		Region:    rs.Region,
		Nodes:     []Node{{GPUs: gpus, IntraGPU: NVLink}},
		InterNode: Ethernet,
		WANGbps:   wanGbps,
	}
}
